// The optimized tier (JitTier::kOptimized): host compiler at -O2
// -march=native — the steady-state code quality the engine ran at before
// tiering, now reached either directly (TierPolicy::kOptimizedOnly) or via
// an asynchronous upgrade once a fast-tier trace crosses the hotness
// threshold.
#include "jit/backend_cc.h"

namespace avm::jit {

JitBackend& CcBackendO2() {
  static CcBackend* backend =
      new CcBackend("cc-o2", JitTier::kOptimized, "-O2 -march=native");
  return *backend;
}

}  // namespace avm::jit
