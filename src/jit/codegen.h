// C++ code generation for traces (Section III-B "partial compilation").
//
// A trace — a connected region of the dependency graph selected by the
// greedy partitioner — is compiled into one fused loop: reads become pointer
// dereferences, maps become inlined scalar expressions (deforestation: no
// intermediate arrays), at most one filter becomes a branch, condensed
// outputs append under a running count, folds become loop-carried
// accumulators. The generated function uses a stable C ABI so the VM can
// inject it into the interpreter ("Inject functions" in Fig. 1).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "dsl/ast.h"
#include "ir/depgraph.h"
#include "storage/compression.h"
#include "util/status.h"

namespace avm::jit {

/// C ABI of every generated trace function.
///
/// in        : one pointer per input (chunk vectors, data-read windows, ...)
/// out       : one pointer per output buffer
/// caps_i/f  : captured scalars (integers widened to int64, floats to double)
/// n         : physical chunk length
/// sel/sel_n : optional incoming selection vector
/// out_counts: produced tuple count per output
/// Returns 0 on success.
using TraceFn = int32_t (*)(const void* const* in, void* const* out,
                            const int64_t* caps_i, const double* caps_f,
                            uint32_t n, const uint32_t* sel, uint32_t sel_n,
                            uint32_t* out_counts);

/// Self-contained read/write position: a scalar variable of the environment
/// or a constant. Deliberately NOT a pointer into the program AST — compiled
/// traces outlive the program they were generated from (the shared
/// TraceCache serves them to other morsel workers and to later runs of the
/// same query shape).
struct PosRef {
  enum class Kind : uint8_t { kNone = 0, kConst, kVar };
  Kind kind = Kind::kNone;
  int64_t const_i = 0;
  std::string var;

  bool valid() const { return kind != Kind::kNone; }
  std::string ToString() const {
    if (kind == Kind::kConst) return std::to_string(const_i);
    return kind == Kind::kVar ? var : "<none>";
  }
  /// From a restricted position expression (variable or constant).
  static Result<PosRef> From(const dsl::Expr& e);
};

/// How an input pointer must be produced by the run-time harness.
struct TraceInputSpec {
  enum class Kind : uint8_t {
    kChunkVar,   ///< a let-bound chunk array from the environment
    kDataRead,   ///< window of a data array at a read node's position
    kForDeltas,  ///< FOR-compressed deltas (uint32) of a data array window
    kDataWhole,  ///< entire raw data array (gather base)
  };
  Kind kind = Kind::kChunkVar;
  std::string name;                      ///< variable or data array name
  TypeId type = TypeId::kI64;            ///< element type seen by the code
  PosRef pos;                            ///< position (kDataRead/kForDeltas)
};

/// How an output buffer must be interpreted after the call.
struct TraceOutputSpec {
  enum class Kind : uint8_t {
    kArrayVar,    ///< escaping chunk value: bind `name` to the buffer
    kDataWrite,   ///< window of a writable data array at a position
    kFoldScalar,  ///< 8-byte scalar accumulator: bind `name`
  };
  Kind kind = Kind::kArrayVar;
  std::string name;                      ///< produced variable / data array
  TypeId type = TypeId::kI64;
  bool condensed = false;                ///< count comes from out_counts
  PosRef pos;                            ///< kDataWrite position
};

struct GeneratedTrace {
  std::string source;   ///< complete C++ translation unit
  std::string symbol;   ///< extern "C" entry point
  std::vector<TraceInputSpec> inputs;
  std::vector<TraceOutputSpec> outputs;
  /// Captured scalar environment variables, with their widened slot.
  std::vector<std::pair<std::string, TypeId>> captures_i;
  std::vector<std::pair<std::string, TypeId>> captures_f;
  /// FOR-specialized reads: data name -> expected scheme (applicability).
  std::map<std::string, Scheme> scheme_requirements;
  /// Statement ids of the loop body this trace covers.
  std::vector<uint32_t> covered_stmt_ids;
  uint32_t anchor_stmt_id = 0;
  std::string name;  ///< diagnostic label
};

struct CodegenOptions {
  /// Specialize reads of these data arrays for a compression scheme
  /// (currently kFor: operate on narrow deltas + reference; paper §III-C
  /// compressed execution). Missing entries decode to plain values.
  std::map<std::string, Scheme> scheme_specialization;
  /// Emit a bounds comment header with the trace's dependency info.
  bool emit_debug_comments = true;
};

/// Validate that `trace` is compilable (statement-aligned, ≤ 1 filter,
/// condense only over an in-trace filter, no merge/gen/scatter) and
/// generate its source. The program must be type-checked.
Result<GeneratedTrace> GenerateTrace(const dsl::Program& program,
                                     const ir::DepGraph& graph,
                                     const ir::Trace& trace,
                                     const CodegenOptions& options = {});

}  // namespace avm::jit
