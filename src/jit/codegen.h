// C++ code generation for traces (Section III-B "partial compilation").
//
// A trace — a connected region of the dependency graph selected by the
// greedy partitioner — is compiled into one fused loop: reads become pointer
// dereferences, maps become inlined scalar expressions (deforestation: no
// intermediate arrays), at most one filter becomes a branch, condensed
// outputs append under a running count, folds become loop-carried
// accumulators. The generated function uses a stable C ABI so the VM can
// inject it into the interpreter ("Inject functions" in Fig. 1).
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "dsl/ast.h"
#include "ir/depgraph.h"
#include "jit/trace_abi.h"
#include "storage/compression.h"
#include "util/status.h"

namespace avm::jit {

/// Self-contained read/write position: a scalar variable of the environment
/// or a constant. Deliberately NOT a pointer into the program AST — compiled
/// traces outlive the program they were generated from (the shared
/// TraceCache serves them to other morsel workers and to later runs of the
/// same query shape).
struct PosRef {
  enum class Kind : uint8_t { kNone = 0, kConst, kVar };
  Kind kind = Kind::kNone;
  int64_t const_i = 0;
  std::string var;

  bool valid() const { return kind != Kind::kNone; }
  std::string ToString() const {
    if (kind == Kind::kConst) return std::to_string(const_i);
    return kind == Kind::kVar ? var : "<none>";
  }
  /// From a restricted position expression (variable or constant).
  static Result<PosRef> From(const dsl::Expr& e);
};

/// How an input pointer must be produced by the run-time harness.
struct TraceInputSpec {
  enum class Kind : uint8_t {
    kChunkVar,   ///< a let-bound chunk array from the environment
    kDataRead,   ///< window of a data array at a read node's position
    kForDeltas,  ///< FOR-compressed deltas (uint32) of a data array window
    kDataWhole,  ///< entire raw data array (gather base)
  };
  Kind kind = Kind::kChunkVar;
  std::string name;                      ///< variable or data array name
  TypeId type = TypeId::kI64;            ///< element type seen by the code
  PosRef pos;                            ///< position (kDataRead/kForDeltas)
};

/// How an output buffer must be interpreted after the call.
struct TraceOutputSpec {
  enum class Kind : uint8_t {
    kArrayVar,     ///< escaping chunk value: bind `name` to the buffer
    kDataWrite,    ///< window of a writable data array at a position
    kDataScatter,  ///< whole writable data array, scattered into by index
    kFoldScalar,   ///< 8-byte scalar accumulator: bind `name`
  };
  Kind kind = Kind::kArrayVar;
  std::string name;                      ///< produced variable / data array
  TypeId type = TypeId::kI64;
  bool condensed = false;                ///< count comes from out_counts
  PosRef pos;                            ///< kDataWrite position
  /// True when the producing node depends (transitively) on a
  /// selection-carrying chunk input: the harness republishes the incoming
  /// selection onto this output (non-condensed array outputs only), exactly
  /// as vectorized interpretation would.
  bool sel_dependent = false;
  /// Let-bound scalar result name (kDataWrite/kDataScatter): the written /
  /// processed tuple count the program binds (condensing-output cursors).
  /// The harness publishes `scalars[k]` into the environment under this
  /// name after a successful call. Empty = the count is not consumed.
  std::string result_var;
};

struct GeneratedTrace {
  std::string source;   ///< complete C++ translation unit
  std::string symbol;   ///< extern "C" entry point
  std::vector<TraceInputSpec> inputs;
  std::vector<TraceOutputSpec> outputs;
  /// Captured scalar environment variables, with their widened slot.
  std::vector<std::pair<std::string, TypeId>> captures_i;
  std::vector<std::pair<std::string, TypeId>> captures_f;
  /// FOR-specialized reads: data name -> expected scheme (applicability).
  std::map<std::string, Scheme> scheme_requirements;
  /// Chunk-variable inputs this trace was specialized to receive WITH a
  /// selection vector (sorted). Non-empty = the selection-carrying variant:
  /// the harness must pass the (shared) selection of these inputs as
  /// sel/sel_n, and applicability requires exactly these inputs (and no
  /// others) to carry one. Empty = the positional variant: applicability
  /// requires every chunk input to be selection-free.
  std::vector<std::string> sel_inputs;
  /// Statement ids of the loop body this trace covers.
  std::vector<uint32_t> covered_stmt_ids;
  uint32_t anchor_stmt_id = 0;
  std::string name;  ///< diagnostic label
};

struct CodegenOptions {
  /// Specialize reads of these data arrays for a compression scheme
  /// (currently kFor: operate on narrow deltas + reference; paper §III-C
  /// compressed execution). Missing entries decode to plain values.
  std::map<std::string, Scheme> scheme_specialization;
  /// Specialize these chunk-variable inputs as selection-carrying (the
  /// VM observes which trace inputs hold a selection vector and makes it
  /// part of the situation, like compression schemes). Names that are not
  /// chunk inputs of the trace are ignored.
  std::set<std::string> sel_inputs;
  /// Emit a bounds comment header with the trace's dependency info.
  bool emit_debug_comments = true;
};

/// Validate that `trace` is compilable (statement-aligned, ≤ 1 filter,
/// condense over an in-trace filter or a selection-carrying value, no
/// merge/gen) and generate its source. Gathers and scatters compile with
/// generated bounds checks reporting through TraceFault; let-bound write
/// counts publish through the scalar-state slots. The program must be
/// type-checked.
Result<GeneratedTrace> GenerateTrace(const dsl::Program& program,
                                     const ir::DepGraph& graph,
                                     const ir::Trace& trace,
                                     const CodegenOptions& options = {});

}  // namespace avm::jit
