#include "jit/trace_compiler.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <thread>

#include "util/hash.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace avm::jit {

namespace {

using interp::ArrayPtr;
using interp::ArrayValue;
using interp::DataBinding;
using interp::InjectedTrace;
using interp::Interpreter;
using interp::ScalarValue;
using interp::Value;

// Evaluate a read/write position reference (restricted to variables and
// constants by the code generator).
Result<int64_t> EvalPos(Interpreter& in, const PosRef& pos) {
  switch (pos.kind) {
    case PosRef::Kind::kConst:
      return pos.const_i;
    case PosRef::Kind::kVar: {
      AVM_ASSIGN_OR_RETURN(ScalarValue s, in.GetScalar(pos.var));
      return s.AsI64();
    }
    case PosRef::Kind::kNone:
      break;
  }
  return Status::Internal("missing position reference");
}

// Mutable per-injection state shared by `run`/`applicable` closures.
struct RunState {
  std::vector<const void*> in_ptrs;
  std::vector<uint64_t> in_lens;
  std::vector<void*> out_ptrs;
  std::vector<uint64_t> out_lens;
  std::vector<int64_t> caps_i;
  std::vector<double> caps_f;
  std::vector<uint32_t> out_counts;
  std::vector<int64_t> out_scalars;
  // Scratch buffers for decompressed read windows / delta windows.
  std::vector<std::vector<uint8_t>> scratch;
  // Scratch buffers data writes land in before the bounds-checked publish
  // (so a failed call never leaves a partial destination write).
  std::vector<std::vector<uint8_t>> write_bufs;
  // Destination position per kDataWrite output (evaluated before the call).
  std::vector<int64_t> write_pos;
  // FOR references discovered while preparing inputs (by data name).
  std::unordered_map<std::string, int64_t> for_refs;
  // Output arrays pending publication.
  std::vector<ArrayPtr> out_arrays;
  std::vector<std::array<uint8_t, 8>> fold_bufs;
};

bool IsSelInput(const GeneratedTrace& meta, const std::string& name) {
  return std::find(meta.sel_inputs.begin(), meta.sel_inputs.end(), name) !=
         meta.sel_inputs.end();
}

// The one-shot fast→optimized upgrade, on a detached thread so no worker
// ever blocks on the optimized compile. Probes the persistent cache first
// (a previous process may have upgraded this trace already), compiles on
// miss, publishes the new fn into the entry in place, and stores a freshly
// compiled artifact back to disk. Everything captured is shared_ptr-owned
// or process-leaked, so the thread may outlive the VM, the Session, and
// even main().
void StartTierUpgrade(std::shared_ptr<TraceEntry> entry,
                      TraceTierOptions opts) {
  if (opts.counters != nullptr) {
    opts.counters->requested.fetch_add(1, std::memory_order_relaxed);
  }
  std::thread([entry = std::move(entry), opts = std::move(opts)] {
    JitBackend& backend = BackendForTier(JitTier::kOptimized);
    const uint64_t version = backend.version_hash();
    Result<JitArtifact> artifact = Status::NotFound("no persistent cache");
    if (opts.disk != nullptr) {
      artifact = opts.disk->TryLoad(entry->situation_key(),
                                    entry->source_hash(),
                                    JitTier::kOptimized, version);
    }
    bool fresh = false;
    if (!artifact.ok()) {
      artifact = backend.Compile(entry->meta().source, entry->meta().symbol,
                                 nullptr);
      fresh = artifact.ok();
    }
    Result<void*> sym = artifact.ok()
                            ? ArtifactLoader::Global().Load(
                                  artifact.value(), entry->meta().symbol)
                            : Result<void*>(artifact.status());
    if (!sym.ok()) {
      if (opts.counters != nullptr) {
        opts.counters->failed.fetch_add(1, std::memory_order_relaxed);
      }
      AVM_LOG(kWarning) << "tier upgrade of " << entry->meta().name
                        << " failed: " << sym.status().ToString();
      return;
    }
    entry->Publish(reinterpret_cast<TraceFn>(sym.value()),
                   JitTier::kOptimized);
    if (fresh && opts.disk != nullptr) {
      (void)opts.disk->Store(entry->situation_key(), entry->source_hash(),
                             version, artifact.value());
    }
    if (opts.counters != nullptr) {
      opts.counters->completed.fetch_add(1, std::memory_order_relaxed);
    }
    AVM_LOG(kDebug) << "tier upgrade of " << entry->meta().name
                    << " published";
  }).detach();
}

}  // namespace

TraceEntry::TraceEntry(CompiledTrace trace, uint64_t situation_key)
    : trace_(std::move(trace)),
      situation_key_(situation_key),
      source_hash_(HashString(trace_.meta.source)),
      fn_(trace_.fn),
      tier_(static_cast<uint8_t>(trace_.tier)) {}

Result<CompiledTrace> CompileTrace(const dsl::Program& program,
                                   const ir::DepGraph& graph,
                                   const ir::Trace& trace, SourceJit& jit,
                                   const CodegenOptions& options) {
  AVM_ASSIGN_OR_RETURN(GeneratedTrace gen,
                       GenerateTrace(program, graph, trace, options));
  AVM_ASSIGN_OR_RETURN(void* sym, jit.CompileAndLoad(gen.source, gen.symbol));
  CompiledTrace out;
  out.meta = std::move(gen);
  out.fn = reinterpret_cast<TraceFn>(sym);
  return out;
}

Result<TieredCompileOutcome> CompileTraceTiered(
    const dsl::Program& program, const ir::DepGraph& graph,
    const ir::Trace& trace, const CodegenOptions& options, TierPolicy policy,
    const std::shared_ptr<DiskTraceCache>& disk, uint64_t situation_key) {
  TieredCompileOutcome out;
  AVM_ASSIGN_OR_RETURN(GeneratedTrace gen,
                       GenerateTrace(program, graph, trace, options));
  const uint64_t source_hash = HashString(gen.source);
  policy = ResolveTierPolicy(policy);
  const JitTier initial = policy == TierPolicy::kOptimizedOnly
                              ? JitTier::kOptimized
                              : JitTier::kFast;
  if (disk != nullptr) {
    out.disk_probed = true;
    // Best tier the policy allows first: a warm restart of a tiered engine
    // resumes at whatever tier the previous process reached.
    std::vector<TierVersion> candidates;
    if (policy != TierPolicy::kFastOnly) {
      candidates.emplace_back(JitTier::kOptimized,
                              BackendForTier(JitTier::kOptimized)
                                  .version_hash());
    }
    if (policy != TierPolicy::kOptimizedOnly) {
      candidates.emplace_back(JitTier::kFast,
                              BackendForTier(JitTier::kFast).version_hash());
    }
    Result<JitArtifact> art = disk->LoadBest(situation_key, source_hash,
                                             candidates, &out.disk_corrupt);
    if (art.ok()) {
      Result<void*> sym =
          ArtifactLoader::Global().Load(art.value(), gen.symbol);
      if (sym.ok()) {
        out.trace.fn = reinterpret_cast<TraceFn>(sym.value());
        out.trace.tier = art.value().tier;
        out.trace.meta = std::move(gen);
        out.from_disk = true;
        return out;
      }
      // Checksum passed but the bytes are not loadable into this process
      // (e.g. stored by an incompatibly-built binary with a colliding
      // version hash). Drop the entry and recompile.
      ++out.disk_corrupt;
      std::remove(disk->EntryPath(situation_key, art.value().tier,
                                  BackendForTier(art.value().tier)
                                      .version_hash())
                      .c_str());
      AVM_LOG(kWarning) << "trace cache: unloadable entry for " << gen.name
                        << " dropped: " << sym.status().ToString();
    }
  }
  JitBackend& backend = BackendForTier(initial);
  if (!backend.Available()) {
    return Status::CompilationError("no host compiler available");
  }
  AVM_ASSIGN_OR_RETURN(
      JitArtifact artifact,
      backend.Compile(gen.source, gen.symbol, &out.compile_seconds));
  AVM_ASSIGN_OR_RETURN(void* sym,
                       ArtifactLoader::Global().Load(artifact, gen.symbol));
  if (disk != nullptr) {
    // Best-effort: a full disk or unwritable directory must not fail the
    // query; the artifact simply is not persisted.
    Status st =
        disk->Store(situation_key, source_hash, backend.version_hash(),
                    artifact);
    if (!st.ok()) {
      AVM_LOG(kWarning) << "trace cache store failed: " << st.ToString();
    }
  }
  out.trace.fn = reinterpret_cast<TraceFn>(sym);
  out.trace.tier = initial;
  out.trace.meta = std::move(gen);
  return out;
}

interp::InjectedTrace MakeInjection(const CompiledTrace& trace,
                                    uint32_t chunk_size) {
  return MakeInjection(std::make_shared<TraceEntry>(trace, 0), chunk_size);
}

interp::InjectedTrace MakeInjection(std::shared_ptr<TraceEntry> entry,
                                    uint32_t chunk_size,
                                    TraceTierOptions tier) {
  auto state = std::make_shared<RunState>();
  const GeneratedTrace& meta = entry->meta();

  InjectedTrace inj;
  inj.name = meta.name;
  inj.anchor_stmt_id = meta.anchor_stmt_id;
  inj.covered_stmt_ids.insert(meta.covered_stmt_ids.begin(),
                              meta.covered_stmt_ids.end());

  inj.applicable = [entry](Interpreter& in) -> bool {
    const GeneratedTrace& meta = entry->meta();
    // Selection situation check: the trace was specialized for a specific
    // set of selection-carrying chunk inputs, and every carrier must share
    // ONE selection (the interpreter's CommonSelection rule).
    const ArrayValue* sel_carrier = nullptr;
    for (const auto& spec : meta.inputs) {
      switch (spec.kind) {
        case TraceInputSpec::Kind::kChunkVar: {
          // Produced by an earlier statement in the same iteration; if it is
          // missing the trace cannot run.
          Result<Value> v = in.GetVar(spec.name);
          if (!v.ok() || !v.value().is_array()) return false;
          const ArrayValue& a = *v.value().array;
          const bool expect_sel = IsSelInput(meta, spec.name);
          if (a.has_sel() != expect_sel) return false;
          if (expect_sel) {
            if (sel_carrier == nullptr) {
              sel_carrier = &a;
            } else if (sel_carrier->sel.Data() != a.sel.Data()) {
              if (sel_carrier->sel.count() != a.sel.count() ||
                  std::memcmp(sel_carrier->sel.Data(), a.sel.Data(),
                              sizeof(sel_t) * a.sel.count()) != 0) {
                return false;
              }
            }
          }
          break;
        }
        case TraceInputSpec::Kind::kDataRead:
        case TraceInputSpec::Kind::kForDeltas: {
          DataBinding* b = in.FindBinding(spec.name);
          if (b == nullptr) return false;
          auto pos = EvalPos(in, spec.pos);
          if (!pos.ok() || pos.value() < 0) return false;
          const uint64_t p = static_cast<uint64_t>(pos.value());
          if (p >= b->len) return false;
          if (spec.kind == TraceInputSpec::Kind::kForDeltas) {
            if (b->column == nullptr) return false;
            auto blk = b->column->BlockAt(b->col_offset + p);
            if (!blk.ok()) return false;
            if (blk.value().first->scheme != Scheme::kFor) return false;
            if (blk.value().first->bit_width > 32) return false;
          } else if (b->raw == nullptr && b->column == nullptr) {
            return false;
          }
          break;
        }
        case TraceInputSpec::Kind::kDataWhole: {
          DataBinding* b = in.FindBinding(spec.name);
          if (b == nullptr || b->raw == nullptr) return false;
          break;
        }
      }
    }
    for (const auto& spec : meta.outputs) {
      if (spec.kind == TraceOutputSpec::Kind::kDataWrite) {
        DataBinding* b = in.FindBinding(spec.name);
        if (b == nullptr || b->raw == nullptr || !b->writable) return false;
        auto pos = EvalPos(in, spec.pos);
        if (!pos.ok() || pos.value() < 0) return false;
      } else if (spec.kind == TraceOutputSpec::Kind::kDataScatter) {
        DataBinding* b = in.FindBinding(spec.name);
        if (b == nullptr || b->raw == nullptr || !b->writable) return false;
      }
    }
    return true;
  };

  inj.run = [entry, tier, state, chunk_size](Interpreter& in) -> Status {
    const GeneratedTrace& meta = entry->meta();
    // Load the entry point per call (acquire): an asynchronous tier upgrade
    // publishing mid-query takes effect on the very next chunk.
    const TraceFn fn = entry->fn();
    const uint64_t invocation = entry->OnInvocation();
    if (tier.upgrade_enabled && invocation >= tier.upgrade_after &&
        entry->tier() == JitTier::kFast && entry->TryClaimUpgrade()) {
      StartTierUpgrade(entry, tier);
    }
    RunState& st = *state;
    st.in_ptrs.assign(meta.inputs.size(), nullptr);
    st.in_lens.assign(meta.inputs.size(), 0);
    st.out_ptrs.assign(meta.outputs.size(), nullptr);
    st.out_lens.assign(meta.outputs.size(), 0);
    st.out_counts.assign(meta.outputs.size(), 0);
    st.out_scalars.assign(meta.outputs.size(), 0);
    st.scratch.resize(meta.inputs.size());
    st.write_bufs.resize(meta.outputs.size());
    st.write_pos.assign(meta.outputs.size(), 0);
    st.for_refs.clear();
    st.out_arrays.assign(meta.outputs.size(), nullptr);
    st.fold_bufs.resize(meta.outputs.size());

    // Pass 1: determine n and the incoming selection. Everything up to the
    // compiled call must stay free of side effects: a kUnavailable return
    // here makes the interpreter fall back to vectorized interpretation of
    // this iteration (paper §III-C) instead of failing the query.
    uint32_t n = chunk_size;
    const sel_t* sel = nullptr;
    uint32_t sel_n = 0;
    ArrayPtr sel_owner;
    for (const auto& spec : meta.inputs) {
      switch (spec.kind) {
        case TraceInputSpec::Kind::kChunkVar: {
          AVM_ASSIGN_OR_RETURN(Value v, in.GetVar(spec.name));
          if (!v.is_array()) {
            return Status::TypeError(spec.name + " is not an array");
          }
          // A chunk input longer than the chunk window (e.g. a fan-out
          // vector from an expand in another domain) would be silently
          // truncated by the min below — fall back to interpretation
          // instead. Shorter inputs still clamp n (last partial chunk).
          if (v.array->len > chunk_size) {
            return Status::Unavailable(
                "chunk input exceeds the chunk window");
          }
          n = std::min(n, v.array->len);
          if (v.array->has_sel() && IsSelInput(meta, spec.name)) {
            sel = v.array->sel.Data();
            sel_n = v.array->sel.count();
            sel_owner = v.array;
          }
          break;
        }
        case TraceInputSpec::Kind::kDataRead: {
          DataBinding* b = in.FindBinding(spec.name);
          AVM_ASSIGN_OR_RETURN(int64_t pos, EvalPos(in, spec.pos));
          const uint64_t avail =
              b->len - std::min<uint64_t>(b->len, static_cast<uint64_t>(pos));
          n = std::min<uint32_t>(n, static_cast<uint32_t>(std::min<uint64_t>(
                                        avail, chunk_size)));
          break;
        }
        case TraceInputSpec::Kind::kForDeltas: {
          DataBinding* b = in.FindBinding(spec.name);
          AVM_ASSIGN_OR_RETURN(int64_t pos, EvalPos(in, spec.pos));
          AVM_ASSIGN_OR_RETURN(
              auto blk,
              b->column->BlockAt(b->col_offset + static_cast<uint64_t>(pos)));
          // Clamp to the block so one scheme covers the whole window.
          const uint32_t block_remaining = blk.first->count - blk.second;
          const uint64_t avail =
              std::min<uint64_t>(block_remaining,
                                 b->len - static_cast<uint64_t>(pos));
          n = std::min<uint32_t>(n, static_cast<uint32_t>(std::min<uint64_t>(
                                        avail, chunk_size)));
          break;
        }
        case TraceInputSpec::Kind::kDataWhole:
          break;
      }
    }
    if (!meta.sel_inputs.empty() && sel == nullptr) {
      return Status::Unavailable("expected selection is missing");
    }
    // Selection validity: every selected position must fall inside the
    // clamped window, or the compiled loops would read/write past it. An
    // out-of-window selection is not a miscompile — the iteration simply
    // falls back to interpretation (which then surfaces whatever length
    // mismatch the program has).
    for (uint32_t j = 0; j < sel_n; ++j) {
      if (sel[j] >= n) {
        return Status::Unavailable("selection exceeds the chunk window");
      }
    }

    // Pass 2: input pointers + element counts.
    for (size_t k = 0; k < meta.inputs.size(); ++k) {
      const auto& spec = meta.inputs[k];
      switch (spec.kind) {
        case TraceInputSpec::Kind::kChunkVar: {
          AVM_ASSIGN_OR_RETURN(Value v, in.GetVar(spec.name));
          st.in_ptrs[k] = v.array->vec.RawData();
          st.in_lens[k] = v.array->len;
          break;
        }
        case TraceInputSpec::Kind::kDataRead: {
          DataBinding* b = in.FindBinding(spec.name);
          AVM_ASSIGN_OR_RETURN(int64_t pos, EvalPos(in, spec.pos));
          const size_t w = TypeWidth(b->type);
          if (b->raw != nullptr) {
            st.in_ptrs[k] = static_cast<const uint8_t*>(b->raw) +
                            static_cast<uint64_t>(pos) * w;
          } else {
            st.scratch[k].resize(static_cast<size_t>(n) * w);
            AVM_RETURN_NOT_OK(b->column->Read(
                b->col_offset + static_cast<uint64_t>(pos), n,
                st.scratch[k].data()));
            st.in_ptrs[k] = st.scratch[k].data();
          }
          st.in_lens[k] = n;
          break;
        }
        case TraceInputSpec::Kind::kForDeltas: {
          DataBinding* b = in.FindBinding(spec.name);
          AVM_ASSIGN_OR_RETURN(int64_t pos, EvalPos(in, spec.pos));
          AVM_ASSIGN_OR_RETURN(
              auto blk,
              b->column->BlockAt(b->col_offset + static_cast<uint64_t>(pos)));
          st.scratch[k].resize(static_cast<size_t>(n) * sizeof(uint32_t));
          AVM_RETURN_NOT_OK(DecodeForDeltasRange32(
              *blk.first, blk.second, n,
              reinterpret_cast<uint32_t*>(st.scratch[k].data())));
          st.for_refs["__for_ref_" + spec.name] = blk.first->for_ref;
          st.in_ptrs[k] = st.scratch[k].data();
          st.in_lens[k] = n;
          break;
        }
        case TraceInputSpec::Kind::kDataWhole: {
          DataBinding* b = in.FindBinding(spec.name);
          st.in_ptrs[k] = b->raw;
          st.in_lens[k] = b->len;  // gather bounds checks test against this
          break;
        }
      }
    }

    // Captures.
    st.caps_i.clear();
    for (const auto& [name, type] : meta.captures_i) {
      auto ref = st.for_refs.find(name);
      if (ref != st.for_refs.end()) {
        st.caps_i.push_back(ref->second);
        continue;
      }
      AVM_ASSIGN_OR_RETURN(ScalarValue s, in.GetScalar(name));
      st.caps_i.push_back(s.AsI64());
    }
    st.caps_f.clear();
    for (const auto& [name, type] : meta.captures_f) {
      AVM_ASSIGN_OR_RETURN(ScalarValue s, in.GetScalar(name));
      st.caps_f.push_back(s.AsF64());
    }

    // Outputs.
    for (size_t k = 0; k < meta.outputs.size(); ++k) {
      const auto& spec = meta.outputs[k];
      switch (spec.kind) {
        case TraceOutputSpec::Kind::kArrayVar: {
          ArrayPtr arr = in.NewArray(spec.type, std::max(n, chunk_size));
          st.out_arrays[k] = arr;
          st.out_ptrs[k] = arr->vec.RawData();
          st.out_lens[k] = std::max(n, chunk_size);
          break;
        }
        case TraceOutputSpec::Kind::kDataWrite: {
          // Land in scratch; published after the call once the produced
          // count is known and bounds-checked (the count of a condensed
          // write only exists after the loop ran).
          DataBinding* b = in.FindBinding(spec.name);
          AVM_ASSIGN_OR_RETURN(int64_t pos, EvalPos(in, spec.pos));
          st.write_pos[k] = pos;
          st.write_bufs[k].resize(static_cast<size_t>(n) *
                                  TypeWidth(b->type));
          st.out_ptrs[k] = st.write_bufs[k].data();
          st.out_lens[k] = b->len;
          break;
        }
        case TraceOutputSpec::Kind::kDataScatter: {
          DataBinding* b = in.FindBinding(spec.name);
          st.out_ptrs[k] = b->raw;
          st.out_lens[k] = b->len;  // scatter bounds checks test this
          break;
        }
        case TraceOutputSpec::Kind::kFoldScalar:
          std::memset(st.fold_bufs[k].data(), 0, 8);
          st.out_ptrs[k] = st.fold_bufs[k].data();
          st.out_lens[k] = 1;
          break;
      }
    }

    TraceFault fault;
    TraceCallArgs args;
    args.in = st.in_ptrs.data();
    args.in_lens = st.in_lens.data();
    args.out = st.out_ptrs.data();
    args.out_lens = st.out_lens.data();
    args.ci = st.caps_i.data();
    args.cf = st.caps_f.data();
    args.n = n;
    args.sel = sel;
    args.sel_n = sel_n;
    args.out_counts = st.out_counts.data();
    args.scalars = st.out_scalars.data();
    args.fault = &fault;
    const int32_t rc = fn(&args);
    switch (rc) {
      case kTraceOk:
        break;
      case kTraceGatherOutOfBounds:
        // Identical message to Interpreter::EvalGather's bounds check.
        return Status::OutOfRange(
            StrFormat("gather index %lld out of [0, %llu)",
                      (long long)fault.index,
                      (unsigned long long)fault.bound));
      case kTraceScatterOutOfBounds:
        // Identical message to Interpreter::EvalScatter's bounds check.
        return Status::OutOfRange(
            StrFormat("scatter index %lld out of [0, %llu)",
                      (long long)fault.index,
                      (unsigned long long)fault.bound));
      default:
        return Status::RuntimeError(
            StrFormat("compiled trace returned %d", rc));
    }

    // Publish results.
    for (size_t k = 0; k < meta.outputs.size(); ++k) {
      const auto& spec = meta.outputs[k];
      switch (spec.kind) {
        case TraceOutputSpec::Kind::kArrayVar: {
          ArrayPtr arr = st.out_arrays[k];
          if (spec.condensed) {
            arr->len = st.out_counts[k];
          } else {
            arr->len = n;
            if (spec.sel_dependent && sel != nullptr) {
              // Selection-dependent values republish the incoming
              // selection; positional values stay selection-free, exactly
              // as interpretation leaves them.
              arr->sel.Reset(std::max(sel_n, uint32_t{1}));
              std::memcpy(arr->sel.Data(), sel, sizeof(sel_t) * sel_n);
              arr->sel.set_count(sel_n);
              arr->sel.set_enabled(true);
            }
          }
          in.SetVar(spec.name, Value::A(arr));
          break;
        }
        case TraceOutputSpec::Kind::kDataWrite: {
          DataBinding* b = in.FindBinding(spec.name);
          const uint64_t pos = static_cast<uint64_t>(st.write_pos[k]);
          const uint64_t count = st.out_counts[k];
          if (pos + count > b->len) {
            // Identical message to Interpreter::EvalWrite's bounds check.
            return Status::OutOfRange(StrFormat(
                "write [%llu, %llu) past end of %s (%llu)",
                (unsigned long long)pos, (unsigned long long)(pos + count),
                spec.name.c_str(), (unsigned long long)b->len));
          }
          const size_t w = TypeWidth(b->type);
          std::memcpy(static_cast<uint8_t*>(b->raw) + pos * w,
                      st.write_bufs[k].data(), static_cast<size_t>(count) * w);
          if (!spec.result_var.empty()) {
            in.SetVar(spec.result_var,
                      Value::S(ScalarValue::I(st.out_scalars[k])));
          }
          break;
        }
        case TraceOutputSpec::Kind::kDataScatter:
          if (!spec.result_var.empty()) {
            in.SetVar(spec.result_var,
                      Value::S(ScalarValue::I(st.out_scalars[k])));
          }
          break;
        case TraceOutputSpec::Kind::kFoldScalar:
          in.SetVar(spec.name,
                    Value::S(ScalarValue::Load(spec.type,
                                               st.fold_bufs[k].data())));
          break;
      }
    }
    return Status::OK();
  };
  return inj;
}

}  // namespace avm::jit
