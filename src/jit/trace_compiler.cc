#include "jit/trace_compiler.h"

#include <algorithm>
#include <array>
#include <cstring>

#include "util/string_util.h"

namespace avm::jit {

namespace {

using interp::ArrayPtr;
using interp::ArrayValue;
using interp::DataBinding;
using interp::InjectedTrace;
using interp::Interpreter;
using interp::ScalarValue;
using interp::Value;

// Evaluate a read/write position reference (restricted to variables and
// constants by the code generator).
Result<int64_t> EvalPos(Interpreter& in, const PosRef& pos) {
  switch (pos.kind) {
    case PosRef::Kind::kConst:
      return pos.const_i;
    case PosRef::Kind::kVar: {
      AVM_ASSIGN_OR_RETURN(ScalarValue s, in.GetScalar(pos.var));
      return s.AsI64();
    }
    case PosRef::Kind::kNone:
      break;
  }
  return Status::Internal("missing position reference");
}

// Mutable per-injection state shared by `run`/`applicable` closures.
struct RunState {
  std::vector<const void*> in_ptrs;
  std::vector<void*> out_ptrs;
  std::vector<int64_t> caps_i;
  std::vector<double> caps_f;
  std::vector<uint32_t> out_counts;
  // Scratch buffers for decompressed read windows / delta windows.
  std::vector<std::vector<uint8_t>> scratch;
  // FOR references discovered while preparing inputs (by data name).
  std::unordered_map<std::string, int64_t> for_refs;
  // Output arrays pending publication.
  std::vector<ArrayPtr> out_arrays;
  std::vector<std::array<uint8_t, 8>> fold_bufs;
};

}  // namespace

Result<CompiledTrace> CompileTrace(const dsl::Program& program,
                                   const ir::DepGraph& graph,
                                   const ir::Trace& trace, SourceJit& jit,
                                   const CodegenOptions& options) {
  AVM_ASSIGN_OR_RETURN(GeneratedTrace gen,
                       GenerateTrace(program, graph, trace, options));
  AVM_ASSIGN_OR_RETURN(void* sym, jit.CompileAndLoad(gen.source, gen.symbol));
  CompiledTrace out;
  out.meta = std::move(gen);
  out.fn = reinterpret_cast<TraceFn>(sym);
  return out;
}

interp::InjectedTrace MakeInjection(const CompiledTrace& trace,
                                    uint32_t chunk_size) {
  auto state = std::make_shared<RunState>();
  const GeneratedTrace& meta = trace.meta;
  TraceFn fn = trace.fn;

  InjectedTrace inj;
  inj.name = meta.name;
  inj.anchor_stmt_id = meta.anchor_stmt_id;
  inj.covered_stmt_ids.insert(meta.covered_stmt_ids.begin(),
                              meta.covered_stmt_ids.end());

  inj.applicable = [meta](Interpreter& in) -> bool {
    for (const auto& spec : meta.inputs) {
      switch (spec.kind) {
        case TraceInputSpec::Kind::kChunkVar: {
          // Produced by an earlier statement in the same iteration; if it is
          // missing the trace cannot run.
          Result<Value> v = in.GetVar(spec.name);
          if (!v.ok() || !v.value().is_array()) return false;
          // The compiled loop models ONE positional iteration: filters and
          // their selections live INSIDE a trace (condensed outputs), never
          // across its boundary. Multi-stage pipelines (joins, chained
          // filters, threaded projections) can reach the anchor with a
          // chunk value that already carries a selection — running the
          // trace there would compute at the wrong positions and republish
          // the selection onto values interpretation leaves positional
          // (e.g. reads), so such iterations fall back to interpretation.
          if (v.value().array->has_sel()) return false;
          break;
        }
        case TraceInputSpec::Kind::kDataRead:
        case TraceInputSpec::Kind::kForDeltas: {
          DataBinding* b = in.FindBinding(spec.name);
          if (b == nullptr) return false;
          auto pos = EvalPos(in, spec.pos);
          if (!pos.ok() || pos.value() < 0) return false;
          const uint64_t p = static_cast<uint64_t>(pos.value());
          if (p >= b->len) return false;
          if (spec.kind == TraceInputSpec::Kind::kForDeltas) {
            if (b->column == nullptr) return false;
            auto blk = b->column->BlockAt(b->col_offset + p);
            if (!blk.ok()) return false;
            if (blk.value().first->scheme != Scheme::kFor) return false;
            if (blk.value().first->bit_width > 32) return false;
          } else if (b->raw == nullptr && b->column == nullptr) {
            return false;
          }
          break;
        }
        case TraceInputSpec::Kind::kDataWhole: {
          DataBinding* b = in.FindBinding(spec.name);
          if (b == nullptr || b->raw == nullptr) return false;
          break;
        }
      }
    }
    for (const auto& spec : meta.outputs) {
      if (spec.kind == TraceOutputSpec::Kind::kDataWrite) {
        DataBinding* b = in.FindBinding(spec.name);
        if (b == nullptr || b->raw == nullptr || !b->writable) return false;
        auto pos = EvalPos(in, spec.pos);
        if (!pos.ok() || pos.value() < 0) return false;
      }
    }
    return true;
  };

  inj.run = [meta, fn, state, chunk_size](Interpreter& in) -> Status {
    RunState& st = *state;
    st.in_ptrs.assign(meta.inputs.size(), nullptr);
    st.out_ptrs.assign(meta.outputs.size(), nullptr);
    st.out_counts.assign(meta.outputs.size(), 0);
    st.scratch.resize(meta.inputs.size());
    st.for_refs.clear();
    st.out_arrays.assign(meta.outputs.size(), nullptr);
    st.fold_bufs.resize(meta.outputs.size());

    // Pass 1: determine n (and the incoming selection).
    uint32_t n = chunk_size;
    const sel_t* sel = nullptr;
    uint32_t sel_n = 0;
    ArrayPtr sel_owner;
    for (const auto& spec : meta.inputs) {
      switch (spec.kind) {
        case TraceInputSpec::Kind::kChunkVar: {
          AVM_ASSIGN_OR_RETURN(Value v, in.GetVar(spec.name));
          if (!v.is_array()) {
            return Status::TypeError(spec.name + " is not an array");
          }
          n = std::min(n, v.array->len);
          if (v.array->has_sel()) {
            sel = v.array->sel.Data();
            sel_n = v.array->sel.count();
            sel_owner = v.array;
          }
          break;
        }
        case TraceInputSpec::Kind::kDataRead: {
          DataBinding* b = in.FindBinding(spec.name);
          AVM_ASSIGN_OR_RETURN(int64_t pos, EvalPos(in, spec.pos));
          const uint64_t avail =
              b->len - std::min<uint64_t>(b->len, static_cast<uint64_t>(pos));
          n = std::min<uint32_t>(n, static_cast<uint32_t>(std::min<uint64_t>(
                                        avail, chunk_size)));
          break;
        }
        case TraceInputSpec::Kind::kForDeltas: {
          DataBinding* b = in.FindBinding(spec.name);
          AVM_ASSIGN_OR_RETURN(int64_t pos, EvalPos(in, spec.pos));
          AVM_ASSIGN_OR_RETURN(
              auto blk,
              b->column->BlockAt(b->col_offset + static_cast<uint64_t>(pos)));
          // Clamp to the block so one scheme covers the whole window.
          const uint32_t block_remaining = blk.first->count - blk.second;
          const uint64_t avail =
              std::min<uint64_t>(block_remaining,
                                 b->len - static_cast<uint64_t>(pos));
          n = std::min<uint32_t>(n, static_cast<uint32_t>(std::min<uint64_t>(
                                        avail, chunk_size)));
          break;
        }
        case TraceInputSpec::Kind::kDataWhole:
          break;
      }
    }

    // Pass 2: input pointers.
    for (size_t k = 0; k < meta.inputs.size(); ++k) {
      const auto& spec = meta.inputs[k];
      switch (spec.kind) {
        case TraceInputSpec::Kind::kChunkVar: {
          AVM_ASSIGN_OR_RETURN(Value v, in.GetVar(spec.name));
          st.in_ptrs[k] = v.array->vec.RawData();
          break;
        }
        case TraceInputSpec::Kind::kDataRead: {
          DataBinding* b = in.FindBinding(spec.name);
          AVM_ASSIGN_OR_RETURN(int64_t pos, EvalPos(in, spec.pos));
          const size_t w = TypeWidth(b->type);
          if (b->raw != nullptr) {
            st.in_ptrs[k] = static_cast<const uint8_t*>(b->raw) +
                            static_cast<uint64_t>(pos) * w;
          } else {
            st.scratch[k].resize(static_cast<size_t>(n) * w);
            AVM_RETURN_NOT_OK(b->column->Read(
                b->col_offset + static_cast<uint64_t>(pos), n,
                st.scratch[k].data()));
            st.in_ptrs[k] = st.scratch[k].data();
          }
          break;
        }
        case TraceInputSpec::Kind::kForDeltas: {
          DataBinding* b = in.FindBinding(spec.name);
          AVM_ASSIGN_OR_RETURN(int64_t pos, EvalPos(in, spec.pos));
          AVM_ASSIGN_OR_RETURN(
              auto blk,
              b->column->BlockAt(b->col_offset + static_cast<uint64_t>(pos)));
          st.scratch[k].resize(static_cast<size_t>(n) * sizeof(uint32_t));
          AVM_RETURN_NOT_OK(DecodeForDeltasRange32(
              *blk.first, blk.second, n,
              reinterpret_cast<uint32_t*>(st.scratch[k].data())));
          st.for_refs["__for_ref_" + spec.name] = blk.first->for_ref;
          st.in_ptrs[k] = st.scratch[k].data();
          break;
        }
        case TraceInputSpec::Kind::kDataWhole: {
          DataBinding* b = in.FindBinding(spec.name);
          st.in_ptrs[k] = b->raw;
          break;
        }
      }
    }

    // Captures.
    st.caps_i.clear();
    for (const auto& [name, type] : meta.captures_i) {
      auto ref = st.for_refs.find(name);
      if (ref != st.for_refs.end()) {
        st.caps_i.push_back(ref->second);
        continue;
      }
      AVM_ASSIGN_OR_RETURN(ScalarValue s, in.GetScalar(name));
      st.caps_i.push_back(s.AsI64());
    }
    st.caps_f.clear();
    for (const auto& [name, type] : meta.captures_f) {
      AVM_ASSIGN_OR_RETURN(ScalarValue s, in.GetScalar(name));
      st.caps_f.push_back(s.AsF64());
    }

    // Outputs.
    for (size_t k = 0; k < meta.outputs.size(); ++k) {
      const auto& spec = meta.outputs[k];
      switch (spec.kind) {
        case TraceOutputSpec::Kind::kArrayVar: {
          ArrayPtr arr = in.NewArray(spec.type, std::max(n, chunk_size));
          st.out_arrays[k] = arr;
          st.out_ptrs[k] = arr->vec.RawData();
          break;
        }
        case TraceOutputSpec::Kind::kDataWrite: {
          DataBinding* b = in.FindBinding(spec.name);
          AVM_ASSIGN_OR_RETURN(int64_t pos, EvalPos(in, spec.pos));
          if (static_cast<uint64_t>(pos) + n > b->len) {
            return Status::OutOfRange(
                StrFormat("compiled write past end of %s", spec.name.c_str()));
          }
          st.out_ptrs[k] = static_cast<uint8_t*>(b->raw) +
                           static_cast<uint64_t>(pos) * TypeWidth(b->type);
          break;
        }
        case TraceOutputSpec::Kind::kFoldScalar:
          std::memset(st.fold_bufs[k].data(), 0, 8);
          st.out_ptrs[k] = st.fold_bufs[k].data();
          break;
      }
    }

    const int32_t rc =
        fn(st.in_ptrs.data(), st.out_ptrs.data(), st.caps_i.data(),
           st.caps_f.data(), n, sel, sel_n, st.out_counts.data());
    if (rc != 0) {
      return Status::RuntimeError(
          StrFormat("compiled trace returned %d", rc));
    }

    // Publish results.
    for (size_t k = 0; k < meta.outputs.size(); ++k) {
      const auto& spec = meta.outputs[k];
      switch (spec.kind) {
        case TraceOutputSpec::Kind::kArrayVar: {
          ArrayPtr arr = st.out_arrays[k];
          if (spec.condensed) {
            arr->len = st.out_counts[k];
          } else {
            arr->len = n;
            if (sel != nullptr && sel_owner != nullptr) {
              arr->sel.Reset(std::max(sel_n, uint32_t{1}));
              std::memcpy(arr->sel.Data(), sel, sizeof(sel_t) * sel_n);
              arr->sel.set_count(sel_n);
              arr->sel.set_enabled(true);
            }
          }
          in.SetVar(spec.name, Value::A(arr));
          break;
        }
        case TraceOutputSpec::Kind::kFoldScalar:
          in.SetVar(spec.name,
                    Value::S(ScalarValue::Load(spec.type,
                                               st.fold_bufs[k].data())));
          break;
        case TraceOutputSpec::Kind::kDataWrite:
          break;
      }
    }
    return Status::OK();
  };
  return inj;
}

}  // namespace avm::jit
