#include "jit/codegen.h"

#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "dsl/printer.h"
#include "ir/prim.h"
#include "util/hash.h"
#include "util/string_util.h"

namespace avm::jit {

Result<PosRef> PosRef::From(const dsl::Expr& e) {
  PosRef p;
  if (e.kind == dsl::ExprKind::kConst) {
    p.kind = Kind::kConst;
    p.const_i = e.const_i;
    return p;
  }
  if (e.kind == dsl::ExprKind::kVarRef) {
    p.kind = Kind::kVar;
    p.var = e.var;
    return p;
  }
  return Status::NotImplemented(
      "read/write position must be a variable or constant for compilation");
}

namespace {

using dsl::Expr;
using dsl::ExprKind;
using dsl::ScalarOp;
using dsl::SkeletonKind;
using dsl::StmtKind;
using dsl::StmtPtr;
using ir::ArgKind;
using ir::DepGraph;
using ir::DepNode;
using ir::PrimArg;
using ir::PrimProgram;
using ir::Trace;

// C type used in generated code (bool buffers are uint8).
const char* CType(TypeId t) {
  return t == TypeId::kBool ? "unsigned char" : TypeCName(t);
}

// The scalar helper library every generated translation unit carries,
// followed by a textual copy of the trace ABI structs. The struct
// definitions MUST stay layout-identical to src/jit/trace_abi.h — the
// generated code is compiled standalone and cannot include it.
const char* kPreamble = R"(#include <cstdint>
#include <cmath>
#include <limits>
#include <type_traits>

namespace {
template <class T> inline T avm_addw(T a, T b) {
  if constexpr (std::is_integral<T>::value) {
    using U = typename std::make_unsigned<T>::type;
    return T(U(a) + U(b));
  } else { return a + b; }
}
template <class T> inline T avm_subw(T a, T b) {
  if constexpr (std::is_integral<T>::value) {
    using U = typename std::make_unsigned<T>::type;
    return T(U(a) - U(b));
  } else { return a - b; }
}
template <class T> inline T avm_mulw(T a, T b) {
  if constexpr (std::is_integral<T>::value) {
    using U = typename std::make_unsigned<T>::type;
    return T(U(a) * U(b));
  } else { return a * b; }
}
template <class T> inline T avm_div(T a, T b) {
  if constexpr (std::is_integral<T>::value) {
    if (b == 0) return T(0);
    if constexpr (std::is_signed<T>::value) {
      if (b == T(-1)) {
        return a == std::numeric_limits<T>::min() ? a : T(-a);
      }
    }
    return T(a / b);
  } else { return a / b; }
}
template <class T> inline T avm_mod(T a, T b) {
  if constexpr (std::is_integral<T>::value) {
    if (b == 0) return T(0);
    if constexpr (std::is_signed<T>::value) { if (b == T(-1)) return T(0); }
    return T(a % b);
  } else { return T(std::fmod(a, b)); }
}
template <class T> inline T avm_neg(T a) {
  if constexpr (std::is_integral<T>::value) {
    using U = typename std::make_unsigned<T>::type;
    return T(U(0) - U(a));
  } else { return -a; }
}
template <class T> inline T avm_abs(T a) { return a < T(0) ? avm_neg(a) : a; }
inline long long avm_hash(long long k0) {
  unsigned long long k = (unsigned long long)k0;
  k ^= k >> 33; k *= 0xff51afd7ed558ccdULL;
  k ^= k >> 33; k *= 0xc4ceb9fe1a85ec53ULL;
  k ^= k >> 33;
  return (long long)k;
}

// Mirror of avm::jit::TraceFault / TraceCallArgs (src/jit/trace_abi.h).
struct TraceFault { int64_t index; uint64_t bound; };
struct TraceCallArgs {
  const void* const* in;
  const uint64_t* in_lens;
  void* const* out;
  const uint64_t* out_lens;
  const int64_t* ci;
  const double* cf;
  uint32_t n;
  const uint32_t* sel;
  uint32_t sel_n;
  uint32_t* out_counts;
  int64_t* scalars;
  TraceFault* fault;
};
}  // namespace
)";

// ---------------------------------------------------------------------------
// Emission context
// ---------------------------------------------------------------------------

class TraceEmitter {
 public:
  TraceEmitter(const dsl::Program& program, const DepGraph& graph,
               const Trace& trace, const CodegenOptions& options)
      : program_(program), graph_(graph), trace_(trace), options_(options) {}

  Result<GeneratedTrace> Run();

 private:
  // --- analysis -------------------------------------------------------------
  Status AnalyzeStatements();
  void ComputeSelDependence();
  Status Validate();
  Status ValidateCaptureFreshness();
  Status AssignInputsOutputs();

  // --- emission -------------------------------------------------------------
  Status EmitNodes();
  Result<std::string> ValueOf(uint32_t node_id);
  Result<std::string> EmitNodeValue(const DepNode& node);
  Result<std::string> ResolveValueArg(const Expr& arg);
  Result<std::string> EmitPrim(const PrimProgram& prog,
                               const std::vector<std::string>& input_exprs);
  Result<std::string> EmitCaptureRef(const std::string& name, TypeId t);
  std::string NewTemp() { return StrFormat("t%d", temp_counter_++); }

  bool InTrace(uint32_t node_id) const {
    return trace_node_set_.contains(node_id);
  }
  bool DependsOnFilter(uint32_t node_id) const;
  bool SelDependent(uint32_t node_id) const {
    return sel_dependent_.contains(node_id);
  }
  /// True when `node_id`'s work belongs in the positional pass: the trace is
  /// selection-specialized but the node is independent of every
  /// selection-carrying input, so interpretation computes it over ALL rows.
  bool InPositionalPass(uint32_t node_id) const {
    return sel_mode_ && !SelDependent(node_id);
  }

  /// Stream new statements go to: the positional pass, or the pre/post
  /// guard section of the main (guarded / selected) loop.
  std::ostringstream& Body() {
    if (in_pos_loop_) return posloop_;
    return post_filter_mode_ ? post_ : pre_;
  }
  /// Per-loop cache of node id -> emitted C value expression. Values are
  /// re-emitted (recomputed) when a selected-pass node consumes a
  /// positional-pass value — scalar recomputation is cheaper than spilling.
  std::unordered_map<uint32_t, std::string>& Values() {
    return in_pos_loop_ ? node_value_pos_ : node_value_;
  }

  const dsl::Program& program_;
  const DepGraph& graph_;
  const Trace& trace_;
  const CodegenOptions& options_;

  GeneratedTrace out_;
  std::unordered_set<uint32_t> trace_node_set_;
  std::unordered_map<const Expr*, uint32_t> expr_to_node_;
  std::unordered_map<std::string, TypeId> let_types_;  // name -> element type
  /// (body-statement ordinal, var) of every scalar assignment in the loop
  /// body — capture-freshness analysis (see ValidateCaptureFreshness).
  std::vector<std::pair<uint32_t, std::string>> body_assigns_;
  std::unordered_map<std::string, size_t> input_slot_;  // spec name key -> idx
  std::unordered_map<uint32_t, size_t> node_out_slot_;  // write/scatter node
  std::unordered_map<uint32_t, ScalarOp> scatter_combine_;  // from Validate
  std::unordered_map<uint32_t, std::string> node_value_;      // guarded loop
  std::unordered_map<uint32_t, std::string> node_value_pos_;  // positional
  std::unordered_map<std::string, size_t> cap_i_slot_, cap_f_slot_;
  std::unordered_set<uint32_t> sel_dependent_;
  std::set<std::string> active_sel_inputs_;  // chunk inputs carrying a sel
  bool sel_mode_ = false;
  int filter_node_ = -1;
  bool post_filter_mode_ = false;
  bool in_pos_loop_ = false;
  std::ostringstream decls_;    // pre-loop declarations
  std::ostringstream posloop_;  // positional pass body (sel mode only)
  std::ostringstream pre_;      // main loop body before the filter guard
  std::ostringstream guard_;    // the filter guard
  std::ostringstream post_;     // main loop body after the guard
  std::ostringstream counts_;   // out_counts / scalars assignments
  std::ostringstream tail_;     // post-loop stores
  int temp_counter_ = 0;
};

Status TraceEmitter::AnalyzeStatements() {
  for (uint32_t id : trace_.node_ids) trace_node_set_.insert(id);
  for (const auto& n : graph_.nodes()) expr_to_node_[n.expr] = n.id;

  // Locate the loop body (the graph was built from it).
  const std::vector<StmtPtr>* body = &program_.stmts;
  for (const auto& s : program_.stmts) {
    if (s->kind == StmtKind::kLoop) {
      body = &s->body;
      break;
    }
  }

  // Element types of let-bound values (for chunk-var inputs).
  std::function<void(const std::vector<StmtPtr>&)> collect =
      [&](const std::vector<StmtPtr>& stmts) {
        for (const auto& s : stmts) {
          if (s->kind == StmtKind::kLet && s->expr) {
            let_types_[s->var] = s->expr->type;
          }
          collect(s->body);
          collect(s->else_body);
        }
      };
  collect(program_.stmts);

  // Scalar assignments per body-statement ordinal (the same ordinals
  // DepGraph::Build stamps into DepNode::stmt_index), including those
  // nested in if-bodies.
  uint32_t ord = 0;
  for (const auto& s : *body) {
    std::function<void(const dsl::Stmt&)> scan = [&](const dsl::Stmt& st) {
      if (st.kind == StmtKind::kAssign || st.kind == StmtKind::kMutDef) {
        body_assigns_.emplace_back(ord, st.var);
      }
      for (const auto& c : st.body) scan(*c);
      for (const auto& c : st.else_body) scan(*c);
    };
    scan(*s);
    ++ord;
  }

  // Statement coverage: every stmt whose skeleton nodes are all in the
  // trace is covered; partially covered statements are rejected.
  bool found_anchor = false;
  for (const auto& s : *body) {
    if (s->expr == nullptr) continue;
    std::vector<uint32_t> stmt_nodes;
    std::function<void(const Expr&)> walk = [&](const Expr& e) {
      auto it = expr_to_node_.find(&e);
      if (it != expr_to_node_.end()) stmt_nodes.push_back(it->second);
      for (const auto& a : e.args) walk(*a);
      if (e.body) walk(*e.body);
    };
    walk(*s->expr);
    if (stmt_nodes.empty()) continue;
    size_t inside = 0;
    for (uint32_t id : stmt_nodes) {
      if (InTrace(id)) ++inside;
    }
    if (inside == 0) continue;
    if (inside != stmt_nodes.size()) {
      return Status::InvalidArgument(
          "trace does not align with statement boundaries");
    }
    out_.covered_stmt_ids.push_back(s->id);
    if (!found_anchor) {
      out_.anchor_stmt_id = s->id;
      found_anchor = true;
    }
  }
  if (!found_anchor) {
    return Status::InvalidArgument("trace covers no statements");
  }
  return Status::OK();
}

void TraceEmitter::ComputeSelDependence() {
  // The selection-carrying inputs this trace actually consumes: chunk-var
  // inputs (non-data boundary names) the VM observed a selection on.
  for (const auto& name : trace_.inputs) {
    if (program_.FindData(name) != nullptr) continue;
    if (options_.sel_inputs.contains(name)) active_sel_inputs_.insert(name);
  }
  sel_mode_ = !active_sel_inputs_.empty();
  if (!sel_mode_) return;
  out_.sel_inputs.assign(active_sel_inputs_.begin(),
                         active_sel_inputs_.end());

  // A node is selection-dependent when it references a selection-carrying
  // chunk input or consumes an in-trace node that is. trace_.node_ids is in
  // topological order, so one pass suffices.
  for (uint32_t id : trace_.node_ids) {
    const DepNode& n = graph_.nodes()[id];
    bool dep = false;
    std::function<void(const Expr&)> walk = [&](const Expr& e) {
      if (e.kind == ExprKind::kVarRef &&
          active_sel_inputs_.contains(e.var)) {
        dep = true;
      }
      for (const auto& a : e.args) {
        if (a->kind != ExprKind::kLambda) walk(*a);
      }
    };
    walk(*n.expr);
    for (uint32_t in : n.inputs) {
      if (InTrace(in) && SelDependent(in)) dep = true;
    }
    if (dep) sel_dependent_.insert(id);
  }
}

Status TraceEmitter::ValidateCaptureFreshness() {
  // The harness resolves captured scalars from the environment BEFORE the
  // call, so a capture whose value is produced or reassigned inside the
  // trace's statement span would feed the PREVIOUS iteration's value into
  // the compiled code while interpretation uses the fresh one — the
  // scalar sibling of the statement-convexity hazard. (Assignments AFTER
  // the last covered statement are fine: interpretation also reads the
  // pre-assignment value at the covered statements.)
  uint32_t anchor = UINT32_MAX, last = 0;
  for (uint32_t id : trace_.node_ids) {
    anchor = std::min(anchor, graph_.nodes()[id].stmt_index);
    last = std::max(last, graph_.nodes()[id].stmt_index);
  }

  // Free scalar references of the covered expressions (lambda parameters
  // are bound, not captured).
  std::set<std::string> captures;
  std::function<void(const Expr&, std::set<std::string>&)> walk =
      [&](const Expr& e, std::set<std::string>& bound) {
        if (e.kind == ExprKind::kVarRef) {
          if (e.shape == dsl::Shape::kScalar && !bound.contains(e.var)) {
            captures.insert(e.var);
          }
          return;
        }
        if (e.kind == ExprKind::kLambda) {
          std::set<std::string> inner = bound;
          for (const auto& p : e.params) inner.insert(p);
          if (e.body) walk(*e.body, inner);
          return;
        }
        for (const auto& a : e.args) walk(*a, bound);
        if (e.body) walk(*e.body, bound);
      };
  std::set<std::string> no_bound;
  for (uint32_t id : trace_.node_ids) {
    walk(*graph_.nodes()[id].expr, no_bound);
  }

  for (const std::string& name : captures) {
    // A producer strictly AFTER the span is loop-carried: interpretation
    // reads the previous iteration's value at the covered statements too,
    // so the pre-call capture is consistent and may compile.
    const int prod = graph_.ProducerOf(name);
    if (prod >= 0 &&
        graph_.nodes()[static_cast<size_t>(prod)].stmt_index >= anchor &&
        graph_.nodes()[static_cast<size_t>(prod)].stmt_index <= last) {
      return Status::NotImplemented(StrFormat(
          "captured scalar '%s' is produced inside the trace's statement "
          "span (the capture would be one iteration stale)",
          name.c_str()));
    }
    for (const auto& [ord, var] : body_assigns_) {
      if (var == name && ord >= anchor && ord <= last) {
        return Status::NotImplemented(StrFormat(
            "captured scalar '%s' is reassigned inside the trace's "
            "statement span (the capture would be stale)",
            name.c_str()));
      }
    }
  }
  return Status::OK();
}

bool TraceEmitter::DependsOnFilter(uint32_t node_id) const {
  if (filter_node_ < 0) return false;
  if (node_id == static_cast<uint32_t>(filter_node_)) return false;
  // DFS towards inputs.
  std::vector<uint32_t> stack{node_id};
  std::set<uint32_t> seen;
  while (!stack.empty()) {
    uint32_t id = stack.back();
    stack.pop_back();
    for (uint32_t in : graph_.nodes()[id].inputs) {
      if (in == static_cast<uint32_t>(filter_node_)) return true;
      if (seen.insert(in).second && InTrace(in)) stack.push_back(in);
    }
  }
  return false;
}

Status TraceEmitter::Validate() {
  // Statement convexity: the trace executes all-at-once at its anchor
  // statement, so every value entering it must be produced BEFORE that
  // statement. An input produced by an interpreted statement between the
  // covered ones (e.g. a filter the partition excluded) would still hold
  // the previous iteration's value — the stale-selection miscompile the
  // differential harness caught. The partitioner keeps regions convex
  // with the same helper (ir::GreedyPartition); this is the decline-side
  // guarantee.
  const int violation = ir::StmtConvexityViolation(graph_, trace_.node_ids);
  if (violation >= 0) {
    return Status::InvalidArgument(
        StrFormat("the trace is not statement-convex: it conflicts with "
                  "'%s' across its statement span (stale-value hazard)",
                  graph_.nodes()[static_cast<size_t>(violation)]
                      .label.c_str()));
  }
  AVM_RETURN_NOT_OK(ValidateCaptureFreshness());

  int filters = 0;
  for (uint32_t id : trace_.node_ids) {
    const DepNode& n = graph_.nodes()[id];
    switch (n.kind) {
      case SkeletonKind::kRead:
      case SkeletonKind::kMap:
      case SkeletonKind::kFold:
      case SkeletonKind::kWrite:
        break;
      case SkeletonKind::kGather: {
        // The generated code bounds-checks every index against the base
        // length (TraceCallArgs::in_lens) and reports a TraceFault, so the
        // compiled path fails exactly like the interpreter's check. Only
        // whole data arrays can be bases: a chunk-array base would need the
        // producing chunk's dynamic length in the frame.
        const Expr& base = *n.expr->args[0];
        if (base.kind != ExprKind::kVarRef ||
            program_.FindData(base.var) == nullptr) {
          return Status::NotImplemented(
              "gather base must be a data array (chunk-array bases stay "
              "interpreted)");
        }
        break;
      }
      case SkeletonKind::kScatter: {
        const Expr& dest = *n.expr->args[0];
        if (dest.kind != ExprKind::kVarRef ||
            program_.FindData(dest.var) == nullptr) {
          return Status::NotImplemented(
              "scatter destination must be a data array");
        }
        ScalarOp combine = ScalarOp::kCast;  // sentinel: overwrite
        if (n.expr->args.size() == 4) {
          // Mirror the interpreter's restriction: the conflict function
          // must normalize to one add/min/max of (old, new).
          AVM_ASSIGN_OR_RETURN(
              PrimProgram prog,
              ir::Normalize(*n.expr->args[3],
                            {program_.FindData(dest.var)->type,
                             n.expr->args[2]->type}));
          const bool ok =
              prog.instrs.size() == 1 && prog.result_is_input < 0 &&
              (prog.instrs[0].op == ScalarOp::kAdd ||
               prog.instrs[0].op == ScalarOp::kMin ||
               prog.instrs[0].op == ScalarOp::kMax) &&
              prog.instrs[0].num_args == 2 &&
              prog.instrs[0].args[0].kind == ArgKind::kInput &&
              prog.instrs[0].args[0].index == 0 &&
              prog.instrs[0].args[1].kind == ArgKind::kInput &&
              prog.instrs[0].args[1].index == 1;
          if (!ok) {
            return Status::NotImplemented(
                "scatter conflict function must be a single add/min/max of "
                "(old, new)");
          }
          combine = prog.instrs[0].op;
        }
        scatter_combine_[id] = combine;
        // The interpreter iterates a scatter over the INDEX array's
        // selection; the compiled loop iterates the node's overall
        // restriction (guard survivors / selected rows / all rows). The
        // two only agree when the index carries the node's restriction —
        // e.g. a positional index with selection-carrying values would
        // scatter all rows interpreted but only selected rows compiled.
        auto restriction = [&](const Expr& a) -> int {
          int prod = -1;
          if (a.kind == ExprKind::kVarRef) {
            if (active_sel_inputs_.contains(a.var)) return 1;
            prod = graph_.ProducerOf(a.var);
          } else if (a.kind == ExprKind::kSkeleton) {
            auto it = expr_to_node_.find(&a);
            if (it != expr_to_node_.end()) prod = static_cast<int>(it->second);
          }
          if (prod < 0 || !InTrace(static_cast<uint32_t>(prod))) return 0;
          const uint32_t p = static_cast<uint32_t>(prod);
          if (DependsOnFilter(p)) return 2;
          return SelDependent(p) ? 1 : 0;
        };
        const int node_level = DependsOnFilter(id) ? 2
                               : SelDependent(id) ? 1
                                                  : 0;
        if (restriction(*n.expr->args[1]) != node_level) {
          return Status::NotImplemented(
              "scatter index selection must match the scatter's iteration "
              "domain (the interpreter iterates the index's selection)");
        }
        break;
      }
      case SkeletonKind::kFilter:
        ++filters;
        filter_node_ = static_cast<int>(id);
        // Every consumer must be in-trace (selection vectors do not cross
        // the compiled-code boundary).
        for (uint32_t c : n.consumers) {
          if (!InTrace(c)) {
            return Status::InvalidArgument(
                "filter output escapes the trace");
          }
        }
        // In a selection-specialized trace a positional-input filter would
        // mint a selection unrelated to the incoming one; interpretation
        // rejects combining those, so the trace declines the shape.
        if (sel_mode_ && !SelDependent(id)) {
          return Status::NotImplemented(
              "filter over a positional input cannot join a "
              "selection-carrying trace");
        }
        break;
      case SkeletonKind::kCondense: {
        // Input must be the in-trace filter, or (in a selection-carrying
        // trace) any selection-dependent value — both append under `cnt`.
        const bool from_filter =
            n.inputs.size() == 1 && InTrace(n.inputs[0]) &&
            graph_.nodes()[n.inputs[0]].kind == SkeletonKind::kFilter;
        if (!from_filter && !(sel_mode_ && SelDependent(id))) {
          return Status::InvalidArgument(
              "condense without its filter (or a selection-carrying input) "
              "in the same trace");
        }
        break;
      }
      case SkeletonKind::kExpand:
        // A fan-out's output length is data-dependent (sum of counts) and
        // can exceed the chunk window, so the fixed-width trace ABI cannot
        // carry it. The depgraph already marks expand ineligible; this case
        // keeps the decline explicit should a trace ever reach codegen.
        return Status::NotImplemented(
            "expand fan-out has a data-dependent output length (hash-join "
            "probe stays interpreted)");
      default:
        return Status::NotImplemented(
            StrFormat("skeleton %s not supported in compiled traces",
                      dsl::SkeletonName(n.kind)));
    }
  }
  if (filters > 1) {
    return Status::NotImplemented("more than one filter per trace");
  }
  if (sel_mode_ && filter_node_ >= 0) {
    // With an in-trace filter, condensed stores share the guard and the
    // `cnt` counter — a write/condense of a selection-carrying value that
    // does NOT flow through the filter must not (interpretation writes
    // every selected row of it, not just the guard survivors).
    for (uint32_t id : trace_.node_ids) {
      const DepNode& n = graph_.nodes()[id];
      if ((n.kind == SkeletonKind::kWrite ||
           n.kind == SkeletonKind::kCondense) &&
          SelDependent(id) && !DependsOnFilter(id)) {
        return Status::NotImplemented(
            "write/condense of a selection-carrying value that bypasses "
            "the in-trace filter");
      }
    }
  }
  // Escaping post-filter values must be condense nodes.
  for (uint32_t id : trace_.node_ids) {
    const DepNode& n = graph_.nodes()[id];
    if (n.kind == SkeletonKind::kWrite || n.kind == SkeletonKind::kScatter) {
      continue;
    }
    bool escapes = false;
    for (uint32_t c : n.consumers) {
      if (!InTrace(c)) escapes = true;
    }
    std::string name = graph_.OutputNameOf(id);
    for (const auto& o : trace_.outputs) {
      if (o == name) escapes = true;
    }
    if (escapes && DependsOnFilter(id) && n.kind != SkeletonKind::kCondense) {
      return Status::InvalidArgument(
          "post-filter value escapes the trace without condense");
    }
  }
  return Status::OK();
}

Status TraceEmitter::AssignInputsOutputs() {
  auto add_input = [&](TraceInputSpec spec) -> size_t {
    std::string key = StrFormat("%d:%s", static_cast<int>(spec.kind),
                                spec.name.c_str());
    if (spec.pos.valid()) {
      key += ":" + spec.pos.ToString();
    }
    auto it = input_slot_.find(key);
    if (it != input_slot_.end()) return it->second;
    out_.inputs.push_back(std::move(spec));
    input_slot_[key] = out_.inputs.size() - 1;
    return out_.inputs.size() - 1;
  };

  // Chunk-variable inputs: names in trace_.inputs that are not data arrays
  // (those become read windows below).
  for (const auto& name : trace_.inputs) {
    if (program_.FindData(name) != nullptr) continue;
    auto it = let_types_.find(name);
    if (it == let_types_.end()) {
      return Status::InvalidArgument("unknown trace input " + name);
    }
    add_input({TraceInputSpec::Kind::kChunkVar, name, it->second, PosRef{}});
  }

  // Read/gather inputs.
  for (uint32_t id : trace_.node_ids) {
    const DepNode& n = graph_.nodes()[id];
    if (n.kind == SkeletonKind::kRead) {
      AVM_ASSIGN_OR_RETURN(PosRef pos, PosRef::From(*n.expr->args[0]));
      const std::string& data = n.expr->args[1]->var;
      auto spec_it = options_.scheme_specialization.find(data);
      if (spec_it != options_.scheme_specialization.end() &&
          spec_it->second == Scheme::kFor) {
        add_input({TraceInputSpec::Kind::kForDeltas, data, TypeId::kI32,
                   pos});
        out_.scheme_requirements[data] = Scheme::kFor;
      } else {
        add_input({TraceInputSpec::Kind::kDataRead, data,
                   program_.FindData(data)->type, pos});
      }
    } else if (n.kind == SkeletonKind::kGather) {
      const Expr& base = *n.expr->args[0];
      add_input({TraceInputSpec::Kind::kDataWhole, base.var,
                 program_.FindData(base.var)->type, PosRef{}});
    }
  }

  // The scalar result of a let-bound write/scatter (the program consumes
  // the written count — condensing-output cursors).
  auto result_var_of = [&](uint32_t id) -> std::string {
    std::string name = graph_.OutputNameOf(id);
    return let_types_.contains(name) ? name : std::string();
  };

  // Outputs: data writes/scatters + escaping values + fold scalars.
  for (uint32_t id : trace_.node_ids) {
    const DepNode& n = graph_.nodes()[id];
    if (n.kind == SkeletonKind::kWrite) {
      AVM_ASSIGN_OR_RETURN(PosRef pos, PosRef::From(*n.expr->args[1]));
      // A write condenses when its value carries a selection: from the
      // in-trace filter, from an explicit condense, or from a
      // selection-carrying input (the interpreter's write condenses
      // selection-carrying values on the fly).
      bool condensed = false;
      if (!n.inputs.empty() && DependsOnFilter(n.inputs[0])) condensed = true;
      if (!n.inputs.empty() &&
          graph_.nodes()[n.inputs[0]].kind == SkeletonKind::kCondense) {
        condensed = true;
      }
      if (SelDependent(id)) condensed = true;
      TraceOutputSpec spec;
      spec.kind = TraceOutputSpec::Kind::kDataWrite;
      spec.name = n.expr->args[0]->var;
      spec.type = program_.FindData(n.expr->args[0]->var)->type;
      spec.condensed = condensed;
      spec.pos = pos;
      spec.sel_dependent = SelDependent(id);
      spec.result_var = result_var_of(id);
      node_out_slot_[id] = out_.outputs.size();
      out_.outputs.push_back(std::move(spec));
      continue;
    }
    if (n.kind == SkeletonKind::kScatter) {
      TraceOutputSpec spec;
      spec.kind = TraceOutputSpec::Kind::kDataScatter;
      spec.name = n.expr->args[0]->var;
      spec.type = program_.FindData(n.expr->args[0]->var)->type;
      spec.sel_dependent = SelDependent(id);
      spec.result_var = result_var_of(id);
      node_out_slot_[id] = out_.outputs.size();
      out_.outputs.push_back(std::move(spec));
      continue;
    }
    if (n.kind == SkeletonKind::kFold) {
      std::string name = graph_.OutputNameOf(id);
      TraceOutputSpec spec;
      spec.kind = TraceOutputSpec::Kind::kFoldScalar;
      spec.name = name;
      spec.type = n.expr->type;
      spec.sel_dependent = SelDependent(id);
      node_out_slot_[id] = out_.outputs.size();
      out_.outputs.push_back(std::move(spec));
      continue;
    }
    // Escaping array value?
    std::string name = graph_.OutputNameOf(id);
    bool is_traced_output = false;
    for (const auto& o : trace_.outputs) {
      if (o == name) is_traced_output = true;
    }
    bool consumed_outside = false;
    for (uint32_t c : n.consumers) {
      if (!InTrace(c)) consumed_outside = true;
    }
    // A value also escapes when scalar statements outside the graph use it
    // (e.g. len(a)) — conservatively, every let-bound trace value escapes so
    // the environment stays consistent after injection.
    bool let_bound = let_types_.contains(name);
    if (is_traced_output || consumed_outside || let_bound) {
      bool condensed = n.kind == SkeletonKind::kCondense;
      TraceOutputSpec spec;
      spec.kind = TraceOutputSpec::Kind::kArrayVar;
      spec.name = name;
      spec.type = n.expr->type;
      spec.condensed = condensed;
      spec.sel_dependent = SelDependent(id);
      node_out_slot_[id] = out_.outputs.size();
      out_.outputs.push_back(std::move(spec));
    }
  }
  return Status::OK();
}

Result<std::string> TraceEmitter::EmitCaptureRef(const std::string& name,
                                                 TypeId t) {
  if (IsFloatType(t)) {
    auto it = cap_f_slot_.find(name);
    size_t slot;
    if (it == cap_f_slot_.end()) {
      out_.captures_f.emplace_back(name, t);
      slot = out_.captures_f.size() - 1;
      cap_f_slot_[name] = slot;
    } else {
      slot = it->second;
    }
    return StrFormat("((%s)cf[%zu])", CType(t), slot);
  }
  auto it = cap_i_slot_.find(name);
  size_t slot;
  if (it == cap_i_slot_.end()) {
    out_.captures_i.emplace_back(name, t);
    slot = out_.captures_i.size() - 1;
    cap_i_slot_[name] = slot;
  } else {
    slot = it->second;
  }
  return StrFormat("((%s)ci[%zu])", CType(t), slot);
}

Result<std::string> TraceEmitter::EmitPrim(
    const PrimProgram& prog, const std::vector<std::string>& input_exprs) {
  if (prog.result_is_input >= 0) {
    return input_exprs[static_cast<size_t>(prog.result_is_input)];
  }
  std::vector<std::string> reg_names(static_cast<size_t>(prog.num_regs));
  for (const auto& instr : prog.instrs) {
    auto operand = [&](const PrimArg& a) -> Result<std::string> {
      switch (a.kind) {
        case ArgKind::kInput:
          return StrFormat("((%s)(%s))", CType(instr.in_type),
                           input_exprs[static_cast<size_t>(a.index)].c_str());
        case ArgKind::kReg:
          return StrFormat("((%s)%s)", CType(instr.in_type),
                           reg_names[static_cast<size_t>(a.index)].c_str());
        case ArgKind::kConstI:
          return StrFormat("((%s)%lldLL)", CType(instr.in_type),
                           (long long)a.const_i);
        case ArgKind::kConstF:
          return StrFormat("((%s)%.17g)", CType(instr.in_type), a.const_f);
        case ArgKind::kCapture: {
          AVM_ASSIGN_OR_RETURN(std::string ref,
                               EmitCaptureRef(a.name, a.type));
          return StrFormat("((%s)%s)", CType(instr.in_type), ref.c_str());
        }
      }
      return Status::Internal("bad arg");
    };
    AVM_ASSIGN_OR_RETURN(std::string a, operand(instr.args[0]));
    std::string b;
    if (instr.num_args == 2) {
      AVM_ASSIGN_OR_RETURN(b, operand(instr.args[1]));
    }
    const char* it = CType(instr.in_type);
    const char* ot = CType(instr.out_type);
    std::string expr;
    switch (instr.op) {
      case ScalarOp::kAdd: expr = StrFormat("avm_addw<%s>(%s, %s)", it, a.c_str(), b.c_str()); break;
      case ScalarOp::kSub: expr = StrFormat("avm_subw<%s>(%s, %s)", it, a.c_str(), b.c_str()); break;
      case ScalarOp::kMul: expr = StrFormat("avm_mulw<%s>(%s, %s)", it, a.c_str(), b.c_str()); break;
      case ScalarOp::kDiv: expr = StrFormat("avm_div<%s>(%s, %s)", it, a.c_str(), b.c_str()); break;
      case ScalarOp::kMod: expr = StrFormat("avm_mod<%s>(%s, %s)", it, a.c_str(), b.c_str()); break;
      case ScalarOp::kMin: expr = StrFormat("(%s < %s ? %s : %s)", a.c_str(), b.c_str(), a.c_str(), b.c_str()); break;
      case ScalarOp::kMax: expr = StrFormat("(%s > %s ? %s : %s)", a.c_str(), b.c_str(), a.c_str(), b.c_str()); break;
      case ScalarOp::kEq: expr = StrFormat("(%s == %s)", a.c_str(), b.c_str()); break;
      case ScalarOp::kNe: expr = StrFormat("(%s != %s)", a.c_str(), b.c_str()); break;
      case ScalarOp::kLt: expr = StrFormat("(%s < %s)", a.c_str(), b.c_str()); break;
      case ScalarOp::kLe: expr = StrFormat("(%s <= %s)", a.c_str(), b.c_str()); break;
      case ScalarOp::kGt: expr = StrFormat("(%s > %s)", a.c_str(), b.c_str()); break;
      case ScalarOp::kGe: expr = StrFormat("(%s >= %s)", a.c_str(), b.c_str()); break;
      case ScalarOp::kAnd: expr = StrFormat("(%s && %s)", a.c_str(), b.c_str()); break;
      case ScalarOp::kOr: expr = StrFormat("(%s || %s)", a.c_str(), b.c_str()); break;
      case ScalarOp::kNot: expr = StrFormat("(!%s)", a.c_str()); break;
      case ScalarOp::kNeg: expr = StrFormat("avm_neg<%s>(%s)", it, a.c_str()); break;
      case ScalarOp::kAbs: expr = StrFormat("avm_abs<%s>(%s)", it, a.c_str()); break;
      case ScalarOp::kSqrt:
        expr = instr.out_type == TypeId::kF32
                   ? StrFormat("std::sqrt((float)%s)", a.c_str())
                   : StrFormat("std::sqrt((double)%s)", a.c_str());
        break;
      case ScalarOp::kCast: expr = a; break;
      case ScalarOp::kHash:
        expr = StrFormat("avm_hash((long long)%s)", a.c_str());
        break;
    }
    std::string tmp = NewTemp();
    Body() << StrFormat("      const %s %s = (%s)(%s);\n", ot, tmp.c_str(), ot,
                        expr.c_str());
    reg_names[static_cast<size_t>(instr.out_reg)] = tmp;
  }
  return reg_names[static_cast<size_t>(prog.result_reg)];
}

Result<std::string> TraceEmitter::ResolveValueArg(const Expr& arg) {
  if (arg.kind == ExprKind::kConst) {
    return arg.const_is_float
               ? StrFormat("%.17g", arg.const_f)
               : StrFormat("%lldLL", (long long)arg.const_i);
  }
  if (arg.kind == ExprKind::kSkeleton) {
    auto it = expr_to_node_.find(&arg);
    if (it != expr_to_node_.end() && InTrace(it->second)) {
      return ValueOf(it->second);
    }
    return Status::InvalidArgument("nested skeleton outside trace");
  }
  if (arg.kind == ExprKind::kVarRef) {
    if (arg.shape == dsl::Shape::kScalar) {
      return EmitCaptureRef(arg.var, arg.type);
    }
    // Array variable: produced in-trace or a chunk input.
    int prod = graph_.ProducerOf(arg.var);
    if (prod >= 0 && InTrace(static_cast<uint32_t>(prod))) {
      return ValueOf(static_cast<uint32_t>(prod));
    }
    std::string key = StrFormat("%d:%s",
                                static_cast<int>(TraceInputSpec::Kind::kChunkVar),
                                arg.var.c_str());
    auto slot = input_slot_.find(key);
    if (slot == input_slot_.end()) {
      return Status::InvalidArgument("unresolved trace value " + arg.var);
    }
    return StrFormat("((const %s*)in[%zu])[i]", CType(arg.type),
                     slot->second);
  }
  return Status::InvalidArgument("unsupported argument expression");
}

Result<std::string> TraceEmitter::ValueOf(uint32_t node_id) {
  auto it = Values().find(node_id);
  if (it != Values().end()) return it->second;
  AVM_ASSIGN_OR_RETURN(std::string v, EmitNodeValue(graph_.nodes()[node_id]));
  Values()[node_id] = v;
  return v;
}

Result<std::string> TraceEmitter::EmitNodeValue(const DepNode& node) {
  const Expr& e = *node.expr;
  switch (node.kind) {
    case SkeletonKind::kRead: {
      const std::string& data = e.args[1]->var;
      auto spec_it = options_.scheme_specialization.find(data);
      if (spec_it != options_.scheme_specialization.end() &&
          spec_it->second == Scheme::kFor) {
        std::string key =
            StrFormat("%d:%s:%s",
                      static_cast<int>(TraceInputSpec::Kind::kForDeltas),
                      data.c_str(), dsl::PrintExpr(*e.args[0]).c_str());
        size_t slot = input_slot_.at(key);
        AVM_ASSIGN_OR_RETURN(std::string ref,
                             EmitCaptureRef("__for_ref_" + data, TypeId::kI64));
        // value = reference + narrow delta (compressed execution).
        std::string tmp = NewTemp();
        Body() << StrFormat(
            "      const %s %s = (%s)(%s + (int64_t)((const uint32_t*)in[%zu])[i]);\n",
            CType(e.type), tmp.c_str(), CType(e.type), ref.c_str(), slot);
        return tmp;
      }
      std::string key = StrFormat(
          "%d:%s:%s", static_cast<int>(TraceInputSpec::Kind::kDataRead),
          data.c_str(), dsl::PrintExpr(*e.args[0]).c_str());
      size_t slot = input_slot_.at(key);
      return StrFormat("((const %s*)in[%zu])[i]", CType(e.type), slot);
    }
    case SkeletonKind::kMap: {
      std::vector<std::string> inputs;
      std::vector<TypeId> input_types;
      for (size_t i = 1; i < e.args.size(); ++i) {
        AVM_ASSIGN_OR_RETURN(std::string v, ResolveValueArg(*e.args[i]));
        inputs.push_back(std::move(v));
        input_types.push_back(e.args[i]->type);
      }
      AVM_ASSIGN_OR_RETURN(PrimProgram prog,
                           ir::Normalize(*e.args[0], input_types));
      return EmitPrim(prog, inputs);
    }
    case SkeletonKind::kFilter: {
      if (in_pos_loop_) {
        return Status::Internal("filter emitted in the positional pass");
      }
      AVM_ASSIGN_OR_RETURN(std::string in_v, ResolveValueArg(*e.args[1]));
      AVM_ASSIGN_OR_RETURN(PrimProgram prog,
                           ir::Normalize(*e.args[0], {e.args[1]->type}));
      // The predicate's temporaries belong before the guard.
      post_filter_mode_ = false;
      AVM_ASSIGN_OR_RETURN(std::string p, EmitPrim(prog, {in_v}));
      guard_ << StrFormat("      if (!(%s)) continue;\n", p.c_str());
      // The filter's value is its input's value (selection semantics).
      return in_v;
    }
    case SkeletonKind::kCondense:
      // Resolve through the argument expression, not the graph edge: the
      // input may be a boundary chunk var (selection-carrying condense
      // whose producer stayed outside the trace) — walking the edge would
      // emit out-of-trace nodes.
      return ResolveValueArg(*e.args[0]);
    case SkeletonKind::kGather: {
      const Expr& base = *e.args[0];
      AVM_ASSIGN_OR_RETURN(std::string idx, ResolveValueArg(*e.args[1]));
      std::string key = StrFormat(
          "%d:%s", static_cast<int>(TraceInputSpec::Kind::kDataWhole),
          base.var.c_str());
      size_t slot = input_slot_.at(key);
      // Bounds-checked gather: a stray index reports a TraceFault with the
      // same index/bound the interpreter's check would have raised.
      std::string ti = NewTemp();
      std::string tv = NewTemp();
      Body() << StrFormat("      const long long %s = (long long)(%s);\n",
                          ti.c_str(), idx.c_str());
      Body() << StrFormat(
          "      if (%s < 0 || (unsigned long long)%s >= in_lens[%zu]) {\n"
          "        args->fault->index = %s; args->fault->bound = "
          "in_lens[%zu];\n"
          "        return 1;\n      }\n",
          ti.c_str(), ti.c_str(), slot, ti.c_str(), slot);
      Body() << StrFormat("      const %s %s = ((const %s*)in[%zu])[%s];\n",
                          CType(e.type), tv.c_str(), CType(e.type), slot,
                          ti.c_str());
      return tv;
    }
    case SkeletonKind::kWrite:
    case SkeletonKind::kScatter:
    case SkeletonKind::kFold:
      return Status::Internal("handled by EmitNodes");
    default:
      return Status::NotImplemented("unsupported node in trace");
  }
}

Status TraceEmitter::EmitNodes() {
  // `cnt` counts guard-surviving rows: condensed outputs append at it, and
  // filter-dependent scatters report it as their processed count.
  bool needs_cnt = false;
  for (const auto& o : out_.outputs) needs_cnt |= o.condensed;
  for (uint32_t id : trace_.node_ids) {
    if (graph_.nodes()[id].kind == SkeletonKind::kScatter &&
        DependsOnFilter(id)) {
      needs_cnt = true;
    }
  }
  if (needs_cnt) decls_ << "  uint32_t cnt = 0;\n";

  // Order: pre-filter nodes, then filter, then the rest (topologically).
  std::vector<uint32_t> order;
  for (uint32_t id : trace_.node_ids) {
    if (!DependsOnFilter(id) && static_cast<int>(id) != filter_node_) {
      order.push_back(id);
    }
  }
  if (filter_node_ >= 0) order.push_back(static_cast<uint32_t>(filter_node_));
  for (uint32_t id : trace_.node_ids) {
    if (DependsOnFilter(id)) order.push_back(id);
  }

  // Tuple count an output produced: appended (cnt), every selected row
  // (sel_n), or every chunk row (n).
  auto count_expr = [&](const TraceOutputSpec& spec,
                        uint32_t node_id) -> const char* {
    if (spec.condensed || DependsOnFilter(node_id)) return "cnt";
    if (SelDependent(node_id)) return "sel_n";
    return "n";
  };

  int fold_counter = 0;
  for (uint32_t id : order) {
    const DepNode& node = graph_.nodes()[id];
    in_pos_loop_ = InPositionalPass(id);
    post_filter_mode_ = !in_pos_loop_ && (DependsOnFilter(id) ||
                                          static_cast<int>(id) == filter_node_);

    if (node.kind == SkeletonKind::kWrite) {
      const Expr& e = *node.expr;
      AVM_ASSIGN_OR_RETURN(std::string v, ResolveValueArg(*e.args[2]));
      const size_t slot = node_out_slot_.at(id);
      const TraceOutputSpec& spec = out_.outputs[slot];
      post_filter_mode_ = !in_pos_loop_ && (spec.condensed || post_filter_mode_);
      Body() << StrFormat("      ((%s*)out[%zu])[%s] = (%s)(%s);\n",
                          CType(spec.type), slot,
                          spec.condensed ? "cnt" : "i", CType(spec.type),
                          v.c_str());
      counts_ << StrFormat("  out_counts[%zu] = %s;\n", slot,
                           spec.condensed ? "cnt" : "n");
      counts_ << StrFormat("  scalars[%zu] = (int64_t)(%s);\n", slot,
                           spec.condensed ? "cnt" : "n");
      continue;
    }
    if (node.kind == SkeletonKind::kScatter) {
      const Expr& e = *node.expr;
      AVM_ASSIGN_OR_RETURN(std::string idx, ResolveValueArg(*e.args[1]));
      AVM_ASSIGN_OR_RETURN(std::string val, ResolveValueArg(*e.args[2]));
      const size_t slot = node_out_slot_.at(id);
      const TraceOutputSpec& spec = out_.outputs[slot];
      const char* dt = CType(spec.type);
      // Conflict op: overwrite, or the combine Validate() already vetted.
      const ScalarOp combine = scatter_combine_.at(id);
      std::string ti = NewTemp();
      std::string td = NewTemp();
      Body() << StrFormat("      const long long %s = (long long)(%s);\n",
                          ti.c_str(), idx.c_str());
      Body() << StrFormat(
          "      if (%s < 0 || (unsigned long long)%s >= out_lens[%zu]) {\n"
          "        args->fault->index = %s; args->fault->bound = "
          "out_lens[%zu];\n"
          "        return 2;\n      }\n",
          ti.c_str(), ti.c_str(), slot, ti.c_str(), slot);
      Body() << StrFormat("      %s* %s = (%s*)out[%zu];\n", dt, td.c_str(),
                          dt, slot);
      std::string casted = StrFormat("((%s)(%s))", dt, val.c_str());
      std::string combined;
      switch (combine) {
        case ScalarOp::kAdd:
          combined = StrFormat("avm_addw<%s>(%s[%s], %s)", dt, td.c_str(),
                               ti.c_str(), casted.c_str());
          break;
        case ScalarOp::kMin:
          combined = StrFormat("(%s[%s] < %s ? %s[%s] : %s)", td.c_str(),
                               ti.c_str(), casted.c_str(), td.c_str(),
                               ti.c_str(), casted.c_str());
          break;
        case ScalarOp::kMax:
          combined = StrFormat("(%s[%s] > %s ? %s[%s] : %s)", td.c_str(),
                               ti.c_str(), casted.c_str(), td.c_str(),
                               ti.c_str(), casted.c_str());
          break;
        default:
          combined = casted;
      }
      Body() << StrFormat("      %s[%s] = %s;\n", td.c_str(), ti.c_str(),
                          combined.c_str());
      counts_ << StrFormat("  out_counts[%zu] = %s;\n", slot,
                           count_expr(spec, id));
      counts_ << StrFormat("  scalars[%zu] = (int64_t)(%s);\n", slot,
                           count_expr(spec, id));
      continue;
    }
    if (node.kind == SkeletonKind::kFold) {
      const Expr& e = *node.expr;
      // init
      const Expr& init = *e.args[1];
      std::string init_expr;
      if (init.kind == ExprKind::kConst) {
        init_expr = init.const_is_float
                        ? StrFormat("%.17g", init.const_f)
                        : StrFormat("%lldLL", (long long)init.const_i);
      } else if (init.kind == ExprKind::kVarRef) {
        AVM_ASSIGN_OR_RETURN(init_expr, EmitCaptureRef(init.var, init.type));
      } else {
        return Status::NotImplemented("fold init must be const or variable");
      }
      AVM_ASSIGN_OR_RETURN(std::string v, ResolveValueArg(*e.args[2]));
      std::string acc = StrFormat("acc%d", fold_counter++);
      decls_ << StrFormat("  %s %s = (%s)(%s);\n", CType(e.type), acc.c_str(),
                          CType(e.type), init_expr.c_str());
      AVM_ASSIGN_OR_RETURN(
          PrimProgram prog,
          ir::Normalize(*e.args[0], {e.type, e.args[2]->type}));
      AVM_ASSIGN_OR_RETURN(std::string r, EmitPrim(prog, {acc, v}));
      Body() << StrFormat("      %s = (%s)(%s);\n", acc.c_str(),
                          CType(e.type), r.c_str());
      const size_t slot = node_out_slot_.at(id);
      tail_ << StrFormat("  *(%s*)out[%zu] = %s;\n", CType(e.type), slot,
                         acc.c_str());
      tail_ << StrFormat("  out_counts[%zu] = 1;\n", slot);
      continue;
    }

    AVM_ASSIGN_OR_RETURN(std::string v, ValueOf(id));

    // Escaping value store.
    auto slot_it = node_out_slot_.find(id);
    if (slot_it != node_out_slot_.end()) {
      const size_t slot = slot_it->second;
      const TraceOutputSpec& spec = out_.outputs[slot];
      post_filter_mode_ =
          !in_pos_loop_ && (DependsOnFilter(id) ||
                            node.kind == SkeletonKind::kCondense);
      Body() << StrFormat("      ((%s*)out[%zu])[%s] = (%s)(%s);\n",
                          CType(spec.type), slot,
                          spec.condensed ? "cnt" : "i", CType(spec.type),
                          v.c_str());
      counts_ << StrFormat("  out_counts[%zu] = %s;\n", slot,
                           spec.condensed ? "cnt" : "n");
    }
  }
  in_pos_loop_ = false;

  // Count bump at the very end of the selected path.
  if (needs_cnt) post_ << "      ++cnt;\n";
  return Status::OK();
}

Result<GeneratedTrace> TraceEmitter::Run() {
  AVM_RETURN_NOT_OK(AnalyzeStatements());
  ComputeSelDependence();
  AVM_RETURN_NOT_OK(Validate());
  AVM_RETURN_NOT_OK(AssignInputsOutputs());
  AVM_RETURN_NOT_OK(EmitNodes());

  // Derive the symbol from the generated content: identical traces (same
  // nodes, same specialization) produce identical translation units, so the
  // source-JIT cache deduplicates compilations across VM instances.
  uint64_t h = HashString(decls_.str());
  h = HashCombine(h, HashString(posloop_.str()));
  h = HashCombine(h, HashString(pre_.str()));
  h = HashCombine(h, HashString(guard_.str()));
  h = HashCombine(h, HashString(post_.str()));
  h = HashCombine(h, HashString(counts_.str()));
  h = HashCombine(h, HashString(tail_.str()));
  for (const auto& in : out_.inputs) {
    h = HashCombine(h, HashString(in.name));
    h = HashCombine(h, static_cast<uint64_t>(in.kind));
  }
  for (const auto& o : out_.outputs) {
    h = HashCombine(h, HashString(o.name));
    h = HashCombine(h, static_cast<uint64_t>(o.kind));
    h = HashCombine(h, static_cast<uint64_t>(o.condensed));
    h = HashCombine(h, static_cast<uint64_t>(o.sel_dependent));
    h = HashCombine(h, HashString(o.result_var));
  }
  for (const auto& s : out_.sel_inputs) h = HashCombine(h, HashString(s));
  out_.symbol = StrFormat("avm_trace_%016llx", (unsigned long long)h);
  out_.name = StrFormat("trace_%llx[", (unsigned long long)(h >> 40));
  for (uint32_t id : trace_.node_ids) {
    out_.name += graph_.nodes()[id].label + ";";
  }
  if (sel_mode_) out_.name += "|sel";
  out_.name += "]";

  std::ostringstream src;
  src << kPreamble;
  if (options_.emit_debug_comments) {
    src << "// trace: " << out_.name << "\n";
  }
  src << "extern \"C\" int32_t " << out_.symbol
      << "(const TraceCallArgs* args) {\n"
      << "  const void* const* in = args->in; (void)in;\n"
      << "  void* const* out = args->out; (void)out;\n"
      << "  const int64_t* ci = args->ci; (void)ci;\n"
      << "  const double* cf = args->cf; (void)cf;\n"
      << "  const uint64_t* in_lens = args->in_lens; (void)in_lens;\n"
      << "  const uint64_t* out_lens = args->out_lens; (void)out_lens;\n"
      << "  const uint32_t n = args->n; (void)n;\n"
      << "  const uint32_t sel_n = args->sel_n; (void)sel_n;\n"
      << "  uint32_t* out_counts = args->out_counts; (void)out_counts;\n"
      << "  int64_t* scalars = args->scalars; (void)scalars;\n"
      << decls_.str();
  if (!sel_mode_) {
    // Positional variant: one fused loop over every chunk row.
    src << "  for (uint32_t i = 0; i < n; ++i) {\n"
        << pre_.str() << guard_.str() << post_.str()
        << "  }\n";
  } else {
    // Selection-carrying variant: a positional pass over all rows for
    // selection-independent work, then the selected pass `i = sel[j]`.
    if (!posloop_.str().empty()) {
      src << "  for (uint32_t i = 0; i < n; ++i) {\n"
          << posloop_.str()
          << "  }\n";
    }
    src << "  for (uint32_t j = 0; j < sel_n; ++j) {\n"
        << "    const uint32_t i = args->sel[j]; (void)i;\n"
        << pre_.str() << guard_.str() << post_.str()
        << "  }\n";
  }
  src << counts_.str();
  src << tail_.str();
  src << "  return 0;\n}\n";
  out_.source = src.str();
  return std::move(out_);
}

}  // namespace

Result<GeneratedTrace> GenerateTrace(const dsl::Program& program,
                                     const ir::DepGraph& graph,
                                     const ir::Trace& trace,
                                     const CodegenOptions& options) {
  return TraceEmitter(program, graph, trace, options).Run();
}

}  // namespace avm::jit
