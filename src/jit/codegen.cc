#include "jit/codegen.h"

#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "dsl/printer.h"
#include "ir/prim.h"
#include "util/hash.h"
#include "util/string_util.h"

namespace avm::jit {

Result<PosRef> PosRef::From(const dsl::Expr& e) {
  PosRef p;
  if (e.kind == dsl::ExprKind::kConst) {
    p.kind = Kind::kConst;
    p.const_i = e.const_i;
    return p;
  }
  if (e.kind == dsl::ExprKind::kVarRef) {
    p.kind = Kind::kVar;
    p.var = e.var;
    return p;
  }
  return Status::NotImplemented(
      "read/write position must be a variable or constant for compilation");
}

namespace {

using dsl::Expr;
using dsl::ExprKind;
using dsl::ScalarOp;
using dsl::SkeletonKind;
using dsl::StmtKind;
using dsl::StmtPtr;
using ir::ArgKind;
using ir::DepGraph;
using ir::DepNode;
using ir::PrimArg;
using ir::PrimProgram;
using ir::Trace;

// C type used in generated code (bool buffers are uint8).
const char* CType(TypeId t) {
  return t == TypeId::kBool ? "unsigned char" : TypeCName(t);
}

const char* kPreamble = R"(#include <cstdint>
#include <cmath>
#include <limits>
#include <type_traits>

namespace {
template <class T> inline T avm_addw(T a, T b) {
  if constexpr (std::is_integral<T>::value) {
    using U = typename std::make_unsigned<T>::type;
    return T(U(a) + U(b));
  } else { return a + b; }
}
template <class T> inline T avm_subw(T a, T b) {
  if constexpr (std::is_integral<T>::value) {
    using U = typename std::make_unsigned<T>::type;
    return T(U(a) - U(b));
  } else { return a - b; }
}
template <class T> inline T avm_mulw(T a, T b) {
  if constexpr (std::is_integral<T>::value) {
    using U = typename std::make_unsigned<T>::type;
    return T(U(a) * U(b));
  } else { return a * b; }
}
template <class T> inline T avm_div(T a, T b) {
  if constexpr (std::is_integral<T>::value) {
    if (b == 0) return T(0);
    if constexpr (std::is_signed<T>::value) {
      if (b == T(-1)) {
        return a == std::numeric_limits<T>::min() ? a : T(-a);
      }
    }
    return T(a / b);
  } else { return a / b; }
}
template <class T> inline T avm_mod(T a, T b) {
  if constexpr (std::is_integral<T>::value) {
    if (b == 0) return T(0);
    if constexpr (std::is_signed<T>::value) { if (b == T(-1)) return T(0); }
    return T(a % b);
  } else { return T(std::fmod(a, b)); }
}
template <class T> inline T avm_neg(T a) {
  if constexpr (std::is_integral<T>::value) {
    using U = typename std::make_unsigned<T>::type;
    return T(U(0) - U(a));
  } else { return -a; }
}
template <class T> inline T avm_abs(T a) { return a < T(0) ? avm_neg(a) : a; }
inline long long avm_hash(long long k0) {
  unsigned long long k = (unsigned long long)k0;
  k ^= k >> 33; k *= 0xff51afd7ed558ccdULL;
  k ^= k >> 33; k *= 0xc4ceb9fe1a85ec53ULL;
  k ^= k >> 33;
  return (long long)k;
}
}  // namespace
)";

// ---------------------------------------------------------------------------
// Emission context
// ---------------------------------------------------------------------------

class TraceEmitter {
 public:
  TraceEmitter(const dsl::Program& program, const DepGraph& graph,
               const Trace& trace, const CodegenOptions& options)
      : program_(program), graph_(graph), trace_(trace), options_(options) {}

  Result<GeneratedTrace> Run();

 private:
  // --- analysis -------------------------------------------------------------
  Status AnalyzeStatements();
  Status Validate();
  Status AssignInputsOutputs();

  // --- emission --------------------------------------------------------------
  Status EmitNodes();
  Result<std::string> EmitNodeValue(const DepNode& node);
  Result<std::string> ResolveValueArg(const Expr& arg);
  Result<std::string> EmitPrim(const PrimProgram& prog,
                               const std::vector<std::string>& input_exprs);
  Result<std::string> EmitCaptureRef(const std::string& name, TypeId t);
  std::string NewTemp() { return StrFormat("t%d", temp_counter_++); }

  bool InTrace(uint32_t node_id) const {
    return trace_node_set_.contains(node_id);
  }
  bool DependsOnFilter(uint32_t node_id) const;

  std::ostringstream& Body() { return post_filter_mode_ ? post_ : pre_; }

  const dsl::Program& program_;
  const DepGraph& graph_;
  const Trace& trace_;
  const CodegenOptions& options_;

  GeneratedTrace out_;
  std::unordered_set<uint32_t> trace_node_set_;
  std::unordered_map<const Expr*, uint32_t> expr_to_node_;
  std::unordered_map<std::string, TypeId> let_types_;  // name -> element type
  std::unordered_map<std::string, size_t> input_slot_;  // spec name key -> idx
  std::unordered_map<uint32_t, std::string> node_value_;  // node -> C expr
  std::unordered_map<std::string, size_t> cap_i_slot_, cap_f_slot_;
  int filter_node_ = -1;
  bool has_condensed_output_ = false;
  bool post_filter_mode_ = false;
  std::ostringstream decls_;  // pre-loop declarations
  std::ostringstream pre_;    // loop body before the filter guard
  std::ostringstream guard_;  // the filter guard
  std::ostringstream post_;   // loop body after the guard
  std::ostringstream tail_;   // post-loop stores
  int temp_counter_ = 0;
};

Status TraceEmitter::AnalyzeStatements() {
  for (uint32_t id : trace_.node_ids) trace_node_set_.insert(id);
  for (const auto& n : graph_.nodes()) expr_to_node_[n.expr] = n.id;

  // Locate the loop body (the graph was built from it).
  const std::vector<StmtPtr>* body = &program_.stmts;
  for (const auto& s : program_.stmts) {
    if (s->kind == StmtKind::kLoop) {
      body = &s->body;
      break;
    }
  }

  // Element types of let-bound values (for chunk-var inputs).
  std::function<void(const std::vector<StmtPtr>&)> collect =
      [&](const std::vector<StmtPtr>& stmts) {
        for (const auto& s : stmts) {
          if (s->kind == StmtKind::kLet && s->expr) {
            let_types_[s->var] = s->expr->type;
          }
          collect(s->body);
          collect(s->else_body);
        }
      };
  collect(program_.stmts);

  // Statement coverage: every stmt whose skeleton nodes are all in the
  // trace is covered; partially covered statements are rejected.
  bool found_anchor = false;
  for (const auto& s : *body) {
    if (s->expr == nullptr) continue;
    std::vector<uint32_t> stmt_nodes;
    std::function<void(const Expr&)> walk = [&](const Expr& e) {
      auto it = expr_to_node_.find(&e);
      if (it != expr_to_node_.end()) stmt_nodes.push_back(it->second);
      for (const auto& a : e.args) walk(*a);
      if (e.body) walk(*e.body);
    };
    walk(*s->expr);
    if (stmt_nodes.empty()) continue;
    size_t inside = 0;
    for (uint32_t id : stmt_nodes) {
      if (InTrace(id)) ++inside;
    }
    if (inside == 0) continue;
    if (inside != stmt_nodes.size()) {
      return Status::InvalidArgument(
          "trace does not align with statement boundaries");
    }
    out_.covered_stmt_ids.push_back(s->id);
    if (!found_anchor) {
      out_.anchor_stmt_id = s->id;
      found_anchor = true;
    }
  }
  if (!found_anchor) {
    return Status::InvalidArgument("trace covers no statements");
  }
  return Status::OK();
}

bool TraceEmitter::DependsOnFilter(uint32_t node_id) const {
  if (filter_node_ < 0) return false;
  if (node_id == static_cast<uint32_t>(filter_node_)) return false;
  // DFS towards inputs.
  std::vector<uint32_t> stack{node_id};
  std::set<uint32_t> seen;
  while (!stack.empty()) {
    uint32_t id = stack.back();
    stack.pop_back();
    for (uint32_t in : graph_.nodes()[id].inputs) {
      if (in == static_cast<uint32_t>(filter_node_)) return true;
      if (seen.insert(in).second && InTrace(in)) stack.push_back(in);
    }
  }
  return false;
}

Status TraceEmitter::Validate() {
  int filters = 0;
  for (uint32_t id : trace_.node_ids) {
    const DepNode& n = graph_.nodes()[id];
    switch (n.kind) {
      case SkeletonKind::kRead:
      case SkeletonKind::kMap:
      case SkeletonKind::kFold:
        break;
      case SkeletonKind::kWrite: {
        // A let-bound write means the program consumes the written COUNT
        // (the cursor advance of a condensing output pipeline). The trace
        // ABI publishes no scalar result for data writes, so the
        // interpreter would keep reading a stale count and corrupt the
        // output cursor — decline and leave the pipeline interpreted.
        if (let_types_.contains(graph_.OutputNameOf(id))) {
          return Status::NotImplemented(
              "let-bound write (condensing output cursor) is interpreted");
        }
        break;
      }
      case SkeletonKind::kGather:
        // The interpreter bounds-checks gather indices against the base
        // array; compiled code has no error path to report a stray index,
        // so gathers stay interpreted until the trace ABI can carry base
        // lengths + a failure status.
        return Status::NotImplemented(
            "gather traces are interpreted (indices are bounds-checked)");
      case SkeletonKind::kFilter:
        ++filters;
        filter_node_ = static_cast<int>(id);
        // Every consumer must be in-trace (selection vectors do not cross
        // the compiled-code boundary).
        for (uint32_t c : n.consumers) {
          if (!InTrace(c)) {
            return Status::InvalidArgument(
                "filter output escapes the trace");
          }
        }
        break;
      case SkeletonKind::kCondense: {
        // Input must be the in-trace filter.
        if (n.inputs.size() != 1 || !InTrace(n.inputs[0]) ||
            graph_.nodes()[n.inputs[0]].kind != SkeletonKind::kFilter) {
          return Status::InvalidArgument(
              "condense without its filter in the same trace");
        }
        break;
      }
      default:
        return Status::NotImplemented(
            StrFormat("skeleton %s not supported in compiled traces",
                      dsl::SkeletonName(n.kind)));
    }
  }
  if (filters > 1) {
    return Status::NotImplemented("more than one filter per trace");
  }
  // Escaping post-filter values must be condense nodes.
  for (uint32_t id : trace_.node_ids) {
    const DepNode& n = graph_.nodes()[id];
    bool escapes = false;
    for (uint32_t c : n.consumers) {
      if (!InTrace(c)) escapes = true;
    }
    std::string name = graph_.OutputNameOf(id);
    for (const auto& o : trace_.outputs) {
      if (o == name && n.kind != SkeletonKind::kWrite &&
          n.kind != SkeletonKind::kScatter) {
        escapes = true;
      }
    }
    if (escapes && DependsOnFilter(id) && n.kind != SkeletonKind::kCondense) {
      return Status::InvalidArgument(
          "post-filter value escapes the trace without condense");
    }
  }
  return Status::OK();
}

Status TraceEmitter::AssignInputsOutputs() {
  auto add_input = [&](TraceInputSpec spec) -> size_t {
    std::string key = StrFormat("%d:%s", static_cast<int>(spec.kind),
                                spec.name.c_str());
    if (spec.pos.valid()) {
      key += ":" + spec.pos.ToString();
    }
    auto it = input_slot_.find(key);
    if (it != input_slot_.end()) return it->second;
    out_.inputs.push_back(std::move(spec));
    input_slot_[key] = out_.inputs.size() - 1;
    return out_.inputs.size() - 1;
  };

  // Chunk-variable inputs: names in trace_.inputs that are not data arrays
  // (those become read windows below).
  for (const auto& name : trace_.inputs) {
    if (program_.FindData(name) != nullptr) continue;
    auto it = let_types_.find(name);
    if (it == let_types_.end()) {
      return Status::InvalidArgument("unknown trace input " + name);
    }
    add_input({TraceInputSpec::Kind::kChunkVar, name, it->second, PosRef{}});
  }

  // Read/gather inputs.
  for (uint32_t id : trace_.node_ids) {
    const DepNode& n = graph_.nodes()[id];
    if (n.kind == SkeletonKind::kRead) {
      AVM_ASSIGN_OR_RETURN(PosRef pos, PosRef::From(*n.expr->args[0]));
      const std::string& data = n.expr->args[1]->var;
      auto spec_it = options_.scheme_specialization.find(data);
      if (spec_it != options_.scheme_specialization.end() &&
          spec_it->second == Scheme::kFor) {
        add_input({TraceInputSpec::Kind::kForDeltas, data, TypeId::kI32,
                   pos});
        out_.scheme_requirements[data] = Scheme::kFor;
      } else {
        add_input({TraceInputSpec::Kind::kDataRead, data,
                   program_.FindData(data)->type, pos});
      }
    } else if (n.kind == SkeletonKind::kGather) {
      const Expr& base = *n.expr->args[0];
      if (base.kind == ExprKind::kVarRef &&
          program_.FindData(base.var) != nullptr) {
        add_input({TraceInputSpec::Kind::kDataWhole, base.var,
                   program_.FindData(base.var)->type, PosRef{}});
      }
    }
  }

  // Outputs: data writes + escaping values + fold scalars.
  for (uint32_t id : trace_.node_ids) {
    const DepNode& n = graph_.nodes()[id];
    if (n.kind == SkeletonKind::kWrite) {
      AVM_ASSIGN_OR_RETURN(PosRef pos, PosRef::From(*n.expr->args[1]));
      bool condensed = false;
      if (!n.inputs.empty() && DependsOnFilter(n.inputs[0])) condensed = true;
      if (!n.inputs.empty() &&
          graph_.nodes()[n.inputs[0]].kind == SkeletonKind::kCondense) {
        condensed = true;
      }
      out_.outputs.push_back({TraceOutputSpec::Kind::kDataWrite,
                              n.expr->args[0]->var,
                              program_.FindData(n.expr->args[0]->var)->type,
                              condensed, pos});
      continue;
    }
    if (n.kind == SkeletonKind::kFold) {
      std::string name = graph_.OutputNameOf(id);
      out_.outputs.push_back({TraceOutputSpec::Kind::kFoldScalar, name,
                              n.expr->type, false, PosRef{}});
      continue;
    }
    // Escaping array value?
    std::string name = graph_.OutputNameOf(id);
    bool is_traced_output = false;
    for (const auto& o : trace_.outputs) {
      if (o == name) is_traced_output = true;
    }
    bool consumed_outside = false;
    for (uint32_t c : n.consumers) {
      if (!InTrace(c)) consumed_outside = true;
    }
    // A value also escapes when scalar statements outside the graph use it
    // (e.g. len(a)) — conservatively, every let-bound trace value escapes so
    // the environment stays consistent after injection.
    bool let_bound = let_types_.contains(name);
    if (is_traced_output || consumed_outside || let_bound) {
      bool condensed = n.kind == SkeletonKind::kCondense;
      out_.outputs.push_back({TraceOutputSpec::Kind::kArrayVar, name,
                              n.expr->type, condensed, PosRef{}});
      if (condensed) has_condensed_output_ = true;
    }
  }
  return Status::OK();
}

Result<std::string> TraceEmitter::EmitCaptureRef(const std::string& name,
                                                 TypeId t) {
  if (IsFloatType(t)) {
    auto it = cap_f_slot_.find(name);
    size_t slot;
    if (it == cap_f_slot_.end()) {
      out_.captures_f.emplace_back(name, t);
      slot = out_.captures_f.size() - 1;
      cap_f_slot_[name] = slot;
    } else {
      slot = it->second;
    }
    return StrFormat("((%s)cf[%zu])", CType(t), slot);
  }
  auto it = cap_i_slot_.find(name);
  size_t slot;
  if (it == cap_i_slot_.end()) {
    out_.captures_i.emplace_back(name, t);
    slot = out_.captures_i.size() - 1;
    cap_i_slot_[name] = slot;
  } else {
    slot = it->second;
  }
  return StrFormat("((%s)ci[%zu])", CType(t), slot);
}

Result<std::string> TraceEmitter::EmitPrim(
    const PrimProgram& prog, const std::vector<std::string>& input_exprs) {
  if (prog.result_is_input >= 0) {
    return input_exprs[static_cast<size_t>(prog.result_is_input)];
  }
  std::vector<std::string> reg_names(static_cast<size_t>(prog.num_regs));
  for (const auto& instr : prog.instrs) {
    auto operand = [&](const PrimArg& a) -> Result<std::string> {
      switch (a.kind) {
        case ArgKind::kInput:
          return StrFormat("((%s)(%s))", CType(instr.in_type),
                           input_exprs[static_cast<size_t>(a.index)].c_str());
        case ArgKind::kReg:
          return StrFormat("((%s)%s)", CType(instr.in_type),
                           reg_names[static_cast<size_t>(a.index)].c_str());
        case ArgKind::kConstI:
          return StrFormat("((%s)%lldLL)", CType(instr.in_type),
                           (long long)a.const_i);
        case ArgKind::kConstF:
          return StrFormat("((%s)%.17g)", CType(instr.in_type), a.const_f);
        case ArgKind::kCapture: {
          AVM_ASSIGN_OR_RETURN(std::string ref,
                               EmitCaptureRef(a.name, a.type));
          return StrFormat("((%s)%s)", CType(instr.in_type), ref.c_str());
        }
      }
      return Status::Internal("bad arg");
    };
    AVM_ASSIGN_OR_RETURN(std::string a, operand(instr.args[0]));
    std::string b;
    if (instr.num_args == 2) {
      AVM_ASSIGN_OR_RETURN(b, operand(instr.args[1]));
    }
    const char* it = CType(instr.in_type);
    const char* ot = CType(instr.out_type);
    std::string expr;
    switch (instr.op) {
      case ScalarOp::kAdd: expr = StrFormat("avm_addw<%s>(%s, %s)", it, a.c_str(), b.c_str()); break;
      case ScalarOp::kSub: expr = StrFormat("avm_subw<%s>(%s, %s)", it, a.c_str(), b.c_str()); break;
      case ScalarOp::kMul: expr = StrFormat("avm_mulw<%s>(%s, %s)", it, a.c_str(), b.c_str()); break;
      case ScalarOp::kDiv: expr = StrFormat("avm_div<%s>(%s, %s)", it, a.c_str(), b.c_str()); break;
      case ScalarOp::kMod: expr = StrFormat("avm_mod<%s>(%s, %s)", it, a.c_str(), b.c_str()); break;
      case ScalarOp::kMin: expr = StrFormat("(%s < %s ? %s : %s)", a.c_str(), b.c_str(), a.c_str(), b.c_str()); break;
      case ScalarOp::kMax: expr = StrFormat("(%s > %s ? %s : %s)", a.c_str(), b.c_str(), a.c_str(), b.c_str()); break;
      case ScalarOp::kEq: expr = StrFormat("(%s == %s)", a.c_str(), b.c_str()); break;
      case ScalarOp::kNe: expr = StrFormat("(%s != %s)", a.c_str(), b.c_str()); break;
      case ScalarOp::kLt: expr = StrFormat("(%s < %s)", a.c_str(), b.c_str()); break;
      case ScalarOp::kLe: expr = StrFormat("(%s <= %s)", a.c_str(), b.c_str()); break;
      case ScalarOp::kGt: expr = StrFormat("(%s > %s)", a.c_str(), b.c_str()); break;
      case ScalarOp::kGe: expr = StrFormat("(%s >= %s)", a.c_str(), b.c_str()); break;
      case ScalarOp::kAnd: expr = StrFormat("(%s && %s)", a.c_str(), b.c_str()); break;
      case ScalarOp::kOr: expr = StrFormat("(%s || %s)", a.c_str(), b.c_str()); break;
      case ScalarOp::kNot: expr = StrFormat("(!%s)", a.c_str()); break;
      case ScalarOp::kNeg: expr = StrFormat("avm_neg<%s>(%s)", it, a.c_str()); break;
      case ScalarOp::kAbs: expr = StrFormat("avm_abs<%s>(%s)", it, a.c_str()); break;
      case ScalarOp::kSqrt:
        expr = instr.out_type == TypeId::kF32
                   ? StrFormat("std::sqrt((float)%s)", a.c_str())
                   : StrFormat("std::sqrt((double)%s)", a.c_str());
        break;
      case ScalarOp::kCast: expr = a; break;
      case ScalarOp::kHash:
        expr = StrFormat("avm_hash((long long)%s)", a.c_str());
        break;
    }
    std::string tmp = NewTemp();
    Body() << StrFormat("      const %s %s = (%s)(%s);\n", ot, tmp.c_str(), ot,
                        expr.c_str());
    reg_names[static_cast<size_t>(instr.out_reg)] = tmp;
  }
  return reg_names[static_cast<size_t>(prog.result_reg)];
}

Result<std::string> TraceEmitter::ResolveValueArg(const Expr& arg) {
  if (arg.kind == ExprKind::kConst) {
    return arg.const_is_float
               ? StrFormat("%.17g", arg.const_f)
               : StrFormat("%lldLL", (long long)arg.const_i);
  }
  if (arg.kind == ExprKind::kSkeleton) {
    auto it = expr_to_node_.find(&arg);
    if (it != expr_to_node_.end() && InTrace(it->second)) {
      return node_value_.at(it->second);
    }
    return Status::InvalidArgument("nested skeleton outside trace");
  }
  if (arg.kind == ExprKind::kVarRef) {
    if (arg.shape == dsl::Shape::kScalar) {
      return EmitCaptureRef(arg.var, arg.type);
    }
    // Array variable: produced in-trace or a chunk input.
    int prod = graph_.ProducerOf(arg.var);
    if (prod >= 0 && InTrace(static_cast<uint32_t>(prod))) {
      auto it = node_value_.find(static_cast<uint32_t>(prod));
      if (it != node_value_.end()) return it->second;
    }
    std::string key = StrFormat("%d:%s",
                                static_cast<int>(TraceInputSpec::Kind::kChunkVar),
                                arg.var.c_str());
    auto slot = input_slot_.find(key);
    if (slot == input_slot_.end()) {
      return Status::InvalidArgument("unresolved trace value " + arg.var);
    }
    return StrFormat("((const %s*)in[%zu])[i]", CType(arg.type),
                     slot->second);
  }
  return Status::InvalidArgument("unsupported argument expression");
}

Result<std::string> TraceEmitter::EmitNodeValue(const DepNode& node) {
  const Expr& e = *node.expr;
  switch (node.kind) {
    case SkeletonKind::kRead: {
      const std::string& data = e.args[1]->var;
      auto spec_it = options_.scheme_specialization.find(data);
      if (spec_it != options_.scheme_specialization.end() &&
          spec_it->second == Scheme::kFor) {
        std::string key =
            StrFormat("%d:%s:%s",
                      static_cast<int>(TraceInputSpec::Kind::kForDeltas),
                      data.c_str(), dsl::PrintExpr(*e.args[0]).c_str());
        size_t slot = input_slot_.at(key);
        AVM_ASSIGN_OR_RETURN(std::string ref,
                             EmitCaptureRef("__for_ref_" + data, TypeId::kI64));
        // value = reference + narrow delta (compressed execution).
        std::string tmp = NewTemp();
        Body() << StrFormat(
            "      const %s %s = (%s)(%s + (int64_t)((const uint32_t*)in[%zu])[i]);\n",
            CType(e.type), tmp.c_str(), CType(e.type), ref.c_str(), slot);
        return tmp;
      }
      std::string key = StrFormat(
          "%d:%s:%s", static_cast<int>(TraceInputSpec::Kind::kDataRead),
          data.c_str(), dsl::PrintExpr(*e.args[0]).c_str());
      size_t slot = input_slot_.at(key);
      return StrFormat("((const %s*)in[%zu])[i]", CType(e.type), slot);
    }
    case SkeletonKind::kMap: {
      std::vector<std::string> inputs;
      std::vector<TypeId> input_types;
      for (size_t i = 1; i < e.args.size(); ++i) {
        AVM_ASSIGN_OR_RETURN(std::string v, ResolveValueArg(*e.args[i]));
        inputs.push_back(std::move(v));
        input_types.push_back(e.args[i]->type);
      }
      AVM_ASSIGN_OR_RETURN(PrimProgram prog,
                           ir::Normalize(*e.args[0], input_types));
      return EmitPrim(prog, inputs);
    }
    case SkeletonKind::kFilter: {
      AVM_ASSIGN_OR_RETURN(std::string in_v, ResolveValueArg(*e.args[1]));
      AVM_ASSIGN_OR_RETURN(PrimProgram prog,
                           ir::Normalize(*e.args[0], {e.args[1]->type}));
      // The predicate's temporaries belong before the guard.
      post_filter_mode_ = false;
      AVM_ASSIGN_OR_RETURN(std::string p, EmitPrim(prog, {in_v}));
      guard_ << StrFormat("      if (!(%s)) continue;\n", p.c_str());
      // The filter's value is its input's value (selection semantics).
      return in_v;
    }
    case SkeletonKind::kCondense:
      return node_value_.at(node.inputs[0]);
    case SkeletonKind::kGather: {
      const Expr& base = *e.args[0];
      AVM_ASSIGN_OR_RETURN(std::string idx, ResolveValueArg(*e.args[1]));
      std::string base_expr;
      if (base.kind == ExprKind::kVarRef &&
          program_.FindData(base.var) != nullptr) {
        std::string key = StrFormat(
            "%d:%s", static_cast<int>(TraceInputSpec::Kind::kDataWhole),
            base.var.c_str());
        base_expr = StrFormat("((const %s*)in[%zu])", CType(e.type),
                              input_slot_.at(key));
      } else {
        return Status::NotImplemented("gather base must be a data array");
      }
      std::string tmp = NewTemp();
      Body() << StrFormat("      const %s %s = %s[(int64_t)(%s)];\n",
                          CType(e.type), tmp.c_str(), base_expr.c_str(),
                          idx.c_str());
      return tmp;
    }
    case SkeletonKind::kWrite:
    case SkeletonKind::kFold:
      return Status::Internal("handled by EmitNodes");
    default:
      return Status::NotImplemented("unsupported node in trace");
  }
}

Status TraceEmitter::EmitNodes() {
  // Find output slot by (kind, name).
  auto out_slot = [&](TraceOutputSpec::Kind k,
                      const std::string& name) -> int {
    for (size_t i = 0; i < out_.outputs.size(); ++i) {
      if (out_.outputs[i].kind == k && out_.outputs[i].name == name) {
        return static_cast<int>(i);
      }
    }
    return -1;
  };

  if (has_condensed_output_ ||
      [&] {
        for (const auto& o : out_.outputs) {
          if (o.condensed) return true;
        }
        return false;
      }()) {
    decls_ << "  uint32_t cnt = 0;\n";
  }

  // Order: pre-filter nodes, then filter, then the rest (topologically).
  std::vector<uint32_t> order;
  for (uint32_t id : trace_.node_ids) {
    if (!DependsOnFilter(id) && static_cast<int>(id) != filter_node_) {
      order.push_back(id);
    }
  }
  if (filter_node_ >= 0) order.push_back(static_cast<uint32_t>(filter_node_));
  for (uint32_t id : trace_.node_ids) {
    if (DependsOnFilter(id)) order.push_back(id);
  }

  int fold_counter = 0;
  for (uint32_t id : order) {
    const DepNode& node = graph_.nodes()[id];
    post_filter_mode_ =
        DependsOnFilter(id) || static_cast<int>(id) == filter_node_;

    if (node.kind == SkeletonKind::kWrite) {
      const Expr& e = *node.expr;
      AVM_ASSIGN_OR_RETURN(std::string v, ResolveValueArg(*e.args[2]));
      int slot = out_slot(TraceOutputSpec::Kind::kDataWrite, e.args[0]->var);
      const TraceOutputSpec& spec = out_.outputs[static_cast<size_t>(slot)];
      post_filter_mode_ = spec.condensed || post_filter_mode_;
      Body() << StrFormat("      ((%s*)out[%d])[%s] = (%s)(%s);\n",
                          CType(spec.type), slot,
                          spec.condensed ? "cnt" : "i", CType(spec.type),
                          v.c_str());
      continue;
    }
    if (node.kind == SkeletonKind::kFold) {
      const Expr& e = *node.expr;
      // init
      const Expr& init = *e.args[1];
      std::string init_expr;
      if (init.kind == ExprKind::kConst) {
        init_expr = init.const_is_float
                        ? StrFormat("%.17g", init.const_f)
                        : StrFormat("%lldLL", (long long)init.const_i);
      } else if (init.kind == ExprKind::kVarRef) {
        AVM_ASSIGN_OR_RETURN(init_expr, EmitCaptureRef(init.var, init.type));
      } else {
        return Status::NotImplemented("fold init must be const or variable");
      }
      AVM_ASSIGN_OR_RETURN(std::string v, ResolveValueArg(*e.args[2]));
      std::string acc = StrFormat("acc%d", fold_counter++);
      decls_ << StrFormat("  %s %s = (%s)(%s);\n", CType(e.type), acc.c_str(),
                          CType(e.type), init_expr.c_str());
      AVM_ASSIGN_OR_RETURN(
          PrimProgram prog,
          ir::Normalize(*e.args[0], {e.type, e.args[2]->type}));
      AVM_ASSIGN_OR_RETURN(std::string r, EmitPrim(prog, {acc, v}));
      Body() << StrFormat("      %s = (%s)(%s);\n", acc.c_str(),
                          CType(e.type), r.c_str());
      int slot = out_slot(TraceOutputSpec::Kind::kFoldScalar,
                          graph_.OutputNameOf(id));
      tail_ << StrFormat("  *(%s*)out[%d] = %s;\n", CType(e.type), slot,
                         acc.c_str());
      tail_ << StrFormat("  out_counts[%d] = 1;\n", slot);
      continue;
    }

    AVM_ASSIGN_OR_RETURN(std::string v, EmitNodeValue(node));
    node_value_[id] = v;

    // Escaping value store.
    int slot = out_slot(TraceOutputSpec::Kind::kArrayVar,
                        graph_.OutputNameOf(id));
    if (slot >= 0) {
      const TraceOutputSpec& spec = out_.outputs[static_cast<size_t>(slot)];
      post_filter_mode_ =
          DependsOnFilter(id) || node.kind == SkeletonKind::kCondense;
      Body() << StrFormat("      ((%s*)out[%d])[%s] = (%s)(%s);\n",
                          CType(spec.type), slot,
                          spec.condensed ? "cnt" : "i", CType(spec.type),
                          v.c_str());
    }
  }

  // Count bump at the very end of the selected path.
  bool any_condensed = false;
  for (const auto& o : out_.outputs) any_condensed |= o.condensed;
  if (any_condensed) post_ << "      ++cnt;\n";
  return Status::OK();
}

Result<GeneratedTrace> TraceEmitter::Run() {
  AVM_RETURN_NOT_OK(AnalyzeStatements());
  AVM_RETURN_NOT_OK(Validate());
  AVM_RETURN_NOT_OK(AssignInputsOutputs());
  AVM_RETURN_NOT_OK(EmitNodes());

  // Derive the symbol from the generated content: identical traces (same
  // nodes, same specialization) produce identical translation units, so the
  // source-JIT cache deduplicates compilations across VM instances.
  uint64_t h = HashString(decls_.str());
  h = HashCombine(h, HashString(pre_.str()));
  h = HashCombine(h, HashString(guard_.str()));
  h = HashCombine(h, HashString(post_.str()));
  h = HashCombine(h, HashString(tail_.str()));
  for (const auto& in : out_.inputs) {
    h = HashCombine(h, HashString(in.name));
    h = HashCombine(h, static_cast<uint64_t>(in.kind));
  }
  for (const auto& o : out_.outputs) {
    h = HashCombine(h, HashString(o.name));
    h = HashCombine(h, static_cast<uint64_t>(o.kind));
  }
  out_.symbol = StrFormat("avm_trace_%016llx", (unsigned long long)h);
  out_.name = StrFormat("trace_%llx[", (unsigned long long)(h >> 40));
  for (uint32_t id : trace_.node_ids) {
    out_.name += graph_.nodes()[id].label + ";";
  }
  out_.name += "]";

  std::ostringstream src;
  src << kPreamble;
  if (options_.emit_debug_comments) {
    src << "// trace: " << out_.name << "\n";
  }
  src << "extern \"C\" int32_t " << out_.symbol
      << "(const void* const* in, void* const* out, const int64_t* ci,\n"
      << "    const double* cf, uint32_t n, const uint32_t* sel,\n"
      << "    uint32_t sel_n, uint32_t* out_counts) {\n"
      << "  (void)in; (void)out; (void)ci; (void)cf; (void)out_counts;\n"
      << decls_.str();
  const std::string body = pre_.str() + guard_.str() + post_.str();
  src << "  if (sel != nullptr) {\n"
      << "    for (uint32_t j = 0; j < sel_n; ++j) {\n"
      << "      const uint32_t i = sel[j]; (void)i;\n"
      << body
      << "    }\n"
      << "  } else {\n"
      << "    for (uint32_t i = 0; i < n; ++i) {\n"
      << body
      << "    }\n"
      << "  }\n";
  // Aligned output counts.
  for (size_t k = 0; k < out_.outputs.size(); ++k) {
    const auto& o = out_.outputs[k];
    if (o.kind == TraceOutputSpec::Kind::kFoldScalar) continue;
    src << StrFormat("  out_counts[%zu] = %s;\n", k,
                     o.condensed ? "cnt" : "n");
  }
  src << tail_.str();
  src << "  return 0;\n}\n";
  out_.source = src.str();
  return std::move(out_);
}

}  // namespace

Result<GeneratedTrace> GenerateTrace(const dsl::Program& program,
                                     const ir::DepGraph& graph,
                                     const ir::Trace& trace,
                                     const CodegenOptions& options) {
  return TraceEmitter(program, graph, trace, options).Run();
}

}  // namespace avm::jit
