// The compiled-trace ABI: the C-layout contract between the VM's code
// generator and every JIT-compiled trace function.
//
// This header is the canonical definition. The code generator embeds a
// textually identical copy of these structs into every generated
// translation unit (kPreamble in codegen.cc) — the generated code cannot
// #include this header because it is compiled standalone by the source JIT.
// Both sides are standard-layout structs built from fixed-width types, so
// identical definitions guarantee identical layout. KEEP THEM IN SYNC.
//
// The full semantic contract (selection-in semantics, scalar-state out,
// bounds/validity reporting, decline taxonomy) is documented in
// docs/TRACE_ABI.md.
#pragma once

#include <cstdint>

namespace avm::jit {

/// Version of the trace ABI. Part of the on-disk artifact version key
/// (jit::DiskTraceCache): bump it whenever the TraceCallArgs layout, the
/// TraceStatus contract, or the generated preamble changes shape, and every
/// persisted artifact compiled against the old contract silently invalidates
/// (is recompiled) instead of being called through a stale frame layout.
inline constexpr uint32_t kTraceAbiVersion = 1;

/// Status codes a compiled trace can return. Anything non-zero aborts the
/// call; the injection harness translates the fault into the exact Status
/// the vectorized interpreter would have produced for the same input.
enum TraceStatus : int32_t {
  /// Success: every output buffer and `out_counts`/`scalars` slot is valid.
  kTraceOk = 0,
  /// A gather index left `[0, in_lens[slot])`; details in TraceFault.
  kTraceGatherOutOfBounds = 1,
  /// A scatter index left `[0, out_lens[slot])`; details in TraceFault.
  kTraceScatterOutOfBounds = 2,
};

/// Bounds/validity report of a failed trace call: the offending index value
/// and the bound it violated. Written by the generated code immediately
/// before returning a non-zero TraceStatus, so the harness can reproduce
/// the interpreter's error message bit-for-bit.
struct TraceFault {
  int64_t index = 0;   ///< the out-of-range gather/scatter index
  uint64_t bound = 0;  ///< the exclusive upper bound it violated
};

/// Argument frame of one compiled-trace invocation (one chunk iteration).
///
/// Inputs (read-only for the trace):
///  - `in[k]` / `in_lens[k]`: one pointer per TraceInputSpec, plus its
///    element count. Chunk variables point at the chunk's vector data;
///    data reads point at the window starting at the read position; whole
///    arrays (gather bases) point at element 0 with `in_lens[k]` carrying
///    the full array length for the generated bounds check.
///  - `ci` / `cf`: captured environment scalars (ints widened to int64,
///    floats to double), in GeneratedTrace::captures_i/_f order.
///  - `n`: physical rows of this chunk window (after clamping every input
///    window); positional loops run `i` over `[0, n)`.
///  - `sel` / `sel_n`: the incoming selection vector, present exactly when
///    the trace was specialized with non-empty sel_inputs (the harness
///    guarantees every entry is < `n`). Selection-dependent work iterates
///    `i = sel[j]` for `j` in `[0, sel_n)`; purely positional work still
///    covers all of `[0, n)`.
///
/// Outputs (written by the trace):
///  - `out[k]` / `out_lens[k]`: one pointer per TraceOutputSpec. Escaping
///    chunk values and data writes are scratch buffers owned by the
///    harness (data writes are published only after a bounds check, so a
///    failed call never leaves a partial destination write); scatter
///    destinations point directly at the bound array with `out_lens[k]`
///    carrying its length for the generated bounds check — a call that
///    faults mid-chunk can leave the rows before the stray index already
///    combined into the destination (the interpreter pre-validates all
///    indices instead), observable only on a query that fails anyway.
///  - `out_counts[k]`: tuples produced into `out[k]` (condensed outputs
///    report the append count, positional outputs report `n`).
///  - `scalars[k]`: updated scalar state, parallel to the outputs: the
///    tuple count a let-bound write/scatter returns (the condensing-output
///    cursor advance reads this). Slots of outputs without scalar results
///    stay untouched.
///  - `fault`: bounds/validity report, written before a non-zero return.
struct TraceCallArgs {
  const void* const* in = nullptr;
  const uint64_t* in_lens = nullptr;
  void* const* out = nullptr;
  const uint64_t* out_lens = nullptr;
  const int64_t* ci = nullptr;
  const double* cf = nullptr;
  uint32_t n = 0;
  const uint32_t* sel = nullptr;
  uint32_t sel_n = 0;
  uint32_t* out_counts = nullptr;
  int64_t* scalars = nullptr;
  TraceFault* fault = nullptr;
};

/// Entry point of every generated trace function: takes one call frame,
/// returns a TraceStatus.
using TraceFn = int32_t (*)(const TraceCallArgs*);

}  // namespace avm::jit
