// Cache of compiled traces keyed by workload situation.
//
// Section III-B: "The repetition of this algorithm will eventually lead to
// many of these traces, each optimized for a specific situation. The VM
// then chooses — based on the current situation — a trace, if it already
// learned about that situation, or falls back to interpretation."
//
// A situation is: the trace's node set, the compression schemes its reads
// are specialized for, and a coarse selectivity bucket.
#pragma once

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "jit/trace_compiler.h"
#include "storage/compression.h"

namespace avm::jit {

/// Coarse selectivity classes the VM specializes for (Section III-C:
/// bitmap/full-compute when nearly nothing is filtered, selection vectors
/// when selective).
enum class SelectivityBucket : uint8_t {
  kAny = 0,
  kLow,    ///< < 25% survive
  kMid,
  kHigh,   ///< > 75% survive
};

SelectivityBucket BucketOf(double selectivity);
const char* BucketName(SelectivityBucket b);

struct Situation {
  uint64_t trace_fingerprint = 0;  ///< hash of node ids/labels
  std::map<std::string, Scheme> schemes;  ///< per read data array
  SelectivityBucket selectivity = SelectivityBucket::kAny;

  uint64_t Key() const;
  std::string ToString() const;
};

/// Fingerprint helper for ir::Trace.
uint64_t TraceFingerprint(const ir::DepGraph& graph, const ir::Trace& trace);

class TraceCache {
 public:
  /// Find a trace compiled for exactly this situation.
  const CompiledTrace* Find(const Situation& s) const;

  /// Insert (overwrites an existing entry for the same situation).
  void Insert(const Situation& s, CompiledTrace trace);

  size_t size() const { return entries_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  std::unordered_map<uint64_t, CompiledTrace> entries_;
  mutable uint64_t hits_ = 0;
  mutable uint64_t misses_ = 0;
};

}  // namespace avm::jit
