// Cache of compiled traces keyed by workload situation.
//
// Section III-B: "The repetition of this algorithm will eventually lead to
// many of these traces, each optimized for a specific situation. The VM
// then chooses — based on the current situation — a trace, if it already
// learned about that situation, or falls back to interpretation."
//
// A situation is: the trace's node set, the compression schemes its reads
// are specialized for, which chunk inputs carry a selection vector, and a
// coarse selectivity bucket.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "jit/trace_compiler.h"
#include "storage/compression.h"
#include "util/thread_annotations.h"

namespace avm::jit {

/// Coarse selectivity classes the VM specializes for (Section III-C:
/// bitmap/full-compute when nearly nothing is filtered, selection vectors
/// when selective).
enum class SelectivityBucket : uint8_t {
  kAny = 0,
  kLow,    ///< < 25% survive
  kMid,
  kHigh,   ///< > 75% survive
};

SelectivityBucket BucketOf(double selectivity);
const char* BucketName(SelectivityBucket b);

struct Situation {
  uint64_t trace_fingerprint = 0;  ///< hash of node ids/labels
  std::map<std::string, Scheme> schemes;  ///< per read data array
  /// Chunk-variable inputs observed to carry a selection vector (sorted).
  /// Part of the situation like compression schemes: the positional and
  /// the selection-carrying variants of one trace are distinct cache
  /// entries, each applicable only when the runtime selection pattern
  /// matches its specialization.
  std::vector<std::string> sel_inputs;
  SelectivityBucket selectivity = SelectivityBucket::kAny;

  uint64_t Key() const;
  std::string ToString() const;
};

/// Fingerprint helper for ir::Trace.
uint64_t TraceFingerprint(const ir::DepGraph& graph, const ir::Trace& trace);

/// Thread-safe: a single cache is shared by all workers of a parallel
/// (morsel-driven) run, so one worker's compiled trace serves every clone.
/// Entries are handed out as shared_ptr<TraceEntry> so a reader is never
/// invalidated by a concurrent insert; an entry's metadata is immutable,
/// while its machine code may be re-published in place by the asynchronous
/// tier upgrade (TraceEntry) — which is exactly how upgraded code reaches
/// both running injections and future cache hits without re-insertion.
class TraceCache {
 public:
  /// Find the entry compiled for exactly this situation.
  std::shared_ptr<TraceEntry> Find(const Situation& s) const;

  /// Insert (overwrites an existing entry for the same situation).
  /// Returns the inserted entry.
  std::shared_ptr<TraceEntry> Insert(const Situation& s, CompiledTrace trace);

  /// Single-flight lookup-or-compile: returns the cached entry for `s`, or
  /// runs `compile` and inserts its result. Compilation is serialized *per
  /// situation*, so concurrent morsel workers that miss on the same
  /// situation don't launch duplicate host-compiler invocations (late
  /// arrivals re-check the cache under the per-key lock and reuse the
  /// winner's trace), while distinct situations compile concurrently.
  /// `*compiled_fresh` reports whether this call ran `compile` (which may
  /// itself have loaded the artifact from the persistent disk cache rather
  /// than invoking a backend — CompileTraceTiered reports which).
  Result<std::shared_ptr<TraceEntry>> GetOrCompile(
      const Situation& s,
      const std::function<Result<CompiledTrace>()>& compile,
      bool* compiled_fresh);

  size_t size() const;
  uint64_t hits() const;
  uint64_t misses() const;

 private:
  /// Find without touching the hit/miss counters (internal re-checks).
  std::shared_ptr<TraceEntry> Lookup(uint64_t key) const;

  mutable std::mutex mu_;
  /// Per-situation in-flight compile locks (single-flight). The map itself
  /// is guarded by mu_; the per-key mutexes are taken *after* releasing
  /// mu_, never while holding it.
  std::unordered_map<uint64_t, std::shared_ptr<std::mutex>> compiling_
      AVM_GUARDED_BY(mu_);
  std::unordered_map<uint64_t, std::shared_ptr<TraceEntry>> entries_
      AVM_GUARDED_BY(mu_);
  mutable uint64_t hits_ AVM_GUARDED_BY(mu_) = 0;
  mutable uint64_t misses_ AVM_GUARDED_BY(mu_) = 0;
};

}  // namespace avm::jit
