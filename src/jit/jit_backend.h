// Pluggable JIT backend seam (ROADMAP direction 2).
//
// The source JIT used to be one hard-wired "generate C++, shell out to the
// host compiler at -O3, dlopen" pipeline. This header splits that into the
// three orthogonal pieces a tiered JIT needs:
//
//  - JitBackend: compile source -> loadable artifact BYTES. Backends are
//    interchangeable (the miniexpr dsl_jit_backend_{cc,libtcc,wasm32}
//    architecture); today both concrete backends drive the host C++
//    compiler, at different optimization tiers:
//      cc-o0 (JitTier::kFast)      cheap compiles for first executions
//      cc-o2 (JitTier::kOptimized) the steady-state tier, swapped in
//                                  asynchronously once a trace is hot
//  - ArtifactLoader: artifact bytes -> executable entry point (dlopen +
//    dlsym), process-global so compiled traces stay mapped for the process
//    lifetime wherever their bytes came from (a fresh compile or the
//    persistent disk cache).
//  - JitStats: the merged observability counters of the whole JIT stack
//    (per-tier compiles and latency, disk-cache traffic, tier upgrades).
//
// Artifact bytes are the currency between the pieces: because a backend
// returns relocatable bytes instead of a live function pointer, the bytes
// can be persisted (jit::DiskTraceCache) and reloaded by a later process,
// which is what makes a restarted server warm from its first query.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"
#include "util/thread_annotations.h"

namespace avm::jit {

/// The process-wide scratch directory for compiler invocations and
/// artifact loads: a fresh mkdtemp directory under $TMPDIR (fallback
/// /tmp), created lazily on first use and reused — the TMPDIR value at
/// first use wins — for the process lifetime.
const std::string& JitScratchDir();

/// Optimization tier of a compiled-trace artifact.
enum class JitTier : uint8_t {
  kFast = 0,       ///< cheap compile (-O0): minimal latency to first run
  kOptimized = 1,  ///< full optimization (-O2): steady-state code quality
};

/// Human-readable tier name ("fast", "opt").
const char* TierName(JitTier t);

/// Which tiers a query's traces may use (VmOptions::jit_tier_policy).
enum class TierPolicy : uint8_t {
  /// Resolve from AVM_JIT_TIER ("tiered" | "fast" | "opt"); kTiered when
  /// the variable is unset or unrecognized.
  kDefault = 0,
  /// Compile kFast first so the first execution pays minimal JIT latency;
  /// asynchronously upgrade hot traces to kOptimized (tiered_jit.h).
  kTiered,
  /// Only the fast tier, never upgraded (latency benchmarks, tests).
  kFastOnly,
  /// Compile at kOptimized immediately (the pre-tiering behavior).
  kOptimizedOnly,
};

/// Resolve kDefault against AVM_JIT_TIER; other values pass through.
TierPolicy ResolveTierPolicy(TierPolicy p);

/// Human-readable policy name ("tiered", "fast", "opt").
const char* TierPolicyName(TierPolicy p);

/// A compiled, relocatable artifact: the bytes of a shared object exporting
/// one extern "C" symbol. Load with ArtifactLoader; persist with
/// DiskTraceCache. `tier` records the optimization level the bytes were
/// produced at (the tier-upgrade state machine and the disk cache both key
/// on it).
struct JitArtifact {
  std::vector<uint8_t> bytes;
  JitTier tier = JitTier::kFast;
};

/// Compiles a C++ translation unit into loadable artifact bytes.
/// Implementations are thread-safe and memoize by (source, symbol), so
/// concurrent identical compiles collapse into one backend invocation.
class JitBackend {
 public:
  virtual ~JitBackend() = default;

  /// Short backend identity ("cc-o0", "cc-o2").
  virtual const char* name() const = 0;

  /// Optimization tier of the artifacts this backend produces.
  virtual JitTier tier() const = 0;

  /// Hash of everything that affects the produced machine code: compiler
  /// identity+version, flags, and the trace ABI version. Part of the
  /// on-disk cache key, so artifacts from a different compiler, flag set,
  /// or ABI revision silently miss (and recompile) instead of loading.
  virtual uint64_t version_hash() const = 0;

  /// Whether this backend can compile on this host.
  virtual bool Available() const = 0;

  /// Compile `source` (a complete TU exporting extern "C" `symbol`) into
  /// artifact bytes. `compile_seconds`, when non-null, receives the wall
  /// time of the backend invocation (0 on a memo hit).
  virtual Result<JitArtifact> Compile(const std::string& source,
                                      const std::string& symbol,
                                      double* compile_seconds = nullptr) = 0;
};

/// The process-wide backend instance for a tier.
JitBackend& BackendForTier(JitTier tier);

/// Merged observability counters of the JIT stack. SourceJit fills the
/// first block; TieredJit::stats() additionally reports the per-tier,
/// disk-cache, and tier-upgrade blocks (bench_util serializes them into
/// BENCH_results.json rows).
struct JitStats {
  uint64_t compilations = 0;         ///< backend invocations (all tiers)
  uint64_t cache_hits = 0;           ///< in-memory memo hits
  double total_compile_seconds = 0;  ///< summed backend wall time

  // Per-tier compile counts and latency (TieredJit).
  uint64_t fast_compilations = 0;
  uint64_t opt_compilations = 0;
  double fast_compile_seconds = 0;
  double opt_compile_seconds = 0;

  // Persistent disk-cache traffic (TieredJit + DiskTraceCache).
  uint64_t disk_hits = 0;
  uint64_t disk_misses = 0;
  uint64_t disk_corrupt_dropped = 0;  ///< checksum/load failures, recompiled
  uint64_t disk_stores = 0;
  uint64_t disk_evictions = 0;

  // Hotness-triggered tier upgrades (fast -> optimized).
  uint64_t upgrades_requested = 0;
  uint64_t upgrades_completed = 0;
  uint64_t upgrades_failed = 0;
};

/// Loads artifact bytes into the process and resolves the entry symbol.
/// Thread-safe; memoizes by (bytes hash, symbol) so one artifact loaded
/// through any number of paths maps once. Handles stay open for the process
/// lifetime — compiled function pointers outlive every cache that hands
/// them out.
///
/// The memo is bounded (`memo_limit` entries, FIFO): a session churning
/// through an unbounded stream of distinct traces cannot grow the lookup
/// table without limit. Evicting a memo entry does NOT unmap its artifact —
/// handed-out function pointers must never dangle — it only means a later
/// Load of the same bytes pays a redundant dlopen (correct, just slower).
class ArtifactLoader {
 public:
  static constexpr size_t kDefaultMemoLimit = 1024;

  explicit ArtifactLoader(size_t memo_limit = kDefaultMemoLimit);

  /// dlopen the artifact bytes and resolve `symbol`.
  Result<void*> Load(const JitArtifact& artifact, const std::string& symbol);

  /// Current memo entry count (bounded by the construction limit).
  size_t memo_entries();

  /// Process-wide instance.
  static ArtifactLoader& Global();

 private:
  std::mutex mu_;
  std::string dir_;  ///< set in the constructor, immutable afterwards
  size_t memo_limit_;
  std::unordered_map<uint64_t, void*> cache_ AVM_GUARDED_BY(mu_);
  /// cache_ keys in insertion order.
  std::deque<uint64_t> fifo_ AVM_GUARDED_BY(mu_);
  std::vector<void*> handles_ AVM_GUARDED_BY(mu_);
  uint64_t seq_ AVM_GUARDED_BY(mu_) = 0;
};

}  // namespace avm::jit
