// The fast tier (JitTier::kFast): host compiler at -O0.
//
// -O0 cuts the host-compiler invocation to a fraction of the optimized
// tier's latency, so a trace's first execution starts running compiled code
// as early as possible; TieredJit swaps in the cc-o2 artifact asynchronously
// once the trace proves hot.
#include "jit/backend_cc.h"

namespace avm::jit {

JitBackend& CcBackendO0() {
  static CcBackend* backend = new CcBackend("cc-o0", JitTier::kFast, "-O0");
  return *backend;
}

}  // namespace avm::jit
