#include "jit/source_jit.h"

#include "jit/backend_cc.h"
#include "util/hash.h"
#include "util/logging.h"

namespace avm::jit {

bool SourceJit::Available() { return !HostCompilerPath().empty(); }

SourceJit::SourceJit() = default;

SourceJit::~SourceJit() {
  // Loaded artifacts stay mapped for the process lifetime (ArtifactLoader):
  // compiled function pointers may still be referenced by cached traces.
}

SourceJit& SourceJit::Global() {
  static SourceJit* jit = new SourceJit();
  return *jit;
}

Result<void*> SourceJit::CompileAndLoad(const std::string& source,
                                        const std::string& symbol) {
  if (!Available()) {
    return Status::CompilationError("no host compiler available");
  }
  const uint64_t key = HashCombine(HashString(source), HashString(symbol));
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++stats_.cache_hits;
      return it->second;
    }
  }

  std::string flags = "-O3 -march=native";
  if (!extra_flags_.empty()) flags += " " + extra_flags_;
  double seconds = 0;
  AVM_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes,
                       CcCompileToBytes(source, flags, &seconds));
  JitArtifact artifact{std::move(bytes), JitTier::kOptimized};
  AVM_ASSIGN_OR_RETURN(void* sym,
                       ArtifactLoader::Global().Load(artifact, symbol));
  {
    std::lock_guard<std::mutex> lock(mu_);
    cache_[key] = sym;
    ++stats_.compilations;
    stats_.total_compile_seconds += seconds;
  }
  AVM_LOG(kDebug) << "jit-compiled " << symbol << " in " << seconds * 1e3
                  << " ms";
  return sym;
}

}  // namespace avm::jit
