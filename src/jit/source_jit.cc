#include "jit/source_jit.h"

#include <dlfcn.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "util/hash.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace avm::jit {

namespace {

const char* CompilerPath() {
  static std::string compiler = [] {
    const char* env = std::getenv("AVM_CXX");
    if (env != nullptr && *env != '\0') return std::string(env);
    for (const char* c : {"c++", "g++", "clang++"}) {
      std::string cmd = StrFormat("command -v %s > /dev/null 2>&1", c);
      if (std::system(cmd.c_str()) == 0) return std::string(c);
    }
    return std::string();
  }();
  return compiler.c_str();
}

}  // namespace

bool SourceJit::Available() { return CompilerPath()[0] != '\0'; }

SourceJit::SourceJit() {
  char tmpl[] = "/tmp/avm_jit_XXXXXX";
  char* dir = mkdtemp(tmpl);
  dir_ = dir != nullptr ? dir : "/tmp";
}

SourceJit::~SourceJit() {
  // Keep dlopen handles alive for the process lifetime: compiled function
  // pointers may still be referenced by cached traces. The temp directory
  // is left for the OS tmp reaper; unlinking the .so while mapped is legal
  // on Linux but gratuitous here.
}

SourceJit& SourceJit::Global() {
  static SourceJit* jit = new SourceJit();
  return *jit;
}

Result<void*> SourceJit::CompileAndLoad(const std::string& source,
                                        const std::string& symbol) {
  if (!Available()) {
    return Status::CompilationError("no host compiler available");
  }
  const uint64_t key =
      HashCombine(HashString(source), HashString(symbol));
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++stats_.cache_hits;
      return it->second;
    }
  }

  Stopwatch sw;
  const std::string base = StrFormat("%s/t%016llx", dir_.c_str(),
                                     (unsigned long long)key);
  const std::string src_path = base + ".cc";
  const std::string so_path = base + ".so";
  const std::string log_path = base + ".log";
  {
    std::ofstream f(src_path);
    if (!f) return Status::CompilationError("cannot write " + src_path);
    f << source;
  }
  const std::string cmd = StrFormat(
      "%s -O3 -march=native -std=c++17 -shared -fPIC %s -o %s %s > %s 2>&1",
      CompilerPath(), src_path.c_str(), so_path.c_str(), extra_flags_.c_str(),
      log_path.c_str());
  if (std::system(cmd.c_str()) != 0) {
    std::string log;
    std::ifstream lf(log_path);
    std::string line;
    while (std::getline(lf, line) && log.size() < 4000) log += line + "\n";
    return Status::CompilationError("compile failed:\n" + log);
  }
  void* handle = dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (handle == nullptr) {
    return Status::CompilationError(StrFormat("dlopen: %s", dlerror()));
  }
  void* sym = dlsym(handle, symbol.c_str());
  if (sym == nullptr) {
    dlclose(handle);
    return Status::CompilationError("symbol not found: " + symbol);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    handles_.push_back(handle);
    cache_[key] = sym;
    ++stats_.compilations;
    stats_.total_compile_seconds += sw.ElapsedSeconds();
  }
  AVM_LOG(kDebug) << "jit-compiled " << symbol << " in "
                  << sw.ElapsedMillis() << " ms";
  return sym;
}

}  // namespace avm::jit
