// Shared driver for the host-C++-compiler JIT backends.
//
// Both concrete backends (backend_cc_o0.cc, backend_cc_o2.cc) are the same
// pipeline — write the TU to a temp file, invoke the host compiler, read the
// produced shared object back as artifact bytes — differing only in name,
// tier, and flag set. CcBackend carries that shape once; the per-tier
// translation units just instantiate it.
#pragma once

#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "jit/jit_backend.h"
#include "util/thread_annotations.h"

namespace avm::jit {

/// Path of the host C++ compiler: AVM_CXX if set, else the first of
/// c++/g++/clang++ on PATH; empty string when none is found. Leaked static —
/// safe to call from detached tier-upgrade threads during shutdown.
const std::string& HostCompilerPath();

/// Identity line of the host compiler (`<path> --version`, first line).
/// Folded into every backend's version_hash so artifacts produced by a
/// different compiler (or version) never load from the disk cache.
const std::string& HostCompilerIdentity();

/// Invoke the host compiler on `source` with `flags` and return the bytes
/// of the produced shared object. `compile_seconds`, when non-null,
/// receives the wall time of the compiler invocation.
Result<std::vector<uint8_t>> CcCompileToBytes(const std::string& source,
                                              const std::string& flags,
                                              double* compile_seconds);

/// A JitBackend that shells out to the host C++ compiler with a fixed flag
/// set. Thread-safe; memoizes produced artifacts by (source, symbol).
///
/// The memo holds full artifact bytes, so it is bounded both by entry
/// count and by total byte size (FIFO eviction). An evicted (source,
/// symbol) pair simply recompiles on its next request — the memo is a
/// latency optimization, never a correctness dependency.
class CcBackend : public JitBackend {
 public:
  static constexpr size_t kDefaultMemoEntries = 256;
  static constexpr size_t kDefaultMemoBytes = size_t{64} << 20;  // 64 MiB

  CcBackend(const char* name, JitTier tier, std::string flags,
            size_t memo_max_entries = kDefaultMemoEntries,
            size_t memo_max_bytes = kDefaultMemoBytes);

  const char* name() const override { return name_; }
  JitTier tier() const override { return tier_; }
  uint64_t version_hash() const override { return version_hash_; }
  bool Available() const override;
  Result<JitArtifact> Compile(const std::string& source,
                              const std::string& symbol,
                              double* compile_seconds) override;

  /// Current memo occupancy (entries / summed artifact bytes), bounded by
  /// the construction limits.
  size_t memo_entries();
  size_t memo_bytes();

 private:
  const char* name_;
  JitTier tier_;
  std::string flags_;
  uint64_t version_hash_;
  size_t memo_max_entries_;
  size_t memo_max_bytes_;
  std::mutex mu_;
  std::unordered_map<uint64_t, JitArtifact> memo_ AVM_GUARDED_BY(mu_);
  /// memo_ keys in insertion order.
  std::deque<uint64_t> fifo_ AVM_GUARDED_BY(mu_);
  size_t memo_bytes_ AVM_GUARDED_BY(mu_) = 0;
};

/// The fast tier: host compiler at -O0 (backend_cc_o0.cc).
JitBackend& CcBackendO0();

/// The optimized tier: host compiler at -O2 -march=native
/// (backend_cc_o2.cc).
JitBackend& CcBackendO2();

}  // namespace avm::jit
