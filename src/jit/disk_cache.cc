#include "jit/disk_cache.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>

#include "util/hash.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace avm::jit {

namespace {

// On-disk entry layout: header then payload, all host-endian (the cache is
// host-local by construction — artifacts are native shared objects).
constexpr char kMagic[8] = {'A', 'V', 'M', 'T', 'R', 'C', '1', '\0'};

struct EntryHeader {
  char magic[8];
  uint64_t version_hash;
  uint64_t situation_key;
  uint64_t source_hash;
  uint32_t tier;
  uint32_t reserved;
  uint64_t payload_len;
  uint64_t checksum;
};
static_assert(sizeof(EntryHeader) == 56, "on-disk header layout");

uint64_t EntryChecksum(const EntryHeader& h,
                       const std::vector<uint8_t>& payload) {
  uint64_t c = HashBytes(payload.data(), payload.size());
  c = HashCombine(c, h.version_hash);
  c = HashCombine(c, h.situation_key);
  c = HashCombine(c, h.source_hash);
  c = HashCombine(c, HashInt64(h.tier));
  return HashCombine(c, h.payload_len);
}

// mkdir -p: create every missing component of `path`.
Status MakeDirs(const std::string& path) {
  std::string partial;
  for (size_t i = 0; i <= path.size(); ++i) {
    if (i < path.size() && path[i] != '/') continue;
    partial = path.substr(0, i == path.size() ? i : i + 1);
    if (partial.empty() || partial == "/") continue;
    if (mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::RuntimeError(
          StrFormat("mkdir %s: %s", partial.c_str(), std::strerror(errno)));
    }
  }
  return Status::OK();
}

uint64_t DefaultBudget() {
  const char* env = std::getenv("AVM_TRACE_CACHE_BUDGET");
  if (env != nullptr && *env != '\0') {
    const long long v = std::atoll(env);
    if (v > 0) return static_cast<uint64_t>(v);
  }
  return 256ull << 20;
}

}  // namespace

DiskTraceCache::DiskTraceCache(std::string dir, uint64_t budget_bytes)
    : dir_(std::move(dir)), budget_bytes_(budget_bytes) {
  Status st = MakeDirs(dir_);
  if (!st.ok()) {
    AVM_LOG(kWarning) << "trace cache dir unusable: " << st.ToString();
  }
}

std::shared_ptr<DiskTraceCache> DiskTraceCache::ForDir(const std::string& dir,
                                                       uint64_t budget_bytes) {
  // Leaked registry: one instance per directory, alive for the process so
  // detached tier-upgrade threads can still store into it during shutdown.
  static std::mutex* mu = new std::mutex();
  static auto* registry =
      new std::map<std::string, std::shared_ptr<DiskTraceCache>>();
  std::lock_guard<std::mutex> lock(*mu);
  auto it = registry->find(dir);
  if (it != registry->end()) return it->second;
  auto cache = std::make_shared<DiskTraceCache>(dir, budget_bytes);
  registry->emplace(dir, cache);
  return cache;
}

std::shared_ptr<DiskTraceCache> DiskTraceCache::FromEnv() {
  const char* env = std::getenv("AVM_TRACE_CACHE_DIR");
  if (env == nullptr || *env == '\0') return nullptr;
  return ForDir(env, DefaultBudget());
}

std::string DiskTraceCache::EntryPath(uint64_t situation_key, JitTier tier,
                                      uint64_t version_hash) const {
  return StrFormat("%s/t%016llxv%016llx.%s.avmtc", dir_.c_str(),
                   (unsigned long long)situation_key,
                   (unsigned long long)version_hash, TierName(tier));
}

Result<JitArtifact> DiskTraceCache::LoadEntry(uint64_t situation_key,
                                              uint64_t source_hash,
                                              JitTier tier,
                                              uint64_t version_hash,
                                              uint64_t* corrupt_dropped) {
  const std::string path = EntryPath(situation_key, tier, version_hash);
  std::ifstream f(path, std::ios::binary);
  if (!f) return Status::NotFound(path);

  EntryHeader h{};
  f.read(reinterpret_cast<char*>(&h), sizeof h);
  bool corrupt = !f || std::memcmp(h.magic, kMagic, sizeof kMagic) != 0 ||
                 h.payload_len > (1ull << 32);
  std::vector<uint8_t> payload;
  if (!corrupt) {
    payload.resize(h.payload_len);
    f.read(reinterpret_cast<char*>(payload.data()),
           static_cast<std::streamsize>(h.payload_len));
    // A trailing byte after the payload, a short read, or a checksum
    // mismatch all mean the entry is not what Store published.
    corrupt = !f || f.peek() != std::ifstream::traits_type::eof() ||
              EntryChecksum(h, payload) != h.checksum;
  }
  f.close();
  if (corrupt) {
    ++corrupt_dropped_;
    if (corrupt_dropped != nullptr) ++*corrupt_dropped;
    std::remove(path.c_str());
    AVM_LOG(kWarning) << "trace cache: dropped corrupt entry " << path;
    return Status::NotFound(path + " (corrupt, dropped)");
  }
  // Defense in depth: the filename already encodes situation and version,
  // but a renamed/cross-linked file must not load into the wrong trace.
  if (h.version_hash != version_hash || h.situation_key != situation_key ||
      h.source_hash != source_hash ||
      h.tier != static_cast<uint32_t>(tier)) {
    std::remove(path.c_str());
    return Status::NotFound(path + " (stale key, dropped)");
  }
  // Touch so LRU eviction sees the hit.
  (void)utimensat(AT_FDCWD, path.c_str(), nullptr, 0);
  return JitArtifact{std::move(payload), tier};
}

Result<JitArtifact> DiskTraceCache::TryLoad(uint64_t situation_key,
                                            uint64_t source_hash, JitTier tier,
                                            uint64_t version_hash) {
  Result<JitArtifact> r =
      LoadEntry(situation_key, source_hash, tier, version_hash, nullptr);
  if (r.ok()) {
    ++hits_;
  } else {
    ++misses_;
  }
  return r;
}

Result<JitArtifact> DiskTraceCache::LoadBest(
    uint64_t situation_key, uint64_t source_hash,
    const std::vector<TierVersion>& candidates, uint64_t* corrupt_dropped) {
  for (const auto& [tier, version_hash] : candidates) {
    Result<JitArtifact> r =
        LoadEntry(situation_key, source_hash, tier, version_hash,
                  corrupt_dropped);
    if (r.ok()) {
      ++hits_;
      return r;
    }
  }
  ++misses_;
  return Status::NotFound("no cached artifact for situation");
}

Status DiskTraceCache::Store(uint64_t situation_key, uint64_t source_hash,
                             uint64_t version_hash,
                             const JitArtifact& artifact) {
  EntryHeader h{};
  std::memcpy(h.magic, kMagic, sizeof kMagic);
  h.version_hash = version_hash;
  h.situation_key = situation_key;
  h.source_hash = source_hash;
  h.tier = static_cast<uint32_t>(artifact.tier);
  h.payload_len = artifact.bytes.size();
  h.checksum = EntryChecksum(h, artifact.bytes);

  const std::string path =
      EntryPath(situation_key, artifact.tier, version_hash);
  // Unique temp name per (process, store): concurrent writers of the same
  // entry each publish a complete file; last rename wins with identical
  // content.
  const std::string tmp =
      StrFormat("%s.tmp%d.%llu", path.c_str(), (int)getpid(),
                (unsigned long long)tmp_seq_.fetch_add(1));
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f) return Status::RuntimeError("cannot write " + tmp);
    f.write(reinterpret_cast<const char*>(&h), sizeof h);
    f.write(reinterpret_cast<const char*>(artifact.bytes.data()),
            static_cast<std::streamsize>(artifact.bytes.size()));
    if (!f) {
      f.close();
      std::remove(tmp.c_str());
      return Status::RuntimeError("short write to " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::RuntimeError(
        StrFormat("rename %s: %s", path.c_str(), std::strerror(errno)));
  }
  ++stores_;
  EvictOverBudget();
  return Status::OK();
}

void DiskTraceCache::EvictOverBudget() {
  std::lock_guard<std::mutex> lock(mu_);
  DIR* d = opendir(dir_.c_str());
  if (d == nullptr) return;
  struct Entry {
    std::string path;
    uint64_t size;
    int64_t mtime_ns;
  };
  std::vector<Entry> entries;
  uint64_t total = 0;
  while (struct dirent* e = readdir(d)) {
    const std::string name = e->d_name;
    // Entries plus abandoned temp files from crashed writers both count
    // against the budget and are both evictable.
    const bool is_entry = name.size() > 6 &&
                          name.compare(name.size() - 6, 6, ".avmtc") == 0;
    const bool is_tmp = name.find(".avmtc.tmp") != std::string::npos;
    if (!is_entry && !is_tmp) continue;
    const std::string path = dir_ + "/" + name;
    struct stat st {};
    if (stat(path.c_str(), &st) != 0) continue;
    const int64_t mtime_ns =
        int64_t{st.st_mtim.tv_sec} * 1000000000 + st.st_mtim.tv_nsec;
    entries.push_back({path, (uint64_t)st.st_size, mtime_ns});
    total += (uint64_t)st.st_size;
  }
  closedir(d);
  if (total <= budget_bytes_) return;
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              return a.mtime_ns < b.mtime_ns;
            });
  for (const Entry& e : entries) {
    if (total <= budget_bytes_) break;
    if (std::remove(e.path.c_str()) != 0) continue;
    total -= e.size;
    ++evictions_;
    AVM_LOG(kDebug) << "trace cache: evicted " << e.path;
  }
}

DiskCacheStats DiskTraceCache::stats() const {
  DiskCacheStats s;
  s.hits = hits_.load();
  s.misses = misses_.load();
  s.corrupt_dropped = corrupt_dropped_.load();
  s.stores = stores_.load();
  s.evictions = evictions_.load();
  return s;
}

}  // namespace avm::jit
