#include "jit/jit_backend.h"

#include <dlfcn.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "jit/backend_cc.h"
#include "jit/trace_abi.h"
#include "util/hash.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace avm::jit {

namespace {

// Process-wide scratch directory for compiler invocations and artifact
// loads, created under $TMPDIR (fallback /tmp). Leaked (like every static
// in this TU) so detached tier-upgrade threads can still compile while the
// process is shutting down.
const std::string& ScratchDir() {
  static const std::string* dir = [] {
    const char* env = std::getenv("TMPDIR");
    std::string base = env != nullptr && *env != '\0' ? env : "/tmp";
    while (base.size() > 1 && base.back() == '/') base.pop_back();
    std::string tmpl = base + "/avm_jit_XXXXXX";
    char* d = mkdtemp(tmpl.data());
    return new std::string(d != nullptr ? d : base);
  }();
  return *dir;
}

Result<std::vector<uint8_t>> ReadFileBytes(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return Status::CompilationError("cannot read " + path);
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(f)),
                             std::istreambuf_iterator<char>());
  return bytes;
}

}  // namespace

const std::string& JitScratchDir() { return ScratchDir(); }

const char* TierName(JitTier t) {
  return t == JitTier::kFast ? "fast" : "opt";
}

const char* TierPolicyName(TierPolicy p) {
  switch (p) {
    case TierPolicy::kFastOnly:
      return "fast";
    case TierPolicy::kOptimizedOnly:
      return "opt";
    default:
      return "tiered";
  }
}

TierPolicy ResolveTierPolicy(TierPolicy p) {
  if (p != TierPolicy::kDefault) return p;
  const char* env = std::getenv("AVM_JIT_TIER");
  if (env != nullptr) {
    const std::string v(env);
    if (v == "fast") return TierPolicy::kFastOnly;
    if (v == "opt") return TierPolicy::kOptimizedOnly;
  }
  return TierPolicy::kTiered;
}

JitBackend& BackendForTier(JitTier tier) {
  return tier == JitTier::kFast ? CcBackendO0() : CcBackendO2();
}

const std::string& HostCompilerPath() {
  static const std::string* compiler = [] {
    const char* env = std::getenv("AVM_CXX");
    if (env != nullptr && *env != '\0') return new std::string(env);
    for (const char* c : {"c++", "g++", "clang++"}) {
      std::string cmd = StrFormat("command -v %s > /dev/null 2>&1", c);
      if (std::system(cmd.c_str()) == 0) return new std::string(c);
    }
    return new std::string();
  }();
  return *compiler;
}

const std::string& HostCompilerIdentity() {
  static const std::string* identity = [] {
    const std::string& cc = HostCompilerPath();
    if (cc.empty()) return new std::string("<none>");
    std::string line = cc;
    const std::string cmd = StrFormat("%s --version 2> /dev/null", cc.c_str());
    if (FILE* pipe = popen(cmd.c_str(), "r")) {
      char buf[256];
      if (std::fgets(buf, sizeof buf, pipe) != nullptr) {
        line += " ";
        line += buf;
        while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
          line.pop_back();
        }
      }
      pclose(pipe);
    }
    return new std::string(std::move(line));
  }();
  return *identity;
}

Result<std::vector<uint8_t>> CcCompileToBytes(const std::string& source,
                                              const std::string& flags,
                                              double* compile_seconds) {
  const std::string& cc = HostCompilerPath();
  if (cc.empty()) {
    return Status::CompilationError("no host compiler available");
  }
  Stopwatch sw;
  // The content hash makes scratch names readable in the scratch dir; the
  // sequence number makes them unique. Hashing alone is not enough: two
  // threads compiling the SAME source concurrently (upgrade threads of two
  // engines sharing one process) would share paths, and whoever finishes
  // first would delete the .so out from under the other.
  static std::atomic<uint64_t> invocation_seq{0};
  const uint64_t key = HashCombine(HashString(source), HashString(flags));
  const std::string base =
      StrFormat("%s/t%016llx_%llu", ScratchDir().c_str(),
                (unsigned long long)key,
                (unsigned long long)invocation_seq.fetch_add(1));
  const std::string src_path = base + ".cc";
  const std::string so_path = base + ".so";
  const std::string log_path = base + ".log";
  {
    std::ofstream f(src_path);
    if (!f) return Status::CompilationError("cannot write " + src_path);
    f << source;
  }
  const std::string cmd = StrFormat(
      "%s %s -std=c++17 -shared -fPIC %s -o %s > %s 2>&1", cc.c_str(),
      flags.c_str(), src_path.c_str(), so_path.c_str(), log_path.c_str());
  if (std::system(cmd.c_str()) != 0) {
    std::string log;
    std::ifstream lf(log_path);
    std::string line;
    while (std::getline(lf, line) && log.size() < 4000) log += line + "\n";
    return Status::CompilationError("compile failed:\n" + log);
  }
  AVM_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, ReadFileBytes(so_path));
  std::remove(so_path.c_str());
  std::remove(src_path.c_str());
  std::remove(log_path.c_str());
  if (compile_seconds != nullptr) *compile_seconds = sw.ElapsedSeconds();
  return bytes;
}

CcBackend::CcBackend(const char* name, JitTier tier, std::string flags,
                     size_t memo_max_entries, size_t memo_max_bytes)
    : name_(name),
      tier_(tier),
      flags_(std::move(flags)),
      memo_max_entries_(std::max<size_t>(memo_max_entries, 1)),
      memo_max_bytes_(memo_max_bytes) {
  version_hash_ = HashCombine(
      HashCombine(HashInt64(kTraceAbiVersion), HashString(flags_)),
      HashString(HostCompilerIdentity()));
}

size_t CcBackend::memo_entries() {
  std::lock_guard<std::mutex> lock(mu_);
  return memo_.size();
}

size_t CcBackend::memo_bytes() {
  std::lock_guard<std::mutex> lock(mu_);
  return memo_bytes_;
}

bool CcBackend::Available() const { return !HostCompilerPath().empty(); }

Result<JitArtifact> CcBackend::Compile(const std::string& source,
                                       const std::string& symbol,
                                       double* compile_seconds) {
  if (compile_seconds != nullptr) *compile_seconds = 0;
  const uint64_t key = HashCombine(HashString(source), HashString(symbol));
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
  }
  AVM_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes,
                       CcCompileToBytes(source, flags_, compile_seconds));
  JitArtifact artifact{std::move(bytes), tier_};
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (memo_.emplace(key, artifact).second) {
      fifo_.push_back(key);
      memo_bytes_ += artifact.bytes.size();
      // Bounded memo: evict oldest-first until both the entry-count and
      // total-bytes caps hold again. An artifact larger than the byte cap
      // drains the memo entirely, itself included — it is simply never
      // cached.
      while (!fifo_.empty() && (memo_.size() > memo_max_entries_ ||
                                memo_bytes_ > memo_max_bytes_)) {
        auto victim = memo_.find(fifo_.front());
        fifo_.pop_front();
        if (victim != memo_.end()) {
          memo_bytes_ -= victim->second.bytes.size();
          memo_.erase(victim);
        }
      }
    }
  }
  AVM_LOG(kDebug) << name_ << " compiled " << symbol << " ("
                  << artifact.bytes.size() << " bytes)";
  return artifact;
}

ArtifactLoader::ArtifactLoader(size_t memo_limit)
    : dir_(ScratchDir()), memo_limit_(std::max<size_t>(memo_limit, 1)) {}

size_t ArtifactLoader::memo_entries() {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

ArtifactLoader& ArtifactLoader::Global() {
  static ArtifactLoader* loader = new ArtifactLoader();
  return *loader;
}

Result<void*> ArtifactLoader::Load(const JitArtifact& artifact,
                                   const std::string& symbol) {
  if (artifact.bytes.empty()) {
    return Status::CompilationError("empty artifact for " + symbol);
  }
  const uint64_t key =
      HashCombine(HashBytes(artifact.bytes.data(), artifact.bytes.size()),
                  HashString(symbol));
  uint64_t seq;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
    seq = seq_++;
  }
  // dlopen needs a file path; materialize the bytes in the private scratch
  // dir. The sequence number keeps concurrent loads of the same artifact
  // from racing on one path (both land in cache_; one handle is redundant
  // but harmless for the process lifetime).
  const std::string so_path =
      StrFormat("%s/l%016llx_%llu.so", dir_.c_str(), (unsigned long long)key,
                (unsigned long long)seq);
  {
    std::ofstream f(so_path, std::ios::binary);
    if (!f) return Status::CompilationError("cannot write " + so_path);
    f.write(reinterpret_cast<const char*>(artifact.bytes.data()),
            static_cast<std::streamsize>(artifact.bytes.size()));
  }
  void* handle = dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
  std::remove(so_path.c_str());
  if (handle == nullptr) {
    return Status::CompilationError(StrFormat("dlopen: %s", dlerror()));
  }
  void* sym = dlsym(handle, symbol.c_str());
  if (sym == nullptr) {
    dlclose(handle);
    return Status::CompilationError("symbol not found: " + symbol);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    handles_.push_back(handle);
    if (cache_.emplace(key, sym).second) {
      fifo_.push_back(key);
      // Bounded memo: drop the oldest entries. Their handles stay mapped
      // (pointers already handed out must survive); re-loading an evicted
      // artifact just dlopens a fresh copy.
      while (cache_.size() > memo_limit_ && !fifo_.empty()) {
        cache_.erase(fifo_.front());
        fifo_.pop_front();
      }
    }
  }
  return sym;
}

}  // namespace avm::jit
