// Turns generated traces into runnable injections for the interpreter —
// the "Generate code" → "Inject functions" edges of the Fig. 1 state machine.
#pragma once

#include "interp/interpreter.h"
#include "jit/codegen.h"
#include "jit/source_jit.h"

namespace avm::jit {

/// A fully compiled trace: generation metadata plus the machine-code entry.
struct CompiledTrace {
  GeneratedTrace meta;
  TraceFn fn = nullptr;
};

/// Generate + compile a trace through the source JIT.
Result<CompiledTrace> CompileTrace(const dsl::Program& program,
                                   const ir::DepGraph& graph,
                                   const ir::Trace& trace,
                                   SourceJit& jit,
                                   const CodegenOptions& options = {});

/// Build the interpreter injection for a compiled trace. The injection:
///  - gathers input pointers (chunk variables, data-read windows,
///    FOR-compressed delta windows, whole-array gather bases),
///  - resolves captured scalars from the environment,
///  - allocates output buffers and calls the compiled function,
///  - publishes escaping values / fold scalars back into the environment.
/// Its `applicable` check verifies positions are in range and compression
/// scheme requirements hold; when it fails the interpreter transparently
/// falls back to vectorized interpretation (paper §III-C).
interp::InjectedTrace MakeInjection(const CompiledTrace& trace,
                                    uint32_t chunk_size);

}  // namespace avm::jit
