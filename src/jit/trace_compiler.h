// Turns generated traces into runnable injections for the interpreter —
// the "Generate code" → "Inject functions" edges of the Fig. 1 state machine.
#pragma once

#include <atomic>
#include <memory>

#include "interp/interpreter.h"
#include "jit/codegen.h"
#include "jit/disk_cache.h"
#include "jit/source_jit.h"

namespace avm::jit {

/// A fully compiled trace: generation metadata plus the machine-code entry.
struct CompiledTrace {
  GeneratedTrace meta;
  TraceFn fn = nullptr;
  /// Optimization tier `fn` was compiled at (tiered JIT; the legacy
  /// CompileTrace path always produces optimized code).
  JitTier tier = JitTier::kOptimized;
};

/// One live compiled trace whose machine code can be RE-PUBLISHED in place:
/// the asynchronous tier upgrade compiles the same source at the optimized
/// tier and swaps `fn` atomically, so running injections and future cache
/// hits pick up the better code mid-query without re-injection and without
/// any worker ever blocking on the upgrade. Entries are what TraceCache
/// stores; metadata is immutable after construction.
class TraceEntry {
 public:
  /// Wrap a compiled trace. `situation_key` is the cache key the entry is
  /// stored under (also the disk-cache key of upgrade artifacts); legacy
  /// non-cached injections pass 0.
  TraceEntry(CompiledTrace trace, uint64_t situation_key);

  /// Generation metadata (immutable).
  const GeneratedTrace& meta() const { return trace_.meta; }

  /// Current entry point (acquire; pairs with Publish's release).
  TraceFn fn() const { return fn_.load(std::memory_order_acquire); }

  /// Current optimization tier of fn().
  JitTier tier() const {
    return static_cast<JitTier>(tier_.load(std::memory_order_acquire));
  }

  /// Situation key this entry is cached under.
  uint64_t situation_key() const { return situation_key_; }

  /// Hash of the generated source (disk-cache key component).
  uint64_t source_hash() const { return source_hash_; }

  /// Count one injection invocation; returns the new total (the tier
  /// upgrade's hotness signal).
  uint64_t OnInvocation() {
    return invocations_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Invocations observed so far.
  uint64_t invocations() const {
    return invocations_.load(std::memory_order_relaxed);
  }

  /// One-shot claim of the upgrade: true for exactly one caller.
  bool TryClaimUpgrade() {
    return !upgrade_claimed_.exchange(true, std::memory_order_acq_rel);
  }

  /// Swap in new machine code (release; readers continue seamlessly).
  void Publish(TraceFn fn, JitTier tier) {
    tier_.store(static_cast<uint8_t>(tier), std::memory_order_release);
    fn_.store(fn, std::memory_order_release);
  }

 private:
  CompiledTrace trace_;  ///< meta storage; fn/tier live in the atomics
  uint64_t situation_key_;
  uint64_t source_hash_;
  std::atomic<TraceFn> fn_;
  std::atomic<uint8_t> tier_;
  std::atomic<uint64_t> invocations_{0};
  std::atomic<bool> upgrade_claimed_{false};
};

/// Tier-upgrade counters one VM run shares with its upgrade threads (the
/// threads may outlive the run; the report reads whatever completed by
/// then).
struct TierCounters {
  std::atomic<uint64_t> requested{0};
  std::atomic<uint64_t> completed{0};
  std::atomic<uint64_t> failed{0};
};

/// Tier-upgrade policy an injection applies to its entry (the fast→opt
/// state machine, docs/TRACE_CACHE.md).
struct TraceTierOptions {
  /// Whether hot fast-tier entries upgrade at all (TierPolicy::kTiered).
  bool upgrade_enabled = false;
  /// Invocation count that makes an entry hot.
  uint64_t upgrade_after = 32;
  /// Persistent store upgrades probe first and publish into (may be null).
  std::shared_ptr<DiskTraceCache> disk;
  /// Observability sink (may be null).
  std::shared_ptr<TierCounters> counters;
};

/// Result of one tiered compile-or-load: the trace plus where it came from
/// and what it cost (the VM's per-query observability counters).
struct TieredCompileOutcome {
  CompiledTrace trace;
  bool from_disk = false;      ///< loaded from the persistent cache
  bool disk_probed = false;    ///< a persistent cache was consulted
  uint64_t disk_corrupt = 0;   ///< corrupt entries dropped while probing
  double compile_seconds = 0;  ///< backend wall time (0 on disk hit)
};

/// Generate + compile a trace through the source JIT (always optimized
/// tier, no persistence — the pre-tiering path, kept for direct callers).
Result<CompiledTrace> CompileTrace(const dsl::Program& program,
                                   const ir::DepGraph& graph,
                                   const ir::Trace& trace,
                                   SourceJit& jit,
                                   const CodegenOptions& options = {});

/// Generate a trace, then obtain its machine code the cheapest honest way:
/// consult `disk` (when non-null) for an artifact of an allowed tier before
/// invoking a backend; on miss compile at the policy's initial tier (fast
/// for kTiered/kFastOnly, optimized for kOptimizedOnly) and publish the
/// artifact back to `disk`. `situation_key` keys the persistent entry.
Result<TieredCompileOutcome> CompileTraceTiered(
    const dsl::Program& program, const ir::DepGraph& graph,
    const ir::Trace& trace, const CodegenOptions& options, TierPolicy policy,
    const std::shared_ptr<DiskTraceCache>& disk, uint64_t situation_key);

/// Build the interpreter injection for a compiled trace. The injection:
///  - gathers input pointers + lengths (chunk variables, data-read windows,
///    FOR-compressed delta windows, whole-array gather bases),
///  - resolves captured scalars from the environment,
///  - passes the shared selection of the trace's selection-carrying inputs
///    as TraceCallArgs::sel (selection-specialized variants only),
///  - allocates output buffers (data writes land in scratch and publish
///    after a bounds check) and calls the compiled function,
///  - translates a returned TraceFault into the exact OutOfRange status
///    the interpreter's own gather/scatter/write bounds checks raise,
///  - publishes escaping values, fold scalars, and the scalar state of
///    let-bound writes/scatters (cursor advances) into the environment.
/// Its `applicable` check verifies positions are in range, compression
/// scheme requirements hold, and the runtime selection pattern matches the
/// variant's specialization; when it fails the interpreter transparently
/// falls back to vectorized interpretation (paper §III-C). See
/// docs/TRACE_ABI.md for the full contract.
interp::InjectedTrace MakeInjection(const CompiledTrace& trace,
                                    uint32_t chunk_size);

/// Injection over a live cache entry: reads the entry's CURRENT fn on every
/// call (so an async tier upgrade takes effect mid-query), counts
/// invocations, and — under `tier.upgrade_enabled` — claims and launches
/// the one-shot background upgrade once the entry crosses the hotness
/// threshold.
interp::InjectedTrace MakeInjection(std::shared_ptr<TraceEntry> entry,
                                    uint32_t chunk_size,
                                    TraceTierOptions tier = {});

}  // namespace avm::jit
