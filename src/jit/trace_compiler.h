// Turns generated traces into runnable injections for the interpreter —
// the "Generate code" → "Inject functions" edges of the Fig. 1 state machine.
#pragma once

#include "interp/interpreter.h"
#include "jit/codegen.h"
#include "jit/source_jit.h"

namespace avm::jit {

/// A fully compiled trace: generation metadata plus the machine-code entry.
struct CompiledTrace {
  GeneratedTrace meta;
  TraceFn fn = nullptr;
};

/// Generate + compile a trace through the source JIT.
Result<CompiledTrace> CompileTrace(const dsl::Program& program,
                                   const ir::DepGraph& graph,
                                   const ir::Trace& trace,
                                   SourceJit& jit,
                                   const CodegenOptions& options = {});

/// Build the interpreter injection for a compiled trace. The injection:
///  - gathers input pointers + lengths (chunk variables, data-read windows,
///    FOR-compressed delta windows, whole-array gather bases),
///  - resolves captured scalars from the environment,
///  - passes the shared selection of the trace's selection-carrying inputs
///    as TraceCallArgs::sel (selection-specialized variants only),
///  - allocates output buffers (data writes land in scratch and publish
///    after a bounds check) and calls the compiled function,
///  - translates a returned TraceFault into the exact OutOfRange status
///    the interpreter's own gather/scatter/write bounds checks raise,
///  - publishes escaping values, fold scalars, and the scalar state of
///    let-bound writes/scatters (cursor advances) into the environment.
/// Its `applicable` check verifies positions are in range, compression
/// scheme requirements hold, and the runtime selection pattern matches the
/// variant's specialization; when it fails the interpreter transparently
/// falls back to vectorized interpretation (paper §III-C). See
/// docs/TRACE_ABI.md for the full contract.
interp::InjectedTrace MakeInjection(const CompiledTrace& trace,
                                    uint32_t chunk_size);

}  // namespace avm::jit
