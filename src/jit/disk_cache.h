// Persistent on-disk compiled-trace cache (ROADMAP direction 2).
//
// Stores JitArtifact bytes under a directory (AVM_TRACE_CACHE_DIR), one
// file per (situation, version, tier):
//
//   t<situation_key:016x>v<version_hash:016x>.<fast|opt>.avmtc
//
// so a restarted process finds the machine code for every trace it has ever
// compiled and is warm from its first query — the payoff of PR 5's
// bit-stable trace fingerprints. Design properties (the miniexpr
// dsl_jit_runtime_cache architecture):
//
//  - Crash-safe writes: entries are written to a temp file in the same
//    directory and published with rename(2), so readers — including other
//    processes sharing the directory — only ever see complete entries.
//  - Checksum-verified loads: every entry carries an FNV-1a checksum over
//    its payload and header; corrupt or truncated entries are detected,
//    deleted, and reported as misses (the caller recompiles) — never
//    loaded.
//  - Version keying: the backend's version_hash (trace ABI version +
//    compiler identity + flags) is part of the filename and the header, so
//    artifacts from a different compiler, flag set, or ABI revision
//    silently miss instead of being dlopen'd into the wrong contract.
//  - Size budget: after every store, least-recently-used entries (by file
//    mtime; hits re-touch) are evicted until the directory is back under
//    the byte budget (AVM_TRACE_CACHE_BUDGET, default 256 MiB).
//
// On-disk format and the full contract: docs/TRACE_CACHE.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "jit/jit_backend.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace avm::jit {

/// Snapshot of a DiskTraceCache's lifetime counters.
struct DiskCacheStats {
  uint64_t hits = 0;             ///< logical lookups that loaded an artifact
  uint64_t misses = 0;           ///< logical lookups that found nothing
  uint64_t corrupt_dropped = 0;  ///< entries failing checksum, deleted
  uint64_t stores = 0;           ///< entries published
  uint64_t evictions = 0;        ///< entries removed by the LRU budget
};

/// A (tier, version_hash) pair identifying one loadable flavor of an entry;
/// LoadBest probes a caller-ordered list of these.
using TierVersion = std::pair<JitTier, uint64_t>;

/// Directory-backed artifact store. Thread-safe; safe to share one
/// directory across processes (atomic-rename publication, checksummed
/// reads).
class DiskTraceCache {
 public:
  /// Open (creating if needed) a cache rooted at `dir` with the given byte
  /// budget. Prefer ForDir/FromEnv, which share instances.
  DiskTraceCache(std::string dir, uint64_t budget_bytes);

  /// The process-wide instance for `dir` (created on first use), so every
  /// Session pointed at one directory shares one LRU/stat state. Budget is
  /// fixed by the first call for a given directory.
  static std::shared_ptr<DiskTraceCache> ForDir(const std::string& dir,
                                                uint64_t budget_bytes);

  /// The cache named by AVM_TRACE_CACHE_DIR with the AVM_TRACE_CACHE_BUDGET
  /// byte budget, or nullptr when the variable is unset/empty (persistent
  /// caching off — the default).
  static std::shared_ptr<DiskTraceCache> FromEnv();

  /// Load the entry for (situation_key, tier, version_hash), verifying the
  /// checksum and that it was generated from `source_hash`. Counts one hit
  /// or miss. NotFound on miss; corrupt entries are deleted and reported as
  /// NotFound.
  Result<JitArtifact> TryLoad(uint64_t situation_key, uint64_t source_hash,
                              JitTier tier, uint64_t version_hash);

  /// Probe `candidates` in caller-preference order and return the first
  /// loadable artifact. Counts ONE logical hit or miss regardless of how
  /// many flavors were probed. `corrupt_dropped`, when non-null, is
  /// incremented per corrupt entry deleted during this probe (per-query
  /// observability; the instance counter advances regardless).
  Result<JitArtifact> LoadBest(uint64_t situation_key, uint64_t source_hash,
                               const std::vector<TierVersion>& candidates,
                               uint64_t* corrupt_dropped = nullptr);

  /// Publish an artifact for (situation_key, version_hash, artifact.tier),
  /// then evict over-budget entries. Failure is returned but callers treat
  /// the cache as best-effort (a failed store never fails a query).
  Status Store(uint64_t situation_key, uint64_t source_hash,
               uint64_t version_hash, const JitArtifact& artifact);

  /// Path of the entry file for a key (tests corrupt entries through this).
  std::string EntryPath(uint64_t situation_key, JitTier tier,
                        uint64_t version_hash) const;

  /// Lifetime counters of this instance.
  DiskCacheStats stats() const;

  /// Cache root directory.
  const std::string& dir() const { return dir_; }

  /// Eviction budget in bytes.
  uint64_t budget_bytes() const { return budget_bytes_; }

 private:
  Result<JitArtifact> LoadEntry(uint64_t situation_key, uint64_t source_hash,
                                JitTier tier, uint64_t version_hash,
                                uint64_t* corrupt_dropped);
  void EvictOverBudget() AVM_EXCLUDES(mu_);

  std::string dir_;
  uint64_t budget_bytes_;
  /// Serializes store+evict directory scans; all other state is atomic or
  /// immutable after construction (file contents are made consistent by
  /// atomic-rename publication, not by this lock).
  std::mutex mu_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> corrupt_dropped_{0};
  std::atomic<uint64_t> stores_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> tmp_seq_{0};
};

}  // namespace avm::jit
