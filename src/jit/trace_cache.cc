#include "jit/trace_cache.h"

#include <sstream>

#include "util/hash.h"

namespace avm::jit {

SelectivityBucket BucketOf(double selectivity) {
  if (selectivity < 0.25) return SelectivityBucket::kLow;
  if (selectivity > 0.75) return SelectivityBucket::kHigh;
  return SelectivityBucket::kMid;
}

const char* BucketName(SelectivityBucket b) {
  switch (b) {
    case SelectivityBucket::kAny: return "any";
    case SelectivityBucket::kLow: return "low";
    case SelectivityBucket::kMid: return "mid";
    case SelectivityBucket::kHigh: return "high";
  }
  return "?";
}

uint64_t Situation::Key() const {
  uint64_t h = trace_fingerprint;
  for (const auto& [name, scheme] : schemes) {
    h = HashCombine(h, HashString(name));
    h = HashCombine(h, static_cast<uint64_t>(scheme));
  }
  for (const auto& name : sel_inputs) {
    h = HashCombine(h, HashString(name));
    h = HashCombine(h, uint64_t{0x5e1});
  }
  h = HashCombine(h, static_cast<uint64_t>(selectivity));
  return h;
}

std::string Situation::ToString() const {
  std::ostringstream os;
  os << "situation{fp=" << trace_fingerprint;
  for (const auto& [name, scheme] : schemes) {
    os << " " << name << "=" << SchemeName(scheme);
  }
  for (const auto& name : sel_inputs) {
    os << " sel:" << name;
  }
  os << " sel=" << BucketName(selectivity) << "}";
  return os.str();
}

uint64_t TraceFingerprint(const ir::DepGraph& graph, const ir::Trace& trace) {
  uint64_t h = 0xabcdef12345678ull;
  for (uint32_t id : trace.node_ids) {
    h = HashCombine(h, HashString(graph.nodes()[id].label));
    h = HashCombine(h, id);
  }
  return h;
}

std::shared_ptr<TraceEntry> TraceCache::Find(const Situation& s) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(s.Key());
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return it->second;
}

std::shared_ptr<TraceEntry> TraceCache::Insert(const Situation& s,
                                               CompiledTrace trace) {
  auto entry = std::make_shared<TraceEntry>(std::move(trace), s.Key());
  std::lock_guard<std::mutex> lock(mu_);
  entries_[s.Key()] = entry;
  return entry;
}

std::shared_ptr<TraceEntry> TraceCache::Lookup(uint64_t key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : it->second;
}

Result<std::shared_ptr<TraceEntry>> TraceCache::GetOrCompile(
    const Situation& s, const std::function<Result<CompiledTrace>()>& compile,
    bool* compiled_fresh) {
  *compiled_fresh = false;
  const uint64_t key = s.Key();
  // One counted probe per logical lookup; the re-check and insert below go
  // through the uncounted paths so hits()/misses() stay meaningful.
  if (std::shared_ptr<TraceEntry> hit = Find(s)) return hit;

  // Per-key in-flight lock: duplicate compiles of one situation are
  // deduplicated without serializing compiles of distinct situations.
  std::shared_ptr<std::mutex> key_mu;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = compiling_[key];
    if (slot == nullptr) slot = std::make_shared<std::mutex>();
    key_mu = slot;
  }
  std::lock_guard<std::mutex> compile_lock(*key_mu);
  // A concurrent winner may have inserted while we waited for the lock.
  if (std::shared_ptr<TraceEntry> hit = Lookup(key)) return hit;
  Result<CompiledTrace> fresh = compile();
  std::shared_ptr<TraceEntry> entry;
  if (fresh.ok()) entry = Insert(s, std::move(fresh).value());
  {
    // Erased after the insert so a latecomer that misses the in-flight map
    // is guaranteed to hit the cache. Waiters hold key_mu via shared_ptr.
    std::lock_guard<std::mutex> lock(mu_);
    compiling_.erase(key);
  }
  AVM_RETURN_NOT_OK(fresh.status());
  *compiled_fresh = true;
  return entry;
}

size_t TraceCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

uint64_t TraceCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t TraceCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

}  // namespace avm::jit
