#include "jit/trace_cache.h"

#include <sstream>

#include "util/hash.h"

namespace avm::jit {

SelectivityBucket BucketOf(double selectivity) {
  if (selectivity < 0.25) return SelectivityBucket::kLow;
  if (selectivity > 0.75) return SelectivityBucket::kHigh;
  return SelectivityBucket::kMid;
}

const char* BucketName(SelectivityBucket b) {
  switch (b) {
    case SelectivityBucket::kAny: return "any";
    case SelectivityBucket::kLow: return "low";
    case SelectivityBucket::kMid: return "mid";
    case SelectivityBucket::kHigh: return "high";
  }
  return "?";
}

uint64_t Situation::Key() const {
  uint64_t h = trace_fingerprint;
  for (const auto& [name, scheme] : schemes) {
    h = HashCombine(h, HashString(name));
    h = HashCombine(h, static_cast<uint64_t>(scheme));
  }
  h = HashCombine(h, static_cast<uint64_t>(selectivity));
  return h;
}

std::string Situation::ToString() const {
  std::ostringstream os;
  os << "situation{fp=" << trace_fingerprint;
  for (const auto& [name, scheme] : schemes) {
    os << " " << name << "=" << SchemeName(scheme);
  }
  os << " sel=" << BucketName(selectivity) << "}";
  return os.str();
}

uint64_t TraceFingerprint(const ir::DepGraph& graph, const ir::Trace& trace) {
  uint64_t h = 0xabcdef12345678ull;
  for (uint32_t id : trace.node_ids) {
    h = HashCombine(h, HashString(graph.nodes()[id].label));
    h = HashCombine(h, id);
  }
  return h;
}

const CompiledTrace* TraceCache::Find(const Situation& s) const {
  auto it = entries_.find(s.Key());
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return &it->second;
}

void TraceCache::Insert(const Situation& s, CompiledTrace trace) {
  entries_[s.Key()] = std::move(trace);
}

}  // namespace avm::jit
