// Source-level JIT engine.
//
// Substitution note (DESIGN.md §1): the paper assumes an LLVM-style JIT; we
// generate specialized C++, compile it with the system compiler into a
// shared object and dlopen it. This is a real production technique
// (PostgreSQL pre-LLVM, and several engines' fallback paths) and produces
// genuinely specialized machine code with realistic compile latencies,
// which is exactly the interpret-vs-compile tension the paper studies.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace avm::jit {

struct JitStats {
  uint64_t compilations = 0;
  uint64_t cache_hits = 0;
  double total_compile_seconds = 0;
};

/// Compiles C++ translation units to shared objects and resolves symbols.
/// Thread-safe; results are cached by source hash.
class SourceJit {
 public:
  SourceJit();
  ~SourceJit();

  /// Whether a working host compiler was found.
  static bool Available();

  /// Compile `source` (a complete TU exporting extern "C" `symbol`) and
  /// return the symbol's address. Cached: identical source compiles once.
  Result<void*> CompileAndLoad(const std::string& source,
                               const std::string& symbol);

  const JitStats& stats() const { return stats_; }

  /// Extra flags appended to the compile command (tests use -O0 for speed).
  void set_extra_flags(std::string flags) { extra_flags_ = std::move(flags); }

  /// Process-wide instance (compiled traces are process-global anyway).
  static SourceJit& Global();

 private:
  std::mutex mu_;
  std::unordered_map<uint64_t, void*> cache_;
  std::vector<void*> handles_;
  std::string dir_;
  std::string extra_flags_;
  JitStats stats_;
};

}  // namespace avm::jit
