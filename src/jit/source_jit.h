// Source-level JIT engine.
//
// Substitution note (DESIGN.md §1): the paper assumes an LLVM-style JIT; we
// generate specialized C++, compile it with the system compiler into a
// shared object and dlopen it. This is a real production technique
// (PostgreSQL pre-LLVM, and several engines' fallback paths) and produces
// genuinely specialized machine code with realistic compile latencies,
// which is exactly the interpret-vs-compile tension the paper studies.
//
// SourceJit is the one-shot convenience facade over the backend seam
// (jit_backend.h): compile at full optimization and hand back a live
// function pointer. The tiered/persistent path (TieredJit) talks to the
// backends and the artifact loader directly.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "jit/jit_backend.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace avm::jit {

/// Compiles C++ translation units to shared objects and resolves symbols.
/// Thread-safe; results are cached by source hash.
class SourceJit {
 public:
  SourceJit();
  ~SourceJit();

  /// Whether a working host compiler was found.
  static bool Available();

  /// Compile `source` (a complete TU exporting extern "C" `symbol`) and
  /// return the symbol's address. Cached: identical source compiles once.
  Result<void*> CompileAndLoad(const std::string& source,
                               const std::string& symbol);

  /// Counters of this instance's compile traffic.
  const JitStats& stats() const { return stats_; }

  /// Extra flags appended to the compile command (tests use -O0 for speed).
  void set_extra_flags(std::string flags) { extra_flags_ = std::move(flags); }

  /// Process-wide instance (compiled traces are process-global anyway).
  static SourceJit& Global();

 private:
  std::mutex mu_;
  std::unordered_map<uint64_t, void*> cache_ AVM_GUARDED_BY(mu_);
  std::string extra_flags_;
  // stats_ is deliberately unannotated: stats() hands out a const reference
  // that callers read between compiles (counters are updated under mu_ but
  // observed racily by design — they are diagnostics, not control flow).
  JitStats stats_;
};

}  // namespace avm::jit
