// Timing utilities: wall-clock stopwatch and cycle counter.
//
// The interpreter's profiler attributes cycles to primitive operations; the
// adaptive VM compares flavors by per-tuple cost, so cheap high-resolution
// timing matters.
#pragma once

#include <chrono>
#include <cstdint>

#include "util/macros.h"

#if defined(__x86_64__)
#include <x86intrin.h>
#endif

namespace avm {

/// Read the CPU timestamp counter (falls back to steady_clock nanos).
inline uint64_t ReadCycleCounter() {
#if defined(__x86_64__)
  return __rdtsc();
#else
  return static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

/// Wall-clock stopwatch with nanosecond resolution.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }
  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }
  uint64_t ElapsedNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// RAII cycle-accumulator: adds elapsed cycles to `*sink` on destruction.
class ScopedCycleTimer {
 public:
  explicit ScopedCycleTimer(uint64_t* sink)
      : sink_(sink), start_(ReadCycleCounter()) {}
  ~ScopedCycleTimer() { *sink_ += ReadCycleCounter() - start_; }
  AVM_DISALLOW_COPY_AND_ASSIGN(ScopedCycleTimer);

 private:
  uint64_t* sink_;
  uint64_t start_;
};

}  // namespace avm
