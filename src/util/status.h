// Status / Result<T> error model.
//
// Following Arrow/Google practice, errors never cross public API boundaries
// as exceptions; functions that can fail return Status or Result<T>.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "util/macros.h"

namespace avm {

enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kTypeError,
  kOutOfRange,
  kNotFound,
  kNotImplemented,
  kCompilationError,
  kRuntimeError,
  kResourceExhausted,
  kCancelled,
  /// A facility is (transiently) not usable for this call — e.g. a compiled
  /// trace whose preconditions do not hold this iteration; callers fall
  /// back to another path instead of failing.
  kUnavailable,
  kInternal,
};

/// Human-readable name of a StatusCode ("OK", "Invalid argument", ...).
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of an operation: OK, or an error code plus message.
///
/// The OK state is represented by a null internal pointer, so returning OK
/// is free of allocation.
class Status {
 public:
  Status() noexcept = default;
  Status(StatusCode code, std::string msg);

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status CompilationError(std::string msg) {
    return Status(StatusCode::kCompilationError, std::move(msg));
  }
  static Status RuntimeError(std::string msg) {
    return Status(StatusCode::kRuntimeError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  const std::string& message() const;

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsTypeError() const { return code() == StatusCode::kTypeError; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsNotImplemented() const { return code() == StatusCode::kNotImplemented; }
  bool IsCompilationError() const { return code() == StatusCode::kCompilationError; }
  bool IsRuntimeError() const { return code() == StatusCode::kRuntimeError; }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  /// Abort the process if this status is not OK (for use in tests/examples).
  void Abort(const char* context = nullptr) const;

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  std::shared_ptr<State> state_;
};

/// \brief Either a value of type T or an error Status.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT implicit
  Result(Status status) : status_(std::move(status)) {}  // NOLINT implicit

  bool ok() const { return status_.ok(); }
  const Status& status() const& { return status_; }
  Status status() && { return std::move(status_); }

  const T& value() const& { return value_; }
  T& value() & { return value_; }
  T value() && { return std::move(value_); }

  /// Return the value, aborting the process if this Result holds an error.
  T ValueOrDie() && {
    status_.Abort("Result::ValueOrDie");
    return std::move(value_);
  }
  const T& ValueOrDie() const& {
    status_.Abort("Result::ValueOrDie");
    return value_;
  }

 private:
  T value_{};
  Status status_;
};

}  // namespace avm
