// Bump-pointer arena allocator.
//
// Query execution allocates many short-lived intermediates (chunk vectors,
// selection vectors, IR nodes). Arena allocation makes these allocations
// nearly free and frees them all at once.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/macros.h"

namespace avm {

class Arena {
 public:
  explicit Arena(size_t initial_block_bytes = 64 * 1024)
      : next_block_bytes_(initial_block_bytes) {}
  AVM_DISALLOW_COPY_AND_ASSIGN(Arena);

  /// Allocate `bytes` with the given alignment (power of two).
  void* Allocate(size_t bytes, size_t alignment = 16) {
    uintptr_t cur = reinterpret_cast<uintptr_t>(ptr_);
    uintptr_t aligned = (cur + alignment - 1) & ~(alignment - 1);
    size_t pad = aligned - cur;
    if (AVM_PREDICT_FALSE(pad + bytes > remaining_)) {
      NewBlock(bytes + alignment);
      return Allocate(bytes, alignment);
    }
    ptr_ = reinterpret_cast<uint8_t*>(aligned + bytes);
    remaining_ -= pad + bytes;
    total_allocated_ += bytes;
    return reinterpret_cast<void*>(aligned);
  }

  /// Construct a T inside the arena. T's destructor is NOT run.
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    void* mem = Allocate(sizeof(T), alignof(T));
    return new (mem) T(std::forward<Args>(args)...);
  }

  /// Allocate an uninitialized array of `n` T.
  template <typename T>
  T* AllocateArray(size_t n) {
    return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  /// Drop all blocks; invalidates every pointer handed out.
  void Reset() {
    blocks_.clear();
    ptr_ = nullptr;
    remaining_ = 0;
    total_allocated_ = 0;
  }

  size_t total_allocated() const { return total_allocated_; }
  size_t num_blocks() const { return blocks_.size(); }

 private:
  void NewBlock(size_t min_bytes) {
    size_t bytes = next_block_bytes_;
    while (bytes < min_bytes) bytes *= 2;
    next_block_bytes_ = bytes * 2;  // geometric growth
    blocks_.push_back(std::make_unique<uint8_t[]>(bytes));
    ptr_ = blocks_.back().get();
    remaining_ = bytes;
  }

  std::vector<std::unique_ptr<uint8_t[]>> blocks_;
  uint8_t* ptr_ = nullptr;
  size_t remaining_ = 0;
  size_t next_block_bytes_;
  size_t total_allocated_ = 0;
};

}  // namespace avm
