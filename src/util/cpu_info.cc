#include "util/cpu_info.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#if defined(__aarch64__) && defined(__linux__)
#include <sys/auxv.h>
#ifndef HWCAP_ASIMD
#define HWCAP_ASIMD (1 << 1)
#endif
#endif

namespace avm {

namespace {

size_t ReadSysfsBytes(const char* path, size_t fallback) {
  FILE* f = std::fopen(path, "r");
  if (f == nullptr) return fallback;
  char buf[64] = {0};
  size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  if (n == 0) return fallback;
  char* end = nullptr;
  unsigned long long v = std::strtoull(buf, &end, 10);
  if (end == buf || v == 0) return fallback;
  if (end != nullptr && *end == 'K') v *= 1024;
  if (end != nullptr && *end == 'M') v *= 1024 * 1024;
  return static_cast<size_t>(v);
}

CpuInfo Probe() {
  CpuInfo info;
  info.num_cores = std::thread::hardware_concurrency();
  if (info.num_cores == 0) info.num_cores = 1;
  info.l1_data_bytes = ReadSysfsBytes(
      "/sys/devices/system/cpu/cpu0/cache/index0/size", info.l1_data_bytes);
  info.l2_bytes = ReadSysfsBytes(
      "/sys/devices/system/cpu/cpu0/cache/index2/size", info.l2_bytes);
  info.l3_bytes = ReadSysfsBytes(
      "/sys/devices/system/cpu/cpu0/cache/index3/size", info.l3_bytes);
  // Runtime ISA probe — what the host executes, independent of the flags
  // this TU was compiled with. x86 __builtin_cpu_supports reads cpuid (and
  // on AVX checks OS xsave support); ARM reads the kernel's HWCAP bits.
#if defined(__x86_64__) || defined(__i386__)
  __builtin_cpu_init();
  info.has_sse2 = __builtin_cpu_supports("sse2") != 0;
  info.has_avx2 = __builtin_cpu_supports("avx2") != 0;
  info.has_avx512f = __builtin_cpu_supports("avx512f") != 0;
#elif defined(__aarch64__)
#if defined(__linux__)
  info.has_neon = (getauxval(AT_HWCAP) & HWCAP_ASIMD) != 0;
#else
  info.has_neon = true;  // AdvSIMD is architecturally mandatory on AArch64.
#endif
#endif
  if (info.has_avx512f) {
    info.simd_width_bytes = 64;
  } else if (info.has_avx2) {
    info.simd_width_bytes = 32;
  } else if (info.has_sse2 || info.has_neon) {
    info.simd_width_bytes = 16;
  } else {
    info.simd_width_bytes = 8;  // scalar-only host: word width
  }
  return info;
}

}  // namespace

const CpuInfo& CpuInfo::Host() {
  static CpuInfo info = Probe();
  return info;
}

}  // namespace avm
