#include "util/cpu_info.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

namespace avm {

namespace {

size_t ReadSysfsBytes(const char* path, size_t fallback) {
  FILE* f = std::fopen(path, "r");
  if (f == nullptr) return fallback;
  char buf[64] = {0};
  size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  if (n == 0) return fallback;
  char* end = nullptr;
  unsigned long long v = std::strtoull(buf, &end, 10);
  if (end == buf || v == 0) return fallback;
  if (end != nullptr && *end == 'K') v *= 1024;
  if (end != nullptr && *end == 'M') v *= 1024 * 1024;
  return static_cast<size_t>(v);
}

CpuInfo Probe() {
  CpuInfo info;
  info.num_cores = std::thread::hardware_concurrency();
  if (info.num_cores == 0) info.num_cores = 1;
  info.l1_data_bytes = ReadSysfsBytes(
      "/sys/devices/system/cpu/cpu0/cache/index0/size", info.l1_data_bytes);
  info.l2_bytes = ReadSysfsBytes(
      "/sys/devices/system/cpu/cpu0/cache/index2/size", info.l2_bytes);
  info.l3_bytes = ReadSysfsBytes(
      "/sys/devices/system/cpu/cpu0/cache/index3/size", info.l3_bytes);
#if defined(__AVX512F__)
  info.simd_width_bytes = 64;
#elif defined(__AVX2__)
  info.simd_width_bytes = 32;
#elif defined(__SSE2__)
  info.simd_width_bytes = 16;
#endif
  return info;
}

}  // namespace

const CpuInfo& CpuInfo::Host() {
  static CpuInfo info = Probe();
  return info;
}

}  // namespace avm
