// Portable clang thread-safety-analysis annotations.
//
// Wraps the clang `-Wthread-safety` attribute set (guarded_by, requires,
// excludes, ...) in AVM_* macros that expand to nothing on compilers
// without the attributes (gcc builds them as plain declarations). The CI
// `thread-safety` lane compiles the tree with clang and
// `-Werror=thread-safety`, turning every lock-discipline violation the
// annotations describe into a build error; see docs/VERIFIER.md for the
// annotated types and their lock invariants.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define AVM_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef AVM_THREAD_ANNOTATION
#define AVM_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Marks a type as a lockable capability (mutex wrappers).
#define AVM_CAPABILITY(x) AVM_THREAD_ANNOTATION(capability(x))

/// The member is protected by the given mutex: every read/write must hold it.
#define AVM_GUARDED_BY(x) AVM_THREAD_ANNOTATION(guarded_by(x))

/// The pointed-to data is protected by the given mutex.
#define AVM_PT_GUARDED_BY(x) AVM_THREAD_ANNOTATION(pt_guarded_by(x))

/// The function must be called with the given mutex held.
#define AVM_REQUIRES(...) \
  AVM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// The function must be called WITHOUT the given mutex held (it acquires it).
#define AVM_EXCLUDES(...) AVM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// The function acquires the given mutex and does not release it.
#define AVM_ACQUIRE(...) AVM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// The function releases the given mutex.
#define AVM_RELEASE(...) AVM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// The function's result grants access guarded by the given mutex.
#define AVM_RETURN_CAPABILITY(x) AVM_THREAD_ANNOTATION(lock_returned(x))

/// Opts a function out of the analysis (init-once or test-only paths whose
/// safety argument lives outside the lock discipline).
#define AVM_NO_THREAD_SAFETY_ANALYSIS \
  AVM_THREAD_ANNOTATION(no_thread_safety_analysis)
