// Fixed-size thread pool used by the simulated GPU backend (SM-level
// parallelism) and by morsel-style parallel scans.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "util/macros.h"
#include "util/thread_annotations.h"

namespace avm {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();
  AVM_DISALLOW_COPY_AND_ASSIGN(ThreadPool);

  /// Enqueue a task; returns a future for its completion.
  std::future<void> Submit(std::function<void()> fn);

  /// Run fn(i) for i in [0, n) across the pool and wait for completion.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  size_t num_threads() const { return threads_.size(); }

  /// Process-wide pool sized to the hardware concurrency.
  static ThreadPool& Global();

 private:
  /// Condition-variable wait loops use std::unique_lock, which the clang
  /// thread-safety analysis does not model; the loop is excluded and kept
  /// small so it stays auditable by eye.
  void WorkerLoop() AVM_NO_THREAD_SAFETY_ANALYSIS;

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::deque<std::packaged_task<void()>> queue_ AVM_GUARDED_BY(mu_);
  std::condition_variable cv_;
  bool stop_ AVM_GUARDED_BY(mu_) = false;
};

}  // namespace avm
