// Bit manipulation utilities used by compression and hashing.
#pragma once

#include <bit>
#include <cstdint>

namespace avm::bits {

/// Number of bits needed to represent `v` (0 -> 0 bits).
inline uint32_t BitWidth(uint64_t v) {
  return v == 0 ? 0u : static_cast<uint32_t>(64 - std::countl_zero(v));
}

/// Round `v` up to the next multiple of `mult` (mult must be a power of two).
inline uint64_t RoundUpPow2(uint64_t v, uint64_t mult) {
  return (v + mult - 1) & ~(mult - 1);
}

/// Round `v` up to the next multiple of `mult` (any mult > 0).
inline uint64_t RoundUp(uint64_t v, uint64_t mult) {
  return ((v + mult - 1) / mult) * mult;
}

inline bool IsPow2(uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// Next power of two >= v (v=0 -> 1).
inline uint64_t NextPow2(uint64_t v) {
  if (v <= 1) return 1;
  return uint64_t{1} << (64 - std::countl_zero(v - 1));
}

/// Set bit `i` in bitmap.
inline void SetBit(uint64_t* bitmap, uint64_t i) {
  bitmap[i >> 6] |= uint64_t{1} << (i & 63);
}

/// Clear bit `i` in bitmap.
inline void ClearBit(uint64_t* bitmap, uint64_t i) {
  bitmap[i >> 6] &= ~(uint64_t{1} << (i & 63));
}

/// Test bit `i` in bitmap.
inline bool GetBit(const uint64_t* bitmap, uint64_t i) {
  return (bitmap[i >> 6] >> (i & 63)) & 1;
}

/// Number of 64-bit words needed for an `n`-bit bitmap.
inline uint64_t BitmapWords(uint64_t n) { return (n + 63) / 64; }

/// Population count over an n-bit bitmap.
inline uint64_t CountSetBits(const uint64_t* bitmap, uint64_t n) {
  uint64_t full = n / 64, count = 0;
  for (uint64_t w = 0; w < full; ++w) count += std::popcount(bitmap[w]);
  uint64_t rem = n & 63;
  if (rem != 0) {
    count += std::popcount(bitmap[full] & ((uint64_t{1} << rem) - 1));
  }
  return count;
}

}  // namespace avm::bits
