#include "util/rng.h"

#include <cmath>

namespace avm {

ZipfGenerator::ZipfGenerator(uint64_t n, double theta, uint64_t seed)
    : rng_(seed), n_(n == 0 ? 1 : n), theta_(theta) {
  zetan_ = Zeta(n_, theta_);
  const double zeta2 = Zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
}

double ZipfGenerator::Zeta(uint64_t n, double theta) const {
  double sum = 0.0;
  // Exact for small n; sampled + extrapolated for large n to bound cost.
  if (n <= 10000) {
    for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(i, theta);
    return sum;
  }
  for (uint64_t i = 1; i <= 10000; ++i) sum += 1.0 / std::pow(i, theta);
  // Integral tail approximation.
  const double a = 1.0 - theta;
  sum += (std::pow(static_cast<double>(n), a) - std::pow(10000.0, a)) / a;
  return sum;
}

uint64_t ZipfGenerator::Next() {
  const double u = rng_.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const uint64_t v = static_cast<uint64_t>(
      static_cast<double>(n_) *
      std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return v >= n_ ? n_ - 1 : v;
}

}  // namespace avm
