// Common macros used across the AdaptiveVM code base.
#pragma once

#define AVM_DISALLOW_COPY_AND_ASSIGN(TypeName) \
  TypeName(const TypeName&) = delete;          \
  TypeName& operator=(const TypeName&) = delete

#define AVM_DISALLOW_MOVE(TypeName)   \
  TypeName(TypeName&&) = delete;      \
  TypeName& operator=(TypeName&&) = delete

#if defined(__GNUC__) || defined(__clang__)
#define AVM_PREDICT_TRUE(x) (__builtin_expect(!!(x), 1))
#define AVM_PREDICT_FALSE(x) (__builtin_expect(!!(x), 0))
#define AVM_ALWAYS_INLINE inline __attribute__((always_inline))
#define AVM_NOINLINE __attribute__((noinline))
#define AVM_RESTRICT __restrict__
#else
#define AVM_PREDICT_TRUE(x) (x)
#define AVM_PREDICT_FALSE(x) (x)
#define AVM_ALWAYS_INLINE inline
#define AVM_NOINLINE
#define AVM_RESTRICT
#endif

// Propagate a non-OK Status out of the current function.
#define AVM_RETURN_NOT_OK(expr)                 \
  do {                                          \
    ::avm::Status _st = (expr);                 \
    if (AVM_PREDICT_FALSE(!_st.ok())) return _st; \
  } while (0)

// Evaluate a Result<T> expression; on error propagate the Status, otherwise
// bind the value to `lhs`.
#define AVM_ASSIGN_OR_RETURN_IMPL(var, lhs, expr) \
  auto var = (expr);                              \
  if (AVM_PREDICT_FALSE(!var.ok())) return var.status(); \
  lhs = std::move(var).value();

#define AVM_ASSIGN_OR_RETURN_CONCAT_(x, y) x##y
#define AVM_ASSIGN_OR_RETURN_CONCAT(x, y) AVM_ASSIGN_OR_RETURN_CONCAT_(x, y)

#define AVM_ASSIGN_OR_RETURN(lhs, expr) \
  AVM_ASSIGN_OR_RETURN_IMPL(            \
      AVM_ASSIGN_OR_RETURN_CONCAT(_result_, __LINE__), lhs, expr)
