// Small string helpers (formatting, joining) used by codegen and printers.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

namespace avm {

/// printf-style formatting into a std::string.
inline std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

inline std::string StrFormat(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out(n > 0 ? static_cast<size_t>(n) : 0, '\0');
  if (n > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  va_end(ap2);
  return out;
}

/// Join `parts` with `sep`.
inline std::string StrJoin(const std::vector<std::string>& parts,
                           const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

inline bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace avm
