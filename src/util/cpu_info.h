// Host CPU parameters consulted by the partitioning heuristics and the cost
// model (cache sizes, dTLB entries, SIMD width).
#pragma once

#include <cstddef>
#include <cstdint>

namespace avm {

struct CpuInfo {
  size_t l1_data_bytes = 32 * 1024;
  size_t l2_bytes = 1024 * 1024;
  size_t l3_bytes = 32 * 1024 * 1024;
  /// L1 dTLB entries for 4K pages; the paper caps fused-function fan-in by it.
  size_t l1_dtlb_entries = 64;
  size_t cache_line_bytes = 64;
  /// Widest SIMD register the *host* executes (runtime probe, not the
  /// compile target): 64 for AVX-512, 32 for AVX2, 16 for SSE2/NEON.
  size_t simd_width_bytes = 16;
  unsigned num_cores = 1;

  /// Runtime ISA capability (cpuid-backed __builtin_cpu_supports on x86,
  /// getauxval HWCAP on ARM). Drives kernel-tier dispatch
  /// (interp/kernel_tier.h); false on other architectures.
  bool has_sse2 = false;
  bool has_avx2 = false;
  bool has_avx512f = false;
  bool has_neon = false;

  /// Probe the host (sysfs/sysconf/cpuid); falls back to the defaults above.
  static const CpuInfo& Host();

  /// Paper heuristic: maximum inputs+intermediates per fused function.
  /// Derived from the dTLB size with a safety factor so a fused function's
  /// streams cannot thrash the TLB.
  size_t MaxFusedStreams() const {
    size_t n = l1_dtlb_entries / 4;
    return n < 4 ? 4 : n;
  }
};

}  // namespace avm
