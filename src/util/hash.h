// Hashing used by hash joins, hash aggregation and trace-cache keys.
#pragma once

#include <cstdint>
#include <cstring>
#include <string_view>

namespace avm {

/// 64-bit finalizer (MurmurHash3 fmix64). Good avalanche for integer keys.
inline uint64_t HashInt64(uint64_t k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdull;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ull;
  k ^= k >> 33;
  return k;
}

/// Combine two hashes (boost-style, 64-bit).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ull + (a << 12) + (a >> 4));
}

/// FNV-1a over arbitrary bytes; used for trace-signature keys.
inline uint64_t HashBytes(const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t h = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

inline uint64_t HashString(std::string_view s) {
  return HashBytes(s.data(), s.size());
}

}  // namespace avm
