#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace avm {

namespace {
const std::string kEmptyString;
}  // namespace

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kTypeError:
      return "Type error";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kCompilationError:
      return "Compilation error";
    case StatusCode::kRuntimeError:
      return "Runtime error";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kInternal:
      return "Internal error";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string msg)
    : state_(code == StatusCode::kOk
                 ? nullptr
                 : std::make_shared<State>(State{code, std::move(msg)})) {}

const std::string& Status::message() const {
  return ok() ? kEmptyString : state_->msg;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

void Status::Abort(const char* context) const {
  if (ok()) return;
  std::fprintf(stderr, "avm fatal%s%s: %s\n", context ? " in " : "",
               context ? context : "", ToString().c_str());
  std::abort();
}

}  // namespace avm
