#include "util/thread_pool.h"

#include <atomic>

namespace avm {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  auto fut = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (n == 1) {
    fn(0);
    return;
  }
  std::atomic<size_t> next{0};
  const size_t workers = std::min(n, num_threads());
  std::vector<std::future<void>> futs;
  futs.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    futs.push_back(Submit([&next, n, &fn] {
      for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        fn(i);
      }
    }));
  }
  for (auto& f : futs) f.get();
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool(std::thread::hardware_concurrency());
  return pool;
}

}  // namespace avm
