// Minimal leveled logging. The adaptive VM logs strategy switches at kDebug
// so benchmark output stays clean by default.
#pragma once

#include <cstdio>
#include <sstream>
#include <string>

namespace avm {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global log threshold; messages below it are dropped.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line) : level_(level) {
    stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
            << "] ";
  }
  ~LogMessage() {
    if (level_ >= GetLogLevel()) {
      std::fprintf(stderr, "%s\n", stream_.str().c_str());
    }
  }
  std::ostringstream& stream() { return stream_; }

 private:
  static const char* LevelName(LogLevel l) {
    switch (l) {
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo: return "INFO";
      case LogLevel::kWarning: return "WARN";
      case LogLevel::kError: return "ERROR";
    }
    return "?";
  }
  static const char* Basename(const char* path) {
    const char* base = path;
    for (const char* p = path; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    return base;
  }
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace internal

#define AVM_LOG(level)                                                   \
  ::avm::internal::LogMessage(::avm::LogLevel::level, __FILE__, __LINE__) \
      .stream()

}  // namespace avm
