// Deterministic pseudo-random number generation (xoshiro256**).
//
// All data generators and adaptive explore/exploit policies draw from this
// RNG so runs are reproducible given a seed.
#pragma once

#include <cstdint>

namespace avm {

/// xoshiro256** by Blackman & Vigna; fast, high-quality, deterministic.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) { Seed(seed); }

  void Seed(uint64_t seed) {
    // SplitMix64 expansion of the seed into the 4-word state.
    uint64_t x = seed;
    for (auto& w : s_) {
      x += 0x9e3779b97f4a7c15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      w = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound).
  uint64_t NextBounded(uint64_t bound) {
    if (bound == 0) return 0;
    // Lemire's multiply-shift rejection-free approximation is fine here.
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  /// Uniform in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    NextBounded(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability p.
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

/// Zipf-distributed generator over [0, n) with skew `theta` in (0, 1).
/// Uses the standard Gray/Jim Gray et al. approximation.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta, uint64_t seed = 42);
  uint64_t Next();
  uint64_t n() const { return n_; }

 private:
  double Zeta(uint64_t n, double theta) const;
  Rng rng_;
  uint64_t n_;
  double theta_;
  double alpha_, zetan_, eta_;
};

}  // namespace avm
