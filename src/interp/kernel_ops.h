// Scalar operation functors shared by every kernel tier.
//
// The scalar kernel templates (kernels.cc) and the SIMD tier's scalar tail
// loops (kernels_simd.inc) must agree bit-for-bit on edge semantics —
// integer wrap-around, division by zero, INT_MIN / -1, -0.0 — so the
// definitions live here once instead of drifting apart per tier.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <type_traits>

#include "util/hash.h"

namespace avm::interp::ops {

// Integer arithmetic wraps (performed unsigned) so kernels never exhibit UB;
// integer division by zero yields 0 by convention.

template <typename T>
T WrapAdd(T a, T b) {
  if constexpr (std::is_integral_v<T>) {
    using U = std::make_unsigned_t<T>;
    return static_cast<T>(static_cast<U>(a) + static_cast<U>(b));
  } else {
    return a + b;
  }
}
template <typename T>
T WrapSub(T a, T b) {
  if constexpr (std::is_integral_v<T>) {
    using U = std::make_unsigned_t<T>;
    return static_cast<T>(static_cast<U>(a) - static_cast<U>(b));
  } else {
    return a - b;
  }
}
template <typename T>
T WrapMul(T a, T b) {
  if constexpr (std::is_integral_v<T>) {
    using U = std::make_unsigned_t<T>;
    return static_cast<T>(static_cast<U>(a) * static_cast<U>(b));
  } else {
    return a * b;
  }
}

struct OpAdd { template <typename T> static T Apply(T a, T b) { return WrapAdd(a, b); } };
struct OpSub { template <typename T> static T Apply(T a, T b) { return WrapSub(a, b); } };
struct OpMul { template <typename T> static T Apply(T a, T b) { return WrapMul(a, b); } };
struct OpDiv {
  template <typename T> static T Apply(T a, T b) {
    if constexpr (std::is_integral_v<T>) {
      if (b == 0) return 0;
      if constexpr (std::is_signed_v<T>) {
        // INT_MIN / -1 overflows; define it as INT_MIN.
        if (b == T(-1) && a == std::numeric_limits<T>::min()) return a;
      }
      return static_cast<T>(a / b);
    } else {
      return a / b;
    }
  }
};
struct OpMod {
  template <typename T> static T Apply(T a, T b) {
    if constexpr (std::is_integral_v<T>) {
      if (b == 0) return 0;
      if constexpr (std::is_signed_v<T>) {
        if (b == T(-1)) return 0;
      }
      return static_cast<T>(a % b);
    } else {
      return std::fmod(a, b);
    }
  }
};
struct OpMin { template <typename T> static T Apply(T a, T b) { return a < b ? a : b; } };
struct OpMax { template <typename T> static T Apply(T a, T b) { return a > b ? a : b; } };
struct OpAnd { template <typename T> static T Apply(T a, T b) { return a && b; } };
struct OpOr  { template <typename T> static T Apply(T a, T b) { return a || b; } };

struct CmpEq { template <typename T> static bool Apply(T a, T b) { return a == b; } };
struct CmpNe { template <typename T> static bool Apply(T a, T b) { return a != b; } };
struct CmpLt { template <typename T> static bool Apply(T a, T b) { return a < b; } };
struct CmpLe { template <typename T> static bool Apply(T a, T b) { return a <= b; } };
struct CmpGt { template <typename T> static bool Apply(T a, T b) { return a > b; } };
struct CmpGe { template <typename T> static bool Apply(T a, T b) { return a >= b; } };

struct UnNeg  { template <typename T> static T Apply(T a) {
  if constexpr (std::is_integral_v<T>) {
    using U = std::make_unsigned_t<T>;
    return static_cast<T>(U(0) - static_cast<U>(a));
  } else { return -a; }
} };
struct UnAbs  { template <typename T> static T Apply(T a) {
  if constexpr (std::is_integral_v<T>) {
    return a < 0 ? UnNeg::Apply(a) : a;
  } else { return std::abs(a); }
} };
struct UnNot  { template <typename T> static T Apply(T a) { return !a; } };
struct UnSqrt {
  template <typename T> static auto Apply(T a) {
    if constexpr (std::is_same_v<T, float>) { return std::sqrt(a); }
    else { return std::sqrt(static_cast<double>(a)); }
  }
};
struct UnHash {
  template <typename T> static int64_t Apply(T a) {
    return static_cast<int64_t>(HashInt64(static_cast<uint64_t>(
        static_cast<int64_t>(a))));
  }
};

struct CombineOverwrite {
  template <typename T> static T Apply(T /*old_v*/, T new_v) { return new_v; }
};

}  // namespace avm::interp::ops
