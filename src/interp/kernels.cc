#include "interp/kernels.h"

#include <cmath>
#include <limits>
#include <type_traits>

#include "interp/kernel_ops.h"
#include "interp/kernels_simd.h"
#include "util/hash.h"
#include "util/macros.h"

namespace avm::interp {

namespace {

using dsl::ScalarOp;

// Scalar operation functors live in kernel_ops.h, shared with the SIMD
// tiers' scalar tail loops so edge semantics can't drift apart per tier.
using namespace ops;

// ---------------------------------------------------------------------------
// Kernel templates
// ---------------------------------------------------------------------------

template <typename T, typename OUT, typename OP, OperandMode MODE, bool SEL>
void BinaryKernel(const void* a, const void* b, void* out, const sel_t* sel,
                  uint32_t n) {
  const T* AVM_RESTRICT pa = static_cast<const T*>(a);
  const T* AVM_RESTRICT pb = static_cast<const T*>(b);
  OUT* AVM_RESTRICT po = static_cast<OUT*>(out);
  auto val_a = [&](uint32_t i) {
    return MODE == OperandMode::kScalarVec ? pa[0] : pa[i];
  };
  auto val_b = [&](uint32_t i) {
    return MODE == OperandMode::kVecScalar ? pb[0] : pb[i];
  };
  if constexpr (SEL) {
    for (uint32_t j = 0; j < n; ++j) {
      const uint32_t i = sel[j];
      po[i] = static_cast<OUT>(OP::Apply(val_a(i), val_b(i)));
    }
  } else {
    for (uint32_t i = 0; i < n; ++i) {
      po[i] = static_cast<OUT>(OP::Apply(val_a(i), val_b(i)));
    }
  }
}

template <typename T, typename OUT, typename OP, bool SEL>
void UnaryKernel(const void* a, const void* /*b*/, void* out, const sel_t* sel,
                 uint32_t n) {
  const T* AVM_RESTRICT pa = static_cast<const T*>(a);
  OUT* AVM_RESTRICT po = static_cast<OUT*>(out);
  if constexpr (SEL) {
    for (uint32_t j = 0; j < n; ++j) {
      const uint32_t i = sel[j];
      po[i] = static_cast<OUT>(OP::Apply(pa[i]));
    }
  } else {
    for (uint32_t i = 0; i < n; ++i) po[i] = static_cast<OUT>(OP::Apply(pa[i]));
  }
}

template <typename FROM, typename TO, bool SEL>
void CastKernel(const void* a, const void* /*b*/, void* out, const sel_t* sel,
                uint32_t n) {
  const FROM* AVM_RESTRICT pa = static_cast<const FROM*>(a);
  TO* AVM_RESTRICT po = static_cast<TO*>(out);
  if constexpr (SEL) {
    for (uint32_t j = 0; j < n; ++j) {
      const uint32_t i = sel[j];
      po[i] = static_cast<TO>(pa[i]);
    }
  } else {
    for (uint32_t i = 0; i < n; ++i) po[i] = static_cast<TO>(pa[i]);
  }
}

template <typename T, typename CMP, bool RHS_SCALAR, bool SEL, bool BRANCH>
uint32_t FilterKernel(const void* a, const void* b, const sel_t* sel,
                      uint32_t n, sel_t* out_sel) {
  const T* AVM_RESTRICT pa = static_cast<const T*>(a);
  const T* AVM_RESTRICT pb = static_cast<const T*>(b);
  uint32_t count = 0;
  if constexpr (SEL) {
    for (uint32_t j = 0; j < n; ++j) {
      const uint32_t i = sel[j];
      if constexpr (BRANCH) {
        // Branching append: cheap when the predicate is predictable.
        if (CMP::Apply(pa[i], RHS_SCALAR ? pb[0] : pb[i])) {
          out_sel[count++] = i;
        }
      } else {
        // Branch-free append (the X100 selection-vector idiom).
        out_sel[count] = i;
        count += CMP::Apply(pa[i], RHS_SCALAR ? pb[0] : pb[i]) ? 1u : 0u;
      }
    }
  } else {
    for (uint32_t i = 0; i < n; ++i) {
      if constexpr (BRANCH) {
        if (CMP::Apply(pa[i], RHS_SCALAR ? pb[0] : pb[i])) {
          out_sel[count++] = i;
        }
      } else {
        out_sel[count] = i;
        count += CMP::Apply(pa[i], RHS_SCALAR ? pb[0] : pb[i]) ? 1u : 0u;
      }
    }
  }
  return count;
}

template <bool SEL>
uint32_t BoolToSelKernel(const void* a, const void* /*b*/, const sel_t* sel,
                         uint32_t n, sel_t* out_sel) {
  const uint8_t* AVM_RESTRICT pa = static_cast<const uint8_t*>(a);
  uint32_t count = 0;
  if constexpr (SEL) {
    for (uint32_t j = 0; j < n; ++j) {
      const uint32_t i = sel[j];
      out_sel[count] = i;
      count += pa[i] ? 1u : 0u;
    }
  } else {
    for (uint32_t i = 0; i < n; ++i) {
      out_sel[count] = i;
      count += pa[i] ? 1u : 0u;
    }
  }
  return count;
}

template <typename T, typename OP>
void FoldKernel(const void* v, const sel_t* sel, uint32_t n, void* acc) {
  const T* AVM_RESTRICT pv = static_cast<const T*>(v);
  T a = *static_cast<T*>(acc);
  if (sel != nullptr) {
    for (uint32_t j = 0; j < n; ++j) a = OP::Apply(a, pv[sel[j]]);
  } else {
    for (uint32_t i = 0; i < n; ++i) a = OP::Apply(a, pv[i]);
  }
  *static_cast<T*>(acc) = a;
}

template <typename T, bool SEL>
void GatherKernel(const void* base, const void* idx, void* out,
                  const sel_t* sel, uint32_t n) {
  const T* AVM_RESTRICT pb = static_cast<const T*>(base);
  const int64_t* AVM_RESTRICT pi = static_cast<const int64_t*>(idx);
  T* AVM_RESTRICT po = static_cast<T*>(out);
  if constexpr (SEL) {
    for (uint32_t j = 0; j < n; ++j) {
      const uint32_t i = sel[j];
      po[i] = pb[pi[i]];
    }
  } else {
    for (uint32_t i = 0; i < n; ++i) po[i] = pb[pi[i]];
  }
}

template <typename T, typename COMBINE>
void ScatterKernel(const void* idx, const void* values, void* base,
                   const sel_t* sel, uint32_t n) {
  const int64_t* AVM_RESTRICT pi = static_cast<const int64_t*>(idx);
  const T* AVM_RESTRICT pv = static_cast<const T*>(values);
  T* AVM_RESTRICT pb = static_cast<T*>(base);
  if (sel != nullptr) {
    for (uint32_t j = 0; j < n; ++j) {
      const uint32_t i = sel[j];
      pb[pi[i]] = COMBINE::Apply(pb[pi[i]], pv[i]);
    }
  } else {
    for (uint32_t i = 0; i < n; ++i) {
      pb[pi[i]] = COMBINE::Apply(pb[pi[i]], pv[i]);
    }
  }
}

template <typename T>
void CondenseKernel(const void* v, const void* /*b*/, void* out,
                    const sel_t* sel, uint32_t n) {
  const T* AVM_RESTRICT pv = static_cast<const T*>(v);
  T* AVM_RESTRICT po = static_cast<T*>(out);
  for (uint32_t j = 0; j < n; ++j) po[j] = pv[sel[j]];
}

}  // namespace

// ---------------------------------------------------------------------------
// Registry construction
// ---------------------------------------------------------------------------

const KernelRegistry& KernelRegistry::Get() {
  return ForTier(KernelTier::kAuto);
}

const KernelRegistry& KernelRegistry::ForTier(KernelTier tier) {
  // One lazily-built registry per tier (Meyers statics) so parity tests and
  // per-query tier forcing can hold several tiers in one process.
  switch (ResolveKernelTier(tier)) {
    case KernelTier::kAvx2: {
      static const KernelRegistry registry(KernelTier::kAvx2);
      return registry;
    }
    case KernelTier::kSse2: {
      static const KernelRegistry registry(KernelTier::kSse2);
      return registry;
    }
    default: {
      static const KernelRegistry registry(KernelTier::kScalar);
      return registry;
    }
  }
}

namespace {
template <typename T>
constexpr bool kIsBool = std::is_same_v<T, bool>;
// We store bools as uint8_t buffers; kernels use uint8_t for kBool.
template <typename T>
using Stored = std::conditional_t<kIsBool<T>, uint8_t, T>;
}  // namespace

KernelRegistry::KernelRegistry(KernelTier tier) : tier_(tier) {
  auto op_i = [](ScalarOp op) { return static_cast<size_t>(op); };
  auto ty_i = [](TypeId t) { return static_cast<size_t>(t); };

  auto for_each_type = [&](auto&& fn) {
    fn.template operator()<bool>(TypeId::kBool);
    fn.template operator()<int8_t>(TypeId::kI8);
    fn.template operator()<int16_t>(TypeId::kI16);
    fn.template operator()<int32_t>(TypeId::kI32);
    fn.template operator()<int64_t>(TypeId::kI64);
    fn.template operator()<float>(TypeId::kF32);
    fn.template operator()<double>(TypeId::kF64);
  };

  // --- binary arithmetic / comparison / logic -----------------------------
  for_each_type([&]<typename Raw>(TypeId t) {
    using T = Stored<Raw>;
    auto reg_bin = [&]<typename OP, typename OUT>(ScalarOp op) {
      binary_[op_i(op)][ty_i(t)][0][0] =
          &BinaryKernel<T, OUT, OP, OperandMode::kVecVec, false>;
      binary_[op_i(op)][ty_i(t)][0][1] =
          &BinaryKernel<T, OUT, OP, OperandMode::kVecVec, true>;
      binary_[op_i(op)][ty_i(t)][1][0] =
          &BinaryKernel<T, OUT, OP, OperandMode::kVecScalar, false>;
      binary_[op_i(op)][ty_i(t)][1][1] =
          &BinaryKernel<T, OUT, OP, OperandMode::kVecScalar, true>;
      binary_[op_i(op)][ty_i(t)][2][0] =
          &BinaryKernel<T, OUT, OP, OperandMode::kScalarVec, false>;
      binary_[op_i(op)][ty_i(t)][2][1] =
          &BinaryKernel<T, OUT, OP, OperandMode::kScalarVec, true>;
      num_registered_ += 6;
    };
    if constexpr (!kIsBool<Raw>) {
      reg_bin.template operator()<OpAdd, T>(ScalarOp::kAdd);
      reg_bin.template operator()<OpSub, T>(ScalarOp::kSub);
      reg_bin.template operator()<OpMul, T>(ScalarOp::kMul);
      reg_bin.template operator()<OpDiv, T>(ScalarOp::kDiv);
      reg_bin.template operator()<OpMin, T>(ScalarOp::kMin);
      reg_bin.template operator()<OpMax, T>(ScalarOp::kMax);
      if constexpr (std::is_integral_v<T>) {
        reg_bin.template operator()<OpMod, T>(ScalarOp::kMod);
      }
    } else {
      reg_bin.template operator()<OpAnd, uint8_t>(ScalarOp::kAnd);
      reg_bin.template operator()<OpOr, uint8_t>(ScalarOp::kOr);
    }
    // Comparisons produce uint8 bools, for any input type.
    reg_bin.template operator()<CmpEq, uint8_t>(ScalarOp::kEq);
    reg_bin.template operator()<CmpNe, uint8_t>(ScalarOp::kNe);
    reg_bin.template operator()<CmpLt, uint8_t>(ScalarOp::kLt);
    reg_bin.template operator()<CmpLe, uint8_t>(ScalarOp::kLe);
    reg_bin.template operator()<CmpGt, uint8_t>(ScalarOp::kGt);
    reg_bin.template operator()<CmpGe, uint8_t>(ScalarOp::kGe);
  });

  // --- unary ---------------------------------------------------------------
  for_each_type([&]<typename Raw>(TypeId t) {
    using T = Stored<Raw>;
    auto reg_un = [&]<typename OP, typename OUT>(ScalarOp op) {
      unary_[op_i(op)][ty_i(t)][0] = &UnaryKernel<T, OUT, OP, false>;
      unary_[op_i(op)][ty_i(t)][1] = &UnaryKernel<T, OUT, OP, true>;
      num_registered_ += 2;
    };
    if constexpr (kIsBool<Raw>) {
      reg_un.template operator()<UnNot, uint8_t>(ScalarOp::kNot);
    } else {
      if constexpr (std::is_signed_v<T> || std::is_floating_point_v<T>) {
        reg_un.template operator()<UnNeg, T>(ScalarOp::kNeg);
        reg_un.template operator()<UnAbs, T>(ScalarOp::kAbs);
      }
      if constexpr (std::is_same_v<T, float>) {
        reg_un.template operator()<UnSqrt, float>(ScalarOp::kSqrt);
      } else {
        reg_un.template operator()<UnSqrt, double>(ScalarOp::kSqrt);
      }
      if constexpr (std::is_integral_v<T>) {
        reg_un.template operator()<UnHash, int64_t>(ScalarOp::kHash);
      }
    }
  });

  // --- casts ---------------------------------------------------------------
  for_each_type([&]<typename RawFrom>(TypeId from) {
    using F = Stored<RawFrom>;
    for_each_type([&]<typename RawTo>(TypeId to) {
      using TO = Stored<RawTo>;
      cast_[ty_i(from)][ty_i(to)][0] = &CastKernel<F, TO, false>;
      cast_[ty_i(from)][ty_i(to)][1] = &CastKernel<F, TO, true>;
      num_registered_ += 2;
    });
  });

  // --- filters -------------------------------------------------------------
  for_each_type([&]<typename Raw>(TypeId t) {
    using T = Stored<Raw>;
    auto reg_f = [&]<typename CMP>(ScalarOp op) {
      filter_[op_i(op)][ty_i(t)][0][0][0] =
          &FilterKernel<T, CMP, false, false, false>;
      filter_[op_i(op)][ty_i(t)][0][1][0] =
          &FilterKernel<T, CMP, false, true, false>;
      filter_[op_i(op)][ty_i(t)][1][0][0] =
          &FilterKernel<T, CMP, true, false, false>;
      filter_[op_i(op)][ty_i(t)][1][1][0] =
          &FilterKernel<T, CMP, true, true, false>;
      filter_[op_i(op)][ty_i(t)][0][0][1] =
          &FilterKernel<T, CMP, false, false, true>;
      filter_[op_i(op)][ty_i(t)][0][1][1] =
          &FilterKernel<T, CMP, false, true, true>;
      filter_[op_i(op)][ty_i(t)][1][0][1] =
          &FilterKernel<T, CMP, true, false, true>;
      filter_[op_i(op)][ty_i(t)][1][1][1] =
          &FilterKernel<T, CMP, true, true, true>;
      num_registered_ += 8;
    };
    reg_f.template operator()<CmpEq>(ScalarOp::kEq);
    reg_f.template operator()<CmpNe>(ScalarOp::kNe);
    reg_f.template operator()<CmpLt>(ScalarOp::kLt);
    reg_f.template operator()<CmpLe>(ScalarOp::kLe);
    reg_f.template operator()<CmpGt>(ScalarOp::kGt);
    reg_f.template operator()<CmpGe>(ScalarOp::kGe);
  });
  bool_to_sel_[0] = &BoolToSelKernel<false>;
  bool_to_sel_[1] = &BoolToSelKernel<true>;
  num_registered_ += 2;

  // --- folds ---------------------------------------------------------------
  for_each_type([&]<typename Raw>(TypeId t) {
    using T = Stored<Raw>;
    if constexpr (kIsBool<Raw>) {
      fold_[op_i(ScalarOp::kAnd)][ty_i(t)] = &FoldKernel<uint8_t, OpAnd>;
      fold_[op_i(ScalarOp::kOr)][ty_i(t)] = &FoldKernel<uint8_t, OpOr>;
      num_registered_ += 2;
    } else {
      fold_[op_i(ScalarOp::kAdd)][ty_i(t)] = &FoldKernel<T, OpAdd>;
      fold_[op_i(ScalarOp::kMul)][ty_i(t)] = &FoldKernel<T, OpMul>;
      fold_[op_i(ScalarOp::kMin)][ty_i(t)] = &FoldKernel<T, OpMin>;
      fold_[op_i(ScalarOp::kMax)][ty_i(t)] = &FoldKernel<T, OpMax>;
      num_registered_ += 4;
    }
  });

  // --- data movement ---------------------------------------------------------
  for_each_type([&]<typename Raw>(TypeId t) {
    using T = Stored<Raw>;
    gather_[ty_i(t)][0] = &GatherKernel<T, false>;
    gather_[ty_i(t)][1] = &GatherKernel<T, true>;
    condense_[ty_i(t)] = &CondenseKernel<T>;
    num_registered_ += 3;
    if constexpr (!kIsBool<Raw>) {
      scatter_[op_i(ScalarOp::kAdd)][ty_i(t)] = &ScatterKernel<T, OpAdd>;
      scatter_[op_i(ScalarOp::kMin)][ty_i(t)] = &ScatterKernel<T, OpMin>;
      scatter_[op_i(ScalarOp::kMax)][ty_i(t)] = &ScatterKernel<T, OpMax>;
      num_registered_ += 3;
    }
    scatter_[op_i(ScalarOp::kCast)][ty_i(t)] =
        &ScatterKernel<T, CombineOverwrite>;
    num_registered_ += 1;
  });

  // --- SIMD tier overlay -----------------------------------------------------
  // Tiers are cumulative: the AVX2 registry first takes the 128-bit tier's
  // kernels, then the AVX2 set replaces the slots it covers, so any slot the
  // top tier doesn't provide falls back to the next tier down.
  if (tier_ >= KernelTier::kSse2) Overlay(Sse2Kernels());
  if (tier_ >= KernelTier::kAvx2) Overlay(Avx2Kernels());
}

void KernelRegistry::Overlay(const SimdKernelSet& simd) {
  if (!simd.available) return;
  for (size_t op = 0; op < kOps; ++op) {
    for (size_t t = 0; t < kTypes; ++t) {
      for (size_t m = 0; m < 3; ++m) {
        if (simd.binary[op][t][m] != nullptr) {
          binary_[op][t][m][0] = simd.binary[op][t][m];
        }
      }
      if (simd.unary[op][t] != nullptr) unary_[op][t][0] = simd.unary[op][t];
      for (size_t rs = 0; rs < 2; ++rs) {
        for (size_t v = 0; v < 2; ++v) {
          if (simd.filter[op][t][rs][v] != nullptr) {
            filter_[op][t][rs][0][v] = simd.filter[op][t][rs][v];
          }
        }
      }
      if (simd.fold[op][t] != nullptr) fold_[op][t] = simd.fold[op][t];
    }
  }
  for (size_t t = 0; t < kTypes; ++t) {
    if (simd.gather[t] != nullptr) gather_[t][0] = simd.gather[t];
    if (simd.condense[t] != nullptr) condense_[t] = simd.condense[t];
  }
  if (simd.bool_to_sel != nullptr) bool_to_sel_[0] = simd.bool_to_sel;
}

PrimKernelFn KernelRegistry::Binary(dsl::ScalarOp op, TypeId in_type,
                                    OperandMode mode, bool selective) const {
  return binary_[static_cast<size_t>(op)][static_cast<size_t>(in_type)]
                [static_cast<size_t>(mode)][selective ? 1 : 0];
}

PrimKernelFn KernelRegistry::Unary(dsl::ScalarOp op, TypeId in_type,
                                   bool selective) const {
  return unary_[static_cast<size_t>(op)][static_cast<size_t>(in_type)]
               [selective ? 1 : 0];
}

PrimKernelFn KernelRegistry::Cast(TypeId from, TypeId to,
                                  bool selective) const {
  return cast_[static_cast<size_t>(from)][static_cast<size_t>(to)]
              [selective ? 1 : 0];
}

FilterKernelFn KernelRegistry::Filter(dsl::ScalarOp cmp, TypeId in_type,
                                      bool rhs_scalar, bool selective,
                                      FilterVariant variant) const {
  return filter_[static_cast<size_t>(cmp)][static_cast<size_t>(in_type)]
                [rhs_scalar ? 1 : 0][selective ? 1 : 0]
                [static_cast<size_t>(variant)];
}

FilterKernelFn KernelRegistry::BoolToSel(bool selective) const {
  return bool_to_sel_[selective ? 1 : 0];
}

FoldKernelFn KernelRegistry::Fold(dsl::ScalarOp op, TypeId in_type) const {
  return fold_[static_cast<size_t>(op)][static_cast<size_t>(in_type)];
}

PrimKernelFn KernelRegistry::GatherI64Idx(TypeId value_type,
                                          bool selective) const {
  return gather_[static_cast<size_t>(value_type)][selective ? 1 : 0];
}

PrimKernelFn KernelRegistry::Scatter(dsl::ScalarOp combine,
                                     TypeId value_type) const {
  return scatter_[static_cast<size_t>(combine)]
                 [static_cast<size_t>(value_type)];
}

PrimKernelFn KernelRegistry::Condense(TypeId value_type) const {
  return condense_[static_cast<size_t>(value_type)];
}

}  // namespace avm::interp
