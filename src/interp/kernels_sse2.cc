// 128-bit SIMD kernel tier ("sse2"). Built from GNU vector extensions so the
// same expansion serves SSE2-class x86 and NEON-class ARM hosts; compiled
// without extra ISA flags (128-bit vectors are baseline on both).
#include "interp/kernels_simd.h"

#include <cstdint>
#include <cstring>
#include <type_traits>
#include <utility>

#include "interp/kernel_ops.h"

#if defined(__SSE2__)
#include <emmintrin.h>
#define AVM_SIMD_X86 1
#else
#define AVM_SIMD_X86 0
#endif

#define AVM_SIMD_BYTES 16
#define AVM_SIMD_IS_AVX2 0

namespace avm::interp {

namespace simd_sse2 {
#include "interp/kernels_simd.inc"
}  // namespace simd_sse2

const SimdKernelSet& Sse2Kernels() {
  static const SimdKernelSet set = [] {
    SimdKernelSet s;
    simd_sse2::Fill(&s);
    s.available = true;
    return s;
  }();
  return set;
}

}  // namespace avm::interp
