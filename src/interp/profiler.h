// Runtime profiling: the VM's eyes.
//
// Section III: "the VM collects profiling information (time spent in each
// operation, number of calls) to identify hot paths and potential targets
// for further optimization". We additionally track tuple counts and observed
// filter selectivities (Section III-C adaptations key off them).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace avm::interp {

struct OpStats {
  uint64_t calls = 0;
  uint64_t cycles = 0;
  uint64_t tuples = 0;
  uint64_t tuples_out = 0;  ///< after filtering (selectivity signal)
  std::string label;

  double CyclesPerTuple() const {
    return tuples == 0 ? 0.0 : static_cast<double>(cycles) /
                                   static_cast<double>(tuples);
  }
  /// Fraction of tuples surviving (1.0 for non-selective ops).
  double Selectivity() const {
    return tuples == 0 ? 1.0 : static_cast<double>(tuples_out) /
                                   static_cast<double>(tuples);
  }
};

class Profiler {
 public:
  void Record(uint32_t node_id, const std::string& label, uint64_t cycles,
              uint64_t tuples_in, uint64_t tuples_out) {
    OpStats& s = stats_[node_id];
    if (s.label.empty()) s.label = label;
    ++s.calls;
    s.cycles += cycles;
    s.tuples += tuples_in;
    s.tuples_out += tuples_out;
  }

  const OpStats* Find(uint32_t node_id) const {
    auto it = stats_.find(node_id);
    return it == stats_.end() ? nullptr : &it->second;
  }

  const std::unordered_map<uint32_t, OpStats>& stats() const { return stats_; }

  void Reset() { stats_.clear(); }

  /// Node ids ordered by total cycles, hottest first.
  std::vector<uint32_t> HotNodes() const;

  /// Human-readable profile dump.
  std::string ToString() const;

  uint64_t TotalCycles() const;

 private:
  std::unordered_map<uint32_t, OpStats> stats_;
};

}  // namespace avm::interp
