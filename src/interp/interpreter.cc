#include "interp/interpreter.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "dsl/typecheck.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace avm::interp {

namespace {
using dsl::Expr;
using dsl::ExprKind;
using dsl::ScalarOp;
using dsl::SkeletonKind;
using dsl::Stmt;
using dsl::StmtKind;
}  // namespace

Interpreter::Interpreter(const dsl::Program* program,
                         InterpreterOptions options)
    : program_(program),
      options_(options),
      kernels_(&KernelRegistry::ForTier(options.kernel_tier)) {
  prim_exec_.set_registry(kernels_);
}

Status Interpreter::BindData(const std::string& name, DataBinding binding) {
  const dsl::DataDecl* decl = program_->FindData(name);
  if (decl == nullptr) {
    return Status::NotFound("program declares no data array " + name);
  }
  if (decl->type != binding.type) {
    return Status::TypeError(StrFormat(
        "binding for %s has type %s, program declares %s", name.c_str(),
        TypeName(binding.type), TypeName(decl->type)));
  }
  if (decl->writable && !binding.writable) {
    return Status::InvalidArgument("program writes " + name +
                                   " but binding is read-only");
  }
  bindings_[name] = binding;
  // A rebind may point at different storage; drop any stale scan cursor.
  column_cursors_.erase(name);
  return Status::OK();
}

Status Interpreter::Run() {
  for (const auto& d : program_->data) {
    if (!bindings_.contains(d.name)) {
      return Status::InvalidArgument("unbound data array " + d.name);
    }
  }
  Control ctl = Control::kNext;
  return ExecBlock(program_->stmts, &ctl);
}

Result<Value> Interpreter::GetVar(const std::string& name) const {
  auto it = env_.find(name);
  if (it == env_.end()) {
    return Status::NotFound("undefined variable " + name);
  }
  return it->second;
}

void Interpreter::SetVar(const std::string& name, Value v) {
  env_[name] = std::move(v);
}

Result<ScalarValue> Interpreter::GetScalar(const std::string& name) const {
  AVM_ASSIGN_OR_RETURN(Value v, GetVar(name));
  if (!v.is_scalar()) {
    return Status::TypeError(name + " is not a scalar");
  }
  return v.scalar;
}

DataBinding* Interpreter::FindBinding(const std::string& name) {
  auto it = bindings_.find(name);
  return it == bindings_.end() ? nullptr : &it->second;
}

const DataBinding* Interpreter::FindBinding(const std::string& name) const {
  auto it = bindings_.find(name);
  return it == bindings_.end() ? nullptr : &it->second;
}

uint64_t Interpreter::chunks_streamed() const {
  uint64_t n = 0;
  for (const auto& [name, cursor] : column_cursors_) {
    n += cursor.blocks_decoded();
  }
  return n;
}

ArrayPtr Interpreter::NewArray(TypeId type, uint32_t capacity) {
  auto a = std::make_shared<ArrayValue>();
  a->vec.Reset(type, capacity == 0 ? options_.chunk_size : capacity);
  a->len = 0;
  return a;
}

Scheme Interpreter::LastSchemeOf(const std::string& name) const {
  auto it = last_scheme_.find(name);
  return it == last_scheme_.end() ? Scheme::kPlain : it->second;
}

void Interpreter::AddInjection(InjectedTrace trace) {
  injections_.push_back(std::move(trace));
}

void Interpreter::ClearInjections() { injections_.clear(); }

Result<const ir::PrimProgram*> Interpreter::PreparedLambda(
    const Expr& lambda, const std::vector<TypeId>& input_types) {
  auto it = lambda_cache_.find(lambda.id);
  if (it != lambda_cache_.end()) return &it->second;
  AVM_ASSIGN_OR_RETURN(ir::PrimProgram prog,
                       ir::Normalize(lambda, input_types));
  auto [ins, _] = lambda_cache_.emplace(lambda.id, std::move(prog));
  return &ins->second;
}

CaptureResolver Interpreter::MakeCaptureResolver() {
  return [this](const std::string& name) { return GetScalar(name); };
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

Status Interpreter::ExecBlock(const std::vector<dsl::StmtPtr>& stmts,
                              Control* ctl) {
  std::unordered_set<uint32_t> skip;
  for (const auto& s : stmts) {
    if (skip.contains(s->id)) continue;
    // Injection check: a compiled trace may replace this statement (and the
    // others it covers) for this iteration.
    bool injected = false;
    for (auto& tr : injections_) {
      if (tr.anchor_stmt_id != s->id) continue;
      if (tr.applicable && !tr.applicable(*this)) {
        ++tr.fallbacks;
        continue;
      }
      uint64_t t0 = ReadCycleCounter();
      Status st = tr.run(*this);
      if (st.IsUnavailable()) {
        // The trace discovered (side-effect-free) that its preconditions
        // do not hold for this iteration — e.g. a selection reaching past
        // the clamped chunk window. Fall back to interpretation, exactly
        // like a failed `applicable` check.
        ++tr.fallbacks;
        continue;
      }
      AVM_RETURN_NOT_OK(st);
      tr.cycles += ReadCycleCounter() - t0;
      ++tr.invocations;
      for (uint32_t id : tr.covered_stmt_ids) skip.insert(id);
      injected = true;
      break;
    }
    if (injected) continue;
    AVM_RETURN_NOT_OK(ExecStmt(*s, ctl));
    if (*ctl == Control::kBreak) return Status::OK();
  }
  return Status::OK();
}

Status Interpreter::ExecStmt(const Stmt& s, Control* ctl) {
  switch (s.kind) {
    case StmtKind::kMutDef:
      env_[s.var] = Value::S(ScalarValue::I(0));
      return Status::OK();
    case StmtKind::kAssign: {
      AVM_ASSIGN_OR_RETURN(ScalarValue v, EvalScalarExpr(*s.expr));
      env_[s.var] = Value::S(v);
      return Status::OK();
    }
    case StmtKind::kLet: {
      AVM_ASSIGN_OR_RETURN(Value v, EvalExpr(*s.expr));
      env_[s.var] = std::move(v);
      return Status::OK();
    }
    case StmtKind::kLoop: {
      for (uint64_t iter = 0; iter < options_.max_loop_iterations; ++iter) {
        Control inner = Control::kNext;
        AVM_RETURN_NOT_OK(ExecBlock(s.body, &inner));
        ++loop_iterations_;
        if (iteration_hook) {
          AVM_RETURN_NOT_OK(iteration_hook(*this, loop_iterations_));
        }
        if (inner == Control::kBreak) return Status::OK();
      }
      return Status::RuntimeError("loop exceeded max iterations");
    }
    case StmtKind::kBreak:
      *ctl = Control::kBreak;
      return Status::OK();
    case StmtKind::kIf: {
      AVM_ASSIGN_OR_RETURN(ScalarValue c, EvalScalarExpr(*s.expr));
      AVM_RETURN_NOT_OK(ExecBlock(c.AsBool() ? s.body : s.else_body, ctl));
      return Status::OK();
    }
    case StmtKind::kExpr:
      return EvalExpr(*s.expr).status();
  }
  return Status::Internal("unhandled statement kind");
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

Result<Value> Interpreter::EvalExpr(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kConst:
      return Value::S(e.const_is_float
                          ? ScalarValue::F(e.const_f)
                          : ScalarValue::I(e.const_i));
    case ExprKind::kVarRef:
      return GetVar(e.var);
    case ExprKind::kScalarCall: {
      AVM_ASSIGN_OR_RETURN(ScalarValue v, EvalScalarExpr(e));
      return Value::S(v);
    }
    case ExprKind::kSkeleton: {
      if (!options_.enable_profiling) return EvalSkeleton(e);
      uint64_t t0 = ReadCycleCounter();
      Result<Value> r = EvalSkeleton(e);
      uint64_t dt = ReadCycleCounter() - t0;
      if (r.ok()) {
        uint64_t in_tuples = 0, out_tuples = 0;
        const Value& v = r.value();
        if (v.is_array()) {
          in_tuples = v.array->len;
          out_tuples = v.array->active_count();
        } else if (e.skeleton == SkeletonKind::kWrite ||
                   e.skeleton == SkeletonKind::kScatter) {
          in_tuples = out_tuples =
              static_cast<uint64_t>(std::max<int64_t>(0, v.scalar.AsI64()));
        }
        profiler_.Record(e.id, dsl::SkeletonName(e.skeleton), dt, in_tuples,
                         out_tuples);
      }
      return r;
    }
    case ExprKind::kLambda:
      return Status::TypeError("lambda cannot be evaluated as a value");
  }
  return Status::Internal("unhandled expression kind");
}

Result<ScalarValue> Interpreter::EvalScalarExpr(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kConst:
      return e.const_is_float ? ScalarValue::F(e.const_f)
                              : ScalarValue::I(e.const_i);
    case ExprKind::kVarRef:
      return GetScalar(e.var);
    case ExprKind::kSkeleton: {
      AVM_ASSIGN_OR_RETURN(Value v, EvalExpr(e));
      if (!v.is_scalar()) {
        return Status::TypeError("expected scalar result");
      }
      return v.scalar;
    }
    case ExprKind::kScalarCall: {
      // Reuse the normalized-primitive scalar evaluator via a fake
      // single-instruction program would be overkill; evaluate recursively.
      std::vector<ScalarValue> args;
      args.reserve(e.args.size());
      for (const auto& a : e.args) {
        AVM_ASSIGN_OR_RETURN(ScalarValue v, EvalScalarExpr(*a));
        args.push_back(v);
      }
      ir::PrimInstr instr;
      instr.op = e.op;
      instr.num_args = static_cast<int>(e.args.size());
      instr.in_type = e.args[0]->type;
      if (instr.num_args == 2) {
        instr.in_type = dsl::PromoteTypes(e.args[0]->type, e.args[1]->type);
      }
      instr.out_type = e.op == ScalarOp::kCast ? e.cast_to : e.type;
      // Delegate to the PrimExecutor's scalar applier through RunScalar on a
      // one-instruction program.
      ir::PrimProgram prog;
      prog.input_types.clear();
      for (size_t i = 0; i < args.size(); ++i) {
        prog.input_types.push_back(args[i].type);
        instr.args[i] = ir::PrimArg::Input(static_cast<int>(i), args[i].type);
      }
      instr.out_reg = 0;
      prog.num_regs = 1;
      prog.result_reg = 0;
      prog.result_type = instr.out_type;
      prog.instrs.push_back(instr);
      return prim_exec_.RunScalar(prog, args, MakeCaptureResolver());
    }
    case ExprKind::kLambda:
      return Status::TypeError("lambda in scalar context");
  }
  return Status::Internal("unhandled scalar expression");
}

Result<Value> Interpreter::EvalSkeleton(const Expr& e) {
  switch (e.skeleton) {
    case SkeletonKind::kRead: return EvalRead(e);
    case SkeletonKind::kWrite: return EvalWrite(e);
    case SkeletonKind::kMap: return EvalMap(e);
    case SkeletonKind::kFilter: return EvalFilter(e);
    case SkeletonKind::kFold: return EvalFold(e);
    case SkeletonKind::kCondense: return EvalCondense(e);
    case SkeletonKind::kGather: return EvalGather(e);
    case SkeletonKind::kScatter: return EvalScatter(e);
    case SkeletonKind::kGen: return EvalGen(e);
    case SkeletonKind::kExpand: return EvalExpand(e);
    case SkeletonKind::kMerge: return EvalMerge(e);
    case SkeletonKind::kLen: {
      AVM_ASSIGN_OR_RETURN(Value v, EvalExpr(*e.args[0]));
      if (!v.is_array()) return Status::TypeError("len of non-array");
      return Value::S(ScalarValue::I(v.array->active_count()));
    }
  }
  return Status::Internal("unhandled skeleton");
}

Result<Value> Interpreter::EvalRead(const Expr& e) {
  AVM_ASSIGN_OR_RETURN(ScalarValue pos_v, EvalScalarExpr(*e.args[0]));
  const std::string& name = e.args[1]->var;
  DataBinding* b = FindBinding(name);
  if (b == nullptr) return Status::NotFound("unbound data array " + name);
  const uint64_t pos = static_cast<uint64_t>(std::max<int64_t>(0, pos_v.AsI64()));
  ArrayPtr out = NewArray(b->type);
  if (pos >= b->len) {
    out->len = 0;
    return Value::A(out);
  }
  const uint32_t take = static_cast<uint32_t>(
      std::min<uint64_t>(options_.chunk_size, b->len - pos));
  if (b->column != nullptr) {
    // Stream through the per-binding cursor: one compressed block decoded
    // at a time, cached across the sequential chunk reads of a scan.
    ColumnChunkCursor& cursor = column_cursors_[name];
    if (cursor.column() != b->column) cursor = ColumnChunkCursor(b->column);
    Scheme s = Scheme::kPlain;
    AVM_RETURN_NOT_OK(
        cursor.ReadAt(b->col_offset + pos, take, out->vec.RawData(), &s));
    last_scheme_[name] = s;
  } else {
    const size_t w = TypeWidth(b->type);
    std::memcpy(out->vec.RawData(),
                static_cast<const uint8_t*>(b->raw) + pos * w,
                static_cast<size_t>(take) * w);
    last_scheme_[name] = Scheme::kPlain;
  }
  out->len = take;
  return Value::A(out);
}

Result<Value> Interpreter::EvalWrite(const Expr& e) {
  const std::string& name = e.args[0]->var;
  DataBinding* b = FindBinding(name);
  if (b == nullptr) return Status::NotFound("unbound data array " + name);
  if (!b->writable || b->raw == nullptr) {
    return Status::InvalidArgument("write to non-writable array " + name);
  }
  AVM_ASSIGN_OR_RETURN(ScalarValue pos_v, EvalScalarExpr(*e.args[1]));
  AVM_ASSIGN_OR_RETURN(Value vv, EvalExpr(*e.args[2]));
  if (!vv.is_array()) return Status::TypeError("write of non-array");
  const ArrayValue& a = *vv.array;
  const uint64_t pos = static_cast<uint64_t>(std::max<int64_t>(0, pos_v.AsI64()));
  const uint32_t count = a.active_count();
  if (pos + count > b->len) {
    return Status::OutOfRange(StrFormat(
        "write [%llu, %llu) past end of %s (%llu)", (unsigned long long)pos,
        (unsigned long long)(pos + count), name.c_str(),
        (unsigned long long)b->len));
  }
  const size_t w = TypeWidth(b->type);
  uint8_t* dst = static_cast<uint8_t*>(b->raw) + pos * w;
  if (a.has_sel()) {
    // Condense on the fly into the destination.
    kernels_->Condense(a.type())(a.vec.RawData(), nullptr, dst, a.sel.Data(),
                                 a.sel.count());
  } else {
    std::memcpy(dst, a.vec.RawData(), static_cast<size_t>(count) * w);
  }
  return Value::S(ScalarValue::I(count));
}

namespace {

// Shared selection context of a set of input arrays: arrays produced within
// one chunk iteration either carry no selection or the same selection.
struct SelContext {
  const sel_t* sel = nullptr;
  uint32_t sel_n = 0;
  uint32_t n = 0;
  const SelectionVector* sv = nullptr;
};

Result<SelContext> CommonSelection(const std::vector<Value>& args) {
  SelContext ctx;
  bool have_array = false;
  for (const auto& v : args) {
    if (!v.is_array()) continue;
    const ArrayValue& a = *v.array;
    if (!have_array) {
      have_array = true;
      ctx.n = a.len;
    } else if (a.len != ctx.n) {
      return Status::InvalidArgument(
          StrFormat("length mismatch between chunk arrays (%u vs %u)", ctx.n,
                    a.len));
    }
    if (a.has_sel()) {
      if (ctx.sel != nullptr && ctx.sel != a.sel.Data()) {
        // Distinct selections: require identical contents.
        if (ctx.sel_n != a.sel.count() ||
            std::memcmp(ctx.sel, a.sel.Data(),
                        sizeof(sel_t) * ctx.sel_n) != 0) {
          return Status::InvalidArgument(
              "arrays with different selections cannot be combined");
        }
        continue;
      }
      ctx.sel = a.sel.Data();
      ctx.sel_n = a.sel.count();
      ctx.sv = &a.sel;
    }
  }
  return ctx;
}

void CopySelection(const SelContext& ctx, ArrayValue* out) {
  if (ctx.sel == nullptr) return;
  out->sel.Reset(std::max(out->vec.capacity(), ctx.sel_n));
  std::memcpy(out->sel.Data(), ctx.sel, sizeof(sel_t) * ctx.sel_n);
  out->sel.set_count(ctx.sel_n);
  out->sel.set_enabled(true);
}

}  // namespace

Result<Value> Interpreter::EvalMap(const Expr& e) {
  std::vector<Value> inputs;
  std::vector<TypeId> input_types;
  inputs.reserve(e.args.size() - 1);
  for (size_t i = 1; i < e.args.size(); ++i) {
    AVM_ASSIGN_OR_RETURN(Value v, EvalExpr(*e.args[i]));
    input_types.push_back(e.args[i]->type);
    inputs.push_back(std::move(v));
  }
  AVM_ASSIGN_OR_RETURN(const ir::PrimProgram* prog,
                       PreparedLambda(*e.args[0], input_types));
  AVM_ASSIGN_OR_RETURN(SelContext ctx, CommonSelection(inputs));
  if (ctx.n == 0 && !inputs.empty() && inputs[0].is_scalar()) {
    ctx.n = 1;  // all-scalar map yields a length-1 array
  }
  ArrayPtr out = NewArray(prog->result_type,
                          std::max(ctx.n, options_.chunk_size));
  AVM_RETURN_NOT_OK(prim_exec_.Run(*prog, inputs, ctx.sel, ctx.sel_n, ctx.n,
                                   &out->vec, MakeCaptureResolver()));
  out->len = ctx.n;
  CopySelection(ctx, out.get());
  return Value::A(out);
}

namespace {

// Adaptive-filter arm layout. Arms 0..2 mirror FilterFlavor on the
// interpreter's own tier; on a SIMD tier two extra arms run the scalar
// tier's filter kernels, letting the chooser discover call sites where
// scalar beats SIMD (e.g. branching scalar at near-zero selectivity).
constexpr size_t kArmFullCompute = 2;
constexpr size_t kFirstScalarArm = 3;
constexpr size_t kNumBaseArms = 3;
constexpr size_t kNumTieredArms = 5;

FilterFlavor ArmFlavor(size_t arm) {
  return arm < kFirstScalarArm
             ? static_cast<FilterFlavor>(arm)
             : static_cast<FilterFlavor>(arm - kFirstScalarArm);
}

}  // namespace

FilterFlavor Interpreter::PreferredFilterFlavor(uint32_t filter_expr_id) const {
  auto it = filter_choosers_.find(filter_expr_id);
  if (it == filter_choosers_.end()) return options_.filter_flavor;
  return ArmFlavor(it->second.Best());
}

KernelTier Interpreter::PreferredFilterTier(uint32_t filter_expr_id) const {
  auto it = filter_choosers_.find(filter_expr_id);
  if (it == filter_choosers_.end() || it->second.Best() < kFirstScalarArm) {
    return kernels_->tier();
  }
  return KernelTier::kScalar;
}

Result<Value> Interpreter::EvalFilter(const Expr& e) {
  AVM_ASSIGN_OR_RETURN(Value in_v, EvalExpr(*e.args[1]));
  if (!in_v.is_array()) return Status::TypeError("filter of non-array");
  const ArrayValue& in = *in_v.array;
  AVM_ASSIGN_OR_RETURN(const ir::PrimProgram* prog,
                       PreparedLambda(*e.args[0], {in.type()}));

  const KernelRegistry* reg = kernels_;
  auto out = std::make_shared<ArrayValue>();
  // Share the underlying data; attach a fresh selection.
  out->vec = Vector(in.type(), in.vec.capacity());
  std::memcpy(out->vec.RawData(), in.vec.RawData(),
              static_cast<size_t>(in.len) * TypeWidth(in.type()));
  out->len = in.len;
  out->sel.Reset(std::max(in.len, uint32_t{1}));

  const sel_t* in_sel = in.has_sel() ? in.sel.Data() : nullptr;
  const uint32_t in_n = in.has_sel() ? in.sel.count() : in.len;

  // Resolve the micro-adaptive flavor (one chooser per filter node). On a
  // SIMD tier the chooser also carries scalar-kernel arms so it can select
  // scalar-vs-SIMD per call site.
  FilterFlavor flavor = options_.filter_flavor;
  MicroAdaptiveChooser* chooser = nullptr;
  size_t arm = 0;
  if (flavor == FilterFlavor::kAdaptive) {
    const size_t num_arms = kernels_->tier() != KernelTier::kScalar
                                ? kNumTieredArms
                                : kNumBaseArms;
    auto [it, _] = filter_choosers_.try_emplace(e.id, num_arms);
    chooser = &it->second;
    arm = chooser->Choose();
    flavor = ArmFlavor(arm);
    if (arm >= kFirstScalarArm) {
      reg = &KernelRegistry::ForTier(KernelTier::kScalar);
    }
  }
  const uint64_t t0 = chooser != nullptr ? ReadCycleCounter() : 0;

  // Fast path: single-comparison predicates map straight onto a filter
  // kernel producing the selection vector.
  uint32_t count = 0;
  bool done = false;
  if (flavor != FilterFlavor::kFullCompute && prog->instrs.size() == 1 &&
      dsl::ScalarOpIsComparison(prog->instrs[0].op)) {
    const ir::PrimInstr& instr = prog->instrs[0];
    const ir::PrimArg& lhs = instr.args[0];
    const ir::PrimArg& rhs = instr.args[1];
    if (lhs.kind == ir::ArgKind::kInput) {
      alignas(8) uint8_t rhs_buf[8] = {0};  // kernels read it as typed scalar
      const void* rhs_ptr = nullptr;
      switch (rhs.kind) {
        case ir::ArgKind::kConstI:
          ScalarValue::I(rhs.const_i).CastTo(instr.in_type).Store(rhs_buf);
          rhs_ptr = rhs_buf;
          break;
        case ir::ArgKind::kConstF:
          ScalarValue::F(rhs.const_f).CastTo(instr.in_type).Store(rhs_buf);
          rhs_ptr = rhs_buf;
          break;
        case ir::ArgKind::kCapture: {
          AVM_ASSIGN_OR_RETURN(ScalarValue sv, GetScalar(rhs.name));
          sv.CastTo(instr.in_type).Store(rhs_buf);
          rhs_ptr = rhs_buf;
          break;
        }
        default:
          rhs_ptr = nullptr;
      }
      if (rhs_ptr != nullptr && instr.in_type == in.type()) {
        FilterVariant variant = flavor == FilterFlavor::kBranching
                                    ? FilterVariant::kBranching
                                    : FilterVariant::kBranchless;
        FilterKernelFn fn = reg->Filter(instr.op, in.type(),
                                        /*rhs_scalar=*/true, in_sel != nullptr,
                                        variant);
        if (fn != nullptr) {
          count = fn(in.vec.RawData(), rhs_ptr, in_sel, in_n, out->sel.Data());
          done = true;
        }
      }
    }
  }
  if (!done) {
    // Full-compute flavor / general predicate: evaluate the predicate as a
    // bool vector (over all rows unless an input selection exists), then
    // convert to a selection vector.
    Vector bools;
    std::vector<Value> inputs{in_v};
    AVM_RETURN_NOT_OK(prim_exec_.Run(*prog, inputs, in_sel, in_n, in.len,
                                     &bools, MakeCaptureResolver()));
    count = reg->BoolToSel(in_sel != nullptr)(bools.RawData(), nullptr, in_sel,
                                              in_n, out->sel.Data());
  }
  if (chooser != nullptr && in_n > 0) {
    const uint64_t dt = ReadCycleCounter() - t0;
    chooser->Observe(arm, static_cast<double>(dt) / in_n);
  }
  out->sel.set_count(count);
  out->sel.set_enabled(true);
  return Value::A(out);
}

Result<Value> Interpreter::EvalFold(const Expr& e) {
  AVM_ASSIGN_OR_RETURN(ScalarValue init, EvalScalarExpr(*e.args[1]));
  AVM_ASSIGN_OR_RETURN(Value in_v, EvalExpr(*e.args[2]));
  if (!in_v.is_array()) return Status::TypeError("fold of non-array");
  const ArrayValue& in = *in_v.array;
  const TypeId acc_t = dsl::PromoteTypes(init.type, in.type());
  AVM_ASSIGN_OR_RETURN(const ir::PrimProgram* prog,
                       PreparedLambda(*e.args[0], {acc_t, in.type()}));

  const sel_t* sel = in.has_sel() ? in.sel.Data() : nullptr;
  const uint32_t n = in.has_sel() ? in.sel.count() : in.len;

  // Fast path: single commutative primitive (add/min/max/mul) directly over
  // the input vector in acc type.
  if (prog->instrs.size() == 1) {
    const ir::PrimInstr& instr = prog->instrs[0];
    bool inputs_only =
        instr.num_args == 2 &&
        instr.args[0].kind == ir::ArgKind::kInput &&
        instr.args[1].kind == ir::ArgKind::kInput &&
        instr.args[0].index != instr.args[1].index;
    if (inputs_only && kernels_->Fold(instr.op, acc_t) != nullptr) {
      FoldKernelFn fn = kernels_->Fold(instr.op, acc_t);
      alignas(8) uint8_t acc_buf[8];  // fold kernels read it as typed scalar
      init.CastTo(acc_t).Store(acc_buf);
      if (in.type() == acc_t) {
        fn(in.vec.RawData(), sel, n, acc_buf);
      } else {
        // Widen input to acc type first.
        Vector widened(acc_t, in.len);
        PrimKernelFn cast =
            kernels_->Cast(in.type(), acc_t, sel != nullptr);
        cast(in.vec.RawData(), nullptr, widened.RawData(), sel, n);
        fn(widened.RawData(), sel, n, acc_buf);
      }
      return Value::S(ScalarValue::Load(acc_t, acc_buf));
    }
  }

  // General fold: scalar loop over the normalized program.
  ScalarValue acc = init.CastTo(acc_t);
  auto resolver = MakeCaptureResolver();
  for (uint32_t j = 0; j < n; ++j) {
    const uint32_t i = sel != nullptr ? sel[j] : j;
    ScalarValue x = ScalarValue::Load(
        in.type(), static_cast<const uint8_t*>(in.vec.RawData()) +
                       static_cast<size_t>(i) * TypeWidth(in.type()));
    AVM_ASSIGN_OR_RETURN(acc, prim_exec_.RunScalar(*prog, {acc, x}, resolver));
  }
  return Value::S(acc);
}

Result<Value> Interpreter::EvalCondense(const Expr& e) {
  AVM_ASSIGN_OR_RETURN(Value in_v, EvalExpr(*e.args[0]));
  if (!in_v.is_array()) return Status::TypeError("condense of non-array");
  const ArrayValue& in = *in_v.array;
  if (!in.has_sel()) return in_v;  // nothing to do
  ArrayPtr out = NewArray(in.type(), std::max(in.len, uint32_t{1}));
  kernels_->Condense(in.type())(
      in.vec.RawData(), nullptr, out->vec.RawData(), in.sel.Data(),
      in.sel.count());
  out->len = in.sel.count();
  return Value::A(out);
}

Result<Value> Interpreter::EvalGather(const Expr& e) {
  AVM_ASSIGN_OR_RETURN(Value idx_v, EvalExpr(*e.args[1]));
  if (!idx_v.is_array()) return Status::TypeError("gather needs index array");
  const ArrayValue& idx = *idx_v.array;

  // The base is either a data-array reference or a chunk array value.
  const void* base = nullptr;
  TypeId base_t = TypeId::kI64;
  Value base_v;  // keeps a chunk base alive across the kernel call
  DataBinding* binding = e.args[0]->kind == ExprKind::kVarRef
                             ? FindBinding(e.args[0]->var)
                             : nullptr;
  uint64_t base_len = 0;
  if (binding != nullptr) {
    if (binding->raw == nullptr) {
      return Status::NotImplemented(
          "gather from compressed column (decompress first)");
    }
    base = binding->raw;
    base_t = binding->type;
    base_len = binding->len;
  } else {
    AVM_ASSIGN_OR_RETURN(base_v, EvalExpr(*e.args[0]));
    if (!base_v.is_array()) {
      return Status::TypeError("gather base must be an array");
    }
    base = base_v.array->vec.RawData();
    base_t = base_v.array->type();
    base_len = base_v.array->len;
  }

  // Indices must be i64 for the gather kernels; widen when needed.
  const sel_t* sel = idx.has_sel() ? idx.sel.Data() : nullptr;
  const uint32_t n = idx.has_sel() ? idx.sel.count() : idx.len;
  Vector idx64;
  const void* idx_ptr = idx.vec.RawData();
  if (idx.type() != TypeId::kI64) {
    idx64.Reset(TypeId::kI64, idx.len);
    kernels_->Cast(idx.type(), TypeId::kI64, sel != nullptr)(
        idx.vec.RawData(), nullptr, idx64.RawData(), sel, n);
    idx_ptr = idx64.RawData();
  }
  // Bounds check (gather reads host memory; never trust indices — same
  // policy as scatter).
  {
    const int64_t* pi = static_cast<const int64_t*>(idx_ptr);
    for (uint32_t j = 0; j < n; ++j) {
      const uint32_t i = sel != nullptr ? sel[j] : j;
      if (pi[i] < 0 || static_cast<uint64_t>(pi[i]) >= base_len) {
        return Status::OutOfRange(
            StrFormat("gather index %lld out of [0, %llu)",
                      (long long)pi[i], (unsigned long long)base_len));
      }
    }
  }
  ArrayPtr out = NewArray(base_t, std::max(idx.len, uint32_t{1}));
  kernels_->GatherI64Idx(base_t, sel != nullptr)(
      base, idx_ptr, out->vec.RawData(), sel, n);
  out->len = idx.len;
  if (idx.has_sel()) {
    out->sel.Reset(idx.sel.count());
    std::memcpy(out->sel.Data(), idx.sel.Data(),
                sizeof(sel_t) * idx.sel.count());
    out->sel.set_count(idx.sel.count());
    out->sel.set_enabled(true);
  }
  return Value::A(out);
}

Result<Value> Interpreter::EvalScatter(const Expr& e) {
  const std::string& name = e.args[0]->var;
  DataBinding* b = FindBinding(name);
  if (b == nullptr) return Status::NotFound("unbound data array " + name);
  if (!b->writable || b->raw == nullptr) {
    return Status::InvalidArgument("scatter to non-writable array " + name);
  }
  AVM_ASSIGN_OR_RETURN(Value idx_v, EvalExpr(*e.args[1]));
  AVM_ASSIGN_OR_RETURN(Value val_v, EvalExpr(*e.args[2]));
  if (!idx_v.is_array() || !val_v.is_array()) {
    return Status::TypeError("scatter needs index and value arrays");
  }
  const ArrayValue& idx = *idx_v.array;
  const ArrayValue& vals = *val_v.array;

  // Conflict-handling function: a single binary primitive (add/min/max) or
  // plain overwrite when omitted.
  ScalarOp combine = ScalarOp::kCast;  // sentinel: overwrite
  if (e.args.size() == 4) {
    AVM_ASSIGN_OR_RETURN(const ir::PrimProgram* prog,
                         PreparedLambda(*e.args[3], {b->type, vals.type()}));
    if (prog->instrs.size() != 1 ||
        kernels_->Scatter(prog->instrs[0].op, b->type) ==
            nullptr) {
      return Status::NotImplemented(
          "scatter conflict function must be a single add/min/max primitive");
    }
    combine = prog->instrs[0].op;
  }

  const sel_t* sel = idx.has_sel() ? idx.sel.Data() : nullptr;
  const uint32_t n = idx.has_sel() ? idx.sel.count() : idx.len;

  // Bounds check (scatter writes host memory; never trust indices).
  {
    const int64_t* pi = idx.vec.Data<int64_t>();
    Vector idx64;
    if (idx.type() != TypeId::kI64) {
      idx64.Reset(TypeId::kI64, idx.len);
      kernels_->Cast(idx.type(), TypeId::kI64, sel != nullptr)(
          idx.vec.RawData(), nullptr, idx64.RawData(), sel, n);
      pi = idx64.Data<int64_t>();
    }
    for (uint32_t j = 0; j < n; ++j) {
      const uint32_t i = sel != nullptr ? sel[j] : j;
      if (pi[i] < 0 || static_cast<uint64_t>(pi[i]) >= b->len) {
        return Status::OutOfRange(
            StrFormat("scatter index %lld out of [0, %llu)",
                      (long long)pi[i], (unsigned long long)b->len));
      }
    }
    // Values must match destination type.
    Vector widened;
    const void* vptr = vals.vec.RawData();
    if (vals.type() != b->type) {
      widened.Reset(b->type, vals.len);
      kernels_->Cast(vals.type(), b->type, sel != nullptr)(
          vals.vec.RawData(), nullptr, widened.RawData(), sel, n);
      vptr = widened.RawData();
    }
    kernels_->Scatter(combine, b->type)(pi, vptr, b->raw, sel, n);
  }
  return Value::S(ScalarValue::I(n));
}

Result<Value> Interpreter::EvalGen(const Expr& e) {
  AVM_ASSIGN_OR_RETURN(ScalarValue n_v, EvalScalarExpr(*e.args[1]));
  const int64_t n_signed = n_v.AsI64();
  if (n_signed < 0) return Status::InvalidArgument("gen length < 0");
  const uint32_t n = static_cast<uint32_t>(n_signed);
  if (n > options_.chunk_size) {
    return Status::InvalidArgument(
        StrFormat("gen length %u exceeds chunk size %u", n,
                  options_.chunk_size));
  }
  AVM_ASSIGN_OR_RETURN(const ir::PrimProgram* prog,
                       PreparedLambda(*e.args[0], {TypeId::kI64}));
  // Materialize the index vector 0..n-1.
  auto idx = std::make_shared<ArrayValue>();
  idx->vec.Reset(TypeId::kI64, std::max(n, uint32_t{1}));
  int64_t* pi = idx->vec.Data<int64_t>();
  for (uint32_t i = 0; i < n; ++i) pi[i] = i;
  idx->len = n;
  ArrayPtr out = NewArray(prog->result_type, std::max(n, uint32_t{1}));
  std::vector<Value> inputs{Value::A(idx)};
  AVM_RETURN_NOT_OK(prim_exec_.Run(*prog, inputs, nullptr, 0, n, &out->vec,
                                   MakeCaptureResolver()));
  out->len = n;
  return Value::A(out);
}

Result<Value> Interpreter::EvalExpand(const Expr& e) {
  // expand counts [values]: each SELECTED row i of `counts` fans out into
  // counts[i] output rows — within-run offsets 0..counts[i]-1 without
  // `values`, or values[i] replicated counts[i] times with it. Output rows
  // are emitted in selection order, densely packed, and carry NO selection:
  // the result lives in a fresh fan-out row domain (the hash-join pair
  // domain), not the input chunk's. Its length may exceed the chunk size.
  AVM_ASSIGN_OR_RETURN(Value cnt_v, EvalExpr(*e.args[0]));
  if (!cnt_v.is_array()) {
    return Status::TypeError("expand counts must be an array");
  }
  const bool have_values = e.args.size() == 2;
  Value val_v;
  if (have_values) {
    AVM_ASSIGN_OR_RETURN(val_v, EvalExpr(*e.args[1]));
    if (!val_v.is_array()) {
      return Status::TypeError("expand values must be an array");
    }
  }
  std::vector<Value> ins{cnt_v};
  if (have_values) ins.push_back(val_v);
  AVM_ASSIGN_OR_RETURN(SelContext ctx, CommonSelection(ins));
  const ArrayValue& cnt = *cnt_v.array;

  // Widen counts to i64 (the type checker guarantees an integer type).
  Vector cnt64;
  const int64_t* pc = cnt.vec.Data<int64_t>();
  const uint32_t m = ctx.sel != nullptr ? ctx.sel_n : ctx.n;
  if (cnt.type() != TypeId::kI64) {
    cnt64.Reset(TypeId::kI64, std::max(cnt.len, uint32_t{1}));
    kernels_->Cast(cnt.type(), TypeId::kI64, ctx.sel != nullptr)(
        cnt.vec.RawData(), nullptr, cnt64.RawData(), ctx.sel, m);
    pc = cnt64.Data<int64_t>();
  }

  // Pass 1: validate counts and size the output.
  uint64_t total = 0;
  for (uint32_t j = 0; j < m; ++j) {
    const uint32_t i = ctx.sel != nullptr ? ctx.sel[j] : j;
    const int64_t c = pc[i];
    if (c < 0) {
      return Status::InvalidArgument(
          StrFormat("expand count %lld < 0", (long long)c));
    }
    total += static_cast<uint64_t>(c);
  }
  if (total > std::numeric_limits<uint32_t>::max()) {
    return Status::ResourceExhausted(
        StrFormat("expand output of %llu rows exceeds the vector limit",
                  (unsigned long long)total));
  }

  const TypeId out_t = have_values ? val_v.array->type() : TypeId::kI64;
  ArrayPtr out =
      NewArray(out_t, std::max<uint32_t>(static_cast<uint32_t>(total), 1));
  if (!have_values) {
    int64_t* po = out->vec.Data<int64_t>();
    uint64_t o = 0;
    for (uint32_t j = 0; j < m; ++j) {
      const uint32_t i = ctx.sel != nullptr ? ctx.sel[j] : j;
      for (int64_t k = 0; k < pc[i]; ++k) po[o++] = k;
    }
  } else {
    const size_t w = TypeWidth(out_t);
    const uint8_t* pv =
        static_cast<const uint8_t*>(val_v.array->vec.RawData());
    uint8_t* po = static_cast<uint8_t*>(out->vec.RawData());
    uint64_t o = 0;
    for (uint32_t j = 0; j < m; ++j) {
      const uint32_t i = ctx.sel != nullptr ? ctx.sel[j] : j;
      for (int64_t k = 0; k < pc[i]; ++k, ++o) {
        std::memcpy(po + o * w, pv + static_cast<size_t>(i) * w, w);
      }
    }
  }
  out->len = static_cast<uint32_t>(total);
  return Value::A(out);
}

Result<Value> Interpreter::EvalMerge(const Expr& e) {
  AVM_ASSIGN_OR_RETURN(Value av, EvalExpr(*e.args[0]));
  AVM_ASSIGN_OR_RETURN(Value bv, EvalExpr(*e.args[1]));
  if (!av.is_array() || !bv.is_array()) {
    return Status::TypeError("merge needs arrays");
  }
  if (av.array->has_sel() || bv.array->has_sel()) {
    return Status::InvalidArgument("merge inputs must be condensed");
  }
  const ArrayValue& a = *av.array;
  const ArrayValue& b = *bv.array;
  ArrayPtr out = NewArray(a.type(), a.len + b.len + 1);
  uint32_t count = 0;
  DispatchType(a.type(), [&]<typename Raw>() {
    using T = std::conditional_t<std::is_same_v<Raw, bool>, uint8_t, Raw>;
    const T* pa = reinterpret_cast<const T*>(a.vec.RawData());
    const T* pb = reinterpret_cast<const T*>(b.vec.RawData());
    T* po = reinterpret_cast<T*>(out->vec.RawData());
    uint32_t i = 0, j = 0;
    switch (e.merge_kind) {
      case dsl::MergeKind::kJoin:
        // Sorted intersection (MergeJoin on unique keys).
        while (i < a.len && j < b.len) {
          if (pa[i] < pb[j]) ++i;
          else if (pb[j] < pa[i]) ++j;
          else { po[count++] = pa[i]; ++i; ++j; }
        }
        break;
      case dsl::MergeKind::kUnion:
        while (i < a.len && j < b.len) {
          if (pa[i] < pb[j]) po[count++] = pa[i++];
          else if (pb[j] < pa[i]) po[count++] = pb[j++];
          else { po[count++] = pa[i]; ++i; ++j; }
        }
        while (i < a.len) po[count++] = pa[i++];
        while (j < b.len) po[count++] = pb[j++];
        break;
      case dsl::MergeKind::kDiff:
        while (i < a.len && j < b.len) {
          if (pa[i] < pb[j]) po[count++] = pa[i++];
          else if (pb[j] < pa[i]) ++j;
          else { ++i; ++j; }
        }
        while (i < a.len) po[count++] = pa[i++];
        break;
    }
  });
  out->len = count;
  return Value::A(out);
}

}  // namespace avm::interp
