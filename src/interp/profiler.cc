#include "interp/profiler.h"

#include <algorithm>
#include <sstream>

#include "util/string_util.h"

namespace avm::interp {

std::vector<uint32_t> Profiler::HotNodes() const {
  std::vector<uint32_t> ids;
  ids.reserve(stats_.size());
  for (const auto& [id, s] : stats_) ids.push_back(id);
  std::sort(ids.begin(), ids.end(), [this](uint32_t a, uint32_t b) {
    return stats_.at(a).cycles > stats_.at(b).cycles;
  });
  return ids;
}

uint64_t Profiler::TotalCycles() const {
  uint64_t total = 0;
  for (const auto& [id, s] : stats_) total += s.cycles;
  return total;
}

std::string Profiler::ToString() const {
  std::ostringstream os;
  os << StrFormat("%-6s %-32s %10s %12s %12s %8s %6s\n", "node", "op", "calls",
                  "cycles", "tuples", "cyc/tup", "sel");
  for (uint32_t id : HotNodes()) {
    const OpStats& s = stats_.at(id);
    os << StrFormat("%-6u %-32s %10llu %12llu %12llu %8.2f %6.3f\n", id,
                    s.label.c_str(), (unsigned long long)s.calls,
                    (unsigned long long)s.cycles, (unsigned long long)s.tuples,
                    s.CyclesPerTuple(), s.Selectivity());
  }
  return os.str();
}

}  // namespace avm::interp
