// Generic micro-adaptive flavor chooser (Ra˘ducanu et al., SIGMOD'13 —
// reference [24] of the paper). The VM uses it to pick among implementation
// flavors of one operation: epsilon-greedy exploration with an exponential
// moving average of per-tuple cost per arm.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace avm::interp {

class MicroAdaptiveChooser {
 public:
  explicit MicroAdaptiveChooser(size_t num_arms, double explore_every = 64,
                                double ema_alpha = 0.2)
      : arms_(num_arms), explore_every_(explore_every),
        ema_alpha_(ema_alpha) {}

  /// Arm to use for the next call.
  size_t Choose() {
    ++calls_;
    // Round-robin warmup: measure every arm once before exploiting.
    for (size_t i = 0; i < arms_.size(); ++i) {
      if (arms_[i].samples == 0) return i;
    }
    // Periodic exploration keeps stale arms re-evaluated so the chooser
    // adapts when the workload drifts (e.g. selectivity changes).
    if (explore_every_ > 0 &&
        calls_ % static_cast<uint64_t>(explore_every_) == 0) {
      explore_cursor_ = (explore_cursor_ + 1) % arms_.size();
      return explore_cursor_;
    }
    return Best();
  }

  /// Report the measured cost (e.g. cycles per tuple) of using `arm`.
  void Observe(size_t arm, double cost) {
    Arm& a = arms_[arm];
    if (a.samples == 0) {
      a.ema_cost = cost;
    } else {
      a.ema_cost = ema_alpha_ * cost + (1 - ema_alpha_) * a.ema_cost;
    }
    ++a.samples;
  }

  size_t Best() const {
    size_t best = 0;
    for (size_t i = 1; i < arms_.size(); ++i) {
      if (arms_[i].ema_cost < arms_[best].ema_cost) best = i;
    }
    return best;
  }

  double CostOf(size_t arm) const { return arms_[arm].ema_cost; }
  uint64_t SamplesOf(size_t arm) const { return arms_[arm].samples; }
  size_t num_arms() const { return arms_.size(); }

 private:
  struct Arm {
    double ema_cost = 0;
    uint64_t samples = 0;
  };
  std::vector<Arm> arms_;
  double explore_every_;
  double ema_alpha_;
  uint64_t calls_ = 0;
  size_t explore_cursor_ = 0;
};

}  // namespace avm::interp
