#include "interp/prim_exec.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/hash.h"
#include "util/string_util.h"

namespace avm::interp {

namespace {

using dsl::ScalarOp;
using ir::ArgKind;
using ir::PrimArg;
using ir::PrimInstr;
using ir::PrimProgram;

// Scalar evaluation of one primitive (used when every operand is scalar and
// for the generic fold fallback).
Result<ScalarValue> ApplyScalar(const PrimInstr& instr, const ScalarValue& a,
                                const ScalarValue& b) {
  ScalarValue x = a.CastTo(instr.in_type);
  ScalarValue y = instr.num_args == 2 ? b.CastTo(instr.in_type) : b;
  const bool flt = IsFloatType(instr.in_type);
  auto out_i = [&](int64_t v) {
    return ScalarValue::I(v, TypeId::kI64).CastTo(instr.out_type);
  };
  auto out_f = [&](double v) { return ScalarValue::F(v, instr.out_type); };
  switch (instr.op) {
    case ScalarOp::kAdd: return flt ? out_f(x.AsF64() + y.AsF64()) : out_i(x.v.i + y.v.i);
    case ScalarOp::kSub: return flt ? out_f(x.AsF64() - y.AsF64()) : out_i(x.v.i - y.v.i);
    case ScalarOp::kMul: return flt ? out_f(x.AsF64() * y.AsF64()) : out_i(x.v.i * y.v.i);
    case ScalarOp::kDiv:
      if (flt) return out_f(x.AsF64() / y.AsF64());
      return out_i(y.v.i == 0 ? 0 : x.v.i / y.v.i);
    case ScalarOp::kMod:
      return out_i(y.v.i == 0 ? 0 : x.v.i % y.v.i);
    case ScalarOp::kMin:
      return flt ? out_f(std::min(x.AsF64(), y.AsF64()))
                 : out_i(std::min(x.v.i, y.v.i));
    case ScalarOp::kMax:
      return flt ? out_f(std::max(x.AsF64(), y.AsF64()))
                 : out_i(std::max(x.v.i, y.v.i));
    case ScalarOp::kEq: return ScalarValue::I(flt ? x.AsF64() == y.AsF64() : x.v.i == y.v.i, TypeId::kBool);
    case ScalarOp::kNe: return ScalarValue::I(flt ? x.AsF64() != y.AsF64() : x.v.i != y.v.i, TypeId::kBool);
    case ScalarOp::kLt: return ScalarValue::I(flt ? x.AsF64() < y.AsF64() : x.v.i < y.v.i, TypeId::kBool);
    case ScalarOp::kLe: return ScalarValue::I(flt ? x.AsF64() <= y.AsF64() : x.v.i <= y.v.i, TypeId::kBool);
    case ScalarOp::kGt: return ScalarValue::I(flt ? x.AsF64() > y.AsF64() : x.v.i > y.v.i, TypeId::kBool);
    case ScalarOp::kGe: return ScalarValue::I(flt ? x.AsF64() >= y.AsF64() : x.v.i >= y.v.i, TypeId::kBool);
    case ScalarOp::kAnd: return ScalarValue::I(x.AsBool() && y.AsBool(), TypeId::kBool);
    case ScalarOp::kOr: return ScalarValue::I(x.AsBool() || y.AsBool(), TypeId::kBool);
    case ScalarOp::kNot: return ScalarValue::I(!x.AsBool(), TypeId::kBool);
    case ScalarOp::kNeg: return flt ? out_f(-x.AsF64()) : out_i(-x.v.i);
    case ScalarOp::kAbs:
      return flt ? out_f(std::abs(x.AsF64()))
                 : out_i(x.v.i < 0 ? -x.v.i : x.v.i);
    case ScalarOp::kSqrt: return out_f(std::sqrt(x.AsF64()));
    case ScalarOp::kCast: return a.CastTo(instr.out_type);
    case ScalarOp::kHash:
      return ScalarValue::I(
          static_cast<int64_t>(
              HashInt64(static_cast<uint64_t>(x.AsI64()))),
          TypeId::kI64);
  }
  return Status::Internal("unhandled scalar op");
}

}  // namespace

Status PrimExecutor::Resolve(const PrimArg& arg, TypeId want_type,
                             const std::vector<Value>& inputs,
                             const CaptureResolver& captures, Operand* out) {
  Operand& op = *out;
  switch (arg.kind) {
    case ArgKind::kInput: {
      const Value& v = inputs[static_cast<size_t>(arg.index)];
      if (v.is_array()) {
        op.data = v.array->vec.RawData();
        op.is_vector = true;
        return Status::OK();
      }
      v.scalar.CastTo(want_type).Store(op.scalar_buf);
      op.data = op.scalar_buf;
      return Status::OK();
    }
    case ArgKind::kReg: {
      Reg& r = regs_[static_cast<size_t>(arg.index)];
      if (!r.valid) return Status::Internal("read of unwritten register");
      if (r.is_scalar) {
        r.scalar.CastTo(want_type).Store(op.scalar_buf);
        op.data = op.scalar_buf;
        return Status::OK();
      }
      op.data = r.vec.RawData();
      op.is_vector = true;
      return Status::OK();
    }
    case ArgKind::kConstI:
      ScalarValue::I(arg.const_i, TypeId::kI64)
          .CastTo(want_type)
          .Store(op.scalar_buf);
      op.data = op.scalar_buf;
      return Status::OK();
    case ArgKind::kConstF:
      ScalarValue::F(arg.const_f, TypeId::kF64)
          .CastTo(want_type)
          .Store(op.scalar_buf);
      op.data = op.scalar_buf;
      return Status::OK();
    case ArgKind::kCapture: {
      if (!captures) {
        return Status::InvalidArgument("capture without resolver: " +
                                       arg.name);
      }
      AVM_ASSIGN_OR_RETURN(ScalarValue sv, captures(arg.name));
      sv.CastTo(want_type).Store(op.scalar_buf);
      op.data = op.scalar_buf;
      return Status::OK();
    }
  }
  return Status::Internal("unhandled arg kind");
}

Status PrimExecutor::Run(const ir::PrimProgram& prog,
                         const std::vector<Value>& inputs, const sel_t* sel,
                         uint32_t sel_n, uint32_t n, Vector* out,
                         const CaptureResolver& captures) {
  const KernelRegistry& reg =
      registry_ != nullptr ? *registry_ : KernelRegistry::Get();
  if (regs_.size() < static_cast<size_t>(prog.num_regs)) {
    regs_.resize(static_cast<size_t>(prog.num_regs));
  }
  for (auto& r : regs_) r.valid = false;

  const uint32_t kernel_n = sel != nullptr ? sel_n : n;

  // Identity / projection lambdas copy the input through.
  if (prog.result_is_input >= 0) {
    const Value& v = inputs[static_cast<size_t>(prog.result_is_input)];
    out->Reset(prog.result_type, n);
    if (v.is_array()) {
      std::memcpy(out->RawData(), v.array->vec.RawData(),
                  static_cast<size_t>(n) * TypeWidth(prog.result_type));
    } else {
      // Broadcast the scalar.
      DispatchType(prog.result_type, [&]<typename T>() {
        ScalarValue sv = v.scalar.CastTo(prog.result_type);
        uint8_t buf[8];
        sv.Store(buf);
        T tv;
        std::memcpy(&tv, buf, sizeof(T));
        T* p = out->Data<T>();
        for (uint32_t i = 0; i < n; ++i) p[i] = tv;
      });
    }
    return Status::OK();
  }

  for (const auto& instr : prog.instrs) {
    Reg& dst = regs_[static_cast<size_t>(instr.out_reg)];

    // All-scalar instructions evaluate once.
    bool all_scalar = true;
    for (int i = 0; i < instr.num_args; ++i) {
      const PrimArg& a = instr.args[i];
      if (a.kind == ArgKind::kInput &&
          inputs[static_cast<size_t>(a.index)].is_array()) {
        all_scalar = false;
      }
      if (a.kind == ArgKind::kReg &&
          !regs_[static_cast<size_t>(a.index)].is_scalar) {
        all_scalar = false;
      }
    }
    if (all_scalar) {
      auto load_scalar = [&](const PrimArg& a) -> Result<ScalarValue> {
        switch (a.kind) {
          case ArgKind::kInput:
            return inputs[static_cast<size_t>(a.index)].scalar;
          case ArgKind::kReg:
            return regs_[static_cast<size_t>(a.index)].scalar;
          case ArgKind::kConstI: return ScalarValue::I(a.const_i);
          case ArgKind::kConstF: return ScalarValue::F(a.const_f);
          case ArgKind::kCapture: {
            if (!captures) {
              return Status::InvalidArgument("capture without resolver");
            }
            return captures(a.name);
          }
        }
        return Status::Internal("bad arg");
      };
      AVM_ASSIGN_OR_RETURN(ScalarValue a, load_scalar(instr.args[0]));
      ScalarValue b = ScalarValue::I(0);
      if (instr.num_args == 2) {
        AVM_ASSIGN_OR_RETURN(b, load_scalar(instr.args[1]));
      }
      AVM_ASSIGN_OR_RETURN(ScalarValue r, ApplyScalar(instr, a, b));
      dst.is_scalar = true;
      dst.scalar = r;
      dst.valid = true;
      continue;
    }

    Operand a, b;
    AVM_RETURN_NOT_OK(
        Resolve(instr.args[0], instr.in_type, inputs, captures, &a));
    if (instr.num_args == 2) {
      AVM_RETURN_NOT_OK(
          Resolve(instr.args[1], instr.in_type, inputs, captures, &b));
    }

    dst.is_scalar = false;
    dst.vec.Reset(instr.out_type, n);
    dst.valid = true;

    PrimKernelFn fn = nullptr;
    const bool selective = sel != nullptr;
    if (instr.op == ScalarOp::kCast) {
      fn = reg.Cast(instr.in_type, instr.out_type, selective);
    } else if (instr.num_args == 1) {
      fn = reg.Unary(instr.op, instr.in_type, selective);
    } else {
      OperandMode mode = OperandMode::kVecVec;
      if (a.is_vector && !b.is_vector) mode = OperandMode::kVecScalar;
      if (!a.is_vector && b.is_vector) mode = OperandMode::kScalarVec;
      fn = reg.Binary(instr.op, instr.in_type, mode, selective);
    }
    if (fn == nullptr) {
      return Status::NotImplemented(
          StrFormat("no kernel for %s over %s", dsl::ScalarOpName(instr.op),
                    TypeName(instr.in_type)));
    }
    fn(a.data, b.data, dst.vec.RawData(), sel, kernel_n);
  }

  // Move the result register into `out`.
  Reg& res = regs_[static_cast<size_t>(prog.result_reg)];
  if (res.is_scalar) {
    out->Reset(prog.result_type, n);
    DispatchType(prog.result_type, [&]<typename T>() {
      uint8_t buf[8];
      res.scalar.CastTo(prog.result_type).Store(buf);
      T tv;
      std::memcpy(&tv, buf, sizeof(T));
      T* p = out->Data<T>();
      for (uint32_t i = 0; i < n; ++i) p[i] = tv;
    });
    return Status::OK();
  }
  *out = std::move(res.vec);
  res.valid = false;
  return Status::OK();
}

Result<ScalarValue> PrimExecutor::RunScalar(
    const ir::PrimProgram& prog, const std::vector<ScalarValue>& inputs,
    const CaptureResolver& captures) {
  if (prog.result_is_input >= 0) {
    return inputs[static_cast<size_t>(prog.result_is_input)];
  }
  std::vector<ScalarValue> regs(static_cast<size_t>(prog.num_regs));
  for (const auto& instr : prog.instrs) {
    auto load = [&](const ir::PrimArg& a) -> Result<ScalarValue> {
      switch (a.kind) {
        case ArgKind::kInput: return inputs[static_cast<size_t>(a.index)];
        case ArgKind::kReg: return regs[static_cast<size_t>(a.index)];
        case ArgKind::kConstI: return ScalarValue::I(a.const_i);
        case ArgKind::kConstF: return ScalarValue::F(a.const_f);
        case ArgKind::kCapture:
          if (!captures) {
            return Status::InvalidArgument("capture without resolver");
          }
          return captures(a.name);
      }
      return Status::Internal("bad arg");
    };
    AVM_ASSIGN_OR_RETURN(ScalarValue a, load(instr.args[0]));
    ScalarValue b = ScalarValue::I(0);
    if (instr.num_args == 2) {
      AVM_ASSIGN_OR_RETURN(b, load(instr.args[1]));
    }
    AVM_ASSIGN_OR_RETURN(regs[static_cast<size_t>(instr.out_reg)],
                         ApplyScalar(instr, a, b));
  }
  return regs[static_cast<size_t>(prog.result_reg)];
}

}  // namespace avm::interp
