#include "interp/kernel_tier.h"

#include <cstdlib>
#include <cstring>

#include "interp/kernels_simd.h"
#include "util/cpu_info.h"

namespace avm::interp {

const char* TierName(KernelTier t) {
  switch (t) {
    case KernelTier::kScalar: return "scalar";
    case KernelTier::kSse2: return "sse2";
    case KernelTier::kAvx2: return "avx2";
    case KernelTier::kAuto: return "auto";
  }
  return "?";
}

KernelTier ParseKernelTier(const char* s) {
  if (s == nullptr) return KernelTier::kAuto;
  if (std::strcmp(s, "scalar") == 0) return KernelTier::kScalar;
  if (std::strcmp(s, "sse2") == 0) return KernelTier::kSse2;
  if (std::strcmp(s, "avx2") == 0) return KernelTier::kAvx2;
  return KernelTier::kAuto;
}

KernelTier BestSupportedTier() {
  const CpuInfo& cpu = CpuInfo::Host();
  if (cpu.has_avx2 && Avx2Kernels().available) return KernelTier::kAvx2;
  if ((cpu.has_sse2 || cpu.has_neon) && Sse2Kernels().available) {
    return KernelTier::kSse2;
  }
  return KernelTier::kScalar;
}

std::vector<KernelTier> SupportedTiers() {
  const auto best = static_cast<uint8_t>(BestSupportedTier());
  std::vector<KernelTier> tiers;
  for (uint8_t t = 0; t <= best; ++t) {
    tiers.push_back(static_cast<KernelTier>(t));
  }
  return tiers;
}

KernelTier ActiveKernelTier() {
  static const KernelTier tier = [] {
    const KernelTier best = BestSupportedTier();
    const char* env = std::getenv("AVM_KERNEL_TIER");
    if (env != nullptr && *env != '\0') {
      const KernelTier req = ParseKernelTier(env);
      if (req != KernelTier::kAuto &&
          static_cast<uint8_t>(req) <= static_cast<uint8_t>(best)) {
        return req;
      }
      // Unknown or unsupported override: fall through to the best tier
      // rather than silently running a tier the host cannot execute.
    }
    return best;
  }();
  return tier;
}

KernelTier ResolveKernelTier(KernelTier request) {
  if (request == KernelTier::kAuto) return ActiveKernelTier();
  const KernelTier best = BestSupportedTier();
  return static_cast<uint8_t>(request) <= static_cast<uint8_t>(best) ? request
                                                                     : best;
}

}  // namespace avm::interp
