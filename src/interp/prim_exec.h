// Executes a normalized PrimProgram chunk-at-a-time by dispatching each
// primitive instruction to a pre-compiled kernel — the heart of vectorized
// interpretation (Section III-A).
#pragma once

#include <functional>
#include <vector>

#include "interp/kernels.h"
#include "interp/value.h"
#include "ir/prim.h"
#include "util/status.h"

namespace avm::interp {

/// Resolves captured free variables to scalar values at execution time.
using CaptureResolver =
    std::function<Result<ScalarValue>(const std::string&)>;

/// Reusable executor; owns scratch register vectors so repeated execution
/// does not allocate.
class PrimExecutor {
 public:
  /// Dispatch kernels from `registry` (per-tier; see KernelRegistry::ForTier)
  /// instead of the process-wide active registry. `registry` must outlive
  /// the executor (tier registries are process-lifetime singletons).
  void set_registry(const KernelRegistry* registry) { registry_ = registry; }
  /// Execute `prog` over `inputs` (one Value per lambda parameter; scalar
  /// inputs broadcast). `n` is the physical chunk length; if `sel` is
  /// non-null only the `sel_n` selected positions are computed (X100-style
  /// selective execution). The result is written into `out` (resized to the
  /// result type, capacity >= n).
  Status Run(const ir::PrimProgram& prog, const std::vector<Value>& inputs,
             const sel_t* sel, uint32_t sel_n, uint32_t n, Vector* out,
             const CaptureResolver& captures);

  /// Evaluate `prog` on scalar inputs only (generic fold fallback etc.).
  Result<ScalarValue> RunScalar(const ir::PrimProgram& prog,
                                const std::vector<ScalarValue>& inputs,
                                const CaptureResolver& captures);

 private:
  struct Operand {
    const void* data = nullptr;
    bool is_vector = false;
    // Kernels read this through typed pointers (e.g. const int64_t*), so it
    // must be aligned for the widest scalar type.
    alignas(8) uint8_t scalar_buf[8] = {0};
  };

  // Fills `*out` in place: `out->data` may alias `out->scalar_buf`, so the
  // operand must not be copied afterwards.
  Status Resolve(const ir::PrimArg& arg, TypeId want_type,
                 const std::vector<Value>& inputs,
                 const CaptureResolver& captures, Operand* out);

  struct Reg {
    Vector vec;
    bool is_scalar = false;
    ScalarValue scalar;
    bool valid = false;
  };
  std::vector<Reg> regs_;
  const KernelRegistry* registry_ = nullptr;  // null = active-tier registry
};

}  // namespace avm::interp
