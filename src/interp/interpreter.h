// The vectorized DSL interpreter (Section III-A).
//
// Programs are executed chunk-at-a-time: `read` produces chunk-sized arrays,
// skeletons dispatch to pre-compiled kernels, filters attach selection
// vectors, and profiling information (cycles, calls, tuples, selectivities)
// is collected per operation so the VM can decide what to compile.
//
// Compiled traces are *injected* through AddInjection(): before executing a
// covered statement the interpreter calls the trace instead — this is the
// "Inject functions" edge of the Fig. 1 state machine.
#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "dsl/ast.h"
#include "interp/micro_adaptive.h"
#include "interp/prim_exec.h"
#include "interp/profiler.h"
#include "interp/value.h"
#include "ir/prim.h"
#include "storage/column.h"
#include "util/status.h"

namespace avm::interp {

/// Host storage bound to a program's `data` declaration: either a raw
/// in-memory array or a (compressed, read-only) column.
///
/// A binding may expose only a row *slice* of its backing storage — this is
/// how the engine layer hands each morsel worker its own row range. Raw
/// slices simply pre-offset the pointer; column slices carry `col_offset`,
/// which every column access adds to the program-visible position.
struct DataBinding {
  TypeId type = TypeId::kI64;
  bool writable = false;
  // Raw array binding:
  void* raw = nullptr;
  uint64_t len = 0;
  // Column binding (read-only):
  const Column* column = nullptr;
  /// First backing-column row this binding exposes (column bindings only).
  uint64_t col_offset = 0;

  static DataBinding Raw(TypeId t, void* data, uint64_t n,
                         bool writable = false) {
    DataBinding b;
    b.type = t;
    b.writable = writable;
    b.raw = data;
    b.len = n;
    return b;
  }
  static DataBinding FromColumn(const Column* col) {
    DataBinding b;
    b.type = col->type();
    b.writable = false;
    b.column = col;
    b.len = col->num_rows();
    return b;
  }
  /// Rows [offset, offset + n) of `col` as positions [0, n).
  static DataBinding ColumnSlice(const Column* col, uint64_t offset,
                                 uint64_t n) {
    DataBinding b = FromColumn(col);
    b.col_offset = offset;
    b.len = n;
    return b;
  }
};

class Interpreter;

/// A compiled trace injected into the interpreter. When the interpreter is
/// about to execute the statement with id `anchor_stmt_id` and `applicable`
/// holds, it calls `run` (which computes the bindings the covered statements
/// would have produced) and skips all statements in `covered_stmt_ids`.
/// `run` may return StatusCode::kUnavailable *before producing any side
/// effect* to signal that a precondition only discoverable mid-preparation
/// (e.g. a selection index past the clamped window) does not hold: the
/// interpreter counts a fallback and executes the covered statements
/// normally, as if `applicable` had said no.
struct InjectedTrace {
  std::string name;
  uint32_t anchor_stmt_id = 0;
  std::unordered_set<uint32_t> covered_stmt_ids;
  std::function<Status(Interpreter&)> run;
  std::function<bool(Interpreter&)> applicable;  // null = always
  uint64_t invocations = 0;
  uint64_t cycles = 0;
  /// Times the anchor was reached but `applicable` said no (the VM's
  /// fallback-to-interpretation counter).
  uint64_t fallbacks = 0;
};

/// Implementation flavor of the filter skeleton (micro-adaptivity, §III-C).
enum class FilterFlavor : uint8_t {
  kBranchless = 0,  ///< branch-free selection-vector append
  kBranching,       ///< branching append (predictable predicates)
  kFullCompute,     ///< bool map over all rows, then bool→selvec
  kAdaptive,        ///< per-filter-node micro-adaptive choice among the above
};

struct InterpreterOptions {
  uint32_t chunk_size = kDefaultChunkSize;
  bool enable_profiling = true;
  FilterFlavor filter_flavor = FilterFlavor::kAdaptive;
  /// Kernel tier this interpreter dispatches to. kAuto resolves to the
  /// process-wide active tier (AVM_KERNEL_TIER override, else best
  /// supported); explicit requests clamp to what host + build can run.
  KernelTier kernel_tier = KernelTier::kAuto;
  /// Safety valve for the infinite `loop` construct.
  uint64_t max_loop_iterations = 1ull << 32;
};

class Interpreter {
 public:
  /// `program` must be type-checked and outlive the interpreter.
  Interpreter(const dsl::Program* program, InterpreterOptions options = {});

  /// Bind host storage to a `data` declaration.
  Status BindData(const std::string& name, DataBinding binding);

  /// Execute the whole program.
  Status Run();

  // --- environment access (also used by injected traces) -------------------
  Result<Value> GetVar(const std::string& name) const;
  void SetVar(const std::string& name, Value v);
  Result<ScalarValue> GetScalar(const std::string& name) const;
  DataBinding* FindBinding(const std::string& name);
  /// Const view of a binding (engine task hooks read per-task scratch
  /// windows through the interpreter after it finished).
  const DataBinding* FindBinding(const std::string& name) const;

  /// Allocate a chunk-sized array of `type` (len set by caller).
  ArrayPtr NewArray(TypeId type, uint32_t capacity = 0);

  Profiler& profiler() { return profiler_; }
  const Profiler& profiler() const { return profiler_; }
  const dsl::Program& program() const { return *program_; }
  uint32_t chunk_size() const { return options_.chunk_size; }
  uint64_t loop_iterations() const { return loop_iterations_; }

  /// Compression scheme observed by the most recent `read` of `name`
  /// (kPlain for raw bindings).
  Scheme LastSchemeOf(const std::string& name) const;

  /// Compressed column blocks decoded by this interpreter's streaming scan
  /// cursors — each `read` of a column binding goes through a per-binding
  /// ColumnChunkCursor that decodes one super-chunk at a time (scheme
  /// changes still flow through LastSchemeOf re-specialization). Summed
  /// into ExecReport::chunks_streamed.
  uint64_t chunks_streamed() const;

  // --- adaptivity hooks -----------------------------------------------------
  void AddInjection(InjectedTrace trace);
  void ClearInjections();
  const std::vector<InjectedTrace>& injections() const { return injections_; }

  /// Called after every loop iteration — the VM state machine's heartbeat.
  std::function<Status(Interpreter&, uint64_t iteration)> iteration_hook;

  /// Normalized lambda cache (shared with trace codegen).
  Result<const ir::PrimProgram*> PreparedLambda(
      const dsl::Expr& lambda, const std::vector<TypeId>& input_types);

  /// Flavor the adaptive chooser currently prefers for a filter node
  /// (observability for tests/benchmarks).
  FilterFlavor PreferredFilterFlavor(uint32_t filter_expr_id) const;

  /// Kernel tier the adaptive chooser currently prefers for a filter node:
  /// the interpreter's tier, or kScalar when a scalar fallback arm is
  /// winning (branching scalar can beat SIMD at very low selectivity).
  KernelTier PreferredFilterTier(uint32_t filter_expr_id) const;

  /// The kernel registry this interpreter dispatches to (resolved tier).
  const KernelRegistry& kernels() const { return *kernels_; }

 private:
  enum class Control : uint8_t { kNext, kBreak };

  Status ExecBlock(const std::vector<dsl::StmtPtr>& stmts, Control* ctl);
  Status ExecStmt(const dsl::Stmt& s, Control* ctl);
  Result<Value> EvalExpr(const dsl::Expr& e);
  Result<ScalarValue> EvalScalarExpr(const dsl::Expr& e);
  Result<Value> EvalSkeleton(const dsl::Expr& e);

  Result<Value> EvalRead(const dsl::Expr& e);
  Result<Value> EvalWrite(const dsl::Expr& e);
  Result<Value> EvalMap(const dsl::Expr& e);
  Result<Value> EvalFilter(const dsl::Expr& e);
  Result<Value> EvalFold(const dsl::Expr& e);
  Result<Value> EvalCondense(const dsl::Expr& e);
  Result<Value> EvalGather(const dsl::Expr& e);
  Result<Value> EvalScatter(const dsl::Expr& e);
  Result<Value> EvalGen(const dsl::Expr& e);
  Result<Value> EvalExpand(const dsl::Expr& e);
  Result<Value> EvalMerge(const dsl::Expr& e);

  CaptureResolver MakeCaptureResolver();

  const dsl::Program* program_;
  InterpreterOptions options_;
  std::unordered_map<std::string, Value> env_;
  std::unordered_map<std::string, DataBinding> bindings_;
  /// Streaming decode cursors for column bindings, keyed by binding name;
  /// (re)created lazily by EvalRead, invalidated by BindData.
  std::unordered_map<std::string, ColumnChunkCursor> column_cursors_;
  std::unordered_map<std::string, Scheme> last_scheme_;
  std::unordered_map<uint32_t, ir::PrimProgram> lambda_cache_;
  std::vector<InjectedTrace> injections_;
  std::unordered_map<uint32_t, MicroAdaptiveChooser> filter_choosers_;
  const KernelRegistry* kernels_;
  PrimExecutor prim_exec_;
  Profiler profiler_;
  uint64_t loop_iterations_ = 0;
};

}  // namespace avm::interp
