// SIMD kernel tiers and runtime ISA dispatch.
//
// The kernel registry (kernels.h) exists per tier: the scalar tier is the
// portable baseline every other tier is parity-tested against, the 128-bit
// tier ("sse2" after its x86 encoding; built from GNU vector extensions so
// it also serves NEON-class hosts) is the portable SIMD baseline, and the
// AVX2 tier is compiled in a dedicated translation unit with -mavx2 and only
// selected when the host actually reports AVX2 (cpuid / HWCAP probe in
// util/cpu_info.cc). The AVM_KERNEL_TIER environment variable forces a tier
// for tests and benchmarks; requests above what host + build support clamp
// down to the best available tier.
#pragma once

#include <cstdint>
#include <vector>

namespace avm::interp {

/// SIMD instruction tier a kernel implementation targets. Tiers are ordered:
/// a host that runs tier N also runs every tier below it.
enum class KernelTier : uint8_t {
  kScalar = 0,  ///< portable scalar loops — always available
  kSse2 = 1,    ///< 128-bit vectors (x86 SSE2 encoding; portable baseline)
  kAvx2 = 2,    ///< 256-bit vectors (x86 AVX2, separate -mavx2 TU)
  /// Request-only value: resolve to the process-wide active tier
  /// (AVM_KERNEL_TIER override, else the best supported tier).
  kAuto = 255,
};

/// Human-readable tier name: "scalar", "sse2", "avx2" ("auto" for kAuto).
const char* TierName(KernelTier t);

/// Parse "scalar" | "sse2" | "avx2" (the AVM_KERNEL_TIER values); any other
/// string yields kAuto.
KernelTier ParseKernelTier(const char* s);

/// Best tier this build AND this host can run: the runtime CPU probe
/// (CpuInfo::Host()) intersected with which SIMD translation units the build
/// actually compiled.
KernelTier BestSupportedTier();

/// Every tier runnable on this host, ascending; always contains kScalar.
std::vector<KernelTier> SupportedTiers();

/// The process-wide active tier: the AVM_KERNEL_TIER override if set and
/// supported, else BestSupportedTier(). Read once and cached.
KernelTier ActiveKernelTier();

/// Resolve a tier request: kAuto becomes ActiveKernelTier(); an explicit
/// request clamps to BestSupportedTier().
KernelTier ResolveKernelTier(KernelTier request);

}  // namespace avm::interp
