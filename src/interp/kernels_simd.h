// Internal seam between the per-ISA SIMD kernel translation units and the
// KernelRegistry.
//
// Each SIMD tier TU (kernels_sse2.cc, kernels_avx2.cc) expands the single
// kernel template in kernels_simd.inc at its vector width and fills a
// SimdKernelSet with the slots it covers; the registry constructor overlays
// the non-null slots onto the scalar tables. A tier only overlays the
// *non-selective* kernel slots — selection-vector driven execution is a
// scatter/gather access pattern the scalar kernels already serve well, so
// selective slots stay bit-identical scalar under every tier.
#pragma once

#include "interp/kernels.h"

namespace avm::interp {

/// Kernel slots one SIMD tier may provide. Null entries fall back to the
/// scalar implementation during registry overlay. Indexing mirrors the
/// registry tables: [op][type] plus per-family axes, minus the `selective`
/// axis (SIMD covers the dense, no-input-selection slots only).
struct SimdKernelSet {
  /// False when this build could not compile the tier (e.g. no -mavx2
  /// support); the dispatcher then never selects it.
  bool available = false;
  /// op × type × operand-mode (kVecVec/kVecScalar/kScalarVec).
  PrimKernelFn binary[kNumKernelOps][kNumTypes][3] = {};
  PrimKernelFn unary[kNumKernelOps][kNumTypes] = {};
  /// cmp × type × rhs_scalar × FilterVariant (branchless movemask-compress,
  /// branching mask-skip).
  FilterKernelFn filter[kNumKernelOps][kNumTypes][2][2] = {};
  FilterKernelFn bool_to_sel = nullptr;
  /// Folds reduce through per-lane accumulators with a fixed lane-reduction
  /// order: bit-stable run-to-run within a tier, but f64/f32 kAdd folds may
  /// differ from the scalar tier by FP associativity (see ARCHITECTURE.md
  /// "Kernel tiers").
  FoldKernelFn fold[kNumKernelOps][kNumTypes] = {};
  PrimKernelFn gather[kNumTypes] = {};
  PrimKernelFn condense[kNumTypes] = {};
};

/// The 128-bit portable tier's kernel set (built from GNU vector
/// extensions; empty set with available=false on compilers without them).
const SimdKernelSet& Sse2Kernels();

/// The AVX2 tier's kernel set (empty set with available=false when the
/// build lacks -mavx2 support or targets a non-x86 architecture).
const SimdKernelSet& Avx2Kernels();

}  // namespace avm::interp
