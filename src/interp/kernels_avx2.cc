// 256-bit SIMD kernel tier (AVX2). This TU is compiled with -mavx2 when the
// compiler supports it (CMake per-file COMPILE_OPTIONS); the dispatcher only
// selects the tier when the *host* reports AVX2 at runtime, so the binary
// stays runnable on older x86. On builds without AVX2 support the tier
// reports available=false and the dispatcher clamps to the 128-bit tier.
#include "interp/kernels_simd.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <cstdint>
#include <cstring>
#include <type_traits>
#include <utility>

#include "interp/kernel_ops.h"

#define AVM_SIMD_X86 1
#define AVM_SIMD_BYTES 32
#define AVM_SIMD_IS_AVX2 1

namespace avm::interp {

namespace simd_avx2 {
#include "interp/kernels_simd.inc"
}  // namespace simd_avx2

const SimdKernelSet& Avx2Kernels() {
  static const SimdKernelSet set = [] {
    SimdKernelSet s;
    simd_avx2::Fill(&s);
    s.available = true;
    return s;
  }();
  return set;
}

}  // namespace avm::interp

#else  // !defined(__AVX2__)

namespace avm::interp {

const SimdKernelSet& Avx2Kernels() {
  static const SimdKernelSet set;  // available = false
  return set;
}

}  // namespace avm::interp

#endif  // defined(__AVX2__)
