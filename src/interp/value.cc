#include "interp/value.h"

#include <cstring>

namespace avm::interp {

void ScalarValue::Store(void* dst) const {
  switch (type) {
    case TypeId::kBool: {
      uint8_t b = AsBool() ? 1 : 0;
      std::memcpy(dst, &b, 1);
      return;
    }
    case TypeId::kI8: {
      int8_t x = static_cast<int8_t>(v.i);
      std::memcpy(dst, &x, 1);
      return;
    }
    case TypeId::kI16: {
      int16_t x = static_cast<int16_t>(v.i);
      std::memcpy(dst, &x, 2);
      return;
    }
    case TypeId::kI32: {
      int32_t x = static_cast<int32_t>(v.i);
      std::memcpy(dst, &x, 4);
      return;
    }
    case TypeId::kI64:
      std::memcpy(dst, &v.i, 8);
      return;
    case TypeId::kF32: {
      float x = static_cast<float>(v.f);
      std::memcpy(dst, &x, 4);
      return;
    }
    case TypeId::kF64:
      std::memcpy(dst, &v.f, 8);
      return;
  }
}

ScalarValue ScalarValue::Load(TypeId t, const void* src) {
  switch (t) {
    case TypeId::kBool:
      return I(*static_cast<const uint8_t*>(src) != 0 ? 1 : 0, t);
    case TypeId::kI8:
      return I(*static_cast<const int8_t*>(src), t);
    case TypeId::kI16: {
      int16_t x;
      std::memcpy(&x, src, 2);
      return I(x, t);
    }
    case TypeId::kI32: {
      int32_t x;
      std::memcpy(&x, src, 4);
      return I(x, t);
    }
    case TypeId::kI64: {
      int64_t x;
      std::memcpy(&x, src, 8);
      return I(x, t);
    }
    case TypeId::kF32: {
      float x;
      std::memcpy(&x, src, 4);
      return F(x, t);
    }
    case TypeId::kF64: {
      double x;
      std::memcpy(&x, src, 8);
      return F(x, t);
    }
  }
  return I(0);
}

ScalarValue ScalarValue::CastTo(TypeId t) const {
  if (t == type) return *this;
  if (IsFloatType(t)) {
    double d = AsF64();
    if (t == TypeId::kF32) d = static_cast<float>(d);
    return F(d, t);
  }
  int64_t x = is_float() ? static_cast<int64_t>(v.f) : v.i;
  switch (t) {
    case TypeId::kBool: return I(x != 0 ? 1 : 0, t);
    case TypeId::kI8: return I(static_cast<int8_t>(x), t);
    case TypeId::kI16: return I(static_cast<int16_t>(x), t);
    case TypeId::kI32: return I(static_cast<int32_t>(x), t);
    default: return I(x, t);
  }
}

}  // namespace avm::interp
