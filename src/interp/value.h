// Runtime values of the vectorized interpreter: scalars and chunk arrays.
#pragma once

#include <memory>

#include "storage/vector.h"

namespace avm::interp {

/// A scalar runtime value.
struct ScalarValue {
  TypeId type = TypeId::kI64;
  union {
    int64_t i;
    double f;
  } v{0};

  static ScalarValue I(int64_t x, TypeId t = TypeId::kI64) {
    ScalarValue s;
    s.type = t;
    s.v.i = x;
    return s;
  }
  static ScalarValue F(double x, TypeId t = TypeId::kF64) {
    ScalarValue s;
    s.type = t;
    s.v.f = x;
    return s;
  }

  bool is_float() const { return IsFloatType(type); }
  int64_t AsI64() const { return is_float() ? static_cast<int64_t>(v.f) : v.i; }
  double AsF64() const { return is_float() ? v.f : static_cast<double>(v.i); }
  bool AsBool() const { return AsI64() != 0; }

  /// Write this scalar into `dst` using the in-memory representation of
  /// `type` (so kernels can broadcast it).
  void Store(void* dst) const;
  /// Read a scalar of type `t` from memory.
  static ScalarValue Load(TypeId t, const void* src);
  /// Convert to another type (C++ conversion semantics).
  ScalarValue CastTo(TypeId t) const;
};

/// A chunk-sized array value with an optional selection vector.
/// Filters attach a selection instead of moving data (Table I: "filters do
/// not physically modify the flow"); condense materializes it away.
struct ArrayValue {
  Vector vec;
  uint32_t len = 0;  ///< physical length
  SelectionVector sel;

  TypeId type() const { return vec.type(); }
  bool has_sel() const { return sel.enabled(); }
  uint32_t active_count() const { return has_sel() ? sel.count() : len; }
};

using ArrayPtr = std::shared_ptr<ArrayValue>;

/// A runtime value: scalar or array.
struct Value {
  enum class Kind : uint8_t { kScalar, kArray } kind = Kind::kScalar;
  ScalarValue scalar;
  ArrayPtr array;

  static Value S(ScalarValue s) {
    Value v;
    v.kind = Kind::kScalar;
    v.scalar = s;
    return v;
  }
  static Value A(ArrayPtr a) {
    Value v;
    v.kind = Kind::kArray;
    v.array = std::move(a);
    return v;
  }
  bool is_scalar() const { return kind == Kind::kScalar; }
  bool is_array() const { return kind == Kind::kArray; }
};

}  // namespace avm::interp
