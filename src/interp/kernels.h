// Pre-compiled vectorized primitive kernels (MonetDB/X100 style).
//
// Section III-A: "specialized functions that operate on a chunk of data in a
// tight loop are needed. We can generate and compile these functions during
// startup through our compilation infrastructure, such that they will be
// available during runtime with near to zero compilation effort."
//
// Here the full cross product (op × type × operand-vecness × selectivity
// variant) is instantiated from templates at build time and registered in a
// flat-array registry; run-time lookup is an array index.
#pragma once

#include <cstdint>

#include "dsl/ast.h"
#include "interp/kernel_tier.h"
#include "storage/types.h"
#include "util/status.h"

namespace avm::interp {

struct SimdKernelSet;

/// Cardinality of dsl::ScalarOp — the op axis of every kernel table.
inline constexpr size_t kNumKernelOps = 21;

/// Uniform kernel ABI. `a`, `b` point to vector data or a single scalar
/// (broadcast), `out` to the destination vector. If `sel` is non-null, only
/// positions sel[0..n) are processed and n is the selection count; otherwise
/// positions 0..n.
using PrimKernelFn = void (*)(const void* a, const void* b, void* out,
                              const sel_t* sel, uint32_t n);

/// Comparison kernels that directly produce a selection vector
/// (the "selection-vector" filter flavor). Returns qualifying count.
using FilterKernelFn = uint32_t (*)(const void* a, const void* b,
                                    const sel_t* sel, uint32_t n,
                                    sel_t* out_sel);

/// Fold kernels reduce a (possibly selected) vector into *acc.
using FoldKernelFn = void (*)(const void* v, const sel_t* sel, uint32_t n,
                              void* acc);

/// Operand shape of a binary kernel.
enum class OperandMode : uint8_t {
  kVecVec = 0,
  kVecScalar = 1,
  kScalarVec = 2,
};

/// Implementation flavor of selection-vector filters (micro-adaptivity,
/// paper §III-C / [24]): branchless append wins at mid selectivities,
/// branching wins when the branch is predictable (very low/high
/// selectivity).
enum class FilterVariant : uint8_t {
  kBranchless = 0,
  kBranching = 1,
};

/// Registry of every pre-compiled kernel. Process-wide singleton; cheap
/// lookups (flat arrays indexed by enums).
class KernelRegistry {
 public:
  /// Registry for the process-wide active tier (AVM_KERNEL_TIER override,
  /// else the best tier host + build support).
  static const KernelRegistry& Get();

  /// Registry for a specific tier (kAuto = active tier; unsupported requests
  /// clamp down). Each tier's registry is built once on first use: scalar
  /// kernels fill every slot, then the tier's SIMD kernel set overlays the
  /// non-selective slots it provides. Used by parity tests and per-query
  /// tier forcing (InterpreterOptions::kernel_tier).
  static const KernelRegistry& ForTier(KernelTier tier);

  /// The tier this registry was built for.
  KernelTier tier() const { return tier_; }

  /// Element-wise kernel for op over in_type operands.
  /// Comparisons write uint8 (bool) outputs. Null if unsupported combo.
  PrimKernelFn Binary(dsl::ScalarOp op, TypeId in_type, OperandMode mode,
                      bool selective) const;
  PrimKernelFn Unary(dsl::ScalarOp op, TypeId in_type, bool selective) const;
  PrimKernelFn Cast(TypeId from, TypeId to, bool selective) const;

  /// Comparison producing a selection vector (rhs scalar or vector).
  FilterKernelFn Filter(dsl::ScalarOp cmp, TypeId in_type, bool rhs_scalar,
                        bool selective,
                        FilterVariant variant = FilterVariant::kBranchless)
      const;

  /// Selection vector from a uint8 bool vector (the bitmap→selvec step of
  /// the full-compute filter flavor).
  FilterKernelFn BoolToSel(bool selective) const;

  /// fold with op in {add, min, max, mul, and, or}.
  FoldKernelFn Fold(dsl::ScalarOp op, TypeId in_type) const;

  /// data-movement kernels
  PrimKernelFn GatherI64Idx(TypeId value_type, bool selective) const;
  /// scatter value v[i] to base[idx[i]] combining with op
  /// (op == kCast means plain overwrite).
  PrimKernelFn Scatter(dsl::ScalarOp combine, TypeId value_type) const;
  /// condense: out[j] = v[sel[j]]
  PrimKernelFn Condense(TypeId value_type) const;

  /// Total number of registered kernel entry points (reporting/tests).
  size_t NumRegistered() const { return num_registered_; }

 private:
  explicit KernelRegistry(KernelTier tier);

  /// Replace non-selective slots with the tier's SIMD kernels (null SIMD
  /// slots keep the scalar implementation). num_registered_ is unchanged:
  /// it counts distinct kernel slots, not implementations.
  void Overlay(const SimdKernelSet& simd);

  static constexpr size_t kOps = kNumKernelOps;
  static constexpr size_t kTypes = kNumTypes;

  KernelTier tier_ = KernelTier::kScalar;

  PrimKernelFn binary_[kOps][kTypes][3][2] = {};
  PrimKernelFn unary_[kOps][kTypes][2] = {};
  PrimKernelFn cast_[kTypes][kTypes][2] = {};
  FilterKernelFn filter_[kOps][kTypes][2][2][2] = {};
  FilterKernelFn bool_to_sel_[2] = {};
  FoldKernelFn fold_[kOps][kTypes] = {};
  PrimKernelFn gather_[kTypes][2] = {};
  PrimKernelFn scatter_[kOps][kTypes] = {};
  PrimKernelFn condense_[kTypes] = {};
  size_t num_registered_ = 0;
};

}  // namespace avm::interp
