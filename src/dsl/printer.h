// Pretty-printer for DSL programs, emitting the paper's Fig. 2 surface
// syntax. Round-trips with the parser.
#pragma once

#include <string>

#include "dsl/ast.h"

namespace avm::dsl {

std::string PrintExpr(const Expr& e);
std::string PrintStmt(const Stmt& s, int indent = 0);
std::string PrintProgram(const Program& p);

}  // namespace avm::dsl
