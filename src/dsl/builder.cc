#include "dsl/builder.h"

namespace avm::dsl {

Program MakeFigure2Program(int64_t limit) {
  Program p;
  p.data = {{"some_data", TypeId::kI64, false},
            {"v", TypeId::kI64, true},
            {"w", TypeId::kI64, true}};

  auto read = Skeleton(SkeletonKind::kRead, {Var("i"), Var("some_data")});
  auto dbl = Skeleton(SkeletonKind::kMap,
                      {Lambda({"x"}, ConstI(2) * Var("x")), Var("input")});
  auto pos = Skeleton(
      SkeletonKind::kFilter,
      {Lambda({"x"}, Call(ScalarOp::kGt, {Var("x"), ConstI(0)})), Var("a")});
  auto cond = Skeleton(SkeletonKind::kCondense, {Var("t")});

  std::vector<StmtPtr> body;
  body.push_back(Let("input", read));
  body.push_back(Let("a", dbl));
  body.push_back(Let("t", pos));
  body.push_back(Let("b", cond));
  body.push_back(ExprStmt(
      Skeleton(SkeletonKind::kWrite, {Var("v"), Var("i"), Var("a")})));
  body.push_back(ExprStmt(
      Skeleton(SkeletonKind::kWrite, {Var("w"), Var("k"), Var("b")})));
  body.push_back(Assign(
      "i", Var("i") + Skeleton(SkeletonKind::kLen, {Var("a")})));
  body.push_back(Assign(
      "k", Var("k") + Skeleton(SkeletonKind::kLen, {Var("b")})));
  body.push_back(If(Call(ScalarOp::kGe, {Var("i"), ConstI(limit)}),
                    {Break()}));

  p.stmts = {MutDef("i"), MutDef("k"), Assign("i", ConstI(0)),
             Assign("k", ConstI(0)), Loop(std::move(body))};
  p.AssignIds();
  return p;
}

Program MakeMapPipeline(TypeId type, ExprPtr lambda, int64_t limit) {
  Program p;
  p.data = {{"src", type, false}, {"out", type, true}};
  std::vector<StmtPtr> body;
  body.push_back(Let("input",
                     Skeleton(SkeletonKind::kRead, {Var("i"), Var("src")})));
  body.push_back(Let("mapped", Skeleton(SkeletonKind::kMap,
                                        {std::move(lambda), Var("input")})));
  body.push_back(ExprStmt(
      Skeleton(SkeletonKind::kWrite, {Var("out"), Var("i"), Var("mapped")})));
  body.push_back(
      Assign("i", Var("i") + Skeleton(SkeletonKind::kLen, {Var("mapped")})));
  body.push_back(If(Call(ScalarOp::kGe, {Var("i"), ConstI(limit)}),
                    {Break()}));
  p.stmts = {MutDef("i"), Assign("i", ConstI(0)), Loop(std::move(body))};
  p.AssignIds();
  return p;
}

Program MakeFilterPipeline(TypeId type, ExprPtr pred, int64_t limit) {
  Program p;
  p.data = {{"src", type, false}, {"out", type, true}};
  std::vector<StmtPtr> body;
  body.push_back(Let("input",
                     Skeleton(SkeletonKind::kRead, {Var("i"), Var("src")})));
  body.push_back(Let("kept", Skeleton(SkeletonKind::kFilter,
                                      {std::move(pred), Var("input")})));
  body.push_back(Let("dense", Skeleton(SkeletonKind::kCondense, {Var("kept")})));
  body.push_back(ExprStmt(
      Skeleton(SkeletonKind::kWrite, {Var("out"), Var("k"), Var("dense")})));
  body.push_back(
      Assign("i", Var("i") + Skeleton(SkeletonKind::kLen, {Var("input")})));
  body.push_back(
      Assign("k", Var("k") + Skeleton(SkeletonKind::kLen, {Var("dense")})));
  body.push_back(If(Call(ScalarOp::kGe, {Var("i"), ConstI(limit)}),
                    {Break()}));
  p.stmts = {MutDef("i"), MutDef("k"), Assign("i", ConstI(0)),
             Assign("k", ConstI(0)), Loop(std::move(body))};
  p.AssignIds();
  return p;
}

Program MakeSumPipeline(TypeId type, int64_t limit) {
  Program p;
  p.data = {{"src", type, false}, {"out", TypeId::kI64, true}};
  std::vector<StmtPtr> body;
  body.push_back(Let("input",
                     Skeleton(SkeletonKind::kRead, {Var("i"), Var("src")})));
  body.push_back(Let(
      "s", Skeleton(SkeletonKind::kFold,
                    {Lambda({"acc", "x"}, Var("acc") + Var("x")), ConstI(0),
                     Var("input")})));
  body.push_back(Assign("total", Var("total") + Var("s")));
  body.push_back(
      Assign("i", Var("i") + Skeleton(SkeletonKind::kLen, {Var("input")})));
  body.push_back(If(Call(ScalarOp::kGe, {Var("i"), ConstI(limit)}),
                    {Break()}));
  std::vector<StmtPtr> tail;
  // Write the final total to out[0] via a 1-element generated array.
  tail.push_back(Let("result", Skeleton(SkeletonKind::kGen,
                                        {Lambda({"j"}, Var("total")),
                                         ConstI(1)})));
  tail.push_back(ExprStmt(Skeleton(SkeletonKind::kWrite,
                                   {Var("out"), ConstI(0), Var("result")})));
  p.stmts = {MutDef("i"),          MutDef("total"),
             Assign("i", ConstI(0)), Assign("total", ConstI(0)),
             Loop(std::move(body))};
  for (auto& s : tail) p.stmts.push_back(std::move(s));
  p.AssignIds();
  return p;
}

Program MakeHypotPipeline(int64_t limit) {
  Program p;
  p.data = {{"a", TypeId::kF64, false},
            {"b", TypeId::kF64, false},
            {"out", TypeId::kF64, true}};
  // f(a, b) = sqrt(a*a + b*b) — the §III-A normalization example.
  auto lam = Lambda({"x", "y"},
                    Call(ScalarOp::kSqrt,
                         {Var("x") * Var("x") + Var("y") * Var("y")}));
  std::vector<StmtPtr> body;
  body.push_back(Let("va", Skeleton(SkeletonKind::kRead, {Var("i"), Var("a")})));
  body.push_back(Let("vb", Skeleton(SkeletonKind::kRead, {Var("i"), Var("b")})));
  body.push_back(Let("h", Skeleton(SkeletonKind::kMap,
                                   {std::move(lam), Var("va"), Var("vb")})));
  body.push_back(ExprStmt(
      Skeleton(SkeletonKind::kWrite, {Var("out"), Var("i"), Var("h")})));
  body.push_back(
      Assign("i", Var("i") + Skeleton(SkeletonKind::kLen, {Var("h")})));
  body.push_back(If(Call(ScalarOp::kGe, {Var("i"), ConstI(limit)}),
                    {Break()}));
  p.stmts = {MutDef("i"), Assign("i", ConstI(0)), Loop(std::move(body))};
  p.AssignIds();
  return p;
}

}  // namespace avm::dsl
