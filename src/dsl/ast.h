// Abstract syntax of the paper's DSL (Section II).
//
// The language combines data-parallel skeletons (Table I) with expressions,
// control flow (infinite loop, break, if-then-else), mutable variables and
// immutable `let` bindings — enough to express vectorized pipelines such as
// the Fig. 2 example, and to be rewritten between execution strategies.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "storage/types.h"

namespace avm::dsl {

// ---------------------------------------------------------------------------
// Scalar builtins usable inside lambdas and scalar expressions.
// ---------------------------------------------------------------------------
enum class ScalarOp : uint8_t {
  // binary arithmetic
  kAdd, kSub, kMul, kDiv, kMod, kMin, kMax,
  // binary comparison (produce bool)
  kEq, kNe, kLt, kLe, kGt, kGe,
  // binary logic
  kAnd, kOr,
  // unary
  kNot, kNeg, kAbs, kSqrt,
  // unary with type parameter
  kCast,
  // hashing (unary) — used by hash join/aggregation pipelines
  kHash,
};

const char* ScalarOpName(ScalarOp op);
int ScalarOpArity(ScalarOp op);
bool ScalarOpIsComparison(ScalarOp op);

// ---------------------------------------------------------------------------
// Data-parallel skeletons (Table I).
// ---------------------------------------------------------------------------
enum class SkeletonKind : uint8_t {
  kMap,       ///< element-wise f over vectors
  kFilter,    ///< predicate -> selection vector (no physical change)
  kFold,      ///< reduce vector with init + reduction fn
  kRead,      ///< consecutive read from position i of a bound data array
  kWrite,     ///< consecutive write of vector v at location i
  kGather,    ///< read from positions ~i
  kScatter,   ///< write to positions ~i, with conflict-handling fn
  kGen,       ///< fill array with f(index)
  kCondense,  ///< materialize selection away
  kExpand,    ///< fan out: counts[i] copies per selected row (offsets, or a
              ///< second argument's values replicated) — hash-join probe
  kMerge,     ///< abstract merge (join/union/diff of sorted inputs)
  kLen,       ///< scalar length of a vector (flow control helper, Fig. 2)
};

const char* SkeletonName(SkeletonKind k);

/// Variants of the abstract `merge` skeleton.
enum class MergeKind : uint8_t { kJoin, kUnion, kDiff };

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------
struct Expr;
using ExprPtr = std::shared_ptr<Expr>;

enum class ExprKind : uint8_t {
  kConst,     ///< integer or floating literal
  kVarRef,    ///< reference to let-bound / mutable / bound-data variable
  kScalarCall,///< builtin scalar function application
  kLambda,    ///< \x y -> body (only as skeleton argument)
  kSkeleton,  ///< data-parallel skeleton application
};

/// Shape of a value: a scalar, or a (chunk-sized) array. "Scalar values can
/// be seen as arrays with length 1" — we still track the distinction to pick
/// kernels.
enum class Shape : uint8_t { kUnknown = 0, kScalar, kArray };

struct Expr {
  ExprKind kind;
  uint32_t id = 0;  ///< unique within a Program; profiling/trace anchor

  // kConst
  int64_t const_i = 0;
  double const_f = 0;
  bool const_is_float = false;

  // kVarRef
  std::string var;

  // kScalarCall
  ScalarOp op = ScalarOp::kAdd;
  TypeId cast_to = TypeId::kI64;  ///< only for kCast

  // kLambda
  std::vector<std::string> params;
  ExprPtr body;

  // kSkeleton
  SkeletonKind skeleton = SkeletonKind::kMap;
  MergeKind merge_kind = MergeKind::kJoin;

  // kScalarCall/kSkeleton operands
  std::vector<ExprPtr> args;

  // Filled by the type checker.
  Shape shape = Shape::kUnknown;
  TypeId type = TypeId::kI64;
};

ExprPtr ConstI(int64_t v);
ExprPtr ConstF(double v);
ExprPtr Var(const std::string& name);
ExprPtr Call(ScalarOp op, std::vector<ExprPtr> args);
ExprPtr Cast(TypeId to, ExprPtr arg);
ExprPtr Lambda(std::vector<std::string> params, ExprPtr body);
ExprPtr Skeleton(SkeletonKind k, std::vector<ExprPtr> args);
ExprPtr Merge(MergeKind mk, std::vector<ExprPtr> args);

// Convenience infix builders.
inline ExprPtr operator+(ExprPtr a, ExprPtr b) { return Call(ScalarOp::kAdd, {a, b}); }
inline ExprPtr operator-(ExprPtr a, ExprPtr b) { return Call(ScalarOp::kSub, {a, b}); }
inline ExprPtr operator*(ExprPtr a, ExprPtr b) { return Call(ScalarOp::kMul, {a, b}); }
inline ExprPtr operator/(ExprPtr a, ExprPtr b) { return Call(ScalarOp::kDiv, {a, b}); }
inline ExprPtr operator<(ExprPtr a, ExprPtr b) { return Call(ScalarOp::kLt, {a, b}); }
inline ExprPtr operator<=(ExprPtr a, ExprPtr b) { return Call(ScalarOp::kLe, {a, b}); }
inline ExprPtr operator>(ExprPtr a, ExprPtr b) { return Call(ScalarOp::kGt, {a, b}); }
inline ExprPtr operator>=(ExprPtr a, ExprPtr b) { return Call(ScalarOp::kGe, {a, b}); }
// Equality and boolean combination stay NAMED on purpose: overloading
// ==/!=/&&/|| on a shared_ptr alias would hijack pointer comparisons and
// null-checks (`if (a && b)`) into silently-true AST construction. The
// relational operators above accept the same hazard for pointer *ordering*
// (rare in practice) in exchange for readable predicates — never compare
// two ExprPtrs with </<=/>/>= expecting pointer order; use .get().
inline ExprPtr Eq(ExprPtr a, ExprPtr b) { return Call(ScalarOp::kEq, {a, b}); }
inline ExprPtr Ne(ExprPtr a, ExprPtr b) { return Call(ScalarOp::kNe, {a, b}); }
inline ExprPtr And(ExprPtr a, ExprPtr b) { return Call(ScalarOp::kAnd, {a, b}); }
inline ExprPtr Or(ExprPtr a, ExprPtr b) { return Call(ScalarOp::kOr, {a, b}); }

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------
struct Stmt;
using StmtPtr = std::shared_ptr<Stmt>;

enum class StmtKind : uint8_t {
  kMutDef,   ///< mut x        — define a mutable scalar variable
  kAssign,   ///< x := e       — update a mutable variable
  kLet,      ///< let x = e    — immutable binding for the rest of the block
  kLoop,     ///< loop <block> — infinite loop
  kBreak,    ///< break
  kIf,       ///< if e then <block> [else <block>]
  kExpr,     ///< expression for effect (write/scatter)
};

struct Stmt {
  StmtKind kind;
  uint32_t id = 0;

  std::string var;                // kMutDef / kAssign / kLet
  ExprPtr expr;                   // kAssign / kLet / kIf cond / kExpr
  std::vector<StmtPtr> body;      // kLoop / kIf then
  std::vector<StmtPtr> else_body; // kIf else
};

StmtPtr MutDef(const std::string& name);
StmtPtr Assign(const std::string& name, ExprPtr e);
StmtPtr Let(const std::string& name, ExprPtr e);
StmtPtr Loop(std::vector<StmtPtr> body);
StmtPtr Break();
StmtPtr If(ExprPtr cond, std::vector<StmtPtr> then_body,
           std::vector<StmtPtr> else_body = {});
StmtPtr ExprStmt(ExprPtr e);

// ---------------------------------------------------------------------------
// Program
// ---------------------------------------------------------------------------

/// Declaration of an external array the program reads or writes
/// ("some_data", "v", "w" in Fig. 2). The host binds storage at run time.
struct DataDecl {
  std::string name;
  TypeId type = TypeId::kI64;
  bool writable = false;
};

struct Program {
  std::vector<DataDecl> data;
  std::vector<StmtPtr> stmts;

  /// Assign fresh ids to every node (pre-order); returns node count.
  uint32_t AssignIds();

  DataDecl* FindData(const std::string& name);
  const DataDecl* FindData(const std::string& name) const;
};

/// Deep structural equality (ignores ids and type annotations).
bool ExprEquals(const Expr& a, const Expr& b);
bool StmtEquals(const Stmt& a, const Stmt& b);
bool ProgramEquals(const Program& a, const Program& b);

/// Visit every expression in the program (pre-order).
void VisitExprs(const Program& p, const std::function<void(const ExprPtr&)>& fn);
void VisitStmts(const Program& p, const std::function<void(const StmtPtr&)>& fn);

}  // namespace avm::dsl
