#include "dsl/printer.h"

#include <sstream>

#include "util/string_util.h"

namespace avm::dsl {

namespace {

const char* InfixSymbol(ScalarOp op) {
  switch (op) {
    case ScalarOp::kAdd: return "+";
    case ScalarOp::kSub: return "-";
    case ScalarOp::kMul: return "*";
    case ScalarOp::kDiv: return "/";
    case ScalarOp::kMod: return "%";
    case ScalarOp::kEq: return "==";
    case ScalarOp::kNe: return "!=";
    case ScalarOp::kLt: return "<";
    case ScalarOp::kLe: return "<=";
    case ScalarOp::kGt: return ">";
    case ScalarOp::kGe: return ">=";
    case ScalarOp::kAnd: return "and";
    case ScalarOp::kOr: return "or";
    default: return nullptr;
  }
}

void PrintExprTo(const Expr& e, std::ostream& os);

void PrintAtom(const Expr& e, std::ostream& os) {
  // Parenthesize anything that is not a leaf, keeping output unambiguous.
  bool leaf = e.kind == ExprKind::kConst || e.kind == ExprKind::kVarRef;
  if (leaf) {
    PrintExprTo(e, os);
  } else {
    os << "(";
    PrintExprTo(e, os);
    os << ")";
  }
}

void PrintExprTo(const Expr& e, std::ostream& os) {
  switch (e.kind) {
    case ExprKind::kConst:
      if (e.const_is_float) {
        std::string s = StrFormat("%.17g", e.const_f);
        // Ensure it re-parses as a float literal.
        if (s.find('.') == std::string::npos &&
            s.find('e') == std::string::npos) {
          s += ".0";
        }
        os << s;
      } else {
        os << e.const_i;
      }
      break;
    case ExprKind::kVarRef:
      os << e.var;
      break;
    case ExprKind::kScalarCall: {
      const char* sym = InfixSymbol(e.op);
      if (sym != nullptr && e.args.size() == 2) {
        PrintAtom(*e.args[0], os);
        os << " " << sym << " ";
        PrintAtom(*e.args[1], os);
        break;
      }
      if (e.op == ScalarOp::kCast) {
        os << "cast_" << TypeName(e.cast_to);
      } else {
        os << ScalarOpName(e.op);
      }
      for (const auto& a : e.args) {
        os << " ";
        PrintAtom(*a, os);
      }
      break;
    }
    case ExprKind::kLambda: {
      os << "\\";
      for (size_t i = 0; i < e.params.size(); ++i) {
        if (i != 0) os << " ";
        os << e.params[i];
      }
      os << " -> ";
      PrintExprTo(*e.body, os);
      break;
    }
    case ExprKind::kSkeleton: {
      if (e.skeleton == SkeletonKind::kMerge) {
        switch (e.merge_kind) {
          case MergeKind::kJoin: os << "merge_join"; break;
          case MergeKind::kUnion: os << "merge_union"; break;
          case MergeKind::kDiff: os << "merge_diff"; break;
        }
      } else {
        os << SkeletonName(e.skeleton);
      }
      for (const auto& a : e.args) {
        os << " ";
        PrintAtom(*a, os);
      }
      break;
    }
  }
}

void PrintStmtTo(const Stmt& s, int indent, std::ostream& os) {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  switch (s.kind) {
    case StmtKind::kMutDef:
      os << pad << "mut " << s.var << "\n";
      break;
    case StmtKind::kAssign:
      os << pad << s.var << " := ";
      PrintExprTo(*s.expr, os);
      os << "\n";
      break;
    case StmtKind::kLet:
      os << pad << "let " << s.var << " = ";
      PrintExprTo(*s.expr, os);
      os << " in\n";
      break;
    case StmtKind::kLoop:
      os << pad << "loop\n";
      for (const auto& c : s.body) PrintStmtTo(*c, indent + 1, os);
      break;
    case StmtKind::kBreak:
      os << pad << "break\n";
      break;
    case StmtKind::kIf:
      os << pad << "if ";
      PrintExprTo(*s.expr, os);
      os << " then\n";
      for (const auto& c : s.body) PrintStmtTo(*c, indent + 1, os);
      if (!s.else_body.empty()) {
        os << pad << "else\n";
        for (const auto& c : s.else_body) PrintStmtTo(*c, indent + 1, os);
      }
      break;
    case StmtKind::kExpr:
      os << pad;
      PrintExprTo(*s.expr, os);
      os << "\n";
      break;
  }
}

}  // namespace

std::string PrintExpr(const Expr& e) {
  std::ostringstream os;
  PrintExprTo(e, os);
  return os.str();
}

std::string PrintStmt(const Stmt& s, int indent) {
  std::ostringstream os;
  PrintStmtTo(s, indent, os);
  return os.str();
}

std::string PrintProgram(const Program& p) {
  std::ostringstream os;
  for (const auto& d : p.data) {
    os << "data " << d.name << " : " << TypeName(d.type);
    if (d.writable) os << " writable";
    os << "\n";
  }
  for (const auto& s : p.stmts) PrintStmtTo(*s, 0, os);
  return os.str();
}

}  // namespace avm::dsl
