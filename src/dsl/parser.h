// Parser for the DSL surface syntax (the paper's Fig. 2 style):
//
//   data some_data : i64
//   data v : i64 writable
//   mut i
//   i := 0
//   loop
//     let input = read i some_data in
//     let a = map (\x -> 2*x) input in
//     write v i a
//     i := i + len(a)
//     if i >= 4096 then
//       break
//
// Blocks are indentation-delimited (spaces; a tab counts as 8). `in` after a
// let binding is optional. Comments start with '#'.
#pragma once

#include <string>

#include "dsl/ast.h"
#include "util/status.h"

namespace avm::dsl {

/// Parse a full program. Errors carry line/column context.
Result<Program> ParseProgram(const std::string& source);

/// Parse a single expression (testing convenience).
Result<ExprPtr> ParseExpr(const std::string& source);

}  // namespace avm::dsl
