#include "dsl/ast.h"

namespace avm::dsl {

const char* ScalarOpName(ScalarOp op) {
  switch (op) {
    case ScalarOp::kAdd: return "add";
    case ScalarOp::kSub: return "sub";
    case ScalarOp::kMul: return "mul";
    case ScalarOp::kDiv: return "div";
    case ScalarOp::kMod: return "mod";
    case ScalarOp::kMin: return "min";
    case ScalarOp::kMax: return "max";
    case ScalarOp::kEq: return "eq";
    case ScalarOp::kNe: return "ne";
    case ScalarOp::kLt: return "lt";
    case ScalarOp::kLe: return "le";
    case ScalarOp::kGt: return "gt";
    case ScalarOp::kGe: return "ge";
    case ScalarOp::kAnd: return "and";
    case ScalarOp::kOr: return "or";
    case ScalarOp::kNot: return "not";
    case ScalarOp::kNeg: return "neg";
    case ScalarOp::kAbs: return "abs";
    case ScalarOp::kSqrt: return "sqrt";
    case ScalarOp::kCast: return "cast";
    case ScalarOp::kHash: return "hash";
  }
  return "?";
}

int ScalarOpArity(ScalarOp op) {
  switch (op) {
    case ScalarOp::kNot:
    case ScalarOp::kNeg:
    case ScalarOp::kAbs:
    case ScalarOp::kSqrt:
    case ScalarOp::kCast:
    case ScalarOp::kHash:
      return 1;
    default:
      return 2;
  }
}

bool ScalarOpIsComparison(ScalarOp op) {
  switch (op) {
    case ScalarOp::kEq:
    case ScalarOp::kNe:
    case ScalarOp::kLt:
    case ScalarOp::kLe:
    case ScalarOp::kGt:
    case ScalarOp::kGe:
      return true;
    default:
      return false;
  }
}

const char* SkeletonName(SkeletonKind k) {
  switch (k) {
    case SkeletonKind::kMap: return "map";
    case SkeletonKind::kFilter: return "filter";
    case SkeletonKind::kFold: return "fold";
    case SkeletonKind::kRead: return "read";
    case SkeletonKind::kWrite: return "write";
    case SkeletonKind::kGather: return "gather";
    case SkeletonKind::kScatter: return "scatter";
    case SkeletonKind::kGen: return "gen";
    case SkeletonKind::kCondense: return "condense";
    case SkeletonKind::kExpand: return "expand";
    case SkeletonKind::kMerge: return "merge";
    case SkeletonKind::kLen: return "len";
  }
  return "?";
}

ExprPtr ConstI(int64_t v) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kConst;
  e->const_i = v;
  return e;
}

ExprPtr ConstF(double v) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kConst;
  e->const_f = v;
  e->const_is_float = true;
  return e;
}

ExprPtr Var(const std::string& name) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kVarRef;
  e->var = name;
  return e;
}

ExprPtr Call(ScalarOp op, std::vector<ExprPtr> args) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kScalarCall;
  e->op = op;
  e->args = std::move(args);
  return e;
}

ExprPtr Cast(TypeId to, ExprPtr arg) {
  auto e = Call(ScalarOp::kCast, {std::move(arg)});
  e->cast_to = to;
  return e;
}

ExprPtr Lambda(std::vector<std::string> params, ExprPtr body) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kLambda;
  e->params = std::move(params);
  e->body = std::move(body);
  return e;
}

ExprPtr Skeleton(SkeletonKind k, std::vector<ExprPtr> args) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kSkeleton;
  e->skeleton = k;
  e->args = std::move(args);
  return e;
}

ExprPtr Merge(MergeKind mk, std::vector<ExprPtr> args) {
  auto e = Skeleton(SkeletonKind::kMerge, std::move(args));
  e->merge_kind = mk;
  return e;
}

StmtPtr MutDef(const std::string& name) {
  auto s = std::make_shared<Stmt>();
  s->kind = StmtKind::kMutDef;
  s->var = name;
  return s;
}

StmtPtr Assign(const std::string& name, ExprPtr e) {
  auto s = std::make_shared<Stmt>();
  s->kind = StmtKind::kAssign;
  s->var = name;
  s->expr = std::move(e);
  return s;
}

StmtPtr Let(const std::string& name, ExprPtr e) {
  auto s = std::make_shared<Stmt>();
  s->kind = StmtKind::kLet;
  s->var = name;
  s->expr = std::move(e);
  return s;
}

StmtPtr Loop(std::vector<StmtPtr> body) {
  auto s = std::make_shared<Stmt>();
  s->kind = StmtKind::kLoop;
  s->body = std::move(body);
  return s;
}

StmtPtr Break() {
  auto s = std::make_shared<Stmt>();
  s->kind = StmtKind::kBreak;
  return s;
}

StmtPtr If(ExprPtr cond, std::vector<StmtPtr> then_body,
           std::vector<StmtPtr> else_body) {
  auto s = std::make_shared<Stmt>();
  s->kind = StmtKind::kIf;
  s->expr = std::move(cond);
  s->body = std::move(then_body);
  s->else_body = std::move(else_body);
  return s;
}

StmtPtr ExprStmt(ExprPtr e) {
  auto s = std::make_shared<Stmt>();
  s->kind = StmtKind::kExpr;
  s->expr = std::move(e);
  return s;
}

namespace {

void AssignExprIds(const ExprPtr& e, uint32_t* next) {
  if (e == nullptr) return;
  e->id = (*next)++;
  if (e->body) AssignExprIds(e->body, next);
  for (const auto& a : e->args) AssignExprIds(a, next);
}

void AssignStmtIds(const StmtPtr& s, uint32_t* next) {
  if (s == nullptr) return;
  s->id = (*next)++;
  if (s->expr) AssignExprIds(s->expr, next);
  for (const auto& c : s->body) AssignStmtIds(c, next);
  for (const auto& c : s->else_body) AssignStmtIds(c, next);
}

void VisitExpr(const ExprPtr& e, const std::function<void(const ExprPtr&)>& fn) {
  if (e == nullptr) return;
  fn(e);
  if (e->body) VisitExpr(e->body, fn);
  for (const auto& a : e->args) VisitExpr(a, fn);
}

void VisitStmt(const StmtPtr& s, const std::function<void(const StmtPtr&)>& sfn,
               const std::function<void(const ExprPtr&)>& efn) {
  if (s == nullptr) return;
  if (sfn) sfn(s);
  if (s->expr && efn) VisitExpr(s->expr, efn);
  for (const auto& c : s->body) VisitStmt(c, sfn, efn);
  for (const auto& c : s->else_body) VisitStmt(c, sfn, efn);
}

}  // namespace

uint32_t Program::AssignIds() {
  uint32_t next = 1;
  for (const auto& s : stmts) AssignStmtIds(s, &next);
  return next;
}

DataDecl* Program::FindData(const std::string& name) {
  for (auto& d : data) {
    if (d.name == name) return &d;
  }
  return nullptr;
}

const DataDecl* Program::FindData(const std::string& name) const {
  return const_cast<Program*>(this)->FindData(name);
}

bool ExprEquals(const Expr& a, const Expr& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case ExprKind::kConst:
      if (a.const_is_float != b.const_is_float) return false;
      return a.const_is_float ? a.const_f == b.const_f
                              : a.const_i == b.const_i;
    case ExprKind::kVarRef:
      return a.var == b.var;
    case ExprKind::kScalarCall:
      if (a.op != b.op) return false;
      if (a.op == ScalarOp::kCast && a.cast_to != b.cast_to) return false;
      break;
    case ExprKind::kLambda:
      if (a.params != b.params) return false;
      if ((a.body == nullptr) != (b.body == nullptr)) return false;
      if (a.body && !ExprEquals(*a.body, *b.body)) return false;
      return true;
    case ExprKind::kSkeleton:
      if (a.skeleton != b.skeleton) return false;
      if (a.skeleton == SkeletonKind::kMerge && a.merge_kind != b.merge_kind) {
        return false;
      }
      break;
  }
  if (a.args.size() != b.args.size()) return false;
  for (size_t i = 0; i < a.args.size(); ++i) {
    if (!ExprEquals(*a.args[i], *b.args[i])) return false;
  }
  return true;
}

bool StmtEquals(const Stmt& a, const Stmt& b) {
  if (a.kind != b.kind || a.var != b.var) return false;
  if ((a.expr == nullptr) != (b.expr == nullptr)) return false;
  if (a.expr && !ExprEquals(*a.expr, *b.expr)) return false;
  auto blocks_equal = [](const std::vector<StmtPtr>& x,
                         const std::vector<StmtPtr>& y) {
    if (x.size() != y.size()) return false;
    for (size_t i = 0; i < x.size(); ++i) {
      if (!StmtEquals(*x[i], *y[i])) return false;
    }
    return true;
  };
  return blocks_equal(a.body, b.body) &&
         blocks_equal(a.else_body, b.else_body);
}

bool ProgramEquals(const Program& a, const Program& b) {
  if (a.data.size() != b.data.size()) return false;
  for (size_t i = 0; i < a.data.size(); ++i) {
    if (a.data[i].name != b.data[i].name || a.data[i].type != b.data[i].type ||
        a.data[i].writable != b.data[i].writable) {
      return false;
    }
  }
  if (a.stmts.size() != b.stmts.size()) return false;
  for (size_t i = 0; i < a.stmts.size(); ++i) {
    if (!StmtEquals(*a.stmts[i], *b.stmts[i])) return false;
  }
  return true;
}

void VisitExprs(const Program& p,
                const std::function<void(const ExprPtr&)>& fn) {
  for (const auto& s : p.stmts) VisitStmt(s, nullptr, fn);
}

void VisitStmts(const Program& p,
                const std::function<void(const StmtPtr&)>& fn) {
  for (const auto& s : p.stmts) VisitStmt(s, fn, nullptr);
}

}  // namespace avm::dsl
