// Convenience builders for common DSL program shapes, including the paper's
// Fig. 2 example. Front-ends (the relational layer, tests, examples) use
// these instead of hand-assembling ASTs.
#pragma once

#include <string>
#include <vector>

#include "dsl/ast.h"

namespace avm::dsl {

/// The exact program of the paper's Figure 2:
///
///   mut i; mut k; i := 0; k := 0
///   loop
///     let input = read i some_data in
///     let a = map (\x -> 2*x) input in
///     let t = filter (\x -> x > 0) a in
///     let b = condense t
///     write v i a
///     write w k b
///     i := i + len(a)
///     k := k + len(b)
///     if i >= limit then break
///
/// Reads `some_data : i64`, writes doubled values to `v` and the positive
/// doubled values (condensed) to `w`.
Program MakeFigure2Program(int64_t limit = 4096);

/// A scan→map→write pipeline: out[i] = f(in[i]) where f is the given lambda
/// over one variable, processing `limit` input values.
Program MakeMapPipeline(TypeId type, ExprPtr lambda, int64_t limit);

/// A scan→filter→condense→write pipeline with predicate `pred` (lambda).
Program MakeFilterPipeline(TypeId type, ExprPtr pred, int64_t limit);

/// A scan→fold (sum) reduction into mutable `total`, written to out[0].
Program MakeSumPipeline(TypeId type, int64_t limit);

/// The paper's Section III-A normalization example as a pipeline:
/// out[i] = sqrt(a[i]^2 + b[i]^2).
Program MakeHypotPipeline(int64_t limit);

}  // namespace avm::dsl
