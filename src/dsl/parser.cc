#include "dsl/parser.h"

#include <cctype>
#include <optional>
#include <unordered_map>
#include <vector>

#include "util/string_util.h"

namespace avm::dsl {

namespace {

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

enum class Tok : uint8_t {
  kName, kInt, kFloat,
  kAssign,   // :=
  kEquals,   // =
  kArrow,    // ->
  kBackslash,
  kLParen, kRParen, kComma, kColon,
  kPlus, kMinus, kStar, kSlash, kPercent,
  kEqEq, kNe, kLt, kLe, kGt, kGe,
  kNewline, kIndent, kDedent, kEnd,
};

struct Token {
  Tok kind;
  std::string text;
  int64_t int_val = 0;
  double float_val = 0;
  int line = 0;
  int col = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& src) : src_(src) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> out;
    indents_.push_back(0);
    size_t pos = 0;
    int line_no = 0;
    while (pos < src_.size()) {
      size_t eol = src_.find('\n', pos);
      if (eol == std::string::npos) eol = src_.size();
      std::string line = src_.substr(pos, eol - pos);
      ++line_no;
      AVM_RETURN_NOT_OK(LexLine(line, line_no, &out));
      pos = eol + 1;
    }
    // Close all open blocks.
    while (indents_.back() > 0) {
      indents_.pop_back();
      out.push_back({Tok::kDedent, "", 0, 0, line_no, 0});
    }
    out.push_back({Tok::kEnd, "", 0, 0, line_no, 0});
    return out;
  }

 private:
  Status LexLine(const std::string& line, int line_no,
                 std::vector<Token>* out) {
    // Measure indentation; skip blank/comment-only lines entirely.
    int indent = 0;
    size_t i = 0;
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) {
      indent += line[i] == '\t' ? 8 : 1;
      ++i;
    }
    bool blank = true;
    for (size_t j = i; j < line.size(); ++j) {
      if (line[j] == '#') break;
      if (!std::isspace(static_cast<unsigned char>(line[j]))) {
        blank = false;
        break;
      }
    }
    if (blank) return Status::OK();

    if (indent > indents_.back()) {
      indents_.push_back(indent);
      out->push_back({Tok::kIndent, "", 0, 0, line_no, 0});
    } else {
      while (indent < indents_.back()) {
        indents_.pop_back();
        out->push_back({Tok::kDedent, "", 0, 0, line_no, 0});
      }
      if (indent != indents_.back()) {
        return Status::InvalidArgument(
            StrFormat("line %d: inconsistent indentation", line_no));
      }
    }

    while (i < line.size()) {
      char c = line[i];
      if (c == ' ' || c == '\t') {
        ++i;
        continue;
      }
      if (c == '#') break;
      int col = static_cast<int>(i) + 1;
      auto push = [&](Tok k, std::string text, size_t adv) {
        out->push_back({k, std::move(text), 0, 0, line_no, col});
        i += adv;
      };
      if (std::isdigit(static_cast<unsigned char>(c))) {
        size_t j = i;
        bool is_float = false;
        while (j < line.size() &&
               (std::isdigit(static_cast<unsigned char>(line[j])) ||
                line[j] == '.' || line[j] == 'e' || line[j] == 'E' ||
                ((line[j] == '+' || line[j] == '-') && j > i &&
                 (line[j - 1] == 'e' || line[j - 1] == 'E')))) {
          if (line[j] == '.' || line[j] == 'e' || line[j] == 'E') {
            is_float = true;
          }
          ++j;
        }
        std::string text = line.substr(i, j - i);
        Token t{is_float ? Tok::kFloat : Tok::kInt, text, 0, 0, line_no, col};
        if (is_float) {
          t.float_val = std::strtod(text.c_str(), nullptr);
        } else {
          t.int_val = std::strtoll(text.c_str(), nullptr, 10);
        }
        out->push_back(std::move(t));
        i = j;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t j = i;
        while (j < line.size() &&
               (std::isalnum(static_cast<unsigned char>(line[j])) ||
                line[j] == '_')) {
          ++j;
        }
        out->push_back(
            {Tok::kName, line.substr(i, j - i), 0, 0, line_no, col});
        i = j;
        continue;
      }
      switch (c) {
        case '(': push(Tok::kLParen, "(", 1); continue;
        case ')': push(Tok::kRParen, ")", 1); continue;
        case ',': push(Tok::kComma, ",", 1); continue;
        case '\\': push(Tok::kBackslash, "\\", 1); continue;
        case '+': push(Tok::kPlus, "+", 1); continue;
        case '*': push(Tok::kStar, "*", 1); continue;
        case '/': push(Tok::kSlash, "/", 1); continue;
        case '%': push(Tok::kPercent, "%", 1); continue;
        case '-':
          if (i + 1 < line.size() && line[i + 1] == '>') {
            push(Tok::kArrow, "->", 2);
          } else {
            push(Tok::kMinus, "-", 1);
          }
          continue;
        case ':':
          if (i + 1 < line.size() && line[i + 1] == '=') {
            push(Tok::kAssign, ":=", 2);
          } else {
            push(Tok::kColon, ":", 1);
          }
          continue;
        case '=':
          if (i + 1 < line.size() && line[i + 1] == '=') {
            push(Tok::kEqEq, "==", 2);
          } else {
            push(Tok::kEquals, "=", 1);
          }
          continue;
        case '!':
          if (i + 1 < line.size() && line[i + 1] == '=') {
            push(Tok::kNe, "!=", 2);
            continue;
          }
          return Status::InvalidArgument(
              StrFormat("line %d col %d: unexpected '!'", line_no, col));
        case '<':
          if (i + 1 < line.size() && line[i + 1] == '=') {
            push(Tok::kLe, "<=", 2);
          } else {
            push(Tok::kLt, "<", 1);
          }
          continue;
        case '>':
          if (i + 1 < line.size() && line[i + 1] == '=') {
            push(Tok::kGe, ">=", 2);
          } else {
            push(Tok::kGt, ">", 1);
          }
          continue;
        default:
          return Status::InvalidArgument(
              StrFormat("line %d col %d: unexpected character '%c'", line_no,
                        col, c));
      }
    }
    out->push_back({Tok::kNewline, "", 0, 0, line_no, 0});
    return Status::OK();
  }

  const std::string& src_;
  std::vector<int> indents_;
};

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

const std::unordered_map<std::string, SkeletonKind>& SkeletonNames() {
  static const auto* m = new std::unordered_map<std::string, SkeletonKind>{
      {"map", SkeletonKind::kMap},         {"filter", SkeletonKind::kFilter},
      {"fold", SkeletonKind::kFold},       {"read", SkeletonKind::kRead},
      {"write", SkeletonKind::kWrite},     {"gather", SkeletonKind::kGather},
      {"scatter", SkeletonKind::kScatter}, {"gen", SkeletonKind::kGen},
      {"condense", SkeletonKind::kCondense}, {"len", SkeletonKind::kLen},
      {"expand", SkeletonKind::kExpand},
  };
  return *m;
}

const std::unordered_map<std::string, ScalarOp>& BuiltinNames() {
  static const auto* m = new std::unordered_map<std::string, ScalarOp>{
      {"add", ScalarOp::kAdd}, {"sub", ScalarOp::kSub},
      {"mul", ScalarOp::kMul}, {"div", ScalarOp::kDiv},
      {"mod", ScalarOp::kMod}, {"min", ScalarOp::kMin},
      {"max", ScalarOp::kMax}, {"abs", ScalarOp::kAbs},
      {"sqrt", ScalarOp::kSqrt}, {"hash", ScalarOp::kHash},
      {"not", ScalarOp::kNot}, {"neg", ScalarOp::kNeg},
  };
  return *m;
}

std::optional<TypeId> ParseTypeName(const std::string& s) {
  if (s == "bool") return TypeId::kBool;
  if (s == "i8") return TypeId::kI8;
  if (s == "i16") return TypeId::kI16;
  if (s == "i32") return TypeId::kI32;
  if (s == "i64") return TypeId::kI64;
  if (s == "f32") return TypeId::kF32;
  if (s == "f64") return TypeId::kF64;
  return std::nullopt;
}

bool IsKeyword(const std::string& s) {
  return s == "mut" || s == "let" || s == "in" || s == "loop" ||
         s == "break" || s == "if" || s == "then" || s == "else" ||
         s == "data" || s == "writable" || s == "and" || s == "or";
}

class Parser {
 public:
  explicit Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

  Result<Program> ParseProgram() {
    Program p;
    while (!At(Tok::kEnd)) {
      if (At(Tok::kNewline)) {
        Advance();
        continue;
      }
      if (AtName("data")) {
        AVM_RETURN_NOT_OK(ParseDataDecl(&p));
        continue;
      }
      AVM_ASSIGN_OR_RETURN(StmtPtr s, ParseStmt());
      p.stmts.push_back(std::move(s));
    }
    p.AssignIds();
    return p;
  }

  Result<ExprPtr> ParseSingleExpr() {
    AVM_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    return e;
  }

 private:
  const Token& Peek() const { return toks_[pos_]; }
  bool At(Tok k) const { return Peek().kind == k; }
  bool AtName(const char* n) const {
    return At(Tok::kName) && Peek().text == n;
  }
  const Token& Advance() { return toks_[pos_++]; }

  Status Expect(Tok k, const char* what) {
    if (!At(k)) {
      return Status::InvalidArgument(
          StrFormat("line %d: expected %s, got '%s'", Peek().line, what,
                    Peek().text.c_str()));
    }
    Advance();
    return Status::OK();
  }

  Status ExpectKeyword(const char* kw) {
    if (!AtName(kw)) {
      return Status::InvalidArgument(StrFormat(
          "line %d: expected '%s'", Peek().line, kw));
    }
    Advance();
    return Status::OK();
  }

  Status ParseDataDecl(Program* p) {
    Advance();  // data
    if (!At(Tok::kName)) {
      return Status::InvalidArgument(
          StrFormat("line %d: expected data name", Peek().line));
    }
    DataDecl d;
    d.name = Advance().text;
    AVM_RETURN_NOT_OK(Expect(Tok::kColon, "':'"));
    if (!At(Tok::kName)) {
      return Status::InvalidArgument(
          StrFormat("line %d: expected type name", Peek().line));
    }
    auto ty = ParseTypeName(Peek().text);
    if (!ty.has_value()) {
      return Status::InvalidArgument(StrFormat(
          "line %d: unknown type '%s'", Peek().line, Peek().text.c_str()));
    }
    Advance();
    d.type = *ty;
    if (AtName("writable")) {
      d.writable = true;
      Advance();
    }
    AVM_RETURN_NOT_OK(Expect(Tok::kNewline, "end of line"));
    p->data.push_back(std::move(d));
    return Status::OK();
  }

  Result<std::vector<StmtPtr>> ParseBlock() {
    AVM_RETURN_NOT_OK(Expect(Tok::kNewline, "end of line"));
    AVM_RETURN_NOT_OK(Expect(Tok::kIndent, "indented block"));
    std::vector<StmtPtr> body;
    while (!At(Tok::kDedent) && !At(Tok::kEnd)) {
      if (At(Tok::kNewline)) {
        Advance();
        continue;
      }
      AVM_ASSIGN_OR_RETURN(StmtPtr s, ParseStmt());
      body.push_back(std::move(s));
    }
    if (At(Tok::kDedent)) Advance();
    return body;
  }

  Result<StmtPtr> ParseStmt() {
    if (AtName("mut")) {
      Advance();
      if (!At(Tok::kName)) {
        return Status::InvalidArgument(
            StrFormat("line %d: expected variable after 'mut'", Peek().line));
      }
      std::string name = Advance().text;
      AVM_RETURN_NOT_OK(Expect(Tok::kNewline, "end of line"));
      return MutDef(name);
    }
    if (AtName("let")) {
      Advance();
      if (!At(Tok::kName)) {
        return Status::InvalidArgument(
            StrFormat("line %d: expected variable after 'let'", Peek().line));
      }
      std::string name = Advance().text;
      AVM_RETURN_NOT_OK(Expect(Tok::kEquals, "'='"));
      AVM_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      if (AtName("in")) Advance();
      AVM_RETURN_NOT_OK(Expect(Tok::kNewline, "end of line"));
      return Let(name, std::move(e));
    }
    if (AtName("loop")) {
      Advance();
      AVM_ASSIGN_OR_RETURN(std::vector<StmtPtr> body, ParseBlock());
      return Loop(std::move(body));
    }
    if (AtName("break")) {
      Advance();
      AVM_RETURN_NOT_OK(Expect(Tok::kNewline, "end of line"));
      return Break();
    }
    if (AtName("if")) {
      Advance();
      AVM_ASSIGN_OR_RETURN(ExprPtr cond, ParseExpr());
      AVM_RETURN_NOT_OK(ExpectKeyword("then"));
      AVM_ASSIGN_OR_RETURN(std::vector<StmtPtr> then_body, ParseBlock());
      std::vector<StmtPtr> else_body;
      if (AtName("else")) {
        Advance();
        AVM_ASSIGN_OR_RETURN(else_body, ParseBlock());
      }
      return If(std::move(cond), std::move(then_body), std::move(else_body));
    }
    // Assignment `x := e` or expression statement.
    if (At(Tok::kName) && pos_ + 1 < toks_.size() &&
        toks_[pos_ + 1].kind == Tok::kAssign && !IsKeyword(Peek().text)) {
      std::string name = Advance().text;
      Advance();  // :=
      AVM_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      AVM_RETURN_NOT_OK(Expect(Tok::kNewline, "end of line"));
      return Assign(name, std::move(e));
    }
    AVM_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    AVM_RETURN_NOT_OK(Expect(Tok::kNewline, "end of line"));
    return ExprStmt(std::move(e));
  }

  // expr := or-chain of and-chains of comparisons of additive of
  //         multiplicative of application of atoms.
  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    AVM_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (AtName("or")) {
      Advance();
      AVM_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = Call(ScalarOp::kOr, {lhs, rhs});
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    AVM_ASSIGN_OR_RETURN(ExprPtr lhs, ParseCmp());
    while (AtName("and")) {
      Advance();
      AVM_ASSIGN_OR_RETURN(ExprPtr rhs, ParseCmp());
      lhs = Call(ScalarOp::kAnd, {lhs, rhs});
    }
    return lhs;
  }

  Result<ExprPtr> ParseCmp() {
    AVM_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdd());
    ScalarOp op;
    switch (Peek().kind) {
      case Tok::kEqEq: op = ScalarOp::kEq; break;
      case Tok::kNe: op = ScalarOp::kNe; break;
      case Tok::kLt: op = ScalarOp::kLt; break;
      case Tok::kLe: op = ScalarOp::kLe; break;
      case Tok::kGt: op = ScalarOp::kGt; break;
      case Tok::kGe: op = ScalarOp::kGe; break;
      default: return lhs;
    }
    Advance();
    AVM_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdd());
    return Call(op, {lhs, rhs});
  }

  Result<ExprPtr> ParseAdd() {
    AVM_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMul());
    while (At(Tok::kPlus) || At(Tok::kMinus)) {
      ScalarOp op = At(Tok::kPlus) ? ScalarOp::kAdd : ScalarOp::kSub;
      Advance();
      AVM_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMul());
      lhs = Call(op, {lhs, rhs});
    }
    return lhs;
  }

  Result<ExprPtr> ParseMul() {
    AVM_ASSIGN_OR_RETURN(ExprPtr lhs, ParseApp());
    while (At(Tok::kStar) || At(Tok::kSlash) || At(Tok::kPercent)) {
      ScalarOp op = At(Tok::kStar) ? ScalarOp::kMul
                    : At(Tok::kSlash) ? ScalarOp::kDiv
                                      : ScalarOp::kMod;
      Advance();
      AVM_ASSIGN_OR_RETURN(ExprPtr rhs, ParseApp());
      lhs = Call(op, {lhs, rhs});
    }
    return lhs;
  }

  bool AtAtomStart() const {
    switch (Peek().kind) {
      case Tok::kInt:
      case Tok::kFloat:
      case Tok::kLParen:
      case Tok::kBackslash:
        return true;
      case Tok::kName:
        return !IsKeyword(Peek().text) || Peek().text == "not";
      default:
        return false;
    }
  }

  // Application by juxtaposition: `head a1 a2 ...` where head is a skeleton
  // or scalar builtin name. A bare atom is returned unchanged.
  Result<ExprPtr> ParseApp() {
    // Head may be a skeleton/builtin name.
    if (At(Tok::kName) && !IsKeyword(Peek().text)) {
      const std::string& name = Peek().text;
      auto sk = SkeletonNames().find(name);
      auto bi = BuiltinNames().find(name);
      std::optional<TypeId> cast_ty;
      if (StartsWith(name, "cast_")) cast_ty = ParseTypeName(name.substr(5));
      std::optional<MergeKind> merge;
      if (name == "merge_join") merge = MergeKind::kJoin;
      if (name == "merge_union") merge = MergeKind::kUnion;
      if (name == "merge_diff") merge = MergeKind::kDiff;

      if (sk != SkeletonNames().end() || bi != BuiltinNames().end() ||
          cast_ty.has_value() || merge.has_value()) {
        Advance();
        std::vector<ExprPtr> args;
        bool comma_call = false;
        // `f (...)` is ambiguous between call syntax `f(a, b)` and a
        // parenthesized first atom `f (\x -> e) v`. Parse the parenthesized
        // expression; a following comma disambiguates to call syntax,
        // otherwise it is the first atom of a juxtaposition application.
        if (At(Tok::kLParen)) {
          Advance();
          if (At(Tok::kRParen)) {
            Advance();
            comma_call = true;  // `f()`: zero-argument call syntax
          } else {
            AVM_ASSIGN_OR_RETURN(ExprPtr first, ParseExpr());
            args.push_back(std::move(first));
            if (At(Tok::kComma)) {
              comma_call = true;
              while (At(Tok::kComma)) {
                Advance();
                AVM_ASSIGN_OR_RETURN(ExprPtr a, ParseExpr());
                args.push_back(std::move(a));
              }
            }
            AVM_RETURN_NOT_OK(Expect(Tok::kRParen, "')'"));
          }
        }
        if (!comma_call) {
          while (AtAtomStart()) {
            AVM_ASSIGN_OR_RETURN(ExprPtr a, ParseAtom());
            args.push_back(std::move(a));
          }
        }
        if (merge.has_value()) return Merge(*merge, std::move(args));
        if (sk != SkeletonNames().end()) {
          return Skeleton(sk->second, std::move(args));
        }
        if (cast_ty.has_value()) {
          if (args.size() != 1) {
            return Status::InvalidArgument(StrFormat(
                "line %d: cast expects one argument", Peek().line));
          }
          return Cast(*cast_ty, args[0]);
        }
        if (static_cast<int>(args.size()) != ScalarOpArity(bi->second)) {
          return Status::InvalidArgument(
              StrFormat("line %d: %s expects %d argument(s), got %zu",
                        Peek().line, name.c_str(), ScalarOpArity(bi->second),
                        args.size()));
        }
        return Call(bi->second, std::move(args));
      }
    }
    return ParseAtom();
  }

  Result<ExprPtr> ParseAtom() {
    switch (Peek().kind) {
      case Tok::kInt: {
        const Token& t = Advance();
        return ConstI(t.int_val);
      }
      case Tok::kFloat: {
        const Token& t = Advance();
        return ConstF(t.float_val);
      }
      case Tok::kName: {
        if (IsKeyword(Peek().text) && Peek().text != "not") {
          return Status::InvalidArgument(StrFormat(
              "line %d: unexpected keyword '%s' in expression", Peek().line,
              Peek().text.c_str()));
        }
        if (Peek().text == "not") {
          Advance();
          AVM_ASSIGN_OR_RETURN(ExprPtr a, ParseAtom());
          return Call(ScalarOp::kNot, {std::move(a)});
        }
        const Token& t = Advance();
        return Var(t.text);
      }
      case Tok::kMinus: {
        Advance();
        AVM_ASSIGN_OR_RETURN(ExprPtr a, ParseAtom());
        if (a->kind == ExprKind::kConst) {
          if (a->const_is_float) {
            a->const_f = -a->const_f;
          } else {
            a->const_i = -a->const_i;
          }
          return a;
        }
        return Call(ScalarOp::kNeg, {std::move(a)});
      }
      case Tok::kBackslash:
        return ParseLambda();
      case Tok::kLParen: {
        Advance();
        if (At(Tok::kBackslash)) {
          AVM_ASSIGN_OR_RETURN(ExprPtr l, ParseLambda());
          AVM_RETURN_NOT_OK(Expect(Tok::kRParen, "')'"));
          return l;
        }
        AVM_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        AVM_RETURN_NOT_OK(Expect(Tok::kRParen, "')'"));
        return e;
      }
      default:
        return Status::InvalidArgument(
            StrFormat("line %d: unexpected token '%s' in expression",
                      Peek().line, Peek().text.c_str()));
    }
  }

  Result<ExprPtr> ParseLambda() {
    AVM_RETURN_NOT_OK(Expect(Tok::kBackslash, "'\\'"));
    std::vector<std::string> params;
    while (At(Tok::kName) && !IsKeyword(Peek().text)) {
      params.push_back(Advance().text);
    }
    if (params.empty()) {
      return Status::InvalidArgument(
          StrFormat("line %d: lambda needs at least one parameter",
                    Peek().line));
    }
    AVM_RETURN_NOT_OK(Expect(Tok::kArrow, "'->'"));
    AVM_ASSIGN_OR_RETURN(ExprPtr body, ParseExpr());
    return Lambda(std::move(params), std::move(body));
  }

  std::vector<Token> toks_;
  size_t pos_ = 0;
};

}  // namespace

Result<Program> ParseProgram(const std::string& source) {
  Lexer lexer(source);
  AVM_ASSIGN_OR_RETURN(std::vector<Token> toks, lexer.Run());
  Parser parser(std::move(toks));
  return parser.ParseProgram();
}

Result<ExprPtr> ParseExpr(const std::string& source) {
  Lexer lexer(source);
  AVM_ASSIGN_OR_RETURN(std::vector<Token> toks, lexer.Run());
  Parser parser(std::move(toks));
  return parser.ParseSingleExpr();
}

}  // namespace avm::dsl
