// Type and shape checking for DSL programs.
//
// Annotates every expression with a Shape (scalar vs array) and element
// TypeId, and rejects ill-formed programs (unknown variables, assignment to
// non-mutable variables, break outside loop, arity errors, ...).
#pragma once

#include <string>
#include <unordered_map>

#include "dsl/ast.h"
#include "util/status.h"

namespace avm::dsl {

/// What a name refers to at a given point of the program.
enum class VarClass : uint8_t { kMutable, kLet, kData, kLambdaParam };

struct VarInfo {
  VarClass var_class = VarClass::kLet;
  Shape shape = Shape::kUnknown;
  TypeId type = TypeId::kI64;
  bool writable = false;  // data arrays only
};

/// Check `program`, annotating shapes/types in place.
///
/// Mutable variables are scalars (paper: "state maintenance (define & update
/// a mutable variable)"); their type is fixed by the first assignment.
Status TypeCheck(Program* program);

/// Result type of a binary arithmetic application given operand types
/// (numeric promotion: wider wins, float beats int).
TypeId PromoteTypes(TypeId a, TypeId b);

}  // namespace avm::dsl
