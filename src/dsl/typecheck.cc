#include "dsl/typecheck.h"

#include <unordered_set>
#include <vector>

#include "util/string_util.h"

namespace avm::dsl {

TypeId PromoteTypes(TypeId a, TypeId b) {
  if (a == b) return a;
  if (a == TypeId::kF64 || b == TypeId::kF64) return TypeId::kF64;
  if (a == TypeId::kF32 || b == TypeId::kF32) {
    // f32 with wide ints promotes to f64 to avoid precision surprises.
    TypeId other = a == TypeId::kF32 ? b : a;
    if (other == TypeId::kI64 || other == TypeId::kI32) return TypeId::kF64;
    return TypeId::kF32;
  }
  return TypeWidth(a) >= TypeWidth(b) ? a : b;
}

namespace {

class Checker {
 public:
  explicit Checker(Program* p) : program_(p) {}

  Status Run() {
    scopes_.emplace_back();
    for (const auto& d : program_->data) {
      if (Lookup(d.name) != nullptr) {
        return Status::InvalidArgument("duplicate data declaration: " +
                                       d.name);
      }
      scopes_.back()[d.name] =
          VarInfo{VarClass::kData, Shape::kArray, d.type, d.writable};
    }
    for (const auto& s : program_->stmts) AVM_RETURN_NOT_OK(CheckStmt(s));
    return Status::OK();
  }

 private:
  VarInfo* Lookup(const std::string& name) {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto found = it->find(name);
      if (found != it->end()) return &found->second;
    }
    return nullptr;
  }

  Status CheckStmt(const StmtPtr& s) {
    switch (s->kind) {
      case StmtKind::kMutDef: {
        scopes_.back()[s->var] =
            VarInfo{VarClass::kMutable, Shape::kScalar, TypeId::kI64, false};
        return Status::OK();
      }
      case StmtKind::kAssign: {
        VarInfo* vi = Lookup(s->var);
        if (vi == nullptr) {
          return Status::InvalidArgument("assignment to undefined variable " +
                                         s->var);
        }
        if (vi->var_class != VarClass::kMutable) {
          return Status::InvalidArgument(
              "assignment to non-mutable variable " + s->var);
        }
        AVM_RETURN_NOT_OK(CheckExpr(s->expr));
        if (s->expr->shape != Shape::kScalar) {
          return Status::TypeError(
              "mutable variables hold scalars; cannot assign an array to " +
              s->var);
        }
        if (!mut_assigned_.contains(s->var)) {
          vi->type = s->expr->type;
          mut_assigned_.insert(s->var);
        }
        return Status::OK();
      }
      case StmtKind::kLet: {
        AVM_RETURN_NOT_OK(CheckExpr(s->expr));
        scopes_.back()[s->var] = VarInfo{VarClass::kLet, s->expr->shape,
                                         s->expr->type, false};
        return Status::OK();
      }
      case StmtKind::kLoop: {
        ++loop_depth_;
        scopes_.emplace_back();
        for (const auto& c : s->body) AVM_RETURN_NOT_OK(CheckStmt(c));
        scopes_.pop_back();
        --loop_depth_;
        return Status::OK();
      }
      case StmtKind::kBreak:
        if (loop_depth_ == 0) {
          return Status::InvalidArgument("break outside of loop");
        }
        return Status::OK();
      case StmtKind::kIf: {
        AVM_RETURN_NOT_OK(CheckExpr(s->expr));
        if (s->expr->shape != Shape::kScalar) {
          return Status::TypeError("if condition must be scalar");
        }
        scopes_.emplace_back();
        for (const auto& c : s->body) AVM_RETURN_NOT_OK(CheckStmt(c));
        scopes_.pop_back();
        scopes_.emplace_back();
        for (const auto& c : s->else_body) AVM_RETURN_NOT_OK(CheckStmt(c));
        scopes_.pop_back();
        return Status::OK();
      }
      case StmtKind::kExpr:
        return CheckExpr(s->expr);
    }
    return Status::Internal("unhandled statement kind");
  }

  Status CheckLambdaBody(const ExprPtr& lambda,
                         const std::vector<TypeId>& param_types) {
    if (lambda->kind != ExprKind::kLambda) {
      return Status::TypeError("expected a lambda argument");
    }
    if (lambda->params.size() != param_types.size()) {
      return Status::TypeError(StrFormat(
          "lambda expects %zu parameters, got %zu bound", lambda->params.size(),
          param_types.size()));
    }
    scopes_.emplace_back();
    for (size_t i = 0; i < lambda->params.size(); ++i) {
      scopes_.back()[lambda->params[i]] = VarInfo{
          VarClass::kLambdaParam, Shape::kScalar, param_types[i], false};
    }
    Status st = CheckExpr(lambda->body);
    scopes_.pop_back();
    if (st.ok()) {
      lambda->shape = Shape::kScalar;
      lambda->type = lambda->body->type;
    }
    return st;
  }

  Status CheckExpr(const ExprPtr& e) {
    switch (e->kind) {
      case ExprKind::kConst:
        e->shape = Shape::kScalar;
        e->type = e->const_is_float ? TypeId::kF64 : TypeId::kI64;
        return Status::OK();
      case ExprKind::kVarRef: {
        VarInfo* vi = Lookup(e->var);
        if (vi == nullptr) {
          return Status::InvalidArgument("undefined variable " + e->var);
        }
        e->shape = vi->shape;
        e->type = vi->type;
        return Status::OK();
      }
      case ExprKind::kLambda:
        return Status::TypeError(
            "lambda only allowed as a skeleton argument");
      case ExprKind::kScalarCall:
        return CheckScalarCall(e);
      case ExprKind::kSkeleton:
        return CheckSkeleton(e);
    }
    return Status::Internal("unhandled expression kind");
  }

  Status CheckScalarCall(const ExprPtr& e) {
    const int arity = ScalarOpArity(e->op);
    if (static_cast<int>(e->args.size()) != arity) {
      return Status::TypeError(StrFormat("%s expects %d argument(s), got %zu",
                                         ScalarOpName(e->op), arity,
                                         e->args.size()));
    }
    for (const auto& a : e->args) {
      AVM_RETURN_NOT_OK(CheckExpr(a));
      if (a->shape != Shape::kScalar) {
        return Status::TypeError(
            StrFormat("scalar builtin %s applied to an array; use map",
                      ScalarOpName(e->op)));
      }
    }
    e->shape = Shape::kScalar;
    switch (e->op) {
      case ScalarOp::kAdd:
      case ScalarOp::kSub:
      case ScalarOp::kMul:
      case ScalarOp::kDiv:
      case ScalarOp::kMin:
      case ScalarOp::kMax:
        e->type = PromoteTypes(e->args[0]->type, e->args[1]->type);
        break;
      case ScalarOp::kMod:
        if (!IsIntegerType(e->args[0]->type) ||
            !IsIntegerType(e->args[1]->type)) {
          return Status::TypeError("mod requires integer operands");
        }
        e->type = PromoteTypes(e->args[0]->type, e->args[1]->type);
        break;
      case ScalarOp::kEq:
      case ScalarOp::kNe:
      case ScalarOp::kLt:
      case ScalarOp::kLe:
      case ScalarOp::kGt:
      case ScalarOp::kGe:
        e->type = TypeId::kBool;
        break;
      case ScalarOp::kAnd:
      case ScalarOp::kOr:
        if (e->args[0]->type != TypeId::kBool ||
            e->args[1]->type != TypeId::kBool) {
          return Status::TypeError("and/or require bool operands");
        }
        e->type = TypeId::kBool;
        break;
      case ScalarOp::kNot:
        if (e->args[0]->type != TypeId::kBool) {
          return Status::TypeError("not requires a bool operand");
        }
        e->type = TypeId::kBool;
        break;
      case ScalarOp::kNeg:
      case ScalarOp::kAbs:
        e->type = e->args[0]->type;
        break;
      case ScalarOp::kSqrt:
        e->type = e->args[0]->type == TypeId::kF32 ? TypeId::kF32
                                                   : TypeId::kF64;
        break;
      case ScalarOp::kCast:
        e->type = e->cast_to;
        break;
      case ScalarOp::kHash:
        if (!IsIntegerType(e->args[0]->type)) {
          return Status::TypeError("hash requires an integer operand");
        }
        e->type = TypeId::kI64;
        break;
    }
    return Status::OK();
  }

  Status CheckSkeleton(const ExprPtr& e) {
    auto& args = e->args;
    auto expect_args = [&](size_t n) -> Status {
      if (args.size() != n) {
        return Status::TypeError(StrFormat("%s expects %zu argument(s), got %zu",
                                           SkeletonName(e->skeleton), n,
                                           args.size()));
      }
      return Status::OK();
    };
    switch (e->skeleton) {
      case SkeletonKind::kMap: {
        if (args.size() < 2) {
          return Status::TypeError("map expects a lambda and >= 1 vector");
        }
        std::vector<TypeId> param_types;
        for (size_t i = 1; i < args.size(); ++i) {
          AVM_RETURN_NOT_OK(CheckExpr(args[i]));
          // Scalars broadcast across the chunk.
          param_types.push_back(args[i]->type);
        }
        AVM_RETURN_NOT_OK(CheckLambdaBody(args[0], param_types));
        e->shape = Shape::kArray;
        e->type = args[0]->type;
        return Status::OK();
      }
      case SkeletonKind::kFilter: {
        AVM_RETURN_NOT_OK(expect_args(2));
        AVM_RETURN_NOT_OK(CheckExpr(args[1]));
        if (args[1]->shape != Shape::kArray) {
          return Status::TypeError("filter requires an array input");
        }
        AVM_RETURN_NOT_OK(CheckLambdaBody(args[0], {args[1]->type}));
        if (args[0]->type != TypeId::kBool) {
          return Status::TypeError("filter predicate must return bool");
        }
        e->shape = Shape::kArray;
        e->type = args[1]->type;
        return Status::OK();
      }
      case SkeletonKind::kFold: {
        AVM_RETURN_NOT_OK(expect_args(3));
        AVM_RETURN_NOT_OK(CheckExpr(args[1]));  // init
        AVM_RETURN_NOT_OK(CheckExpr(args[2]));  // vector
        if (args[1]->shape != Shape::kScalar) {
          return Status::TypeError("fold init must be scalar");
        }
        if (args[2]->shape != Shape::kArray) {
          return Status::TypeError("fold input must be an array");
        }
        TypeId acc = PromoteTypes(args[1]->type, args[2]->type);
        AVM_RETURN_NOT_OK(CheckLambdaBody(args[0], {acc, args[2]->type}));
        e->shape = Shape::kScalar;
        e->type = acc;
        return Status::OK();
      }
      case SkeletonKind::kRead: {
        AVM_RETURN_NOT_OK(expect_args(2));
        AVM_RETURN_NOT_OK(CheckExpr(args[0]));  // position
        if (args[0]->shape != Shape::kScalar ||
            !IsIntegerType(args[0]->type)) {
          return Status::TypeError("read position must be an integer scalar");
        }
        AVM_RETURN_NOT_OK(CheckExpr(args[1]));
        if (args[1]->kind != ExprKind::kVarRef ||
            LookupClass(args[1]->var) != VarClass::kData) {
          return Status::TypeError("read source must be a data array");
        }
        e->shape = Shape::kArray;
        e->type = args[1]->type;
        return Status::OK();
      }
      case SkeletonKind::kWrite: {
        AVM_RETURN_NOT_OK(expect_args(3));
        AVM_RETURN_NOT_OK(CheckExpr(args[0]));  // destination
        if (args[0]->kind != ExprKind::kVarRef ||
            LookupClass(args[0]->var) != VarClass::kData) {
          return Status::TypeError("write destination must be a data array");
        }
        VarInfo* vi = Lookup(args[0]->var);
        if (!vi->writable) {
          return Status::TypeError("write to non-writable data array " +
                                   args[0]->var);
        }
        AVM_RETURN_NOT_OK(CheckExpr(args[1]));  // position
        if (args[1]->shape != Shape::kScalar ||
            !IsIntegerType(args[1]->type)) {
          return Status::TypeError("write position must be an integer scalar");
        }
        AVM_RETURN_NOT_OK(CheckExpr(args[2]));  // values
        if (args[2]->shape != Shape::kArray) {
          return Status::TypeError("write value must be an array");
        }
        e->shape = Shape::kScalar;  // number of values written
        e->type = TypeId::kI64;
        return Status::OK();
      }
      case SkeletonKind::kGather: {
        AVM_RETURN_NOT_OK(expect_args(2));
        AVM_RETURN_NOT_OK(CheckExpr(args[0]));  // source
        AVM_RETURN_NOT_OK(CheckExpr(args[1]));  // indices
        if (args[0]->shape != Shape::kArray) {
          return Status::TypeError("gather source must be an array");
        }
        if (args[1]->shape != Shape::kArray ||
            !IsIntegerType(args[1]->type)) {
          return Status::TypeError("gather indices must be an integer array");
        }
        e->shape = Shape::kArray;
        e->type = args[0]->type;
        return Status::OK();
      }
      case SkeletonKind::kScatter: {
        // scatter dest indices values [conflict-lambda]
        if (args.size() != 3 && args.size() != 4) {
          return Status::TypeError("scatter expects 3 or 4 arguments");
        }
        size_t lambda_at = args.size() == 4 ? 3 : SIZE_MAX;
        AVM_RETURN_NOT_OK(CheckExpr(args[0]));
        if (args[0]->kind != ExprKind::kVarRef ||
            LookupClass(args[0]->var) != VarClass::kData) {
          return Status::TypeError("scatter destination must be a data array");
        }
        if (!Lookup(args[0]->var)->writable) {
          return Status::TypeError("scatter to non-writable data array");
        }
        AVM_RETURN_NOT_OK(CheckExpr(args[1]));
        if (args[1]->shape != Shape::kArray ||
            !IsIntegerType(args[1]->type)) {
          return Status::TypeError("scatter indices must be an integer array");
        }
        AVM_RETURN_NOT_OK(CheckExpr(args[2]));
        if (args[2]->shape != Shape::kArray) {
          return Status::TypeError("scatter values must be an array");
        }
        TypeId dest_t = Lookup(args[0]->var)->type;
        if (lambda_at != SIZE_MAX) {
          AVM_RETURN_NOT_OK(
              CheckLambdaBody(args[3], {dest_t, args[2]->type}));
        }
        e->shape = Shape::kScalar;
        e->type = TypeId::kI64;
        return Status::OK();
      }
      case SkeletonKind::kGen: {
        AVM_RETURN_NOT_OK(expect_args(2));
        AVM_RETURN_NOT_OK(CheckExpr(args[1]));  // length
        if (args[1]->shape != Shape::kScalar ||
            !IsIntegerType(args[1]->type)) {
          return Status::TypeError("gen length must be an integer scalar");
        }
        AVM_RETURN_NOT_OK(CheckLambdaBody(args[0], {TypeId::kI64}));
        e->shape = Shape::kArray;
        e->type = args[0]->type;
        return Status::OK();
      }
      case SkeletonKind::kCondense: {
        AVM_RETURN_NOT_OK(expect_args(1));
        AVM_RETURN_NOT_OK(CheckExpr(args[0]));
        if (args[0]->shape != Shape::kArray) {
          return Status::TypeError("condense input must be an array");
        }
        e->shape = Shape::kArray;
        e->type = args[0]->type;
        return Status::OK();
      }
      case SkeletonKind::kExpand: {
        // expand counts [values]: fan each selected row of `counts` out into
        // counts[i] output rows — within-run offsets 0..counts[i]-1 without
        // `values`, or values[i] replicated counts[i] times with it. The
        // output lives in a fresh (fan-out) row domain and carries no
        // selection.
        if (args.size() != 1 && args.size() != 2) {
          return Status::TypeError("expand expects 1 or 2 arguments");
        }
        AVM_RETURN_NOT_OK(CheckExpr(args[0]));
        if (args[0]->shape != Shape::kArray ||
            !IsIntegerType(args[0]->type)) {
          return Status::TypeError("expand counts must be an integer array");
        }
        if (args.size() == 2) {
          AVM_RETURN_NOT_OK(CheckExpr(args[1]));
          if (args[1]->shape != Shape::kArray) {
            return Status::TypeError("expand values must be an array");
          }
          e->type = args[1]->type;
        } else {
          e->type = TypeId::kI64;
        }
        e->shape = Shape::kArray;
        return Status::OK();
      }
      case SkeletonKind::kMerge: {
        AVM_RETURN_NOT_OK(expect_args(2));
        AVM_RETURN_NOT_OK(CheckExpr(args[0]));
        AVM_RETURN_NOT_OK(CheckExpr(args[1]));
        if (args[0]->shape != Shape::kArray ||
            args[1]->shape != Shape::kArray) {
          return Status::TypeError("merge inputs must be arrays");
        }
        if (args[0]->type != args[1]->type) {
          return Status::TypeError("merge inputs must have the same type");
        }
        e->shape = Shape::kArray;
        e->type = args[0]->type;
        return Status::OK();
      }
      case SkeletonKind::kLen: {
        AVM_RETURN_NOT_OK(expect_args(1));
        AVM_RETURN_NOT_OK(CheckExpr(args[0]));
        if (args[0]->shape != Shape::kArray) {
          return Status::TypeError("len input must be an array");
        }
        e->shape = Shape::kScalar;
        e->type = TypeId::kI64;
        return Status::OK();
      }
    }
    return Status::Internal("unhandled skeleton");
  }

  VarClass LookupClass(const std::string& name) {
    VarInfo* vi = Lookup(name);
    return vi == nullptr ? VarClass::kLet : vi->var_class;
  }

  Program* program_;
  std::vector<std::unordered_map<std::string, VarInfo>> scopes_;
  std::unordered_set<std::string> mut_assigned_;
  int loop_depth_ = 0;
};

}  // namespace

Status TypeCheck(Program* program) { return Checker(program).Run(); }

}  // namespace avm::dsl
