#include "vm/compact_types.h"

#include <algorithm>

namespace avm::vm {

namespace {

bool AddOverflows(int64_t a, int64_t b, int64_t* out) {
  return __builtin_add_overflow(a, b, out);
}
bool MulOverflows(int64_t a, int64_t b, int64_t* out) {
  return __builtin_mul_overflow(a, b, out);
}

}  // namespace

std::optional<ValueBounds> PropagateBounds(dsl::ScalarOp op,
                                           const ValueBounds& a,
                                           const ValueBounds& b) {
  using dsl::ScalarOp;
  int64_t lo = 0, hi = 0;
  switch (op) {
    case ScalarOp::kAdd:
      if (AddOverflows(a.lo, b.lo, &lo) || AddOverflows(a.hi, b.hi, &hi)) {
        return std::nullopt;
      }
      return ValueBounds{lo, hi};
    case ScalarOp::kSub: {
      int64_t nlo, nhi;
      if (__builtin_sub_overflow(a.lo, b.hi, &nlo) ||
          __builtin_sub_overflow(a.hi, b.lo, &nhi)) {
        return std::nullopt;
      }
      return ValueBounds{nlo, nhi};
    }
    case ScalarOp::kMul: {
      int64_t c[4];
      if (MulOverflows(a.lo, b.lo, &c[0]) || MulOverflows(a.lo, b.hi, &c[1]) ||
          MulOverflows(a.hi, b.lo, &c[2]) || MulOverflows(a.hi, b.hi, &c[3])) {
        return std::nullopt;
      }
      return ValueBounds{*std::min_element(c, c + 4),
                         *std::max_element(c, c + 4)};
    }
    case ScalarOp::kMin:
      return ValueBounds{std::min(a.lo, b.lo), std::min(a.hi, b.hi)};
    case ScalarOp::kMax:
      return ValueBounds{std::max(a.lo, b.lo), std::max(a.hi, b.hi)};
    case ScalarOp::kDiv:
      // Divisor range crossing zero yields 0 by kernel convention, so the
      // result is bounded by |a| in magnitude.
      return ValueBounds{std::min<int64_t>({a.lo, -a.hi, 0}),
                         std::max<int64_t>({a.hi, -a.lo, 0})};
    case ScalarOp::kMod:
      return ValueBounds{std::min<int64_t>(0, b.hi == 0 ? 0 : -(b.hi - 1)),
                         std::max<int64_t>(0, b.hi == 0 ? 0 : b.hi - 1)};
    case ScalarOp::kAbs:
      if (a.lo == INT64_MIN) return std::nullopt;
      return ValueBounds{std::max<int64_t>(0, std::max(a.lo, -a.hi)),
                         std::max(std::llabs(a.lo), std::llabs(a.hi))};
    case ScalarOp::kNeg:
      if (a.lo == INT64_MIN) return std::nullopt;
      return ValueBounds{-a.hi, -a.lo};
    case ScalarOp::kEq:
    case ScalarOp::kNe:
    case ScalarOp::kLt:
    case ScalarOp::kLe:
    case ScalarOp::kGt:
    case ScalarOp::kGe:
    case ScalarOp::kAnd:
    case ScalarOp::kOr:
    case ScalarOp::kNot:
      return ValueBounds{0, 1};
    default:
      return std::nullopt;  // sqrt/hash/cast: caller handles
  }
}

TypeId CompactTypeFor(const ValueBounds& b) {
  return SmallestIntTypeFor(b.lo, b.hi);
}

std::optional<TypeId> SumAccumulatorType(const ValueBounds& b,
                                         uint64_t count) {
  const int64_t mag = std::max(std::llabs(b.lo), std::llabs(b.hi));
  if (mag != 0 &&
      count > static_cast<uint64_t>(INT64_MAX / mag)) {
    return std::nullopt;
  }
  const int64_t worst = mag * static_cast<int64_t>(count);
  return SmallestIntTypeFor(-worst, worst);
}

}  // namespace avm::vm
