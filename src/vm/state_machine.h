// The VM state machine of Figure 1:
//
//        ┌────────────┐  decide to optimize   ┌──────────┐
//        │ Interpret  │ ────────────────────▶ │ Optimize │
//        └────────────┘                       └──────────┘
//              ▲                                    │
//              │ inject functions                   ▼
//        ┌────────────────┐  code ready   ┌───────────────┐
//        │ InjectFunctions│ ◀──────────── │ GenerateCode  │
//        └────────────────┘               └───────────────┘
//
// Execution starts in Interpret; profiling identifies hot paths; Optimize
// partitions the dependency graph into traces; GenerateCode compiles them;
// InjectFunctions plugs them into the interpreter; interpretation continues
// with a partially optimized program.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace avm::vm {

enum class VmState : uint8_t {
  kInterpret = 0,
  kOptimize,
  kGenerateCode,
  kInjectFunctions,
};

const char* VmStateName(VmState s);

/// Tracks the state and records every transition (tests assert the Fig. 1
/// cycle; benchmarks print the timeline).
class StateMachine {
 public:
  struct Transition {
    VmState from;
    VmState to;
    uint64_t iteration;
  };

  VmState state() const { return state_; }

  /// Transition to `next`; only the Fig. 1 edges are legal.
  bool Advance(VmState next, uint64_t iteration);

  const std::vector<Transition>& transitions() const { return transitions_; }
  std::string Timeline() const;

 private:
  VmState state_ = VmState::kInterpret;
  std::vector<Transition> transitions_;
};

}  // namespace avm::vm
