// Adaptively triggered pre-aggregation (paper §I, following [12]).
//
// Generic hash aggregation pays a hash-table probe per tuple. When the VM
// observes that the group-key domain of the current data is small, it
// switches to a cache-resident array of partial aggregates indexed directly
// by key, merging into the global table per chunk. When the observed domain
// grows past the threshold it switches back.
#pragma once

#include <cstdint>
#include <vector>

#include "storage/types.h"
#include "util/status.h"

namespace avm::vm {

struct PreAggConfig {
  /// Use the array path while max observed key < this.
  int64_t max_direct_key = 4096;
  /// Re-evaluate the decision every N chunks.
  uint64_t decide_every = 16;
};

/// SUM aggregation of int64 values by int64 group key with an adaptive
/// array-direct fast path.
class AdaptiveSumAggregator {
 public:
  explicit AdaptiveSumAggregator(PreAggConfig config = {});

  /// Aggregate one chunk (keys[i], values[i], i < n).
  Status Consume(const int64_t* keys, const int64_t* values, uint32_t n);

  /// Final (key, sum) pairs, sorted by key.
  std::vector<std::pair<int64_t, int64_t>> Result() const;

  bool using_array_path() const { return array_path_; }
  uint64_t path_switches() const { return path_switches_; }

 private:
  void MaybeSwitch();
  Status ConsumeArray(const int64_t* keys, const int64_t* values, uint32_t n);
  void ConsumeHash(const int64_t* keys, const int64_t* values, uint32_t n);
  void GrowHash();
  void HashUpsert(int64_t key, int64_t add);

  PreAggConfig config_;
  bool array_path_ = true;
  uint64_t chunks_ = 0;
  uint64_t path_switches_ = 0;
  int64_t observed_max_key_ = 0;
  int64_t observed_min_key_ = 0;

  // Array path: direct-indexed partials.
  std::vector<int64_t> direct_sums_;
  std::vector<uint8_t> direct_used_;

  // Hash path: open addressing, power-of-two capacity.
  struct Slot {
    int64_t key = 0;
    int64_t sum = 0;
    bool used = false;
  };
  std::vector<Slot> slots_;
  size_t hash_entries_ = 0;
};

}  // namespace avm::vm
