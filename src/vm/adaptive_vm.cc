#include "vm/adaptive_vm.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "analysis/verify_program.h"
#include "analysis/verify_trace.h"
#include "jit/source_jit.h"
#include "util/logging.h"
#include "util/timer.h"

namespace avm::vm {

using interp::Interpreter;

namespace {

uint64_t UpgradeAfterFromEnv() {
  const char* env = std::getenv("AVM_JIT_UPGRADE_AFTER");
  if (env != nullptr && *env != '\0') {
    const long long v = std::atoll(env);
    if (v > 0) return static_cast<uint64_t>(v);
  }
  return 32;
}

bool ResolveVerifyMode(VerifyMode m) {
  if (m == VerifyMode::kOn) return true;
  if (m == VerifyMode::kOff) return false;
  const char* env = std::getenv("AVM_VERIFY");
  if (env != nullptr && *env != '\0') return *env != '0';
#ifdef NDEBUG
  return false;
#else
  return true;
#endif
}

/// A GetOrCompile failure is a shape DECLINE (the taxonomy the verifier
/// mirrors) when codegen rejected the trace; host-compiler and loader
/// failures are environmental and say nothing about the trace's shape.
bool IsShapeDecline(const Status& st) {
  return st.IsInvalidArgument() || st.IsNotImplemented();
}

}  // namespace

AdaptiveVm::AdaptiveVm(const dsl::Program* program, VmOptions options,
                       jit::TraceCache* shared_cache)
    : program_(program), options_(std::move(options)) {
  if (shared_cache != nullptr) cache_ = shared_cache;
  interp_ = std::make_unique<Interpreter>(program_, options_.interp);
  interp_->iteration_hook = [this](Interpreter& in, uint64_t iteration) {
    return OnIteration(in, iteration);
  };
  tier_policy_ = jit::ResolveTierPolicy(options_.jit_tier_policy);
  upgrade_after_ = options_.jit_upgrade_after != 0
                       ? options_.jit_upgrade_after
                       : UpgradeAfterFromEnv();
  if (options_.enable_disk_cache) {
    disk_ = options_.disk_cache != nullptr ? options_.disk_cache
                                           : jit::DiskTraceCache::FromEnv();
  }
  tier_counters_ = std::make_shared<jit::TierCounters>();
  if (options_.enable_jit) {
    report_.jit_tier = jit::TierPolicyName(tier_policy_);
  }
}

Status AdaptiveVm::Run() {
  Status st = interp_->Run();
  report_.iterations = interp_->loop_iterations();
  report_.chunks_streamed = interp_->chunks_streamed();
  report_.state_timeline = sm_.Timeline();
  report_.profile = interp_->profiler().ToString();
  report_.injection_runs = 0;
  report_.injection_fallbacks = 0;
  for (const auto& tr : interp_->injections()) {
    report_.injection_runs += tr.invocations;
    report_.injection_fallbacks += tr.fallbacks;
  }
  return st;
}

VmReport AdaptiveVm::Report() const {
  VmReport r = report_;
  // Upgrade threads run detached; snapshot whatever they finished by now.
  r.tier_upgrades_requested =
      tier_counters_->requested.load(std::memory_order_relaxed);
  r.tier_upgrades = tier_counters_->completed.load(std::memory_order_relaxed);
  return r;
}

Status AdaptiveVm::OnIteration(Interpreter& in, uint64_t iteration) {
  if (!options_.enable_jit) return Status::OK();
  if (!jit::SourceJit::Available()) return Status::OK();
  if (!optimized_once_ && iteration >= options_.optimize_after_iterations) {
    return OptimizePass(in, iteration);
  }
  if (optimized_once_ && options_.recheck_interval > 0 &&
      iteration % options_.recheck_interval == 0) {
    // Situation drift check: when the compression scheme under a trace's
    // reads changed, compile (or fetch from cache) a variant for the new
    // situation. Injections for stale situations stay installed; their
    // applicability checks simply stop matching.
    return OptimizePass(in, iteration);
  }
  return Status::OK();
}

std::map<std::string, Scheme> AdaptiveVm::ObserveSchemes(
    Interpreter& in, const ir::Trace& trace) const {
  std::map<std::string, Scheme> schemes;
  if (!options_.specialize_compression) return schemes;
  for (uint32_t id : trace.node_ids) {
    const ir::DepNode& n = graph_.nodes()[id];
    if (n.kind != dsl::SkeletonKind::kRead) continue;
    const std::string& data = n.expr->args[1]->var;
    Scheme s = in.LastSchemeOf(data);
    // Only FOR has a specialized compressed-execution code path; other
    // schemes decode to plain values before entering the trace.
    if (s == Scheme::kFor) schemes[data] = s;
  }
  return schemes;
}

std::set<std::string> AdaptiveVm::ObserveSelections(
    Interpreter& in, const ir::Trace& trace) const {
  std::set<std::string> sel_inputs;
  for (const std::string& name : trace.ChunkVarInputs(*program_)) {
    Result<interp::Value> v = in.GetVar(name);
    if (v.ok() && v.value().is_array() && v.value().array->has_sel()) {
      sel_inputs.insert(name);
    }
  }
  return sel_inputs;
}

namespace {

/// Quantize a node's profiled cost share into a coarse power-of-two bucket
/// (1, 2, 4, ..., 1024 ≙ the whole loop). The greedy partitioner only needs
/// the cost *ordering*; bucketing keeps the magnitudes tame and makes the
/// min-cost-share gate insensitive to tiny share differences.
double BucketCostShare(double units, double total_units) {
  const double share = units / total_units;
  const double q = std::clamp(share * 1024.0, 1.0, 1024.0);
  return std::exp2(std::round(std::log2(q)));
}

}  // namespace

Status AdaptiveVm::OptimizePass(Interpreter& in, uint64_t iteration) {
  sm_.Advance(VmState::kOptimize, iteration);
  if (!graph_built_) {
    AVM_ASSIGN_OR_RETURN(graph_, ir::DepGraph::Build(*program_));
    graph_built_ = true;
    static_cost_.reserve(graph_.size());
    for (const auto& node : graph_.nodes()) {
      static_cost_.push_back(node.cost);  // per-tuple cost from BaseCost
    }
    // Level-1 static verification at program load (docs/VERIFIER.md). A
    // dirty program still runs — interpretation is the semantics of
    // record and the engine facade enforces hard — but the finding is
    // surfaced through the report and the debug log.
    if (ResolveVerifyMode(options_.verify_programs)) {
      analysis::VerifyResult vr = analysis::VerifyProgram(*program_);
      if (!vr.clean()) {
        if (report_.verifier_diagnostic.empty()) {
          report_.verifier_diagnostic =
              vr.diagnostics.front().ToString();
        }
        AVM_LOG(kWarning) << "program failed static verification:\n"
                          << vr.ToString();
      }
    }
  }
  // Refresh node costs from the profile (hot-path identification). The
  // unit is DETERMINISTIC work: the node's static per-tuple cost weighted
  // by its profiled tuple count. Tuple counts depend only on the data and
  // the iteration the pass runs at — unlike cycle counts, which wobble
  // with machine load by more than the log2 bucket width and would reseed
  // the partition (and miss the cross-run TraceCache) on a loaded host.
  // Selectivity still steers the partition: post-filter operators see
  // fewer tuples and weigh less.
  double total_units = 0;
  std::vector<double> units(graph_.size(), 0);
  for (const auto& node : graph_.nodes()) {
    const interp::OpStats* s = in.profiler().Find(node.expr->id);
    if (s != nullptr && s->calls > 0) {
      units[node.id] = static_cost_[node.id] *
                       static_cast<double>(std::max<uint64_t>(s->tuples, 1));
    }
    total_units += units[node.id];
  }
  double total_cost = 0;
  for (auto& node : graph_.nodes()) {
    if (units[node.id] > 0 && total_units > 0) {
      node.cost = BucketCostShare(units[node.id], total_units);
    }
    total_cost += node.cost;
  }
  traces_ = ir::GreedyPartition(graph_, options_.constraints);

  bool any_compiled = false;
  size_t installed_this_pass = 0;
  for (const auto& trace : traces_) {
    if (installed_this_pass >= options_.max_traces_per_pass) break;
    if (total_cost > 0 &&
        trace.total_cost / total_cost < options_.min_cost_share) {
      continue;
    }
    Status st = InstallTrace(in, trace, iteration);
    if (st.ok()) {
      ++installed_this_pass;
      any_compiled = true;
    } else if (!st.IsNotFound()) {
      // Surface the first decline through the report: consumers asking for
      // kAdaptiveJit should see WHY a hot fragment stayed interpreted
      // instead of inferring it from a zero compile count.
      if (report_.jit_declined.empty()) {
        report_.jit_declined = st.ToString();
      }
      AVM_LOG(kDebug) << "trace skipped: " << st.ToString();
    }
  }
  optimized_once_ = true;
  if (any_compiled) {
    if (sm_.state() == VmState::kOptimize) {
      sm_.Advance(VmState::kGenerateCode, iteration);
    }
    sm_.Advance(VmState::kInjectFunctions, iteration);
    sm_.Advance(VmState::kInterpret, iteration);
  } else {
    sm_.Advance(VmState::kInterpret, iteration);
  }
  return Status::OK();
}

Status AdaptiveVm::InstallTrace(Interpreter& in, const ir::Trace& trace,
                                uint64_t iteration) {
  jit::Situation situation;
  situation.trace_fingerprint = jit::TraceFingerprint(graph_, trace);
  situation.schemes = ObserveSchemes(in, trace);
  // The selection pattern of the trace's chunk inputs is part of the
  // situation, like compression schemes: post-filter iterations compile a
  // selection-carrying variant, pre-filter shapes a positional one, and
  // both can coexist for the same fingerprint.
  std::set<std::string> sel_inputs = ObserveSelections(in, trace);
  situation.sel_inputs.assign(sel_inputs.begin(), sel_inputs.end());

  const uint64_t key = situation.Key();
  if (installed_.contains(key)) {
    return Status::NotFound("already installed");  // benign skip
  }

  // Level-2 static verification, always-on ahead of codegen: the §6
  // decline taxonomy as machine-checked predicates. The contract —
  // codegen declines IFF the verifier rejects — is checked on both exits
  // below; a cache hit counts as an accept (the cached entry exists
  // because codegen accepted this situation before, and the verifier is
  // deterministic).
  analysis::TraceContext vctx;
  vctx.schemes = situation.schemes;
  vctx.sel_inputs = sel_inputs;
  const analysis::VerifyResult vr =
      analysis::VerifyTrace(*program_, graph_, trace, vctx);
  ++report_.verifier_checked;
  if (!vr.clean()) {
    ++report_.verifier_rejects;
    if (report_.verifier_diagnostic.empty()) {
      report_.verifier_diagnostic = vr.diagnostics.front().ToString();
    }
  }

  bool compiled_fresh = false;
  jit::TieredCompileOutcome outcome;
  Result<std::shared_ptr<jit::TraceEntry>> got = cache_->GetOrCompile(
      situation,
      // The callback loads from the persistent disk cache when one is
      // configured, and only invokes a backend on a true cold miss;
      // `outcome` reports which happened (timed inside the callback so
      // waiting on the cache's compile lock is not charged).
      [&]() -> Result<jit::CompiledTrace> {
        jit::CodegenOptions cg;
        cg.scheme_specialization = situation.schemes;
        cg.sel_inputs = sel_inputs;
        AVM_ASSIGN_OR_RETURN(
            outcome, jit::CompileTraceTiered(*program_, graph_, trace, cg,
                                             tier_policy_, disk_, key));
        return std::move(outcome.trace);
      },
      &compiled_fresh);
  if (!got.ok()) {
    if (IsShapeDecline(got.status()) && vr.clean()) {
      ++report_.verifier_disagreements;
      AVM_LOG(kDebug) << "verifier disagreement: codegen declined a "
                         "verifier-clean trace: "
                      << got.status().ToString();
    }
    return got.status();
  }
  if (!vr.clean()) {
    ++report_.verifier_disagreements;
    AVM_LOG(kDebug) << "verifier disagreement: codegen accepted a "
                       "verifier-dirty trace:\n"
                    << vr.ToString();
  }
  std::shared_ptr<jit::TraceEntry> entry = std::move(got).ValueOrDie();
  if (compiled_fresh) {
    report_.disk_cache_corrupt += outcome.disk_corrupt;
    if (outcome.from_disk) {
      // Machine code came from AVM_TRACE_CACHE_DIR: the warm-restart path.
      // Deliberately NOT a traces_compiled — no backend ran.
      ++report_.disk_cache_hits;
    } else {
      if (outcome.disk_probed) ++report_.disk_cache_misses;
      report_.compile_seconds += outcome.compile_seconds;
      ++report_.traces_compiled;
      if (entry->tier() == jit::JitTier::kFast) {
        ++report_.fast_compiles;
        report_.fast_compile_seconds += outcome.compile_seconds;
      } else {
        ++report_.opt_compiles;
        report_.opt_compile_seconds += outcome.compile_seconds;
      }
    }
  } else {
    ++report_.traces_reused;
  }

  jit::TraceTierOptions tier;
  tier.upgrade_enabled = tier_policy_ == jit::TierPolicy::kTiered;
  tier.upgrade_after = upgrade_after_;
  tier.disk = disk_;
  tier.counters = tier_counters_;
  interp::InjectedTrace inj = jit::MakeInjection(
      std::move(entry), options_.interp.chunk_size, std::move(tier));
  AVM_LOG(kDebug) << "inject " << inj.name << " at iter " << iteration << " "
                  << situation.ToString();
  in.AddInjection(std::move(inj));
  installed_.insert(key);
  return Status::OK();
}

}  // namespace avm::vm
