#include "vm/state_machine.h"

#include <sstream>

#include "util/string_util.h"

namespace avm::vm {

const char* VmStateName(VmState s) {
  switch (s) {
    case VmState::kInterpret: return "Interpret";
    case VmState::kOptimize: return "Optimize";
    case VmState::kGenerateCode: return "GenerateCode";
    case VmState::kInjectFunctions: return "InjectFunctions";
  }
  return "?";
}

bool StateMachine::Advance(VmState next, uint64_t iteration) {
  // Legal edges of Fig. 1 (self-loop on Interpret is implicit, not logged).
  bool legal = false;
  switch (state_) {
    case VmState::kInterpret:
      legal = next == VmState::kOptimize;
      break;
    case VmState::kOptimize:
      legal = next == VmState::kGenerateCode || next == VmState::kInterpret;
      break;
    case VmState::kGenerateCode:
      legal = next == VmState::kInjectFunctions || next == VmState::kInterpret;
      break;
    case VmState::kInjectFunctions:
      legal = next == VmState::kInterpret;
      break;
  }
  if (!legal) return false;
  transitions_.push_back({state_, next, iteration});
  state_ = next;
  return true;
}

std::string StateMachine::Timeline() const {
  std::ostringstream os;
  for (const auto& t : transitions_) {
    os << StrFormat("iter %-8llu %s -> %s\n", (unsigned long long)t.iteration,
                    VmStateName(t.from), VmStateName(t.to));
  }
  return os.str();
}

}  // namespace avm::vm
