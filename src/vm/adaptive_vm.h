// The adaptive virtual machine (Section III).
//
// Drives the Fig. 1 state machine over a DSL program: interpret with
// profiling, decide to optimize after a warmup, greedily partition the hot
// dependency graph into traces (§III-B), JIT-compile them specialized for
// the current situation (input compression schemes, §III-C), inject them
// into the interpreter, and keep watching: when a block's compression
// scheme changes the injected trace's applicability check fails, the VM
// falls back to interpretation and compiles a new variant for the new
// situation, reusing the trace cache when the situation recurs.
#pragma once

#include <memory>
#include <set>
#include <unordered_set>
#include <vector>

#include "interp/interpreter.h"
#include "ir/depgraph.h"
#include "jit/trace_cache.h"
#include "vm/state_machine.h"

namespace avm::vm {

/// Tuning knobs of one AdaptiveVm: the embedded interpreter's options,
/// the Fig. 1 state-machine cadence (warmup, recheck interval), and the
/// partitioning/compilation policy.
struct VmOptions {
  interp::InterpreterOptions interp;
  /// Loop iterations interpreted (with profiling) before the first Optimize.
  uint64_t optimize_after_iterations = 8;
  /// Re-examine the situation every this many iterations.
  uint64_t recheck_interval = 64;
  /// Compile at most this many traces per Optimize pass.
  size_t max_traces_per_pass = 4;
  /// Partitioning heuristics (§III-B).
  ir::PartitionConstraints constraints;
  /// Master switch: with JIT off the VM is a pure vectorized interpreter.
  bool enable_jit = true;
  /// Specialize reads for FOR-compressed blocks (compressed execution).
  bool specialize_compression = true;
  /// Only compile traces whose profiled cost share exceeds this fraction.
  double min_cost_share = 0.05;
};

/// Counters and diagnostics of one adaptive-VM run.
struct VmReport {
  uint64_t iterations = 0;
  uint64_t traces_compiled = 0;
  uint64_t traces_reused = 0;     ///< trace-cache hits on recompile checks
  uint64_t injection_runs = 0;
  uint64_t injection_fallbacks = 0;
  double compile_seconds = 0;
  /// First reason a candidate trace was declined (not compiled) this run;
  /// empty when every considered trace compiled. Since the trace ABI
  /// carries selections, scalar state, and bounds faults, declines are
  /// limited to the genuinely-unsupported shapes enumerated in
  /// docs/TRACE_ABI.md (merge/gen skeletons, chunk-array gather bases,
  /// multi-filter traces, non-add/min/max scatter conflict functions, ...).
  std::string jit_declined;
  std::string state_timeline;
  std::string profile;
};

/// The adaptive virtual machine (file comment above): a vectorized
/// interpreter plus the Optimize/GenerateCode/InjectFunctions loop that
/// JIT-compiles hot traces specialized for the current situation
/// (compression schemes + selection-carrying inputs, docs/TRACE_ABI.md)
/// and falls back to interpretation when a situation stops matching.
class AdaptiveVm {
 public:
  /// `program` must be type-checked and outlive the VM. When `shared_cache`
  /// is non-null the VM compiles into / reuses that (thread-safe) cache
  /// instead of a private one — this is how morsel workers of a parallel run
  /// share each other's compiled traces.
  AdaptiveVm(const dsl::Program* program, VmOptions options = {},
             jit::TraceCache* shared_cache = nullptr);

  /// Access the embedded interpreter to bind data (before Run).
  interp::Interpreter& interpreter() { return *interp_; }

  /// Execute the program to completion under the adaptive policy.
  Status Run();

  VmReport Report() const;
  const StateMachine& state_machine() const { return sm_; }
  const jit::TraceCache& trace_cache() const { return *cache_; }

 private:
  Status OnIteration(interp::Interpreter& in, uint64_t iteration);
  Status OptimizePass(interp::Interpreter& in, uint64_t iteration);
  Status InstallTrace(interp::Interpreter& in, const ir::Trace& trace,
                      uint64_t iteration);
  /// Current compression situation of the data arrays a trace reads.
  std::map<std::string, Scheme> ObserveSchemes(interp::Interpreter& in,
                                               const ir::Trace& trace) const;
  /// Chunk-variable trace inputs currently carrying a selection vector —
  /// the selection part of the situation. Each morsel worker observes its
  /// own environment; since workers of one query run the same program
  /// shape, they observe the same pattern and share the compiled variant
  /// through the (shared) TraceCache.
  std::set<std::string> ObserveSelections(interp::Interpreter& in,
                                          const ir::Trace& trace) const;

  const dsl::Program* program_;
  VmOptions options_;
  std::unique_ptr<interp::Interpreter> interp_;
  ir::DepGraph graph_;
  bool graph_built_ = false;
  /// Static per-tuple node costs captured at graph build, the weight the
  /// deterministic (tuple-count-based) profile refresh applies.
  std::vector<double> static_cost_;
  StateMachine sm_;
  jit::TraceCache own_cache_;
  jit::TraceCache* cache_ = &own_cache_;  ///< points at own_cache_ or shared
  std::vector<ir::Trace> traces_;
  std::unordered_set<uint64_t> installed_;
  bool optimized_once_ = false;
  VmReport report_;
};

}  // namespace avm::vm
