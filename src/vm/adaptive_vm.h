// The adaptive virtual machine (Section III).
//
// Drives the Fig. 1 state machine over a DSL program: interpret with
// profiling, decide to optimize after a warmup, greedily partition the hot
// dependency graph into traces (§III-B), JIT-compile them specialized for
// the current situation (input compression schemes, §III-C), inject them
// into the interpreter, and keep watching: when a block's compression
// scheme changes the injected trace's applicability check fails, the VM
// falls back to interpretation and compiles a new variant for the new
// situation, reusing the trace cache when the situation recurs.
#pragma once

#include <memory>
#include <set>
#include <unordered_set>
#include <vector>

#include "interp/interpreter.h"
#include "ir/depgraph.h"
#include "jit/trace_cache.h"
#include "vm/state_machine.h"

namespace avm::vm {

/// Whether AdaptiveVm statically verifies the program at graph build
/// (VmOptions::verify_programs).
enum class VerifyMode : uint8_t {
  kAuto = 0,  ///< AVM_VERIFY env, else on in debug builds only
  kOn,
  kOff,
};

/// Tuning knobs of one AdaptiveVm: the embedded interpreter's options,
/// the Fig. 1 state-machine cadence (warmup, recheck interval), and the
/// partitioning/compilation policy.
struct VmOptions {
  interp::InterpreterOptions interp;
  /// Loop iterations interpreted (with profiling) before the first Optimize.
  uint64_t optimize_after_iterations = 8;
  /// Re-examine the situation every this many iterations.
  uint64_t recheck_interval = 64;
  /// Compile at most this many traces per Optimize pass.
  size_t max_traces_per_pass = 4;
  /// Partitioning heuristics (§III-B).
  ir::PartitionConstraints constraints;
  /// Master switch: with JIT off the VM is a pure vectorized interpreter.
  bool enable_jit = true;
  /// Specialize reads for FOR-compressed blocks (compressed execution).
  bool specialize_compression = true;
  /// Only compile traces whose profiled cost share exceeds this fraction.
  double min_cost_share = 0.05;
  /// Which JIT tier(s) compiled traces use. kDefault resolves AVM_JIT_TIER
  /// ("tiered" | "fast" | "opt"); tiered compiles the cheap -O0 tier first
  /// and upgrades hot traces to the optimized tier asynchronously.
  jit::TierPolicy jit_tier_policy = jit::TierPolicy::kDefault;
  /// Injection invocations that make a fast-tier trace hot enough for the
  /// background optimized-tier upgrade (tiered policy only).
  /// 0 = AVM_JIT_UPGRADE_AFTER, default 32.
  uint64_t jit_upgrade_after = 0;
  /// Persistent compiled-artifact store consulted before any backend
  /// compile and populated after; nullptr = the AVM_TRACE_CACHE_DIR cache
  /// (DiskTraceCache::FromEnv), i.e. off unless that variable is set.
  std::shared_ptr<jit::DiskTraceCache> disk_cache;
  /// Master switch for the persistent store (false ignores both the
  /// disk_cache field and the environment).
  bool enable_disk_cache = true;
  /// Program-level static verification (analysis::VerifyProgram) at graph
  /// build. kAuto resolves AVM_VERIFY ("1"/"0"), defaulting to on in
  /// debug builds (!NDEBUG) and off otherwise. A dirty program is reported
  /// (VmReport::verifier_diagnostic) but still runs — the interpreter is
  /// the semantics of record; hard enforcement lives at the engine facade.
  /// Trace-level verification (analysis::VerifyTrace) is always on ahead
  /// of codegen regardless of this knob.
  VerifyMode verify_programs = VerifyMode::kAuto;
};

/// Counters and diagnostics of one adaptive-VM run.
struct VmReport {
  uint64_t iterations = 0;
  /// Compressed column blocks the interpreter's streaming scan cursors
  /// decoded (one super-chunk per decode); see ExecReport::chunks_streamed.
  uint64_t chunks_streamed = 0;
  uint64_t traces_compiled = 0;
  uint64_t traces_reused = 0;     ///< trace-cache hits on recompile checks
  uint64_t injection_runs = 0;
  uint64_t injection_fallbacks = 0;
  double compile_seconds = 0;
  /// First reason a candidate trace was declined (not compiled) this run;
  /// empty when every considered trace compiled. Since the trace ABI
  /// carries selections, scalar state, and bounds faults, declines are
  /// limited to the genuinely-unsupported shapes enumerated in
  /// docs/TRACE_ABI.md (merge/gen skeletons, chunk-array gather bases,
  /// multi-filter traces, non-add/min/max scatter conflict functions, ...).
  std::string jit_declined;
  std::string state_timeline;
  std::string profile;

  /// Resolved tier policy this run compiled under ("tiered"/"fast"/"opt").
  std::string jit_tier;
  /// Per-tier split of traces_compiled, with backend wall time: compiles
  /// that produced fast (-O0) vs optimized (-O2) code. Background tier
  /// upgrades are counted separately below, not here.
  uint64_t fast_compiles = 0;
  uint64_t opt_compiles = 0;
  double fast_compile_seconds = 0;
  double opt_compile_seconds = 0;
  /// Persistent-cache traffic of this run: situations whose machine code
  /// was loaded from AVM_TRACE_CACHE_DIR instead of compiled (hits — these
  /// do NOT count into traces_compiled), situations probed without a
  /// loadable artifact (misses), and corrupt entries detected, deleted and
  /// recompiled along the way.
  uint64_t disk_cache_hits = 0;
  uint64_t disk_cache_misses = 0;
  uint64_t disk_cache_corrupt = 0;
  /// Hotness-triggered fast→optimized upgrades: claimed by this run's
  /// injections, and completed (published) by the time the report was
  /// taken — an upgrade still compiling in the background when the run
  /// ends is requested-but-not-completed.
  uint64_t tier_upgrades_requested = 0;
  uint64_t tier_upgrades = 0;
  /// Static-verifier activity (analysis::VerifyTrace runs ahead of every
  /// codegen attempt; analysis::VerifyProgram per verify_programs):
  /// candidate traces checked, traces the verifier rejected, and — the
  /// enforced contract — checks where the verifier and codegen DISAGREED
  /// (codegen accepted a verifier-dirty trace, or declined a clean one).
  /// The differential harness asserts verifier_disagreements == 0 on
  /// every seed. verifier_diagnostic carries the first diagnostic of the
  /// run (program- or trace-level), empty when everything verified clean.
  uint64_t verifier_checked = 0;
  uint64_t verifier_rejects = 0;
  uint64_t verifier_disagreements = 0;
  std::string verifier_diagnostic;
};

/// The adaptive virtual machine (file comment above): a vectorized
/// interpreter plus the Optimize/GenerateCode/InjectFunctions loop that
/// JIT-compiles hot traces specialized for the current situation
/// (compression schemes + selection-carrying inputs, docs/TRACE_ABI.md)
/// and falls back to interpretation when a situation stops matching.
class AdaptiveVm {
 public:
  /// `program` must be type-checked and outlive the VM. When `shared_cache`
  /// is non-null the VM compiles into / reuses that (thread-safe) cache
  /// instead of a private one — this is how morsel workers of a parallel run
  /// share each other's compiled traces.
  AdaptiveVm(const dsl::Program* program, VmOptions options = {},
             jit::TraceCache* shared_cache = nullptr);

  /// Access the embedded interpreter to bind data (before Run).
  interp::Interpreter& interpreter() { return *interp_; }

  /// Execute the program to completion under the adaptive policy.
  Status Run();

  VmReport Report() const;
  const StateMachine& state_machine() const { return sm_; }
  const jit::TraceCache& trace_cache() const { return *cache_; }

 private:
  Status OnIteration(interp::Interpreter& in, uint64_t iteration);
  Status OptimizePass(interp::Interpreter& in, uint64_t iteration);
  Status InstallTrace(interp::Interpreter& in, const ir::Trace& trace,
                      uint64_t iteration);
  /// Current compression situation of the data arrays a trace reads.
  std::map<std::string, Scheme> ObserveSchemes(interp::Interpreter& in,
                                               const ir::Trace& trace) const;
  /// Chunk-variable trace inputs currently carrying a selection vector —
  /// the selection part of the situation. Each morsel worker observes its
  /// own environment; since workers of one query run the same program
  /// shape, they observe the same pattern and share the compiled variant
  /// through the (shared) TraceCache.
  std::set<std::string> ObserveSelections(interp::Interpreter& in,
                                          const ir::Trace& trace) const;

  const dsl::Program* program_;
  VmOptions options_;
  std::unique_ptr<interp::Interpreter> interp_;
  ir::DepGraph graph_;
  bool graph_built_ = false;
  /// Static per-tuple node costs captured at graph build, the weight the
  /// deterministic (tuple-count-based) profile refresh applies.
  std::vector<double> static_cost_;
  StateMachine sm_;
  jit::TraceCache own_cache_;
  jit::TraceCache* cache_ = &own_cache_;  ///< points at own_cache_ or shared
  std::vector<ir::Trace> traces_;
  std::unordered_set<uint64_t> installed_;
  bool optimized_once_ = false;
  VmReport report_;
  /// Tiering state resolved at construction (policy/threshold/env).
  jit::TierPolicy tier_policy_ = jit::TierPolicy::kOptimizedOnly;
  uint64_t upgrade_after_ = 32;
  std::shared_ptr<jit::DiskTraceCache> disk_;
  /// Shared with the detached upgrade threads this VM's injections spawn
  /// (they may outlive the VM; Report() reads whatever completed by then).
  std::shared_ptr<jit::TierCounters> tier_counters_;
};

}  // namespace avm::vm
