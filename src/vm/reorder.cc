#include "vm/reorder.h"

#include <algorithm>
#include <numeric>

namespace avm::vm {

SelectiveOpReorderer::SelectiveOpReorderer(size_t num_ops,
                                           uint64_t resort_every,
                                           double ema_alpha)
    : stats_(num_ops), order_(num_ops), resort_every_(resort_every),
      ema_alpha_(ema_alpha) {
  std::iota(order_.begin(), order_.end(), size_t{0});
}

void SelectiveOpReorderer::Observe(size_t op, uint64_t tuples_in,
                                   uint64_t tuples_out, uint64_t cycles) {
  if (tuples_in == 0) return;
  OpStats& s = stats_[op];
  const double sel =
      static_cast<double>(tuples_out) / static_cast<double>(tuples_in);
  const double cost =
      static_cast<double>(cycles) / static_cast<double>(tuples_in);
  if (s.samples == 0) {
    s.sel_ema = sel;
    s.cost_ema = cost;
  } else {
    s.sel_ema = ema_alpha_ * sel + (1 - ema_alpha_) * s.sel_ema;
    s.cost_ema = ema_alpha_ * cost + (1 - ema_alpha_) * s.cost_ema;
  }
  ++s.samples;
  if (++observations_ % resort_every_ == 0) Resort();
}

double SelectiveOpReorderer::RankOf(size_t op) const {
  const OpStats& s = stats_[op];
  const double cost = s.cost_ema <= 0 ? 1e-9 : s.cost_ema;
  return (1.0 - s.sel_ema) / cost;
}

void SelectiveOpReorderer::Resort() {
  std::vector<size_t> next = order_;
  std::stable_sort(next.begin(), next.end(), [this](size_t a, size_t b) {
    return RankOf(a) > RankOf(b);
  });
  if (next != order_) {
    order_ = std::move(next);
    ++resorts_;
  }
}

}  // namespace avm::vm
