#include "vm/preagg.h"

#include <algorithm>

#include "util/hash.h"

namespace avm::vm {

AdaptiveSumAggregator::AdaptiveSumAggregator(PreAggConfig config)
    : config_(config) {
  slots_.resize(1024);
}

Status AdaptiveSumAggregator::Consume(const int64_t* keys,
                                      const int64_t* values, uint32_t n) {
  for (uint32_t i = 0; i < n; ++i) {
    observed_max_key_ = std::max(observed_max_key_, keys[i]);
    observed_min_key_ = std::min(observed_min_key_, keys[i]);
  }
  if (observed_min_key_ < 0) {
    // Negative keys can never use the array path.
    if (array_path_) {
      array_path_ = false;
      ++path_switches_;
      // Migrate partials.
      for (size_t k = 0; k < direct_sums_.size(); ++k) {
        if (direct_used_[k]) HashUpsert(static_cast<int64_t>(k),
                                        direct_sums_[k]);
      }
      direct_sums_.clear();
      direct_used_.clear();
    }
  }
  ++chunks_;
  if (chunks_ % config_.decide_every == 0) MaybeSwitch();
  if (array_path_) return ConsumeArray(keys, values, n);
  ConsumeHash(keys, values, n);
  return Status::OK();
}

void AdaptiveSumAggregator::MaybeSwitch() {
  const bool should_array =
      observed_min_key_ >= 0 && observed_max_key_ < config_.max_direct_key;
  if (should_array == array_path_) return;
  ++path_switches_;
  if (!should_array) {
    // array -> hash: migrate.
    for (size_t k = 0; k < direct_sums_.size(); ++k) {
      if (direct_used_[k]) HashUpsert(static_cast<int64_t>(k),
                                      direct_sums_[k]);
    }
    direct_sums_.clear();
    direct_used_.clear();
    array_path_ = false;
  } else {
    // hash -> array: migrate entries that fit.
    direct_sums_.assign(static_cast<size_t>(config_.max_direct_key), 0);
    direct_used_.assign(static_cast<size_t>(config_.max_direct_key), 0);
    bool all_fit = true;
    for (const auto& s : slots_) {
      if (!s.used) continue;
      if (s.key < 0 || s.key >= config_.max_direct_key) {
        all_fit = false;
        break;
      }
    }
    if (!all_fit) {
      direct_sums_.clear();
      direct_used_.clear();
      --path_switches_;
      return;
    }
    for (const auto& s : slots_) {
      if (!s.used) continue;
      direct_sums_[static_cast<size_t>(s.key)] += s.sum;
      direct_used_[static_cast<size_t>(s.key)] = 1;
    }
    std::fill(slots_.begin(), slots_.end(), Slot{});
    hash_entries_ = 0;
    array_path_ = true;
  }
}

Status AdaptiveSumAggregator::ConsumeArray(const int64_t* keys,
                                           const int64_t* values,
                                           uint32_t n) {
  if (direct_sums_.empty()) {
    direct_sums_.assign(static_cast<size_t>(config_.max_direct_key), 0);
    direct_used_.assign(static_cast<size_t>(config_.max_direct_key), 0);
  }
  for (uint32_t i = 0; i < n; ++i) {
    const int64_t k = keys[i];
    if (k < 0 || k >= config_.max_direct_key) {
      // Out-of-range key before the next decision point: spill to hash.
      HashUpsert(k, values[i]);
      continue;
    }
    direct_sums_[static_cast<size_t>(k)] += values[i];
    direct_used_[static_cast<size_t>(k)] = 1;
  }
  return Status::OK();
}

void AdaptiveSumAggregator::GrowHash() {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.size() * 2, Slot{});
  hash_entries_ = 0;
  for (const auto& s : old) {
    if (s.used) HashUpsert(s.key, s.sum);
  }
}

void AdaptiveSumAggregator::HashUpsert(int64_t key, int64_t add) {
  if (hash_entries_ * 2 >= slots_.size()) GrowHash();
  const size_t mask = slots_.size() - 1;
  size_t idx = HashInt64(static_cast<uint64_t>(key)) & mask;
  while (true) {
    Slot& s = slots_[idx];
    if (!s.used) {
      s.used = true;
      s.key = key;
      s.sum = add;
      ++hash_entries_;
      return;
    }
    if (s.key == key) {
      s.sum += add;
      return;
    }
    idx = (idx + 1) & mask;
  }
}

void AdaptiveSumAggregator::ConsumeHash(const int64_t* keys,
                                        const int64_t* values, uint32_t n) {
  for (uint32_t i = 0; i < n; ++i) HashUpsert(keys[i], values[i]);
}

std::vector<std::pair<int64_t, int64_t>> AdaptiveSumAggregator::Result()
    const {
  std::vector<std::pair<int64_t, int64_t>> out;
  for (size_t k = 0; k < direct_sums_.size(); ++k) {
    if (direct_used_[k]) out.emplace_back(static_cast<int64_t>(k),
                                          direct_sums_[k]);
  }
  for (const auto& s : slots_) {
    if (s.used) out.emplace_back(s.key, s.sum);
  }
  // Entries can exist in both stores around a migration; merge by key.
  std::sort(out.begin(), out.end());
  std::vector<std::pair<int64_t, int64_t>> merged;
  for (const auto& [k, v] : out) {
    if (!merged.empty() && merged.back().first == k) {
      merged.back().second += v;
    } else {
      merged.emplace_back(k, v);
    }
  }
  return merged;
}

}  // namespace avm::vm
