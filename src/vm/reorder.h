// On-the-fly reordering of selective operators (Section III-C).
//
// "Consider a chain of two HashJoin operators A and B. We could filter the
// tuples using A first and later B (essentially executing the SemiJoin
// first), when A eliminates more tuples from the flow. During runtime the
// order of these operations could change dynamically based on the observed
// selectivity."
//
// SelectiveOpReorderer tracks per-operator EMA selectivity and per-tuple
// cost and keeps the chain sorted by filtering power per unit cost.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace avm::vm {

class SelectiveOpReorderer {
 public:
  explicit SelectiveOpReorderer(size_t num_ops, uint64_t resort_every = 16,
                                double ema_alpha = 0.25);

  /// Current evaluation order (indices into the operator chain).
  const std::vector<size_t>& Order() const { return order_; }

  /// Report one evaluation of operator `op`: `tuples_in` candidates,
  /// `tuples_out` survivors, `cycles` spent.
  void Observe(size_t op, uint64_t tuples_in, uint64_t tuples_out,
               uint64_t cycles);

  double SelectivityOf(size_t op) const { return stats_[op].sel_ema; }
  double CostOf(size_t op) const { return stats_[op].cost_ema; }
  uint64_t resorts() const { return resorts_; }

  /// Rank: operators that drop more tuples per cycle go first. This is the
  /// classic (1 - selectivity) / cost greedy ordering.
  double RankOf(size_t op) const;

 private:
  void Resort();

  struct OpStats {
    double sel_ema = 0.5;
    double cost_ema = 1.0;
    uint64_t samples = 0;
  };
  std::vector<OpStats> stats_;
  std::vector<size_t> order_;
  uint64_t observations_ = 0;
  uint64_t resort_every_;
  uint64_t resorts_ = 0;
  double ema_alpha_;
};

}  // namespace avm::vm
