// Compact data types (paper §I, following [12] Gubner & Boncz ADMS'17):
// when column statistics bound value ranges, arithmetic can run in narrower
// integer types — more values per SIMD lane, less memory traffic. The VM
// derives safe execution types through interval arithmetic over the
// expression, falling back to wide types when overflow is possible.
#pragma once

#include <cstdint>
#include <optional>

#include "dsl/ast.h"
#include "storage/types.h"

namespace avm::vm {

struct ValueBounds {
  int64_t lo = 0;
  int64_t hi = 0;

  static ValueBounds Of(int64_t lo, int64_t hi) { return {lo, hi}; }
  bool Contains(int64_t v) const { return v >= lo && v <= hi; }
};

/// Interval arithmetic for the integer scalar ops. Returns nullopt when the
/// result may overflow int64 (the caller must stay wide / bail out).
std::optional<ValueBounds> PropagateBounds(dsl::ScalarOp op,
                                           const ValueBounds& a,
                                           const ValueBounds& b);

/// Narrowest signed type that holds `b`.
TypeId CompactTypeFor(const ValueBounds& b);

/// Accumulator type for summing up to `count` values within `b`
/// (nullopt: not even int64 is safe).
std::optional<TypeId> SumAccumulatorType(const ValueBounds& b, uint64_t count);

}  // namespace avm::vm
