// Normalization of lambda expressions into primitive-operation programs.
//
// Section III-A: "functions … have to be normalized, which means, breaking
// them into simpler operations" — e.g. f(a,b) = sqrt(a²+b²) becomes
// f1(a)=a², f2(b)=b², f3(x,y)=x+y, f4(x)=√x. Each primitive maps 1:1 to a
// pre-compiled vectorized kernel the interpreter can look up at run time.
#pragma once

#include <string>
#include <vector>

#include "dsl/ast.h"
#include "util/status.h"

namespace avm::ir {

/// Operand of a primitive instruction.
enum class ArgKind : uint8_t {
  kInput,    ///< lambda parameter (vector or broadcast scalar)
  kReg,      ///< result of an earlier instruction
  kConstI,   ///< integer literal
  kConstF,   ///< float literal
  kCapture,  ///< free variable captured from the enclosing scalar scope
};

struct PrimArg {
  ArgKind kind = ArgKind::kConstI;
  int index = 0;        // kInput / kReg
  int64_t const_i = 0;  // kConstI
  double const_f = 0;   // kConstF
  std::string name;     // kCapture
  TypeId type = TypeId::kI64;

  static PrimArg Input(int i, TypeId t) {
    return {ArgKind::kInput, i, 0, 0, {}, t};
  }
  static PrimArg Reg(int r, TypeId t) { return {ArgKind::kReg, r, 0, 0, {}, t}; }
  static PrimArg ConstI(int64_t v, TypeId t) {
    return {ArgKind::kConstI, 0, v, 0, {}, t};
  }
  static PrimArg ConstF(double v, TypeId t) {
    return {ArgKind::kConstF, 0, 0, v, {}, t};
  }
  static PrimArg Capture(std::string n, TypeId t) {
    return {ArgKind::kCapture, 0, 0, 0, std::move(n), t};
  }
};

/// One primitive: out_reg := op(args...), element-wise over a chunk.
struct PrimInstr {
  dsl::ScalarOp op = dsl::ScalarOp::kAdd;
  TypeId in_type = TypeId::kI64;   ///< operand element type (kernel key)
  TypeId out_type = TypeId::kI64;  ///< result element type
  int num_args = 2;
  PrimArg args[2];
  int out_reg = 0;
};

/// A normalized lambda: a register machine over chunk-sized vectors.
struct PrimProgram {
  std::vector<TypeId> input_types;   ///< one per lambda parameter
  std::vector<PrimInstr> instrs;     ///< topologically ordered
  int num_regs = 0;
  /// Where the result lives. If result_is_input >= 0 the lambda is an
  /// identity/projection of that input and instrs may be empty.
  int result_reg = -1;
  int result_is_input = -1;
  TypeId result_type = TypeId::kI64;

  size_t NumInstrs() const { return instrs.size(); }
  std::string ToString() const;
};

/// Normalize `lambda` (type-checked, params bound to `input_types`).
/// Performs common-subexpression elimination across the lambda body: the
/// paper's deforestation-friendly representation never materializes a
/// sub-expression twice.
Result<PrimProgram> Normalize(const dsl::Expr& lambda,
                              const std::vector<TypeId>& input_types);

}  // namespace avm::ir
