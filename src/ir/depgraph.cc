#include "ir/depgraph.h"

#include <algorithm>
#include <deque>
#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "dsl/printer.h"
#include "util/string_util.h"

namespace avm::ir {

namespace {

using dsl::Expr;
using dsl::ExprKind;
using dsl::ExprPtr;
using dsl::SkeletonKind;
using dsl::Stmt;
using dsl::StmtKind;
using dsl::StmtPtr;

double BaseCost(SkeletonKind k, uint32_t num_prims) {
  switch (k) {
    case SkeletonKind::kRead: return 1.0;
    case SkeletonKind::kWrite: return 1.0;
    case SkeletonKind::kMap: return 1.0 * num_prims;
    case SkeletonKind::kFilter: return 1.5 + 0.5 * num_prims;
    case SkeletonKind::kFold: return 1.2 * num_prims;
    case SkeletonKind::kCondense: return 1.0;
    case SkeletonKind::kGather: return 2.5;
    case SkeletonKind::kScatter: return 3.0;
    case SkeletonKind::kGen: return 1.0;
    case SkeletonKind::kExpand: return 2.5;
    case SkeletonKind::kMerge: return 4.0;
    case SkeletonKind::kLen: return 0.0;
  }
  return 1.0;
}

uint32_t CountPrims(const Expr& e) {
  uint32_t n = e.kind == ExprKind::kScalarCall ? 1 : 0;
  if (e.body) n += CountPrims(*e.body);
  for (const auto& a : e.args) n += CountPrims(*a);
  return n;
}

std::string ShortLabel(const Expr& e) {
  std::string label = dsl::SkeletonName(e.skeleton);
  if ((e.skeleton == SkeletonKind::kMap ||
       e.skeleton == SkeletonKind::kFilter ||
       e.skeleton == SkeletonKind::kFold) &&
      !e.args.empty() && e.args[0]->kind == ExprKind::kLambda) {
    std::string body = dsl::PrintExpr(*e.args[0]->body);
    if (body.size() > 24) body = body.substr(0, 21) + "...";
    label += " [" + body + "]";
  }
  return label;
}

class GraphBuilder {
 public:
  explicit GraphBuilder(const dsl::Program& program) : program_(program) {}

  Result<DepGraph> Run() {
    // Find the (first) loop; it defines the steady-state pipeline iteration
    // the VM profiles and compiles. Programs without a loop use all stmts.
    const std::vector<StmtPtr>* body = &program_.stmts;
    for (const auto& s : program_.stmts) {
      if (s->kind == StmtKind::kLoop) {
        body = &s->body;
        break;
      }
    }
    for (const auto& s : *body) {
      AVM_RETURN_NOT_OK(VisitStmt(*s));
      ++cur_stmt_index_;
    }
    return std::move(graph_);
  }

 private:
  Status VisitStmt(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::kLet: {
        AVM_ASSIGN_OR_RETURN(int node, VisitExpr(*s.expr));
        if (node >= 0) {
          graph_.nodes()[static_cast<size_t>(node)].label +=
              " -> " + s.var;
          RegisterProducer(s.var, static_cast<uint32_t>(node));
        }
        return Status::OK();
      }
      case StmtKind::kExpr:
      case StmtKind::kAssign: {
        AVM_RETURN_NOT_OK(VisitExpr(*s.expr).status());
        return Status::OK();
      }
      case StmtKind::kIf: {
        AVM_RETURN_NOT_OK(VisitExpr(*s.expr).status());
        for (const auto& c : s.body) AVM_RETURN_NOT_OK(VisitStmt(*c));
        for (const auto& c : s.else_body) AVM_RETURN_NOT_OK(VisitStmt(*c));
        return Status::OK();
      }
      case StmtKind::kLoop: {
        for (const auto& c : s.body) AVM_RETURN_NOT_OK(VisitStmt(*c));
        return Status::OK();
      }
      default:
        return Status::OK();
    }
  }

  // Returns node id for skeleton expressions (excluding len), -1 otherwise.
  Result<int> VisitExpr(const Expr& e) {
    if (e.kind != ExprKind::kSkeleton) {
      // Scalar expression: recurse to catch nested skeletons (e.g. len).
      for (const auto& a : e.args) {
        AVM_RETURN_NOT_OK(VisitExpr(*a).status());
      }
      return -1;
    }
    if (e.skeleton == SkeletonKind::kLen) {
      // Control-flow helper; not part of the data-parallel graph (Fig. 3
      // excludes mutable-variable updates and control flow).
      return -1;
    }
    DepNode node;
    node.id = static_cast<uint32_t>(graph_.nodes().size());
    node.expr = &e;
    node.kind = e.skeleton;
    node.num_prims = std::max<uint32_t>(1, CountPrims(e));
    node.label = ShortLabel(e);
    node.cost = BaseCost(e.skeleton, node.num_prims);
    node.stmt_index = cur_stmt_index_;
    graph_.nodes().push_back(node);
    const uint32_t id = node.id;

    for (size_t i = 0; i < e.args.size(); ++i) {
      const Expr& a = *e.args[i];
      if (a.kind == ExprKind::kLambda) continue;
      if (a.kind == ExprKind::kVarRef) {
        if (program_.FindData(a.var) != nullptr) {
          bool is_write_dest =
              (e.skeleton == SkeletonKind::kWrite ||
               e.skeleton == SkeletonKind::kScatter) &&
              i == 0;
          auto& n = graph_.nodes()[id];
          if (is_write_dest) {
            n.external_writes.push_back(a.var);
          } else {
            n.external_reads.push_back(a.var);
          }
          continue;
        }
        int prod = graph_.ProducerOf(a.var);
        if (prod >= 0) AddEdge(static_cast<uint32_t>(prod), id);
        continue;
      }
      if (a.kind == ExprKind::kSkeleton) {
        AVM_ASSIGN_OR_RETURN(int child, VisitExpr(a));
        if (child >= 0) {
          // Synthesize a name for the anonymous intermediate.
          std::string name = StrFormat("tmp%d", child);
          graph_.nodes()[static_cast<size_t>(child)].label += " -> " + name;
          RegisterProducer(name, static_cast<uint32_t>(child));
          AddEdge(static_cast<uint32_t>(child), id);
        }
        continue;
      }
      // Scalar expression argument (positions etc.): ignore.
    }
    return static_cast<int>(id);
  }

  void AddEdge(uint32_t from, uint32_t to) {
    graph_.nodes()[from].consumers.push_back(to);
    graph_.nodes()[to].inputs.push_back(from);
  }

  void RegisterProducer(const std::string& name, uint32_t node) {
    graph_.RegisterProducer(name, node);
  }

  const dsl::Program& program_;
  DepGraph graph_;
  uint32_t cur_stmt_index_ = 0;  ///< top-level body statement ordinal
};

}  // namespace

Result<DepGraph> DepGraph::Build(const dsl::Program& program) {
  return GraphBuilder(program).Run();
}

int DepGraph::ProducerOf(const std::string& name) const {
  for (auto it = producers_.rbegin(); it != producers_.rend(); ++it) {
    if (it->first == name) return static_cast<int>(it->second);
  }
  return -1;
}

void DepGraph::RegisterProducer(const std::string& name, uint32_t node) {
  producers_.emplace_back(name, node);
}

std::string DepGraph::OutputNameOf(uint32_t node) const {
  for (const auto& [name, id] : producers_) {
    if (id == node) return name;
  }
  return StrFormat("node%u", node);
}

std::vector<uint32_t> DepGraph::TopoOrder() const {
  std::vector<uint32_t> indeg(nodes_.size(), 0);
  for (const auto& n : nodes_) {
    indeg[n.id] = static_cast<uint32_t>(n.inputs.size());
  }
  std::deque<uint32_t> ready;
  for (const auto& n : nodes_) {
    if (indeg[n.id] == 0) ready.push_back(n.id);
  }
  std::vector<uint32_t> order;
  order.reserve(nodes_.size());
  while (!ready.empty()) {
    uint32_t id = ready.front();
    ready.pop_front();
    order.push_back(id);
    for (uint32_t c : nodes_[id].consumers) {
      if (--indeg[c] == 0) ready.push_back(c);
    }
  }
  return order;
}

std::string DepGraph::ToDot() const {
  std::ostringstream os;
  os << "digraph deps {\n  rankdir=BT;\n";
  for (const auto& n : nodes_) {
    os << StrFormat("  n%u [label=\"%s\"];\n", n.id, n.label.c_str());
  }
  for (const auto& n : nodes_) {
    for (uint32_t c : n.consumers) {
      os << StrFormat("  n%u -> n%u;\n", n.id, c);
    }
  }
  os << "}\n";
  return os.str();
}

namespace {

bool NodeEligible(const DepNode& n, const PartitionConstraints& c) {
  switch (n.kind) {
    case SkeletonKind::kFilter:
      return c.allow_filter;
    case SkeletonKind::kCondense:
      return c.allow_condense;
    case SkeletonKind::kGather:
    case SkeletonKind::kScatter:
      return c.allow_scatter_gather;
    case SkeletonKind::kMerge:
      return false;  // complex op; hinders vectorization (paper §III-B)
    case SkeletonKind::kExpand:
      // Expand crosses row domains: its output length is data-dependent
      // (the hash-join fan-out), so it can never share a fixed-n trace
      // with its chunk-domain inputs. Keeping it out of traces also keeps
      // every domain-crossing edge out of compiled code — pair-domain
      // consumers connect to the probe domain only through expand or
      // through chunk-base gathers, which codegen declines.
      return false;
    default:
      return true;
  }
}

// Count the memory streams of a candidate region: external arrays plus
// values crossing the region boundary.
size_t CountStreams(const DepGraph& g, const std::set<uint32_t>& region) {
  std::set<std::string> streams;
  for (uint32_t id : region) {
    const DepNode& n = g.nodes()[id];
    for (const auto& r : n.external_reads) streams.insert("D:" + r);
    for (const auto& w : n.external_writes) streams.insert("D:" + w);
    for (uint32_t in : n.inputs) {
      if (!region.contains(in)) streams.insert("V:" + g.OutputNameOf(in));
    }
    bool escapes = false;
    for (uint32_t c : n.consumers) {
      if (!region.contains(c)) escapes = true;
    }
    if (escapes) streams.insert("V:" + g.OutputNameOf(id));
  }
  return streams.size();
}

}  // namespace

int StmtConvexityViolation(const DepGraph& graph,
                           const std::set<uint32_t>& region) {
  uint32_t anchor = UINT32_MAX, last = 0;
  for (uint32_t id : region) {
    anchor = std::min(anchor, graph.nodes()[id].stmt_index);
    last = std::max(last, graph.nodes()[id].stmt_index);
  }
  // Value edges: inputs must predate the anchor.
  for (uint32_t id : region) {
    for (uint32_t in : graph.nodes()[id].inputs) {
      if (!region.contains(in) &&
          graph.nodes()[in].stmt_index >= anchor) {
        return static_cast<int>(in);
      }
    }
  }
  // Data arrays the region touches.
  std::set<std::string> reads, writes;
  for (uint32_t id : region) {
    const DepNode& n = graph.nodes()[id];
    reads.insert(n.external_reads.begin(), n.external_reads.end());
    writes.insert(n.external_writes.begin(), n.external_writes.end());
  }
  // A fused read-after-write of one array would see pre-write data
  // (compiled data writes publish after the call).
  for (uint32_t id : region) {
    for (const auto& r : graph.nodes()[id].external_reads) {
      if (writes.contains(r)) return static_cast<int>(id);
    }
  }
  // Outside accessors inside the statement span: an interpreted write to
  // an array the region reads (or writes), or an interpreted read of an
  // array the region writes, would observe/produce a different order than
  // statement-by-statement interpretation.
  for (const DepNode& n : graph.nodes()) {
    if (region.contains(n.id)) continue;
    if (n.stmt_index < anchor || n.stmt_index > last) continue;
    for (const auto& w : n.external_writes) {
      if (reads.contains(w) || writes.contains(w)) {
        return static_cast<int>(n.id);
      }
    }
    for (const auto& r : n.external_reads) {
      if (writes.contains(r)) return static_cast<int>(n.id);
    }
  }
  return -1;
}

int StmtConvexityViolation(const DepGraph& graph,
                           const std::vector<uint32_t>& region) {
  return StmtConvexityViolation(
      graph, std::set<uint32_t>(region.begin(), region.end()));
}

std::vector<std::string> Trace::ChunkVarInputs(
    const dsl::Program& program) const {
  std::vector<std::string> out;
  for (const auto& name : inputs) {
    if (program.FindData(name) == nullptr) out.push_back(name);
  }
  return out;
}

std::vector<Trace> GreedyPartition(const DepGraph& graph,
                                   const PartitionConstraints& constraints) {
  const auto& nodes = graph.nodes();
  std::vector<bool> visited(nodes.size(), false);
  std::vector<Trace> traces;

  auto topo = graph.TopoOrder();
  std::vector<uint32_t> topo_pos(nodes.size(), 0);
  for (size_t i = 0; i < topo.size(); ++i) topo_pos[topo[i]] = i;

  while (true) {
    // Seed: most expensive unvisited eligible node.
    int seed = -1;
    for (const auto& n : nodes) {
      if (visited[n.id] || !NodeEligible(n, constraints)) continue;
      if (seed < 0 || n.cost > nodes[static_cast<size_t>(seed)].cost) {
        seed = static_cast<int>(n.id);
      }
    }
    if (seed < 0) break;

    std::set<uint32_t> region{static_cast<uint32_t>(seed)};
    while (region.size() < constraints.max_nodes) {
      // Candidate = highest-cost unvisited eligible neighbor that keeps the
      // stream budget.
      int best = -1;
      for (uint32_t id : region) {
        auto consider = [&](uint32_t cand) {
          if (visited[cand] || region.contains(cand)) return;
          if (!NodeEligible(nodes[cand], constraints)) return;
          std::set<uint32_t> tentative = region;
          tentative.insert(cand);
          if (CountStreams(graph, tentative) > constraints.max_streams) return;
          if (StmtConvexityViolation(graph, tentative) >= 0) return;
          if (best < 0 ||
              nodes[cand].cost > nodes[static_cast<size_t>(best)].cost) {
            best = static_cast<int>(cand);
          }
        };
        for (uint32_t in : nodes[id].inputs) consider(in);
        for (uint32_t c : nodes[id].consumers) consider(c);
      }
      if (best < 0) break;
      region.insert(static_cast<uint32_t>(best));
    }

    Trace t;
    for (uint32_t id : region) {
      visited[id] = true;
      t.total_cost += nodes[id].cost;
      t.node_ids.push_back(id);
    }
    std::sort(t.node_ids.begin(), t.node_ids.end(),
              [&](uint32_t a, uint32_t b) { return topo_pos[a] < topo_pos[b]; });
    // Boundary names.
    std::set<std::string> ins, outs;
    for (uint32_t id : region) {
      const DepNode& n = nodes[id];
      for (const auto& r : n.external_reads) ins.insert(r);
      for (const auto& w : n.external_writes) outs.insert(w);
      for (uint32_t in : n.inputs) {
        if (!region.contains(in)) ins.insert(graph.OutputNameOf(in));
      }
      bool escapes = false;
      for (uint32_t c : n.consumers) {
        if (!region.contains(c)) escapes = true;
      }
      if (escapes) outs.insert(graph.OutputNameOf(id));
    }
    t.inputs.assign(ins.begin(), ins.end());
    t.outputs.assign(outs.begin(), outs.end());
    if (t.total_cost >= constraints.min_trace_cost) {
      traces.push_back(std::move(t));
    }
  }
  std::sort(traces.begin(), traces.end(),
            [](const Trace& a, const Trace& b) {
              return a.total_cost > b.total_cost;
            });
  return traces;
}

}  // namespace avm::ir
