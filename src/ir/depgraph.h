// Dependency graph over the data-parallel operations of a loop body (Fig. 3)
// and trace extraction via greedy partitioning (Section III-B).
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "dsl/ast.h"
#include "util/status.h"

namespace avm::ir {

/// A node is one data-parallel skeleton application in the loop body.
struct DepNode {
  uint32_t id = 0;                    ///< index in DepGraph::nodes
  const dsl::Expr* expr = nullptr;    ///< the skeleton call it represents
  dsl::SkeletonKind kind = dsl::SkeletonKind::kMap;
  std::string label;                  ///< human-readable ("map *2")
  /// Ordinal of the top-level loop-body statement this node belongs to.
  /// A trace executes at its anchor (first covered) statement, so every
  /// value it consumes must be produced BEFORE that ordinal — the
  /// partitioner keeps regions statement-convex with it (see
  /// GreedyPartition), or a trace spanning an interpreted statement (e.g.
  /// a filter between its reads and its consumers) would read the
  /// previous iteration's value.
  uint32_t stmt_index = 0;

  std::vector<uint32_t> inputs;       ///< producing nodes
  std::vector<uint32_t> consumers;    ///< consuming nodes

  /// External arrays touched (data arrays read/written).
  std::vector<std::string> external_reads;
  std::vector<std::string> external_writes;

  /// Estimated (or profiled) cost per tuple — the partitioner's priority.
  double cost = 1.0;
  /// Number of primitive instructions (maps/filters after normalization).
  uint32_t num_prims = 1;
};

class DepGraph {
 public:
  /// Build the graph for the (first) loop body of a type-checked program.
  /// Nodes are created for every skeleton expression reachable from the loop
  /// body, with def-use edges through `let` bindings.
  static Result<DepGraph> Build(const dsl::Program& program);

  const std::vector<DepNode>& nodes() const { return nodes_; }
  std::vector<DepNode>& nodes() { return nodes_; }
  size_t size() const { return nodes_.size(); }

  /// Node producing the value bound to `name`, or -1.
  int ProducerOf(const std::string& name) const;

  /// Name of the value a node produces ("a", "tmp3", ...).
  std::string OutputNameOf(uint32_t node) const;

  /// Record that `node` produces the value named `name` (used by Build).
  void RegisterProducer(const std::string& name, uint32_t node);

  /// Topological order (inputs before consumers).
  std::vector<uint32_t> TopoOrder() const;

  std::string ToDot() const;  ///< graphviz, for documentation/debugging

 private:
  std::vector<DepNode> nodes_;
  std::vector<std::pair<std::string, uint32_t>> producers_;
};

/// Heuristic constraints of the greedy partitioner (paper §III-B):
///  - `max_streams`: no more than n inputs+intermediates per function,
///    derived from the TLB size (prevents TLB thrashing);
///  - `allow_filter`: when false, filter ops are not merged into functions
///    (restricting branch-misprediction impact / selection-vector data
///    dependencies to dedicated functions);
///  - `min_trace_cost`: traces cheaper than this are not worth compiling.
struct PartitionConstraints {
  size_t max_streams = 12;
  bool allow_filter = false;
  bool allow_condense = true;
  bool allow_scatter_gather = true;
  double min_trace_cost = 0.0;
  size_t max_nodes = 64;
};

/// A trace: a connected set of graph nodes compiled as one function.
struct Trace {
  std::vector<uint32_t> node_ids;      ///< in topological order
  std::vector<std::string> inputs;     ///< value names entering the trace
  std::vector<std::string> outputs;    ///< value names leaving the trace
  double total_cost = 0;

  bool Contains(uint32_t id) const {
    for (uint32_t n : node_ids) {
      if (n == id) return true;
    }
    return false;
  }

  /// The boundary inputs that are chunk *values* of the environment (as
  /// opposed to `data` arrays accessed through read windows): the inputs
  /// that may carry a selection vector at run time. The VM observes their
  /// selection state to pick the trace variant to compile (the
  /// selection-carrying part of a jit::Situation).
  std::vector<std::string> ChunkVarInputs(const dsl::Program& program) const;
};

/// Statement-convexity check shared by the partitioner and the trace code
/// generator: a trace executes all-at-once at its anchor (earliest)
/// statement, so its effects must commute with every statement it spans.
/// A region is convex when
///  - every value entering it is produced BEFORE its anchor statement (an
///    input produced by an interpreted statement between the covered ones
///    — e.g. a filter the constraints exclude — would still hold the
///    previous iteration's value),
///  - no node OUTSIDE the region but inside its statement span touches a
///    data array the region accesses conflictingly (outside write to an
///    array the region reads or writes; outside read of an array the
///    region writes), and
///  - the region itself never reads a data array it also writes (compiled
///    writes publish after the call, so a fused read-after-write would see
///    pre-write data).
/// Returns the id of a violating node, or -1 when the region is convex.
int StmtConvexityViolation(const DepGraph& graph,
                           const std::set<uint32_t>& region);
/// Convenience overload for callers holding the region as an id vector.
int StmtConvexityViolation(const DepGraph& graph,
                           const std::vector<uint32_t>& region);

/// Greedy partitioning: repeatedly seed with the most expensive unvisited
/// node and grow along edges while constraints hold. Regions are kept
/// statement-convex (StmtConvexityViolation). Returns traces sorted by
/// descending total cost. Traces may not cover the whole graph (remaining
/// nodes stay interpreted) — exactly as the paper allows.
std::vector<Trace> GreedyPartition(const DepGraph& graph,
                                   const PartitionConstraints& constraints);

}  // namespace avm::ir
