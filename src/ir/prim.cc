#include "ir/prim.h"

#include <sstream>
#include <unordered_map>

#include "dsl/printer.h"
#include "dsl/typecheck.h"
#include "util/string_util.h"

namespace avm::ir {

namespace {

using dsl::Expr;
using dsl::ExprKind;
using dsl::ScalarOp;

class NormalizeCtx {
 public:
  NormalizeCtx(const Expr& lambda, const std::vector<TypeId>& input_types)
      : lambda_(lambda) {
    prog_.input_types = input_types;
  }

  Result<PrimProgram> Run() {
    if (lambda_.kind != ExprKind::kLambda) {
      return Status::InvalidArgument("Normalize expects a lambda");
    }
    if (lambda_.params.size() != prog_.input_types.size()) {
      return Status::InvalidArgument("lambda arity mismatch");
    }
    AVM_ASSIGN_OR_RETURN(PrimArg result, Emit(*lambda_.body));
    // Surface the result position.
    switch (result.kind) {
      case ArgKind::kReg:
        prog_.result_reg = result.index;
        break;
      case ArgKind::kInput:
        prog_.result_is_input = result.index;
        break;
      case ArgKind::kConstI:
      case ArgKind::kConstF:
      case ArgKind::kCapture: {
        // Materialize via a copy (cast to own type acts as mov).
        PrimInstr instr;
        instr.op = ScalarOp::kCast;
        instr.in_type = result.type;
        instr.out_type = result.type;
        instr.num_args = 1;
        instr.args[0] = result;
        instr.out_reg = prog_.num_regs++;
        prog_.instrs.push_back(instr);
        prog_.result_reg = instr.out_reg;
        break;
      }
    }
    prog_.result_type = lambda_.body->type;
    return std::move(prog_);
  }

 private:
  // Emit code for `e`; returns the operand that holds its value.
  Result<PrimArg> Emit(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kConst:
        return e.const_is_float ? PrimArg::ConstF(e.const_f, e.type)
                                : PrimArg::ConstI(e.const_i, e.type);
      case ExprKind::kVarRef: {
        for (size_t i = 0; i < lambda_.params.size(); ++i) {
          if (lambda_.params[i] == e.var) {
            return PrimArg::Input(static_cast<int>(i), prog_.input_types[i]);
          }
        }
        // Free variable: captured scalar from the enclosing environment.
        return PrimArg::Capture(e.var, e.type);
      }
      case ExprKind::kScalarCall: {
        // CSE: identical subtrees normalize to the same register.
        std::string key = dsl::PrintExpr(e);
        auto it = cse_.find(key);
        if (it != cse_.end()) return it->second;

        PrimInstr instr;
        instr.op = e.op;
        instr.num_args = static_cast<int>(e.args.size());
        if (instr.num_args > 2) {
          return Status::InvalidArgument("primitive arity > 2");
        }
        for (int i = 0; i < instr.num_args; ++i) {
          AVM_ASSIGN_OR_RETURN(PrimArg a, Emit(*e.args[i]));
          instr.args[i] = a;
        }
        // For binary ops with mixed operand types, unify the input type.
        // Constants and captured scalars are materialized at the kernel's
        // input type by the executor, so they coerce for free; when a
        // constant fits the other operand's (narrower) type we compare in
        // the narrow type — compact-data-types thinking applied to
        // predicates like `x <= 10471` over i32 columns.
        TypeId in_type = e.args[0]->type;
        if (instr.num_args == 2 && e.args[0]->type != e.args[1]->type) {
          TypeId common =
              dsl::PromoteTypes(e.args[0]->type, e.args[1]->type);
          auto const_fits = [&](int ci, TypeId target) {
            const Expr& c = *e.args[ci];
            if (c.kind != ExprKind::kConst) return false;
            if (IsFloatType(target)) return true;
            if (c.const_is_float) return false;
            return TypeWidth(SmallestIntTypeFor(c.const_i, c.const_i)) <=
                   TypeWidth(target);
          };
          if (const_fits(1, e.args[0]->type) &&
              e.args[1]->kind == ExprKind::kConst) {
            common = e.args[0]->type;
          } else if (const_fits(0, e.args[1]->type) &&
                     e.args[0]->kind == ExprKind::kConst) {
            common = e.args[1]->type;
          }
          for (int i = 0; i < 2; ++i) {
            if (e.args[i]->type == common) continue;
            ArgKind k = instr.args[i].kind;
            if (k == ArgKind::kConstI || k == ArgKind::kConstF ||
                k == ArgKind::kCapture) {
              instr.args[i].type = common;  // coerced at materialization
            } else {
              instr.args[i] = EmitCast(instr.args[i], common);
            }
          }
          in_type = common;
        }
        instr.in_type = in_type;
        instr.out_type = e.type;
        if (e.op == ScalarOp::kCast) {
          instr.out_type = e.cast_to;
        }
        instr.out_reg = prog_.num_regs++;
        prog_.instrs.push_back(instr);
        PrimArg out = PrimArg::Reg(instr.out_reg, instr.out_type);
        cse_.emplace(std::move(key), out);
        return out;
      }
      default:
        return Status::InvalidArgument(
            "lambda bodies may only contain scalar expressions");
    }
  }

  PrimArg EmitCast(const PrimArg& a, TypeId to) {
    PrimInstr instr;
    instr.op = ScalarOp::kCast;
    instr.in_type = a.type;
    instr.out_type = to;
    instr.num_args = 1;
    instr.args[0] = a;
    instr.out_reg = prog_.num_regs++;
    prog_.instrs.push_back(instr);
    return PrimArg::Reg(instr.out_reg, to);
  }

  const Expr& lambda_;
  PrimProgram prog_;
  std::unordered_map<std::string, PrimArg> cse_;
};

std::string ArgToString(const PrimArg& a) {
  switch (a.kind) {
    case ArgKind::kInput: return StrFormat("in%d", a.index);
    case ArgKind::kReg: return StrFormat("r%d", a.index);
    case ArgKind::kConstI: return StrFormat("%lld", (long long)a.const_i);
    case ArgKind::kConstF: return StrFormat("%g", a.const_f);
    case ArgKind::kCapture: return "$" + a.name;
  }
  return "?";
}

}  // namespace

std::string PrimProgram::ToString() const {
  std::ostringstream os;
  for (const auto& in : instrs) {
    os << StrFormat("r%d = %s_%s(", in.out_reg, dsl::ScalarOpName(in.op),
                    TypeName(in.in_type));
    for (int i = 0; i < in.num_args; ++i) {
      if (i != 0) os << ", ";
      os << ArgToString(in.args[i]);
    }
    os << ")\n";
  }
  if (result_is_input >= 0) {
    os << StrFormat("result = in%d\n", result_is_input);
  } else {
    os << StrFormat("result = r%d\n", result_reg);
  }
  return os.str();
}

Result<PrimProgram> Normalize(const dsl::Expr& lambda,
                              const std::vector<TypeId>& input_types) {
  return NormalizeCtx(lambda, input_types).Run();
}

}  // namespace avm::ir
