#include "relational/q1.h"

#include <algorithm>
#include <cstring>

#include "dsl/typecheck.h"
#include "interp/kernels.h"
#include "jit/source_jit.h"
#include "storage/bitpack.h"
#include "util/string_util.h"

namespace avm::relational {

namespace {

using interp::FilterKernelFn;
using interp::KernelRegistry;
using interp::OperandMode;
using interp::PrimKernelFn;

struct Q1Columns {
  const Column* qty;
  const Column* price;
  const Column* disc;
  const Column* tax;
  const Column* rf;
  const Column* ls;
  const Column* sd;
};

Result<Q1Columns> ResolveColumns(const Table& t) {
  Q1Columns c{};
  AVM_ASSIGN_OR_RETURN(c.qty, t.ColumnByName("l_quantity"));
  AVM_ASSIGN_OR_RETURN(c.price, t.ColumnByName("l_extendedprice"));
  AVM_ASSIGN_OR_RETURN(c.disc, t.ColumnByName("l_discount"));
  AVM_ASSIGN_OR_RETURN(c.tax, t.ColumnByName("l_tax"));
  AVM_ASSIGN_OR_RETURN(c.rf, t.ColumnByName("l_returnflag"));
  AVM_ASSIGN_OR_RETURN(c.ls, t.ColumnByName("l_linestatus"));
  AVM_ASSIGN_OR_RETURN(c.sd, t.ColumnByName("l_shipdate"));
  return c;
}

}  // namespace

Result<Q1Result> RunQ1Scalar(const Table& lineitem) {
  AVM_ASSIGN_OR_RETURN(Q1Columns c, ResolveColumns(lineitem));
  const uint64_t n = lineitem.num_rows();
  Q1Result r;
  constexpr uint32_t kBatch = 4096;
  std::vector<int64_t> qty(kBatch), price(kBatch), disc(kBatch), tax(kBatch);
  std::vector<int8_t> rf(kBatch), ls(kBatch);
  std::vector<int32_t> sd(kBatch);
  for (uint64_t pos = 0; pos < n; pos += kBatch) {
    const uint32_t m = static_cast<uint32_t>(std::min<uint64_t>(kBatch,
                                                                n - pos));
    AVM_RETURN_NOT_OK(c.qty->Read(pos, m, qty.data()));
    AVM_RETURN_NOT_OK(c.price->Read(pos, m, price.data()));
    AVM_RETURN_NOT_OK(c.disc->Read(pos, m, disc.data()));
    AVM_RETURN_NOT_OK(c.tax->Read(pos, m, tax.data()));
    AVM_RETURN_NOT_OK(c.rf->Read(pos, m, rf.data()));
    AVM_RETURN_NOT_OK(c.ls->Read(pos, m, ls.data()));
    AVM_RETURN_NOT_OK(c.sd->Read(pos, m, sd.data()));
    for (uint32_t i = 0; i < m; ++i) {
      if (sd[i] > kQ1Cutoff) continue;
      const int g = static_cast<int>(rf[i]) * 2 + static_cast<int>(ls[i]);
      const int64_t dp = price[i] * (100 - disc[i]);
      Q1Group& grp = r.groups[static_cast<size_t>(g)];
      grp.sum_qty += qty[i];
      grp.sum_base_price += price[i];
      grp.sum_disc_price += dp;
      grp.sum_charge += dp * (100 + tax[i]);
      ++grp.count;
    }
  }
  return r;
}

Result<Q1Result> RunQ1Vectorized(const Table& lineitem, uint32_t chunk_size) {
  AVM_ASSIGN_OR_RETURN(Q1Columns c, ResolveColumns(lineitem));
  const KernelRegistry& reg = KernelRegistry::Get();
  const uint64_t n = lineitem.num_rows();
  Q1Result r;

  std::vector<int64_t> qty(chunk_size), price(chunk_size), disc(chunk_size),
      tax(chunk_size), d100(chunk_size), dp(chunk_size), t108(chunk_size),
      ch(chunk_size);
  std::vector<int8_t> rf(chunk_size), ls(chunk_size);
  std::vector<int32_t> sd(chunk_size);
  std::vector<sel_t> sel(chunk_size);

  FilterKernelFn filter = reg.Filter(dsl::ScalarOp::kLe, TypeId::kI32,
                                     /*rhs_scalar=*/true, /*selective=*/false);
  PrimKernelFn sub_sv =
      reg.Binary(dsl::ScalarOp::kSub, TypeId::kI64, OperandMode::kScalarVec,
                 /*selective=*/true);
  PrimKernelFn add_vs =
      reg.Binary(dsl::ScalarOp::kAdd, TypeId::kI64, OperandMode::kVecScalar,
                 /*selective=*/true);
  PrimKernelFn mul_vv =
      reg.Binary(dsl::ScalarOp::kMul, TypeId::kI64, OperandMode::kVecVec,
                 /*selective=*/true);

  const int32_t cutoff = kQ1Cutoff;
  const int64_t hundred = 100;
  for (uint64_t pos = 0; pos < n; pos += chunk_size) {
    const uint32_t m =
        static_cast<uint32_t>(std::min<uint64_t>(chunk_size, n - pos));
    AVM_RETURN_NOT_OK(c.qty->Read(pos, m, qty.data()));
    AVM_RETURN_NOT_OK(c.price->Read(pos, m, price.data()));
    AVM_RETURN_NOT_OK(c.disc->Read(pos, m, disc.data()));
    AVM_RETURN_NOT_OK(c.tax->Read(pos, m, tax.data()));
    AVM_RETURN_NOT_OK(c.rf->Read(pos, m, rf.data()));
    AVM_RETURN_NOT_OK(c.ls->Read(pos, m, ls.data()));
    AVM_RETURN_NOT_OK(c.sd->Read(pos, m, sd.data()));

    const uint32_t k = filter(sd.data(), &cutoff, nullptr, m, sel.data());
    // 100 - disc
    sub_sv(&hundred, disc.data(), d100.data(), sel.data(), k);
    // price * (100 - disc)
    mul_vv(price.data(), d100.data(), dp.data(), sel.data(), k);
    // tax + 100
    add_vs(tax.data(), &hundred, t108.data(), sel.data(), k);
    // disc_price * (100 + tax)
    mul_vv(dp.data(), t108.data(), ch.data(), sel.data(), k);

    // Fused aggregation primitive over the selection.
    for (uint32_t j = 0; j < k; ++j) {
      const uint32_t i = sel[j];
      const int g = static_cast<int>(rf[i]) * 2 + static_cast<int>(ls[i]);
      Q1Group& grp = r.groups[static_cast<size_t>(g)];
      grp.sum_qty += qty[i];
      grp.sum_base_price += price[i];
      grp.sum_disc_price += dp[i];
      grp.sum_charge += ch[i];
      ++grp.count;
    }
  }
  return r;
}

namespace {

// Decode an i64 column window into i32, exploiting FOR compression when the
// window lies in a FOR block with narrow deltas (compressed execution: the
// add-reference happens in i32). Falls back to decode + narrow.
Status ReadAsI32(const Column& col, uint64_t pos, uint32_t m, int32_t* out,
                 std::vector<int64_t>* wide_scratch) {
  auto blk = col.BlockAt(pos);
  if (blk.ok()) {
    const Block* b = blk.value().first;
    const uint32_t off = blk.value().second;
    if (b->scheme == Scheme::kFor && b->bit_width <= 31 && off + m <= b->count &&
        b->for_ref >= INT32_MIN && b->for_ref <= INT32_MAX) {
      const int32_t ref = static_cast<int32_t>(b->for_ref);
      // Narrow decode: unpack deltas straight into i32 and add the ref.
      for (uint32_t i = 0; i < m; ++i) {
        out[i] = ref + static_cast<int32_t>(ReadBits(
                           b->data.data(),
                           static_cast<size_t>(off + i) * b->bit_width,
                           b->bit_width));
      }
      return Status::OK();
    }
  }
  wide_scratch->resize(m);
  AVM_RETURN_NOT_OK(col.Read(pos, m, wide_scratch->data()));
  for (uint32_t i = 0; i < m; ++i) {
    out[i] = static_cast<int32_t>((*wide_scratch)[i]);
  }
  return Status::OK();
}

}  // namespace

Result<Q1Result> RunQ1VectorizedCompact(const Table& lineitem,
                                        uint32_t chunk_size) {
  AVM_ASSIGN_OR_RETURN(Q1Columns c, ResolveColumns(lineitem));
  const KernelRegistry& reg = KernelRegistry::Get();
  const uint64_t n = lineitem.num_rows();
  Q1Result r;

  // Compact execution types justified by the generator's value bounds:
  //   price <= 10.5e6  -> i32;  (100-disc) <= 100 -> i32
  //   price*(100-disc) <= 1.05e9 -> still i32 (verified via interval math)
  //   charge needs i64 -> computed in the fused aggregation loop.
  std::vector<int32_t> qty32(chunk_size), price32(chunk_size),
      disc32(chunk_size), tax32(chunk_size), d100(chunk_size), dp32(chunk_size);
  std::vector<int8_t> rf(chunk_size), ls(chunk_size);
  std::vector<int32_t> sd(chunk_size);
  std::vector<sel_t> sel(chunk_size);
  std::vector<int64_t> wide;

  FilterKernelFn filter = reg.Filter(dsl::ScalarOp::kLe, TypeId::kI32,
                                     true, false);
  PrimKernelFn sub_sv = reg.Binary(dsl::ScalarOp::kSub, TypeId::kI32,
                                   OperandMode::kScalarVec, true);
  PrimKernelFn mul_vv = reg.Binary(dsl::ScalarOp::kMul, TypeId::kI32,
                                   OperandMode::kVecVec, true);

  const int32_t cutoff = kQ1Cutoff;
  const int32_t hundred32 = 100;
  for (uint64_t pos = 0; pos < n; pos += chunk_size) {
    const uint32_t m =
        static_cast<uint32_t>(std::min<uint64_t>(chunk_size, n - pos));
    AVM_RETURN_NOT_OK(ReadAsI32(*c.qty, pos, m, qty32.data(), &wide));
    AVM_RETURN_NOT_OK(ReadAsI32(*c.price, pos, m, price32.data(), &wide));
    AVM_RETURN_NOT_OK(ReadAsI32(*c.disc, pos, m, disc32.data(), &wide));
    AVM_RETURN_NOT_OK(ReadAsI32(*c.tax, pos, m, tax32.data(), &wide));
    AVM_RETURN_NOT_OK(c.rf->Read(pos, m, rf.data()));
    AVM_RETURN_NOT_OK(c.ls->Read(pos, m, ls.data()));
    AVM_RETURN_NOT_OK(c.sd->Read(pos, m, sd.data()));

    const uint32_t k = filter(sd.data(), &cutoff, nullptr, m, sel.data());
    sub_sv(&hundred32, disc32.data(), d100.data(), sel.data(), k);
    mul_vv(price32.data(), d100.data(), dp32.data(), sel.data(), k);

    // Per-chunk pre-aggregation into cache-resident partials, merged below.
    Q1Group partial[8]{};
    for (uint32_t j = 0; j < k; ++j) {
      const uint32_t i = sel[j];
      const int g = static_cast<int>(rf[i]) * 2 + static_cast<int>(ls[i]);
      Q1Group& grp = partial[static_cast<size_t>(g)];
      grp.sum_qty += qty32[i];
      grp.sum_base_price += price32[i];
      grp.sum_disc_price += dp32[i];
      grp.sum_charge +=
          static_cast<int64_t>(dp32[i]) * (100 + tax32[i]);
      ++grp.count;
    }
    for (int g = 0; g < 8; ++g) {
      r.groups[g].sum_qty += partial[g].sum_qty;
      r.groups[g].sum_base_price += partial[g].sum_base_price;
      r.groups[g].sum_disc_price += partial[g].sum_disc_price;
      r.groups[g].sum_charge += partial[g].sum_charge;
      r.groups[g].count += partial[g].count;
    }
  }
  return r;
}

Result<Q1Result> RunQ1CompiledWholeQuery(const Table& lineitem) {
  AVM_ASSIGN_OR_RETURN(Q1Columns c, ResolveColumns(lineitem));
  const uint64_t n = lineitem.num_rows();

  // The HyPer-style plan reads plain memory: decode columns first (a real
  // engine's compiled scan does the equivalent work inline).
  std::vector<int64_t> qty(n), price(n), disc(n), tax(n);
  std::vector<int8_t> rf(n), ls(n);
  std::vector<int32_t> sd(n);
  AVM_RETURN_NOT_OK(c.qty->Read(0, n, qty.data()));
  AVM_RETURN_NOT_OK(c.price->Read(0, n, price.data()));
  AVM_RETURN_NOT_OK(c.disc->Read(0, n, disc.data()));
  AVM_RETURN_NOT_OK(c.tax->Read(0, n, tax.data()));
  AVM_RETURN_NOT_OK(c.rf->Read(0, n, rf.data()));
  AVM_RETURN_NOT_OK(c.ls->Read(0, n, ls.data()));
  AVM_RETURN_NOT_OK(c.sd->Read(0, n, sd.data()));

  const std::string source = StrFormat(R"(#include <cstdint>
extern "C" void avm_q1_whole(const int64_t* qty, const int64_t* price,
                             const int64_t* disc, const int64_t* tax,
                             const int8_t* rf, const int8_t* ls,
                             const int32_t* sd, uint64_t n, int64_t* acc) {
  for (uint64_t i = 0; i < n; ++i) {
    if (sd[i] > %d) continue;
    const int g = (int)rf[i] * 2 + (int)ls[i];
    const int64_t dp = price[i] * (100 - disc[i]);
    int64_t* a = acc + g * 5;
    a[0] += qty[i];
    a[1] += price[i];
    a[2] += dp;
    a[3] += dp * (100 + tax[i]);
    a[4] += 1;
  }
}
)",
                                       kQ1Cutoff);
  using Q1Fn = void (*)(const int64_t*, const int64_t*, const int64_t*,
                        const int64_t*, const int8_t*, const int8_t*,
                        const int32_t*, uint64_t, int64_t*);
  AVM_ASSIGN_OR_RETURN(
      void* sym, jit::SourceJit::Global().CompileAndLoad(source,
                                                         "avm_q1_whole"));
  int64_t acc[40] = {0};
  reinterpret_cast<Q1Fn>(sym)(qty.data(), price.data(), disc.data(),
                              tax.data(), rf.data(), ls.data(), sd.data(), n,
                              acc);
  Q1Result r;
  for (int g = 0; g < 8; ++g) {
    r.groups[g].sum_qty = acc[g * 5 + 0];
    r.groups[g].sum_base_price = acc[g * 5 + 1];
    r.groups[g].sum_disc_price = acc[g * 5 + 2];
    r.groups[g].sum_charge = acc[g * 5 + 3];
    r.groups[g].count = acc[g * 5 + 4];
  }
  return r;
}

Result<engine::Query> MakeQ1Query(const Table& lineitem) {
  using dsl::Cast;
  using dsl::ConstI;
  using dsl::Var;
  engine::QueryBuilder qb(lineitem);
  qb.Filter(Var("l_shipdate") <= ConstI(kQ1Cutoff))
      // disc_price = price * (100 - disc); charge = disc_price * (100+tax).
      .Project("dp", Var("l_extendedprice") * (ConstI(100) - Var("l_discount")))
      .Project("ch", Var("dp") * (ConstI(100) + Var("l_tax")))
      .Aggregate(Cast(TypeId::kI64, Var("l_returnflag")) * ConstI(2) +
                     Cast(TypeId::kI64, Var("l_linestatus")),
                 /*num_groups=*/8)
      .Sum("sum_qty", Var("l_quantity"))
      .Sum("sum_base", Var("l_extendedprice"))
      .Sum("sum_disc", Var("dp"))
      .Sum("sum_charge", Var("ch"))
      .Count("count");
  return qb.Build();
}

Q1Result Q1ResultFromQuery(const engine::Query& query) {
  Q1Result r;
  const std::vector<int64_t>& qty = query.aggregate("sum_qty");
  const std::vector<int64_t>& base = query.aggregate("sum_base");
  const std::vector<int64_t>& disc = query.aggregate("sum_disc");
  const std::vector<int64_t>& charge = query.aggregate("sum_charge");
  const std::vector<int64_t>& count = query.aggregate("count");
  for (int g = 0; g < 8; ++g) {
    r.groups[g].sum_qty = qty[g];
    r.groups[g].sum_base_price = base[g];
    r.groups[g].sum_disc_price = disc[g];
    r.groups[g].sum_charge = charge[g];
    r.groups[g].count = count[g];
  }
  return r;
}

Result<Q1DslRun> RunQ1Engine(const Table& lineitem,
                             engine::EngineOptions options) {
  AVM_ASSIGN_OR_RETURN(engine::Query query, MakeQ1Query(lineitem));
  Q1DslRun out;
  AVM_ASSIGN_OR_RETURN(out.report,
                       engine::ExecEngine::Execute(query.context(), options));
  out.result = Q1ResultFromQuery(query);
  return out;
}

Result<Q1DslRun> RunQ1AdaptiveVm(const Table& lineitem, vm::VmOptions options) {
  engine::EngineOptions eo;
  eo.strategy = options.enable_jit ? engine::ExecutionStrategy::kAdaptiveJit
                                   : engine::ExecutionStrategy::kInterpret;
  eo.vm = options;
  eo.num_workers = 1;
  return RunQ1Engine(lineitem, eo);
}

}  // namespace avm::relational
