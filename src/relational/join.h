// Hash-join substrate and the adaptive semijoin chain (experiment E4).
//
// Section III-C: with a chain of selective HashJoins the VM can execute the
// more selective semijoin first and reorder on the fly when observed
// selectivities drift.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "engine/morsel.h"
#include "engine/query_builder.h"
#include "storage/table.h"
#include "storage/types.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "vm/reorder.h"

namespace avm::relational {

/// Open-addressing hash set over int64 keys (linear probing, pow2 size).
/// This is the build side of a semijoin filter.
class HashSetI64 {
 public:
  explicit HashSetI64(size_t expected = 16);

  void Insert(int64_t key);
  bool Contains(int64_t key) const;
  size_t size() const { return entries_; }

  /// All keys currently in the set (unordered). Used to densify a filter
  /// into a membership array for the engine/QueryBuilder semijoin path.
  std::vector<int64_t> Keys() const;

  /// Probe a chunk: out_sel receives qualifying positions. `in_sel`
  /// optionally restricts the probed positions.
  uint32_t ProbeSel(const int64_t* keys, const sel_t* in_sel, uint32_t n,
                    sel_t* out_sel) const;

 private:
  void Grow();
  std::vector<int64_t> keys_;
  std::vector<uint8_t> used_;
  size_t entries_ = 0;
  size_t mask_ = 0;
};

/// Full hash join (build: key -> payload row ids; probe returns matches).
/// Duplicate build keys are kept: each key chains every inserted row in
/// insertion order, so a probe fans out many-to-many. This is the scalar
/// reference oracle for the engine's QueryBuilder::Join hash path.
class HashJoinI64 {
 public:
  explicit HashJoinI64(size_t expected = 16);
  /// Append (key, row). Duplicate keys accumulate — nothing is replaced.
  void Insert(int64_t key, uint32_t row);
  /// Probe a chunk of keys; for each (probe position, matching build row)
  /// PAIR appends the pair to the outputs — one output per duplicate build
  /// row, build rows in insertion order. Returns the pair count. The
  /// output buffers must hold the worst case: n times the largest
  /// duplicate count on the build side.
  uint32_t Probe(const int64_t* keys, const sel_t* in_sel, uint32_t n,
                 sel_t* out_positions, uint32_t* out_rows) const;
  /// Number of build rows inserted (not distinct keys).
  size_t size() const { return rows_.size(); }

 private:
  static constexpr uint32_t kNil = 0xffffffffu;
  void Grow();
  struct Slot {
    int64_t key;
    uint32_t head;  ///< first entry in rows_ (insertion order)
    uint32_t tail;  ///< last entry, for O(1) append
    uint8_t used;
  };
  struct Entry {
    uint32_t row;
    uint32_t next;  ///< next duplicate of the same key, or kNil
  };
  std::vector<Slot> slots_;
  std::vector<Entry> rows_;
  size_t distinct_ = 0;
  size_t mask_ = 0;
};

/// A chain of semijoin filters applied to chunks, with on-the-fly adaptive
/// reordering by observed selectivity/cost.
class AdaptiveSemijoinChain {
 public:
  enum class OrderPolicy : uint8_t {
    kFixed,     ///< keep the given order
    kAdaptive,  ///< reorder via SelectiveOpReorderer
  };

  AdaptiveSemijoinChain(std::vector<const HashSetI64*> filters,
                        OrderPolicy policy);

  /// Apply all filters to a chunk of column values (one key column per
  /// filter). keys[f] is filter f's probe column. Returns surviving count;
  /// survivors' positions land in out_sel.
  uint32_t FilterChunk(const std::vector<const int64_t*>& keys, uint32_t n,
                       sel_t* out_sel, sel_t* scratch);

  const std::vector<size_t>& CurrentOrder() const {
    return reorderer_.Order();
  }
  uint64_t resorts() const { return reorderer_.resorts(); }

 private:
  std::vector<const HashSetI64*> filters_;
  OrderPolicy policy_;
  vm::SelectiveOpReorderer reorderer_;
};

/// Result of a (possibly parallel) semijoin-chain scan over a probe table.
struct SemijoinScanResult {
  uint64_t survivors = 0;
  size_t morsels = 1;
  size_t workers = 1;
  double wall_seconds = 0;
};

/// Probe `key_columns` of `probe` through the semijoin chain, counting rows
/// that survive every filter. Runs through the engine layer's morsel
/// scheduler: with `num_workers > 1` the probe table is cut into row-range
/// morsels, each worker clones the chain (its adaptive reorderer state is
/// private, so per-worker selectivity drift is tracked independently) and
/// survivor counts merge at the barrier. `filters[f]` guards
/// `key_columns[f]`.
Result<SemijoinScanResult> RunSemijoinScan(
    const Table& probe, const std::vector<std::string>& key_columns,
    const std::vector<const HashSetI64*>& filters,
    AdaptiveSemijoinChain::OrderPolicy policy, size_t num_workers = 1,
    ThreadPool* pool = nullptr);

/// The same semijoin count as an engine::QueryBuilder query: each filter is
/// densified into a shared membership array (`membership[key] != 0`) that
/// the lowered program gathers from, so the scan runs through the engine's
/// morsel scheduler and can interleave with other queries on a Session.
/// Requires non-negative probe keys; each membership array is sized from
/// its own probe column's largest key (rejected above ~16M to bound
/// memory). Filter keys beyond that max are dropped — they cannot match
/// any probe row. Submit `query.context()` and read
/// `aggregate("survivors")[0]`.
Result<engine::Query> MakeSemijoinQuery(
    const Table& probe, const std::vector<std::string>& key_columns,
    const std::vector<const HashSetI64*>& filters);

struct SemijoinEngineRun {
  uint64_t survivors = 0;
  engine::ExecReport report;
};

/// The star-schema probe workload as a QueryBuilder query: hash-join
/// `probe` against the `build` dimension on
/// `probe[probe_key] == build[build_key]` — one output PAIR per (probe
/// row, matching build row), so duplicate build keys fan out many-to-many,
/// exactly like a chained HashJoinI64 probe — then aggregate:
///   "revenue"  = SUM(probe[probe_value] * build[build_value])   (i64)
///   "matches"  = COUNT(*)   (pairs, not probe rows)
/// grouped by `probe[probe_value] % num_groups` when `num_groups > 1`.
/// The build side materializes at Build() time into shared lookup arrays
/// (dense key-indexed when keys are unique and in-domain, a CSR hash table
/// otherwise), so the probe is a morsel-parallel gather that interleaves
/// with other queries on a Session. Both tables must outlive the Query.
Result<engine::Query> MakeJoinQuery(const Table& probe,
                                    const std::string& probe_key,
                                    const std::string& probe_value,
                                    const Table& build,
                                    const std::string& build_key,
                                    const std::string& build_value,
                                    size_t num_groups = 1);

struct JoinEngineRun {
  int64_t revenue = 0;
  uint64_t matches = 0;
  engine::ExecReport report;
};

/// Convenience: build MakeJoinQuery (single group) and run it once on the
/// blocking engine facade with the given options.
Result<JoinEngineRun> RunJoinEngine(const Table& probe,
                                    const std::string& probe_key,
                                    const std::string& probe_value,
                                    const Table& build,
                                    const std::string& build_key,
                                    const std::string& build_value,
                                    engine::EngineOptions options = {});

/// Convenience: build MakeSemijoinQuery and run it once on the blocking
/// engine facade with the given options.
Result<SemijoinEngineRun> RunSemijoinEngine(
    const Table& probe, const std::vector<std::string>& key_columns,
    const std::vector<const HashSetI64*>& filters,
    engine::EngineOptions options = {});

}  // namespace avm::relational
