#include "relational/join.h"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "util/bits.h"
#include "util/hash.h"
#include "util/timer.h"

namespace avm::relational {

HashSetI64::HashSetI64(size_t expected) {
  size_t cap = bits::NextPow2(std::max<size_t>(16, expected * 2));
  keys_.assign(cap, 0);
  used_.assign(cap, 0);
  mask_ = cap - 1;
}

void HashSetI64::Grow() {
  std::vector<int64_t> old_keys = std::move(keys_);
  std::vector<uint8_t> old_used = std::move(used_);
  const size_t cap = old_keys.size() * 2;
  keys_.assign(cap, 0);
  used_.assign(cap, 0);
  mask_ = cap - 1;
  entries_ = 0;
  for (size_t i = 0; i < old_keys.size(); ++i) {
    if (old_used[i]) Insert(old_keys[i]);
  }
}

void HashSetI64::Insert(int64_t key) {
  if (entries_ * 2 >= keys_.size()) Grow();
  size_t idx = HashInt64(static_cast<uint64_t>(key)) & mask_;
  while (used_[idx]) {
    if (keys_[idx] == key) return;
    idx = (idx + 1) & mask_;
  }
  used_[idx] = 1;
  keys_[idx] = key;
  ++entries_;
}

std::vector<int64_t> HashSetI64::Keys() const {
  std::vector<int64_t> keys;
  keys.reserve(entries_);
  for (size_t i = 0; i < keys_.size(); ++i) {
    if (used_[i]) keys.push_back(keys_[i]);
  }
  return keys;
}

bool HashSetI64::Contains(int64_t key) const {
  size_t idx = HashInt64(static_cast<uint64_t>(key)) & mask_;
  while (used_[idx]) {
    if (keys_[idx] == key) return true;
    idx = (idx + 1) & mask_;
  }
  return false;
}

uint32_t HashSetI64::ProbeSel(const int64_t* keys, const sel_t* in_sel,
                              uint32_t n, sel_t* out_sel) const {
  uint32_t count = 0;
  if (in_sel != nullptr) {
    for (uint32_t j = 0; j < n; ++j) {
      const uint32_t i = in_sel[j];
      out_sel[count] = i;
      count += Contains(keys[i]) ? 1u : 0u;
    }
  } else {
    for (uint32_t i = 0; i < n; ++i) {
      out_sel[count] = i;
      count += Contains(keys[i]) ? 1u : 0u;
    }
  }
  return count;
}

HashJoinI64::HashJoinI64(size_t expected) {
  size_t cap = bits::NextPow2(std::max<size_t>(16, expected * 2));
  slots_.assign(cap, Slot{0, kNil, kNil, 0});
  mask_ = cap - 1;
}

void HashJoinI64::Grow() {
  // Re-bucket the slots only: the entry chains in rows_ are stable.
  std::vector<Slot> old = std::move(slots_);
  const size_t cap = old.size() * 2;
  slots_.assign(cap, Slot{0, kNil, kNil, 0});
  mask_ = cap - 1;
  for (const auto& s : old) {
    if (!s.used) continue;
    size_t idx = HashInt64(static_cast<uint64_t>(s.key)) & mask_;
    while (slots_[idx].used) idx = (idx + 1) & mask_;
    slots_[idx] = s;
  }
}

void HashJoinI64::Insert(int64_t key, uint32_t row) {
  if (distinct_ * 2 >= slots_.size()) Grow();
  const uint32_t e = static_cast<uint32_t>(rows_.size());
  rows_.push_back({row, kNil});
  size_t idx = HashInt64(static_cast<uint64_t>(key)) & mask_;
  while (slots_[idx].used) {
    if (slots_[idx].key == key) {  // duplicate: append to the chain
      rows_[slots_[idx].tail].next = e;
      slots_[idx].tail = e;
      return;
    }
    idx = (idx + 1) & mask_;
  }
  slots_[idx] = {key, e, e, 1};
  ++distinct_;
}

uint32_t HashJoinI64::Probe(const int64_t* keys, const sel_t* in_sel,
                            uint32_t n, sel_t* out_positions,
                            uint32_t* out_rows) const {
  uint32_t count = 0;
  auto probe_one = [&](uint32_t i) {
    size_t idx = HashInt64(static_cast<uint64_t>(keys[i])) & mask_;
    while (slots_[idx].used) {
      if (slots_[idx].key == keys[i]) {
        for (uint32_t e = slots_[idx].head; e != kNil; e = rows_[e].next) {
          out_positions[count] = i;
          out_rows[count] = rows_[e].row;
          ++count;
        }
        return;
      }
      idx = (idx + 1) & mask_;
    }
  };
  if (in_sel != nullptr) {
    for (uint32_t j = 0; j < n; ++j) probe_one(in_sel[j]);
  } else {
    for (uint32_t i = 0; i < n; ++i) probe_one(i);
  }
  return count;
}

AdaptiveSemijoinChain::AdaptiveSemijoinChain(
    std::vector<const HashSetI64*> filters, OrderPolicy policy)
    : filters_(std::move(filters)), policy_(policy),
      reorderer_(filters_.size()) {}

uint32_t AdaptiveSemijoinChain::FilterChunk(
    const std::vector<const int64_t*>& keys, uint32_t n, sel_t* out_sel,
    sel_t* scratch) {
  const std::vector<size_t>& order = reorderer_.Order();
  const sel_t* cur_sel = nullptr;
  uint32_t cur_n = n;
  sel_t* bufs[2] = {out_sel, scratch};
  int flip = 0;
  for (size_t f : order) {
    const uint64_t t0 = ReadCycleCounter();
    const uint32_t out_n =
        filters_[f]->ProbeSel(keys[f], cur_sel, cur_n, bufs[flip]);
    const uint64_t dt = ReadCycleCounter() - t0;
    if (policy_ == OrderPolicy::kAdaptive) {
      reorderer_.Observe(f, cur_n, out_n, dt);
    }
    cur_sel = bufs[flip];
    cur_n = out_n;
    flip ^= 1;
    if (cur_n == 0) break;
  }
  // Ensure survivors end up in out_sel.
  if (cur_sel != out_sel && cur_n > 0) {
    std::memcpy(out_sel, cur_sel, sizeof(sel_t) * cur_n);
  }
  return cur_n;
}

Result<SemijoinScanResult> RunSemijoinScan(
    const Table& probe, const std::vector<std::string>& key_columns,
    const std::vector<const HashSetI64*>& filters,
    AdaptiveSemijoinChain::OrderPolicy policy, size_t num_workers,
    ThreadPool* pool) {
  if (key_columns.size() != filters.size()) {
    return Status::InvalidArgument(
        "one key column per semijoin filter required");
  }
  std::vector<const Column*> columns(key_columns.size());
  for (size_t f = 0; f < key_columns.size(); ++f) {
    AVM_ASSIGN_OR_RETURN(columns[f], probe.ColumnByName(key_columns[f]));
    if (columns[f]->type() != TypeId::kI64) {
      return Status::TypeError("semijoin key column must be i64: " +
                               key_columns[f]);
    }
  }

  Stopwatch sw;
  constexpr uint32_t kChunk = 4096;
  if (num_workers == 0) num_workers = 1;
  std::vector<engine::Morsel> morsels = engine::PartitionRows(
      probe.num_rows(), num_workers, /*morsel_rows=*/0, kChunk);

  std::atomic<uint64_t> survivors{0};
  auto scan_morsel = [&](const engine::Morsel& m) -> Status {
    // Each worker's chain is private: its adaptive reorderer tracks the
    // selectivity it actually observes on its row ranges.
    AdaptiveSemijoinChain chain(filters, policy);
    std::vector<std::vector<int64_t>> key_bufs(
        columns.size(), std::vector<int64_t>(kChunk));
    std::vector<const int64_t*> key_ptrs(columns.size());
    for (size_t f = 0; f < columns.size(); ++f) {
      key_ptrs[f] = key_bufs[f].data();
    }
    std::vector<sel_t> out_sel(kChunk), scratch(kChunk);
    uint64_t local = 0;
    for (uint64_t pos = m.begin; pos < m.end; pos += kChunk) {
      const uint32_t n =
          static_cast<uint32_t>(std::min<uint64_t>(kChunk, m.end - pos));
      for (size_t f = 0; f < columns.size(); ++f) {
        AVM_RETURN_NOT_OK(columns[f]->Read(pos, n, key_bufs[f].data()));
      }
      local += chain.FilterChunk(key_ptrs, n, out_sel.data(), scratch.data());
    }
    survivors.fetch_add(local, std::memory_order_relaxed);
    return Status::OK();
  };

  ThreadPool& tp = pool != nullptr ? *pool : ThreadPool::Global();
  AVM_RETURN_NOT_OK(engine::RunMorsels(tp, num_workers, morsels, scan_morsel));

  SemijoinScanResult result;
  result.survivors = survivors.load();
  result.morsels = morsels.size();
  result.workers = std::min(num_workers, morsels.size());
  result.wall_seconds = sw.ElapsedSeconds();
  return result;
}

Result<engine::Query> MakeSemijoinQuery(
    const Table& probe, const std::vector<std::string>& key_columns,
    const std::vector<const HashSetI64*>& filters) {
  if (key_columns.size() != filters.size() || filters.empty()) {
    return Status::InvalidArgument(
        "one key column per semijoin filter required");
  }

  // The gather-based membership lookup needs a dense domain covering every
  // key the matching column probes it with: find each column's own key
  // range with one scan (sizing from a global max would inflate every
  // array to the widest column's domain).
  constexpr int64_t kMaxDomain = int64_t{1} << 24;  // 16M slots = 128 MiB
  std::vector<size_t> domains(key_columns.size());
  for (size_t f = 0; f < key_columns.size(); ++f) {
    const std::string& name = key_columns[f];
    AVM_ASSIGN_OR_RETURN(const Column* col, probe.ColumnByName(name));
    if (col->type() != TypeId::kI64) {
      return Status::TypeError("semijoin key column must be i64: " + name);
    }
    int64_t max_key = 0;
    constexpr uint32_t kChunk = 4096;
    std::vector<int64_t> buf(kChunk);
    for (uint64_t pos = 0; pos < col->num_rows(); pos += kChunk) {
      const uint32_t n = static_cast<uint32_t>(
          std::min<uint64_t>(kChunk, col->num_rows() - pos));
      AVM_RETURN_NOT_OK(col->Read(pos, n, buf.data()));
      for (uint32_t i = 0; i < n; ++i) {
        if (buf[i] < 0) {
          return Status::InvalidArgument(
              "engine semijoin requires non-negative keys (column " + name +
              ")");
        }
        max_key = std::max(max_key, buf[i]);
      }
    }
    if (max_key >= kMaxDomain) {  // >= : max_key + 1 must not overflow
      return Status::ResourceExhausted(
          "semijoin key domain too large for a dense membership array "
          "(column " + name + ")");
    }
    domains[f] = static_cast<size_t>(max_key + 1);
  }

  engine::QueryBuilder qb(probe);
  for (size_t f = 0; f < filters.size(); ++f) {
    std::vector<int64_t> membership(domains[f], 0);
    for (int64_t k : filters[f]->Keys()) {
      if (k >= 0 && static_cast<size_t>(k) < domains[f]) membership[k] = 1;
    }
    qb.SemiJoin(key_columns[f], std::move(membership));
  }
  qb.Count("survivors");
  return qb.Build();
}

Result<engine::Query> MakeJoinQuery(const Table& probe,
                                    const std::string& probe_key,
                                    const std::string& probe_value,
                                    const Table& build,
                                    const std::string& build_key,
                                    const std::string& build_value,
                                    size_t num_groups) {
  engine::QueryBuilder qb(probe);
  qb.Join(build, probe_key, build_key, {build_value});
  if (num_groups > 1) {
    using dsl::ConstI;
    using dsl::Var;
    const auto g = static_cast<int64_t>(num_groups);
    // ((v % G) + G) % G keeps any integer value column in-range.
    dsl::ExprPtr grp = dsl::Call(
        dsl::ScalarOp::kMod,
        {dsl::Call(dsl::ScalarOp::kMod, {Var(probe_value), ConstI(g)}) +
             ConstI(g),
         ConstI(g)});
    qb.Aggregate(std::move(grp), num_groups);
  }
  qb.Sum("revenue", dsl::Var(probe_value) * dsl::Var(build_value))
      .Count("matches");
  return qb.Build();
}

Result<JoinEngineRun> RunJoinEngine(const Table& probe,
                                    const std::string& probe_key,
                                    const std::string& probe_value,
                                    const Table& build,
                                    const std::string& build_key,
                                    const std::string& build_value,
                                    engine::EngineOptions options) {
  AVM_ASSIGN_OR_RETURN(
      engine::Query query,
      MakeJoinQuery(probe, probe_key, probe_value, build, build_key,
                    build_value));
  JoinEngineRun run;
  AVM_ASSIGN_OR_RETURN(run.report,
                       engine::ExecEngine::Execute(query.context(), options));
  run.revenue = query.aggregate("revenue")[0];
  run.matches = static_cast<uint64_t>(query.aggregate("matches")[0]);
  return run;
}

Result<SemijoinEngineRun> RunSemijoinEngine(
    const Table& probe, const std::vector<std::string>& key_columns,
    const std::vector<const HashSetI64*>& filters,
    engine::EngineOptions options) {
  AVM_ASSIGN_OR_RETURN(engine::Query query,
                       MakeSemijoinQuery(probe, key_columns, filters));
  SemijoinEngineRun run;
  AVM_ASSIGN_OR_RETURN(run.report,
                       engine::ExecEngine::Execute(query.context(), options));
  run.survivors = static_cast<uint64_t>(query.aggregate("survivors")[0]);
  return run;
}

}  // namespace avm::relational
