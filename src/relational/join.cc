#include "relational/join.h"

#include <cstring>

#include "util/bits.h"
#include "util/hash.h"
#include "util/timer.h"

namespace avm::relational {

HashSetI64::HashSetI64(size_t expected) {
  size_t cap = bits::NextPow2(std::max<size_t>(16, expected * 2));
  keys_.assign(cap, 0);
  used_.assign(cap, 0);
  mask_ = cap - 1;
}

void HashSetI64::Grow() {
  std::vector<int64_t> old_keys = std::move(keys_);
  std::vector<uint8_t> old_used = std::move(used_);
  const size_t cap = old_keys.size() * 2;
  keys_.assign(cap, 0);
  used_.assign(cap, 0);
  mask_ = cap - 1;
  entries_ = 0;
  for (size_t i = 0; i < old_keys.size(); ++i) {
    if (old_used[i]) Insert(old_keys[i]);
  }
}

void HashSetI64::Insert(int64_t key) {
  if (entries_ * 2 >= keys_.size()) Grow();
  size_t idx = HashInt64(static_cast<uint64_t>(key)) & mask_;
  while (used_[idx]) {
    if (keys_[idx] == key) return;
    idx = (idx + 1) & mask_;
  }
  used_[idx] = 1;
  keys_[idx] = key;
  ++entries_;
}

bool HashSetI64::Contains(int64_t key) const {
  size_t idx = HashInt64(static_cast<uint64_t>(key)) & mask_;
  while (used_[idx]) {
    if (keys_[idx] == key) return true;
    idx = (idx + 1) & mask_;
  }
  return false;
}

uint32_t HashSetI64::ProbeSel(const int64_t* keys, const sel_t* in_sel,
                              uint32_t n, sel_t* out_sel) const {
  uint32_t count = 0;
  if (in_sel != nullptr) {
    for (uint32_t j = 0; j < n; ++j) {
      const uint32_t i = in_sel[j];
      out_sel[count] = i;
      count += Contains(keys[i]) ? 1u : 0u;
    }
  } else {
    for (uint32_t i = 0; i < n; ++i) {
      out_sel[count] = i;
      count += Contains(keys[i]) ? 1u : 0u;
    }
  }
  return count;
}

HashJoinI64::HashJoinI64(size_t expected) {
  size_t cap = bits::NextPow2(std::max<size_t>(16, expected * 2));
  slots_.assign(cap, Slot{0, 0, 0});
  mask_ = cap - 1;
}

void HashJoinI64::Grow() {
  std::vector<Slot> old = std::move(slots_);
  const size_t cap = old.size() * 2;
  slots_.assign(cap, Slot{0, 0, 0});
  mask_ = cap - 1;
  entries_ = 0;
  for (const auto& s : old) {
    if (s.used) Insert(s.key, s.row);
  }
}

void HashJoinI64::Insert(int64_t key, uint32_t row) {
  if (entries_ * 2 >= slots_.size()) Grow();
  size_t idx = HashInt64(static_cast<uint64_t>(key)) & mask_;
  while (slots_[idx].used) {
    if (slots_[idx].key == key) {
      slots_[idx].row = row;  // unique-key join: last write wins
      return;
    }
    idx = (idx + 1) & mask_;
  }
  slots_[idx] = {key, row, 1};
  ++entries_;
}

uint32_t HashJoinI64::Probe(const int64_t* keys, const sel_t* in_sel,
                            uint32_t n, sel_t* out_positions,
                            uint32_t* out_rows) const {
  uint32_t count = 0;
  auto probe_one = [&](uint32_t i) {
    size_t idx = HashInt64(static_cast<uint64_t>(keys[i])) & mask_;
    while (slots_[idx].used) {
      if (slots_[idx].key == keys[i]) {
        out_positions[count] = i;
        out_rows[count] = slots_[idx].row;
        ++count;
        return;
      }
      idx = (idx + 1) & mask_;
    }
  };
  if (in_sel != nullptr) {
    for (uint32_t j = 0; j < n; ++j) probe_one(in_sel[j]);
  } else {
    for (uint32_t i = 0; i < n; ++i) probe_one(i);
  }
  return count;
}

AdaptiveSemijoinChain::AdaptiveSemijoinChain(
    std::vector<const HashSetI64*> filters, OrderPolicy policy)
    : filters_(std::move(filters)), policy_(policy),
      reorderer_(filters_.size()) {}

uint32_t AdaptiveSemijoinChain::FilterChunk(
    const std::vector<const int64_t*>& keys, uint32_t n, sel_t* out_sel,
    sel_t* scratch) {
  const std::vector<size_t>& order = reorderer_.Order();
  const sel_t* cur_sel = nullptr;
  uint32_t cur_n = n;
  sel_t* bufs[2] = {out_sel, scratch};
  int flip = 0;
  for (size_t f : order) {
    const uint64_t t0 = ReadCycleCounter();
    const uint32_t out_n =
        filters_[f]->ProbeSel(keys[f], cur_sel, cur_n, bufs[flip]);
    const uint64_t dt = ReadCycleCounter() - t0;
    if (policy_ == OrderPolicy::kAdaptive) {
      reorderer_.Observe(f, cur_n, out_n, dt);
    }
    cur_sel = bufs[flip];
    cur_n = out_n;
    flip ^= 1;
    if (cur_n == 0) break;
  }
  // Ensure survivors end up in out_sel.
  if (cur_sel != out_sel && cur_n > 0) {
    std::memcpy(out_sel, cur_sel, sizeof(sel_t) * cur_n);
  }
  return cur_n;
}

}  // namespace avm::relational
