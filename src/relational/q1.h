// TPC-H Q1 analogue in multiple execution strategies (experiment E1).
//
// The paper's Plan step 1: "the same system [should] be able to either use
// vectorized execution, or tuple-at-a-time JIT compilation, as such
// mimicking the MonetDB/X100 and HyPer approaches inside the same
// framework" — and §I claims vectorized execution with adaptive
// optimizations (smaller data types, adaptively triggered pre-aggregation)
// can beat statically generated tuple-at-a-time code on Q1 [12].
//
// All strategies compute bit-identical integer results, which the test
// suite verifies differentially.
#pragma once

#include <array>
#include <cstdint>

#include "engine/exec_engine.h"
#include "engine/query_builder.h"
#include "storage/datagen.h"
#include "storage/table.h"
#include "util/status.h"

namespace avm::relational {

/// shipdate predicate: l_shipdate <= kQ1Cutoff keeps ~98% of rows
/// (mirroring TPC-H Q1's DATE '1998-12-01' - 90 days).
constexpr int32_t kQ1Cutoff = 10510;

struct Q1Group {
  int64_t sum_qty = 0;
  int64_t sum_base_price = 0;
  int64_t sum_disc_price = 0;  ///< sum price*(100-disc)   (fixed-point %)
  int64_t sum_charge = 0;      ///< sum price*(100-disc)*(100+tax)
  int64_t count = 0;

  bool operator==(const Q1Group&) const = default;
};

/// Result by group id = returnflag*2 + linestatus (6 live groups).
struct Q1Result {
  std::array<Q1Group, 8> groups{};
  bool operator==(const Q1Result&) const = default;
};

/// Naive row-at-a-time reference (correctness oracle).
Result<Q1Result> RunQ1Scalar(const Table& lineitem);

/// MonetDB/X100-style vectorized execution: chunk-at-a-time kernels,
/// selection vectors, 64-bit arithmetic, direct array aggregation.
Result<Q1Result> RunQ1Vectorized(const Table& lineitem,
                                 uint32_t chunk_size = kDefaultChunkSize);

/// Vectorized + the paper's adaptive optimizations: compact data types
/// (i32 arithmetic where statistics prove safety) and per-chunk
/// pre-aggregation into cache-resident partials.
Result<Q1Result> RunQ1VectorizedCompact(
    const Table& lineitem, uint32_t chunk_size = kDefaultChunkSize);

/// HyPer-style whole-query tuple-at-a-time compilation through the source
/// JIT. Fails with CompilationError when no host compiler exists.
Result<Q1Result> RunQ1CompiledWholeQuery(const Table& lineitem);

struct Q1DslRun {
  Q1Result result;
  engine::ExecReport report;
};

/// Q1 as an engine::QueryBuilder query over `lineitem`: filter on shipdate,
/// dp/ch projections, group by returnflag*2+linestatus, five aggregates
/// (sum_qty, sum_base, sum_disc, sum_charge, count). The returned Query
/// owns its accumulators; submit `query.context()` to a Session (any number
/// of concurrent Q1 clients can each hold their own Query against one
/// shared session) and read the groups back with `Q1ResultFromQuery`.
Result<engine::Query> MakeQ1Query(const Table& lineitem);

/// Copy a finished MakeQ1Query run's aggregates into the Q1Result layout.
/// (Below-facade consumers that want the raw Q1 DSL program instantiate it
/// via MakeQ1Query(...).ValueOrDie().MakeProgram(rows).)
Q1Result Q1ResultFromQuery(const engine::Query& query);

/// Q1 expressed as a DSL program executed through the ExecEngine facade.
/// `options.num_workers > 1` runs morsel-parallel: row-range slices of
/// lineitem per worker, a shared trace cache, and per-worker aggregate
/// state merged at the barrier — bit-identical to the serial run.
Result<Q1DslRun> RunQ1Engine(const Table& lineitem,
                             engine::EngineOptions options = {});

/// Back-compat wrapper: serial adaptive-VM run with the given VM knobs
/// (traces get JIT-compiled and injected mid-run when options.enable_jit).
Result<Q1DslRun> RunQ1AdaptiveVm(const Table& lineitem,
                                 vm::VmOptions options = {});

}  // namespace avm::relational
