// Simulated GPU device (substitution for real CUDA hardware — DESIGN.md §1).
//
// The paper's third research target is *adaptive device placement*: deciding
// per pipeline fragment whether CPU or GPU executes it. The decision-relevant
// structure of a discrete GPU is (a) a fixed kernel-launch/sync overhead,
// (b) a PCIe transfer cost to/from device memory, and (c) much higher
// streaming bandwidth + arithmetic throughput once data is resident.
//
// SimGpuDevice executes kernels on host threads (so results are real and
// testable) while accounting *simulated time* with a calibrated analytic
// model of (a)-(c). Device memory is modeled as host allocations tracked in
// a resident set, so transfer amortization behaves like the real thing.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "util/status.h"
#include "util/thread_pool.h"

namespace avm::gpu {

struct GpuDeviceParams {
  double launch_overhead_s = 30e-6;   ///< kernel launch + sync
  double pcie_bytes_per_s = 12e9;     ///< host<->device transfer bandwidth
  double mem_bytes_per_s = 500e9;     ///< device memory streaming bandwidth
  double ops_per_s = 2e12;            ///< scalar-op throughput (all SMs)
  size_t memory_bytes = 8ull << 30;   ///< device memory capacity
  unsigned num_sms = 32;              ///< parallel slices per launch

  /// A smaller, integrated-GPU-like profile (tests cover both regimes).
  static GpuDeviceParams Integrated() {
    GpuDeviceParams p;
    p.launch_overhead_s = 8e-6;
    p.pcie_bytes_per_s = 30e9;  // shared memory: cheap "transfers"
    p.mem_bytes_per_s = 60e9;
    p.ops_per_s = 2e11;
    p.memory_bytes = 2ull << 30;
    p.num_sms = 8;
    return p;
  }
};

/// Timing breakdown of simulated operations (seconds of simulated time).
struct GpuTiming {
  double transfer_s = 0;
  double launch_s = 0;
  double compute_s = 0;
  double Total() const { return transfer_s + launch_s + compute_s; }
};

class SimGpuDevice {
 public:
  explicit SimGpuDevice(GpuDeviceParams params = {},
                        ThreadPool* pool = nullptr);

  using BufferId = uint64_t;

  /// Allocate device memory (fails when capacity is exceeded — the
  /// placement policy must react, like a real engine would).
  Result<BufferId> Alloc(size_t bytes);
  Status Free(BufferId id);
  Result<void*> Ptr(BufferId id);
  Result<size_t> SizeOf(BufferId id) const;

  /// Host -> device transfer; advances the simulated clock.
  Status CopyToDevice(BufferId dst, const void* src, size_t bytes);
  /// Device -> host transfer; advances the simulated clock.
  Status CopyToHost(void* dst, BufferId src, size_t bytes);

  /// Launch a data-parallel kernel over [0, n): `body(begin, end)` runs on
  /// host worker threads, one slice per SM. Simulated time is charged as
  /// launch overhead + max(memory-bound, compute-bound) term.
  Status Launch(uint32_t n, size_t bytes_touched, double ops_per_item,
                const std::function<void(uint32_t, uint32_t)>& body);

  /// Simulated seconds consumed so far.
  double clock_seconds() const { return clock_s_; }
  void ResetClock() { clock_s_ = 0; timing_ = {}; }
  const GpuTiming& timing() const { return timing_; }

  size_t allocated_bytes() const { return allocated_; }
  const GpuDeviceParams& params() const { return params_; }

  /// Predicted (not executed) cost of a launch / a transfer, for planning.
  double PredictLaunchSeconds(uint32_t n, size_t bytes_touched,
                              double ops_per_item) const;
  double PredictTransferSeconds(size_t bytes) const;

 private:
  GpuDeviceParams params_;
  ThreadPool* pool_;
  std::unordered_map<BufferId, std::vector<uint8_t>> buffers_;
  BufferId next_id_ = 1;
  size_t allocated_ = 0;
  double clock_s_ = 0;
  GpuTiming timing_;
};

}  // namespace avm::gpu
