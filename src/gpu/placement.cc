#include "gpu/placement.h"

#include <algorithm>

namespace avm::gpu {

const char* DeviceName(Device d) {
  return d == Device::kCpu ? "cpu" : "gpu";
}

double AdaptivePlacer::EstimateCpuSeconds(const FragmentProfile& p) const {
  const double mem_s =
      static_cast<double>(p.bytes_in + p.bytes_out) / cpu_.bytes_per_s;
  const double compute_s =
      static_cast<double>(p.rows) * p.ops_per_row / cpu_.ops_per_s;
  return std::max(mem_s, compute_s);
}

double AdaptivePlacer::EstimateGpuSeconds(const FragmentProfile& p) const {
  double transfer_s = 0;
  if (!p.inputs_resident) {
    transfer_s += gpu_.launch_overhead_s +
                  static_cast<double>(p.bytes_in) / gpu_.pcie_bytes_per_s;
  }
  // Results come back over PCIe.
  transfer_s += static_cast<double>(p.bytes_out) / gpu_.pcie_bytes_per_s;
  const double mem_s =
      static_cast<double>(p.bytes_in + p.bytes_out) / gpu_.mem_bytes_per_s;
  const double compute_s =
      static_cast<double>(p.rows) * p.ops_per_row / gpu_.ops_per_s;
  return gpu_.launch_overhead_s + transfer_s + std::max(mem_s, compute_s);
}

PlacementDecision AdaptivePlacer::Decide(const FragmentProfile& p) const {
  PlacementDecision d;
  d.est_cpu_s = EstimateCpuSeconds(p) * cpu_correction_;
  d.est_gpu_s = EstimateGpuSeconds(p) * gpu_correction_;
  d.device = d.est_gpu_s < d.est_cpu_s ? Device::kGpu : Device::kCpu;
  return d;
}

void AdaptivePlacer::Observe(Device d, const FragmentProfile& p,
                             double measured_s) {
  const double est = d == Device::kCpu ? EstimateCpuSeconds(p)
                                       : EstimateGpuSeconds(p);
  if (est <= 0 || measured_s <= 0) return;
  const double ratio = measured_s / est;
  double& corr = d == Device::kCpu ? cpu_correction_ : gpu_correction_;
  corr = kAlpha * ratio + (1 - kAlpha) * corr;
}

}  // namespace avm::gpu
