#include "gpu/gpu_backend.h"

#include <cstring>

#include "interp/kernels.h"
#include "interp/value.h"
#include "util/string_util.h"

namespace avm::gpu {

using interp::KernelRegistry;
using interp::OperandMode;
using interp::PrimKernelFn;
using interp::ScalarValue;

Result<SimGpuDevice::BufferId> GpuBackend::EnsureResident(
    const void* host_data, size_t bytes) {
  auto it = resident_.find(host_data);
  if (it != resident_.end()) return it->second;
  AVM_ASSIGN_OR_RETURN(SimGpuDevice::BufferId id, device_->Alloc(bytes));
  AVM_RETURN_NOT_OK(device_->CopyToDevice(id, host_data, bytes));
  resident_[host_data] = id;
  return id;
}

Status GpuBackend::Evict(const void* host_data) {
  auto it = resident_.find(host_data);
  if (it == resident_.end()) return Status::NotFound("not resident");
  AVM_RETURN_NOT_OK(device_->Free(it->second));
  resident_.erase(it);
  return Status::OK();
}

Result<SimGpuDevice::BufferId> GpuBackend::RunMap(
    const ir::PrimProgram& prog,
    const std::vector<SimGpuDevice::BufferId>& inputs,
    const std::vector<TypeId>& input_types, uint32_t n) {
  if (inputs.size() != prog.input_types.size()) {
    return Status::InvalidArgument("input count mismatch");
  }
  const KernelRegistry& reg = KernelRegistry::Get();

  // Resolve input pointers.
  std::vector<const uint8_t*> in_ptrs(inputs.size());
  for (size_t i = 0; i < inputs.size(); ++i) {
    AVM_ASSIGN_OR_RETURN(void* p, device_->Ptr(inputs[i]));
    in_ptrs[i] = static_cast<const uint8_t*>(p);
  }

  // Register temporaries live in device memory too (as they would on a GPU).
  struct Temp {
    SimGpuDevice::BufferId id;
    uint8_t* ptr;
    TypeId type;
  };
  std::vector<Temp> regs(static_cast<size_t>(prog.num_regs));
  std::vector<SimGpuDevice::BufferId> to_free;
  auto cleanup = [&](Status st) -> Status {
    for (auto id : to_free) (void)device_->Free(id);
    return st;
  };

  if (prog.result_is_input >= 0) {
    // Identity: copy the input buffer (device-to-device modeled as launch).
    const size_t w = TypeWidth(prog.result_type);
    AVM_ASSIGN_OR_RETURN(SimGpuDevice::BufferId out,
                         device_->Alloc(static_cast<size_t>(n) * w));
    AVM_ASSIGN_OR_RETURN(void* op, device_->Ptr(out));
    const uint8_t* src = in_ptrs[static_cast<size_t>(prog.result_is_input)];
    AVM_RETURN_NOT_OK(device_->Launch(
        n, 2 * static_cast<size_t>(n) * w, 0.5,
        [&](uint32_t b, uint32_t e) {
          std::memcpy(static_cast<uint8_t*>(op) + static_cast<size_t>(b) * w,
                      src + static_cast<size_t>(b) * w,
                      static_cast<size_t>(e - b) * w);
        }));
    return out;
  }

  size_t bytes_per_item = 0;
  for (TypeId t : prog.input_types) bytes_per_item += TypeWidth(t);

  for (const auto& instr : prog.instrs) {
    // Allocate the destination register buffer.
    const size_t w = TypeWidth(instr.out_type);
    auto alloc = device_->Alloc(static_cast<size_t>(n) * w);
    if (!alloc.ok()) return cleanup(alloc.status());
    Temp dst{alloc.value(), nullptr, instr.out_type};
    auto ptr = device_->Ptr(dst.id);
    if (!ptr.ok()) return cleanup(ptr.status());
    dst.ptr = static_cast<uint8_t*>(ptr.value());
    regs[static_cast<size_t>(instr.out_reg)] = dst;
    to_free.push_back(dst.id);

    // Resolve operands (broadcast scalars stored inline).
    struct Op {
      const uint8_t* ptr = nullptr;
      bool vec = false;
      alignas(8) uint8_t buf[8] = {0};  // kernels read it as typed scalar
      size_t width = 8;
    };
    Op ops[2];
    for (int a = 0; a < instr.num_args; ++a) {
      const ir::PrimArg& arg = instr.args[a];
      Op& o = ops[a];
      o.width = TypeWidth(instr.in_type);
      switch (arg.kind) {
        case ir::ArgKind::kInput:
          o.ptr = in_ptrs[static_cast<size_t>(arg.index)];
          o.vec = true;
          o.width = TypeWidth(input_types[static_cast<size_t>(arg.index)]);
          break;
        case ir::ArgKind::kReg: {
          const Temp& r = regs[static_cast<size_t>(arg.index)];
          o.ptr = r.ptr;
          o.vec = true;
          o.width = TypeWidth(r.type);
          break;
        }
        case ir::ArgKind::kConstI:
          ScalarValue::I(arg.const_i).CastTo(instr.in_type).Store(o.buf);
          o.ptr = o.buf;
          break;
        case ir::ArgKind::kConstF:
          ScalarValue::F(arg.const_f).CastTo(instr.in_type).Store(o.buf);
          o.ptr = o.buf;
          break;
        case ir::ArgKind::kCapture:
          return cleanup(Status::NotImplemented(
              "captures unsupported on the GPU backend"));
      }
    }

    PrimKernelFn fn = nullptr;
    if (instr.op == dsl::ScalarOp::kCast) {
      fn = reg.Cast(instr.in_type, instr.out_type, false);
    } else if (instr.num_args == 1) {
      fn = reg.Unary(instr.op, instr.in_type, false);
    } else {
      OperandMode mode = OperandMode::kVecVec;
      if (ops[0].vec && !ops[1].vec) mode = OperandMode::kVecScalar;
      if (!ops[0].vec && ops[1].vec) mode = OperandMode::kScalarVec;
      fn = reg.Binary(instr.op, instr.in_type, mode, false);
    }
    if (fn == nullptr) {
      return cleanup(Status::NotImplemented(
          StrFormat("no kernel for %s on %s", dsl::ScalarOpName(instr.op),
                    TypeName(instr.in_type))));
    }

    const Op o0 = ops[0];
    const Op o1 = ops[1];
    uint8_t* out_ptr = dst.ptr;
    const size_t wout = w;
    Status st = device_->Launch(
        n,
        static_cast<size_t>(n) * (o0.width * (o0.vec ? 1 : 0) +
                                  o1.width * (o1.vec ? 1 : 0) + wout),
        1.0,
        [&, o0, o1, out_ptr](uint32_t b, uint32_t e) {
          const uint8_t* a = o0.vec ? o0.ptr + static_cast<size_t>(b) * o0.width
                                    : o0.ptr;
          const uint8_t* bb = o1.ptr == nullptr ? nullptr
                              : o1.vec
                                  ? o1.ptr + static_cast<size_t>(b) * o1.width
                                  : o1.ptr;
          fn(a, bb, out_ptr + static_cast<size_t>(b) * wout, nullptr, e - b);
        });
    if (!st.ok()) return cleanup(st);
  }

  // The result register's buffer is the output; keep it, free the rest.
  const SimGpuDevice::BufferId result =
      regs[static_cast<size_t>(prog.result_reg)].id;
  for (auto id : to_free) {
    if (id != result) (void)device_->Free(id);
  }
  return result;
}

Result<double> GpuBackend::RunSumF64(SimGpuDevice::BufferId buf, TypeId type,
                                     uint32_t n) {
  AVM_ASSIGN_OR_RETURN(void* p, device_->Ptr(buf));
  const unsigned slices = device_->params().num_sms;
  std::vector<double> partials(slices, 0.0);
  Status st = DispatchType(type, [&]<typename Raw>() -> Status {
    if constexpr (std::is_same_v<Raw, bool>) {
      return Status::NotImplemented("sum of bool");
    } else {
      const Raw* v = static_cast<const Raw*>(p);
      const uint32_t per = (n + slices - 1) / slices;
      return device_->Launch(
          n, static_cast<size_t>(n) * sizeof(Raw), 1.0,
          [&](uint32_t b, uint32_t e) {
            double acc = 0;
            for (uint32_t i = b; i < e; ++i) acc += static_cast<double>(v[i]);
            partials[b / per] += acc;
          });
    }
  });
  AVM_RETURN_NOT_OK(st);
  double total = 0;
  for (double x : partials) total += x;
  return total;
}

Result<uint64_t> GpuBackend::RunFilterCount(SimGpuDevice::BufferId buf,
                                            TypeId type, uint32_t n,
                                            dsl::ScalarOp cmp,
                                            int64_t constant) {
  AVM_ASSIGN_OR_RETURN(void* p, device_->Ptr(buf));
  const unsigned slices = device_->params().num_sms;
  std::vector<uint64_t> partials(slices, 0);
  Status st = DispatchType(type, [&]<typename Raw>() -> Status {
    if constexpr (std::is_same_v<Raw, bool>) {
      return Status::NotImplemented("filter-count of bool");
    } else {
      const Raw* v = static_cast<const Raw*>(p);
      const Raw c = static_cast<Raw>(constant);
      const uint32_t per = (n + slices - 1) / slices;
      return device_->Launch(
          n, static_cast<size_t>(n) * sizeof(Raw), 1.0,
          [&](uint32_t b, uint32_t e) {
            uint64_t count = 0;
            for (uint32_t i = b; i < e; ++i) {
              bool hit = false;
              switch (cmp) {
                case dsl::ScalarOp::kLt: hit = v[i] < c; break;
                case dsl::ScalarOp::kLe: hit = v[i] <= c; break;
                case dsl::ScalarOp::kGt: hit = v[i] > c; break;
                case dsl::ScalarOp::kGe: hit = v[i] >= c; break;
                case dsl::ScalarOp::kEq: hit = v[i] == c; break;
                case dsl::ScalarOp::kNe: hit = v[i] != c; break;
                default: break;
              }
              count += hit ? 1 : 0;
            }
            partials[b / per] += count;
          });
    }
  });
  AVM_RETURN_NOT_OK(st);
  uint64_t total = 0;
  for (uint64_t x : partials) total += x;
  return total;
}

}  // namespace avm::gpu
