#include "gpu/sim_device.h"

#include <algorithm>
#include <cstring>

#include "util/string_util.h"

namespace avm::gpu {

SimGpuDevice::SimGpuDevice(GpuDeviceParams params, ThreadPool* pool)
    : params_(params), pool_(pool) {}

Result<SimGpuDevice::BufferId> SimGpuDevice::Alloc(size_t bytes) {
  if (allocated_ + bytes > params_.memory_bytes) {
    return Status::ResourceExhausted(
        StrFormat("device OOM: %zu + %zu > %zu", allocated_, bytes,
                  params_.memory_bytes));
  }
  BufferId id = next_id_++;
  buffers_[id] = std::vector<uint8_t>(bytes);
  allocated_ += bytes;
  return id;
}

Status SimGpuDevice::Free(BufferId id) {
  auto it = buffers_.find(id);
  if (it == buffers_.end()) return Status::NotFound("no such device buffer");
  allocated_ -= it->second.size();
  buffers_.erase(it);
  return Status::OK();
}

Result<void*> SimGpuDevice::Ptr(BufferId id) {
  auto it = buffers_.find(id);
  if (it == buffers_.end()) return Status::NotFound("no such device buffer");
  return static_cast<void*>(it->second.data());
}

Result<size_t> SimGpuDevice::SizeOf(BufferId id) const {
  auto it = buffers_.find(id);
  if (it == buffers_.end()) return Status::NotFound("no such device buffer");
  return it->second.size();
}

double SimGpuDevice::PredictTransferSeconds(size_t bytes) const {
  return params_.launch_overhead_s +
         static_cast<double>(bytes) / params_.pcie_bytes_per_s;
}

double SimGpuDevice::PredictLaunchSeconds(uint32_t n, size_t bytes_touched,
                                          double ops_per_item) const {
  const double mem_s =
      static_cast<double>(bytes_touched) / params_.mem_bytes_per_s;
  const double compute_s =
      static_cast<double>(n) * ops_per_item / params_.ops_per_s;
  return params_.launch_overhead_s + std::max(mem_s, compute_s);
}

Status SimGpuDevice::CopyToDevice(BufferId dst, const void* src,
                                  size_t bytes) {
  auto it = buffers_.find(dst);
  if (it == buffers_.end()) return Status::NotFound("no such device buffer");
  if (bytes > it->second.size()) {
    return Status::OutOfRange("transfer larger than device buffer");
  }
  std::memcpy(it->second.data(), src, bytes);
  const double t = PredictTransferSeconds(bytes);
  clock_s_ += t;
  timing_.transfer_s += t;
  return Status::OK();
}

Status SimGpuDevice::CopyToHost(void* dst, BufferId src, size_t bytes) {
  auto it = buffers_.find(src);
  if (it == buffers_.end()) return Status::NotFound("no such device buffer");
  if (bytes > it->second.size()) {
    return Status::OutOfRange("transfer larger than device buffer");
  }
  std::memcpy(dst, it->second.data(), bytes);
  const double t = PredictTransferSeconds(bytes);
  clock_s_ += t;
  timing_.transfer_s += t;
  return Status::OK();
}

Status SimGpuDevice::Launch(uint32_t n, size_t bytes_touched,
                            double ops_per_item,
                            const std::function<void(uint32_t, uint32_t)>& body) {
  // Really execute (on host threads, one slice per simulated SM).
  if (n > 0) {
    const unsigned slices = std::max(1u, std::min<unsigned>(params_.num_sms,
                                                            n));
    const uint32_t per = (n + slices - 1) / slices;
    if (pool_ != nullptr && slices > 1) {
      pool_->ParallelFor(slices, [&](size_t s) {
        const uint32_t begin = static_cast<uint32_t>(s) * per;
        const uint32_t end = std::min(n, begin + per);
        if (begin < end) body(begin, end);
      });
    } else {
      body(0, n);
    }
  }
  // Account simulated time.
  const double launch = params_.launch_overhead_s;
  const double work = PredictLaunchSeconds(n, bytes_touched, ops_per_item) -
                      params_.launch_overhead_s;
  clock_s_ += launch + work;
  timing_.launch_s += launch;
  timing_.compute_s += work;
  return Status::OK();
}

}  // namespace avm::gpu
