// Adaptive device placement (Plan step 3): "making adaptive decisions which
// strategy to use … but also on which hardware".
//
// The placer combines an analytic cost model (CPU streaming rate vs. GPU
// launch+transfer+bandwidth) with online calibration: observed runs update
// per-device correction factors, so a mis-calibrated model converges to the
// truth and the crossover point self-adjusts.
#pragma once

#include <cstdint>

#include "gpu/sim_device.h"

namespace avm::gpu {

enum class Device : uint8_t { kCpu = 0, kGpu = 1 };
const char* DeviceName(Device d);

/// Static description of a pipeline fragment for costing.
struct FragmentProfile {
  uint64_t rows = 0;
  size_t bytes_in = 0;      ///< input bytes streamed
  size_t bytes_out = 0;     ///< output bytes produced
  double ops_per_row = 1;   ///< scalar operations per row
  bool inputs_resident = false;  ///< already in device memory
};

struct CpuModel {
  double bytes_per_s = 20e9;  ///< single-core streaming bandwidth
  double ops_per_s = 3e9;     ///< scalar op throughput
};

struct PlacementDecision {
  Device device = Device::kCpu;
  double est_cpu_s = 0;
  double est_gpu_s = 0;
};

class AdaptivePlacer {
 public:
  AdaptivePlacer(const GpuDeviceParams& gpu, CpuModel cpu = {})
      : gpu_(gpu), cpu_(cpu) {}

  /// Model-based estimate for a fragment on each device.
  double EstimateCpuSeconds(const FragmentProfile& p) const;
  double EstimateGpuSeconds(const FragmentProfile& p) const;

  /// Decide where to run the fragment (applies learned corrections).
  PlacementDecision Decide(const FragmentProfile& p) const;

  /// Feed back a measured execution to calibrate the model.
  void Observe(Device d, const FragmentProfile& p, double measured_s);

  double correction(Device d) const {
    return d == Device::kCpu ? cpu_correction_ : gpu_correction_;
  }

 private:
  GpuDeviceParams gpu_;
  CpuModel cpu_;
  // EMA of measured/estimated per device; 1.0 = model is exact.
  double cpu_correction_ = 1.0;
  double gpu_correction_ = 1.0;
  static constexpr double kAlpha = 0.3;
};

}  // namespace avm::gpu
