// GPU execution backend for data-parallel pipeline fragments.
//
// The paper (Plan step 3): "we might concentrate their use around certain
// operations where their capabilities best come to light" — streaming map /
// filter-count / reduction fragments. This backend runs a normalized
// PrimProgram over whole columns on the simulated device, managing
// transfers and residency.
#pragma once

#include <unordered_map>

#include "gpu/sim_device.h"
#include "interp/prim_exec.h"
#include "ir/prim.h"

namespace avm::gpu {

/// Executes primitive programs on the simulated GPU, caching column
/// residency so repeated queries amortize PCIe transfers.
class GpuBackend {
 public:
  explicit GpuBackend(SimGpuDevice* device) : device_(device) {}

  /// Make `n` elements of `host_data` resident; returns the device buffer.
  /// Cached by pointer identity: a second call with the same pointer is
  /// free (no transfer).
  Result<SimGpuDevice::BufferId> EnsureResident(const void* host_data,
                                                size_t bytes);

  /// Evict a cached column.
  Status Evict(const void* host_data);

  /// out[i] = prog(inputs...[i]) over n elements. Inputs must be resident
  /// device buffers; output stays on device (returned buffer).
  Result<SimGpuDevice::BufferId> RunMap(const ir::PrimProgram& prog,
                                        const std::vector<SimGpuDevice::BufferId>& inputs,
                                        const std::vector<TypeId>& input_types,
                                        uint32_t n);

  /// Sum-reduce a device buffer of int64/f64 (per-SM partials + host merge).
  Result<double> RunSumF64(SimGpuDevice::BufferId buf, TypeId type,
                           uint32_t n);

  /// Count elements matching `cmp` against a constant.
  Result<uint64_t> RunFilterCount(SimGpuDevice::BufferId buf, TypeId type,
                                  uint32_t n, dsl::ScalarOp cmp,
                                  int64_t constant);

  SimGpuDevice& device() { return *device_; }

 private:
  SimGpuDevice* device_;
  std::unordered_map<const void*, SimGpuDevice::BufferId> resident_;
};

}  // namespace avm::gpu
