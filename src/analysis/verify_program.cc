#include "analysis/verify_program.h"

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "ir/depgraph.h"
#include "ir/prim.h"
#include "util/string_util.h"

namespace avm::analysis {
namespace {

using dsl::Expr;
using dsl::ExprKind;
using dsl::SkeletonKind;
using dsl::Stmt;
using dsl::StmtKind;
using dsl::StmtPtr;

void Add(VerifyResult* out, std::string rule, std::string message,
         std::string hint, int stmt_index = -1, int node_id = -1) {
  Diagnostic d;
  d.rule_id = std::move(rule);
  d.message = std::move(message);
  d.fix_hint = std::move(hint);
  d.stmt_index = stmt_index;
  d.node_id = node_id;
  out->diagnostics.push_back(std::move(d));
}

// ---------------------------------------------------------------------------
// Scope discipline: def-before-use, Assign-only-to-MutDef, Let-never-shadows.
// ---------------------------------------------------------------------------

class ScopeChecker {
 public:
  ScopeChecker(const dsl::Program& program, VerifyResult* out)
      : program_(program), out_(out) {}

  void Run() {
    for (const auto& d : program_.data) defined_.insert(d.name);
    Walk(program_.stmts, /*stmt_ordinal=*/nullptr);
  }

 private:
  // The interpreter's environment is flat and persists across iterations,
  // so definitions stay visible after their loop/if; within a statement
  // list the first iteration still executes top-to-bottom, which makes the
  // sequential walk the right def-before-use model.
  void Walk(const std::vector<StmtPtr>& stmts, const int* stmt_ordinal) {
    int ord = 0;
    for (const auto& s : stmts) {
      const int at = stmt_ordinal ? *stmt_ordinal : ord;
      switch (s->kind) {
        case StmtKind::kLet:
          if (s->expr) CheckExpr(*s->expr, at);
          if (defined_.contains(s->var)) {
            Add(out_, "program-let-shadow",
                StrFormat("let '%s' shadows an existing definition",
                          s->var.c_str()),
                "use a fresh name; the flat environment has no inner scopes",
                at);
          }
          defined_.insert(s->var);
          break;
        case StmtKind::kMutDef:
          if (s->expr) CheckExpr(*s->expr, at);
          defined_.insert(s->var);
          mutable_.insert(s->var);
          break;
        case StmtKind::kAssign:
          if (s->expr) CheckExpr(*s->expr, at);
          if (!defined_.contains(s->var)) {
            Add(out_, "program-def-before-use",
                StrFormat("assignment to undefined variable '%s'",
                          s->var.c_str()),
                "declare the variable with mut before the loop", at);
          } else if (!mutable_.contains(s->var)) {
            Add(out_, "program-immutable-reassign",
                StrFormat("assignment to immutable (let-bound) '%s'",
                          s->var.c_str()),
                "declare it with mut if it must be reassigned", at);
          }
          break;
        case StmtKind::kLoop:
        case StmtKind::kIf:
          if (s->expr) CheckExpr(*s->expr, at);
          // Flat environment: branch/body definitions persist afterwards.
          Walk(s->body, &at);
          Walk(s->else_body, &at);
          break;
        case StmtKind::kBreak:
        case StmtKind::kExpr:
          if (s->expr) CheckExpr(*s->expr, at);
          break;
      }
      ++ord;
    }
  }

  void CheckExpr(const Expr& e, int stmt_index) {
    std::set<std::string> no_bound;
    CheckExprBound(e, stmt_index, no_bound);
  }

  void CheckExprBound(const Expr& e, int stmt_index,
                      const std::set<std::string>& bound) {
    if (e.kind == ExprKind::kVarRef) {
      if (!bound.contains(e.var) && !defined_.contains(e.var)) {
        Add(out_, "program-def-before-use",
            StrFormat("use of undefined variable '%s'", e.var.c_str()),
            "define the name (let/mut/data) before this statement",
            stmt_index);
      }
      return;
    }
    if (e.kind == ExprKind::kLambda) {
      std::set<std::string> inner = bound;
      for (const auto& p : e.params) inner.insert(p);
      if (e.body) CheckExprBound(*e.body, stmt_index, inner);
      return;
    }
    for (const auto& a : e.args) CheckExprBound(*a, stmt_index, bound);
    if (e.body) CheckExprBound(*e.body, stmt_index, bound);
  }

  const dsl::Program& program_;
  VerifyResult* out_;
  std::set<std::string> defined_;
  std::set<std::string> mutable_;
};

// ---------------------------------------------------------------------------
// Prim discipline: every skeleton lambda must normalize, and a map's
// normalized result type must agree with the node's annotated type.
// ---------------------------------------------------------------------------

void CheckPrims(const dsl::Program& program, VerifyResult* out) {
  int ord = -1;
  std::function<void(const Expr&, int)> walk = [&](const Expr& e, int at) {
    for (const auto& a : e.args) walk(*a, at);
    if (e.body) walk(*e.body, at);
    if (e.kind != ExprKind::kSkeleton) return;

    auto normalize = [&](const Expr& lambda, std::vector<TypeId> in_types,
                         const char* what) -> std::optional<ir::PrimProgram> {
      if (lambda.kind != ExprKind::kLambda) return std::nullopt;
      auto r = ir::Normalize(lambda, in_types);
      if (!r.ok()) {
        Add(out, "prim-normalize",
            StrFormat("%s lambda does not normalize: %s", what,
                      r.status().message().c_str()),
            "restrict the lambda to the supported scalar-op forms", at);
        return std::nullopt;
      }
      return std::move(r).ValueOrDie();
    };

    switch (e.skeleton) {
      case SkeletonKind::kMap: {
        if (e.args.empty()) break;
        std::vector<TypeId> in_types;
        for (size_t i = 1; i < e.args.size(); ++i) {
          in_types.push_back(e.args[i]->type);
        }
        auto p = normalize(*e.args[0], in_types, "map");
        if (p.has_value() && p->result_type != e.type) {
          Add(out, "prim-result-type",
              StrFormat("map result type %s disagrees with annotated %s",
                        TypeCName(p->result_type), TypeCName(e.type)),
              "re-run TypeCheck or fix the lambda's result cast", at);
        }
        break;
      }
      case SkeletonKind::kFilter:
        if (e.args.size() >= 2) {
          normalize(*e.args[0], {e.args[1]->type}, "filter");
        }
        break;
      case SkeletonKind::kFold:
        if (e.args.size() >= 3) {
          normalize(*e.args[0], {e.type, e.args[2]->type}, "fold");
        }
        break;
      case SkeletonKind::kScatter:
        if (e.args.size() == 4 && e.args[0]->kind == ExprKind::kVarRef) {
          const dsl::DataDecl* d = program.FindData(e.args[0]->var);
          if (d != nullptr) {
            normalize(*e.args[3], {d->type, e.args[2]->type},
                      "scatter conflict");
          }
        }
        break;
      default:
        break;
    }
  };
  for (const auto& s : program.stmts) {
    ++ord;
    std::function<void(const Stmt&)> scan = [&](const Stmt& st) {
      if (st.expr) walk(*st.expr, ord);
      for (const auto& c : st.body) scan(*c);
      for (const auto& c : st.else_body) scan(*c);
    };
    scan(*s);
  }
}

// ---------------------------------------------------------------------------
// Bind-role consistency (engine binding table supplied).
// ---------------------------------------------------------------------------

void CheckBindings(const dsl::Program& program,
                   const std::vector<BindingInfo>& bindings,
                   VerifyResult* out) {
  std::map<std::string, const BindingInfo*> by_name;
  for (const auto& b : bindings) {
    if (program.FindData(b.name) == nullptr) {
      Add(out, "bind-unknown-name",
          StrFormat("binding '%s' has no data declaration in the program",
                    b.name.c_str()),
          "bind only names the lowered program declares");
      continue;
    }
    by_name[b.name] = &b;
  }

  // Writes/scatters must target writable roles; reads/gathers must not
  // consume privatized accumulators (each worker sees a zeroed private
  // copy, so a read would observe merge-order-dependent partial state).
  std::function<void(const Expr&)> walk = [&](const Expr& e) {
    for (const auto& a : e.args) walk(*a);
    if (e.body) walk(*e.body);
    if (e.kind != ExprKind::kSkeleton) return;
    auto role_of = [&](const Expr& a) -> const BindingInfo* {
      if (a.kind != ExprKind::kVarRef) return nullptr;
      auto it = by_name.find(a.var);
      return it == by_name.end() ? nullptr : it->second;
    };
    if (e.skeleton == SkeletonKind::kWrite ||
        e.skeleton == SkeletonKind::kScatter) {
      const BindingInfo* b = e.args.empty() ? nullptr : role_of(*e.args[0]);
      if (b != nullptr && (b->role == BindingRole::kInput ||
                           b->role == BindingRole::kShared)) {
        Add(out, "bind-write-to-readonly",
            StrFormat("program writes array '%s' bound read-only",
                      b->name.c_str()),
            "bind the array as an output or accumulator");
      }
    }
    if (e.skeleton == SkeletonKind::kRead && e.args.size() >= 2) {
      const BindingInfo* b = role_of(*e.args[1]);
      if (b != nullptr && b->role == BindingRole::kAccumulator) {
        Add(out, "bind-accumulator-read",
            StrFormat("program reads accumulator '%s' (workers see "
                      "private zeroed copies)",
                      b->name.c_str()),
            "accumulators are write-only inside the loop; merge after");
      }
    }
    if (e.skeleton == SkeletonKind::kGather && !e.args.empty()) {
      const BindingInfo* b = role_of(*e.args[0]);
      if (b != nullptr && b->role == BindingRole::kAccumulator) {
        Add(out, "bind-accumulator-read",
            StrFormat("program gathers from accumulator '%s' (workers see "
                      "private zeroed copies)",
                      b->name.c_str()),
            "accumulators are write-only inside the loop; merge after");
      }
    }
  };
  for (const auto& s : program.stmts) {
    std::function<void(const Stmt&)> scan = [&](const Stmt& st) {
      if (st.expr) walk(*st.expr);
      for (const auto& c : st.body) scan(*c);
      for (const auto& c : st.else_body) scan(*c);
    };
    scan(*s);
  }

  // Row-window scaling under join fan-out: every morsel-sliced output
  // window must scale by the same factor, and a factor > 1 only makes
  // sense when the program actually fans rows out (expand).
  bool has_expand = false;
  dsl::VisitExprs(program, [&](const dsl::ExprPtr& e) {
    if (e->kind == ExprKind::kSkeleton &&
        e->skeleton == SkeletonKind::kExpand) {
      has_expand = true;
    }
  });
  uint64_t scale = 0;
  bool scale_set = false;
  for (const auto& b : bindings) {
    if (b.role != BindingRole::kPartialOutput) continue;
    if (b.row_scale == 0) {
      Add(out, "fanout-row-scale",
          StrFormat("partial output '%s' has row_scale 0", b.name.c_str()),
          "row_scale must be >= 1 (the join fan-out product)");
      continue;
    }
    if (!scale_set) {
      scale = b.row_scale;
      scale_set = true;
    } else if (b.row_scale != scale) {
      Add(out, "fanout-row-scale",
          StrFormat("partial output '%s' row_scale %llu disagrees with "
                    "sibling outputs' %llu",
                    b.name.c_str(), (unsigned long long)b.row_scale,
                    (unsigned long long)scale),
          "all output columns of one result set share one fan-out");
    }
  }
  if (scale_set && scale > 1 && !has_expand) {
    Add(out, "fanout-row-scale",
        StrFormat("outputs scale their row window by %llu but the program "
                  "has no expand fan-out",
                  (unsigned long long)scale),
        "row_scale must match the program's expand fan-out product");
  }
}

// ---------------------------------------------------------------------------
// Iteration-domain discipline: expand switches the loop to a new (pair)
// domain; positionally combining values from different domains reads
// unrelated rows against each other (the hash-join probe rebases every
// still-needed value through expand before mixing — this rule enforces
// that discipline). Gather re-indexes, so a gather's domain comes from its
// index argument, never its whole-array base.
// ---------------------------------------------------------------------------

void CheckDomains(const dsl::Program& program, VerifyResult* out) {
  auto built = ir::DepGraph::Build(program);
  if (!built.ok()) return;  // the VM reports unbuildable programs itself
  const ir::DepGraph graph = std::move(built).ValueOrDie();

  constexpr int kNoDomain = -1;  // scalar / whole-array / unconstrained
  constexpr int kRowDomain = 0;
  std::vector<int> domain(graph.nodes().size(), kNoDomain);
  std::map<int, int> expand_domain;  // counts-producer node -> domain id
  int next_domain = 1;

  auto value_node = [&](const Expr& a) -> int {
    if (a.kind == ExprKind::kVarRef) return graph.ProducerOf(a.var);
    if (a.kind == ExprKind::kSkeleton) {
      for (const auto& n : graph.nodes()) {
        if (n.expr == &a) return static_cast<int>(n.id);
      }
    }
    return -1;
  };
  auto arg_domain = [&](const Expr& a) -> int {
    if (a.kind == ExprKind::kConst) return kNoDomain;
    if (a.kind == ExprKind::kVarRef && a.shape == dsl::Shape::kScalar) {
      return kNoDomain;
    }
    const int n = value_node(a);
    return n < 0 ? kNoDomain : domain[static_cast<size_t>(n)];
  };

  for (uint32_t id : graph.TopoOrder()) {
    const ir::DepNode& n = graph.nodes()[id];
    const Expr& e = *n.expr;
    switch (n.kind) {
      case SkeletonKind::kRead:
        domain[id] = kRowDomain;
        break;
      case SkeletonKind::kExpand: {
        const int counts = e.args.empty() ? -1 : value_node(*e.args[0]);
        auto it = expand_domain.find(counts);
        if (it == expand_domain.end()) {
          it = expand_domain.emplace(counts, next_domain++).first;
        }
        domain[id] = it->second;
        break;
      }
      case SkeletonKind::kGather:
        domain[id] = e.args.size() >= 2 ? arg_domain(*e.args[1]) : kNoDomain;
        break;
      case SkeletonKind::kFilter:
        domain[id] = e.args.size() >= 2 ? arg_domain(*e.args[1]) : kNoDomain;
        break;
      case SkeletonKind::kCondense:
        domain[id] = e.args.empty() ? kNoDomain : arg_domain(*e.args[0]);
        break;
      case SkeletonKind::kMap: {
        int seen = kNoDomain;
        for (size_t i = 1; i < e.args.size(); ++i) {
          const int d = arg_domain(*e.args[i]);
          if (d == kNoDomain) continue;
          if (seen == kNoDomain) {
            seen = d;
          } else if (d != seen) {
            Add(out, "domain-mix",
                StrFormat("map '%s' positionally combines values from "
                          "different iteration domains",
                          n.label.c_str()),
                "rebase pre-expand values through the same expand counts "
                "before mixing (gather re-indexes and is exempt)",
                static_cast<int>(n.stmt_index), static_cast<int>(id));
            break;
          }
        }
        domain[id] = seen;
        break;
      }
      case SkeletonKind::kScatter: {
        if (e.args.size() >= 3) {
          const int di = arg_domain(*e.args[1]);
          const int dv = arg_domain(*e.args[2]);
          if (di != kNoDomain && dv != kNoDomain && di != dv) {
            Add(out, "domain-mix",
                StrFormat("scatter '%s' pairs an index and a value from "
                          "different iteration domains",
                          n.label.c_str()),
                "index and value must iterate the same domain",
                static_cast<int>(n.stmt_index), static_cast<int>(id));
          }
        }
        domain[id] = kNoDomain;
        break;
      }
      default:
        domain[id] = kNoDomain;
        break;
    }
  }
}

}  // namespace

VerifyResult VerifyProgram(const dsl::Program& program) {
  VerifyResult result;
  ScopeChecker(program, &result).Run();
  CheckPrims(program, &result);
  CheckDomains(program, &result);
  return result;
}

VerifyResult VerifyProgram(const dsl::Program& program,
                           const std::vector<BindingInfo>& bindings) {
  VerifyResult result = VerifyProgram(program);
  CheckBindings(program, bindings, &result);
  return result;
}

}  // namespace avm::analysis
