// Level-1 static verifier: whole-program well-formedness (docs/VERIFIER.md).
//
// VerifyProgram checks every lowered DSL program before the VM runs it:
// def-before-use over the statement scopes, single-assignment discipline
// (Assign only to MutDef names, Let never shadows), per-prim normalization
// and result-type agreement, and — when the caller supplies its binding
// table — bind-role consistency (no writes into read-only arrays, no reads
// of privatized accumulators, row-window scaling under join fan-out, no
// positional mixing of pre-/post-expand iteration domains). It is wired
// into QueryBuilder::Build (always on), AdaptiveVm program load
// (VmOptions::verify_programs / AVM_VERIFY), and the below-facade bench
// fixtures, so no program reaches the interpreter unchecked.
//
// The program must be type-checked (dsl::TypeCheck) first: the prim rules
// normalize lambdas against the annotated argument types.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "dsl/ast.h"

namespace avm::analysis {

/// How the engine binds a program-level data array — the analysis-layer
/// mirror of engine::BindRole (analysis depends only on dsl/ir, so the
/// engine translates its roles into these when calling the verifier).
enum class BindingRole : uint8_t {
  kInput,          ///< read-only morsel-sliced column
  kShared,         ///< read-only whole array (dims, join tables, payloads)
  kOutput,         ///< writable whole array
  kAccumulator,    ///< privatized per-worker zeroed copy, merged after
  kPartialOutput,  ///< writable morsel-sliced row window
};

/// One engine binding the program's data arrays resolve against.
struct BindingInfo {
  std::string name;        ///< program data-array name
  BindingRole role = BindingRole::kShared;
  /// Rows of output window per input row (join fan-out; kPartialOutput).
  uint64_t row_scale = 1;
};

/// Verify a lowered program's intrinsic invariants (no binding table:
/// def-before-use, assignment discipline, prim normalization).
VerifyResult VerifyProgram(const dsl::Program& program);

/// Verify intrinsic invariants plus bind-role consistency against the
/// engine's binding table.
VerifyResult VerifyProgram(const dsl::Program& program,
                           const std::vector<BindingInfo>& bindings);

}  // namespace avm::analysis
