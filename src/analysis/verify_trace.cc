#include "analysis/verify_trace.h"

#include <algorithm>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ir/prim.h"
#include "util/string_util.h"

namespace avm::analysis {
namespace {

using dsl::Expr;
using dsl::ExprKind;
using dsl::ScalarOp;
using dsl::SkeletonKind;
using dsl::StmtKind;
using dsl::StmtPtr;
using ir::ArgKind;
using ir::DepGraph;
using ir::DepNode;
using ir::PrimProgram;
using ir::Trace;

/// Mirrors jit::TraceEmitter's analysis passes (codegen.cc), emitting a
/// rule-id'd Diagnostic wherever codegen would decline. The pass order and
/// per-node iteration order match codegen exactly so the verifier's FIRST
/// diagnostic corresponds to the decline message the VM would report.
class TraceVerifier {
 public:
  TraceVerifier(const dsl::Program& program, const DepGraph& graph,
                const Trace& trace, const TraceContext& ctx,
                VerifyResult* out)
      : program_(program), graph_(graph), trace_(trace), ctx_(ctx),
        out_(out) {}

  void Run() {
    AnalyzeStatements();
    ComputeSelDependence();
    Validate();
    CheckInputsOutputs();
    CheckValueArgs();
  }

 private:
  void Add(std::string rule, std::string message, std::string hint,
           int node_id = -1) {
    Diagnostic d;
    d.rule_id = std::move(rule);
    d.message = std::move(message);
    d.fix_hint = std::move(hint);
    d.node_id = node_id;
    if (node_id >= 0) {
      d.stmt_index =
          static_cast<int>(graph_.nodes()[static_cast<size_t>(node_id)]
                               .stmt_index);
    }
    out_->diagnostics.push_back(std::move(d));
  }

  bool InTrace(uint32_t id) const { return trace_node_set_.contains(id); }
  bool SelDependent(uint32_t id) const {
    return sel_dependent_.contains(id);
  }
  bool DependsOnFilter(uint32_t node_id) const {
    if (filter_node_ < 0) return false;
    if (node_id == static_cast<uint32_t>(filter_node_)) return false;
    std::vector<uint32_t> stack{node_id};
    std::set<uint32_t> seen;
    while (!stack.empty()) {
      uint32_t id = stack.back();
      stack.pop_back();
      for (uint32_t in : graph_.nodes()[id].inputs) {
        if (in == static_cast<uint32_t>(filter_node_)) return true;
        if (seen.insert(in).second && InTrace(in)) stack.push_back(in);
      }
    }
    return false;
  }

  void AnalyzeStatements();
  void ComputeSelDependence();
  void Validate();
  void CheckInputsOutputs();
  void CheckValueArgs();
  void CheckValueArg(const DepNode& node, const Expr& arg);

  const dsl::Program& program_;
  const DepGraph& graph_;
  const Trace& trace_;
  const TraceContext& ctx_;
  VerifyResult* out_;

  std::unordered_set<uint32_t> trace_node_set_;
  std::unordered_map<const Expr*, uint32_t> expr_to_node_;
  std::unordered_map<std::string, TypeId> let_types_;
  std::vector<std::pair<uint32_t, std::string>> body_assigns_;
  std::unordered_set<uint32_t> sel_dependent_;
  std::set<std::string> active_sel_inputs_;
  bool sel_mode_ = false;
  int filter_node_ = -1;
};

void TraceVerifier::AnalyzeStatements() {
  for (uint32_t id : trace_.node_ids) trace_node_set_.insert(id);
  for (const auto& n : graph_.nodes()) expr_to_node_[n.expr] = n.id;

  const std::vector<StmtPtr>* body = &program_.stmts;
  for (const auto& s : program_.stmts) {
    if (s->kind == StmtKind::kLoop) {
      body = &s->body;
      break;
    }
  }

  std::function<void(const std::vector<StmtPtr>&)> collect =
      [&](const std::vector<StmtPtr>& stmts) {
        for (const auto& s : stmts) {
          if (s->kind == StmtKind::kLet && s->expr) {
            let_types_[s->var] = s->expr->type;
          }
          collect(s->body);
          collect(s->else_body);
        }
      };
  collect(program_.stmts);

  uint32_t ord = 0;
  for (const auto& s : *body) {
    std::function<void(const dsl::Stmt&)> scan = [&](const dsl::Stmt& st) {
      if (st.kind == StmtKind::kAssign || st.kind == StmtKind::kMutDef) {
        body_assigns_.emplace_back(ord, st.var);
      }
      for (const auto& c : st.body) scan(*c);
      for (const auto& c : st.else_body) scan(*c);
    };
    scan(*s);
    ++ord;
  }

  // Statement coverage: a trace must cover every skeleton node of each
  // statement it touches, and at least one statement overall.
  bool found_any = false;
  for (const auto& s : *body) {
    if (s->expr == nullptr) continue;
    std::vector<uint32_t> stmt_nodes;
    std::function<void(const Expr&)> walk = [&](const Expr& e) {
      auto it = expr_to_node_.find(&e);
      if (it != expr_to_node_.end()) stmt_nodes.push_back(it->second);
      for (const auto& a : e.args) walk(*a);
      if (e.body) walk(*e.body);
    };
    walk(*s->expr);
    if (stmt_nodes.empty()) continue;
    size_t inside = 0;
    for (uint32_t id : stmt_nodes) {
      if (InTrace(id)) ++inside;
    }
    if (inside == 0) continue;
    found_any = true;
    if (inside != stmt_nodes.size()) {
      Add("trace-stmt-alignment",
          "trace does not align with statement boundaries (a statement's "
          "skeleton nodes are only partially covered)",
          "extend or shrink the region to whole statements",
          static_cast<int>(stmt_nodes.front()));
    }
  }
  if (!found_any) {
    Add("trace-empty", "trace covers no statements",
        "a compilable trace must cover at least one loop-body statement");
  }
}

void TraceVerifier::ComputeSelDependence() {
  for (const auto& name : trace_.inputs) {
    if (program_.FindData(name) != nullptr) continue;
    if (ctx_.sel_inputs.contains(name)) active_sel_inputs_.insert(name);
  }
  sel_mode_ = !active_sel_inputs_.empty();
  if (!sel_mode_) return;

  for (uint32_t id : trace_.node_ids) {
    const DepNode& n = graph_.nodes()[id];
    bool dep = false;
    std::function<void(const Expr&)> walk = [&](const Expr& e) {
      if (e.kind == ExprKind::kVarRef &&
          active_sel_inputs_.contains(e.var)) {
        dep = true;
      }
      for (const auto& a : e.args) {
        if (a->kind != ExprKind::kLambda) walk(*a);
      }
    };
    walk(*n.expr);
    for (uint32_t in : n.inputs) {
      if (InTrace(in) && SelDependent(in)) dep = true;
    }
    if (dep) sel_dependent_.insert(id);
  }
}

void TraceVerifier::Validate() {
  // Statement convexity (the stale-selection miscompile family).
  const int violation = ir::StmtConvexityViolation(graph_, trace_.node_ids);
  if (violation >= 0) {
    Add("trace-not-convex",
        StrFormat("trace is not statement-convex: it conflicts with '%s' "
                  "across its statement span (stale-value hazard)",
                  graph_.nodes()[static_cast<size_t>(violation)]
                      .label.c_str()),
        "include the conflicting statement in the trace or split the trace",
        violation);
  }

  // Capture freshness (the stale-cursor miscompile family): the harness
  // resolves captured scalars BEFORE the call, so a capture produced or
  // reassigned inside the covered span would be one iteration stale.
  uint32_t anchor = UINT32_MAX, last = 0;
  for (uint32_t id : trace_.node_ids) {
    anchor = std::min(anchor, graph_.nodes()[id].stmt_index);
    last = std::max(last, graph_.nodes()[id].stmt_index);
  }
  std::set<std::string> captures;
  std::function<void(const Expr&, std::set<std::string>&)> walk =
      [&](const Expr& e, std::set<std::string>& bound) {
        if (e.kind == ExprKind::kVarRef) {
          if (e.shape == dsl::Shape::kScalar && !bound.contains(e.var)) {
            captures.insert(e.var);
          }
          return;
        }
        if (e.kind == ExprKind::kLambda) {
          std::set<std::string> inner = bound;
          for (const auto& p : e.params) inner.insert(p);
          if (e.body) walk(*e.body, inner);
          return;
        }
        for (const auto& a : e.args) walk(*a, bound);
        if (e.body) walk(*e.body, bound);
      };
  std::set<std::string> no_bound;
  for (uint32_t id : trace_.node_ids) {
    walk(*graph_.nodes()[id].expr, no_bound);
  }
  for (const std::string& name : captures) {
    const int prod = graph_.ProducerOf(name);
    if (prod >= 0 &&
        graph_.nodes()[static_cast<size_t>(prod)].stmt_index >= anchor &&
        graph_.nodes()[static_cast<size_t>(prod)].stmt_index <= last) {
      Add("capture-stale-produced",
          StrFormat("captured scalar '%s' is produced inside the trace's "
                    "statement span (the capture would be one iteration "
                    "stale)",
                    name.c_str()),
          "exclude the producing statement or the capturing one", prod);
    }
    for (const auto& [ord, var] : body_assigns_) {
      if (var == name && ord >= anchor && ord <= last) {
        Add("capture-stale-reassigned",
            StrFormat("captured scalar '%s' is reassigned inside the "
                      "trace's statement span (the capture would be stale)",
                      name.c_str()),
            "shrink the trace to end before the reassignment");
      }
    }
  }

  // Per-node shape rules, in trace order. filter_node_ is discovered
  // mid-walk exactly as codegen does, so a scatter BEFORE the filter sees
  // restriction levels without filter knowledge — same as the decline side.
  int filters = 0;
  for (uint32_t id : trace_.node_ids) {
    const DepNode& n = graph_.nodes()[id];
    switch (n.kind) {
      case SkeletonKind::kRead:
      case SkeletonKind::kMap:
      case SkeletonKind::kFold:
      case SkeletonKind::kWrite:
        break;
      case SkeletonKind::kGather: {
        const Expr& base = *n.expr->args[0];
        if (base.kind != ExprKind::kVarRef ||
            program_.FindData(base.var) == nullptr) {
          Add("gather-base-not-data",
              "gather base must be a data array (chunk-array bases stay "
              "interpreted)",
              "gathers over chunk values are not compilable; leave the "
              "node out of the trace",
              static_cast<int>(id));
        }
        break;
      }
      case SkeletonKind::kScatter: {
        const Expr& dest = *n.expr->args[0];
        if (dest.kind != ExprKind::kVarRef ||
            program_.FindData(dest.var) == nullptr) {
          Add("scatter-dest-not-data",
              "scatter destination must be a data array",
              "scatters into chunk values stay interpreted",
              static_cast<int>(id));
          break;
        }
        if (n.expr->args.size() == 4) {
          auto prog = ir::Normalize(*n.expr->args[3],
                                    {program_.FindData(dest.var)->type,
                                     n.expr->args[2]->type});
          const bool ok =
              prog.ok() && prog.ValueOrDie().instrs.size() == 1 &&
              prog.ValueOrDie().result_is_input < 0 &&
              (prog.ValueOrDie().instrs[0].op == ScalarOp::kAdd ||
               prog.ValueOrDie().instrs[0].op == ScalarOp::kMin ||
               prog.ValueOrDie().instrs[0].op == ScalarOp::kMax) &&
              prog.ValueOrDie().instrs[0].num_args == 2 &&
              prog.ValueOrDie().instrs[0].args[0].kind == ArgKind::kInput &&
              prog.ValueOrDie().instrs[0].args[0].index == 0 &&
              prog.ValueOrDie().instrs[0].args[1].kind == ArgKind::kInput &&
              prog.ValueOrDie().instrs[0].args[1].index == 1;
          if (!ok) {
            Add("scatter-conflict-fn",
                "scatter conflict function must be a single add/min/max of "
                "(old, new)",
                "rewrite the conflict lambda as old+new, min, or max",
                static_cast<int>(id));
          }
        }
        // Index-domain agreement (the scatter index-domain miscompile
        // family): the interpreter iterates the INDEX's selection, the
        // compiled loop iterates the node's restriction — they must match.
        auto restriction = [&](const Expr& a) -> int {
          int prod = -1;
          if (a.kind == ExprKind::kVarRef) {
            if (active_sel_inputs_.contains(a.var)) return 1;
            prod = graph_.ProducerOf(a.var);
          } else if (a.kind == ExprKind::kSkeleton) {
            auto it = expr_to_node_.find(&a);
            if (it != expr_to_node_.end()) {
              prod = static_cast<int>(it->second);
            }
          }
          if (prod < 0 || !InTrace(static_cast<uint32_t>(prod))) return 0;
          const uint32_t p = static_cast<uint32_t>(prod);
          if (DependsOnFilter(p)) return 2;
          return SelDependent(p) ? 1 : 0;
        };
        const int node_level = DependsOnFilter(id) ? 2
                               : SelDependent(id) ? 1
                                                  : 0;
        if (restriction(*n.expr->args[1]) != node_level) {
          Add("scatter-index-domain",
              "scatter index selection must match the scatter's iteration "
              "domain (the interpreter iterates the index's selection)",
              "derive the index from the same filtered/selected stream as "
              "the scatter's value",
              static_cast<int>(id));
        }
        break;
      }
      case SkeletonKind::kFilter:
        ++filters;
        filter_node_ = static_cast<int>(id);
        for (uint32_t c : n.consumers) {
          if (!InTrace(c)) {
            Add("filter-sel-escape", "filter output escapes the trace",
                "selection vectors do not cross the compiled-code "
                "boundary; include every consumer in the trace",
                static_cast<int>(id));
            break;
          }
        }
        if (sel_mode_ && !SelDependent(id)) {
          Add("filter-positional-in-sel-trace",
              "filter over a positional input cannot join a "
              "selection-carrying trace",
              "the filter would mint a selection unrelated to the incoming "
              "one; split it into its own trace",
              static_cast<int>(id));
        }
        break;
      case SkeletonKind::kCondense: {
        const bool from_filter =
            n.inputs.size() == 1 && InTrace(n.inputs[0]) &&
            graph_.nodes()[n.inputs[0]].kind == SkeletonKind::kFilter;
        if (!from_filter && !(sel_mode_ && SelDependent(id))) {
          Add("condense-no-source",
              "condense without its filter (or a selection-carrying "
              "input) in the same trace",
              "keep the condense and its selection producer in one trace",
              static_cast<int>(id));
        }
        break;
      }
      case SkeletonKind::kExpand:
        Add("expand-in-trace",
            "expand fan-out has a data-dependent output length (hash-join "
            "probe stays interpreted)",
            "the fixed-width trace ABI cannot carry fan-out; leave expand "
            "interpreted",
            static_cast<int>(id));
        break;
      default:
        Add("skeleton-unsupported",
            StrFormat("skeleton %s not supported in compiled traces",
                      dsl::SkeletonName(n.kind)),
            "gen/merge/len nodes stay interpreted", static_cast<int>(id));
        break;
    }
  }
  if (filters > 1) {
    Add("filter-multiple", "more than one filter per trace",
        "the fused loop carries a single guard; split the trace at the "
        "second filter");
  }
  if (sel_mode_ && filter_node_ >= 0) {
    // The sel-republish-bypass miscompile family: with an in-trace filter,
    // condensed stores share the guard — a selection-carrying write or
    // condense that bypasses the filter would store only guard survivors
    // where interpretation stores every selected row.
    for (uint32_t id : trace_.node_ids) {
      const DepNode& n = graph_.nodes()[id];
      if ((n.kind == SkeletonKind::kWrite ||
           n.kind == SkeletonKind::kCondense) &&
          SelDependent(id) && !DependsOnFilter(id)) {
        Add("condense-bypass",
            "write/condense of a selection-carrying value that bypasses "
            "the in-trace filter",
            "route the value through the filter or split the trace",
            static_cast<int>(id));
      }
    }
  }
  // Escaping post-filter values must be condense nodes.
  for (uint32_t id : trace_.node_ids) {
    const DepNode& n = graph_.nodes()[id];
    if (n.kind == SkeletonKind::kWrite || n.kind == SkeletonKind::kScatter) {
      continue;
    }
    bool escapes = false;
    for (uint32_t c : n.consumers) {
      if (!InTrace(c)) escapes = true;
    }
    std::string name = graph_.OutputNameOf(id);
    for (const auto& o : trace_.outputs) {
      if (o == name) escapes = true;
    }
    if (escapes && DependsOnFilter(id) && n.kind != SkeletonKind::kCondense) {
      Add("postfilter-escape-no-condense",
          "post-filter value escapes the trace without condense",
          "condense the survivors before they leave the trace",
          static_cast<int>(id));
    }
  }
}

void TraceVerifier::CheckInputsOutputs() {
  // Chunk-variable inputs must be let-bound (known element type).
  for (const auto& name : trace_.inputs) {
    if (program_.FindData(name) != nullptr) continue;
    if (!let_types_.contains(name)) {
      Add("input-unknown",
          StrFormat("unknown trace input '%s' (not a data array, not "
                    "let-bound)",
                    name.c_str()),
          "every chunk-variable input needs a let binding for its type");
    }
  }
  // Read positions and write positions must be affine (const or variable).
  for (uint32_t id : trace_.node_ids) {
    const DepNode& n = graph_.nodes()[id];
    const Expr* pos = nullptr;
    if (n.kind == SkeletonKind::kRead && !n.expr->args.empty()) {
      pos = n.expr->args[0].get();
    } else if (n.kind == SkeletonKind::kWrite && n.expr->args.size() >= 2) {
      pos = n.expr->args[1].get();
    }
    if (pos != nullptr && pos->kind != ExprKind::kConst &&
        pos->kind != ExprKind::kVarRef) {
      Add("pos-not-affine",
          "read/write position must be a variable or constant for "
          "compilation",
          "hoist the position computation into a scalar let",
          static_cast<int>(id));
    }
  }
}

void TraceVerifier::CheckValueArg(const DepNode& node, const Expr& arg) {
  switch (arg.kind) {
    case ExprKind::kConst:
      return;
    case ExprKind::kSkeleton: {
      auto it = expr_to_node_.find(&arg);
      if (it == expr_to_node_.end() || !InTrace(it->second)) {
        Add("nested-skeleton-outside",
            "nested skeleton argument resolves outside the trace",
            "cover the producing node or bind it through a let",
            static_cast<int>(node.id));
      }
      return;
    }
    case ExprKind::kVarRef: {
      if (arg.shape == dsl::Shape::kScalar) return;  // capture
      const int prod = graph_.ProducerOf(arg.var);
      if (prod >= 0 && InTrace(static_cast<uint32_t>(prod))) return;
      // Must be a chunk-variable boundary input.
      for (const auto& in : trace_.inputs) {
        if (in == arg.var && program_.FindData(arg.var) == nullptr) return;
      }
      Add("value-unresolved",
          StrFormat("unresolved trace value '%s' (not produced in-trace, "
                    "not a boundary input)",
                    arg.var.c_str()),
          "the partitioner must list the value as a trace input",
          static_cast<int>(node.id));
      return;
    }
    default:
      Add("arg-unsupported", "unsupported argument expression",
          "value arguments must be constants, variables, or skeletons",
          static_cast<int>(node.id));
  }
}

void TraceVerifier::CheckValueArgs() {
  for (uint32_t id : trace_.node_ids) {
    const DepNode& n = graph_.nodes()[id];
    const Expr& e = *n.expr;
    auto normalize = [&](const Expr& lambda, std::vector<TypeId> in_types,
                         const char* what) {
      if (lambda.kind != ExprKind::kLambda) return;
      auto r = ir::Normalize(lambda, in_types);
      if (!r.ok()) {
        Add("prim-normalize",
            StrFormat("%s lambda does not normalize: %s", what,
                      r.status().message().c_str()),
            "restrict the lambda to the supported scalar-op forms",
            static_cast<int>(id));
      }
    };
    switch (n.kind) {
      case SkeletonKind::kMap: {
        std::vector<TypeId> in_types;
        for (size_t i = 1; i < e.args.size(); ++i) {
          CheckValueArg(n, *e.args[i]);
          in_types.push_back(e.args[i]->type);
        }
        if (!e.args.empty()) normalize(*e.args[0], in_types, "map");
        break;
      }
      case SkeletonKind::kFilter:
        if (e.args.size() >= 2) {
          CheckValueArg(n, *e.args[1]);
          normalize(*e.args[0], {e.args[1]->type}, "filter");
        }
        break;
      case SkeletonKind::kCondense:
        if (!e.args.empty()) CheckValueArg(n, *e.args[0]);
        break;
      case SkeletonKind::kGather:
        if (e.args.size() >= 2) CheckValueArg(n, *e.args[1]);
        break;
      case SkeletonKind::kWrite:
        if (e.args.size() >= 3) CheckValueArg(n, *e.args[2]);
        break;
      case SkeletonKind::kScatter:
        if (e.args.size() >= 3) {
          CheckValueArg(n, *e.args[1]);
          CheckValueArg(n, *e.args[2]);
        }
        break;
      case SkeletonKind::kFold:
        if (e.args.size() >= 3) {
          const Expr& init = *e.args[1];
          if (init.kind != ExprKind::kConst &&
              init.kind != ExprKind::kVarRef) {
            Add("fold-init-shape", "fold init must be const or variable",
                "hoist the init expression into a scalar let",
                static_cast<int>(id));
          }
          CheckValueArg(n, *e.args[2]);
          normalize(*e.args[0], {e.type, e.args[2]->type}, "fold");
        }
        break;
      default:
        break;
    }
  }
}

}  // namespace

VerifyResult VerifyTrace(const dsl::Program& program, const DepGraph& graph,
                         const Trace& trace, const TraceContext& ctx) {
  VerifyResult result;
  TraceVerifier(program, graph, trace, ctx, &result).Run();
  return result;
}

}  // namespace avm::analysis
