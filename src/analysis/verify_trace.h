// Level-2 static verifier: trace compilability (docs/VERIFIER.md).
//
// VerifyTrace encodes the docs/TRACE_ABI.md §6 decline taxonomy as
// machine-checked predicates over a candidate trace region: statement
// convexity (via ir::StmtConvexityViolation), capture staleness, the
// single-filter/condense selection discipline, scatter index-domain and
// conflict-function restrictions, affine read/write positions, gather and
// scatter base shapes, and value-argument resolvability. Each predicate
// carries a stable rule id; the catalog maps every id to the codegen
// decline message it mirrors.
//
// The enforced contract: jit::GenerateTrace declines a trace IFF
// VerifyTrace reports at least one diagnostic for it (codegen stops at its
// first error; the verifier collects all). AdaptiveVm::InstallTrace checks
// both sides on every compile and counts any disagreement in
// VmReport::verifier_disagreements — the differential harness asserts that
// counter stays zero across all 200 seeded plans.
#pragma once

#include <map>
#include <set>
#include <string>

#include "analysis/diagnostic.h"
#include "dsl/ast.h"
#include "ir/depgraph.h"
#include "storage/compression.h"

namespace avm::analysis {

/// The situation the trace would be specialized for — the subset of
/// jit::CodegenOptions that affects accept/decline (compression schemes
/// only change input kinds, never declines; selection-carrying inputs
/// change the variant rules).
struct TraceContext {
  /// Data arrays specialized for a compression scheme.
  std::map<std::string, Scheme> schemes;
  /// Chunk-variable inputs observed to carry a selection vector.
  std::set<std::string> sel_inputs;
};

/// Verify that `trace` (a region of `graph`, built from `program`) is
/// compilable under `ctx`. Clean result == GenerateTrace accepts.
VerifyResult VerifyTrace(const dsl::Program& program,
                         const ir::DepGraph& graph, const ir::Trace& trace,
                         const TraceContext& ctx = {});

}  // namespace avm::analysis
