#include "analysis/diagnostic.h"

#include <sstream>

namespace avm::analysis {

std::string Diagnostic::ToString() const {
  std::ostringstream os;
  os << "[" << rule_id << "] " << message;
  if (stmt_index >= 0 || node_id >= 0) {
    os << " (";
    bool first = true;
    if (stmt_index >= 0) {
      os << "stmt " << stmt_index;
      first = false;
    }
    if (node_id >= 0) {
      if (!first) os << ", ";
      os << "node " << node_id;
    }
    os << ")";
  }
  if (!fix_hint.empty()) os << "; hint: " << fix_hint;
  return os.str();
}

const Diagnostic* VerifyResult::FindRule(const std::string& rule_id) const {
  for (const auto& d : diagnostics) {
    if (d.rule_id == rule_id) return &d;
  }
  return nullptr;
}

std::string VerifyResult::ToString() const {
  std::ostringstream os;
  for (size_t i = 0; i < diagnostics.size(); ++i) {
    if (i) os << "\n";
    os << diagnostics[i].ToString();
  }
  return os.str();
}

}  // namespace avm::analysis
