// Structured findings of the static verifier (docs/VERIFIER.md).
//
// Every rule the verifier checks has a stable kebab-case id (the catalog in
// docs/VERIFIER.md is keyed by it); a Diagnostic pins one violation of one
// rule to a dependency-graph node and loop-body statement, with a
// human-readable message and a fix hint. The engine surfaces the first
// diagnostic of a run through ExecReport::verifier_diagnostic, and the
// verifier tests assert specific rule ids fire on hand-built malformed
// programs — so ids are part of the observable contract and must not be
// renamed casually.
#pragma once

#include <string>
#include <vector>

namespace avm::analysis {

/// One rule violation: which rule, where, and how to fix it.
struct Diagnostic {
  std::string rule_id;   ///< stable id from the docs/VERIFIER.md catalog
  int node_id = -1;      ///< offending DepGraph node, -1 when program-level
  int stmt_index = -1;   ///< loop-body statement ordinal, -1 when unknown
  std::string message;   ///< what is wrong
  std::string fix_hint;  ///< what would make the program/trace verify

  /// "[rule-id] message (stmt N, node M; hint: ...)".
  std::string ToString() const;
};

/// The outcome of one verifier run: all diagnostics, in detection order
/// (the first one mirrors what codegen's first decline would report).
struct VerifyResult {
  std::vector<Diagnostic> diagnostics;

  /// No rule fired.
  bool clean() const { return diagnostics.empty(); }

  /// First diagnostic carrying `rule_id`, or nullptr.
  const Diagnostic* FindRule(const std::string& rule_id) const;

  /// Newline-joined ToString of every diagnostic ("" when clean).
  std::string ToString() const;
};

}  // namespace avm::analysis
