// engine::QueryBuilder — a typed relational front end for the DSL engine.
//
// Hand-wiring a query meant writing a dsl::Program factory (reads, filters,
// selection-vector threading, scatter aggregation) plus a matching set of
// BindInput/BindShared/BindAccumulator calls, and keeping both in sync by
// hand. The builder derives all of it from a relational description:
//
//   engine::QueryBuilder qb(lineitem);
//   qb.Filter(dsl::Var("l_shipdate") <= dsl::ConstI(cutoff))
//     .Join(part, "l_partkey", "p_partkey", {"p_retail"})
//     .Project("dp", dsl::Var("l_extendedprice") *
//                        (dsl::ConstI(100) - dsl::Var("l_discount")))
//     .Aggregate(dsl::Cast(TypeId::kI64, dsl::Var("l_returnflag")), 4)
//     .Sum("sum_disc_price", dsl::Var("dp"))
//     .AvgF64("avg_retail", dsl::Var("p_retail"))
//     .Count("count");
//   engine::Query q = qb.Build().ValueOrDie();
//   session.Submit(q.context()).Wait();
//   int64_t total = q.aggregate("count")[0];
//
// Lowering infers every binding role from how the name is used:
//   scanned table columns     -> BindInput  (row-partitioned)
//   SemiJoin/Join lookups     -> BindShared (replicated dimension data)
//   aggregate accumulators    -> BindAccumulator (privatized + merged)
//   materialized output rows  -> BindPartialOutput (per-morsel windows)
// so every built query is morsel-parallel by construction.
//
// Two result shapes:
//  - Aggregate queries (Sum/Count/SumF64/AvgF64, optionally grouped): read
//    results with aggregate()/aggregate_f64(); with OrderBy() the per-group
//    rows are additionally materialized, sorted, into rows()/result_column()
//    at the query barrier.
//  - Row queries (Output()/OrderBy(), no aggregates): every surviving row's
//    selected columns are materialized — each morsel compacts and
//    partial-sorts its own output window, and the sorted runs are merged at
//    the Session barrier — and exposed via rows()/result_column().
//
// Expressions are plain dsl::ExprPtr scalar expressions (Var/ConstI/Cast
// and the infix operators of dsl/ast.h) over column names, join payloads,
// earlier projections, and nothing else — lambdas and skeletons are
// rejected; the builder inserts those itself.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "engine/exec_engine.h"
#include "storage/table.h"

namespace avm::engine {

namespace internal {
struct QuerySpec;
}  // namespace internal

/// Sort direction of QueryBuilder::OrderBy.
enum class SortDir : uint8_t { kAscending = 0, kDescending };

/// How QueryBuilder::Join materializes the build side.
///  - kAuto: dense key-indexed lookup arrays when the build keys are
///    provably unique, non-negative and below the dense-domain cap
///    (~16M); a CSR-layout hash table otherwise. Both paths produce
///    bit-identical results; kAuto just picks the cheaper probe.
///  - kHash: always the CSR hash table (testing/benchmarking knob).
enum class JoinStrategy : uint8_t { kAuto = 0, kHash };

/// A built query: the lowered program factory, its ExecContext with every
/// binding attached, and owned result storage for aggregates and
/// materialized rows. Move-only; must outlive any in-flight submission of
/// its context.
class Query {
 public:
  /// One materialized output column: `rows * TypeWidth(type)` raw bytes in
  /// result order. Row-query columns are bit-exact across execution
  /// strategies and worker counts (per-row values, stable order). Ordered
  /// AGGREGATE queries carry accumulator values: f64 columns — and the row
  /// order, when sorting BY an f64 aggregate — are deterministic only up
  /// to f64 merge-order rounding under parallel execution.
  struct ResultColumn {
    std::string name;
    TypeId type = TypeId::kI64;
    std::vector<uint8_t> data;

    template <typename T>
    const T* As() const {
      return reinterpret_cast<const T*>(data.data());
    }
  };

  Query();  ///< empty (for Result<Query>); only a Built query is runnable
  Query(Query&&) noexcept;
  Query& operator=(Query&&) noexcept;
  ~Query();

  /// The context to pass to Session::Submit / ExecEngine::Run. One
  /// in-flight submission at a time (the accumulators are this query's).
  ExecContext& context();

  /// Instantiate the lowered program for `rows` input rows (what the
  /// context's factory runs per morsel). Exposed for tests and for
  /// below-facade consumers that drive a VM directly.
  Result<dsl::Program> MakeProgram(int64_t rows) const;

  /// Integer aggregate results (Sum/Count), one slot per group. Aborts on
  /// an unknown name or a floating-point aggregate (use aggregate_f64).
  const std::vector<int64_t>& aggregate(const std::string& name) const;
  Result<int64_t> aggregate_at(const std::string& name,
                               size_t group = 0) const;

  /// Floating-point aggregate results, one slot per group: raw sums for
  /// SumF64; finalized averages for AvgF64 (0.0 for empty groups, computed
  /// at the query barrier — valid after the submission completed).
  const std::vector<double>& aggregate_f64(const std::string& name) const;

  /// Materialized result rows, populated at the query barrier: surviving
  /// input rows for Output()/OrderBy() row queries, per-group rows for
  /// ordered aggregate queries, 0 otherwise. Valid after the submission
  /// completed.
  uint64_t num_result_rows() const;
  /// A materialized output column by name; aborts on an unknown name.
  const ResultColumn& result_column(const std::string& name) const;
  /// All materialized output columns, in declaration order (row queries)
  /// or "group" followed by the aggregates (ordered aggregate queries).
  const std::vector<ResultColumn>& result_columns() const;

  /// Zero all accumulators and drop materialized rows so the query can be
  /// submitted again (also required after a cancelled/failed submission).
  void ResetAggregates();

  size_t num_groups() const;

 private:
  friend class QueryBuilder;
  struct Impl;
  explicit Query(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

class QueryBuilder {
 public:
  /// Scan the given table. The table must outlive the built Query.
  explicit QueryBuilder(const Table& table);
  ~QueryBuilder();
  QueryBuilder(const QueryBuilder&) = delete;
  QueryBuilder& operator=(const QueryBuilder&) = delete;

  /// Keep rows satisfying `predicate` (boolean expression over columns and
  /// earlier projections). Multiple filters conjoin in call order.
  QueryBuilder& Filter(dsl::ExprPtr predicate);

  /// Define a computed column usable in later expressions.
  QueryBuilder& Project(const std::string& name, dsl::ExprPtr expr);

  /// Keep rows whose integer `key` (column or projection) hits the
  /// dimension membership array: row survives iff membership[key] != 0.
  /// Every key value must lie in [0, membership.size()) — a stray key
  /// fails the run with OutOfRange (the gather bounds-checks its indices).
  /// The membership data is copied into the query and bound as a shared
  /// (replicated) dimension array.
  QueryBuilder& SemiJoin(const std::string& key,
                         std::vector<int64_t> membership);

  /// Hash equi-join against `build`: emit one output row per (probe row,
  /// matching build row) PAIR — duplicate build keys fan out many-to-many —
  /// and bring the named `payload` columns of the matching build row into
  /// scope for later expressions (all non-key build columns when `payload`
  /// is empty). Probe keys absent from the build side simply drop the row.
  ///
  /// Build() materializes the build side at Build() time. When the build
  /// keys are unique, non-negative and below ~16M, it densifies them into
  /// key-indexed lookup arrays (identity hash; the fast path). Otherwise —
  /// duplicate, negative, or sparse/huge keys, all of which are legal — it
  /// builds a CSR-layout hash table (bucket offset array + bucket-major
  /// key/row entry lists) and the probe fans out through bounds-checked
  /// gathers. Both paths are bit-identical: pairs appear in probe-row
  /// order, ties in build-row order, for any worker count. `build` must
  /// outlive the built Query.
  QueryBuilder& Join(const Table& build, const std::string& probe_key,
                     const std::string& build_key,
                     std::vector<std::string> payload = {});

  /// Override the automatic dense-vs-hash build-side selection for every
  /// Join of this query (see JoinStrategy). Tests use kHash to pin the
  /// CSR path against the dense fast path on the same data.
  QueryBuilder& SetJoinStrategy(JoinStrategy strategy);

  /// Group rows by `group_expr` (integer expression; values must lie in
  /// [0, num_groups)). Without this call, aggregates use a single group.
  QueryBuilder& Aggregate(dsl::ExprPtr group_expr, size_t num_groups);

  /// SUM(expr) per group into an i64 accumulator named `name`.
  QueryBuilder& Sum(const std::string& name, dsl::ExprPtr expr);

  /// SUM(expr) per group into an f64 accumulator (expr is cast to f64).
  /// NOTE: floating-point addition is not associative, so unlike the
  /// integer aggregates an f64 sum is only bit-reproducible for a fixed
  /// morsel merge order; parallel runs may differ from serial ones in the
  /// last ulps.
  QueryBuilder& SumF64(const std::string& name, dsl::ExprPtr expr);

  /// AVG(expr) per group: an f64 sum plus a hidden count, divided at the
  /// query barrier. Read with aggregate_f64(); empty groups average 0.0.
  QueryBuilder& AvgF64(const std::string& name, dsl::ExprPtr expr);

  /// COUNT(*) per group (counts surviving rows).
  QueryBuilder& Count(const std::string& name);

  /// Materialize `name` (column, payload, or projection) for every
  /// surviving row into the query's result rows. Row queries only (cannot
  /// be combined with aggregates).
  QueryBuilder& Output(const std::string& name);

  /// Order the materialized result. Row queries: `key` is a column,
  /// payload, or projection (added to the outputs if not already listed);
  /// each morsel partial-sorts its output window and the sorted runs merge
  /// at the Session barrier. Aggregate queries: `key` is "group" or an
  /// aggregate name, and the per-group rows are materialized sorted.
  /// Ties keep input-row (or group) order, so results are deterministic —
  /// except that sorting by an f64 aggregate (SumF64/AvgF64) inherits the
  /// merge-order sensitivity of f64 addition: near-tie groups may swap
  /// between serial and parallel runs.
  QueryBuilder& OrderBy(const std::string& key,
                        SortDir dir = SortDir::kAscending);

  /// Validate, lower once to surface type errors eagerly, and produce the
  /// runnable Query. At least one aggregate or one Output/OrderBy is
  /// required.
  Result<Query> Build();

 private:
  Status Fail(Status st);  // records the first error for Build()
  /// Copy-on-write: built Queries share the spec; the first mutation (or
  /// Build) after a Build() forks it so they never see later edits.
  internal::QuerySpec& MutableSpec();

  std::shared_ptr<internal::QuerySpec> spec_;
  Status deferred_error_;
};

}  // namespace avm::engine
