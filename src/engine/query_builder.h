// engine::QueryBuilder — a typed relational front end for the DSL engine.
//
// Hand-wiring a query meant writing a dsl::Program factory (reads, filters,
// selection-vector threading, scatter aggregation) plus a matching set of
// BindInput/BindShared/BindAccumulator calls, and keeping both in sync by
// hand. The builder derives all of it from a relational description:
//
//   engine::QueryBuilder qb(lineitem);
//   qb.Filter(dsl::Var("l_shipdate") <= dsl::ConstI(cutoff))
//     .Project("dp", dsl::Var("l_extendedprice") *
//                        (dsl::ConstI(100) - dsl::Var("l_discount")))
//     .Aggregate(dsl::Cast(TypeId::kI64, dsl::Var("l_returnflag")), 4)
//     .Sum("sum_disc_price", dsl::Var("dp"))
//     .Count("count");
//   engine::Query q = qb.Build().ValueOrDie();
//   session.Submit(q.context()).Wait();
//   int64_t total = q.aggregate("count")[0];
//
// Lowering infers every binding role from how the name is used:
//   scanned table columns   -> BindInput   (row-partitioned)
//   SemiJoin lookup arrays  -> BindShared  (replicated dimension data)
//   aggregate accumulators  -> BindAccumulator (privatized + merged)
// so every built query is morsel-parallel by construction (scatter targets
// are accumulators, gathers read shared arrays, no condense).
//
// Expressions are plain dsl::ExprPtr scalar expressions (Var/ConstI/Cast
// and the infix operators of dsl/ast.h) over column names, earlier
// projections, and nothing else — lambdas and skeletons are rejected;
// the builder inserts those itself.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "engine/exec_engine.h"
#include "storage/table.h"

namespace avm::engine {

namespace internal {
struct QuerySpec;
}  // namespace internal

/// A built query: the lowered program factory, its ExecContext with every
/// binding attached, and owned result storage for the aggregates.
/// Move-only; must outlive any in-flight submission of its context.
class Query {
 public:
  Query();  ///< empty (for Result<Query>); only a Built query is runnable
  Query(Query&&) noexcept;
  Query& operator=(Query&&) noexcept;
  ~Query();

  /// The context to pass to Session::Submit / ExecEngine::Run. One
  /// in-flight submission at a time (the accumulators are this query's).
  ExecContext& context();

  /// Instantiate the lowered program for `rows` input rows (what the
  /// context's factory runs per morsel). Exposed for tests and for
  /// below-facade consumers that drive a VM directly.
  Result<dsl::Program> MakeProgram(int64_t rows) const;

  /// Aggregate results, one slot per group. Aborts on an unknown name.
  const std::vector<int64_t>& aggregate(const std::string& name) const;
  Result<int64_t> aggregate_at(const std::string& name,
                               size_t group = 0) const;

  /// Zero all accumulators so the query can be submitted again.
  void ResetAggregates();

  size_t num_groups() const;

 private:
  friend class QueryBuilder;
  struct Impl;
  explicit Query(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

class QueryBuilder {
 public:
  /// Scan the given table. The table must outlive the built Query.
  explicit QueryBuilder(const Table& table);
  ~QueryBuilder();
  QueryBuilder(const QueryBuilder&) = delete;
  QueryBuilder& operator=(const QueryBuilder&) = delete;

  /// Keep rows satisfying `predicate` (boolean expression over columns and
  /// earlier projections). Multiple filters conjoin in call order.
  QueryBuilder& Filter(dsl::ExprPtr predicate);

  /// Define a computed column usable in later expressions.
  QueryBuilder& Project(const std::string& name, dsl::ExprPtr expr);

  /// Keep rows whose integer `key` (column or projection) hits the
  /// dimension membership array: row survives iff membership[key] != 0.
  /// Every key value must lie in [0, membership.size()) — a stray key
  /// fails the run with OutOfRange (the gather bounds-checks its indices).
  /// The membership data is copied into the query and bound as a shared
  /// (replicated) dimension array.
  QueryBuilder& SemiJoin(const std::string& key,
                         std::vector<int64_t> membership);

  /// Group rows by `group_expr` (integer expression; values must lie in
  /// [0, num_groups)). Without this call, aggregates use a single group.
  QueryBuilder& Aggregate(dsl::ExprPtr group_expr, size_t num_groups);

  /// SUM(expr) per group into an i64 accumulator named `name`.
  QueryBuilder& Sum(const std::string& name, dsl::ExprPtr expr);

  /// COUNT(*) per group (counts surviving rows).
  QueryBuilder& Count(const std::string& name);

  /// Validate, lower once to surface type errors eagerly, and produce the
  /// runnable Query. At least one Sum/Count is required.
  Result<Query> Build();

 private:
  Status Fail(Status st);  // records the first error for Build()
  /// Copy-on-write: built Queries share the spec; the first mutation (or
  /// Build) after a Build() forks it so they never see later edits.
  internal::QuerySpec& MutableSpec();

  std::shared_ptr<internal::QuerySpec> spec_;
  Status deferred_error_;
};

}  // namespace avm::engine
