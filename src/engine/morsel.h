// Morsel-driven parallelism primitives (Leis et al.-style): the total row
// range is cut into cache-friendly row-range morsels and a fixed set of
// workers pulls morsels from a shared queue until it is drained, so skew in
// per-morsel cost self-balances. Used by ExecEngine for DSL programs and by
// the relational layer for parallel scans/probes.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "util/status.h"
#include "util/thread_pool.h"

namespace avm::engine {

/// A contiguous row range [begin, end) of the input relation.
struct Morsel {
  uint64_t begin = 0;
  uint64_t end = 0;
  size_t index = 0;  ///< position in the schedule (0 = first range)

  uint64_t rows() const { return end - begin; }
};

/// Cut [0, rows) into morsels. `morsel_rows == 0` picks a size aiming at
/// ~4 morsels per worker (so stealing can balance skew) and rounds it up to
/// a multiple of `align` (the execution chunk size, keeping chunk boundaries
/// morsel-aligned).
std::vector<Morsel> PartitionRows(uint64_t rows, size_t num_workers,
                                  uint64_t morsel_rows, uint32_t align);

/// Run `fn` over every morsel using `num_workers` pool workers pulling from
/// a shared atomic cursor. Blocks until all morsels are processed; returns
/// the first non-OK status (remaining morsels are skipped on error).
Status RunMorsels(ThreadPool& pool, size_t num_workers,
                  const std::vector<Morsel>& morsels,
                  const std::function<Status(const Morsel&)>& fn);

}  // namespace avm::engine
