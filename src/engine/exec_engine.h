// Unified execution facade.
//
// Every consumer of the framework (the relational layer, examples,
// benchmarks) enters through the engine layer: a type-checked dsl::Program
// plus data bindings go in, a unified ExecReport comes out. The engine picks
// the execution machinery from an ExecutionStrategy:
//
//   kInterpret    pure vectorized interpretation (paper §III-A, JIT off)
//   kAdaptiveJit  the Fig. 1 adaptive VM: interpret + profile, partition,
//                 JIT, inject, re-specialize on situation change
//   kGpuOffload   adaptive CPU/GPU placement for offloadable map fragments
//                 (simulated device; falls back to kAdaptiveJit otherwise)
//
// Since the Session redesign the engine is a *service*, not a function: the
// primary surface is engine::Session (session.h), whose Submit() returns a
// future-like QueryHandle and whose fair morsel scheduler interleaves N
// in-flight queries over M workers sharing one TraceCache. The blocking
// ExecEngine::Run / ExecEngine::Execute entry points below are thin
// Submit+Wait wrappers kept so every pre-Session consumer keeps working.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "engine/memory_tracker.h"
#include "engine/morsel.h"
#include "jit/trace_cache.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "vm/adaptive_vm.h"

namespace avm::engine {

class Session;

/// Which execution machinery serves a query (see the file comment):
/// pure vectorized interpretation, the adaptive interpret+profile+JIT
/// loop, or adaptive CPU/GPU placement for offloadable fragments.
enum class ExecutionStrategy : uint8_t {
  kInterpret = 0,
  kAdaptiveJit,
  kGpuOffload,
};

/// Human-readable strategy name ("interpret", "adaptive-jit", ...).
const char* StrategyName(ExecutionStrategy s);

/// Per-query knobs: how one submitted query executes. Worker count and
/// pools are session-level concerns (SessionOptions).
struct QueryOptions {
  ExecutionStrategy strategy = ExecutionStrategy::kAdaptiveJit;
  /// Tuning knobs of the underlying VM/interpreter. `vm.enable_jit` is
  /// overridden by the strategy (kInterpret forces it off).
  vm::VmOptions vm;
  /// Rows per morsel; 0 = auto (~4 morsels per worker, chunk-aligned).
  uint64_t morsel_rows = 0;
  /// Per-query memory budget in bytes, accounted by engine::MemoryTracker
  /// (docs/SPILL.md): join build tables, ORDER BY output windows, and
  /// per-task scratch charge against it; ORDER BY spills sorted runs to
  /// disk when the budget trips. 0 = use the session-wide AVM_MEMORY_BUDGET
  /// tracker if set, else unlimited.
  uint64_t memory_budget = 0;
};

/// Options of the compatibility facade: per-query knobs plus the session
/// parameters ExecEngine forwards to its embedded Session. The first three
/// fields mirror QueryOptions (kept flat for source compatibility with
/// pre-Session callers); the ExecEngine constructor is the single mapping
/// point — a field added to QueryOptions must be forwarded there.
struct EngineOptions {
  ExecutionStrategy strategy = ExecutionStrategy::kAdaptiveJit;
  /// Tuning knobs of the underlying VM/interpreter. `vm.enable_jit` is
  /// overridden by the strategy (kInterpret forces it off).
  vm::VmOptions vm;
  /// Number of morsel workers; 1 = serial, 0 = hardware concurrency.
  size_t num_workers = 1;
  /// Rows per morsel; 0 = auto (~4 morsels per worker, chunk-aligned).
  uint64_t morsel_rows = 0;
  /// Auxiliary pool for the simulated GPU device (SM-level parallelism);
  /// nullptr = the process-wide ThreadPool::Global(). Morsel workers run on
  /// the session's own worker pool, not on this one — the old `pool` field
  /// was renamed so pre-Session code that routed morsel work through it
  /// fails to compile instead of silently changing thread placement.
  ThreadPool* device_pool = nullptr;
  /// Per-query memory budget in bytes (mirrors QueryOptions::memory_budget;
  /// 0 = AVM_MEMORY_BUDGET if set, else unlimited).
  uint64_t memory_budget = 0;
};

/// Unified result of one engine run — the merger of the old ad-hoc
/// VmReport / profiler-string plumbing, plus parallelism and device info.
struct ExecReport {
  ExecutionStrategy strategy = ExecutionStrategy::kAdaptiveJit;
  std::string device = "cpu";  ///< "cpu" or "gpu-sim"
  /// SIMD kernel tier the query's interpreters dispatched to ("scalar",
  /// "sse2", "avx2"): the detected-best tier unless overridden per query
  /// (VmOptions) or process-wide (AVM_KERNEL_TIER).
  std::string kernel_tier = "scalar";
  size_t workers = 1;
  size_t morsels = 1;
  uint64_t rows = 0;
  double wall_seconds = 0;

  /// Non-empty when parallel execution was requested (workers > 1) but the
  /// query ran serially anyway; says why (fixed program, condensing
  /// pipeline, single morsel, ...), instead of silently dropping the
  /// request on the floor.
  std::string ran_serial_reason;

  // Merged adaptive-VM counters (summed across workers).
  uint64_t iterations = 0;
  uint64_t traces_compiled = 0;
  uint64_t traces_reused = 0;
  uint64_t injection_runs = 0;
  uint64_t injection_fallbacks = 0;
  double compile_seconds = 0;

  /// JIT tier policy the query's VMs compiled under ("tiered", "fast",
  /// "opt"): AVM_JIT_TIER / VmOptions::jit_tier_policy resolved.
  std::string jit_tier;
  /// Per-tier split of traces_compiled with backend wall time: fast (-O0)
  /// first-execution compiles vs optimized (-O2) compiles.
  uint64_t fast_compiles = 0;
  uint64_t opt_compiles = 0;
  double fast_compile_seconds = 0;
  double opt_compile_seconds = 0;
  /// Persistent trace-cache traffic (AVM_TRACE_CACHE_DIR): situations whose
  /// machine code loaded from disk instead of compiling — disk hits do NOT
  /// count into traces_compiled, which is exactly the warm-restart
  /// guarantee (`traces_compiled == 0 && disk_cache_hits > 0` after a
  /// restart) — plus probed-but-absent misses and corrupt entries detected,
  /// deleted and recompiled.
  uint64_t disk_cache_hits = 0;
  uint64_t disk_cache_misses = 0;
  uint64_t disk_cache_corrupt = 0;
  /// Hotness-triggered background fast→optimized tier upgrades: requested
  /// by this query's injections; completed = re-published by report time.
  uint64_t tier_upgrades_requested = 0;
  uint64_t tier_upgrades = 0;

  /// Non-empty when the adaptive VM considered a hot trace but declined to
  /// compile it (first reason observed). The trace ABI passes selections
  /// in, scalar state out, and a bounds status (docs/TRACE_ABI.md), so
  /// gather/scatter traces, let-bound write counts, and selection-carrying
  /// inputs all compile; what remains declined are the genuinely
  /// unsupported shapes the ABI spec enumerates (merge/gen skeletons,
  /// expand fan-outs with data-dependent output lengths, chunk-array
  /// gather bases, multi-filter traces, exotic scatter conflict
  /// functions, non-affine positions). The query still completes
  /// — uncompiled fragments run vectorized-interpreted — but the decline
  /// is reported instead of silently looking like "nothing was hot".
  std::string jit_declined;

  /// Static-verifier activity, summed across workers (docs/VERIFIER.md):
  /// candidate traces analysis::VerifyTrace checked ahead of codegen,
  /// traces it rejected, and decline-contract disagreements (codegen
  /// accepted a verifier-dirty trace or declined a clean one) — the
  /// differential harness asserts the disagreement counter stays zero.
  /// verifier_diagnostic is the first diagnostic observed (program- or
  /// trace-level), empty when everything verified clean.
  uint64_t verifier_checked = 0;
  uint64_t verifier_rejects = 0;
  uint64_t verifier_disagreements = 0;
  std::string verifier_diagnostic;

  /// Fig. 1 state-machine timeline and profiler dump of the worker that
  /// executed the first morsel (representative; per-worker dumps would be
  /// near-identical).
  std::string state_timeline;
  std::string profile;

  /// Simulated device seconds consumed (kGpuOffload only).
  double gpu_sim_seconds = 0;

  /// Out-of-core counters (docs/SPILL.md). bytes_spilled / spill_runs:
  /// sorted-run payload the query wrote to its storage::SpillFile (0 when
  /// everything fit in budget). peak_tracked_bytes: high-water mark of the
  /// query's MemoryTracker — may exceed the budget by the documented
  /// transient-scratch overshoot. chunks_streamed: compressed column blocks
  /// decoded one super-chunk at a time by streaming scan cursors.
  uint64_t bytes_spilled = 0;
  uint64_t spill_runs = 0;
  uint64_t peak_tracked_bytes = 0;
  uint64_t chunks_streamed = 0;

  std::string ToString() const;
};

/// How a bound array participates in a morsel-parallel run.
enum class BindRole : uint8_t {
  kInput,        ///< read-only, row-partitioned: worker w sees its slice
  kShared,       ///< read-only, replicated: every worker sees the whole array
  kOutput,       ///< writable, row-partitioned: worker w writes its slice
  kAccumulator,  ///< writable, privatized: zeroed per-worker copy, merged
  /// Writable, row-partitioned *window*: each morsel owns its slice but may
  /// write any data-dependent PREFIX of it (condensing writes). The engine
  /// does not stitch the prefixes together; the query's task hook records
  /// each morsel's written count and its finalize hook merges the runs at
  /// the barrier — this is how condensing/materializing pipelines (ORDER BY,
  /// row output) run morsel-parallel instead of falling back to serial.
  kPartialOutput,
};

/// Merges one worker's accumulator partial into the master array.
using MergeFn = std::function<void(TypeId type, void* master,
                                   const void* partial, uint64_t len)>;

/// Element-wise sum — correct for additive aggregates (sums, counts), which
/// is what kScatter/kFold accumulator programs produce.
void SumMerge(TypeId type, void* master, const void* partial, uint64_t len);

/// Memory context the engine hands a query's prepare hook: the tracker its
/// persistent charges go to, how many workers may run tasks concurrently
/// (bounds the transient overshoot), and the chunk size morsel boundaries
/// align to (spill-mode morsel caps must stay chunk-aligned).
struct MemoryPlan {
  /// Never null when the hook runs; shared so query-owned state (which can
  /// outlive the engine-side QueryState) releases charges safely.
  std::shared_ptr<MemoryTracker> tracker;
  size_t workers = 1;
  uint32_t chunk_size = 1;
};

/// What a prepare hook decided; the engine folds it into scheduling.
struct PrepareOutcome {
  /// >0 = spill mode: cap morsels to this many rows (already chunk-aligned
  /// by the hook) and run morsel-wise — per-task scratch windows — even on
  /// a single worker, so sealed runs stay budget-sized.
  uint64_t max_morsel_rows = 0;
};

/// Spill activity a query's hooks accumulate for the ExecReport.
struct SpillStats {
  uint64_t bytes_spilled = 0;
  uint64_t spill_runs = 0;
};

/// A program shape plus data bindings, ready for the engine.
///
/// Programs loop over their input with a baked-in row limit, so a parallel
/// run needs one program instance per morsel: the context is constructed
/// with a *factory* `make_program(rows)` that the engine invokes per morsel
/// (and once with the total row count for serial runs). Programs whose row
/// count is fixed can use the single-program constructor; those contexts
/// always run serially.
///
/// A context describes ONE in-flight query: it (and everything it binds)
/// must stay alive until the query's handle reports completion, and the
/// same context must not be submitted again while still running.
class ExecContext {
 public:
  using ProgramFactory = std::function<Result<dsl::Program>(int64_t rows)>;

  /// Row-parameterized program over `total_rows` input rows; this is the
  /// parallelizable form. The factory's result is type-checked by the
  /// engine.
  ExecContext(ProgramFactory make_program, uint64_t total_rows);

  /// Fixed, already type-checked program (must outlive the context). Runs
  /// serially regardless of the session's worker count.
  explicit ExecContext(const dsl::Program* program);

  /// Read-only input, partitioned by rows across morsels.
  ExecContext& BindInput(const std::string& name, interp::DataBinding b);
  ExecContext& BindInputColumn(const std::string& name, const Column* col);
  /// Read-only array visible in full to every worker (dimension tables,
  /// lookup arrays).
  ExecContext& BindShared(const std::string& name, interp::DataBinding b);
  /// Writable output, partitioned by rows: each worker writes only its
  /// slice. Only valid for programs whose output position tracks the input
  /// position (maps); condensing programs must run serially.
  ExecContext& BindOutput(const std::string& name, interp::DataBinding b);
  /// Writable accumulator: each worker aggregates into a private zeroed
  /// copy; partials are merged into the master at the barrier (default:
  /// element-wise sum).
  ExecContext& BindAccumulator(const std::string& name, TypeId type,
                               void* data, uint64_t len,
                               MergeFn merge = SumMerge);
  /// Writable per-morsel window (see BindRole::kPartialOutput): worker w
  /// writes a data-dependent prefix of its row slice. Pair with a task hook
  /// that reads the written count and a finalize hook that merges the runs.
  ///
  /// `row_scale` widens the window per input row: a morsel over input rows
  /// [begin, end) owns window rows [begin*row_scale, end*row_scale). Queries
  /// whose pipelines fan out (many-to-many hash joins) size their windows at
  /// input_rows x worst-case fan-out and pass that factor here so morsel
  /// slicing and validation stay consistent.
  ///
  /// Rebinding an existing kPartialOutput name replaces it in place (the
  /// prepare hook re-decides in-memory vs scratch windows per submission).
  ExecContext& BindPartialOutput(const std::string& name,
                                 interp::DataBinding b,
                                 uint64_t row_scale = 1);
  /// Like BindPartialOutput, but bound by name and shape only: the engine
  /// allocates a fresh `rows x row_scale x width` window per TASK instead
  /// of slicing one query-lifetime array — the spill-mode form, where each
  /// morsel's sorted run is sealed to disk by the task hook and the window
  /// is discarded. Replaces any existing binding of the same name.
  ExecContext& BindPartialOutputScratch(const std::string& name, TypeId type,
                                        uint64_t row_scale = 1);

  /// Optional observability hook: called (serially) with each worker's
  /// interpreter after it finishes, before accumulator merge. Tests and
  /// examples use it to read adaptive state (e.g. preferred filter flavor).
  /// Not invoked when kGpuOffload executes the fragment on the simulated
  /// device — there is no interpreter state to observe on that path. May
  /// probe this query's handle (done()/TryGetReport()), but must not
  /// Wait() on it or submit queries back into the engine — the calling
  /// worker would wait on itself.
  ExecContext& set_inspector(
      std::function<void(const interp::Interpreter&)> fn) {
    inspector_ = std::move(fn);
    return *this;
  }

  /// Per-task hook: called after each task's interpreter finishes, with the
  /// row range the task covered (serial runs see one task spanning every
  /// row). Parallel runs call it under the query's merge mutex, so bodies
  /// may mutate query-owned state without extra locking; cancelled or
  /// failed tasks skip it. Queries with kPartialOutput windows use it to
  /// read the per-morsel written count and partial-sort their window.
  ExecContext& set_task_hook(
      std::function<Status(const interp::Interpreter&, const Morsel&)> fn) {
    task_hook_ = std::move(fn);
    return *this;
  }

  /// Barrier hook: called exactly once, after the last task completed
  /// successfully (all accumulator merges and task hooks done) and before
  /// the query's handle reports completion. A returned error fails the
  /// query. Not called for cancelled or failed queries. Queries with
  /// ordered/materialized output use it to merge per-morsel sorted runs.
  ExecContext& set_finalize_hook(std::function<Status()> fn) {
    finalize_hook_ = std::move(fn);
    return *this;
  }

  /// Memory-plan hook: called once per submission, before partitioning,
  /// with the query's MemoryPlan. The hook charges its persistent
  /// allocations (join build tables, output windows) against plan.tracker
  /// and either keeps in-memory windows or switches to scratch windows +
  /// spilling, reporting a morsel cap through PrepareOutcome. An error
  /// (e.g. kResourceExhausted when even one morsel cannot fit) fails the
  /// query cleanly. Contexts without the hook run exactly as before.
  ExecContext& set_prepare_hook(
      std::function<Status(const MemoryPlan&, PrepareOutcome*)> fn) {
    prepare_hook_ = std::move(fn);
    return *this;
  }

  /// Terminal hook: called exactly once per submission after the query
  /// reaches ANY terminal state — success, failure, cancellation, skip —
  /// never under engine locks. Queries use it to release persistent
  /// tracker charges and close (unlink) spill files. Must be idempotent:
  /// defensive paths may invoke it again.
  ExecContext& set_cleanup_hook(std::function<void()> fn) {
    cleanup_hook_ = std::move(fn);
    return *this;
  }

  /// Spill counters the query's hooks accumulate (task hooks run under the
  /// query's merge serialization); the engine copies them into the
  /// ExecReport at finalize.
  SpillStats& spill_stats() { return spill_stats_; }

  uint64_t total_rows() const { return total_rows_; }
  bool parallelizable() const { return make_program_ != nullptr; }

 private:
  friend class Session;

  struct Bound {
    std::string name;
    BindRole role;
    interp::DataBinding binding;  ///< full-extent binding
    MergeFn merge;                ///< kAccumulator only
    /// kPartialOutput only: window rows per input row (fan-out factor).
    uint64_t row_scale = 1;
    /// kPartialOutput only: engine-allocated per-task scratch window
    /// (binding carries type/shape, not storage) — the spill-mode form.
    bool scratch = false;
  };

  ProgramFactory make_program_;         // null for fixed-program contexts
  const dsl::Program* fixed_program_ = nullptr;
  uint64_t total_rows_ = 0;
  std::vector<Bound> bound_;
  std::function<void(const interp::Interpreter&)> inspector_;
  std::function<Status(const interp::Interpreter&, const Morsel&)> task_hook_;
  std::function<Status()> finalize_hook_;
  std::function<Status(const MemoryPlan&, PrepareOutcome*)> prepare_hook_;
  std::function<void()> cleanup_hook_;
  SpillStats spill_stats_;
};

/// The blocking compatibility facade over engine::Session. One engine
/// instance embeds one long-lived Session; the session's TraceCache
/// persists across runs, so repeated queries of the same shape reuse
/// compiled traces instead of recompiling.
class ExecEngine {
 public:
  explicit ExecEngine(EngineOptions options = {});
  ~ExecEngine();

  /// Execute `ctx` under the configured strategy and worker count. A thin
  /// Submit + Wait over the embedded session.
  Result<ExecReport> Run(ExecContext& ctx);

  /// The embedded session, for callers that want the async surface
  /// (Submit returning a QueryHandle) on the same cache and workers.
  Session& session() { return *session_; }

  const EngineOptions& options() const { return options_; }
  const jit::TraceCache& trace_cache() const;

  /// Convenience: run a context once with the given options.
  static Result<ExecReport> Execute(ExecContext& ctx,
                                    EngineOptions options = {});

 private:
  EngineOptions options_;
  std::unique_ptr<Session> session_;
};

}  // namespace avm::engine
