// engine::MemoryTracker — byte accounting against a per-query or shared
// memory budget (ROADMAP direction 4: out-of-core execution).
//
// The tracker is deliberately a pure accountant: it never allocates and it
// never blocks. Consumers charge in two modes with different failure
// semantics:
//
//  - PERSISTENT charges (TryCharge/Release) cover allocations that live for
//    the whole query — join build tables, in-memory ORDER BY output windows.
//    They fail when the budget would be exceeded, and the caller reacts by
//    switching to an out-of-core plan (spilled sorted runs, capped morsel
//    windows) or failing the query with kResourceExhausted.
//
//  - TRANSIENT charges (ChargeTransient/Release) cover bounded per-task
//    scratch — morsel output windows in spill mode, privatized accumulator
//    copies, per-column block-decode buffers. They always succeed: a task
//    that already started must be able to finish (blocking it on memory
//    would risk deadlock across queries sharing one tracker), and the
//    overshoot is bounded by workers x one morsel's scratch, which the
//    spill planner sized to a fraction of the budget. The overshoot is
//    visible in peak() and reported as ExecReport::peak_tracked_bytes.
//
// Never-blocking is what makes concurrent Session clients sharing one
// global tracker (AVM_MEMORY_BUDGET) deadlock-free by construction.
#pragma once

#include <cstdint>
#include <mutex>

#include "util/status.h"
#include "util/thread_annotations.h"

namespace avm::engine {

/// Thread-safe byte accounting against an optional budget (0 = unlimited).
/// Shared either per query (QueryOptions::memory_budget) or session-wide
/// (AVM_MEMORY_BUDGET); see the file comment for the charge semantics.
class MemoryTracker {
 public:
  /// `budget_bytes` == 0 means unlimited (the tracker still tracks usage
  /// and peak for observability).
  explicit MemoryTracker(uint64_t budget_bytes = 0)
      : budget_(budget_bytes) {}

  MemoryTracker(const MemoryTracker&) = delete;
  MemoryTracker& operator=(const MemoryTracker&) = delete;

  /// Reserve `bytes` of budget for a query-lifetime allocation. Fails with
  /// kResourceExhausted (naming `what`) when the budget would be exceeded;
  /// on failure nothing is charged.
  Status TryCharge(uint64_t bytes, const char* what);

  /// Account `bytes` of bounded task scratch. Always succeeds — see the
  /// file comment for why transient charges may overshoot the budget.
  void ChargeTransient(uint64_t bytes);

  /// Return `bytes` previously charged (either mode).
  void Release(uint64_t bytes);

  /// Budget this tracker enforces; 0 = unlimited.
  uint64_t budget() const { return budget_; }

  /// Bytes currently charged.
  uint64_t used() const;

  /// High-water mark of used() over the tracker's lifetime.
  uint64_t peak() const;

  /// Budget minus used(); UINT64_MAX when unlimited.
  uint64_t available() const;

  /// Budget from the AVM_MEMORY_BUDGET environment variable, in bytes
  /// (0 when unset/unparsable = unlimited). Read once per call.
  static uint64_t EnvBudget();

 private:
  const uint64_t budget_;
  mutable std::mutex mu_;
  uint64_t used_ AVM_GUARDED_BY(mu_) = 0;
  uint64_t peak_ AVM_GUARDED_BY(mu_) = 0;
};

/// RAII helper for transient charges: charges `bytes` on construction (via
/// ChargeTransient) and releases on destruction. A null tracker is a no-op.
class ScopedTransientCharge {
 public:
  ScopedTransientCharge(MemoryTracker* tracker, uint64_t bytes)
      : tracker_(tracker), bytes_(bytes) {
    if (tracker_ != nullptr && bytes_ > 0) tracker_->ChargeTransient(bytes_);
  }
  ~ScopedTransientCharge() {
    if (tracker_ != nullptr && bytes_ > 0) tracker_->Release(bytes_);
  }
  ScopedTransientCharge(const ScopedTransientCharge&) = delete;
  ScopedTransientCharge& operator=(const ScopedTransientCharge&) = delete;

 private:
  MemoryTracker* tracker_;
  uint64_t bytes_;
};

}  // namespace avm::engine
