#include "engine/session.h"

#include <algorithm>
#include <cstring>
#include <deque>
#include <map>

#include "dsl/typecheck.h"
#include "gpu/gpu_backend.h"
#include "gpu/placement.h"
#include "gpu/sim_device.h"
#include "ir/prim.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace avm::engine {

namespace internal {

/// One submitted query: classification result + scheduling progress +
/// the eventual report. Shared by the session scheduler and every handle.
struct QueryState {
  // ----- immutable after Classify ---------------------------------------
  ExecContext* ctx = nullptr;
  QueryOptions qo;
  vm::VmOptions vmo;  ///< effective VM options (JIT gating, scaled warmup)

  bool single_task = false;  ///< serial CPU or GPU-device query
  bool gpu_task = false;     ///< run on the simulated device
  std::vector<Morsel> morsels;                 // parallel class only
  std::map<uint64_t, dsl::Program> programs;   // per distinct morsel size
  size_t total_tasks = 0;
  std::string serial_reason;

  // kGpuOffload bookkeeping: the instantiated fragment (kept alive for the
  // device task) and the profile used to calibrate the placer.
  std::shared_ptr<dsl::Program> gpu_program;
  ir::PrimProgram gpu_prim;
  interp::DataBinding gpu_src;
  interp::DataBinding gpu_out;
  uint64_t gpu_rows = 0;
  gpu::FragmentProfile gpu_profile;
  bool calibrate_cpu = false;  ///< placer chose CPU: observe the CPU run

  // ----- scheduling progress (guarded by Scheduler::mu) ------------------
  size_t issued = 0;  ///< tasks handed to workers

  std::atomic<bool> cancel{false};

  /// Memory accounting for this query: per-query (QueryOptions), the
  /// session-wide AVM_MEMORY_BUDGET tracker, or a private unlimited one.
  /// Never null after Classify. Shared so query-owned state that releases
  /// charges can outlive this QueryState.
  std::shared_ptr<MemoryTracker> tracker;

  /// Copy of the context's cleanup hook plus its exactly-once guard. Copied
  /// out at Submit because QueryHandle::Cancel must reach it without access
  /// to ExecContext's privates; every terminal path funnels through it.
  std::function<void()> cleanup;
  std::atomic<bool> cleanup_done{false};

  /// Set at Submit; lets QueryHandle::Cancel() reach the admission queue.
  std::weak_ptr<Scheduler> sched;

  /// Serializes inspector calls + accumulator merges across morsel workers.
  /// Deliberately NOT `mu`: the inspector is user code that may probe the
  /// query's own handle (done() / TryGetReport() lock `mu`).
  std::mutex merge_mu;

  // ----- result (guarded by mu) ------------------------------------------
  std::mutex mu;
  std::condition_variable cv;
  bool started AVM_GUARDED_BY(mu) = false;
  bool finished AVM_GUARDED_BY(mu) = false;
  size_t completed AVM_GUARDED_BY(mu) = 0;  ///< tasks that ran
  size_t skipped AVM_GUARDED_BY(mu) = 0;  ///< dropped by cancel/failure
  Status status AVM_GUARDED_BY(mu);
  ExecReport report AVM_GUARDED_BY(mu);
  /// Restarted when the first task starts.
  Stopwatch wall AVM_GUARDED_BY(mu);
};

}  // namespace internal

using internal::QueryState;

namespace {

/// Run the query's cleanup hook exactly once (release tracker charges,
/// close/unlink spill files). Callers must not hold engine locks — the hook
/// is user code — and must run it before the handle reports completion,
/// while the ExecContext is still guaranteed alive.
void RunCleanup(QueryState& q) {
  if (q.cleanup_done.exchange(true, std::memory_order_acq_rel)) return;
  if (q.cleanup) q.cleanup();
}

}  // namespace

// ---------------------------------------------------------------- scheduler

/// Run-queue + admission-queue state. The run queue holds queries that
/// still have unclaimed tasks; workers rotate it (pop front, claim one
/// task, push back) so concurrent queries interleave morsel-by-morsel.
struct internal::Scheduler {
  std::mutex mu;
  std::condition_variable drained;
  std::deque<std::shared_ptr<QueryState>> run_queue AVM_GUARDED_BY(mu);
  std::deque<std::shared_ptr<QueryState>> admission AVM_GUARDED_BY(mu);
  /// Admitted, not yet finalized.
  size_t active AVM_GUARDED_BY(mu) = 0;
  /// Unclaimed tasks across the run queue.
  size_t outstanding AVM_GUARDED_BY(mu) = 0;
  /// Worker loops currently scheduled.
  size_t pumps AVM_GUARDED_BY(mu) = 0;
  uint64_t submitted AVM_GUARDED_BY(mu) = 0;
  uint64_t completed AVM_GUARDED_BY(mu) = 0;
  uint64_t cancelled AVM_GUARDED_BY(mu) = 0;
  // workers / max_active / pool are set in the Session constructor before
  // any worker exists and are immutable afterwards.
  size_t workers = 1;
  size_t max_active = 1;
  std::unique_ptr<ThreadPool> pool;
};

Session::Session(SessionOptions options)
    : options_(options), sched_(std::make_shared<internal::Scheduler>()) {
  size_t n = options_.num_workers;
  if (n == 0) n = std::max<size_t>(1, std::thread::hardware_concurrency());
  sched_->workers = n;
  sched_->max_active =
      options_.max_active_queries > 0 ? options_.max_active_queries : 2 * n;
  sched_->pool = std::make_unique<ThreadPool>(n);
  const uint64_t env_budget = MemoryTracker::EnvBudget();
  if (env_budget > 0) {
    env_tracker_ = std::make_shared<MemoryTracker>(env_budget);
  }
}

Session::~Session() {
  {
    std::unique_lock<std::mutex> lock(sched_->mu);
    sched_->drained.wait(lock, [&] {
      return sched_->active == 0 && sched_->admission.empty();
    });
  }
  // Joins the worker threads; every pump has exited (no work left).
  sched_->pool.reset();
}

size_t Session::num_workers() const { return sched_->workers; }

Session::Stats Session::stats() const {
  std::lock_guard<std::mutex> lock(sched_->mu);
  return Stats{sched_->submitted, sched_->completed, sched_->cancelled};
}

ThreadPool& Session::DevicePool() const {
  return options_.device_pool != nullptr ? *options_.device_pool
                                         : ThreadPool::Global();
}

// ----------------------------------------------------------- query handle

QueryHandle::QueryHandle() = default;
QueryHandle::~QueryHandle() = default;
QueryHandle::QueryHandle(const QueryHandle&) = default;
QueryHandle& QueryHandle::operator=(const QueryHandle&) = default;
QueryHandle::QueryHandle(QueryHandle&&) noexcept = default;
QueryHandle& QueryHandle::operator=(QueryHandle&&) noexcept = default;
QueryHandle::QueryHandle(std::shared_ptr<internal::QueryState> state)
    : state_(std::move(state)) {}

Result<ExecReport> QueryHandle::Wait() {
  if (state_ == nullptr) {
    return Status::InvalidArgument("Wait on an empty QueryHandle");
  }
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [&] { return state_->finished; });
  if (!state_->status.ok()) return state_->status;
  return state_->report;
}

std::optional<Result<ExecReport>> QueryHandle::TryGetReport() {
  if (state_ == nullptr) return std::nullopt;
  std::lock_guard<std::mutex> lock(state_->mu);
  if (!state_->finished) return std::nullopt;
  if (!state_->status.ok()) return {Result<ExecReport>(state_->status)};
  return {Result<ExecReport>(state_->report)};
}

bool QueryHandle::done() const {
  if (state_ == nullptr) return false;
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->finished;
}

void QueryHandle::Cancel() {
  if (state_ == nullptr) return;
  state_->cancel.store(true, std::memory_order_relaxed);
  // A query still parked in the admission queue would otherwise stay
  // pending until an active slot frees; pull it out and finalize now.
  std::shared_ptr<internal::Scheduler> sched = state_->sched.lock();
  if (sched == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(sched->mu);
    auto it =
        std::find(sched->admission.begin(), sched->admission.end(), state_);
    if (it == sched->admission.end()) return;
    sched->admission.erase(it);
    ++sched->completed;
    ++sched->cancelled;
  }
  // The cleanup hook is user code: run it after dropping the scheduler
  // lock, and before the handle reports completion (the context is still
  // guaranteed alive here).
  RunCleanup(*state_);
  {
    std::lock_guard<std::mutex> qlock(state_->mu);
    state_->status = Status::Cancelled("query cancelled");
    state_->report.strategy = state_->qo.strategy;
    state_->finished = true;
    state_->cv.notify_all();
  }
  std::lock_guard<std::mutex> lock(sched->mu);
  if (sched->active == 0 && sched->admission.empty()) {
    sched->drained.notify_all();
  }
}

// ------------------------------------------------------------------ submit

QueryHandle Session::Submit(ExecContext& ctx) {
  return Submit(ctx, options_.defaults);
}

QueryHandle Session::Submit(ExecContext& ctx, const QueryOptions& options) {
  auto q = std::make_shared<QueryState>();
  q->ctx = &ctx;
  q->qo = options;
  q->cleanup = ctx.cleanup_hook_;
  // Spill counters describe ONE submission; a context re-submitted after a
  // spilled run must not report the previous run's bytes.
  ctx.spill_stats_ = SpillStats{};
  Status st = Classify(*q);

  if (!st.ok()) {
    // Never admitted: complete the handle right away with the error. The
    // prepare hook may already have charged the tracker or opened a spill
    // file — release that before the handle reports completion.
    RunCleanup(*q);
    {
      std::lock_guard<std::mutex> lock(q->mu);
      q->status = st;
      q->finished = true;
      q->report.strategy = q->qo.strategy;
      q->cv.notify_all();
    }
    std::lock_guard<std::mutex> lock(sched_->mu);
    ++sched_->submitted;
    ++sched_->completed;
    return QueryHandle(q);
  }

  q->sched = sched_;
  std::lock_guard<std::mutex> lock(sched_->mu);
  ++sched_->submitted;
  if (sched_->active < sched_->max_active) {
    ++sched_->active;
    sched_->run_queue.push_back(q);
    sched_->outstanding += q->total_tasks;
    SpawnPumpsLocked();
  } else {
    sched_->admission.push_back(q);
  }
  return QueryHandle(q);
}

void Session::SpawnPumpsLocked() {
  // `pumps` counts loops that may all be BUSY running tasks: a new query
  // must get fresh pumps up to the worker cap or it would wait behind
  // unrelated long tasks while workers sit idle. Surplus pumps (the
  // existing ones were merely between claims) exit as soon as they find
  // the queue empty, so over-spawning is harmless.
  const size_t to_spawn =
      std::min(sched_->workers - std::min(sched_->workers, sched_->pumps),
               sched_->outstanding);
  for (size_t i = 0; i < to_spawn; ++i) {
    ++sched_->pumps;
    sched_->pool->Submit([this] { PumpLoop(); });
  }
}

Result<ExecReport> Session::Run(ExecContext& ctx) {
  return Submit(ctx).Wait();
}

Result<ExecReport> Session::Run(ExecContext& ctx,
                                const QueryOptions& options) {
  return Submit(ctx, options).Wait();
}

// ------------------------------------------------------------ worker loop

void Session::PumpLoop() {
  for (;;) {
    std::shared_ptr<QueryState> task_q;
    size_t task_index = 0;
    // Cancelled queries whose unclaimed tasks this claim dropped; their
    // accounting needs q->mu, which must not nest inside sched->mu.
    std::vector<std::pair<std::shared_ptr<QueryState>, size_t>> dropped;
    {
      std::lock_guard<std::mutex> lock(sched_->mu);
      while (!sched_->run_queue.empty()) {
        std::shared_ptr<QueryState> q = sched_->run_queue.front();
        sched_->run_queue.pop_front();
        const size_t remaining = q->total_tasks - q->issued;
        if (q->cancel.load(std::memory_order_relaxed)) {
          sched_->outstanding -= remaining;
          q->issued = q->total_tasks;
          dropped.emplace_back(std::move(q), remaining);
          continue;
        }
        task_index = q->issued++;
        --sched_->outstanding;
        // Round-robin fairness: a query with more work goes to the BACK, so
        // the next worker claims from the next in-flight query instead.
        if (q->issued < q->total_tasks) sched_->run_queue.push_back(q);
        task_q = std::move(q);
        break;
      }
      if (task_q == nullptr) --sched_->pumps;
    }
    for (auto& [q, n] : dropped) MarkSkipped(q, n);
    if (task_q == nullptr) return;
    RunTask(task_q, task_index);
  }
}

void Session::MarkSkipped(const std::shared_ptr<internal::QueryState>& q,
                          size_t n) {
  bool done = false;
  {
    std::lock_guard<std::mutex> lock(q->mu);
    q->skipped += n;
    if (q->completed + q->skipped == q->total_tasks && !q->finished) {
      if (q->status.ok()) q->status = Status::Cancelled("query cancelled");
      done = true;
    }
  }
  if (!done) return;
  // User-code cleanup hook: outside q->mu, before the handle completes.
  RunCleanup(*q);
  {
    std::lock_guard<std::mutex> lock(q->mu);
    FinalizeLocked(*q);
  }
  OnQueryDone(q);
}

void Session::RunTask(const std::shared_ptr<QueryState>& q, size_t index) {
  {
    std::lock_guard<std::mutex> lock(q->mu);
    if (!q->started) {
      q->started = true;
      q->wall.Restart();
    }
  }

  Status st;
  ExecReport serial_report;
  if (q->single_task) {
    st = q->gpu_task ? RunGpuTask(*q, &serial_report)
                     : RunSerialQuery(*q, &serial_report);
  } else {
    st = RunMorselTask(*q, q->morsels[index]);
  }

  bool last = false;
  {
    std::lock_guard<std::mutex> lock(q->mu);
    if (!st.ok() && q->status.ok()) {
      q->status = st;
      // Drop this query's unclaimed morsels at the next claim.
      if (!q->single_task) q->cancel.store(true, std::memory_order_relaxed);
    }
    if (st.ok() && q->single_task) q->report = std::move(serial_report);
    ++q->completed;
    last = q->completed + q->skipped == q->total_tasks;
  }
  if (!last) return;

  // The last finisher is unique, so the barrier hook runs outside q->mu
  // (it may be arbitrarily expensive: merging sorted output runs). It only
  // runs for a query whose every task merged — a cancel raised mid-run
  // (user request, or a sibling morsel's failure) means partial results,
  // which must surface as Cancelled, not be merged into an output.
  bool run_finalize = false;
  {
    std::lock_guard<std::mutex> lock(q->mu);
    if (q->status.ok() && q->cancel.load(std::memory_order_relaxed)) {
      q->status = Status::Cancelled("query cancelled");
    }
    run_finalize = q->status.ok() && q->ctx->finalize_hook_ != nullptr;
  }
  if (run_finalize) {
    Status fst = q->ctx->finalize_hook_();
    if (!fst.ok()) {
      std::lock_guard<std::mutex> lock(q->mu);
      if (q->status.ok()) q->status = fst;
    }
  }
  // Cleanup after the finalize hook (which still reads spilled runs) and
  // before FinalizeLocked (which only copies monotonic counters).
  RunCleanup(*q);
  {
    std::lock_guard<std::mutex> lock(q->mu);
    FinalizeLocked(*q);
  }
  OnQueryDone(q);
}

void Session::FinalizeLocked(QueryState& q) {
  ExecReport& r = q.report;
  r.strategy = q.qo.strategy;
  r.kernel_tier =
      interp::TierName(interp::ResolveKernelTier(q.qo.vm.interp.kernel_tier));
  if (!q.single_task) {
    r.workers = std::min(sched_->workers, q.morsels.size());
    r.morsels = q.morsels.size();
    r.rows = q.ctx->total_rows_;
  }
  r.ran_serial_reason = q.serial_reason;
  r.bytes_spilled = q.ctx->spill_stats_.bytes_spilled;
  r.spill_runs = q.ctx->spill_stats_.spill_runs;
  if (q.tracker != nullptr) r.peak_tracked_bytes = q.tracker->peak();
  if (q.started) r.wall_seconds = q.wall.ElapsedSeconds();
  if (q.calibrate_cpu && q.status.ok()) {
    std::lock_guard<std::mutex> lock(gpu_mu_);
    gpu_placer_->Observe(gpu::Device::kCpu, q.gpu_profile, r.wall_seconds);
  }
  // `finished` is set by OnQueryDone, after the session's counters update:
  // a client that returns from Wait() must see consistent stats().
}

void Session::OnQueryDone(const std::shared_ptr<QueryState>& q) {
  std::lock_guard<std::mutex> lock(sched_->mu);
  --sched_->active;
  ++sched_->completed;
  {
    std::lock_guard<std::mutex> qlock(q->mu);
    if (q->status.IsCancelled()) ++sched_->cancelled;
    q->finished = true;
    q->cv.notify_all();
  }
  while (!sched_->admission.empty() &&
         sched_->active < sched_->max_active) {
    std::shared_ptr<QueryState> next = sched_->admission.front();
    sched_->admission.pop_front();
    ++sched_->active;
    sched_->run_queue.push_back(next);
    sched_->outstanding += next->total_tasks;
  }
  SpawnPumpsLocked();
  if (sched_->active == 0 && sched_->admission.empty()) {
    sched_->drained.notify_all();
  }
}

// ------------------------------------------------------- classification

namespace {

/// Per-morsel view of a full-extent binding.
interp::DataBinding SliceBinding(const interp::DataBinding& full,
                                 uint64_t begin, uint64_t rows) {
  if (full.column != nullptr) {
    return interp::DataBinding::ColumnSlice(full.column,
                                            full.col_offset + begin, rows);
  }
  interp::DataBinding s = full;
  s.len = rows;
  if (s.raw != nullptr) {
    s.raw = static_cast<uint8_t*>(s.raw) + begin * TypeWidth(s.type);
  }
  return s;
}

Status ValidatePartitioned(const std::string& name,
                           const interp::DataBinding& b, uint64_t rows) {
  if (b.len < rows) {
    return Status::InvalidArgument(
        StrFormat("binding %s has %llu rows, context expects %llu",
                  name.c_str(), (unsigned long long)b.len,
                  (unsigned long long)rows));
  }
  return Status::OK();
}

void MergeVmReport(const vm::VmReport& in, ExecReport* out) {
  out->iterations += in.iterations;
  out->chunks_streamed += in.chunks_streamed;
  out->traces_compiled += in.traces_compiled;
  out->traces_reused += in.traces_reused;
  out->injection_runs += in.injection_runs;
  out->injection_fallbacks += in.injection_fallbacks;
  out->compile_seconds += in.compile_seconds;
  if (out->jit_declined.empty()) out->jit_declined = in.jit_declined;
  if (out->jit_tier.empty()) out->jit_tier = in.jit_tier;
  out->fast_compiles += in.fast_compiles;
  out->opt_compiles += in.opt_compiles;
  out->fast_compile_seconds += in.fast_compile_seconds;
  out->opt_compile_seconds += in.opt_compile_seconds;
  out->disk_cache_hits += in.disk_cache_hits;
  out->disk_cache_misses += in.disk_cache_misses;
  out->disk_cache_corrupt += in.disk_cache_corrupt;
  out->tier_upgrades_requested += in.tier_upgrades_requested;
  out->tier_upgrades += in.tier_upgrades;
  out->verifier_checked += in.verifier_checked;
  out->verifier_rejects += in.verifier_rejects;
  out->verifier_disagreements += in.verifier_disagreements;
  if (out->verifier_diagnostic.empty()) {
    out->verifier_diagnostic = in.verifier_diagnostic;
  }
}

/// Row-partitioning is only sound when every data access tracks the input
/// row position. Three shapes break that and force a serial run:
///  - condense: survivors land at data-dependent output positions, so a
///    row-sliced output would be silently wrong;
///  - scatter whose target is NOT a privatized accumulator: scatter indices
///    are absolute, a row-sliced output window would shift them;
///  - gather whose base is row-sliced (kInput/kOutput): the slice hides
///    rows the gather may address. Shared and accumulator bases see the
///    whole array and are fine.
/// Returns the blocking construct's name, or empty when partitionable.
std::string RowPartitionBlocker(const dsl::Program& program,
                                const std::map<std::string, BindRole>& roles) {
  auto role_of = [&](const std::string& name) -> const BindRole* {
    auto it = roles.find(name);
    return it == roles.end() ? nullptr : &it->second;
  };
  std::string blocker;
  dsl::VisitExprs(program, [&](const dsl::ExprPtr& e) {
    if (e->kind != dsl::ExprKind::kSkeleton || !blocker.empty()) return;
    switch (e->skeleton) {
      case dsl::SkeletonKind::kCondense:
        blocker = "condense";
        break;
      case dsl::SkeletonKind::kScatter: {
        const BindRole* r =
            e->args.empty() ? nullptr : role_of(e->args[0]->var);
        if (r != nullptr && *r != BindRole::kAccumulator) {
          blocker = "scatter to non-accumulator";
        }
        break;
      }
      case dsl::SkeletonKind::kGather: {
        const BindRole* r =
            e->args.empty() ? nullptr : role_of(e->args[0]->var);
        if (r != nullptr && *r != BindRole::kShared &&
            *r != BindRole::kAccumulator) {
          blocker = "gather from row-partitioned array";
        }
        break;
      }
      default:
        break;
    }
  });
  return blocker;
}

vm::VmOptions EffectiveVmOptions(const QueryOptions& qo) {
  vm::VmOptions vmo = qo.vm;
  if (qo.strategy == ExecutionStrategy::kInterpret) {
    vmo.enable_jit = false;
  }
  return vmo;
}

}  // namespace

Status Session::Classify(QueryState& q) {
  ExecContext& ctx = *q.ctx;
  if (ctx.fixed_program_ == nullptr && ctx.make_program_ == nullptr) {
    return Status::InvalidArgument("ExecContext has no program");
  }
  q.vmo = EffectiveVmOptions(q.qo);

  // Resolve the query's memory tracker: per-query budget, the session-wide
  // AVM_MEMORY_BUDGET tracker, or a private unlimited one (still tracks
  // peak for observability).
  if (q.qo.memory_budget > 0) {
    q.tracker = std::make_shared<MemoryTracker>(q.qo.memory_budget);
  } else if (env_tracker_ != nullptr) {
    q.tracker = env_tracker_;
  } else {
    q.tracker = std::make_shared<MemoryTracker>(0);
  }

  if (q.qo.strategy == ExecutionStrategy::kGpuOffload) {
    bool offload = false;
    Status st = ProbeGpuOffload(q, &offload);
    if (st.ok() && offload) {
      q.single_task = true;
      q.gpu_task = true;
      q.total_tasks = 1;
      return Status::OK();
    }
    if (!st.ok() && !st.IsNotFound()) return st;
    // Not offloadable (or the placer kept it on the CPU): run the normal
    // CPU path; when the placer made the call, calibrate it from the run.
  }
  return ClassifyCpu(q);
}

Status Session::ClassifyCpu(QueryState& q) {
  ExecContext& ctx = *q.ctx;
  const size_t workers = sched_->workers;
  const bool want_parallel = workers > 1;

  auto serial = [&](std::string reason) {
    q.single_task = true;
    q.total_tasks = 1;
    if (want_parallel) q.serial_reason = std::move(reason);
    return Status::OK();
  };

  // The memory-plan hook runs on EVERY submission path (serial included):
  // it is where budget-aware queries charge their persistent allocations
  // and (re)bind their output windows — in-memory or per-task scratch.
  uint64_t spill_cap = 0;
  if (ctx.prepare_hook_ != nullptr) {
    MemoryPlan plan;
    plan.tracker = q.tracker;
    plan.workers = std::max<size_t>(1, workers);
    plan.chunk_size = q.vmo.interp.chunk_size;
    PrepareOutcome outcome;
    AVM_RETURN_NOT_OK(ctx.prepare_hook_(plan, &outcome));
    spill_cap = outcome.max_morsel_rows;
  }
  const bool spill = spill_cap > 0;

  if (!ctx.parallelizable()) {
    if (spill) {
      return Status::InvalidArgument(
          "spill-mode query requires a per-morsel program factory");
    }
    return serial("fixed-program context (no per-morsel program factory)");
  }
  if (ctx.total_rows_ == 0) return serial("no input rows");
  // Spill mode forces morsel-wise execution even on one worker: each task
  // gets a budget-sized scratch window whose sorted run seals to disk.
  if (!want_parallel && !spill) return serial("");

  for (const ExecContext::Bound& b : ctx.bound_) {
    if (b.scratch) continue;  // engine-allocated per task; no extent yet
    if (b.role == BindRole::kInput || b.role == BindRole::kOutput ||
        b.role == BindRole::kPartialOutput) {
      AVM_RETURN_NOT_OK(ValidatePartitioned(b.name, b.binding,
                                            ctx.total_rows_ * b.row_scale));
    }
  }

  uint64_t morsel_rows = q.qo.morsel_rows;
  if (spill) {
    // spill_cap is already chunk-aligned (floored) by the hook, so
    // PartitionRows' round-UP to chunk alignment cannot exceed it.
    morsel_rows =
        morsel_rows == 0 ? spill_cap : std::min(morsel_rows, spill_cap);
  }
  q.morsels = PartitionRows(ctx.total_rows_, workers, morsel_rows,
                            q.vmo.interp.chunk_size);
  if (q.morsels.size() <= 1 && !spill) {
    q.morsels.clear();
    return serial("input fits a single morsel");
  }

  // Scale the JIT warmup to the morsel size: each morsel runs its own VM,
  // and a warmup longer than the morsel would silently downgrade the
  // adaptive strategy to pure interpretation.
  if (q.vmo.enable_jit && q.vmo.optimize_after_iterations > 0) {
    const uint64_t morsel_iters = std::max<uint64_t>(
        1, q.morsels[0].rows() / q.vmo.interp.chunk_size);
    q.vmo.optimize_after_iterations = std::max<uint64_t>(
        1, std::min(q.vmo.optimize_after_iterations, morsel_iters / 4));
  }

  // Build one type-checked program per distinct morsel size (at most two:
  // the steady size and the tail) and share it read-only across workers —
  // interpretation never mutates the program, and per-morsel program
  // construction would otherwise dominate small morsels.
  std::map<std::string, BindRole> roles;
  for (const ExecContext::Bound& b : ctx.bound_) {
    roles.emplace(b.name, b.role);
  }
  for (const Morsel& m : q.morsels) {
    if (q.programs.contains(m.rows())) continue;
    AVM_ASSIGN_OR_RETURN(dsl::Program program,
                         ctx.make_program_(static_cast<int64_t>(m.rows())));
    AVM_RETURN_NOT_OK(dsl::TypeCheck(&program));
    std::string blocker = RowPartitionBlocker(program, roles);
    if (!blocker.empty()) {
      q.morsels.clear();
      q.programs.clear();
      if (spill) {
        // A serial fallback would need the whole output window resident,
        // which is exactly what the budget disallowed.
        return Status::InvalidArgument(
            "memory budget requires a row-partitionable program, but: " +
            blocker);
      }
      return serial("program not row-partitionable: " + blocker);
    }
    q.programs.emplace(m.rows(), std::move(program));
  }
  q.total_tasks = q.morsels.size();
  return Status::OK();
}

// -------------------------------------------------------------- execution

Status Session::RunSerialQuery(QueryState& q, ExecReport* report) {
  ExecContext& ctx = *q.ctx;

  dsl::Program local;
  const dsl::Program* program = ctx.fixed_program_;
  if (ctx.make_program_ != nullptr) {
    // The engine chose the loop bound (total_rows_), so undersized
    // partitioned bindings would make the loop spin on empty reads forever
    // — reject them up front. (Fixed programs own their loop bound; the
    // engine cannot second-guess their binding lengths.)
    for (const ExecContext::Bound& b : ctx.bound_) {
      if (b.scratch) continue;  // never reached serially; no extent to check
      if (b.role == BindRole::kInput || b.role == BindRole::kOutput ||
          b.role == BindRole::kPartialOutput) {
        AVM_RETURN_NOT_OK(ValidatePartitioned(b.name, b.binding,
                                              ctx.total_rows_ * b.row_scale));
      }
    }
    if (q.gpu_program != nullptr) {
      // GPU classification already instantiated + type-checked the program
      // for the full row range; reuse it.
      program = q.gpu_program.get();
    } else {
      AVM_ASSIGN_OR_RETURN(
          local, ctx.make_program_(static_cast<int64_t>(ctx.total_rows_)));
      AVM_RETURN_NOT_OK(dsl::TypeCheck(&local));
      program = &local;
    }
  }

  vm::AdaptiveVm vmach(program, q.vmo, &cache_);
  for (const ExecContext::Bound& b : ctx.bound_) {
    AVM_RETURN_NOT_OK(vmach.interpreter().BindData(b.name, b.binding));
  }
  AVM_RETURN_NOT_OK(vmach.Run());
  if (ctx.inspector_) ctx.inspector_(vmach.interpreter());
  if (ctx.task_hook_) {
    AVM_RETURN_NOT_OK(
        ctx.task_hook_(vmach.interpreter(), Morsel{0, ctx.total_rows_, 0}));
  }

  report->workers = 1;
  report->morsels = 1;
  report->rows = ctx.total_rows_;
  vm::VmReport vr = vmach.Report();
  MergeVmReport(vr, report);
  report->state_timeline = std::move(vr.state_timeline);
  report->profile = std::move(vr.profile);
  return Status::OK();
}

Status Session::RunMorselTask(QueryState& q, const Morsel& m) {
  ExecContext& ctx = *q.ctx;
  const dsl::Program& program = q.programs.at(m.rows());
  vm::AdaptiveVm vmach(&program, q.vmo, &cache_);
  interp::Interpreter& in = vmach.interpreter();

  // Private accumulator copies, merged into the master at the barrier.
  std::vector<std::vector<uint8_t>> privates;
  privates.reserve(ctx.bound_.size());
  // Spill-mode scratch windows: allocated per task, sealed to disk by the
  // task hook, discarded here. Charged transiently — the overshoot is
  // bounded by workers x one morsel's scratch (see MemoryTracker).
  std::vector<std::vector<uint8_t>> scratch_windows;
  uint64_t transient_bytes = 0;
  for (const ExecContext::Bound& b : ctx.bound_) {
    switch (b.role) {
      case BindRole::kInput:
      case BindRole::kOutput:
        AVM_RETURN_NOT_OK(
            in.BindData(b.name, SliceBinding(b.binding, m.begin, m.rows())));
        // Column-backed inputs stream block-at-a-time through a decode
        // cache the interpreter owns; account one block of scratch.
        if (b.binding.column != nullptr) {
          transient_bytes += static_cast<uint64_t>(
                                 b.binding.column->block_size()) *
                             TypeWidth(b.binding.type);
        }
        break;
      case BindRole::kPartialOutput:
        if (b.scratch) {
          const uint64_t wrows = m.rows() * b.row_scale;
          const size_t bytes =
              static_cast<size_t>(wrows) * TypeWidth(b.binding.type);
          scratch_windows.emplace_back(bytes);
          transient_bytes += bytes;
          AVM_RETURN_NOT_OK(in.BindData(
              b.name,
              interp::DataBinding::Raw(b.binding.type,
                                       scratch_windows.back().data(), wrows,
                                       true)));
        } else {
          // Windows scale with the query's fan-out factor: this morsel
          // owns [begin*scale, end*scale) of the full window.
          AVM_RETURN_NOT_OK(in.BindData(
              b.name, SliceBinding(b.binding, m.begin * b.row_scale,
                                   m.rows() * b.row_scale)));
        }
        break;
      case BindRole::kShared:
        AVM_RETURN_NOT_OK(in.BindData(b.name, b.binding));
        break;
      case BindRole::kAccumulator: {
        privates.emplace_back(b.binding.len * TypeWidth(b.binding.type), 0);
        transient_bytes += privates.back().size();
        AVM_RETURN_NOT_OK(in.BindData(
            b.name, interp::DataBinding::Raw(b.binding.type,
                                             privates.back().data(),
                                             b.binding.len, true)));
        break;
      }
    }
  }

  ScopedTransientCharge task_charge(q.tracker.get(), transient_bytes);
  AVM_RETURN_NOT_OK(vmach.Run());

  std::lock_guard<std::mutex> merge_lock(q.merge_mu);
  // A cancelled (or failed) query's results are discarded wholesale; do not
  // merge this morsel's partials into the caller-visible arrays.
  if (q.cancel.load(std::memory_order_relaxed)) return Status::OK();
  if (ctx.inspector_) ctx.inspector_(in);
  if (ctx.task_hook_) AVM_RETURN_NOT_OK(ctx.task_hook_(in, m));
  size_t pi = 0;
  for (const ExecContext::Bound& b : ctx.bound_) {
    if (b.role != BindRole::kAccumulator) continue;
    const MergeFn& merge = b.merge ? b.merge : SumMerge;
    merge(b.binding.type, b.binding.raw, privates[pi].data(), b.binding.len);
    ++pi;
  }
  vm::VmReport vr = vmach.Report();
  std::lock_guard<std::mutex> lock(q.mu);  // merge_mu -> mu, nowhere reversed
  MergeVmReport(vr, &q.report);
  if (m.index == 0) {
    q.report.state_timeline = std::move(vr.state_timeline);
    q.report.profile = std::move(vr.profile);
  }
  return Status::OK();
}

// ------------------------------------------------------- GPU offload path

namespace {

/// An offloadable fragment: a single map pipeline `out[i] = f(src[i])`.
struct MapFragment {
  std::string src;
  std::string out;
  const dsl::Expr* lambda = nullptr;
};

/// Recognize MakeMapPipeline-shaped programs: exactly one read, one
/// single-input map, one write, and no other data-parallel skeletons.
Result<MapFragment> DetectMapFragment(const dsl::Program& program) {
  MapFragment frag;
  int reads = 0, maps = 0, writes = 0, others = 0;
  dsl::VisitExprs(program, [&](const dsl::ExprPtr& e) {
    if (e->kind != dsl::ExprKind::kSkeleton) return;
    switch (e->skeleton) {
      case dsl::SkeletonKind::kRead:
        ++reads;
        if (e->args.size() == 2) frag.src = e->args[1]->var;
        break;
      case dsl::SkeletonKind::kMap:
        ++maps;
        if (e->args.size() == 2 &&
            e->args[0]->kind == dsl::ExprKind::kLambda) {
          frag.lambda = e->args[0].get();
        }
        break;
      case dsl::SkeletonKind::kWrite:
        ++writes;
        if (!e->args.empty()) frag.out = e->args[0]->var;
        break;
      case dsl::SkeletonKind::kLen:
        break;
      default:
        ++others;
    }
  });
  if (reads != 1 || maps != 1 || writes != 1 || others != 0 ||
      frag.lambda == nullptr || frag.src.empty() || frag.out.empty()) {
    return Status::NotFound("program is not an offloadable map fragment");
  }
  return frag;
}

}  // namespace

Status Session::ProbeGpuOffload(QueryState& q, bool* offload) {
  *offload = false;
  ExecContext& ctx = *q.ctx;

  // Materializing queries depend on the per-task hook (output counts,
  // partial sorts) and per-morsel windows, which the device path does not
  // drive — a GPU run would report success with empty results. Shape
  // detection alone cannot see this (a row query can look exactly like a
  // map fragment), so check the context first.
  if (ctx.task_hook_ != nullptr) {
    return Status::NotFound("query has a per-task hook: not offloadable");
  }
  if (ctx.prepare_hook_ != nullptr) {
    // Budget-aware queries charge/bind through the CPU prepare protocol,
    // which the device path does not drive.
    return Status::NotFound("query has a memory-plan hook: not offloadable");
  }
  for (const ExecContext::Bound& b : ctx.bound_) {
    if (b.role == BindRole::kPartialOutput) {
      return Status::NotFound(
          "query has per-morsel output windows: not offloadable");
    }
  }

  // Instantiate a program to inspect its shape.
  auto owned = std::make_shared<dsl::Program>();
  const dsl::Program* program = ctx.fixed_program_;
  if (ctx.make_program_ != nullptr) {
    AVM_ASSIGN_OR_RETURN(
        *owned, ctx.make_program_(static_cast<int64_t>(ctx.total_rows_)));
    AVM_RETURN_NOT_OK(dsl::TypeCheck(owned.get()));
    program = owned.get();
  }
  AVM_ASSIGN_OR_RETURN(MapFragment frag, DetectMapFragment(*program));

  const ExecContext::Bound* src = nullptr;
  const ExecContext::Bound* out = nullptr;
  for (const ExecContext::Bound& b : ctx.bound_) {
    if (b.name == frag.src) src = &b;
    if (b.name == frag.out) out = &b;
  }
  if (src == nullptr || out == nullptr || out->binding.raw == nullptr) {
    return Status::NotFound("map fragment inputs/outputs not offloadable");
  }
  const uint64_t rows =
      ctx.total_rows_ > 0 ? ctx.total_rows_ : src->binding.len;
  if (rows == 0 || rows > UINT32_MAX || out->binding.len < rows ||
      src->binding.len < rows) {
    return Status::NotFound("row count not offloadable");
  }

  AVM_ASSIGN_OR_RETURN(ir::PrimProgram prim,
                       ir::Normalize(*frag.lambda, {src->binding.type}));
  for (const ir::PrimInstr& instr : prim.instrs) {
    for (int a = 0; a < instr.num_args; ++a) {
      if (instr.args[a].kind == ir::ArgKind::kCapture) {
        return Status::NotFound("lambda captures scalars: not offloadable");
      }
    }
  }
  if (prim.result_type != out->binding.type) {
    return Status::NotFound("map result type mismatch: not offloadable");
  }

  gpu::FragmentProfile profile;
  profile.rows = rows;
  profile.bytes_in = rows * TypeWidth(src->binding.type);
  profile.bytes_out = rows * TypeWidth(out->binding.type);
  profile.ops_per_row =
      std::max<double>(1, static_cast<double>(prim.NumInstrs()));

  std::lock_guard<std::mutex> lock(gpu_mu_);
  if (gpu_device_ == nullptr) {
    gpu_device_ = std::make_unique<gpu::SimGpuDevice>(gpu::GpuDeviceParams{},
                                                      &DevicePool());
    gpu_backend_ = std::make_unique<gpu::GpuBackend>(gpu_device_.get());
    gpu_placer_ =
        std::make_unique<gpu::AdaptivePlacer>(gpu_device_->params());
  }
  q.gpu_profile = profile;
  gpu::PlacementDecision decision = gpu_placer_->Decide(profile);
  if (decision.device == gpu::Device::kCpu) {
    // The placer keeps the fragment on the CPU: the query runs the normal
    // CPU path (serial or morsel-parallel), and its measured wall time
    // calibrates the placer at finalization. Keep the instantiated program
    // so a serial CPU run does not lower + typecheck the query twice.
    q.calibrate_cpu = true;
    q.gpu_program = std::move(owned);
    return Status::OK();
  }

  q.gpu_program = std::move(owned);
  q.gpu_prim = std::move(prim);
  q.gpu_src = src->binding;
  q.gpu_out = out->binding;
  q.gpu_rows = rows;
  *offload = true;
  return Status::OK();
}

Status Session::RunGpuTask(QueryState& q, ExecReport* report) {
  const uint64_t rows = q.gpu_rows;
  const size_t in_width = TypeWidth(q.gpu_src.type);
  const size_t out_width = TypeWidth(q.gpu_out.type);

  // One simulated device: device-side execution is serialized across
  // concurrent queries (transfers and launches share the PCIe/SM model).
  // This lock is NOT gpu_mu_ — holding the placer/init mutex for a whole
  // device run would stall concurrent Submits that only need a placement
  // decision.
  std::lock_guard<std::mutex> gpu_lock(gpu_device_mu_);

  // Materialize the input (a compiled scan would do this inline on device).
  std::vector<uint8_t> decoded;
  const void* host_in = q.gpu_src.raw;
  if (host_in == nullptr) {
    decoded.resize(rows * in_width);
    AVM_RETURN_NOT_OK(
        q.gpu_src.column->Read(q.gpu_src.col_offset, rows, decoded.data()));
    host_in = decoded.data();
  }

  const double sim_before = gpu_device_->clock_seconds();
  AVM_ASSIGN_OR_RETURN(gpu::SimGpuDevice::BufferId in_buf,
                       gpu_backend_->EnsureResident(host_in, rows * in_width));
  Result<gpu::SimGpuDevice::BufferId> out_buf =
      gpu_backend_->RunMap(q.gpu_prim, {in_buf}, {q.gpu_src.type},
                           static_cast<uint32_t>(rows));
  Status run_st = out_buf.ok() ? Status::OK() : out_buf.status();
  if (run_st.ok()) {
    run_st = gpu_device_->CopyToHost(q.gpu_out.raw, out_buf.value(),
                                     rows * out_width);
  }
  // Release device buffers on every path — a long-lived engine must not
  // leak residency when a launch or copy fails.
  if (out_buf.ok()) (void)gpu_device_->Free(out_buf.value());
  (void)gpu_backend_->Evict(host_in);
  AVM_RETURN_NOT_OK(run_st);
  const double sim_seconds = gpu_device_->clock_seconds() - sim_before;
  {
    std::lock_guard<std::mutex> placer_lock(gpu_mu_);
    gpu_placer_->Observe(gpu::Device::kGpu, q.gpu_profile, sim_seconds);
  }

  report->device = "gpu-sim";
  report->workers = 1;
  report->morsels = 1;
  report->rows = rows;
  report->gpu_sim_seconds = sim_seconds;
  return Status::OK();
}

}  // namespace avm::engine
