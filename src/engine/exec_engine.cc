#include "engine/exec_engine.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <mutex>

#include "dsl/typecheck.h"
#include "gpu/gpu_backend.h"
#include "gpu/placement.h"
#include "gpu/sim_device.h"
#include "ir/prim.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace avm::engine {

const char* StrategyName(ExecutionStrategy s) {
  switch (s) {
    case ExecutionStrategy::kInterpret: return "interpret";
    case ExecutionStrategy::kAdaptiveJit: return "adaptive-jit";
    case ExecutionStrategy::kGpuOffload: return "gpu-offload";
  }
  return "?";
}

std::string ExecReport::ToString() const {
  std::string out = StrFormat(
      "strategy=%s device=%s workers=%zu morsels=%zu rows=%llu "
      "wall=%.2fms\n",
      StrategyName(strategy), device.c_str(), workers, morsels,
      (unsigned long long)rows, wall_seconds * 1e3);
  out += StrFormat(
      "iterations=%llu traces: compiled=%llu reused=%llu "
      "injected_runs=%llu fallbacks=%llu compile=%.1fms",
      (unsigned long long)iterations, (unsigned long long)traces_compiled,
      (unsigned long long)traces_reused, (unsigned long long)injection_runs,
      (unsigned long long)injection_fallbacks, compile_seconds * 1e3);
  if (gpu_sim_seconds > 0) {
    out += StrFormat(" gpu_sim=%.2fms", gpu_sim_seconds * 1e3);
  }
  return out;
}

void SumMerge(TypeId type, void* master, const void* partial, uint64_t len) {
  switch (type) {
    case TypeId::kBool:
    case TypeId::kI8:
      for (uint64_t i = 0; i < len; ++i) {
        static_cast<int8_t*>(master)[i] +=
            static_cast<const int8_t*>(partial)[i];
      }
      break;
    case TypeId::kI16:
      for (uint64_t i = 0; i < len; ++i) {
        static_cast<int16_t*>(master)[i] +=
            static_cast<const int16_t*>(partial)[i];
      }
      break;
    case TypeId::kI32:
      for (uint64_t i = 0; i < len; ++i) {
        static_cast<int32_t*>(master)[i] +=
            static_cast<const int32_t*>(partial)[i];
      }
      break;
    case TypeId::kI64:
      for (uint64_t i = 0; i < len; ++i) {
        static_cast<int64_t*>(master)[i] +=
            static_cast<const int64_t*>(partial)[i];
      }
      break;
    case TypeId::kF32:
      for (uint64_t i = 0; i < len; ++i) {
        static_cast<float*>(master)[i] +=
            static_cast<const float*>(partial)[i];
      }
      break;
    case TypeId::kF64:
      for (uint64_t i = 0; i < len; ++i) {
        static_cast<double*>(master)[i] +=
            static_cast<const double*>(partial)[i];
      }
      break;
  }
}

// ------------------------------------------------------------- ExecContext

ExecContext::ExecContext(ProgramFactory make_program, uint64_t total_rows)
    : make_program_(std::move(make_program)), total_rows_(total_rows) {}

ExecContext::ExecContext(const dsl::Program* program)
    : fixed_program_(program) {}

ExecContext& ExecContext::BindInput(const std::string& name,
                                    interp::DataBinding b) {
  if (total_rows_ == 0) total_rows_ = b.len;
  bound_.push_back({name, BindRole::kInput, b, nullptr});
  return *this;
}

ExecContext& ExecContext::BindInputColumn(const std::string& name,
                                          const Column* col) {
  return BindInput(name, interp::DataBinding::FromColumn(col));
}

ExecContext& ExecContext::BindShared(const std::string& name,
                                     interp::DataBinding b) {
  bound_.push_back({name, BindRole::kShared, b, nullptr});
  return *this;
}

ExecContext& ExecContext::BindOutput(const std::string& name,
                                     interp::DataBinding b) {
  b.writable = true;
  bound_.push_back({name, BindRole::kOutput, b, nullptr});
  return *this;
}

ExecContext& ExecContext::BindAccumulator(const std::string& name, TypeId type,
                                          void* data, uint64_t len,
                                          MergeFn merge) {
  bound_.push_back({name, BindRole::kAccumulator,
                    interp::DataBinding::Raw(type, data, len, true),
                    std::move(merge)});
  return *this;
}

// -------------------------------------------------------------- ExecEngine

ExecEngine::ExecEngine(EngineOptions options) : options_(std::move(options)) {}
ExecEngine::~ExecEngine() = default;

Result<ExecReport> ExecEngine::Execute(ExecContext& ctx,
                                       EngineOptions options) {
  ExecEngine engine(std::move(options));
  return engine.Run(ctx);
}

vm::VmOptions ExecEngine::EffectiveVmOptions() const {
  vm::VmOptions vmo = options_.vm;
  if (options_.strategy == ExecutionStrategy::kInterpret) {
    vmo.enable_jit = false;
  }
  return vmo;
}

size_t ExecEngine::EffectiveWorkers() const {
  if (options_.num_workers > 0) return options_.num_workers;
  return std::max<size_t>(1, Pool().num_threads());
}

ThreadPool& ExecEngine::Pool() const {
  return options_.pool != nullptr ? *options_.pool : ThreadPool::Global();
}

namespace {

/// Per-morsel view of a full-extent binding.
interp::DataBinding SliceBinding(const interp::DataBinding& full,
                                 uint64_t begin, uint64_t rows) {
  if (full.column != nullptr) {
    return interp::DataBinding::ColumnSlice(full.column,
                                            full.col_offset + begin, rows);
  }
  interp::DataBinding s = full;
  s.len = rows;
  if (s.raw != nullptr) {
    s.raw = static_cast<uint8_t*>(s.raw) + begin * TypeWidth(s.type);
  }
  return s;
}

Status ValidatePartitioned(const std::string& name,
                           const interp::DataBinding& b, uint64_t rows) {
  if (b.len < rows) {
    return Status::InvalidArgument(
        StrFormat("binding %s has %llu rows, context expects %llu",
                  name.c_str(), (unsigned long long)b.len,
                  (unsigned long long)rows));
  }
  return Status::OK();
}

void MergeVmReport(const vm::VmReport& in, ExecReport* out) {
  out->iterations += in.iterations;
  out->traces_compiled += in.traces_compiled;
  out->traces_reused += in.traces_reused;
  out->injection_runs += in.injection_runs;
  out->injection_fallbacks += in.injection_fallbacks;
  out->compile_seconds += in.compile_seconds;
}

}  // namespace

Result<ExecReport> ExecEngine::Run(ExecContext& ctx) {
  if (ctx.fixed_program_ == nullptr && ctx.make_program_ == nullptr) {
    return Status::InvalidArgument("ExecContext has no program");
  }
  if (options_.strategy == ExecutionStrategy::kGpuOffload) {
    Result<ExecReport> r = RunGpuOffload(ctx);
    // NotFound = fragment not offloadable; run it on the CPU path instead.
    if (r.ok() || !r.status().IsNotFound()) return r;
  }
  if (EffectiveWorkers() > 1 && ctx.parallelizable() && ctx.total_rows_ > 0) {
    return RunParallel(ctx);
  }
  return RunSerial(ctx);
}

Result<ExecReport> ExecEngine::RunSerial(ExecContext& ctx,
                                         const dsl::Program* prebuilt) {
  Stopwatch sw;
  const vm::VmOptions vmo = EffectiveVmOptions();

  dsl::Program local;
  const dsl::Program* program = ctx.fixed_program_;
  if (prebuilt != nullptr) {
    program = prebuilt;
  } else if (ctx.make_program_ != nullptr) {
    // The engine chose the loop bound (total_rows_), so undersized
    // partitioned bindings would make the loop spin on empty reads forever
    // — reject them up front. (Fixed programs own their loop bound; the
    // engine cannot second-guess their binding lengths.)
    for (const ExecContext::Bound& b : ctx.bound_) {
      if (b.role == BindRole::kInput || b.role == BindRole::kOutput) {
        AVM_RETURN_NOT_OK(
            ValidatePartitioned(b.name, b.binding, ctx.total_rows_));
      }
    }
    AVM_ASSIGN_OR_RETURN(
        local, ctx.make_program_(static_cast<int64_t>(ctx.total_rows_)));
    AVM_RETURN_NOT_OK(dsl::TypeCheck(&local));
    program = &local;
  }

  vm::AdaptiveVm vmach(program, vmo, &cache_);
  for (const ExecContext::Bound& b : ctx.bound_) {
    AVM_RETURN_NOT_OK(vmach.interpreter().BindData(b.name, b.binding));
  }
  AVM_RETURN_NOT_OK(vmach.Run());
  if (ctx.inspector_) ctx.inspector_(vmach.interpreter());

  ExecReport report;
  report.strategy = options_.strategy;
  report.workers = 1;
  report.morsels = 1;
  report.rows = ctx.total_rows_;
  vm::VmReport vr = vmach.Report();
  MergeVmReport(vr, &report);
  report.state_timeline = std::move(vr.state_timeline);
  report.profile = std::move(vr.profile);
  report.wall_seconds = sw.ElapsedSeconds();
  return report;
}

namespace {

/// Row-partitioning is only sound when every data access tracks the input
/// row position. Three shapes break that and force a serial run:
///  - condense: survivors land at data-dependent output positions, so a
///    row-sliced output would be silently wrong;
///  - scatter whose target is NOT a privatized accumulator: scatter indices
///    are absolute, a row-sliced output window would shift them;
///  - gather whose base is row-sliced (kInput/kOutput): the slice hides
///    rows the gather may address. Shared and accumulator bases see the
///    whole array and are fine.
bool ProgramIsRowPartitionable(const dsl::Program& program,
                               const std::map<std::string, BindRole>& roles) {
  auto role_of = [&](const std::string& name) -> const BindRole* {
    auto it = roles.find(name);
    return it == roles.end() ? nullptr : &it->second;
  };
  bool ok = true;
  dsl::VisitExprs(program, [&](const dsl::ExprPtr& e) {
    if (e->kind != dsl::ExprKind::kSkeleton) return;
    switch (e->skeleton) {
      case dsl::SkeletonKind::kCondense:
        ok = false;
        break;
      case dsl::SkeletonKind::kScatter: {
        const BindRole* r =
            e->args.empty() ? nullptr : role_of(e->args[0]->var);
        if (r != nullptr && *r != BindRole::kAccumulator) ok = false;
        break;
      }
      case dsl::SkeletonKind::kGather: {
        const BindRole* r =
            e->args.empty() ? nullptr : role_of(e->args[0]->var);
        if (r != nullptr && *r != BindRole::kShared &&
            *r != BindRole::kAccumulator) {
          ok = false;
        }
        break;
      }
      default:
        break;
    }
  });
  return ok;
}

}  // namespace

Result<ExecReport> ExecEngine::RunParallel(ExecContext& ctx) {
  Stopwatch sw;
  vm::VmOptions vmo = EffectiveVmOptions();
  const size_t workers = EffectiveWorkers();
  const uint64_t rows = ctx.total_rows_;

  for (const ExecContext::Bound& b : ctx.bound_) {
    if (b.role == BindRole::kInput || b.role == BindRole::kOutput) {
      AVM_RETURN_NOT_OK(ValidatePartitioned(b.name, b.binding, rows));
    }
  }

  std::vector<Morsel> morsels = PartitionRows(
      rows, workers, options_.morsel_rows, vmo.interp.chunk_size);
  if (morsels.size() <= 1) return RunSerial(ctx);

  // Scale the JIT warmup to the morsel size: each morsel runs its own VM,
  // and a warmup longer than the morsel would silently downgrade the
  // adaptive strategy to pure interpretation.
  if (vmo.enable_jit && vmo.optimize_after_iterations > 0) {
    const uint64_t morsel_iters =
        std::max<uint64_t>(1, morsels[0].rows() / vmo.interp.chunk_size);
    vmo.optimize_after_iterations = std::max<uint64_t>(
        1, std::min(vmo.optimize_after_iterations, morsel_iters / 4));
  }

  // Build one type-checked program per distinct morsel size (at most two:
  // the steady size and the tail) and share it read-only across workers —
  // interpretation never mutates the program, and per-morsel program
  // construction would otherwise dominate small morsels.
  std::map<std::string, BindRole> roles;
  for (const ExecContext::Bound& b : ctx.bound_) {
    roles.emplace(b.name, b.role);
  }
  std::map<uint64_t, dsl::Program> programs;
  for (const Morsel& m : morsels) {
    if (programs.contains(m.rows())) continue;
    AVM_ASSIGN_OR_RETURN(dsl::Program program,
                         ctx.make_program_(static_cast<int64_t>(m.rows())));
    AVM_RETURN_NOT_OK(dsl::TypeCheck(&program));
    if (!ProgramIsRowPartitionable(program, roles)) return RunSerial(ctx);
    programs.emplace(m.rows(), std::move(program));
  }

  ExecReport report;
  report.strategy = options_.strategy;
  report.workers = std::min(workers, morsels.size());
  report.morsels = morsels.size();
  report.rows = rows;
  std::mutex merge_mu;

  auto run_morsel = [&](const Morsel& m) -> Status {
    const dsl::Program& program = programs.at(m.rows());
    vm::AdaptiveVm vmach(&program, vmo, &cache_);
    interp::Interpreter& in = vmach.interpreter();

    // Private accumulator copies, merged into the master at the barrier.
    std::vector<std::vector<uint8_t>> privates;
    privates.reserve(ctx.bound_.size());
    for (const ExecContext::Bound& b : ctx.bound_) {
      switch (b.role) {
        case BindRole::kInput:
        case BindRole::kOutput:
          AVM_RETURN_NOT_OK(
              in.BindData(b.name, SliceBinding(b.binding, m.begin, m.rows())));
          break;
        case BindRole::kShared:
          AVM_RETURN_NOT_OK(in.BindData(b.name, b.binding));
          break;
        case BindRole::kAccumulator: {
          privates.emplace_back(b.binding.len * TypeWidth(b.binding.type), 0);
          AVM_RETURN_NOT_OK(in.BindData(
              b.name, interp::DataBinding::Raw(b.binding.type,
                                               privates.back().data(),
                                               b.binding.len, true)));
          break;
        }
      }
    }

    AVM_RETURN_NOT_OK(vmach.Run());

    std::lock_guard<std::mutex> lock(merge_mu);
    if (ctx.inspector_) ctx.inspector_(in);
    size_t pi = 0;
    for (const ExecContext::Bound& b : ctx.bound_) {
      if (b.role != BindRole::kAccumulator) continue;
      const MergeFn& merge = b.merge ? b.merge : SumMerge;
      merge(b.binding.type, b.binding.raw, privates[pi].data(), b.binding.len);
      ++pi;
    }
    vm::VmReport vr = vmach.Report();
    MergeVmReport(vr, &report);
    if (m.index == 0) {
      report.state_timeline = std::move(vr.state_timeline);
      report.profile = std::move(vr.profile);
    }
    return Status::OK();
  };

  AVM_RETURN_NOT_OK(RunMorsels(Pool(), workers, morsels, run_morsel));
  report.wall_seconds = sw.ElapsedSeconds();
  return report;
}

// ------------------------------------------------------- GPU offload path

namespace {

/// An offloadable fragment: a single map pipeline `out[i] = f(src[i])`.
struct MapFragment {
  std::string src;
  std::string out;
  const dsl::Expr* lambda = nullptr;
};

/// Recognize MakeMapPipeline-shaped programs: exactly one read, one
/// single-input map, one write, and no other data-parallel skeletons.
Result<MapFragment> DetectMapFragment(const dsl::Program& program) {
  MapFragment frag;
  int reads = 0, maps = 0, writes = 0, others = 0;
  dsl::VisitExprs(program, [&](const dsl::ExprPtr& e) {
    if (e->kind != dsl::ExprKind::kSkeleton) return;
    switch (e->skeleton) {
      case dsl::SkeletonKind::kRead:
        ++reads;
        if (e->args.size() == 2) frag.src = e->args[1]->var;
        break;
      case dsl::SkeletonKind::kMap:
        ++maps;
        if (e->args.size() == 2 &&
            e->args[0]->kind == dsl::ExprKind::kLambda) {
          frag.lambda = e->args[0].get();
        }
        break;
      case dsl::SkeletonKind::kWrite:
        ++writes;
        if (!e->args.empty()) frag.out = e->args[0]->var;
        break;
      case dsl::SkeletonKind::kLen:
        break;
      default:
        ++others;
    }
  });
  if (reads != 1 || maps != 1 || writes != 1 || others != 0 ||
      frag.lambda == nullptr || frag.src.empty() || frag.out.empty()) {
    return Status::NotFound("program is not an offloadable map fragment");
  }
  return frag;
}

}  // namespace

Result<ExecReport> ExecEngine::RunGpuOffload(ExecContext& ctx) {
  // Instantiate a program to inspect its shape.
  dsl::Program local;
  const dsl::Program* program = ctx.fixed_program_;
  if (ctx.make_program_ != nullptr) {
    AVM_ASSIGN_OR_RETURN(
        local, ctx.make_program_(static_cast<int64_t>(ctx.total_rows_)));
    AVM_RETURN_NOT_OK(dsl::TypeCheck(&local));
    program = &local;
  }
  AVM_ASSIGN_OR_RETURN(MapFragment frag, DetectMapFragment(*program));

  const ExecContext::Bound* src = nullptr;
  const ExecContext::Bound* out = nullptr;
  for (const ExecContext::Bound& b : ctx.bound_) {
    if (b.name == frag.src) src = &b;
    if (b.name == frag.out) out = &b;
  }
  if (src == nullptr || out == nullptr || out->binding.raw == nullptr) {
    return Status::NotFound("map fragment inputs/outputs not offloadable");
  }
  const uint64_t rows = ctx.total_rows_ > 0 ? ctx.total_rows_ : src->binding.len;
  if (rows == 0 || rows > UINT32_MAX || out->binding.len < rows ||
      src->binding.len < rows) {
    return Status::NotFound("row count not offloadable");
  }

  AVM_ASSIGN_OR_RETURN(
      ir::PrimProgram prim,
      ir::Normalize(*frag.lambda, {src->binding.type}));
  for (const ir::PrimInstr& instr : prim.instrs) {
    for (int a = 0; a < instr.num_args; ++a) {
      if (instr.args[a].kind == ir::ArgKind::kCapture) {
        return Status::NotFound("lambda captures scalars: not offloadable");
      }
    }
  }
  if (prim.result_type != out->binding.type) {
    return Status::NotFound("map result type mismatch: not offloadable");
  }

  if (gpu_device_ == nullptr) {
    gpu_device_ = std::make_unique<gpu::SimGpuDevice>(gpu::GpuDeviceParams{},
                                                      &Pool());
    gpu_backend_ = std::make_unique<gpu::GpuBackend>(gpu_device_.get());
    gpu_placer_ = std::make_unique<gpu::AdaptivePlacer>(gpu_device_->params());
  }

  const size_t in_width = TypeWidth(src->binding.type);
  const size_t out_width = TypeWidth(out->binding.type);
  gpu::FragmentProfile profile;
  profile.rows = rows;
  profile.bytes_in = rows * in_width;
  profile.bytes_out = rows * out_width;
  profile.ops_per_row = std::max<double>(1, static_cast<double>(prim.NumInstrs()));

  gpu::PlacementDecision decision = gpu_placer_->Decide(profile);
  if (decision.device == gpu::Device::kCpu) {
    // The placer keeps the fragment on the CPU: run it through the normal
    // CPU path, but calibrate the placer from the run. The serial path
    // reuses the program already built for fragment detection; the parallel
    // path needs per-morsel instances anyway.
    Result<ExecReport> r = (EffectiveWorkers() > 1 && ctx.parallelizable())
                               ? RunParallel(ctx)
                               : RunSerial(ctx, program);
    if (r.ok()) {
      gpu_placer_->Observe(gpu::Device::kCpu, profile, r.value().wall_seconds);
      ExecReport report = r.value();
      report.strategy = ExecutionStrategy::kGpuOffload;
      report.device = "cpu";
      return report;
    }
    return r;
  }

  Stopwatch sw;
  // Materialize the input (a compiled scan would do this inline on device).
  std::vector<uint8_t> decoded;
  const void* host_in = src->binding.raw;
  if (host_in == nullptr) {
    decoded.resize(rows * in_width);
    AVM_RETURN_NOT_OK(src->binding.column->Read(src->binding.col_offset, rows,
                                                decoded.data()));
    host_in = decoded.data();
  }

  const double sim_before = gpu_device_->clock_seconds();
  AVM_ASSIGN_OR_RETURN(gpu::SimGpuDevice::BufferId in_buf,
                       gpu_backend_->EnsureResident(host_in, rows * in_width));
  Result<gpu::SimGpuDevice::BufferId> out_buf =
      gpu_backend_->RunMap(prim, {in_buf}, {src->binding.type},
                           static_cast<uint32_t>(rows));
  Status run_st = out_buf.ok() ? Status::OK() : out_buf.status();
  if (run_st.ok()) {
    run_st = gpu_device_->CopyToHost(out->binding.raw, out_buf.value(),
                                     rows * out_width);
  }
  // Release device buffers on every path — a long-lived engine must not
  // leak residency when a launch or copy fails.
  if (out_buf.ok()) (void)gpu_device_->Free(out_buf.value());
  (void)gpu_backend_->Evict(host_in);
  AVM_RETURN_NOT_OK(run_st);
  const double sim_seconds = gpu_device_->clock_seconds() - sim_before;
  gpu_placer_->Observe(gpu::Device::kGpu, profile, sim_seconds);

  ExecReport report;
  report.strategy = ExecutionStrategy::kGpuOffload;
  report.device = "gpu-sim";
  report.workers = 1;
  report.morsels = 1;
  report.rows = rows;
  report.gpu_sim_seconds = sim_seconds;
  report.wall_seconds = sw.ElapsedSeconds();
  return report;
}

}  // namespace avm::engine
