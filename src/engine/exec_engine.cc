#include "engine/exec_engine.h"

#include "engine/session.h"
#include "util/string_util.h"

namespace avm::engine {

const char* StrategyName(ExecutionStrategy s) {
  switch (s) {
    case ExecutionStrategy::kInterpret: return "interpret";
    case ExecutionStrategy::kAdaptiveJit: return "adaptive-jit";
    case ExecutionStrategy::kGpuOffload: return "gpu-offload";
  }
  return "?";
}

std::string ExecReport::ToString() const {
  std::string out = StrFormat(
      "strategy=%s device=%s kernel_tier=%s workers=%zu morsels=%zu "
      "rows=%llu wall=%.2fms\n",
      StrategyName(strategy), device.c_str(), kernel_tier.c_str(), workers,
      morsels, (unsigned long long)rows, wall_seconds * 1e3);
  out += StrFormat(
      "iterations=%llu traces: compiled=%llu reused=%llu "
      "injected_runs=%llu fallbacks=%llu compile=%.1fms",
      (unsigned long long)iterations, (unsigned long long)traces_compiled,
      (unsigned long long)traces_reused, (unsigned long long)injection_runs,
      (unsigned long long)injection_fallbacks, compile_seconds * 1e3);
  if (!jit_tier.empty()) {
    out += StrFormat(
        "\njit tier=%s fast=%llu (%.1fms) opt=%llu (%.1fms) "
        "upgrades=%llu/%llu",
        jit_tier.c_str(), (unsigned long long)fast_compiles,
        fast_compile_seconds * 1e3, (unsigned long long)opt_compiles,
        opt_compile_seconds * 1e3, (unsigned long long)tier_upgrades,
        (unsigned long long)tier_upgrades_requested);
  }
  if (disk_cache_hits + disk_cache_misses + disk_cache_corrupt > 0) {
    out += StrFormat(
        "\ndisk cache: hits=%llu misses=%llu corrupt_recompiled=%llu",
        (unsigned long long)disk_cache_hits,
        (unsigned long long)disk_cache_misses,
        (unsigned long long)disk_cache_corrupt);
  }
  if (gpu_sim_seconds > 0) {
    out += StrFormat(" gpu_sim=%.2fms", gpu_sim_seconds * 1e3);
  }
  if (bytes_spilled + spill_runs + peak_tracked_bytes + chunks_streamed > 0) {
    out += StrFormat(
        "\nout-of-core: spilled=%llu bytes in %llu runs peak_tracked=%llu "
        "chunks_streamed=%llu",
        (unsigned long long)bytes_spilled, (unsigned long long)spill_runs,
        (unsigned long long)peak_tracked_bytes,
        (unsigned long long)chunks_streamed);
  }
  if (!jit_declined.empty()) {
    out += "\njit declined: " + jit_declined;
  }
  if (!ran_serial_reason.empty()) {
    out += "\nran serial: " + ran_serial_reason;
  }
  return out;
}

void SumMerge(TypeId type, void* master, const void* partial, uint64_t len) {
  switch (type) {
    case TypeId::kBool:
    case TypeId::kI8:
      for (uint64_t i = 0; i < len; ++i) {
        static_cast<int8_t*>(master)[i] +=
            static_cast<const int8_t*>(partial)[i];
      }
      break;
    case TypeId::kI16:
      for (uint64_t i = 0; i < len; ++i) {
        static_cast<int16_t*>(master)[i] +=
            static_cast<const int16_t*>(partial)[i];
      }
      break;
    case TypeId::kI32:
      for (uint64_t i = 0; i < len; ++i) {
        static_cast<int32_t*>(master)[i] +=
            static_cast<const int32_t*>(partial)[i];
      }
      break;
    case TypeId::kI64:
      for (uint64_t i = 0; i < len; ++i) {
        static_cast<int64_t*>(master)[i] +=
            static_cast<const int64_t*>(partial)[i];
      }
      break;
    case TypeId::kF32:
      for (uint64_t i = 0; i < len; ++i) {
        static_cast<float*>(master)[i] +=
            static_cast<const float*>(partial)[i];
      }
      break;
    case TypeId::kF64:
      for (uint64_t i = 0; i < len; ++i) {
        static_cast<double*>(master)[i] +=
            static_cast<const double*>(partial)[i];
      }
      break;
  }
}

// ------------------------------------------------------------- ExecContext

ExecContext::ExecContext(ProgramFactory make_program, uint64_t total_rows)
    : make_program_(std::move(make_program)), total_rows_(total_rows) {}

ExecContext::ExecContext(const dsl::Program* program)
    : fixed_program_(program) {}

ExecContext& ExecContext::BindInput(const std::string& name,
                                    interp::DataBinding b) {
  if (total_rows_ == 0) total_rows_ = b.len;
  bound_.push_back({name, BindRole::kInput, b, nullptr});
  return *this;
}

ExecContext& ExecContext::BindInputColumn(const std::string& name,
                                          const Column* col) {
  return BindInput(name, interp::DataBinding::FromColumn(col));
}

ExecContext& ExecContext::BindShared(const std::string& name,
                                     interp::DataBinding b) {
  bound_.push_back({name, BindRole::kShared, b, nullptr});
  return *this;
}

ExecContext& ExecContext::BindOutput(const std::string& name,
                                     interp::DataBinding b) {
  b.writable = true;
  bound_.push_back({name, BindRole::kOutput, b, nullptr});
  return *this;
}

ExecContext& ExecContext::BindPartialOutput(const std::string& name,
                                            interp::DataBinding b,
                                            uint64_t row_scale) {
  b.writable = true;
  Bound nb{name, BindRole::kPartialOutput, b, nullptr,
           std::max<uint64_t>(row_scale, 1), false};
  // Upsert: the prepare hook re-decides in-memory vs scratch windows per
  // submission, replacing the previous binding of the same name.
  for (auto& existing : bound_) {
    if (existing.role == BindRole::kPartialOutput && existing.name == name) {
      existing = std::move(nb);
      return *this;
    }
  }
  bound_.push_back(std::move(nb));
  return *this;
}

ExecContext& ExecContext::BindPartialOutputScratch(const std::string& name,
                                                   TypeId type,
                                                   uint64_t row_scale) {
  // Shape-only binding: no storage; the engine allocates a window per task.
  interp::DataBinding b = interp::DataBinding::Raw(type, nullptr, 0, true);
  Bound nb{name, BindRole::kPartialOutput, b, nullptr,
           std::max<uint64_t>(row_scale, 1), true};
  for (auto& existing : bound_) {
    if (existing.role == BindRole::kPartialOutput && existing.name == name) {
      existing = std::move(nb);
      return *this;
    }
  }
  bound_.push_back(std::move(nb));
  return *this;
}

ExecContext& ExecContext::BindAccumulator(const std::string& name, TypeId type,
                                          void* data, uint64_t len,
                                          MergeFn merge) {
  bound_.push_back({name, BindRole::kAccumulator,
                    interp::DataBinding::Raw(type, data, len, true),
                    std::move(merge)});
  return *this;
}

// -------------------------------------------------------------- ExecEngine

ExecEngine::ExecEngine(EngineOptions options) : options_(std::move(options)) {
  SessionOptions so;
  so.num_workers = options_.num_workers;
  so.defaults.strategy = options_.strategy;
  so.defaults.vm = options_.vm;
  so.defaults.morsel_rows = options_.morsel_rows;
  so.defaults.memory_budget = options_.memory_budget;
  so.device_pool = options_.device_pool;
  session_ = std::make_unique<Session>(so);
}

ExecEngine::~ExecEngine() = default;

Result<ExecReport> ExecEngine::Run(ExecContext& ctx) {
  return session_->Run(ctx);
}

const jit::TraceCache& ExecEngine::trace_cache() const {
  return session_->trace_cache();
}

Result<ExecReport> ExecEngine::Execute(ExecContext& ctx,
                                       EngineOptions options) {
  // Spins up (and drains) a fresh session — worker threads and an empty
  // TraceCache — per call: tens of microseconds against the multi-ms
  // queries this convenience path serves. Callers that care about either
  // reuse keep an ExecEngine (or a Session) alive instead.
  ExecEngine engine(std::move(options));
  return engine.Run(ctx);
}

}  // namespace avm::engine
