#include "engine/query_builder.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstring>
#include <map>
#include <numeric>
#include <set>

#include "analysis/verify_program.h"
#include "dsl/typecheck.h"
#include "storage/spill_file.h"
#include "util/hash.h"
#include "util/string_util.h"

namespace avm::engine {

namespace {

using dsl::ConstI;
using dsl::ExprPtr;
using dsl::Lambda;
using dsl::SkeletonKind;
using dsl::StmtPtr;

/// Largest dense join/semijoin key domain the builder will materialize
/// (16M slots = 128 MiB of i64 per lookup array).
constexpr int64_t kMaxJoinDomain = int64_t{1} << 24;

/// Deep clone with variable-reference renaming (column names are let-bound
/// under a prefix in the lowered loop body, and filter fast paths rebind
/// the single input to a lambda parameter).
ExprPtr CloneSubst(const dsl::Expr& e,
                   const std::map<std::string, std::string>& subst) {
  auto out = std::make_shared<dsl::Expr>(e);
  out->id = 0;
  if (e.kind == dsl::ExprKind::kVarRef) {
    auto it = subst.find(e.var);
    if (it != subst.end()) out->var = it->second;
    return out;
  }
  if (e.body != nullptr) out->body = CloneSubst(*e.body, subst);
  out->args.clear();
  out->args.reserve(e.args.size());
  for (const ExprPtr& a : e.args) out->args.push_back(CloneSubst(*a, subst));
  return out;
}

/// Names referenced by an expression, in first-appearance (pre-order)
/// order — this fixes the lambda parameter order of the lowered maps.
void CollectRefs(const dsl::Expr& e, std::vector<std::string>* out) {
  if (e.kind == dsl::ExprKind::kVarRef) {
    if (std::find(out->begin(), out->end(), e.var) == out->end()) {
      out->push_back(e.var);
    }
    return;
  }
  if (e.body != nullptr) CollectRefs(*e.body, out);
  for (const ExprPtr& a : e.args) CollectRefs(*a, out);
}

/// Builder expressions are scalar formulas; the builder inserts the
/// skeletons and lambdas itself.
Status ValidateScalarExpr(const dsl::Expr& e, const char* where) {
  if (e.kind == dsl::ExprKind::kLambda ||
      e.kind == dsl::ExprKind::kSkeleton) {
    return Status::InvalidArgument(
        StrFormat("%s: lambdas/skeletons are not allowed in builder "
                  "expressions (use Filter/Project/SemiJoin/Join/Aggregate)",
                  where));
  }
  if (e.body != nullptr) AVM_RETURN_NOT_OK(ValidateScalarExpr(*e.body, where));
  for (const ExprPtr& a : e.args) {
    AVM_RETURN_NOT_OK(ValidateScalarExpr(*a, where));
  }
  return Status::OK();
}

/// NaN-aware float ordering: every NaN sorts AFTER every number, and all
/// NaNs are equivalent — a strict weak ordering even on dirty data (raw
/// operator< would hand std::stable_sort an intransitive comparator: UB).
template <typename F>
bool FloatLess(F a, F b) {
  if (std::isnan(a)) return false;
  if (std::isnan(b)) return true;
  return a < b;
}

/// Element comparison inside a raw typed column buffer (result-row sorting).
bool LessAt(TypeId t, const uint8_t* base, uint64_t a, uint64_t b) {
  switch (t) {
    case TypeId::kBool:
    case TypeId::kI8:
      return reinterpret_cast<const int8_t*>(base)[a] <
             reinterpret_cast<const int8_t*>(base)[b];
    case TypeId::kI16:
      return reinterpret_cast<const int16_t*>(base)[a] <
             reinterpret_cast<const int16_t*>(base)[b];
    case TypeId::kI32:
      return reinterpret_cast<const int32_t*>(base)[a] <
             reinterpret_cast<const int32_t*>(base)[b];
    case TypeId::kI64:
      return reinterpret_cast<const int64_t*>(base)[a] <
             reinterpret_cast<const int64_t*>(base)[b];
    case TypeId::kF32:
      return FloatLess(reinterpret_cast<const float*>(base)[a],
                       reinterpret_cast<const float*>(base)[b]);
    case TypeId::kF64:
      return FloatLess(reinterpret_cast<const double*>(base)[a],
                       reinterpret_cast<const double*>(base)[b]);
  }
  return false;
}

/// Single-value comparison across two buffers (k-way spilled-run merge,
/// where each run streams through its own chunk buffer — LessAt above only
/// compares indices within ONE base array).
bool ValueLess(TypeId t, const uint8_t* a, const uint8_t* b) {
  switch (t) {
    case TypeId::kBool:
    case TypeId::kI8:
      return *reinterpret_cast<const int8_t*>(a) <
             *reinterpret_cast<const int8_t*>(b);
    case TypeId::kI16:
      return *reinterpret_cast<const int16_t*>(a) <
             *reinterpret_cast<const int16_t*>(b);
    case TypeId::kI32:
      return *reinterpret_cast<const int32_t*>(a) <
             *reinterpret_cast<const int32_t*>(b);
    case TypeId::kI64:
      return *reinterpret_cast<const int64_t*>(a) <
             *reinterpret_cast<const int64_t*>(b);
    case TypeId::kF32:
      return FloatLess(*reinterpret_cast<const float*>(a),
                       *reinterpret_cast<const float*>(b));
    case TypeId::kF64:
      return FloatLess(*reinterpret_cast<const double*>(a),
                       *reinterpret_cast<const double*>(b));
  }
  return false;
}

}  // namespace

using Spec = internal::QuerySpec;

// -------------------------------------------------------------------- spec

struct internal::QuerySpec {
  struct Step {
    enum class Kind : uint8_t { kFilter, kProject, kSemiJoin, kJoin };
    Kind kind;
    std::string name;   // kProject: projection; kSemiJoin/kJoin: probe key
    ExprPtr expr;       // kFilter / kProject
    size_t dim = 0;     // kSemiJoin: index into dims; kJoin: into joins
  };
  enum class AggKind : uint8_t { kSum, kCount, kSumF64, kAvgF64 };
  struct Agg {
    std::string name;
    AggKind kind = AggKind::kSum;
    ExprPtr expr;  // null for Count
  };
  /// One hash equi-join. Build() materializes the build side one of two
  /// ways, chosen automatically (bit-identical results either way):
  ///  - dense fast path (keys unique, non-negative, below kMaxJoinDomain):
  ///    key-indexed lookup arrays (identity-hashed open table: slot == key,
  ///    plus one guard slot that never matches) so the probe is a plain
  ///    shared-array gather;
  ///  - CSR hash table (duplicate / negative / sparse keys): a power-of-two
  ///    bucket offset array plus bucket-major key/row entry lists, stable
  ///    by build row, so duplicate keys fan out one output row per match.
  struct JoinDim {
    const Table* build = nullptr;
    std::string build_key;
    std::vector<std::string> payload;  ///< requested; empty = all non-key
    // Derived by Resolve():
    std::vector<std::string> cols;     ///< resolved payload column names
    bool dense = true;                 ///< dense fast path vs CSR hash table
    // Dense fast path:
    int64_t max_key = -1;              ///< guard slot = max_key + 1
    std::vector<int64_t> match;        ///< 1 where a build key exists
    // CSR hash table:
    uint64_t num_buckets = 0;          ///< power of two
    std::vector<int64_t> bkt_start;    ///< num_buckets + 1 offsets
    std::vector<int64_t> ent_key;      ///< bucket-major build keys
    std::vector<int64_t> ent_row;      ///< bucket-major build row ids
    uint64_t dup_max = 1;              ///< max build rows sharing one key
    struct Pay {
      TypeId type = TypeId::kI64;
      std::vector<uint8_t> data;  ///< dense: (max_key + 2) slots; hash:
                                  ///< build-row-major copies
    };
    std::vector<Pay> pays;             ///< parallel to cols
  };

  const Table* table = nullptr;
  std::vector<Step> steps;
  std::vector<std::vector<int64_t>> dims;  ///< shared membership arrays
  std::vector<JoinDim> joins;
  JoinStrategy join_strategy = JoinStrategy::kAuto;
  ExprPtr group_expr;                      ///< null = single group
  size_t num_groups = 1;
  std::vector<Agg> aggs;
  std::vector<std::string> outputs;        ///< Output() calls, in order
  bool has_order = false;
  std::string order_by;
  SortDir order_dir = SortDir::kAscending;

  // Derived by Resolve().
  std::vector<std::string> columns;  ///< referenced, schema order
  std::vector<const Column*> column_ptrs;
  bool row_mode = false;             ///< materialize rows (no aggregates)
  std::vector<std::string> out_cols; ///< final output list (order key incl.)
  std::vector<TypeId> out_types;     ///< parallel; from the probe lowering
  size_t order_key_index = 0;        ///< row mode: order_by's out_cols slot
  /// Worst-case output rows per probe row: the product of dup_max over the
  /// hash-table joins (1 with only dense joins). Row-mode output windows
  /// are sized input_rows x fan_out and partitioned with this row scale.
  uint64_t fan_out = 1;

  std::string DimName(size_t i) const { return StrFormat("sj%zu", i); }
  std::string JoinMatchName(size_t i) const { return StrFormat("jm_%zu", i); }
  std::string JoinBucketName(size_t i) const { return StrFormat("jb_%zu", i); }
  std::string JoinEntKeyName(size_t i) const { return StrFormat("jk_%zu", i); }
  std::string JoinEntRowName(size_t i) const { return StrFormat("jr_%zu", i); }
  std::string JoinPayName(size_t i, size_t j) const {
    return StrFormat("jp_%zu_%zu", i, j);
  }
  static std::string ColValue(const std::string& col) { return "col_" + col; }
  static std::string AccName(const std::string& agg) { return "acc_" + agg; }
  static std::string AvgCntName(const std::string& agg) {
    return "avn_" + agg;
  }
  static std::string OutName(const std::string& col) { return "out_" + col; }

  Status Resolve();
  Status BuildJoinDim(JoinDim& jd) const;
  Result<dsl::Program> Lower(int64_t rows) const;
};

namespace {

// Names the lowering generates itself: numbered okayN/predN/memN/keyN/sjN/
// jidxN/jpiN/pvN/ovN/owN (plus the hash-join probe's jhN/jcsN/jceN/jcnN/
// jfoN/jcaN/jckN/jcrN/jpkN/jrbN), the col_/acc_/avn_/cnt_/sv_/out_/jv_/
// jm_/jp_/jb_/jk_/jr_ prefixes, and the static loop counter / group /
// output-count / pass-through names.
bool IsReservedName(const std::string& n) {
  if (n.empty() || n == "i" || n == "grp" || n == "_sel" || n == "onum" ||
      n == "group") {
    return true;
  }
  for (const char* p :
       {"col_", "acc_", "avn_", "cnt_", "sv_", "out_", "jv_", "jm_", "jp_",
        "jb_", "jk_", "jr_"}) {
    if (n.rfind(p, 0) == 0) return true;
  }
  for (const char* p :
       {"okay", "pred", "mem", "key", "sj", "jidx", "jpi", "pv", "ov", "ow",
        "jh", "jcs", "jce", "jcn", "jfo", "jca", "jck", "jcr", "jpk", "jrb"}) {
    const size_t l = std::strlen(p);
    if (n.size() > l && n.compare(0, l, p) == 0 &&
        std::all_of(n.begin() + static_cast<ptrdiff_t>(l), n.end(),
                    [](unsigned char c) { return std::isdigit(c); })) {
      return true;
    }
  }
  return false;
}

}  // namespace

Status internal::QuerySpec::BuildJoinDim(JoinDim& jd) const {
  AVM_ASSIGN_OR_RETURN(const Column* key_col,
                       jd.build->ColumnByName(jd.build_key));
  if (key_col->type() != TypeId::kI64) {
    return Status::TypeError("Join build key column must be i64: " +
                             jd.build_key);
  }
  const uint64_t rows = jd.build->num_rows();
  constexpr uint32_t kChunk = 4096;

  // Pass 1: read every build key and size up the domain.
  std::vector<int64_t> keys(rows);
  int64_t min_key = 0;
  jd.max_key = -1;
  for (uint64_t pos = 0; pos < rows; pos += kChunk) {
    const uint32_t n =
        static_cast<uint32_t>(std::min<uint64_t>(kChunk, rows - pos));
    AVM_RETURN_NOT_OK(key_col->Read(pos, n, keys.data() + pos));
    for (uint32_t i = 0; i < n; ++i) {
      const int64_t k = keys[pos + i];
      min_key = std::min(min_key, k);
      jd.max_key = std::max(jd.max_key, k);
    }
  }

  // Dense fast path iff every key fits the dense domain AND is unique (the
  // duplicate check piggybacks on filling the match array). Everything
  // else — duplicates, negative keys, sparse/huge domains — goes through
  // the CSR hash table; both paths are bit-identical on any workload the
  // dense path accepts.
  jd.dense = join_strategy == JoinStrategy::kAuto && min_key >= 0 &&
             jd.max_key + 1 < kMaxJoinDomain;
  if (jd.dense) {
    // Densify: slot == key (identity hash, collision-free by construction);
    // the extra guard slot max_key + 1 stays unmatched and absorbs every
    // clamped out-of-domain probe key.
    const size_t size = static_cast<size_t>(jd.max_key + 2);
    jd.match.assign(size, 0);
    for (uint64_t r = 0; r < rows && jd.dense; ++r) {
      if (jd.match[keys[r]] != 0) jd.dense = false;  // duplicate key
      jd.match[keys[r]] = 1;
    }
    if (!jd.dense) jd.match = {};
  }
  jd.num_buckets = 0;
  jd.bkt_start = {};
  jd.ent_key = {};
  jd.ent_row = {};
  jd.dup_max = 1;
  if (!jd.dense) {
    // CSR hash table. Bucket count: power of two >= 2x rows; the bucket
    // formula ((h % B) + B) % B is total for every i64 (B > 0, so the DSL
    // mod's b==0/b==-1 guards never fire) and must match the lowered
    // probe's map EXACTLY — interpreter, compiled trace, and this build
    // loop all reduce the same HashInt64 the same way.
    uint64_t bkts = 1;
    while (bkts < rows * 2) bkts <<= 1;
    jd.num_buckets = bkts;
    const int64_t b64 = static_cast<int64_t>(bkts);
    auto bucket_of = [&](int64_t k) -> size_t {
      const int64_t h = static_cast<int64_t>(
          HashInt64(static_cast<uint64_t>(k)));
      return static_cast<size_t>(((h % b64) + b64) % b64);
    };
    jd.bkt_start.assign(bkts + 1, 0);
    for (uint64_t r = 0; r < rows; ++r) {
      ++jd.bkt_start[bucket_of(keys[r]) + 1];
    }
    for (size_t b = 1; b <= bkts; ++b) jd.bkt_start[b] += jd.bkt_start[b - 1];
    // Counting sort, stable by build row: duplicate keys land in their
    // bucket in build-row order, which is what makes the probe's pair
    // order (probe-row major, build-row ascending) deterministic.
    // Entry arrays are padded to one slot so empty build sides still bind
    // a valid gather base (never addressed: every bucket is empty).
    jd.ent_key.assign(std::max<uint64_t>(rows, 1), 0);
    jd.ent_row.assign(std::max<uint64_t>(rows, 1), 0);
    std::vector<int64_t> cursor(jd.bkt_start.begin(), jd.bkt_start.end() - 1);
    std::map<int64_t, uint64_t> key_count;
    for (uint64_t r = 0; r < rows; ++r) {
      const size_t b = bucket_of(keys[r]);
      jd.ent_key[static_cast<size_t>(cursor[b])] = keys[r];
      jd.ent_row[static_cast<size_t>(cursor[b])] = static_cast<int64_t>(r);
      ++cursor[b];
      jd.dup_max = std::max(jd.dup_max, ++key_count[keys[r]]);
    }
  }

  // Payload arrays: dense -> key-indexed slots; hash -> build-row-major
  // copies (the probe gathers them at the matching entry's build row).
  const size_t size = jd.dense ? static_cast<size_t>(jd.max_key + 2)
                               : static_cast<size_t>(
                                     std::max<uint64_t>(rows, 1));
  jd.pays.resize(jd.cols.size());
  std::vector<uint8_t> buf;
  for (size_t c = 0; c < jd.cols.size(); ++c) {
    AVM_ASSIGN_OR_RETURN(const Column* col,
                         jd.build->ColumnByName(jd.cols[c]));
    JoinDim::Pay& pay = jd.pays[c];
    pay.type = col->type();
    const size_t w = TypeWidth(pay.type);
    pay.data.assign(size * w, 0);
    buf.resize(kChunk * w);
    for (uint64_t pos = 0; pos < rows; pos += kChunk) {
      const uint32_t n =
          static_cast<uint32_t>(std::min<uint64_t>(kChunk, rows - pos));
      AVM_RETURN_NOT_OK(col->Read(pos, n, buf.data()));
      for (uint32_t i = 0; i < n; ++i) {
        const size_t slot = jd.dense ? static_cast<size_t>(keys[pos + i])
                                     : static_cast<size_t>(pos + i);
        std::memcpy(&pay.data[slot * w], &buf[static_cast<size_t>(i) * w], w);
      }
    }
  }
  return Status::OK();
}

Status internal::QuerySpec::Resolve() {
  row_mode = aggs.empty();
  if (aggs.empty() && outputs.empty() && !has_order) {
    return Status::InvalidArgument(
        "QueryBuilder needs at least one aggregate (Sum/Count/SumF64/"
        "AvgF64) or a materialized output (Output/OrderBy)");
  }
  if (!aggs.empty() && !outputs.empty()) {
    return Status::InvalidArgument(
        "Output() cannot be combined with aggregates; ordered per-group "
        "rows come from OrderBy on an aggregate query");
  }
  if (row_mode && group_expr != nullptr) {
    return Status::InvalidArgument(
        "Aggregate(group) requires at least one Sum/Count aggregate");
  }
  // Re-derive from scratch: the builder may Build() more than once (the
  // spec is re-resolved after each mutation).
  columns.clear();
  column_ptrs.clear();
  out_cols.clear();
  out_types.clear();
  fan_out = 1;
  const Schema& schema = table->schema();

  // Accept a referenced table column, rejecting reserved-named columns
  // eagerly: their data declarations would collide with generated names
  // deep in the lowering, surfacing as baffling type errors.
  std::set<std::string> projections;  // projections + join payloads
  std::set<std::string> used_columns;
  auto use_column = [&](const std::string& name) -> Status {
    if (IsReservedName(name)) {
      return Status::InvalidArgument(
          StrFormat("column name '%s' collides with the lowering's "
                    "reserved names; rename the column to use it with "
                    "QueryBuilder",
                    name.c_str()));
    }
    used_columns.insert(name);
    return Status::OK();
  };
  auto resolve_expr = [&](const dsl::Expr& e, const char* where) -> Status {
    AVM_RETURN_NOT_OK(ValidateScalarExpr(e, where));
    std::vector<std::string> refs;
    CollectRefs(e, &refs);
    for (const std::string& r : refs) {
      if (projections.contains(r)) continue;
      if (schema.FieldIndex(r) >= 0) {
        AVM_RETURN_NOT_OK(use_column(r));
        continue;
      }
      return Status::InvalidArgument(
          StrFormat("%s references '%s', which is neither a column of the "
                    "scanned table, a join payload, nor an earlier "
                    "projection",
                    where, r.c_str()));
    }
    if (refs.empty()) {
      return Status::InvalidArgument(
          StrFormat("%s references no column or projection", where));
    }
    return Status::OK();
  };
  auto check_fresh_name = [&](const std::string& name,
                              const char* what) -> Status {
    if (IsReservedName(name)) {
      return Status::InvalidArgument(
          StrFormat("%s name '%s' is reserved", what, name.c_str()));
    }
    if (schema.FieldIndex(name) >= 0 || projections.contains(name)) {
      return Status::InvalidArgument(
          StrFormat("%s name '%s' collides with a column or projection",
                    what, name.c_str()));
    }
    return Status::OK();
  };
  auto check_key = [&](const std::string& key, const char* what) -> Status {
    if (!projections.contains(key) && schema.FieldIndex(key) < 0) {
      return Status::InvalidArgument(
          StrFormat("%s key '%s' is neither a column nor an earlier "
                    "projection",
                    what, key.c_str()));
    }
    if (schema.FieldIndex(key) >= 0) {
      AVM_RETURN_NOT_OK(use_column(key));
    }
    return Status::OK();
  };

  for (const Step& s : steps) {
    switch (s.kind) {
      case Step::Kind::kFilter:
        AVM_RETURN_NOT_OK(resolve_expr(*s.expr, "Filter predicate"));
        break;
      case Step::Kind::kProject:
        AVM_RETURN_NOT_OK(check_fresh_name(s.name, "Project"));
        AVM_RETURN_NOT_OK(resolve_expr(*s.expr, "Project expression"));
        projections.insert(s.name);
        break;
      case Step::Kind::kSemiJoin: {
        if (dims[s.dim].empty()) {
          return Status::InvalidArgument(
              "SemiJoin membership array must not be empty");
        }
        AVM_RETURN_NOT_OK(check_key(s.name, "SemiJoin"));
        break;
      }
      case Step::Kind::kJoin: {
        JoinDim& jd = joins[s.dim];
        AVM_RETURN_NOT_OK(check_key(s.name, "Join"));
        const Schema& bs = jd.build->schema();
        jd.cols.clear();
        if (jd.payload.empty()) {
          for (size_t i = 0; i < bs.num_fields(); ++i) {
            if (bs.field(i).name != jd.build_key) {
              jd.cols.push_back(bs.field(i).name);
            }
          }
        } else {
          jd.cols = jd.payload;
        }
        for (const std::string& c : jd.cols) {
          if (bs.FieldIndex(c) < 0) {
            return Status::InvalidArgument(
                "Join payload '" + c + "' is not a build-side column");
          }
          AVM_RETURN_NOT_OK(check_fresh_name(c, "Join payload"));
          projections.insert(c);
        }
        // Materialize the build side now so Build-time errors surface
        // before anything is submitted, and so the dense-vs-hash choice
        // (and with it the query's worst-case fan-out) is known.
        AVM_RETURN_NOT_OK(BuildJoinDim(jd));
        if (!jd.dense) {
          if (jd.dup_max != 0 &&
              fan_out > (uint64_t{1} << 40) / jd.dup_max) {
            return Status::ResourceExhausted(
                "Join fan-out too large to size output windows (column " +
                jd.build_key + ")");
          }
          fan_out *= jd.dup_max;
        }
        break;
      }
    }
  }
  if (group_expr != nullptr) {
    AVM_RETURN_NOT_OK(resolve_expr(*group_expr, "Aggregate group"));
  }
  std::set<std::string> agg_names;
  for (const Agg& a : aggs) {
    AVM_RETURN_NOT_OK(check_fresh_name(a.name, "aggregate"));
    if (!agg_names.insert(a.name).second) {
      return Status::InvalidArgument("duplicate aggregate name " + a.name);
    }
    if (a.expr != nullptr) {
      AVM_RETURN_NOT_OK(resolve_expr(*a.expr, "Sum expression"));
    }
  }

  // Output / OrderBy resolution.
  if (row_mode) {
    std::set<std::string> seen;
    auto add_output = [&](const std::string& name) -> Status {
      if (!seen.insert(name).second) {
        return Status::InvalidArgument("duplicate Output name " + name);
      }
      if (!projections.contains(name)) {
        if (schema.FieldIndex(name) < 0) {
          return Status::InvalidArgument(
              StrFormat("Output/OrderBy '%s' is neither a column, a join "
                        "payload, nor a projection",
                        name.c_str()));
        }
        AVM_RETURN_NOT_OK(use_column(name));
      }
      out_cols.push_back(name);
      return Status::OK();
    };
    for (const std::string& o : outputs) AVM_RETURN_NOT_OK(add_output(o));
    if (has_order && !seen.contains(order_by)) {
      AVM_RETURN_NOT_OK(add_output(order_by));
    }
    if (has_order) {
      for (size_t i = 0; i < out_cols.size(); ++i) {
        if (out_cols[i] == order_by) order_key_index = i;
      }
    }
  } else if (has_order) {
    if (order_by != "group" && !agg_names.contains(order_by)) {
      return Status::InvalidArgument(
          StrFormat("OrderBy '%s' on an aggregate query must name \"group\" "
                    "or an aggregate",
                    order_by.c_str()));
    }
  }

  if (used_columns.empty()) {
    return Status::InvalidArgument(
        "query references no table column (nothing drives the scan)");
  }

  // Schema order keeps the lowered program (and its trace fingerprints)
  // independent of expression-walk order.
  for (size_t i = 0; i < schema.num_fields(); ++i) {
    const std::string& name = schema.field(i).name;
    if (!used_columns.contains(name)) continue;
    columns.push_back(name);
    AVM_ASSIGN_OR_RETURN(const Column* col, table->ColumnByName(name));
    column_ptrs.push_back(col);
  }

  // Row mode: the output declarations need the VALUE types, which only the
  // type checker knows (projection types follow promotion rules). Lower a
  // probe program with placeholder output types — the write skeleton does
  // not constrain its destination's type — and read the checked types off
  // the written value expressions.
  if (row_mode) {
    out_types.assign(out_cols.size(), TypeId::kI64);
    AVM_ASSIGN_OR_RETURN(dsl::Program probe, Lower(4096));
    AVM_RETURN_NOT_OK(dsl::TypeCheck(&probe));
    dsl::VisitExprs(probe, [&](const dsl::ExprPtr& e) {
      if (e->kind != dsl::ExprKind::kSkeleton ||
          e->skeleton != SkeletonKind::kWrite) {
        return;
      }
      const std::string& dest = e->args[0]->var;
      for (size_t i = 0; i < out_cols.size(); ++i) {
        if (OutName(out_cols[i]) == dest) out_types[i] = e->args[2]->type;
      }
    });
  }
  return Status::OK();
}

// ---------------------------------------------------------------- lowering

namespace {

/// Mutable state of one lowering pass: the loop body being emitted plus the
/// name/selection bookkeeping that turns impossible selection combinations
/// into Build-time errors (the interpreter's CommonSelection rule).
struct Lowering {
  const Spec& spec;
  std::vector<StmtPtr> body;
  /// user name -> loop value currently holding it ("" sel = positional).
  std::map<std::string, std::string> value_of;
  /// Selection each loop value carries ("" = positional, all chunk rows).
  std::map<std::string, std::string> value_sel;
  /// Projection name -> defining builder expression (for positional
  /// re-derivation of join keys).
  std::map<std::string, const dsl::Expr*> proj_expr;
  /// Join payload -> (positional index value, lookup array name).
  struct PaySrc {
    std::string idx;
    std::string array;
  };
  std::map<std::string, PaySrc> payload_src;
  /// (payload, selection) -> gathered value let (payloads re-gather lazily
  /// under the CURRENT selection so they compose with post-join values).
  std::map<std::pair<std::string, std::string>, std::string> pay_cache;
  /// name -> positional (selection-free) value let.
  std::map<std::string, std::string> pos_cache;
  std::string cur_sel;  // selection-carrying value, "" before any filter
  int gen = 0;          // generated-name counter
  /// True after a hash-table join switched the loop to the (probe row,
  /// build row) pair domain: chunk positions no longer line up with the
  /// scanned columns, so PosName must serve schema columns from the
  /// rebased pair-domain values instead of the raw col_ reads.
  bool rebased = false;

  explicit Lowering(const Spec& s) : spec(s) {}

  void Emit(StmtPtr stmt) { body.push_back(std::move(stmt)); }

  /// The loop value for `name` under the current selection, materializing
  /// join payloads on demand (a gather through the join's positional index
  /// vector threaded with the current selection).
  Result<std::string> UseName(const std::string& name) {
    auto ps = payload_src.find(name);
    if (ps == payload_src.end()) return value_of.at(name);
    auto key = std::make_pair(name, cur_sel);
    auto hit = pay_cache.find(key);
    if (hit != pay_cache.end()) return hit->second;
    using namespace dsl;
    std::string idx = ps->second.idx;
    if (!cur_sel.empty()) {
      const std::string sel_idx = StrFormat("jpi%d", gen++);
      Emit(Let(sel_idx,
               Skeleton(SkeletonKind::kMap,
                        {Lambda({"k", "_sel"}, Var("k")), Var(idx),
                         Var(cur_sel)})));
      idx = sel_idx;
    }
    // One payload may be gathered under several selections as filters
    // refine; the counter keeps every re-gather's let name unique.
    const std::string let_name = StrFormat("jv_%s_%d", name.c_str(), gen++);
    Emit(Let(let_name, Skeleton(SkeletonKind::kGather,
                                {Var(ps->second.array), Var(idx)})));
    value_sel[let_name] = cur_sel;
    pay_cache[key] = let_name;
    return let_name;
  }

  Result<std::string> SelOf(const std::string& user_name) {
    AVM_ASSIGN_OR_RETURN(std::string v, UseName(user_name));
    return value_sel.at(v);
  }

  /// A positional (selection-free) value for `name`, valid at EVERY chunk
  /// position: columns are positional by construction, payloads gather
  /// through the positional index vector, and post-filter projections are
  /// re-computed over all rows (safe: every scalar op, including div/mod by
  /// zero, is total and deterministic).
  Result<std::string> PosName(const std::string& name) {
    auto hit = pos_cache.find(name);
    if (hit != pos_cache.end()) return hit->second;
    if (!rebased && spec.table->schema().FieldIndex(name) >= 0) {
      return Spec::ColValue(name);
    }
    using namespace dsl;
    auto ps = payload_src.find(name);
    if (ps != payload_src.end()) {
      const std::string val = StrFormat("pv%d", gen++);
      Emit(Let(val, Skeleton(SkeletonKind::kGather,
                             {Var(ps->second.array), Var(ps->second.idx)})));
      value_sel[val] = "";
      pos_cache[name] = val;
      return val;
    }
    const std::string& cur = value_of.at(name);
    if (value_sel.at(cur).empty()) {
      pos_cache[name] = cur;
      return cur;
    }
    const dsl::Expr* def = proj_expr.at(name);
    std::vector<std::string> refs;
    CollectRefs(*def, &refs);
    std::map<std::string, std::string> subst;
    std::vector<std::string> params;
    std::vector<ExprPtr> args = {nullptr};
    for (const std::string& r : refs) {
      AVM_ASSIGN_OR_RETURN(std::string p, PosName(r));
      subst[r] = p;
      params.push_back(p);
      args.push_back(Var(p));
    }
    args[0] = Lambda(std::move(params), CloneSubst(*def, subst));
    const std::string val = StrFormat("pv%d", gen++);
    Emit(Let(val, Skeleton(SkeletonKind::kMap, std::move(args))));
    value_sel[val] = "";
    pos_cache[name] = val;
    return val;
  }

  /// Lower `expr` as a map over its referenced values; the current
  /// selection (if any) rides along as a trailing pass-through input, the
  /// Q1 idiom for propagating selection vectors through a pipeline.
  /// Returns the map expression; *out_sel reports the selection the map's
  /// output carries.
  Result<ExprPtr> LowerMap(const dsl::Expr& expr, ExprPtr lowered_body,
                           std::string* out_sel) {
    using namespace dsl;
    std::vector<std::string> refs;
    CollectRefs(expr, &refs);
    std::string have;  // selection carried by the inputs
    std::vector<std::string> params;
    std::vector<ExprPtr> args = {nullptr};  // lambda goes first
    for (const std::string& r : refs) {
      AVM_ASSIGN_OR_RETURN(std::string v, UseName(r));
      const std::string& s = value_sel.at(v);
      if (!s.empty()) {
        if (!have.empty() && have != s) {
          return Status::InvalidArgument(
              StrFormat("expression combines values filtered at different "
                        "pipeline positions ('%s' carries %s); re-project "
                        "after the last filter instead",
                        r.c_str(), s.c_str()));
        }
        have = s;
      }
      params.push_back(v);
      args.push_back(Var(v));
    }
    if (have.empty() && !cur_sel.empty()) {
      // Positional inputs: thread the current selection through so the
      // output computes (and carries) only surviving rows.
      params.push_back("_sel");
      args.push_back(Var(cur_sel));
      have = cur_sel;
    }
    args[0] = Lambda(std::move(params), std::move(lowered_body));
    if (out_sel != nullptr) *out_sel = have;
    return Skeleton(SkeletonKind::kMap, std::move(args));
  }

  Result<ExprPtr> Rename(const dsl::Expr& expr) {
    std::vector<std::string> refs;
    CollectRefs(expr, &refs);
    std::map<std::string, std::string> subst;
    for (const std::string& r : refs) {
      AVM_ASSIGN_OR_RETURN(subst[r], UseName(r));
    }
    return CloneSubst(expr, subst);
  }

  /// Maps feeding the aggregation/output must restrict to the final
  /// selection: an older (wider) selection would keep rows later filters
  /// removed.
  Status RequireCurrent(const std::string& sel, const char* where) const {
    if (sel != cur_sel) {
      return Status::InvalidArgument(
          StrFormat("%s uses values filtered before the last filter; "
                    "re-project after the final filter",
                    where));
    }
    return Status::OK();
  }
};

}  // namespace

Result<dsl::Program> internal::QuerySpec::Lower(int64_t rows) const {
  using namespace dsl;
  const Schema& schema = table->schema();
  Program p;
  for (const std::string& c : columns) {
    p.data.push_back(
        {c, schema.field(static_cast<size_t>(schema.FieldIndex(c))).type,
         false});
  }
  for (size_t i = 0; i < dims.size(); ++i) {
    p.data.push_back({DimName(i), TypeId::kI64, false});
  }
  for (size_t i = 0; i < joins.size(); ++i) {
    if (joins[i].dense) {
      p.data.push_back({JoinMatchName(i), TypeId::kI64, false});
    } else {
      p.data.push_back({JoinBucketName(i), TypeId::kI64, false});
      p.data.push_back({JoinEntKeyName(i), TypeId::kI64, false});
      p.data.push_back({JoinEntRowName(i), TypeId::kI64, false});
    }
    for (size_t j = 0; j < joins[i].pays.size(); ++j) {
      p.data.push_back({JoinPayName(i, j), joins[i].pays[j].type, false});
    }
  }
  for (const Agg& a : aggs) {
    const bool f64 = a.kind == AggKind::kSumF64 || a.kind == AggKind::kAvgF64;
    p.data.push_back(
        {AccName(a.name), f64 ? TypeId::kF64 : TypeId::kI64, true});
    if (a.kind == AggKind::kAvgF64) {
      p.data.push_back({AvgCntName(a.name), TypeId::kI64, true});
    }
  }
  for (size_t i = 0; i < out_cols.size(); ++i) {
    p.data.push_back({OutName(out_cols[i]), out_types[i], true});
  }

  Lowering lo(*this);
  // Chunk reads; scanned columns are let-bound under the col_ prefix so
  // user expressions can be spliced in with a rename.
  for (const std::string& c : columns) {
    lo.Emit(Let(ColValue(c),
                Skeleton(SkeletonKind::kRead, {Var("i"), Var(c)})));
    lo.value_of[c] = ColValue(c);
    lo.value_sel[ColValue(c)] = "";
  }

  for (size_t si = 0; si < steps.size(); ++si) {
    const Step& s = steps[si];
    switch (s.kind) {
      case Step::Kind::kFilter: {
        std::vector<std::string> refs;
        CollectRefs(*s.expr, &refs);
        const std::string okay = StrFormat("okay%d", lo.gen);
        std::string single_sel;
        if (refs.size() == 1) {
          AVM_ASSIGN_OR_RETURN(single_sel, lo.SelOf(refs[0]));
        }
        if (refs.size() == 1 && lo.cur_sel.empty() && single_sel.empty()) {
          // Single positional input, no prior selection: direct filter.
          AVM_ASSIGN_OR_RETURN(std::string v, lo.UseName(refs[0]));
          lo.Emit(Let(
              okay,
              Skeleton(SkeletonKind::kFilter,
                       {Lambda({"x"}, CloneSubst(*s.expr, {{refs[0], "x"}})),
                        Var(v)})));
        } else {
          // Materialize the predicate (0/1), then select the non-zeros.
          const std::string pred = StrFormat("pred%d", lo.gen);
          std::string pred_sel;
          AVM_ASSIGN_OR_RETURN(ExprPtr renamed, lo.Rename(*s.expr));
          AVM_ASSIGN_OR_RETURN(
              ExprPtr pred_map,
              lo.LowerMap(*s.expr, Cast(TypeId::kI64, std::move(renamed)),
                          &pred_sel));
          // The predicate must see every row the pipeline still keeps: a
          // stale selection would silently drop earlier filters from the
          // conjunction.
          AVM_RETURN_NOT_OK(lo.RequireCurrent(pred_sel, "Filter predicate"));
          lo.Emit(Let(pred, std::move(pred_map)));
          lo.Emit(Let(
              okay, Skeleton(SkeletonKind::kFilter,
                             {Lambda({"x"}, Ne(Var("x"), ConstI(0))),
                              Var(pred)})));
        }
        lo.cur_sel = okay;
        ++lo.gen;
        break;
      }
      case Step::Kind::kProject: {
        std::string out_sel;
        AVM_ASSIGN_OR_RETURN(ExprPtr renamed, lo.Rename(*s.expr));
        AVM_ASSIGN_OR_RETURN(
            ExprPtr m, lo.LowerMap(*s.expr, std::move(renamed), &out_sel));
        lo.Emit(Let(s.name, std::move(m)));
        lo.value_of[s.name] = s.name;
        lo.value_sel[s.name] = out_sel;
        lo.proj_expr[s.name] = s.expr.get();
        break;
      }
      case Step::Kind::kSemiJoin: {
        // membership[key] != 0, with the key threaded through the current
        // selection; the membership array is shared (whole-array) so the
        // gather stays row-partitionable.
        AVM_ASSIGN_OR_RETURN(std::string key, lo.UseName(s.name));
        const std::string key_sel = lo.value_sel.at(key);
        if (!key_sel.empty() && key_sel != lo.cur_sel) {
          return Status::InvalidArgument(
              "SemiJoin key was filtered before the last filter; "
              "re-project it after the final filter");
        }
        if (!lo.cur_sel.empty() && key_sel.empty()) {
          const std::string keyed = StrFormat("key%d", lo.gen);
          lo.Emit(Let(
              keyed, Skeleton(SkeletonKind::kMap,
                              {Lambda({"k", "_sel"}, Var("k")), Var(key),
                               Var(lo.cur_sel)})));
          key = keyed;
        }
        const std::string mem = StrFormat("mem%d", lo.gen);
        const std::string okay = StrFormat("okay%d", lo.gen);
        lo.Emit(Let(mem, Skeleton(SkeletonKind::kGather,
                                  {Var(DimName(s.dim)), Var(key)})));
        lo.Emit(Let(
            okay, Skeleton(SkeletonKind::kFilter,
                           {Lambda({"x"}, Ne(Var("x"), ConstI(0))),
                            Var(mem)})));
        lo.cur_sel = okay;
        ++lo.gen;
        break;
      }
      case Step::Kind::kJoin: {
        const JoinDim& jd = joins[s.dim];
        AVM_ASSIGN_OR_RETURN(std::string pos_key, lo.PosName(s.name));
        if (!jd.dense) {
          // ---- CSR hash-table probe: fans out many-to-many. ----
          // Bucket per probe row (positional). ((h % B) + B) % B is total
          // for every i64 key — B is a positive power of two, so the DSL
          // mod's b==0/b==-1 guards never fire — and matches the
          // build-side bucket loop bit for bit.
          const int64_t b64 = static_cast<int64_t>(jd.num_buckets);
          ExprPtr bucket = Call(
              dsl::ScalarOp::kMod,
              {Call(dsl::ScalarOp::kMod,
                    {Call(dsl::ScalarOp::kHash, {Var("k")}), ConstI(b64)}) +
                   ConstI(b64),
               ConstI(b64)});
          const std::string jh = StrFormat("jh%d", lo.gen++);
          lo.Emit(Let(jh, Skeleton(SkeletonKind::kMap,
                                   {Lambda({"k"}, std::move(bucket)),
                                    Var(pos_key)})));
          lo.value_sel[jh] = "";
          // Thread the current selection so only surviving probe rows fan
          // out (expand iterates its counts' selection).
          std::string jhs = jh;
          if (!lo.cur_sel.empty()) {
            const std::string keyed = StrFormat("key%d", lo.gen++);
            lo.Emit(Let(keyed, Skeleton(SkeletonKind::kMap,
                                        {Lambda({"b", "_sel"}, Var("b")),
                                         Var(jh), Var(lo.cur_sel)})));
            lo.value_sel[keyed] = lo.cur_sel;
            jhs = keyed;
          }
          // Candidate count per probe row: bucket end - bucket start.
          const std::string jcs = StrFormat("jcs%d", lo.gen++);
          lo.Emit(Let(jcs, Skeleton(SkeletonKind::kGather,
                                    {Var(JoinBucketName(s.dim)), Var(jhs)})));
          const std::string jb1 = StrFormat("jh%d", lo.gen++);
          lo.Emit(Let(jb1, Skeleton(SkeletonKind::kMap,
                                    {Lambda({"b"}, Var("b") + ConstI(1)),
                                     Var(jhs)})));
          const std::string jce = StrFormat("jce%d", lo.gen++);
          lo.Emit(Let(jce, Skeleton(SkeletonKind::kGather,
                                    {Var(JoinBucketName(s.dim)), Var(jb1)})));
          const std::string jcn = StrFormat("jcn%d", lo.gen++);
          lo.Emit(Let(jcn, Skeleton(SkeletonKind::kMap,
                                    {Lambda({"e", "c"}, Var("e") - Var("c")),
                                     Var(jce), Var(jcs)})));
          lo.value_sel[jcn] = lo.cur_sel;

          // Every name any LATER step (or the aggregation/output stage)
          // still needs is rebased into the pair domain now: expand emits
          // cnt[i] copies of the positional probe-domain value, so pair j
          // sees exactly its probe row's value. The probe key doubles as
          // the match operand.
          std::set<std::string> needed;
          auto add_refs = [&needed](const dsl::Expr* e) {
            if (e == nullptr) return;
            std::vector<std::string> r;
            CollectRefs(*e, &r);
            needed.insert(r.begin(), r.end());
          };
          for (size_t t = si + 1; t < steps.size(); ++t) {
            add_refs(steps[t].expr.get());
            if (steps[t].kind == Step::Kind::kSemiJoin ||
                steps[t].kind == Step::Kind::kJoin) {
              needed.insert(steps[t].name);
            }
          }
          add_refs(group_expr.get());
          for (const Agg& a : aggs) add_refs(a.expr.get());
          needed.insert(out_cols.begin(), out_cols.end());

          const std::string jpk = StrFormat("jpk%d", lo.gen++);
          lo.Emit(Let(jpk, Skeleton(SkeletonKind::kExpand,
                                    {Var(jcn), Var(pos_key)})));
          std::vector<std::pair<std::string, std::string>> moved;
          moved.emplace_back(s.name, jpk);
          for (const std::string& nm : needed) {
            if (nm == s.name) continue;
            if (lo.value_of.find(nm) == lo.value_of.end() &&
                lo.payload_src.find(nm) == lo.payload_src.end()) {
              continue;  // defined by a later step; nothing to rebase yet
            }
            AVM_ASSIGN_OR_RETURN(std::string pv, lo.PosName(nm));
            const std::string rb = StrFormat("jrb%d", lo.gen++);
            lo.Emit(Let(rb, Skeleton(SkeletonKind::kExpand,
                                     {Var(jcn), Var(pv)})));
            moved.emplace_back(nm, rb);
          }

          // Candidate entry index per pair: bucket start + within-bucket
          // fan-out offset; its key and build row via bounds-checked
          // gathers (every candidate index lies inside the entry lists).
          const std::string jfo = StrFormat("jfo%d", lo.gen++);
          lo.Emit(Let(jfo, Skeleton(SkeletonKind::kExpand, {Var(jcn)})));
          const std::string jcsr = StrFormat("jcs%d", lo.gen++);
          lo.Emit(Let(jcsr, Skeleton(SkeletonKind::kExpand,
                                     {Var(jcn), Var(jcs)})));
          const std::string jca = StrFormat("jca%d", lo.gen++);
          lo.Emit(Let(jca, Skeleton(SkeletonKind::kMap,
                                    {Lambda({"c", "o"}, Var("c") + Var("o")),
                                     Var(jcsr), Var(jfo)})));
          const std::string jck = StrFormat("jck%d", lo.gen++);
          lo.Emit(Let(jck, Skeleton(SkeletonKind::kGather,
                                    {Var(JoinEntKeyName(s.dim)), Var(jca)})));
          const std::string jcr = StrFormat("jcr%d", lo.gen++);
          lo.Emit(Let(jcr, Skeleton(SkeletonKind::kGather,
                                    {Var(JoinEntRowName(s.dim)), Var(jca)})));

          // Domain switch: the loop now runs over (probe row, candidate)
          // pairs. Rebased values are positional in the new domain; the
          // caches of the old domain no longer apply.
          for (const auto& [nm, rb] : moved) {
            lo.value_of[nm] = rb;
            lo.value_sel[rb] = "";
            lo.payload_src.erase(nm);
          }
          lo.pos_cache.clear();
          lo.pay_cache.clear();
          for (const auto& [nm, rb] : moved) lo.pos_cache[nm] = rb;
          lo.value_sel[jfo] = "";
          lo.value_sel[jca] = "";
          lo.value_sel[jck] = "";
          lo.value_sel[jcr] = "";
          lo.rebased = true;
          lo.cur_sel.clear();

          // Keep the pairs whose candidate really matches the probe key
          // (bucket collisions carry other keys).
          const std::string mem = StrFormat("mem%d", lo.gen);
          const std::string okay = StrFormat("okay%d", lo.gen);
          lo.Emit(Let(
              mem, Skeleton(SkeletonKind::kMap,
                            {Lambda({"a", "b"},
                                    Cast(TypeId::kI64,
                                         Eq(Var("a"), Var("b")))),
                             Var(jck), Var(jpk)})));
          lo.Emit(Let(
              okay, Skeleton(SkeletonKind::kFilter,
                             {Lambda({"x"}, Ne(Var("x"), ConstI(0))),
                              Var(mem)})));
          lo.cur_sel = okay;
          ++lo.gen;

          // This join's payloads gather lazily from the build-row-major
          // arrays through the candidate-row index.
          for (size_t j = 0; j < jd.cols.size(); ++j) {
            lo.payload_src[jd.cols[j]] = {jcr, JoinPayName(s.dim, j)};
          }
          break;
        }
        // ---- Dense fast path (unique in-domain keys; at most one match).
        // Clamp the probe key into the dense domain POSITIONALLY (every
        // chunk row, independent of any selection): out-of-domain and
        // negative keys map to the guard slot, whose match flag is 0, so
        // absent keys drop rows instead of failing the bounds-checked
        // gather. The positional index vector is reused for every payload
        // gather, under whatever selection is current at use time.
        const int64_t guard = jd.max_key + 1;
        // guard + inb*(k - guard): the in-domain predicate is evaluated
        // once per row (this is the hottest expression a join adds).
        ExprPtr inb = Cast(TypeId::kI64, Var("k") >= ConstI(0)) *
                      Cast(TypeId::kI64, Var("k") <= ConstI(jd.max_key));
        ExprPtr clamp =
            ConstI(guard) + std::move(inb) * (Var("k") - ConstI(guard));
        const std::string jidx = StrFormat("jidx%d", lo.gen);
        lo.Emit(Let(jidx,
                    Skeleton(SkeletonKind::kMap,
                             {Lambda({"k"}, std::move(clamp)),
                              Var(pos_key)})));
        lo.value_sel[jidx] = "";

        // Probe: gather the match flags under the current selection and
        // keep the hits.
        std::string midx = jidx;
        if (!lo.cur_sel.empty()) {
          const std::string keyed = StrFormat("key%d", lo.gen);
          lo.Emit(Let(keyed,
                      Skeleton(SkeletonKind::kMap,
                               {Lambda({"k", "_sel"}, Var("k")), Var(jidx),
                                Var(lo.cur_sel)})));
          midx = keyed;
        }
        const std::string mem = StrFormat("mem%d", lo.gen);
        const std::string okay = StrFormat("okay%d", lo.gen);
        lo.Emit(Let(mem, Skeleton(SkeletonKind::kGather,
                                  {Var(JoinMatchName(s.dim)), Var(midx)})));
        lo.Emit(Let(
            okay, Skeleton(SkeletonKind::kFilter,
                           {Lambda({"x"}, Ne(Var("x"), ConstI(0))),
                            Var(mem)})));
        lo.cur_sel = okay;
        ++lo.gen;

        // Payload columns materialize lazily (Lowering::UseName): the
        // first post-join use gathers them under the then-current
        // selection, so they compose with later filters and projections.
        for (size_t j = 0; j < jd.cols.size(); ++j) {
          lo.payload_src[jd.cols[j]] = {jidx, JoinPayName(s.dim, j)};
        }
        break;
      }
    }
  }

  const std::string carrier =
      lo.cur_sel.empty() ? ColValue(columns[0]) : lo.cur_sel;

  if (!row_mode) {
    // Group index per surviving row.
    if (group_expr != nullptr) {
      std::string grp_sel;
      AVM_ASSIGN_OR_RETURN(ExprPtr renamed, lo.Rename(*group_expr));
      AVM_ASSIGN_OR_RETURN(
          ExprPtr grp_map,
          lo.LowerMap(*group_expr, Cast(TypeId::kI64, std::move(renamed)),
                      &grp_sel));
      AVM_RETURN_NOT_OK(lo.RequireCurrent(grp_sel, "Aggregate group"));
      lo.Emit(Let("grp", std::move(grp_map)));
    } else {
      lo.Emit(Let("grp", Skeleton(SkeletonKind::kMap,
                                  {Lambda({"_s"}, ConstI(0)),
                                   Var(carrier)})));
    }

    // Scatter-aggregate each Sum/Count into its accumulator; the group
    // index array carries the selection, so only surviving rows contribute
    // (the value arrays are read positionally at the selected positions).
    for (const Agg& a : aggs) {
      const bool f64 =
          a.kind == AggKind::kSumF64 || a.kind == AggKind::kAvgF64;
      std::string values;
      if (a.expr == nullptr) {
        values = StrFormat("cnt_%s", a.name.c_str());
        lo.Emit(Let(values, Skeleton(SkeletonKind::kMap,
                                     {Lambda({"_s"}, ConstI(1)),
                                      Var(carrier)})));
      } else {
        std::vector<std::string> refs;
        CollectRefs(*a.expr, &refs);
        if (!f64 && refs.size() == 1 &&
            a.expr->kind == dsl::ExprKind::kVarRef) {
          AVM_ASSIGN_OR_RETURN(values, lo.UseName(refs[0]));
        } else {
          values = StrFormat("sv_%s", a.name.c_str());
          AVM_ASSIGN_OR_RETURN(ExprPtr renamed, lo.Rename(*a.expr));
          if (f64) renamed = Cast(TypeId::kF64, std::move(renamed));
          AVM_ASSIGN_OR_RETURN(
              ExprPtr m, lo.LowerMap(*a.expr, std::move(renamed), nullptr));
          lo.Emit(Let(values, std::move(m)));
        }
      }
      lo.Emit(ExprStmt(Skeleton(
          SkeletonKind::kScatter,
          {Var(AccName(a.name)), Var("grp"), Var(values),
           Lambda({"o", "v"}, Var("o") + Var("v"))})));
      if (a.kind == AggKind::kAvgF64) {
        const std::string ones = StrFormat("cnt_%s", a.name.c_str());
        lo.Emit(Let(ones, Skeleton(SkeletonKind::kMap,
                                   {Lambda({"_s"}, ConstI(1)),
                                    Var(carrier)})));
        lo.Emit(ExprStmt(Skeleton(
            SkeletonKind::kScatter,
            {Var(AvgCntName(a.name)), Var("grp"), Var(ones),
             Lambda({"o", "v"}, Var("o") + Var("v"))})));
      }
    }
  } else {
    // Row materialization: each output value is restricted to the FINAL
    // selection and appended to its per-morsel output window at position
    // `onum` — the write skeleton condenses the selection away, and its
    // return value advances the cursor. The engine gives every morsel its
    // own window; the Query's task hook reads `onum` back and partial-sorts
    // the window, and its finalize hook merges the runs at the barrier.
    std::string wrote;
    for (size_t i = 0; i < out_cols.size(); ++i) {
      const std::string& name = out_cols[i];
      AVM_ASSIGN_OR_RETURN(std::string v, lo.UseName(name));
      const std::string vsel = lo.value_sel.at(v);
      if (vsel.empty() && !lo.cur_sel.empty()) {
        const std::string ov = StrFormat("ov%d", lo.gen++);
        lo.Emit(Let(ov, Skeleton(SkeletonKind::kMap,
                                 {Lambda({"x", "_sel"}, Var("x")), Var(v),
                                  Var(lo.cur_sel)})));
        v = ov;
      } else {
        AVM_RETURN_NOT_OK(lo.RequireCurrent(
            vsel, StrFormat("Output '%s'", name.c_str()).c_str()));
      }
      const std::string ow = StrFormat("ow%d", lo.gen++);
      lo.Emit(Let(ow, Skeleton(SkeletonKind::kWrite,
                               {Var(OutName(name)), Var("onum"), Var(v)})));
      if (wrote.empty()) wrote = ow;
    }
    lo.Emit(Assign("onum", Var("onum") + Var(wrote)));
  }

  lo.Emit(Assign(
      "i", Var("i") + Skeleton(SkeletonKind::kLen,
                               {Var(ColValue(columns[0]))})));
  lo.Emit(If(Call(dsl::ScalarOp::kGe, {Var("i"), ConstI(rows)}), {Break()}));

  p.stmts = {MutDef("i"), Assign("i", ConstI(0))};
  if (row_mode) {
    p.stmts.push_back(MutDef("onum"));
    p.stmts.push_back(Assign("onum", ConstI(0)));
  }
  p.stmts.push_back(Loop(std::move(lo.body)));
  p.AssignIds();
  return p;
}

// ------------------------------------------------------------------- query

struct Query::Impl {
  std::shared_ptr<const internal::QuerySpec> spec;

  /// Result storage per aggregate (parallel to spec->aggs): i64 or f64
  /// accumulator, the AvgF64 hidden count, and the finalized averages.
  struct AggSlot {
    std::vector<int64_t> i64;
    std::vector<double> f64;
    std::vector<int64_t> cnt;
    std::vector<double> fin;
  };
  std::vector<AggSlot> aggs;

  /// Row mode: one window buffer per output column (parallel to
  /// spec->out_cols); morsel m owns rows [m.begin, m.end) of each window.
  struct OutCol {
    TypeId type = TypeId::kI64;
    std::vector<uint8_t> window;
  };
  std::vector<OutCol> outs;
  /// One sorted run per completed morsel (task hook, engine-serialized).
  struct Run {
    uint64_t begin = 0;
    uint64_t rows = 0;
    size_t morsel = 0;
    /// Spill mode: run index inside the SpillFile (begin is unused there —
    /// the rows live on disk, not in a window).
    uint64_t spill_run = UINT64_MAX;
  };
  std::vector<Run> runs;

  /// Barrier-merged result rows.
  std::vector<Query::ResultColumn> result;
  uint64_t result_rows = 0;

  ExecContext ctx;

  // --- out-of-core state (docs/SPILL.md) ---------------------------------
  /// Tracker of the current submission; set by OnPrepare, never null after.
  std::shared_ptr<MemoryTracker> tracker;
  /// Persistent bytes OnPrepare charged (side tables + resident windows);
  /// released by OnCleanup.
  uint64_t persistent_charge = 0;
  /// Whether the current submission runs with per-task scratch windows
  /// whose sorted runs are sealed to disk.
  bool spill_mode = false;
  /// Lazily created by the first spilled run; closed (unlinked) by
  /// OnCleanup.
  std::unique_ptr<storage::SpillFile> spill;

  Impl(std::shared_ptr<const internal::QuerySpec> s, uint64_t total_rows)
      : spec(std::move(s)),
        ctx([spec = spec](int64_t rows) { return spec->Lower(rows); },
            total_rows) {}
  ~Impl() { OnCleanup(); }

  Status OnPrepare(const MemoryPlan& plan, PrepareOutcome* out);
  void OnCleanup();
  Status OnTask(const interp::Interpreter& in, const Morsel& m);
  void SortWindow(uint64_t begin, uint64_t rows);
  void SortBases(const std::vector<uint8_t*>& bases, uint64_t rows);
  Status Finalize();
  void FinalizeRowMode();
  Status FinalizeSpilled();
  void FinalizeAggMode();
};

Status Query::Impl::OnTask(const interp::Interpreter& in, const Morsel& m) {
  if (!spec->row_mode) return Status::OK();
  AVM_ASSIGN_OR_RETURN(interp::ScalarValue n, in.GetScalar("onum"));
  const int64_t count = n.AsI64();
  // This morsel's window spans [begin, end) x fan_out rows.
  const uint64_t limit = m.rows() * spec->fan_out;
  if (count < 0 || static_cast<uint64_t>(count) > limit) {
    return Status::Internal(
        StrFormat("morsel output count %lld out of range [0, %llu]",
                  (long long)count, (unsigned long long)limit));
  }
  if (spill_mode) {
    // Spill path: sort this task's scratch window and seal it to disk as
    // one run. Task hooks are engine-serialized (merge mutex), so the
    // SpillFile and the context's spill counters need no extra locking.
    if (count == 0) return Status::OK();
    std::vector<uint8_t*> bases(outs.size());
    for (size_t c = 0; c < outs.size(); ++c) {
      const interp::DataBinding* b =
          in.FindBinding(Spec::OutName(spec->out_cols[c]));
      if (b == nullptr || b->raw == nullptr) {
        return Status::Internal("scratch window missing for output column " +
                                spec->out_cols[c]);
      }
      bases[c] = static_cast<uint8_t*>(b->raw);
    }
    if (spec->has_order && count > 1) {
      SortBases(bases, static_cast<uint64_t>(count));
    }
    if (spill == nullptr) {
      AVM_ASSIGN_OR_RETURN(spill,
                           storage::SpillFile::Create(spec->out_types));
    }
    const std::vector<const uint8_t*> cols(bases.begin(), bases.end());
    AVM_ASSIGN_OR_RETURN(
        const uint64_t run_id,
        spill->AppendRun(m.index, static_cast<uint64_t>(count), cols));
    runs.push_back({0, static_cast<uint64_t>(count), m.index, run_id});
    ctx.spill_stats().spill_runs += 1;
    ctx.spill_stats().bytes_spilled = spill->bytes_written();
    return Status::OK();
  }
  runs.push_back(
      {m.begin * spec->fan_out, static_cast<uint64_t>(count), m.index});
  if (spec->has_order && count > 1) {
    SortWindow(m.begin * spec->fan_out, static_cast<uint64_t>(count));
  }
  return Status::OK();
}

void Query::Impl::SortWindow(uint64_t begin, uint64_t rows) {
  std::vector<uint8_t*> bases(outs.size());
  for (size_t c = 0; c < outs.size(); ++c) {
    bases[c] = outs[c].window.data() + begin * TypeWidth(outs[c].type);
  }
  SortBases(bases, rows);
}

void Query::Impl::SortBases(const std::vector<uint8_t*>& bases,
                            uint64_t rows) {
  const TypeId kt = outs[spec->order_key_index].type;
  const uint8_t* kbase = bases[spec->order_key_index];
  std::vector<uint64_t> perm(rows);
  std::iota(perm.begin(), perm.end(), uint64_t{0});
  const bool asc = spec->order_dir == SortDir::kAscending;
  // Stable in both directions: ties keep input-row order, which makes the
  // merged result identical to a global stable sort regardless of how the
  // input was cut into morsels.
  std::stable_sort(perm.begin(), perm.end(), [&](uint64_t a, uint64_t b) {
    return asc ? LessAt(kt, kbase, a, b) : LessAt(kt, kbase, b, a);
  });
  std::vector<uint8_t> tmp;
  for (size_t c = 0; c < outs.size(); ++c) {
    const size_t w = TypeWidth(outs[c].type);
    uint8_t* base = bases[c];
    tmp.resize(rows * w);
    for (uint64_t r = 0; r < rows; ++r) {
      std::memcpy(&tmp[r * w], base + static_cast<size_t>(perm[r]) * w, w);
    }
    std::memcpy(base, tmp.data(), tmp.size());
  }
}

Status Query::Impl::Finalize() {
  if (spec->row_mode) {
    if (spill_mode) return FinalizeSpilled();
    FinalizeRowMode();
  } else {
    FinalizeAggMode();
  }
  return Status::OK();
}

void Query::Impl::FinalizeRowMode() {
  // Morsel order, not completion order: the merge below breaks ties toward
  // the earlier run, so the result is deterministic (equal to the serial
  // stable sort) for any morsel count.
  std::sort(runs.begin(), runs.end(),
            [](const Run& a, const Run& b) { return a.morsel < b.morsel; });
  uint64_t total = 0;
  for (const Run& r : runs) total += r.rows;

  result.clear();
  result.reserve(outs.size());
  for (size_t i = 0; i < outs.size(); ++i) {
    result.push_back({spec->out_cols[i], outs[i].type,
                      std::vector<uint8_t>(total * TypeWidth(outs[i].type))});
  }
  result_rows = total;

  auto copy_row = [&](uint64_t src, uint64_t dst) {
    for (size_t c = 0; c < outs.size(); ++c) {
      const size_t w = TypeWidth(outs[c].type);
      std::memcpy(&result[c].data[dst * w], &outs[c].window[src * w], w);
    }
  };

  if (!spec->has_order) {
    uint64_t dst = 0;
    for (const Run& r : runs) {
      for (uint64_t i = 0; i < r.rows; ++i) copy_row(r.begin + i, dst++);
    }
  } else {
    const OutCol& kc = outs[spec->order_key_index];
    const uint8_t* kbase = kc.window.data();
    const bool asc = spec->order_dir == SortDir::kAscending;
    // Balanced pairwise merge of the sorted runs' window indices:
    // O(total · log runs), and taking the LEFT (earlier-run) side on ties
    // keeps the result equal to a global stable sort.
    std::vector<std::vector<uint64_t>> seqs;
    seqs.reserve(runs.size());
    for (const Run& r : runs) {
      std::vector<uint64_t> s(r.rows);
      std::iota(s.begin(), s.end(), r.begin);
      seqs.push_back(std::move(s));
    }
    auto right_wins = [&](uint64_t l, uint64_t r) {
      return asc ? LessAt(kc.type, kbase, r, l) : LessAt(kc.type, kbase, l, r);
    };
    while (seqs.size() > 1) {
      std::vector<std::vector<uint64_t>> next;
      next.reserve((seqs.size() + 1) / 2);
      for (size_t p = 0; p + 1 < seqs.size(); p += 2) {
        const std::vector<uint64_t>& a = seqs[p];
        const std::vector<uint64_t>& b = seqs[p + 1];
        std::vector<uint64_t> m;
        m.reserve(a.size() + b.size());
        size_t i = 0, j = 0;
        while (i < a.size() && j < b.size()) {
          if (right_wins(a[i], b[j])) {
            m.push_back(b[j++]);
          } else {
            m.push_back(a[i++]);
          }
        }
        m.insert(m.end(), a.begin() + static_cast<ptrdiff_t>(i), a.end());
        m.insert(m.end(), b.begin() + static_cast<ptrdiff_t>(j), b.end());
        next.push_back(std::move(m));
      }
      if (seqs.size() % 2 == 1) next.push_back(std::move(seqs.back()));
      seqs = std::move(next);
    }
    if (!seqs.empty()) {
      for (uint64_t dst = 0; dst < total; ++dst) {
        copy_row(seqs[0][dst], dst);
      }
    }
  }
  runs.clear();
}

Status Query::Impl::FinalizeSpilled() {
  // Morsel order for the same determinism argument as FinalizeRowMode: the
  // k-way argmin below replaces its candidate only on STRICTLY better keys,
  // so the earliest run wins ties and the merge equals a global stable
  // sort — bit-identical to the in-memory path at any worker count.
  std::sort(runs.begin(), runs.end(),
            [](const Run& a, const Run& b) { return a.morsel < b.morsel; });
  uint64_t total = 0;
  for (const Run& r : runs) total += r.rows;

  result.clear();
  result.reserve(outs.size());
  for (size_t i = 0; i < outs.size(); ++i) {
    result.push_back({spec->out_cols[i], outs[i].type,
                      std::vector<uint8_t>(total * TypeWidth(outs[i].type))});
  }
  result_rows = total;
  if (total == 0) {
    runs.clear();
    return Status::OK();
  }
  if (spill == nullptr) {
    return Status::Internal("spilled query finalized without a spill file");
  }
  AVM_RETURN_NOT_OK(spill->Seal());
  AVM_RETURN_NOT_OK(spill->ValidateChecksums());

  const size_t ncols = outs.size();
  // Per-run streaming cursor: one merge-chunk buffer per column, refilled
  // from the spill file as the merge consumes rows.
  struct RunCursor {
    uint64_t run_id = 0;
    uint64_t rows = 0;
    uint64_t next = 0;       // next run-relative row to consume
    uint64_t buf_begin = 0;  // first run row currently buffered
    uint64_t buf_len = 0;
    std::vector<std::vector<uint8_t>> cols;
  };
  const uint64_t kMergeChunkRows = 4096;
  std::vector<RunCursor> cur(runs.size());
  for (size_t i = 0; i < runs.size(); ++i) {
    cur[i].run_id = runs[i].spill_run;
    cur[i].rows = runs[i].rows;
    cur[i].cols.resize(ncols);
  }
  // The merge working set (runs x columns x chunk) is bounded task-style
  // scratch: account it transiently so peak_tracked_bytes reflects it.
  uint64_t row_bytes = 0;
  for (size_t c = 0; c < ncols; ++c) row_bytes += TypeWidth(outs[c].type);
  ScopedTransientCharge merge_charge(
      tracker.get(), kMergeChunkRows * row_bytes * cur.size());

  auto fill = [&](RunCursor& rc) -> Status {
    rc.buf_begin = rc.next;
    rc.buf_len = std::min(kMergeChunkRows, rc.rows - rc.next);
    for (size_t c = 0; c < ncols; ++c) {
      const size_t w = TypeWidth(outs[c].type);
      rc.cols[c].resize(rc.buf_len * w);
      AVM_RETURN_NOT_OK(spill->ReadRunChunk(rc.run_id, c, rc.buf_begin,
                                            rc.buf_len, rc.cols[c].data()));
    }
    return Status::OK();
  };

  if (!spec->has_order) {
    // Unordered: concatenate the runs in morsel order, chunk by chunk.
    uint64_t dst = 0;
    for (RunCursor& rc : cur) {
      while (rc.next < rc.rows) {
        AVM_RETURN_NOT_OK(fill(rc));
        for (size_t c = 0; c < ncols; ++c) {
          const size_t w = TypeWidth(outs[c].type);
          std::memcpy(&result[c].data[dst * w], rc.cols[c].data(),
                      rc.buf_len * w);
        }
        dst += rc.buf_len;
        rc.next += rc.buf_len;
      }
    }
  } else {
    const TypeId kt = outs[spec->order_key_index].type;
    const size_t kw = TypeWidth(kt);
    const bool asc = spec->order_dir == SortDir::kAscending;
    for (RunCursor& rc : cur) {
      if (rc.rows > 0) AVM_RETURN_NOT_OK(fill(rc));
    }
    for (uint64_t dst = 0; dst < total; ++dst) {
      size_t best = cur.size();
      const uint8_t* best_key = nullptr;
      for (size_t i = 0; i < cur.size(); ++i) {
        RunCursor& rc = cur[i];
        if (rc.next >= rc.rows) continue;
        if (rc.next >= rc.buf_begin + rc.buf_len) {
          AVM_RETURN_NOT_OK(fill(rc));
        }
        const uint8_t* k =
            rc.cols[spec->order_key_index].data() + (rc.next - rc.buf_begin) * kw;
        const bool better =
            best == cur.size() ||
            (asc ? ValueLess(kt, k, best_key) : ValueLess(kt, best_key, k));
        if (better) {
          best = i;
          best_key = k;
        }
      }
      RunCursor& rc = cur[best];
      const uint64_t off = rc.next - rc.buf_begin;
      for (size_t c = 0; c < ncols; ++c) {
        const size_t w = TypeWidth(outs[c].type);
        std::memcpy(&result[c].data[dst * w], &rc.cols[c][off * w], w);
      }
      ++rc.next;
    }
  }
  runs.clear();
  return Status::OK();
}

Status Query::Impl::OnPrepare(const MemoryPlan& plan, PrepareOutcome* out) {
  OnCleanup();  // re-submission: drop the previous run's charges/spill file
  tracker = plan.tracker;
  spill_mode = false;

  const Spec& s = *spec;
  // Persistent side tables: semijoin dims, join lookup structures and
  // payload copies, aggregate slots — resident for the whole query.
  uint64_t side = 0;
  for (const auto& d : s.dims) side += d.size() * sizeof(int64_t);
  for (const Spec::JoinDim& jd : s.joins) {
    side += (jd.match.size() + jd.bkt_start.size() + jd.ent_key.size() +
             jd.ent_row.size()) *
            sizeof(int64_t);
    for (const auto& p : jd.pays) side += p.data.size();
  }
  for (const AggSlot& a : aggs) {
    side += (a.i64.size() + a.cnt.size()) * sizeof(int64_t) +
            (a.f64.size() + a.fin.size()) * sizeof(double);
  }
  if (side > 0) {
    AVM_RETURN_NOT_OK(tracker->TryCharge(side, "query side tables"));
    persistent_charge += side;
  }
  if (!s.row_mode) return Status::OK();

  // Row mode: prefer keeping the full output windows resident.
  uint64_t width_sum = 0;
  for (TypeId t : s.out_types) width_sum += TypeWidth(t);
  const uint64_t wrows = s.table->num_rows() * s.fan_out;
  const uint64_t window_bytes = std::max<uint64_t>(wrows, 1) * width_sum;
  Status st = tracker->TryCharge(window_bytes, "ORDER BY output windows");
  if (st.ok()) {
    persistent_charge += window_bytes;
    outs.resize(s.out_cols.size());
    for (size_t i = 0; i < s.out_cols.size(); ++i) {
      OutCol& oc = outs[i];
      oc.type = s.out_types[i];
      // At least one element: an empty table still binds a non-null window
      // (zero-count writes are no-ops, but need a valid writable array).
      oc.window.assign(std::max<uint64_t>(wrows, 1) * TypeWidth(oc.type), 0);
      ctx.BindPartialOutput(
          Spec::OutName(s.out_cols[i]),
          interp::DataBinding::Raw(oc.type, oc.window.data(), wrows, true),
          s.fan_out);
    }
    return Status::OK();
  }
  if (st.code() != StatusCode::kResourceExhausted) return st;

  // Spill mode: per-task scratch windows, sorted runs sealed to disk. Cap
  // morsels so the concurrent workers' scratch fits in what remains of the
  // budget, floor-aligned to the chunk size (PartitionRows rounds morsels
  // UP to chunk alignment, so a floor-aligned cap stays within budget).
  const uint64_t per_input_row = std::max<uint64_t>(width_sum * s.fan_out, 1);
  const uint64_t workers = std::max<size_t>(plan.workers, 1);
  const uint32_t chunk = std::max<uint32_t>(plan.chunk_size, 1);
  // The viability check is against the BUDGET, not currently-available
  // bytes: a budget that cannot hold even one chunk-sized morsel window is
  // a deterministic, client-visible configuration error, while transient
  // pressure from concurrent queries merely degrades the morsel size below
  // (scratch is a transient charge with documented bounded overshoot, so
  // it must never turn into a spurious failure).
  if (static_cast<uint64_t>(chunk) * per_input_row > tracker->budget()) {
    return Status::ResourceExhausted(StrFormat(
        "memory budget %llu too small for out-of-core ORDER BY: one "
        "%u-row morsel window needs %llu bytes",
        (unsigned long long)tracker->budget(), (unsigned)chunk,
        (unsigned long long)(static_cast<uint64_t>(chunk) * per_input_row)));
  }
  uint64_t cap = tracker->available() / workers / per_input_row;
  cap -= cap % chunk;
  if (cap == 0) cap = chunk;
  outs.resize(s.out_cols.size());
  for (size_t i = 0; i < s.out_cols.size(); ++i) {
    outs[i].type = s.out_types[i];
    // Drop any resident window a previous in-memory submission left.
    outs[i].window = std::vector<uint8_t>();
    ctx.BindPartialOutputScratch(Spec::OutName(s.out_cols[i]),
                                 s.out_types[i], s.fan_out);
  }
  spill_mode = true;
  out->max_morsel_rows = cap;
  return Status::OK();
}

void Query::Impl::OnCleanup() {
  if (spill != nullptr) {
    spill->Close();
    spill.reset();
  }
  if (tracker != nullptr && persistent_charge > 0) {
    tracker->Release(persistent_charge);
  }
  persistent_charge = 0;
}

void Query::Impl::FinalizeAggMode() {
  using AggKind = internal::QuerySpec::AggKind;
  const size_t groups = spec->num_groups;
  for (size_t a = 0; a < aggs.size(); ++a) {
    if (spec->aggs[a].kind != AggKind::kAvgF64) continue;
    for (size_t g = 0; g < groups; ++g) {
      aggs[a].fin[g] =
          aggs[a].cnt[g] != 0
              ? aggs[a].f64[g] / static_cast<double>(aggs[a].cnt[g])
              : 0.0;
    }
  }
  if (!spec->has_order) return;

  // Materialize the per-group rows, sorted: "group" plus one column per
  // aggregate (finalized averages for AvgF64).
  std::vector<uint32_t> perm(groups);
  std::iota(perm.begin(), perm.end(), 0u);
  const bool asc = spec->order_dir == SortDir::kAscending;
  if (spec->order_by != "group") {
    size_t key = 0;
    for (size_t a = 0; a < aggs.size(); ++a) {
      if (spec->aggs[a].name == spec->order_by) key = a;
    }
    const internal::QuerySpec::Agg& ka = spec->aggs[key];
    auto key_less = [&](uint32_t x, uint32_t y) {
      switch (ka.kind) {
        case AggKind::kSum:
        case AggKind::kCount:
          return aggs[key].i64[x] < aggs[key].i64[y];
        case AggKind::kSumF64:
          return aggs[key].f64[x] < aggs[key].f64[y];
        case AggKind::kAvgF64:
          return aggs[key].fin[x] < aggs[key].fin[y];
      }
      return false;
    };
    std::stable_sort(perm.begin(), perm.end(), [&](uint32_t x, uint32_t y) {
      return asc ? key_less(x, y) : key_less(y, x);
    });
  } else if (!asc) {
    std::reverse(perm.begin(), perm.end());
  }

  result.clear();
  result_rows = groups;
  {
    Query::ResultColumn gc{"group", TypeId::kI64,
                           std::vector<uint8_t>(groups * sizeof(int64_t))};
    auto* g64 = reinterpret_cast<int64_t*>(gc.data.data());
    for (size_t g = 0; g < groups; ++g) g64[g] = perm[g];
    result.push_back(std::move(gc));
  }
  for (size_t a = 0; a < aggs.size(); ++a) {
    const internal::QuerySpec::Agg& sa = spec->aggs[a];
    const bool f64 = sa.kind == AggKind::kSumF64 || sa.kind == AggKind::kAvgF64;
    Query::ResultColumn rc{sa.name, f64 ? TypeId::kF64 : TypeId::kI64,
                           std::vector<uint8_t>(groups * 8)};
    for (size_t g = 0; g < groups; ++g) {
      if (f64) {
        reinterpret_cast<double*>(rc.data.data())[g] =
            sa.kind == AggKind::kAvgF64 ? aggs[a].fin[perm[g]]
                                        : aggs[a].f64[perm[g]];
      } else {
        reinterpret_cast<int64_t*>(rc.data.data())[g] = aggs[a].i64[perm[g]];
      }
    }
    result.push_back(std::move(rc));
  }
}

Query::Query() = default;
Query::Query(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
Query::Query(Query&&) noexcept = default;
Query& Query::operator=(Query&&) noexcept = default;
Query::~Query() = default;

namespace {
/// Empty (default-constructed or moved-from) queries fail loudly instead
/// of dereferencing null.
void CheckBuilt(const void* impl) {
  if (impl == nullptr) {
    Status::InvalidArgument("Query is empty (not built, or moved-from)")
        .Abort("Query");
  }
}
}  // namespace

ExecContext& Query::context() {
  CheckBuilt(impl_.get());
  return impl_->ctx;
}

Result<dsl::Program> Query::MakeProgram(int64_t rows) const {
  if (impl_ == nullptr) {
    return Status::InvalidArgument("Query is empty (not built)");
  }
  return impl_->spec->Lower(rows);
}

size_t Query::num_groups() const {
  CheckBuilt(impl_.get());
  return impl_->spec->num_groups;
}

const std::vector<int64_t>& Query::aggregate(const std::string& name) const {
  CheckBuilt(impl_.get());
  using AggKind = internal::QuerySpec::AggKind;
  for (size_t a = 0; a < impl_->aggs.size(); ++a) {
    if (impl_->spec->aggs[a].name != name) continue;
    const AggKind k = impl_->spec->aggs[a].kind;
    if (k == AggKind::kSumF64 || k == AggKind::kAvgF64) {
      Status::InvalidArgument("aggregate " + name +
                              " is floating-point; use aggregate_f64")
          .Abort("Query");
    }
    return impl_->aggs[a].i64;
  }
  Status::InvalidArgument("no aggregate named " + name).Abort("Query");
  static const std::vector<int64_t> kEmpty;
  return kEmpty;
}

const std::vector<double>& Query::aggregate_f64(
    const std::string& name) const {
  CheckBuilt(impl_.get());
  using AggKind = internal::QuerySpec::AggKind;
  for (size_t a = 0; a < impl_->aggs.size(); ++a) {
    if (impl_->spec->aggs[a].name != name) continue;
    switch (impl_->spec->aggs[a].kind) {
      case AggKind::kSumF64:
        return impl_->aggs[a].f64;
      case AggKind::kAvgF64:
        return impl_->aggs[a].fin;
      default:
        Status::InvalidArgument("aggregate " + name +
                                " is integer; use aggregate()")
            .Abort("Query");
    }
  }
  Status::InvalidArgument("no aggregate named " + name).Abort("Query");
  static const std::vector<double> kEmpty;
  return kEmpty;
}

Result<int64_t> Query::aggregate_at(const std::string& name,
                                    size_t group) const {
  if (impl_ == nullptr) {
    return Status::InvalidArgument("Query is empty (not built)");
  }
  using AggKind = internal::QuerySpec::AggKind;
  for (size_t a = 0; a < impl_->aggs.size(); ++a) {
    if (impl_->spec->aggs[a].name != name) continue;
    const AggKind k = impl_->spec->aggs[a].kind;
    if (k == AggKind::kSumF64 || k == AggKind::kAvgF64) {
      return Status::InvalidArgument("aggregate " + name +
                                     " is floating-point; use aggregate_f64");
    }
    if (group >= impl_->aggs[a].i64.size()) {
      return Status::OutOfRange(StrFormat("group %zu out of %zu", group,
                                          impl_->aggs[a].i64.size()));
    }
    return impl_->aggs[a].i64[group];
  }
  return Status::InvalidArgument("no aggregate named " + name);
}

uint64_t Query::num_result_rows() const {
  CheckBuilt(impl_.get());
  return impl_->result_rows;
}

const std::vector<Query::ResultColumn>& Query::result_columns() const {
  CheckBuilt(impl_.get());
  return impl_->result;
}

const Query::ResultColumn& Query::result_column(
    const std::string& name) const {
  CheckBuilt(impl_.get());
  for (const ResultColumn& c : impl_->result) {
    if (c.name == name) return c;
  }
  Status::InvalidArgument("no result column named " + name).Abort("Query");
  static const ResultColumn kEmpty;
  return kEmpty;
}

void Query::ResetAggregates() {
  CheckBuilt(impl_.get());
  for (Impl::AggSlot& a : impl_->aggs) {
    std::fill(a.i64.begin(), a.i64.end(), 0);
    std::fill(a.f64.begin(), a.f64.end(), 0.0);
    std::fill(a.cnt.begin(), a.cnt.end(), 0);
    std::fill(a.fin.begin(), a.fin.end(), 0.0);
  }
  impl_->runs.clear();
  impl_->result.clear();
  impl_->result_rows = 0;
}

// ----------------------------------------------------------------- builder

QueryBuilder::QueryBuilder(const Table& table)
    : spec_(std::make_shared<Spec>()) {
  spec_->table = &table;
}

QueryBuilder::~QueryBuilder() = default;

Status QueryBuilder::Fail(Status st) {
  if (deferred_error_.ok()) deferred_error_ = std::move(st);
  return deferred_error_;
}

internal::QuerySpec& QueryBuilder::MutableSpec() {
  // Copy-on-write: after Build() the spec is shared with the built Query,
  // so the next mutating call — or the next Build(), whose Resolve()
  // rewrites derived state — forks it. The single-Build common case never
  // pays the copy.
  if (spec_.use_count() > 1) {
    spec_ = std::make_shared<Spec>(*spec_);
    // Drop the fork's copy of the densified join lookup arrays (they can
    // be ~128 MiB per join and belong to the built Query's spec); the next
    // Resolve() re-densifies from the build table — deliberately, since
    // its contents may have changed between Builds.
    for (Spec::JoinDim& jd : spec_->joins) {
      jd.match = {};
      jd.pays = {};
      jd.bkt_start = {};
      jd.ent_key = {};
      jd.ent_row = {};
    }
  }
  return *spec_;
}

QueryBuilder& QueryBuilder::Filter(dsl::ExprPtr predicate) {
  if (predicate == nullptr) {
    Fail(Status::InvalidArgument("Filter: null predicate"));
    return *this;
  }
  MutableSpec().steps.push_back(
      {Spec::Step::Kind::kFilter, "", std::move(predicate), 0});
  return *this;
}

QueryBuilder& QueryBuilder::Project(const std::string& name,
                                    dsl::ExprPtr expr) {
  if (expr == nullptr) {
    Fail(Status::InvalidArgument("Project: null expression"));
    return *this;
  }
  MutableSpec().steps.push_back(
      {Spec::Step::Kind::kProject, name, std::move(expr), 0});
  return *this;
}

QueryBuilder& QueryBuilder::SemiJoin(const std::string& key,
                                     std::vector<int64_t> membership) {
  Spec& spec = MutableSpec();
  spec.dims.push_back(std::move(membership));
  spec.steps.push_back(
      {Spec::Step::Kind::kSemiJoin, key, nullptr, spec.dims.size() - 1});
  return *this;
}

QueryBuilder& QueryBuilder::Join(const Table& build,
                                 const std::string& probe_key,
                                 const std::string& build_key,
                                 std::vector<std::string> payload) {
  Spec& spec = MutableSpec();
  Spec::JoinDim jd;
  jd.build = &build;
  jd.build_key = build_key;
  jd.payload = std::move(payload);
  spec.joins.push_back(std::move(jd));
  spec.steps.push_back(
      {Spec::Step::Kind::kJoin, probe_key, nullptr, spec.joins.size() - 1});
  return *this;
}

QueryBuilder& QueryBuilder::SetJoinStrategy(JoinStrategy strategy) {
  MutableSpec().join_strategy = strategy;
  return *this;
}

QueryBuilder& QueryBuilder::Aggregate(dsl::ExprPtr group_expr,
                                      size_t num_groups) {
  if (group_expr == nullptr || num_groups == 0) {
    Fail(Status::InvalidArgument(
        "Aggregate: need a group expression and num_groups >= 1"));
    return *this;
  }
  Spec& spec = MutableSpec();
  spec.group_expr = std::move(group_expr);
  spec.num_groups = num_groups;
  return *this;
}

QueryBuilder& QueryBuilder::Sum(const std::string& name, dsl::ExprPtr expr) {
  if (expr == nullptr) {
    Fail(Status::InvalidArgument("Sum: null expression"));
    return *this;
  }
  MutableSpec().aggs.push_back(
      {name, Spec::AggKind::kSum, std::move(expr)});
  return *this;
}

QueryBuilder& QueryBuilder::SumF64(const std::string& name,
                                   dsl::ExprPtr expr) {
  if (expr == nullptr) {
    Fail(Status::InvalidArgument("SumF64: null expression"));
    return *this;
  }
  MutableSpec().aggs.push_back(
      {name, Spec::AggKind::kSumF64, std::move(expr)});
  return *this;
}

QueryBuilder& QueryBuilder::AvgF64(const std::string& name,
                                   dsl::ExprPtr expr) {
  if (expr == nullptr) {
    Fail(Status::InvalidArgument("AvgF64: null expression"));
    return *this;
  }
  MutableSpec().aggs.push_back(
      {name, Spec::AggKind::kAvgF64, std::move(expr)});
  return *this;
}

QueryBuilder& QueryBuilder::Count(const std::string& name) {
  MutableSpec().aggs.push_back({name, Spec::AggKind::kCount, nullptr});
  return *this;
}

QueryBuilder& QueryBuilder::Output(const std::string& name) {
  MutableSpec().outputs.push_back(name);
  return *this;
}

QueryBuilder& QueryBuilder::OrderBy(const std::string& key, SortDir dir) {
  Spec& spec = MutableSpec();
  if (spec.has_order) {
    Fail(Status::InvalidArgument("OrderBy may only be called once"));
    return *this;
  }
  spec.has_order = true;
  spec.order_by = key;
  spec.order_dir = dir;
  return *this;
}

Result<Query> QueryBuilder::Build() {
  AVM_RETURN_NOT_OK(deferred_error_);
  // Resolve() mutates derived state, so it must not touch a spec some
  // earlier Build() handed out.
  AVM_RETURN_NOT_OK(MutableSpec().Resolve());

  // Lower once now so shape/type errors surface at Build time instead of
  // from a worker thread mid-query, then statically verify the lowered
  // program against the roles this Build is about to bind (always on:
  // docs/VERIFIER.md level 1). The probe is representative — lowering is
  // deterministic and row-count-independent in shape.
  {
    AVM_ASSIGN_OR_RETURN(dsl::Program probe, spec_->Lower(4096));
    AVM_RETURN_NOT_OK(dsl::TypeCheck(&probe));
    const Spec& bspec = *spec_;
    std::vector<analysis::BindingInfo> binds;
    for (const auto& c : bspec.columns) {
      binds.push_back({c, analysis::BindingRole::kInput, 1});
    }
    for (size_t i = 0; i < bspec.dims.size(); ++i) {
      binds.push_back({bspec.DimName(i), analysis::BindingRole::kShared, 1});
    }
    for (size_t i = 0; i < bspec.joins.size(); ++i) {
      const Spec::JoinDim& jd = bspec.joins[i];
      if (jd.dense) {
        binds.push_back(
            {bspec.JoinMatchName(i), analysis::BindingRole::kShared, 1});
      } else {
        binds.push_back(
            {bspec.JoinBucketName(i), analysis::BindingRole::kShared, 1});
        binds.push_back(
            {bspec.JoinEntKeyName(i), analysis::BindingRole::kShared, 1});
        binds.push_back(
            {bspec.JoinEntRowName(i), analysis::BindingRole::kShared, 1});
      }
      for (size_t j = 0; j < jd.pays.size(); ++j) {
        binds.push_back(
            {bspec.JoinPayName(i, j), analysis::BindingRole::kShared, 1});
      }
    }
    for (const Spec::Agg& sa : bspec.aggs) {
      binds.push_back(
          {Spec::AccName(sa.name), analysis::BindingRole::kAccumulator, 1});
      if (sa.kind == Spec::AggKind::kAvgF64) {
        binds.push_back({Spec::AvgCntName(sa.name),
                         analysis::BindingRole::kAccumulator, 1});
      }
    }
    if (bspec.row_mode) {
      for (const auto& oc : bspec.out_cols) {
        binds.push_back({Spec::OutName(oc),
                         analysis::BindingRole::kPartialOutput,
                         bspec.fan_out});
      }
    }
    analysis::VerifyResult vr = analysis::VerifyProgram(probe, binds);
    if (!vr.clean()) {
      return Status::InvalidArgument(
          "lowered program failed static verification:\n" + vr.ToString());
    }
  }

  auto impl = std::make_unique<Query::Impl>(spec_, spec_->table->num_rows());
  const Spec& spec = *impl->spec;
  for (size_t i = 0; i < spec.columns.size(); ++i) {
    impl->ctx.BindInputColumn(spec.columns[i], spec.column_ptrs[i]);
  }
  for (size_t i = 0; i < spec.dims.size(); ++i) {
    impl->ctx.BindShared(
        spec.DimName(i),
        interp::DataBinding::Raw(
            TypeId::kI64,
            const_cast<int64_t*>(spec.dims[i].data()), spec.dims[i].size()));
  }
  for (size_t i = 0; i < spec.joins.size(); ++i) {
    const Spec::JoinDim& jd = spec.joins[i];
    if (jd.dense) {
      impl->ctx.BindShared(
          spec.JoinMatchName(i),
          interp::DataBinding::Raw(TypeId::kI64,
                                   const_cast<int64_t*>(jd.match.data()),
                                   jd.match.size()));
    } else {
      impl->ctx.BindShared(
          spec.JoinBucketName(i),
          interp::DataBinding::Raw(TypeId::kI64,
                                   const_cast<int64_t*>(jd.bkt_start.data()),
                                   jd.bkt_start.size()));
      impl->ctx.BindShared(
          spec.JoinEntKeyName(i),
          interp::DataBinding::Raw(TypeId::kI64,
                                   const_cast<int64_t*>(jd.ent_key.data()),
                                   jd.ent_key.size()));
      impl->ctx.BindShared(
          spec.JoinEntRowName(i),
          interp::DataBinding::Raw(TypeId::kI64,
                                   const_cast<int64_t*>(jd.ent_row.data()),
                                   jd.ent_row.size()));
    }
    for (size_t j = 0; j < jd.pays.size(); ++j) {
      impl->ctx.BindShared(
          spec.JoinPayName(i, j),
          interp::DataBinding::Raw(
              jd.pays[j].type, const_cast<uint8_t*>(jd.pays[j].data.data()),
              jd.pays[j].data.size() / TypeWidth(jd.pays[j].type)));
    }
  }
  impl->aggs.resize(spec.aggs.size());
  for (size_t a = 0; a < spec.aggs.size(); ++a) {
    const Spec::Agg& sa = spec.aggs[a];
    Query::Impl::AggSlot& slot = impl->aggs[a];
    switch (sa.kind) {
      case Spec::AggKind::kSum:
      case Spec::AggKind::kCount:
        slot.i64.assign(spec.num_groups, 0);
        impl->ctx.BindAccumulator(Spec::AccName(sa.name), TypeId::kI64,
                                  slot.i64.data(), spec.num_groups);
        break;
      case Spec::AggKind::kSumF64:
        slot.f64.assign(spec.num_groups, 0.0);
        impl->ctx.BindAccumulator(Spec::AccName(sa.name), TypeId::kF64,
                                  slot.f64.data(), spec.num_groups);
        break;
      case Spec::AggKind::kAvgF64:
        slot.f64.assign(spec.num_groups, 0.0);
        slot.cnt.assign(spec.num_groups, 0);
        slot.fin.assign(spec.num_groups, 0.0);
        impl->ctx.BindAccumulator(Spec::AccName(sa.name), TypeId::kF64,
                                  slot.f64.data(), spec.num_groups);
        impl->ctx.BindAccumulator(Spec::AvgCntName(sa.name), TypeId::kI64,
                                  slot.cnt.data(), spec.num_groups);
        break;
    }
  }
  if (spec.row_mode) {
    // Shape-only placeholders; the prepare hook below allocates and binds
    // the actual windows per submission. Windows hold the worst case of
    // every probe row matching the most duplicated build key: input rows x
    // fan_out, morsel-partitioned at that same row scale (fan_out == 1
    // without hash-table joins).
    impl->outs.resize(spec.out_cols.size());
    for (size_t i = 0; i < spec.out_cols.size(); ++i) {
      impl->outs[i].type = spec.out_types[i];
    }
  }

  // Task + barrier + memory hooks give the query its materialization:
  // per-morsel output counts and partial sorts, the run merge / average
  // division at the Session barrier, and the budget decision (resident
  // windows vs spill-to-disk) at classification. The Impl outlives the ctx
  // embedded in it, so a raw pointer capture is safe.
  Query::Impl* self = impl.get();
  impl->ctx.set_prepare_hook(
      [self](const MemoryPlan& plan, PrepareOutcome* out) {
        return self->OnPrepare(plan, out);
      });
  impl->ctx.set_cleanup_hook([self] { self->OnCleanup(); });
  if (spec.row_mode) {
    impl->ctx.set_task_hook(
        [self](const interp::Interpreter& in, const Morsel& m) {
          return self->OnTask(in, m);
        });
  }
  impl->ctx.set_finalize_hook([self] { return self->Finalize(); });

  // The builder stays reusable: the built query shares this spec, and the
  // next mutating call (or Build) forks it copy-on-write.
  return Query(std::move(impl));
}

}  // namespace avm::engine
