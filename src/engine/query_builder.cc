#include "engine/query_builder.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <map>
#include <set>

#include "dsl/typecheck.h"
#include "util/string_util.h"

namespace avm::engine {

namespace {

using dsl::ConstI;
using dsl::ExprPtr;
using dsl::Lambda;
using dsl::SkeletonKind;
using dsl::StmtPtr;

/// Deep clone with variable-reference renaming (column names are let-bound
/// under a prefix in the lowered loop body, and filter fast paths rebind
/// the single input to a lambda parameter).
ExprPtr CloneSubst(const dsl::Expr& e,
                   const std::map<std::string, std::string>& subst) {
  auto out = std::make_shared<dsl::Expr>(e);
  out->id = 0;
  if (e.kind == dsl::ExprKind::kVarRef) {
    auto it = subst.find(e.var);
    if (it != subst.end()) out->var = it->second;
    return out;
  }
  if (e.body != nullptr) out->body = CloneSubst(*e.body, subst);
  out->args.clear();
  out->args.reserve(e.args.size());
  for (const ExprPtr& a : e.args) out->args.push_back(CloneSubst(*a, subst));
  return out;
}

/// Names referenced by an expression, in first-appearance (pre-order)
/// order — this fixes the lambda parameter order of the lowered maps.
void CollectRefs(const dsl::Expr& e, std::vector<std::string>* out) {
  if (e.kind == dsl::ExprKind::kVarRef) {
    if (std::find(out->begin(), out->end(), e.var) == out->end()) {
      out->push_back(e.var);
    }
    return;
  }
  if (e.body != nullptr) CollectRefs(*e.body, out);
  for (const ExprPtr& a : e.args) CollectRefs(*a, out);
}

/// Builder expressions are scalar formulas; the builder inserts the
/// skeletons and lambdas itself.
Status ValidateScalarExpr(const dsl::Expr& e, const char* where) {
  if (e.kind == dsl::ExprKind::kLambda ||
      e.kind == dsl::ExprKind::kSkeleton) {
    return Status::InvalidArgument(
        StrFormat("%s: lambdas/skeletons are not allowed in builder "
                  "expressions (use Filter/Project/SemiJoin/Aggregate)",
                  where));
  }
  if (e.body != nullptr) AVM_RETURN_NOT_OK(ValidateScalarExpr(*e.body, where));
  for (const ExprPtr& a : e.args) {
    AVM_RETURN_NOT_OK(ValidateScalarExpr(*a, where));
  }
  return Status::OK();
}

}  // namespace

using Spec = internal::QuerySpec;

// -------------------------------------------------------------------- spec

struct internal::QuerySpec {
  struct Step {
    enum class Kind : uint8_t { kFilter, kProject, kSemiJoin };
    Kind kind;
    std::string name;   // kProject: projection name; kSemiJoin: key name
    ExprPtr expr;       // kFilter / kProject
    size_t dim = 0;     // kSemiJoin: index into dims
  };
  struct Agg {
    std::string name;
    ExprPtr expr;  // null for Count
  };

  const Table* table = nullptr;
  std::vector<Step> steps;
  std::vector<std::vector<int64_t>> dims;  ///< shared membership arrays
  ExprPtr group_expr;                      ///< null = single group
  size_t num_groups = 1;
  std::vector<Agg> aggs;

  // Derived by Resolve().
  std::vector<std::string> columns;  ///< referenced, schema order
  std::vector<const Column*> column_ptrs;

  std::string DimName(size_t i) const { return StrFormat("sj%zu", i); }
  static std::string ColValue(const std::string& col) { return "col_" + col; }
  static std::string AccName(const std::string& agg) { return "acc_" + agg; }

  Status Resolve();
  Result<dsl::Program> Lower(int64_t rows) const;
};

Status internal::QuerySpec::Resolve() {
  if (aggs.empty()) {
    return Status::InvalidArgument(
        "QueryBuilder needs at least one aggregate (Sum or Count)");
  }
  // Re-derive from scratch: the builder may Build() more than once (the
  // spec is re-resolved after each mutation).
  columns.clear();
  column_ptrs.clear();
  const Schema& schema = table->schema();

  // Names the lowering generates itself: okayN/predN/memN/keyN/sjN
  // (numbered), cnt_*/sv_* value arrays, and the _sel pass-through param —
  // plus the static loop counter / group / col_ / acc_ names.
  auto is_reserved_name = [](const std::string& n) {
    if (n.empty() || n == "i" || n == "grp" || n == "_sel" ||
        n.rfind("col_", 0) == 0 || n.rfind("acc_", 0) == 0 ||
        n.rfind("cnt_", 0) == 0 || n.rfind("sv_", 0) == 0) {
      return true;
    }
    for (const char* p : {"okay", "pred", "mem", "key", "sj"}) {
      const size_t l = std::strlen(p);
      if (n.size() > l && n.compare(0, l, p) == 0 &&
          std::all_of(n.begin() + static_cast<ptrdiff_t>(l), n.end(),
                      [](unsigned char c) { return std::isdigit(c); })) {
        return true;
      }
    }
    return false;
  };
  // Accept a referenced table column, rejecting reserved-named columns
  // eagerly: their data declarations would collide with generated names
  // deep in the lowering, surfacing as baffling type errors.
  std::set<std::string> projections;
  std::set<std::string> used_columns;
  auto use_column = [&](const std::string& name) -> Status {
    if (is_reserved_name(name)) {
      return Status::InvalidArgument(
          StrFormat("column name '%s' collides with the lowering's "
                    "reserved names; rename the column to use it with "
                    "QueryBuilder",
                    name.c_str()));
    }
    used_columns.insert(name);
    return Status::OK();
  };
  auto resolve_expr = [&](const dsl::Expr& e, const char* where) -> Status {
    AVM_RETURN_NOT_OK(ValidateScalarExpr(e, where));
    std::vector<std::string> refs;
    CollectRefs(e, &refs);
    for (const std::string& r : refs) {
      if (projections.contains(r)) continue;
      if (schema.FieldIndex(r) >= 0) {
        AVM_RETURN_NOT_OK(use_column(r));
        continue;
      }
      return Status::InvalidArgument(
          StrFormat("%s references '%s', which is neither a column of the "
                    "scanned table nor an earlier projection",
                    where, r.c_str()));
    }
    if (refs.empty()) {
      return Status::InvalidArgument(
          StrFormat("%s references no column or projection", where));
    }
    return Status::OK();
  };
  auto check_fresh_name = [&](const std::string& name,
                              const char* what) -> Status {
    if (is_reserved_name(name)) {
      return Status::InvalidArgument(
          StrFormat("%s name '%s' is reserved", what, name.c_str()));
    }
    if (schema.FieldIndex(name) >= 0 || projections.contains(name)) {
      return Status::InvalidArgument(
          StrFormat("%s name '%s' collides with a column or projection",
                    what, name.c_str()));
    }
    return Status::OK();
  };

  for (const Step& s : steps) {
    switch (s.kind) {
      case Step::Kind::kFilter:
        AVM_RETURN_NOT_OK(resolve_expr(*s.expr, "Filter predicate"));
        break;
      case Step::Kind::kProject:
        AVM_RETURN_NOT_OK(check_fresh_name(s.name, "Project"));
        AVM_RETURN_NOT_OK(resolve_expr(*s.expr, "Project expression"));
        projections.insert(s.name);
        break;
      case Step::Kind::kSemiJoin: {
        if (dims[s.dim].empty()) {
          return Status::InvalidArgument(
              "SemiJoin membership array must not be empty");
        }
        if (!projections.contains(s.name) &&
            schema.FieldIndex(s.name) < 0) {
          return Status::InvalidArgument(
              StrFormat("SemiJoin key '%s' is neither a column nor an "
                        "earlier projection",
                        s.name.c_str()));
        }
        if (schema.FieldIndex(s.name) >= 0) {
          AVM_RETURN_NOT_OK(use_column(s.name));
        }
        break;
      }
    }
  }
  if (group_expr != nullptr) {
    AVM_RETURN_NOT_OK(resolve_expr(*group_expr, "Aggregate group"));
  }
  std::set<std::string> agg_names;
  for (const Agg& a : aggs) {
    AVM_RETURN_NOT_OK(check_fresh_name(a.name, "aggregate"));
    if (!agg_names.insert(a.name).second) {
      return Status::InvalidArgument("duplicate aggregate name " + a.name);
    }
    if (a.expr != nullptr) {
      AVM_RETURN_NOT_OK(resolve_expr(*a.expr, "Sum expression"));
    }
  }
  if (used_columns.empty()) {
    return Status::InvalidArgument(
        "query references no table column (nothing drives the scan)");
  }

  // Schema order keeps the lowered program (and its trace fingerprints)
  // independent of expression-walk order.
  for (size_t i = 0; i < schema.num_fields(); ++i) {
    const std::string& name = schema.field(i).name;
    if (!used_columns.contains(name)) continue;
    columns.push_back(name);
    AVM_ASSIGN_OR_RETURN(const Column* col, table->ColumnByName(name));
    column_ptrs.push_back(col);
  }
  return Status::OK();
}

// ---------------------------------------------------------------- lowering

Result<dsl::Program> internal::QuerySpec::Lower(int64_t rows) const {
  using namespace dsl;
  const Schema& schema = table->schema();
  Program p;
  for (const std::string& c : columns) {
    p.data.push_back(
        {c, schema.field(static_cast<size_t>(schema.FieldIndex(c))).type,
         false});
  }
  for (size_t i = 0; i < dims.size(); ++i) {
    p.data.push_back({DimName(i), TypeId::kI64, false});
  }
  for (const Agg& a : aggs) {
    p.data.push_back({AccName(a.name), TypeId::kI64, true});
  }

  std::vector<StmtPtr> body;
  // Chunk reads; scanned columns are let-bound under the col_ prefix so
  // user expressions can be spliced in with a rename.
  std::map<std::string, std::string> value_of;  // user name -> loop value
  for (const std::string& c : columns) {
    body.push_back(Let(ColValue(c),
                       Skeleton(SkeletonKind::kRead, {Var("i"), Var(c)})));
    value_of[c] = ColValue(c);
  }

  std::string cur_sel;  // selection-carrying value, "" before any filter
  // Selection each value carries: "" = positional (all chunk rows).
  // Chunk arrays with *different* selections cannot be combined (the
  // interpreter's CommonSelection rule), so the lowering tracks this and
  // turns impossible combinations into Build-time errors.
  std::map<std::string, std::string> value_sel;
  for (const std::string& c : columns) value_sel[ColValue(c)] = "";
  int gen = 0;  // generated-name counter

  // Lower `expr` as a map over its referenced values; the current
  // selection (if any) rides along as a trailing pass-through input, the
  // Q1 idiom for propagating selection vectors through a pipeline.
  // Returns the map expression; *out_sel reports the selection the map's
  // output carries.
  auto lower_map = [&](const dsl::Expr& expr, ExprPtr lowered_body,
                       std::string* out_sel) -> Result<ExprPtr> {
    std::vector<std::string> refs;
    CollectRefs(expr, &refs);
    std::string have;  // selection carried by the inputs
    for (const std::string& r : refs) {
      const std::string& s = value_sel.at(value_of.at(r));
      if (s.empty()) continue;
      if (!have.empty() && have != s) {
        return Status::InvalidArgument(
            StrFormat("expression combines values filtered at different "
                      "pipeline positions ('%s' carries %s); re-project "
                      "after the last filter instead",
                      r.c_str(), s.c_str()));
      }
      have = s;
    }
    std::vector<std::string> params;
    std::vector<ExprPtr> args = {nullptr};  // lambda goes first
    for (const std::string& r : refs) {
      params.push_back(value_of.at(r));
      args.push_back(Var(value_of.at(r)));
    }
    if (have.empty() && !cur_sel.empty()) {
      // Positional inputs: thread the current selection through so the
      // output computes (and carries) only surviving rows.
      params.push_back("_sel");
      args.push_back(Var(cur_sel));
      have = cur_sel;
    }
    args[0] = Lambda(std::move(params), std::move(lowered_body));
    if (out_sel != nullptr) *out_sel = have;
    return Skeleton(SkeletonKind::kMap, std::move(args));
  };
  auto rename = [&](const dsl::Expr& expr) {
    return CloneSubst(expr, value_of);
  };
  // Maps feeding the aggregation must restrict to the final selection:
  // an older (wider) selection would aggregate rows later filters removed.
  auto require_current = [&](const std::string& sel,
                             const char* where) -> Status {
    if (sel != cur_sel) {
      return Status::InvalidArgument(
          StrFormat("%s uses values filtered before the last filter; "
                    "re-project after the final filter",
                    where));
    }
    return Status::OK();
  };

  for (const Step& s : steps) {
    switch (s.kind) {
      case Step::Kind::kFilter: {
        std::vector<std::string> refs;
        CollectRefs(*s.expr, &refs);
        const std::string okay = StrFormat("okay%d", gen);
        if (refs.size() == 1 && cur_sel.empty() &&
            value_sel.at(value_of.at(refs[0])).empty()) {
          // Single positional input, no prior selection: direct filter.
          body.push_back(Let(
              okay,
              Skeleton(SkeletonKind::kFilter,
                       {Lambda({"x"}, CloneSubst(*s.expr, {{refs[0], "x"}})),
                        Var(value_of.at(refs[0]))})));
        } else {
          // Materialize the predicate (0/1), then select the non-zeros.
          const std::string pred = StrFormat("pred%d", gen);
          std::string pred_sel;
          AVM_ASSIGN_OR_RETURN(
              ExprPtr pred_map,
              lower_map(*s.expr, Cast(TypeId::kI64, rename(*s.expr)),
                        &pred_sel));
          // The predicate must see every row the pipeline still keeps: a
          // stale selection would silently drop earlier filters from the
          // conjunction.
          AVM_RETURN_NOT_OK(require_current(pred_sel, "Filter predicate"));
          body.push_back(Let(pred, std::move(pred_map)));
          body.push_back(Let(
              okay, Skeleton(SkeletonKind::kFilter,
                             {Lambda({"x"}, Ne(Var("x"), ConstI(0))),
                              Var(pred)})));
        }
        cur_sel = okay;
        ++gen;
        break;
      }
      case Step::Kind::kProject: {
        std::string out_sel;
        AVM_ASSIGN_OR_RETURN(ExprPtr m,
                             lower_map(*s.expr, rename(*s.expr), &out_sel));
        body.push_back(Let(s.name, std::move(m)));
        value_of[s.name] = s.name;
        value_sel[s.name] = out_sel;
        break;
      }
      case Step::Kind::kSemiJoin: {
        // membership[key] != 0, with the key threaded through the current
        // selection; the membership array is shared (whole-array) so the
        // gather stays row-partitionable.
        std::string key = value_of.at(s.name);
        const std::string& key_sel = value_sel.at(key);
        if (!key_sel.empty() && key_sel != cur_sel) {
          return Status::InvalidArgument(
              "SemiJoin key was filtered before the last filter; "
              "re-project it after the final filter");
        }
        if (!cur_sel.empty() && key_sel.empty()) {
          const std::string keyed = StrFormat("key%d", gen);
          body.push_back(Let(
              keyed, Skeleton(SkeletonKind::kMap,
                              {Lambda({"k", "_sel"}, Var("k")), Var(key),
                               Var(cur_sel)})));
          key = keyed;
        }
        const std::string mem = StrFormat("mem%d", gen);
        const std::string okay = StrFormat("okay%d", gen);
        body.push_back(Let(mem, Skeleton(SkeletonKind::kGather,
                                         {Var(DimName(s.dim)), Var(key)})));
        body.push_back(Let(
            okay, Skeleton(SkeletonKind::kFilter,
                           {Lambda({"x"}, Ne(Var("x"), ConstI(0))),
                            Var(mem)})));
        cur_sel = okay;
        ++gen;
        break;
      }
    }
  }

  // Group index per surviving row.
  const std::string carrier =
      cur_sel.empty() ? ColValue(columns[0]) : cur_sel;
  if (group_expr != nullptr) {
    std::string grp_sel;
    AVM_ASSIGN_OR_RETURN(
        ExprPtr grp_map,
        lower_map(*group_expr, Cast(TypeId::kI64, rename(*group_expr)),
                  &grp_sel));
    AVM_RETURN_NOT_OK(require_current(grp_sel, "Aggregate group"));
    body.push_back(Let("grp", std::move(grp_map)));
  } else {
    body.push_back(Let("grp", Skeleton(SkeletonKind::kMap,
                                       {Lambda({"_s"}, ConstI(0)),
                                        Var(carrier)})));
  }

  // Scatter-aggregate each Sum/Count into its accumulator; the group index
  // array carries the selection, so only surviving rows contribute (the
  // value arrays are read positionally at the selected positions).
  for (const Agg& a : aggs) {
    std::string values;
    if (a.expr == nullptr) {
      values = StrFormat("cnt_%s", a.name.c_str());
      body.push_back(Let(values, Skeleton(SkeletonKind::kMap,
                                          {Lambda({"_s"}, ConstI(1)),
                                           Var(carrier)})));
    } else {
      std::vector<std::string> refs;
      CollectRefs(*a.expr, &refs);
      if (refs.size() == 1 && a.expr->kind == dsl::ExprKind::kVarRef) {
        values = value_of.at(refs[0]);  // plain column/projection sum
      } else {
        values = StrFormat("sv_%s", a.name.c_str());
        AVM_ASSIGN_OR_RETURN(ExprPtr m,
                             lower_map(*a.expr, rename(*a.expr), nullptr));
        body.push_back(Let(values, std::move(m)));
      }
    }
    body.push_back(ExprStmt(Skeleton(
        SkeletonKind::kScatter,
        {Var(AccName(a.name)), Var("grp"), Var(values),
         Lambda({"o", "v"}, Var("o") + Var("v"))})));
  }

  body.push_back(Assign(
      "i", Var("i") + Skeleton(SkeletonKind::kLen,
                               {Var(ColValue(columns[0]))})));
  body.push_back(If(Call(ScalarOp::kGe, {Var("i"), ConstI(rows)}), {Break()}));

  p.stmts = {MutDef("i"), Assign("i", ConstI(0)), Loop(std::move(body))};
  p.AssignIds();
  return p;
}

// ------------------------------------------------------------------- query

struct Query::Impl {
  std::shared_ptr<const internal::QuerySpec> spec;
  std::vector<std::pair<std::string, std::vector<int64_t>>> accumulators;
  ExecContext ctx;

  Impl(std::shared_ptr<const internal::QuerySpec> s, uint64_t total_rows)
      : spec(std::move(s)),
        ctx([spec = spec](int64_t rows) { return spec->Lower(rows); },
            total_rows) {}
};

Query::Query() = default;
Query::Query(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
Query::Query(Query&&) noexcept = default;
Query& Query::operator=(Query&&) noexcept = default;
Query::~Query() = default;

namespace {
/// Empty (default-constructed or moved-from) queries fail loudly instead
/// of dereferencing null.
void CheckBuilt(const void* impl) {
  if (impl == nullptr) {
    Status::InvalidArgument("Query is empty (not built, or moved-from)")
        .Abort("Query");
  }
}
}  // namespace

ExecContext& Query::context() {
  CheckBuilt(impl_.get());
  return impl_->ctx;
}

Result<dsl::Program> Query::MakeProgram(int64_t rows) const {
  if (impl_ == nullptr) {
    return Status::InvalidArgument("Query is empty (not built)");
  }
  return impl_->spec->Lower(rows);
}

size_t Query::num_groups() const {
  CheckBuilt(impl_.get());
  return impl_->spec->num_groups;
}

const std::vector<int64_t>& Query::aggregate(const std::string& name) const {
  CheckBuilt(impl_.get());
  for (const auto& [n, values] : impl_->accumulators) {
    if (n == name) return values;
  }
  Status::InvalidArgument("no aggregate named " + name).Abort("Query");
  static const std::vector<int64_t> kEmpty;
  return kEmpty;
}

Result<int64_t> Query::aggregate_at(const std::string& name,
                                    size_t group) const {
  if (impl_ == nullptr) {
    return Status::InvalidArgument("Query is empty (not built)");
  }
  for (const auto& [n, values] : impl_->accumulators) {
    if (n != name) continue;
    if (group >= values.size()) {
      return Status::OutOfRange(
          StrFormat("group %zu out of %zu", group, values.size()));
    }
    return values[group];
  }
  return Status::InvalidArgument("no aggregate named " + name);
}

void Query::ResetAggregates() {
  CheckBuilt(impl_.get());
  for (auto& [name, values] : impl_->accumulators) {
    std::fill(values.begin(), values.end(), 0);
  }
}

// ----------------------------------------------------------------- builder

QueryBuilder::QueryBuilder(const Table& table)
    : spec_(std::make_shared<Spec>()) {
  spec_->table = &table;
}

QueryBuilder::~QueryBuilder() = default;

Status QueryBuilder::Fail(Status st) {
  if (deferred_error_.ok()) deferred_error_ = std::move(st);
  return deferred_error_;
}

internal::QuerySpec& QueryBuilder::MutableSpec() {
  // Copy-on-write: after Build() the spec is shared with the built Query,
  // so the next mutating call — or the next Build(), whose Resolve()
  // rewrites derived state — forks it (deep-copying any membership
  // arrays). The single-Build common case never pays the copy.
  if (spec_.use_count() > 1) spec_ = std::make_shared<Spec>(*spec_);
  return *spec_;
}

QueryBuilder& QueryBuilder::Filter(dsl::ExprPtr predicate) {
  if (predicate == nullptr) {
    Fail(Status::InvalidArgument("Filter: null predicate"));
    return *this;
  }
  MutableSpec().steps.push_back(
      {Spec::Step::Kind::kFilter, "", std::move(predicate), 0});
  return *this;
}

QueryBuilder& QueryBuilder::Project(const std::string& name,
                                    dsl::ExprPtr expr) {
  if (expr == nullptr) {
    Fail(Status::InvalidArgument("Project: null expression"));
    return *this;
  }
  MutableSpec().steps.push_back(
      {Spec::Step::Kind::kProject, name, std::move(expr), 0});
  return *this;
}

QueryBuilder& QueryBuilder::SemiJoin(const std::string& key,
                                     std::vector<int64_t> membership) {
  Spec& spec = MutableSpec();
  spec.dims.push_back(std::move(membership));
  spec.steps.push_back(
      {Spec::Step::Kind::kSemiJoin, key, nullptr, spec.dims.size() - 1});
  return *this;
}

QueryBuilder& QueryBuilder::Aggregate(dsl::ExprPtr group_expr,
                                      size_t num_groups) {
  if (group_expr == nullptr || num_groups == 0) {
    Fail(Status::InvalidArgument(
        "Aggregate: need a group expression and num_groups >= 1"));
    return *this;
  }
  Spec& spec = MutableSpec();
  spec.group_expr = std::move(group_expr);
  spec.num_groups = num_groups;
  return *this;
}

QueryBuilder& QueryBuilder::Sum(const std::string& name, dsl::ExprPtr expr) {
  if (expr == nullptr) {
    Fail(Status::InvalidArgument("Sum: null expression"));
    return *this;
  }
  MutableSpec().aggs.push_back({name, std::move(expr)});
  return *this;
}

QueryBuilder& QueryBuilder::Count(const std::string& name) {
  MutableSpec().aggs.push_back({name, nullptr});
  return *this;
}

Result<Query> QueryBuilder::Build() {
  AVM_RETURN_NOT_OK(deferred_error_);
  // Resolve() mutates derived state, so it must not touch a spec some
  // earlier Build() handed out.
  AVM_RETURN_NOT_OK(MutableSpec().Resolve());

  // Lower once now so shape/type errors surface at Build time instead of
  // from a worker thread mid-query.
  {
    AVM_ASSIGN_OR_RETURN(dsl::Program probe, spec_->Lower(4096));
    AVM_RETURN_NOT_OK(dsl::TypeCheck(&probe));
  }

  auto impl = std::make_unique<Query::Impl>(spec_, spec_->table->num_rows());
  const Spec& spec = *impl->spec;
  for (size_t i = 0; i < spec.columns.size(); ++i) {
    impl->ctx.BindInputColumn(spec.columns[i], spec.column_ptrs[i]);
  }
  for (size_t i = 0; i < spec.dims.size(); ++i) {
    impl->ctx.BindShared(
        spec.DimName(i),
        interp::DataBinding::Raw(
            TypeId::kI64,
            const_cast<int64_t*>(spec.dims[i].data()), spec.dims[i].size()));
  }
  impl->accumulators.reserve(spec.aggs.size());
  for (const Spec::Agg& a : spec.aggs) {
    impl->accumulators.emplace_back(
        a.name, std::vector<int64_t>(spec.num_groups, 0));
    impl->ctx.BindAccumulator(Spec::AccName(a.name), TypeId::kI64,
                              impl->accumulators.back().second.data(),
                              spec.num_groups);
  }
  // The builder stays reusable: the built query shares this spec, and the
  // next mutating call (or Build) forks it copy-on-write.
  return Query(std::move(impl));
}

}  // namespace avm::engine
