#include "engine/memory_tracker.h"

#include <cstdlib>

#include "util/string_util.h"

namespace avm::engine {

Status MemoryTracker::TryCharge(uint64_t bytes, const char* what) {
  std::lock_guard<std::mutex> lock(mu_);
  if (budget_ > 0 && (bytes > budget_ || used_ > budget_ - bytes)) {
    return Status::ResourceExhausted(StrFormat(
        "%s needs %llu bytes but only %llu of the %llu-byte memory budget "
        "remain",
        what, (unsigned long long)bytes,
        (unsigned long long)(budget_ > used_ ? budget_ - used_ : 0),
        (unsigned long long)budget_));
  }
  used_ += bytes;
  if (used_ > peak_) peak_ = used_;
  return Status::OK();
}

void MemoryTracker::ChargeTransient(uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  used_ += bytes;
  if (used_ > peak_) peak_ = used_;
}

void MemoryTracker::Release(uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  used_ = bytes > used_ ? 0 : used_ - bytes;
}

uint64_t MemoryTracker::used() const {
  std::lock_guard<std::mutex> lock(mu_);
  return used_;
}

uint64_t MemoryTracker::peak() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_;
}

uint64_t MemoryTracker::available() const {
  if (budget_ == 0) return UINT64_MAX;
  std::lock_guard<std::mutex> lock(mu_);
  return budget_ > used_ ? budget_ - used_ : 0;
}

uint64_t MemoryTracker::EnvBudget() {
  const char* env = std::getenv("AVM_MEMORY_BUDGET");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(env, &end, 10);
  if (end == env) return 0;
  return static_cast<uint64_t>(v);
}

}  // namespace avm::engine
