#include "engine/morsel.h"

#include <algorithm>
#include <atomic>
#include <future>
#include <mutex>

namespace avm::engine {

std::vector<Morsel> PartitionRows(uint64_t rows, size_t num_workers,
                                  uint64_t morsel_rows, uint32_t align) {
  std::vector<Morsel> morsels;
  if (rows == 0) return morsels;
  if (num_workers == 0) num_workers = 1;
  if (align == 0) align = 1;
  if (morsel_rows == 0) {
    morsel_rows = (rows + num_workers * 4 - 1) / (num_workers * 4);
  }
  // Round up to the chunk size so every morsel but the tail runs whole
  // chunks (identical program shapes maximize trace-cache sharing).
  morsel_rows = ((morsel_rows + align - 1) / align) * align;
  for (uint64_t begin = 0; begin < rows; begin += morsel_rows) {
    Morsel m;
    m.begin = begin;
    m.end = std::min(rows, begin + morsel_rows);
    m.index = morsels.size();
    morsels.push_back(m);
  }
  return morsels;
}

Status RunMorsels(ThreadPool& pool, size_t num_workers,
                  const std::vector<Morsel>& morsels,
                  const std::function<Status(const Morsel&)>& fn) {
  if (morsels.empty()) return Status::OK();
  num_workers = std::max<size_t>(1, std::min(num_workers, morsels.size()));
  if (num_workers == 1) {
    for (const Morsel& m : morsels) {
      AVM_RETURN_NOT_OK(fn(m));
    }
    return Status::OK();
  }

  std::atomic<size_t> cursor{0};
  std::atomic<bool> failed{false};
  std::mutex err_mu;
  Status first_error = Status::OK();

  auto worker = [&] {
    while (!failed.load(std::memory_order_relaxed)) {
      const size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= morsels.size()) break;
      Status st = fn(morsels[i]);
      if (!st.ok()) {
        std::lock_guard<std::mutex> lock(err_mu);
        if (first_error.ok()) first_error = st;
        failed.store(true, std::memory_order_relaxed);
        break;
      }
    }
  };

  std::vector<std::future<void>> futs;
  futs.reserve(num_workers);
  for (size_t w = 0; w < num_workers; ++w) futs.push_back(pool.Submit(worker));
  for (auto& f : futs) f.get();
  return first_error;
}

}  // namespace avm::engine
