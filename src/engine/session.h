// engine::Session — the engine as a long-lived, shared service.
//
// The adaptive VM amortizes profiling and JIT cost across queries, which
// only pays off when the engine outlives a single call: a Session owns the
// shared TraceCache, a crew of M morsel workers, and an admission queue, and
// serves N concurrent clients:
//
//   engine::Session session({.num_workers = 8});
//   engine::QueryHandle h = session.Submit(ctx);   // returns immediately
//   ... build and submit more queries ...
//   Result<ExecReport> r = h.Wait();               // block for this one
//
// Scheduling model (the "N clients × M workers" step of the roadmap):
//
//  - Submit() classifies the query (serial / morsel-parallel / GPU
//    fragment), partitions parallel queries into row-range morsels, and
//    appends it to the run queue; when `max_active_queries` queries are
//    already in flight it parks in the admission queue instead.
//  - The session's M workers pull tasks from the run queue ROUND-ROBIN
//    ACROSS QUERIES (one morsel from query A, one from B, ...), so a long
//    scan cannot starve a short aggregate: in-flight queries interleave
//    their morsels fairly over the shared worker pool.
//  - All queries share the session's TraceCache: the first worker of any
//    client to compile a trace for a situation serves every later query,
//    with per-situation single-flight compilation under contention.
//  - Per-query accumulators are privatized per morsel and merged at the
//    query's barrier, exactly as in a single-query parallel run — a
//    concurrent run stays bit-identical to its serial baseline.
//
// Cancel() drops a query's unclaimed morsels; tasks already running finish
// but skip their merge, so a cancelled query's result arrays are undefined
// (see QueryHandle::Cancel). Destroying the session drains all submitted
// queries first.
#pragma once

#include <memory>
#include <mutex>
#include <optional>

#include "engine/exec_engine.h"
#include "util/thread_annotations.h"

namespace avm::gpu {
class SimGpuDevice;
class GpuBackend;
class AdaptivePlacer;
}  // namespace avm::gpu

namespace avm::engine {

namespace internal {
struct QueryState;
struct Scheduler;
}  // namespace internal

struct SessionOptions {
  /// Morsel workers shared by all in-flight queries; 0 = hardware
  /// concurrency. The session owns its worker pool.
  size_t num_workers = 0;
  /// Queries executing concurrently; later submissions wait in the
  /// admission queue. 0 = 2 × workers.
  size_t max_active_queries = 0;
  /// Per-query defaults used by Submit(ctx) without explicit options.
  QueryOptions defaults;
  /// Auxiliary pool for the simulated GPU device; nullptr = Global().
  ThreadPool* device_pool = nullptr;
};

/// Future-like handle to one submitted query. Cheap to copy; outlives the
/// session (a drained session leaves every handle completed).
class QueryHandle {
 public:
  QueryHandle();
  ~QueryHandle();
  QueryHandle(const QueryHandle&);
  QueryHandle& operator=(const QueryHandle&);
  QueryHandle(QueryHandle&&) noexcept;
  QueryHandle& operator=(QueryHandle&&) noexcept;

  bool valid() const { return state_ != nullptr; }

  /// Block until the query completes; returns its report (or error).
  /// Repeated calls return the same result. (Condition-variable wait via
  /// std::unique_lock, which the thread-safety analysis does not model.)
  Result<ExecReport> Wait() AVM_NO_THREAD_SAFETY_ANALYSIS;

  /// Non-blocking probe: the result if the query already completed.
  std::optional<Result<ExecReport>> TryGetReport();

  /// True once the report is available.
  bool done() const;

  /// Request cancellation: a query still parked in the admission queue
  /// completes with Cancelled immediately; otherwise its unclaimed work is
  /// dropped and it completes with Cancelled once in-flight tasks drain
  /// (a query that already completed stays completed). Morsels running at
  /// cancel time finish but skip their merge. The caller's bound
  /// output/accumulator arrays are left in an UNDEFINED, partially-merged
  /// state after a cancelled (or failed) parallel query — reset them
  /// (Query::ResetAggregates) before reusing.
  void Cancel();

 private:
  friend class Session;
  explicit QueryHandle(std::shared_ptr<internal::QueryState> state);
  std::shared_ptr<internal::QueryState> state_;
};

class Session {
 public:
  explicit Session(SessionOptions options = {});
  // Drains: blocks until every submitted query completed (condition-variable
  // wait via std::unique_lock, unmodeled by the thread-safety analysis).
  ~Session() AVM_NO_THREAD_SAFETY_ANALYSIS;
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Enqueue one query. `ctx` (and everything it binds) must stay alive
  /// until the handle reports completion; a context describes one in-flight
  /// query and must not be re-submitted while running. Never blocks on
  /// execution or admission (back-pressure parks the query; classification
  /// errors surface through the handle) — classification itself (program
  /// lowering + typecheck) does run synchronously on the submitting thread.
  QueryHandle Submit(ExecContext& ctx);
  QueryHandle Submit(ExecContext& ctx, const QueryOptions& options);

  /// Convenience: Submit + Wait.
  Result<ExecReport> Run(ExecContext& ctx);
  Result<ExecReport> Run(ExecContext& ctx, const QueryOptions& options);

  size_t num_workers() const;
  const SessionOptions& options() const { return options_; }
  const jit::TraceCache& trace_cache() const { return cache_; }

  /// Lifetime counters (monotonic).
  struct Stats {
    uint64_t submitted = 0;
    uint64_t completed = 0;  ///< includes failed and cancelled
    uint64_t cancelled = 0;
  };
  Stats stats() const;

 private:
  Status Classify(internal::QueryState& q);
  Status ClassifyCpu(internal::QueryState& q);
  Status ProbeGpuOffload(internal::QueryState& q, bool* offload);
  void PumpLoop();
  // The *Locked helpers run with a mutex of the (here-incomplete)
  // internal::Scheduler / internal::QueryState already held by the caller;
  // an AVM_REQUIRES expression cannot name a member of an incomplete type,
  // so they opt out of the analysis instead.
  void SpawnPumpsLocked() AVM_NO_THREAD_SAFETY_ANALYSIS;
  void MarkSkipped(const std::shared_ptr<internal::QueryState>& q, size_t n);
  void RunTask(const std::shared_ptr<internal::QueryState>& q, size_t index);
  Status RunSerialQuery(internal::QueryState& q, ExecReport* report);
  Status RunGpuTask(internal::QueryState& q, ExecReport* report);
  Status RunMorselTask(internal::QueryState& q, const Morsel& m);
  void FinalizeLocked(internal::QueryState& q) AVM_NO_THREAD_SAFETY_ANALYSIS;
  void OnQueryDone(const std::shared_ptr<internal::QueryState>& q);
  ThreadPool& DevicePool() const;

  SessionOptions options_;
  jit::TraceCache cache_;
  /// Session-wide memory budget from AVM_MEMORY_BUDGET (docs/SPILL.md):
  /// shared by every query submitted without its own
  /// QueryOptions::memory_budget. Null when the variable is unset — those
  /// queries get a private unlimited tracker instead.
  std::shared_ptr<MemoryTracker> env_tracker_;
  /// Shared (not unique): handles hold a weak_ptr so Cancel() can pull a
  /// still-parked query out of the admission queue promptly.
  std::shared_ptr<internal::Scheduler> sched_;

  // Lazily created simulated-GPU machinery (kGpuOffload only). gpu_mu_
  // guards init + placer state (short critical sections — Submit takes it);
  // gpu_device_mu_ serializes whole device runs (one simulated device for
  // all concurrent queries) and is never held on the Submit path.
  std::mutex gpu_mu_;
  std::mutex gpu_device_mu_;
  /// gpu_device_ / gpu_backend_ are created once under gpu_mu_ (Submit
  /// path) and afterwards only dereferenced under gpu_device_mu_ — a
  /// handoff protocol the static analysis cannot express with a single
  /// GUARDED_BY, so the pointers stay unannotated; the placer is touched
  /// exclusively under gpu_mu_ and is annotated.
  std::unique_ptr<gpu::SimGpuDevice> gpu_device_;
  std::unique_ptr<gpu::GpuBackend> gpu_backend_;
  std::unique_ptr<gpu::AdaptivePlacer> gpu_placer_ AVM_GUARDED_BY(gpu_mu_);
};

}  // namespace avm::engine
