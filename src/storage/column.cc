#include "storage/column.h"

#include <algorithm>
#include <cstring>

#include "util/string_util.h"

namespace avm {

Status Column::AppendValues(const void* values, uint32_t n) {
  const auto* bytes = static_cast<const uint8_t*>(values);
  const size_t w = TypeWidth(type_);
  uint32_t done = 0;
  // Fill the partial tail block is not supported: blocks are immutable, so
  // writers should append in block-sized batches; smaller appends simply
  // create smaller blocks.
  while (done < n) {
    uint32_t take = std::min(block_size_, n - done);
    AVM_ASSIGN_OR_RETURN(Block b,
                         EncodeBlockAuto(type_, bytes + size_t(done) * w, take));
    blocks_.push_back(std::move(b));
    num_rows_ += take;
    done += take;
  }
  return Status::OK();
}

Status Column::AppendBlockWithScheme(Scheme scheme, const void* values,
                                     uint32_t n) {
  if (n > block_size_) {
    return Status::InvalidArgument("block larger than column block size");
  }
  AVM_ASSIGN_OR_RETURN(Block b, EncodeBlock(scheme, type_, values, n));
  blocks_.push_back(std::move(b));
  num_rows_ += n;
  return Status::OK();
}

Status Column::Read(uint64_t row, uint32_t len, void* out) const {
  if (row + len > num_rows_) {
    return Status::OutOfRange(StrFormat("read [%llu, %llu) of %llu rows",
                                        (unsigned long long)row,
                                        (unsigned long long)(row + len),
                                        (unsigned long long)num_rows_));
  }
  auto* dst = static_cast<uint8_t*>(out);
  const size_t w = TypeWidth(type_);
  // Blocks created by AppendValues are block_size_-aligned except possibly
  // the last of each append call; walk blocks by cumulative count instead of
  // assuming alignment.
  uint64_t pos = 0;
  size_t bi = 0;
  while (bi < blocks_.size() && pos + blocks_[bi].count <= row) {
    pos += blocks_[bi].count;
    ++bi;
  }
  uint32_t remaining = len;
  uint64_t cur = row;
  while (remaining > 0) {
    if (bi >= blocks_.size()) return Status::Internal("row walk out of blocks");
    const Block& b = blocks_[bi];
    uint32_t off = static_cast<uint32_t>(cur - pos);
    uint32_t take = std::min(remaining, b.count - off);
    AVM_RETURN_NOT_OK(DecodeBlockRange(b, off, take, dst));
    dst += static_cast<size_t>(take) * w;
    cur += take;
    remaining -= take;
    pos += b.count;
    ++bi;
  }
  return Status::OK();
}

Result<std::pair<const Block*, uint32_t>> Column::BlockAt(uint64_t row) const {
  if (row >= num_rows_) return Status::OutOfRange("BlockAt past end");
  uint64_t pos = 0;
  for (const auto& b : blocks_) {
    if (row < pos + b.count) {
      return std::make_pair(&b, static_cast<uint32_t>(row - pos));
    }
    pos += b.count;
  }
  return Status::Internal("block walk failed");
}

Result<Scheme> Column::SchemeAt(uint64_t row) const {
  if (row >= num_rows_) return Status::OutOfRange("SchemeAt past end");
  uint64_t pos = 0;
  for (const auto& b : blocks_) {
    if (row < pos + b.count) return b.scheme;
    pos += b.count;
  }
  return Status::Internal("block walk failed");
}

size_t Column::EncodedBytes() const {
  size_t total = 0;
  for (const auto& b : blocks_) total += b.data.size();
  return total;
}

double Column::CompressionRatio() const {
  size_t raw = static_cast<size_t>(num_rows_) * TypeWidth(type_);
  size_t enc = EncodedBytes();
  return enc == 0 ? 1.0 : static_cast<double>(raw) / static_cast<double>(enc);
}

ColumnScanner::ColumnScanner(const Column* column) : column_(column) {}

Status ColumnScanner::EnsureBlockDecoded(size_t block_idx) {
  if (cached_block_ == block_idx) return Status::OK();
  const Block& b = column_->block(block_idx);
  cache_.resize(static_cast<size_t>(b.count) * TypeWidth(b.type));
  AVM_RETURN_NOT_OK(DecodeBlock(b, cache_.data()));
  cached_block_ = block_idx;
  return Status::OK();
}

Result<uint32_t> ColumnScanner::Next(uint32_t len, void* out, Scheme* scheme) {
  const size_t w = TypeWidth(column_->type());
  auto* dst = static_cast<uint8_t*>(out);
  uint32_t produced = 0;
  bool first = true;
  while (produced < len && row_ < column_->num_rows()) {
    // Locate the block containing row_ by cumulative walk from the cached
    // position (blocks can have heterogeneous counts).
    uint64_t pos = 0;
    size_t bi = 0;
    while (bi < column_->num_blocks() &&
           pos + column_->block(bi).count <= row_) {
      pos += column_->block(bi).count;
      ++bi;
    }
    const Block& b = column_->block(bi);
    if (first && scheme != nullptr) *scheme = b.scheme;
    first = false;
    AVM_RETURN_NOT_OK(EnsureBlockDecoded(bi));
    uint32_t off = static_cast<uint32_t>(row_ - pos);
    uint32_t take = std::min(len - produced, b.count - off);
    std::memcpy(dst + static_cast<size_t>(produced) * w,
                cache_.data() + static_cast<size_t>(off) * w,
                static_cast<size_t>(take) * w);
    produced += take;
    row_ += take;
  }
  return produced;
}

Status ColumnChunkCursor::EnsureBlockDecoded(size_t block_idx,
                                             uint64_t block_start) {
  if (cached_block_ == block_idx) return Status::OK();
  const Block& b = column_->block(block_idx);
  cache_.resize(static_cast<size_t>(b.count) * TypeWidth(b.type));
  AVM_RETURN_NOT_OK(DecodeBlock(b, cache_.data()));
  cached_block_ = block_idx;
  cached_start_ = block_start;
  ++blocks_decoded_;
  return Status::OK();
}

Status ColumnChunkCursor::ReadAt(uint64_t row, uint32_t len, void* out,
                                 Scheme* scheme) {
  if (column_ == nullptr) return Status::Internal("cursor has no column");
  if (row + len > column_->num_rows()) {
    return Status::OutOfRange(StrFormat("cursor read [%llu, %llu) of %llu rows",
                                        (unsigned long long)row,
                                        (unsigned long long)(row + len),
                                        (unsigned long long)column_->num_rows()));
  }
  const size_t w = TypeWidth(column_->type());
  auto* dst = static_cast<uint8_t*>(out);
  // Walk blocks by cumulative count (counts can be heterogeneous), starting
  // from the cached block when the read is at or past it — the sequential
  // morsel pattern then skips the walk entirely.
  uint64_t pos = 0;
  size_t bi = 0;
  if (cached_block_ != SIZE_MAX && row >= cached_start_) {
    pos = cached_start_;
    bi = cached_block_;
  }
  while (bi < column_->num_blocks() && pos + column_->block(bi).count <= row) {
    pos += column_->block(bi).count;
    ++bi;
  }
  bool first = true;
  uint32_t remaining = len;
  uint64_t cur = row;
  while (remaining > 0) {
    if (bi >= column_->num_blocks()) {
      return Status::Internal("cursor row walk out of blocks");
    }
    const Block& b = column_->block(bi);
    if (first && scheme != nullptr) *scheme = b.scheme;
    first = false;
    AVM_RETURN_NOT_OK(EnsureBlockDecoded(bi, pos));
    uint32_t off = static_cast<uint32_t>(cur - pos);
    uint32_t take = std::min(remaining, b.count - off);
    std::memcpy(dst, cache_.data() + static_cast<size_t>(off) * w,
                static_cast<size_t>(take) * w);
    dst += static_cast<size_t>(take) * w;
    cur += take;
    remaining -= take;
    pos += b.count;
    ++bi;
  }
  return Status::OK();
}

}  // namespace avm
