// Block-partitioned columns. Compression schemes may differ block-to-block,
// which is exactly the situation the paper's adaptive VM must handle
// (specialized code is valid only while the scheme combination holds).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "storage/compression.h"
#include "storage/vector.h"
#include "util/status.h"

namespace avm {

/// Default number of values per block.
constexpr uint32_t kDefaultBlockSize = 64 * 1024;

/// A compressed, block-partitioned column.
class Column {
 public:
  explicit Column(TypeId type, uint32_t block_size = kDefaultBlockSize)
      : type_(type), block_size_(block_size) {}

  TypeId type() const { return type_; }
  uint64_t num_rows() const { return num_rows_; }
  size_t num_blocks() const { return blocks_.size(); }
  uint32_t block_size() const { return block_size_; }
  const Block& block(size_t i) const { return blocks_[i]; }

  /// Append `n` raw values, splitting into blocks and choosing a scheme per
  /// block automatically.
  Status AppendValues(const void* values, uint32_t n);

  /// Append `n` raw values as a single block with a forced scheme.
  Status AppendBlockWithScheme(Scheme scheme, const void* values, uint32_t n);

  /// Decode `len` values starting at global row `row` into `out`.
  Status Read(uint64_t row, uint32_t len, void* out) const;

  /// Compression scheme of the block containing global row `row`.
  Result<Scheme> SchemeAt(uint64_t row) const;

  /// Block containing `row`, plus the row's offset within it.
  Result<std::pair<const Block*, uint32_t>> BlockAt(uint64_t row) const;

  /// Global row -> (block index, offset inside block).
  std::pair<size_t, uint32_t> Locate(uint64_t row) const {
    return {static_cast<size_t>(row / block_size_),
            static_cast<uint32_t>(row % block_size_)};
  }

  /// Total encoded payload bytes across blocks.
  size_t EncodedBytes() const;
  double CompressionRatio() const;

 private:
  TypeId type_;
  uint32_t block_size_;
  uint64_t num_rows_ = 0;
  std::vector<Block> blocks_;
};

/// Sequential reader that decompresses block-at-a-time into an internal
/// buffer and serves chunk-sized slices; the common scan access path.
class ColumnScanner {
 public:
  explicit ColumnScanner(const Column* column);

  /// Copy the next `len` values into `out`; returns values produced
  /// (< len at end of column). Also reports the scheme of the block the
  /// read started in, so the VM can detect scheme changes.
  Result<uint32_t> Next(uint32_t len, void* out, Scheme* scheme = nullptr);

  void SeekToStart() { row_ = 0; cached_block_ = SIZE_MAX; }
  uint64_t position() const { return row_; }
  bool AtEnd() const { return row_ >= column_->num_rows(); }

 private:
  Status EnsureBlockDecoded(size_t block_idx);

  const Column* column_;
  uint64_t row_ = 0;
  size_t cached_block_ = SIZE_MAX;
  std::vector<uint8_t> cache_;  // decoded current block
};

/// Seekable block-at-a-time decoder for the streamed-scan path: decodes one
/// compressed block ("super-chunk") into an internal cache and serves
/// arbitrary [row, row+len) reads from it, re-decoding only on block
/// changes. Unlike Column::Read — which re-decodes the containing range on
/// every call — morsel-sized reads walking forward decode each block exactly
/// once; blocks_decoded() exposes the streaming cost (surfaced as
/// ExecReport::chunks_streamed).
class ColumnChunkCursor {
 public:
  /// Default-constructed cursors stream nothing until assigned.
  ColumnChunkCursor() = default;
  /// Stream from `column` (not owned; must outlive the cursor).
  explicit ColumnChunkCursor(const Column* column) : column_(column) {}

  /// Column this cursor streams from (null when default-constructed).
  const Column* column() const { return column_; }

  /// Decode `len` values starting at global row `row` into `out`, reporting
  /// the scheme of the block the read started in (so the VM can detect
  /// situation changes). Crossing a block boundary decodes the next block
  /// into the cache.
  Status ReadAt(uint64_t row, uint32_t len, void* out,
                Scheme* scheme = nullptr);

  /// Block decodes performed (cache misses) over the cursor's lifetime —
  /// one compressed super-chunk streamed per decode.
  uint64_t blocks_decoded() const { return blocks_decoded_; }

 private:
  Status EnsureBlockDecoded(size_t block_idx, uint64_t block_start);

  const Column* column_ = nullptr;
  size_t cached_block_ = SIZE_MAX;
  uint64_t cached_start_ = 0;   // global row of the cached block's first value
  std::vector<uint8_t> cache_;  // decoded current block
  uint64_t blocks_decoded_ = 0;
};

}  // namespace avm
