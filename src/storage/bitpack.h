// Bit-packing of unsigned values at arbitrary widths (0..64 bits).
// Used by the FOR, Dict and Delta compression schemes.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "util/bits.h"

namespace avm {

/// Write `width` low bits of `v` at bit offset `bitpos` of `dst`.
/// `dst` must be zero-initialized over the touched range.
inline void WriteBits(uint8_t* dst, size_t bitpos, uint64_t v, uint32_t width) {
  if (width == 0) return;
  if (width < 64) v &= (uint64_t{1} << width) - 1;
  size_t byte = bitpos >> 3;
  unsigned shift = static_cast<unsigned>(bitpos & 7);
  dst[byte] |= static_cast<uint8_t>(v << shift);
  unsigned written = 8 - shift;
  while (written < width) {
    dst[++byte] |= static_cast<uint8_t>(v >> written);
    written += 8;
  }
}

/// Read `width` bits at bit offset `bitpos` of `src`.
inline uint64_t ReadBits(const uint8_t* src, size_t bitpos, uint32_t width) {
  if (width == 0) return 0;
  size_t byte = bitpos >> 3;
  unsigned shift = static_cast<unsigned>(bitpos & 7);
  uint64_t v = src[byte] >> shift;
  unsigned got = 8 - shift;
  while (got < width) {
    v |= static_cast<uint64_t>(src[++byte]) << got;
    got += 8;
  }
  return width == 64 ? v : v & ((uint64_t{1} << width) - 1);
}

/// Bytes needed to bit-pack n values at `width` bits (+1 slack byte so the
/// last ReadBits never reads past the buffer).
inline size_t BitPackedBytes(size_t n, uint32_t width) {
  return (n * width + 7) / 8 + 1;
}

/// Append `n` values of `width` bits each to `out`.
inline void BitPack(const uint64_t* values, size_t n, uint32_t width,
                    std::vector<uint8_t>* out) {
  if (width == 0) return;  // all zeros: nothing stored
  const size_t base = out->size();
  out->resize(base + BitPackedBytes(n, width), 0);
  uint8_t* dst = out->data() + base;
  for (size_t i = 0; i < n; ++i) WriteBits(dst, i * width, values[i], width);
}

/// Decode `n` values of `width` bits from `src`, starting at value `first`.
inline void BitUnpackAt(const uint8_t* src, size_t first, size_t n,
                        uint32_t width, uint64_t* out) {
  if (width == 0) {
    std::memset(out, 0, n * sizeof(uint64_t));
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    out[i] = ReadBits(src, (first + i) * width, width);
  }
}

inline void BitUnpack(const uint8_t* src, size_t n, uint32_t width,
                      uint64_t* out) {
  BitUnpackAt(src, 0, n, width, out);
}

/// Zigzag-encode a signed value into unsigned (small magnitudes → small).
inline uint64_t ZigzagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

inline int64_t ZigzagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

}  // namespace avm
