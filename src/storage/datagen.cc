#include "storage/datagen.h"

#include <algorithm>
#include <cmath>

namespace avm {

std::vector<int64_t> DataGen::UniformI64(size_t n, int64_t lo, int64_t hi) {
  std::vector<int64_t> v(n);
  for (auto& x : v) x = rng_.NextInRange(lo, hi);
  return v;
}

std::vector<int32_t> DataGen::UniformI32(size_t n, int32_t lo, int32_t hi) {
  std::vector<int32_t> v(n);
  for (auto& x : v) x = static_cast<int32_t>(rng_.NextInRange(lo, hi));
  return v;
}

std::vector<double> DataGen::UniformF64(size_t n, double lo, double hi) {
  std::vector<double> v(n);
  for (auto& x : v) x = lo + rng_.NextDouble() * (hi - lo);
  return v;
}

std::vector<int64_t> DataGen::ZipfI64(size_t n, uint64_t domain, double theta) {
  ZipfGenerator zipf(domain, theta, rng_.Next());
  std::vector<int64_t> v(n);
  for (auto& x : v) x = static_cast<int64_t>(zipf.Next());
  return v;
}

std::vector<int64_t> DataGen::SortedI64(size_t n, int64_t lo, int64_t hi) {
  auto v = UniformI64(n, lo, hi);
  std::sort(v.begin(), v.end());
  return v;
}

std::vector<int64_t> DataGen::RunsI64(size_t n, int64_t domain,
                                      double run_len) {
  std::vector<int64_t> v(n);
  size_t i = 0;
  while (i < n) {
    int64_t value = rng_.NextInRange(0, domain - 1);
    // Geometric run length with the requested mean.
    size_t len = 1;
    while (rng_.NextDouble() < 1.0 - 1.0 / run_len) ++len;
    for (size_t j = 0; j < len && i < n; ++j) v[i++] = value;
  }
  return v;
}

std::vector<int64_t> DataGen::BernoulliI64(size_t n, double selectivity) {
  std::vector<int64_t> v(n);
  for (auto& x : v) x = rng_.NextBool(selectivity) ? 1 : 0;
  return v;
}

namespace {

Status AppendColumn(Table* t, size_t col, const void* data, uint64_t n,
                    bool compress) {
  Column& c = t->column(col);
  const size_t w = TypeWidth(c.type());
  const auto* bytes = static_cast<const uint8_t*>(data);
  if (compress) return c.AppendValues(bytes, static_cast<uint32_t>(n));
  // Force Plain blocks.
  uint64_t done = 0;
  while (done < n) {
    uint32_t take =
        static_cast<uint32_t>(std::min<uint64_t>(c.block_size(), n - done));
    AVM_RETURN_NOT_OK(
        c.AppendBlockWithScheme(Scheme::kPlain, bytes + done * w, take));
    done += take;
  }
  return Status::OK();
}

}  // namespace

std::unique_ptr<Table> MakeLineitem(const LineitemSpec& spec) {
  Schema schema({{"l_quantity", TypeId::kI64},
                 {"l_extendedprice", TypeId::kI64},
                 {"l_discount", TypeId::kI64},
                 {"l_tax", TypeId::kI64},
                 {"l_returnflag", TypeId::kI8},
                 {"l_linestatus", TypeId::kI8},
                 {"l_shipdate", TypeId::kI32}});
  auto table = std::make_unique<Table>(schema, spec.block_size);
  Rng rng(spec.seed);
  const uint64_t n = spec.num_rows;

  std::vector<int64_t> quantity(n), price(n), discount(n), tax(n);
  std::vector<int8_t> returnflag(n), linestatus(n);
  std::vector<int32_t> shipdate(n);
  for (uint64_t i = 0; i < n; ++i) {
    quantity[i] = rng.NextInRange(1, 50);
    price[i] = rng.NextInRange(90000, 10500000);
    discount[i] = rng.NextInRange(0, 10);
    tax[i] = rng.NextInRange(0, 8);
    // TPC-H: returnflag correlates with shipdate; reproduce the correlation
    // so group sizes match (A/R only for old shipdates).
    shipdate[i] = static_cast<int32_t>(rng.NextInRange(8036, 10561));
    if (shipdate[i] < 9400) {
      returnflag[i] = static_cast<int8_t>(rng.NextBool(0.5) ? 0 : 2);  // A/R
    } else {
      returnflag[i] = 1;  // N
    }
    linestatus[i] = static_cast<int8_t>(shipdate[i] < 9500 ? 1 : 0);  // F/O
  }
  AppendColumn(table.get(), 0, quantity.data(), n, spec.compress).Abort();
  AppendColumn(table.get(), 1, price.data(), n, spec.compress).Abort();
  AppendColumn(table.get(), 2, discount.data(), n, spec.compress).Abort();
  AppendColumn(table.get(), 3, tax.data(), n, spec.compress).Abort();
  AppendColumn(table.get(), 4, returnflag.data(), n, spec.compress).Abort();
  AppendColumn(table.get(), 5, linestatus.data(), n, spec.compress).Abort();
  AppendColumn(table.get(), 6, shipdate.data(), n, spec.compress).Abort();
  return table;
}

std::unique_ptr<Table> MakeOrders(uint64_t num_rows, uint64_t seed) {
  Schema schema({{"o_orderkey", TypeId::kI64},
                 {"o_custkey", TypeId::kI64},
                 {"o_totalprice", TypeId::kI64},
                 {"o_orderdate", TypeId::kI32}});
  auto table = std::make_unique<Table>(schema);
  Rng rng(seed);
  std::vector<int64_t> orderkey(num_rows), custkey(num_rows),
      total(num_rows);
  std::vector<int32_t> orderdate(num_rows);
  for (uint64_t i = 0; i < num_rows; ++i) {
    orderkey[i] = static_cast<int64_t>(i);
    custkey[i] = rng.NextInRange(0, std::max<int64_t>(1, num_rows / 10) - 1);
    total[i] = rng.NextInRange(1000, 50000000);
    orderdate[i] = static_cast<int32_t>(rng.NextInRange(8036, 10561));
  }
  AppendColumn(table.get(), 0, orderkey.data(), num_rows, true).Abort();
  AppendColumn(table.get(), 1, custkey.data(), num_rows, true).Abort();
  AppendColumn(table.get(), 2, total.data(), num_rows, true).Abort();
  AppendColumn(table.get(), 3, orderdate.data(), num_rows, true).Abort();
  return table;
}

std::unique_ptr<Table> MakePart(uint64_t num_rows, uint64_t seed) {
  Schema schema({{"p_partkey", TypeId::kI64},
                 {"p_size", TypeId::kI32},
                 {"p_retail", TypeId::kI64}});
  auto table = std::make_unique<Table>(schema);
  Rng rng(seed);
  std::vector<int64_t> partkey(num_rows), retail(num_rows);
  std::vector<int32_t> size(num_rows);
  for (uint64_t i = 0; i < num_rows; ++i) {
    partkey[i] = static_cast<int64_t>(i);
    size[i] = static_cast<int32_t>(rng.NextInRange(1, 50));
    retail[i] = rng.NextInRange(90000, 200000);
  }
  AppendColumn(table.get(), 0, partkey.data(), num_rows, true).Abort();
  AppendColumn(table.get(), 1, size.data(), num_rows, true).Abort();
  AppendColumn(table.get(), 2, retail.data(), num_rows, true).Abort();
  return table;
}

}  // namespace avm
