// Chunk: the chunk-at-a-time unit of work (MonetDB/X100 style).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "storage/vector.h"

namespace avm {

/// A horizontal slice of `count` tuples across several typed vectors,
/// with an optional selection vector marking qualifying rows.
class Chunk {
 public:
  Chunk() = default;

  /// Create a chunk with the given column types and per-vector capacity.
  Chunk(const std::vector<TypeId>& types, uint32_t capacity) {
    Reset(types, capacity);
  }

  void Reset(const std::vector<TypeId>& types, uint32_t capacity) {
    columns_.clear();
    columns_.reserve(types.size());
    for (TypeId t : types) columns_.emplace_back(t, capacity);
    sel_.Reset(capacity);
    capacity_ = capacity;
    count_ = 0;
  }

  uint32_t count() const { return count_; }
  void set_count(uint32_t n) { count_ = n; }
  uint32_t capacity() const { return capacity_; }
  size_t num_columns() const { return columns_.size(); }

  Vector& column(size_t i) { return columns_[i]; }
  const Vector& column(size_t i) const { return columns_[i]; }

  SelectionVector& sel() { return sel_; }
  const SelectionVector& sel() const { return sel_; }

  /// Number of *qualifying* rows (selection-aware).
  uint32_t ActiveCount() const { return sel_.enabled() ? sel_.count() : count_; }

  /// Add a column of type `t` (capacity matches the chunk).
  Vector& AddColumn(TypeId t) {
    columns_.emplace_back(t, capacity_);
    return columns_.back();
  }

 private:
  std::vector<Vector> columns_;
  SelectionVector sel_;
  uint32_t capacity_ = 0;
  uint32_t count_ = 0;
};

}  // namespace avm
