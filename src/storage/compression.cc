#include "storage/compression.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <unordered_map>
#include <unordered_set>

#include "storage/bitpack.h"
#include "util/string_util.h"

namespace avm {

const char* SchemeName(Scheme s) {
  switch (s) {
    case Scheme::kPlain: return "plain";
    case Scheme::kRle: return "rle";
    case Scheme::kDict: return "dict";
    case Scheme::kFor: return "for";
    case Scheme::kDelta: return "delta";
  }
  return "?";
}

namespace {

constexpr uint32_t kDistinctCap = 4096;

template <typename T>
BlockStats ComputeStatsTyped(const T* v, uint32_t n) {
  BlockStats s;
  if (n == 0) return s;
  T mn = v[0], mx = v[0];
  bool sorted = true;
  uint64_t runs = 1;
  std::unordered_set<int64_t> distinct;
  bool track_distinct = true;
  for (uint32_t i = 0; i < n; ++i) {
    mn = std::min(mn, v[i]);
    mx = std::max(mx, v[i]);
    if (i > 0) {
      if (v[i] < v[i - 1]) sorted = false;
      if (v[i] != v[i - 1]) ++runs;
    }
    if (track_distinct) {
      distinct.insert(static_cast<int64_t>(v[i]));
      if (distinct.size() > kDistinctCap) track_distinct = false;
    }
  }
  if constexpr (std::is_floating_point_v<T>) {
    s.min_f = mn;
    s.max_f = mx;
    // Integer stats left 0 for float blocks.
  } else {
    s.min_i = static_cast<int64_t>(mn);
    s.max_i = static_cast<int64_t>(mx);
  }
  s.distinct = track_distinct ? static_cast<uint32_t>(distinct.size())
                              : kDistinctCap + 1;
  s.avg_run_len = static_cast<double>(n) / static_cast<double>(runs);
  s.sorted = sorted;
  return s;
}

// ---------- integer codecs (operate on int64-widened values) ----------

template <typename T>
void Widen(const T* in, uint32_t n, int64_t* out) {
  for (uint32_t i = 0; i < n; ++i) out[i] = static_cast<int64_t>(in[i]);
}

template <typename T>
void Narrow(const int64_t* in, uint32_t n, T* out) {
  for (uint32_t i = 0; i < n; ++i) out[i] = static_cast<T>(in[i]);
}

Status EncodeRleInt(const int64_t* v, uint32_t n, Block* b) {
  std::vector<int64_t> values;
  std::vector<uint32_t> lengths;
  uint32_t i = 0;
  while (i < n) {
    uint32_t j = i + 1;
    while (j < n && v[j] == v[i]) ++j;
    values.push_back(v[i]);
    lengths.push_back(j - i);
    i = j;
  }
  b->run_count = static_cast<uint32_t>(values.size());
  b->data.resize(values.size() * (sizeof(int64_t) + sizeof(uint32_t)));
  std::memcpy(b->data.data(), values.data(), values.size() * sizeof(int64_t));
  std::memcpy(b->data.data() + values.size() * sizeof(int64_t), lengths.data(),
              lengths.size() * sizeof(uint32_t));
  return Status::OK();
}

Status EncodeDictInt(const int64_t* v, uint32_t n, Block* b) {
  std::vector<int64_t> dict;
  std::unordered_map<int64_t, uint32_t> index;
  std::vector<uint64_t> codes(n);
  for (uint32_t i = 0; i < n; ++i) {
    auto [it, inserted] = index.try_emplace(v[i], dict.size());
    if (inserted) dict.push_back(v[i]);
    codes[i] = it->second;
  }
  if (dict.size() > (uint32_t{1} << 20)) {
    return Status::InvalidArgument("dictionary too large");
  }
  b->dict_size = static_cast<uint32_t>(dict.size());
  b->bit_width = bits::BitWidth(dict.empty() ? 0 : dict.size() - 1);
  b->data.resize(dict.size() * sizeof(int64_t));
  std::memcpy(b->data.data(), dict.data(), dict.size() * sizeof(int64_t));
  BitPack(codes.data(), n, b->bit_width, &b->data);
  return Status::OK();
}

Status EncodeForInt(const int64_t* v, uint32_t n, const BlockStats& stats,
                    Block* b) {
  const uint64_t range =
      static_cast<uint64_t>(stats.max_i) - static_cast<uint64_t>(stats.min_i);
  b->for_ref = stats.min_i;
  b->bit_width = bits::BitWidth(range);
  std::vector<uint64_t> deltas(n);
  for (uint32_t i = 0; i < n; ++i) {
    deltas[i] = static_cast<uint64_t>(v[i]) - static_cast<uint64_t>(b->for_ref);
  }
  BitPack(deltas.data(), n, b->bit_width, &b->data);
  return Status::OK();
}

Status EncodeDeltaInt(const int64_t* v, uint32_t n, Block* b) {
  b->delta_first = n > 0 ? v[0] : 0;
  if (n <= 1) {
    b->bit_width = 0;
    return Status::OK();
  }
  std::vector<uint64_t> zz(n - 1);
  uint64_t maxzz = 0;
  for (uint32_t i = 1; i < n; ++i) {
    zz[i - 1] = ZigzagEncode(v[i] - v[i - 1]);
    maxzz = std::max(maxzz, zz[i - 1]);
  }
  b->bit_width = bits::BitWidth(maxzz);
  BitPack(zz.data(), n - 1, b->bit_width, &b->data);
  return Status::OK();
}

// ---------- float codecs ----------

template <typename T>
Status EncodeRleFloat(const T* v, uint32_t n, Block* b) {
  std::vector<T> values;
  std::vector<uint32_t> lengths;
  uint32_t i = 0;
  while (i < n) {
    uint32_t j = i + 1;
    while (j < n && v[j] == v[i]) ++j;
    values.push_back(v[i]);
    lengths.push_back(j - i);
    i = j;
  }
  b->run_count = static_cast<uint32_t>(values.size());
  b->data.resize(values.size() * (sizeof(T) + sizeof(uint32_t)));
  std::memcpy(b->data.data(), values.data(), values.size() * sizeof(T));
  std::memcpy(b->data.data() + values.size() * sizeof(T), lengths.data(),
              lengths.size() * sizeof(uint32_t));
  return Status::OK();
}

template <typename T>
Status EncodeDictFloat(const T* v, uint32_t n, Block* b) {
  std::vector<T> dict;
  std::unordered_map<T, uint32_t> index;
  std::vector<uint64_t> codes(n);
  for (uint32_t i = 0; i < n; ++i) {
    auto [it, inserted] = index.try_emplace(v[i], dict.size());
    if (inserted) dict.push_back(v[i]);
    codes[i] = it->second;
  }
  b->dict_size = static_cast<uint32_t>(dict.size());
  b->bit_width = bits::BitWidth(dict.empty() ? 0 : dict.size() - 1);
  b->data.resize(dict.size() * sizeof(T));
  std::memcpy(b->data.data(), dict.data(), dict.size() * sizeof(T));
  BitPack(codes.data(), n, b->bit_width, &b->data);
  return Status::OK();
}

}  // namespace

BlockStats ComputeStats(TypeId t, const void* values, uint32_t n) {
  return DispatchType(t, [&]<typename T>() -> BlockStats {
    if constexpr (std::is_same_v<T, bool>) {
      return ComputeStatsTyped(static_cast<const int8_t*>(values), n);
    } else {
      return ComputeStatsTyped(static_cast<const T*>(values), n);
    }
  });
}

Scheme ChooseScheme(TypeId t, const BlockStats& stats, uint32_t n) {
  if (n == 0) return Scheme::kPlain;
  if (stats.avg_run_len >= 4.0) return Scheme::kRle;
  const size_t raw_bits = TypeWidth(t) * 8;
  if (IsIntegerType(t)) {
    const uint64_t range = static_cast<uint64_t>(stats.max_i) -
                           static_cast<uint64_t>(stats.min_i);
    const uint32_t for_width = bits::BitWidth(range);
    if (stats.sorted && n > 1) {
      // Sorted data usually has tiny per-step deltas.
      return Scheme::kDelta;
    }
    if (for_width + 2 < raw_bits) return Scheme::kFor;
    if (stats.distinct <= kDistinctCap &&
        bits::BitWidth(stats.distinct) + 2 < raw_bits &&
        stats.distinct < n / 2) {
      return Scheme::kDict;
    }
    return Scheme::kPlain;
  }
  // Floats: only dictionary helps when few distinct values.
  if (stats.distinct <= kDistinctCap && stats.distinct < n / 2) {
    return Scheme::kDict;
  }
  return Scheme::kPlain;
}

Result<Block> EncodeBlock(Scheme scheme, TypeId t, const void* values,
                          uint32_t n) {
  Block b;
  b.scheme = scheme;
  b.type = t;
  b.count = n;
  b.stats = ComputeStats(t, values, n);

  if (scheme == Scheme::kPlain) {
    b.data.resize(static_cast<size_t>(n) * TypeWidth(t));
    std::memcpy(b.data.data(), values, b.data.size());
    return b;
  }

  if (IsFloatType(t)) {
    Status st = DispatchType(t, [&]<typename T>() -> Status {
      if constexpr (std::is_floating_point_v<T>) {
        const T* v = static_cast<const T*>(values);
        switch (scheme) {
          case Scheme::kRle: return EncodeRleFloat(v, n, &b);
          case Scheme::kDict: return EncodeDictFloat(v, n, &b);
          default:
            return Status::InvalidArgument(
                StrFormat("scheme %s unsupported for %s", SchemeName(scheme),
                          TypeName(t)));
        }
      }
      return Status::Internal("unreachable");
    });
    if (!st.ok()) return st;
    return b;
  }

  // Integers (and bool, treated as i8): widen to int64 and encode.
  std::vector<int64_t> wide(n);
  DispatchType(t, [&]<typename T>() {
    if constexpr (!std::is_floating_point_v<T>) {
      if constexpr (std::is_same_v<T, bool>) {
        Widen(static_cast<const int8_t*>(values), n, wide.data());
      } else {
        Widen(static_cast<const T*>(values), n, wide.data());
      }
    }
  });
  Status st;
  switch (scheme) {
    case Scheme::kRle:
      st = EncodeRleInt(wide.data(), n, &b);
      break;
    case Scheme::kDict:
      st = EncodeDictInt(wide.data(), n, &b);
      break;
    case Scheme::kFor:
      st = EncodeForInt(wide.data(), n, b.stats, &b);
      break;
    case Scheme::kDelta:
      st = EncodeDeltaInt(wide.data(), n, &b);
      break;
    default:
      st = Status::Internal("unhandled scheme");
  }
  if (!st.ok()) return st;
  return b;
}

Result<Block> EncodeBlockAuto(TypeId t, const void* values, uint32_t n) {
  BlockStats stats = ComputeStats(t, values, n);
  Scheme s = ChooseScheme(t, stats, n);
  return EncodeBlock(s, t, values, n);
}

namespace {

// Decode [offset, offset+len) of an integer-family block into int64.
Status DecodeIntRange(const Block& b, uint32_t offset, uint32_t len,
                      int64_t* out) {
  switch (b.scheme) {
    case Scheme::kRle: {
      const auto* values = reinterpret_cast<const int64_t*>(b.data.data());
      const auto* lengths = reinterpret_cast<const uint32_t*>(
          b.data.data() + b.run_count * sizeof(int64_t));
      uint32_t pos = 0, o = 0;
      for (uint32_t r = 0; r < b.run_count && o < len; ++r) {
        uint32_t run_end = pos + lengths[r];
        // Emit the overlap of [pos, run_end) with [offset, offset+len).
        uint32_t lo = std::max(pos, offset);
        uint32_t hi = std::min(run_end, offset + len);
        for (uint32_t i = lo; i < hi; ++i) out[o++] = values[r];
        pos = run_end;
      }
      return Status::OK();
    }
    case Scheme::kDict: {
      const auto* dict = reinterpret_cast<const int64_t*>(b.data.data());
      const uint8_t* packed = b.data.data() + b.dict_size * sizeof(int64_t);
      for (uint32_t i = 0; i < len; ++i) {
        uint64_t code = ReadBits(packed,
                                 static_cast<size_t>(offset + i) * b.bit_width,
                                 b.bit_width);
        out[i] = dict[code];
      }
      return Status::OK();
    }
    case Scheme::kFor: {
      for (uint32_t i = 0; i < len; ++i) {
        uint64_t d = ReadBits(b.data.data(),
                              static_cast<size_t>(offset + i) * b.bit_width,
                              b.bit_width);
        out[i] = b.for_ref + static_cast<int64_t>(d);
      }
      return Status::OK();
    }
    case Scheme::kDelta: {
      // Sequential dependency: reconstruct the prefix up to offset+len.
      int64_t cur = b.delta_first;
      uint32_t o = 0;
      if (offset == 0 && len > 0) out[o++] = cur;
      for (uint32_t i = 1; i < b.count && o < len; ++i) {
        uint64_t zz = ReadBits(b.data.data(),
                               static_cast<size_t>(i - 1) * b.bit_width,
                               b.bit_width);
        cur += ZigzagDecode(zz);
        if (i >= offset) out[o++] = cur;
      }
      return Status::OK();
    }
    default:
      return Status::Internal("unhandled integer scheme");
  }
}

}  // namespace

Status DecodeBlockRange(const Block& b, uint32_t offset, uint32_t len,
                        void* out) {
  if (offset + len > b.count) {
    return Status::OutOfRange(
        StrFormat("decode [%u, %u) of block with %u values", offset,
                  offset + len, b.count));
  }
  if (b.scheme == Scheme::kPlain) {
    const size_t w = TypeWidth(b.type);
    std::memcpy(out, b.data.data() + static_cast<size_t>(offset) * w,
                static_cast<size_t>(len) * w);
    return Status::OK();
  }
  if (IsFloatType(b.type)) {
    return DispatchType(b.type, [&]<typename T>() -> Status {
      if constexpr (std::is_floating_point_v<T>) {
        T* o = static_cast<T*>(out);
        if (b.scheme == Scheme::kRle) {
          const T* values = reinterpret_cast<const T*>(b.data.data());
          const auto* lengths = reinterpret_cast<const uint32_t*>(
              b.data.data() + b.run_count * sizeof(T));
          uint32_t pos = 0, emitted = 0;
          for (uint32_t r = 0; r < b.run_count && emitted < len; ++r) {
            uint32_t run_end = pos + lengths[r];
            uint32_t lo = std::max(pos, offset);
            uint32_t hi = std::min(run_end, offset + len);
            for (uint32_t i = lo; i < hi; ++i) o[emitted++] = values[r];
            pos = run_end;
          }
          return Status::OK();
        }
        if (b.scheme == Scheme::kDict) {
          const T* dict = reinterpret_cast<const T*>(b.data.data());
          const uint8_t* packed = b.data.data() + b.dict_size * sizeof(T);
          for (uint32_t i = 0; i < len; ++i) {
            uint64_t code =
                ReadBits(packed, static_cast<size_t>(offset + i) * b.bit_width,
                         b.bit_width);
            o[i] = dict[code];
          }
          return Status::OK();
        }
        return Status::Internal("unhandled float scheme");
      }
      return Status::Internal("unreachable");
    });
  }
  // Integer family: decode via int64 then narrow.
  std::vector<int64_t> wide(len);
  AVM_RETURN_NOT_OK(DecodeIntRange(b, offset, len, wide.data()));
  DispatchType(b.type, [&]<typename T>() {
    if constexpr (!std::is_floating_point_v<T>) {
      if constexpr (std::is_same_v<T, bool>) {
        Narrow(wide.data(), len, static_cast<int8_t*>(out));
      } else {
        Narrow(wide.data(), len, static_cast<T*>(out));
      }
    }
  });
  return Status::OK();
}

Status DecodeBlock(const Block& b, void* out) {
  return DecodeBlockRange(b, 0, b.count, out);
}

Status DecodeForDeltas(const Block& b, uint64_t* out) {
  if (b.scheme != Scheme::kFor) {
    return Status::InvalidArgument("DecodeForDeltas on non-FOR block");
  }
  BitUnpack(b.data.data(), b.count, b.bit_width, out);
  return Status::OK();
}

Status DecodeForDeltasRange32(const Block& b, uint32_t offset, uint32_t len,
                              uint32_t* out) {
  if (b.scheme != Scheme::kFor) {
    return Status::InvalidArgument("DecodeForDeltasRange32 on non-FOR block");
  }
  if (b.bit_width > 32) {
    return Status::InvalidArgument("FOR deltas wider than 32 bits");
  }
  if (offset + len > b.count) return Status::OutOfRange("delta range");
  for (uint32_t i = 0; i < len; ++i) {
    out[i] = static_cast<uint32_t>(
        ReadBits(b.data.data(),
                 static_cast<size_t>(offset + i) * b.bit_width, b.bit_width));
  }
  return Status::OK();
}

Status DecodeRleRuns(const Block& b, std::vector<int64_t>* values,
                     std::vector<uint32_t>* lengths) {
  if (b.scheme != Scheme::kRle) {
    return Status::InvalidArgument("DecodeRleRuns on non-RLE block");
  }
  if (IsFloatType(b.type)) {
    return Status::InvalidArgument("DecodeRleRuns on float block");
  }
  values->assign(reinterpret_cast<const int64_t*>(b.data.data()),
                 reinterpret_cast<const int64_t*>(b.data.data()) + b.run_count);
  const auto* len_ptr = reinterpret_cast<const uint32_t*>(
      b.data.data() + b.run_count * sizeof(int64_t));
  lengths->assign(len_ptr, len_ptr + b.run_count);
  return Status::OK();
}

Status DecodeDictionary(const Block& b, std::vector<int64_t>* dict) {
  if (b.scheme != Scheme::kDict) {
    return Status::InvalidArgument("DecodeDictionary on non-dict block");
  }
  if (IsFloatType(b.type)) {
    return Status::InvalidArgument("DecodeDictionary on float block");
  }
  dict->assign(reinterpret_cast<const int64_t*>(b.data.data()),
               reinterpret_cast<const int64_t*>(b.data.data()) + b.dict_size);
  return Status::OK();
}

Status DecodeDictCodes(const Block& b, uint32_t* codes) {
  if (b.scheme != Scheme::kDict) {
    return Status::InvalidArgument("DecodeDictCodes on non-dict block");
  }
  const size_t value_width =
      IsFloatType(b.type) ? TypeWidth(b.type) : sizeof(int64_t);
  const uint8_t* packed = b.data.data() + b.dict_size * value_width;
  for (uint32_t i = 0; i < b.count; ++i) {
    codes[i] = static_cast<uint32_t>(
        ReadBits(packed, static_cast<size_t>(i) * b.bit_width, b.bit_width));
  }
  return Status::OK();
}

}  // namespace avm
