// Scalar type system shared by storage, DSL, interpreter and JIT.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace avm {

/// Index type of selection vectors (X100-style).
using sel_t = uint32_t;

/// Scalar types the engine processes. Strings are deliberately absent from
/// the hot path (the paper excludes non-trivial string ops from fused
/// functions); dictionary-encoded i32 codes represent them upstream.
enum class TypeId : uint8_t {
  kBool = 0,
  kI8,
  kI16,
  kI32,
  kI64,
  kF32,
  kF64,
};

constexpr size_t kNumTypes = 7;

/// Byte width of a scalar of type `t`.
constexpr size_t TypeWidth(TypeId t) {
  switch (t) {
    case TypeId::kBool:
    case TypeId::kI8:
      return 1;
    case TypeId::kI16:
      return 2;
    case TypeId::kI32:
    case TypeId::kF32:
      return 4;
    case TypeId::kI64:
    case TypeId::kF64:
      return 8;
  }
  return 0;
}

constexpr bool IsIntegerType(TypeId t) {
  return t == TypeId::kI8 || t == TypeId::kI16 || t == TypeId::kI32 ||
         t == TypeId::kI64;
}

constexpr bool IsFloatType(TypeId t) {
  return t == TypeId::kF32 || t == TypeId::kF64;
}

const char* TypeName(TypeId t);

/// C type name used by the JIT code generator ("int32_t", "double", ...).
const char* TypeCName(TypeId t);

/// Map C++ types to TypeId at compile time.
template <typename T>
struct TypeIdOf;
template <> struct TypeIdOf<bool> { static constexpr TypeId value = TypeId::kBool; };
template <> struct TypeIdOf<int8_t> { static constexpr TypeId value = TypeId::kI8; };
template <> struct TypeIdOf<int16_t> { static constexpr TypeId value = TypeId::kI16; };
template <> struct TypeIdOf<int32_t> { static constexpr TypeId value = TypeId::kI32; };
template <> struct TypeIdOf<int64_t> { static constexpr TypeId value = TypeId::kI64; };
template <> struct TypeIdOf<float> { static constexpr TypeId value = TypeId::kF32; };
template <> struct TypeIdOf<double> { static constexpr TypeId value = TypeId::kF64; };

/// Invoke `fn.template operator()<T>()` with the C type for `t`.
template <typename Fn>
auto DispatchType(TypeId t, Fn&& fn) {
  switch (t) {
    case TypeId::kBool: return fn.template operator()<bool>();
    case TypeId::kI8: return fn.template operator()<int8_t>();
    case TypeId::kI16: return fn.template operator()<int16_t>();
    case TypeId::kI32: return fn.template operator()<int32_t>();
    case TypeId::kI64: return fn.template operator()<int64_t>();
    case TypeId::kF32: return fn.template operator()<float>();
    case TypeId::kF64: return fn.template operator()<double>();
  }
  __builtin_unreachable();
}

/// Smallest signed integer type that can represent [lo, hi].
/// Used by the compact-data-types adaptation (paper §I, [12]).
TypeId SmallestIntTypeFor(int64_t lo, int64_t hi);

/// Default chunk size (tuples per chunk) for vectorized execution.
constexpr uint32_t kDefaultChunkSize = 1024;

}  // namespace avm
