// Typed vectors and selection vectors — the unit of vectorized execution.
#pragma once

#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "storage/types.h"
#include "util/macros.h"

namespace avm {

/// Cache-line aligned, fixed-capacity byte buffer.
class AlignedBuffer {
 public:
  AlignedBuffer() = default;
  explicit AlignedBuffer(size_t bytes) { Resize(bytes); }

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::move(other.data_)), capacity_(other.capacity_) {
    other.capacity_ = 0;
  }
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    data_ = std::move(other.data_);
    capacity_ = other.capacity_;
    other.capacity_ = 0;
    return *this;
  }

  void Resize(size_t bytes) {
    if (bytes <= capacity_ && data_ != nullptr) return;
    size_t cap = ((bytes | 63) + 1) & ~size_t{63};
    void* mem = std::aligned_alloc(64, cap);
    data_.reset(static_cast<uint8_t*>(mem));
    capacity_ = cap;
  }

  uint8_t* data() { return data_.get(); }
  const uint8_t* data() const { return data_.get(); }
  size_t capacity() const { return capacity_; }

 private:
  struct FreeDeleter {
    void operator()(uint8_t* p) const { std::free(p); }
  };
  std::unique_ptr<uint8_t, FreeDeleter> data_;
  size_t capacity_ = 0;
};

/// A typed, fixed-capacity array of scalars. The interpreter and JIT operate
/// on raw pointers obtained from Data<T>().
class Vector {
 public:
  Vector() = default;
  Vector(TypeId type, uint32_t capacity) { Reset(type, capacity); }

  void Reset(TypeId type, uint32_t capacity) {
    type_ = type;
    capacity_ = capacity;
    buf_.Resize(static_cast<size_t>(capacity) * TypeWidth(type));
  }

  TypeId type() const { return type_; }
  uint32_t capacity() const { return capacity_; }

  void* RawData() { return buf_.data(); }
  const void* RawData() const { return buf_.data(); }

  template <typename T>
  T* Data() {
    return reinterpret_cast<T*>(buf_.data());
  }
  template <typename T>
  const T* Data() const {
    return reinterpret_cast<const T*>(buf_.data());
  }

  template <typename T>
  T Get(uint32_t i) const {
    return Data<T>()[i];
  }
  template <typename T>
  void Set(uint32_t i, T v) {
    Data<T>()[i] = v;
  }

  /// Copy `n` values from `src` (same type assumed).
  void CopyFrom(const void* src, uint32_t n) {
    std::memcpy(buf_.data(), src, static_cast<size_t>(n) * TypeWidth(type_));
  }

 private:
  TypeId type_ = TypeId::kI64;
  uint32_t capacity_ = 0;
  AlignedBuffer buf_;
};

/// X100-style selection vector: indices of qualifying tuples in a chunk.
/// Filters produce selection vectors instead of physically moving data;
/// `condense` materializes the selection away (Table I).
class SelectionVector {
 public:
  SelectionVector() = default;
  explicit SelectionVector(uint32_t capacity) { Reset(capacity); }

  void Reset(uint32_t capacity) {
    capacity_ = capacity;
    buf_.Resize(static_cast<size_t>(capacity) * sizeof(sel_t));
    count_ = 0;
    enabled_ = false;
  }

  sel_t* Data() { return reinterpret_cast<sel_t*>(buf_.data()); }
  const sel_t* Data() const {
    return reinterpret_cast<const sel_t*>(buf_.data());
  }

  uint32_t count() const { return count_; }
  void set_count(uint32_t n) { count_ = n; }
  uint32_t capacity() const { return capacity_; }

  /// Whether the selection is active. Inactive means "all rows selected".
  bool enabled() const { return enabled_; }
  void set_enabled(bool e) { enabled_ = e; }

  /// Make this the identity selection over n rows (all selected, enabled).
  void MakeIdentity(uint32_t n) {
    Reset(std::max(n, capacity_));
    sel_t* d = Data();
    for (uint32_t i = 0; i < n; ++i) d[i] = i;
    count_ = n;
    enabled_ = true;
  }

 private:
  AlignedBuffer buf_;
  uint32_t capacity_ = 0;
  uint32_t count_ = 0;
  bool enabled_ = false;
};

}  // namespace avm
