#include "storage/types.h"

namespace avm {

const char* TypeName(TypeId t) {
  switch (t) {
    case TypeId::kBool: return "bool";
    case TypeId::kI8: return "i8";
    case TypeId::kI16: return "i16";
    case TypeId::kI32: return "i32";
    case TypeId::kI64: return "i64";
    case TypeId::kF32: return "f32";
    case TypeId::kF64: return "f64";
  }
  return "?";
}

const char* TypeCName(TypeId t) {
  switch (t) {
    case TypeId::kBool: return "bool";
    case TypeId::kI8: return "int8_t";
    case TypeId::kI16: return "int16_t";
    case TypeId::kI32: return "int32_t";
    case TypeId::kI64: return "int64_t";
    case TypeId::kF32: return "float";
    case TypeId::kF64: return "double";
  }
  return "?";
}

TypeId SmallestIntTypeFor(int64_t lo, int64_t hi) {
  if (lo >= INT8_MIN && hi <= INT8_MAX) return TypeId::kI8;
  if (lo >= INT16_MIN && hi <= INT16_MAX) return TypeId::kI16;
  if (lo >= INT32_MIN && hi <= INT32_MAX) return TypeId::kI32;
  return TypeId::kI64;
}

}  // namespace avm
