// Block compression schemes.
//
// The paper's motivating pain point: an engine that wants specialized code
// per combination of (compression scheme × type × operation) cannot
// pre-generate all variants — the adaptive VM instead specializes for the
// combination it currently observes and falls back when a block's scheme
// changes. This module provides the scheme zoo that creates that situation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "storage/types.h"
#include "util/status.h"

namespace avm {

enum class Scheme : uint8_t {
  kPlain = 0,  ///< raw values
  kRle,        ///< (value, run-length) pairs
  kDict,       ///< dictionary + bit-packed codes
  kFor,        ///< frame-of-reference + bit-packed deltas (integers)
  kDelta,      ///< first value + zigzag bit-packed successive deltas
};

constexpr size_t kNumSchemes = 5;
const char* SchemeName(Scheme s);

/// Per-block statistics, collected at encode time. The compact-data-types
/// adaptation and the scheme chooser both consult them.
struct BlockStats {
  int64_t min_i = 0;
  int64_t max_i = 0;
  double min_f = 0;
  double max_f = 0;
  uint32_t distinct = 0;     ///< exact for <= 4096 distinct, else saturated
  double avg_run_len = 1.0;  ///< mean run length of equal adjacent values
  bool sorted = false;
};

/// An immutable encoded block of `count` values of one column.
struct Block {
  Scheme scheme = Scheme::kPlain;
  TypeId type = TypeId::kI64;
  uint32_t count = 0;
  BlockStats stats;
  std::vector<uint8_t> data;  ///< scheme-specific payload

  // Scheme-specific parameters.
  int64_t for_ref = 0;       ///< kFor: reference (minimum) value
  uint32_t bit_width = 0;    ///< kFor/kDict/kDelta: packed width
  uint32_t dict_size = 0;    ///< kDict: number of dictionary entries
  uint32_t run_count = 0;    ///< kRle: number of runs
  int64_t delta_first = 0;   ///< kDelta: first value

  size_t EncodedBytes() const { return data.size() + sizeof(Block); }
  double CompressionRatio() const {
    size_t raw = static_cast<size_t>(count) * TypeWidth(type);
    return raw == 0 ? 1.0 : static_cast<double>(raw) /
                                static_cast<double>(data.size() + 32);
  }
};

/// Compute statistics over `n` values of type `t`.
BlockStats ComputeStats(TypeId t, const void* values, uint32_t n);

/// Pick the best scheme for the given stats (integers only get kFor/kDelta).
Scheme ChooseScheme(TypeId t, const BlockStats& stats, uint32_t n);

/// Encode `n` values into a block using `scheme`.
Result<Block> EncodeBlock(Scheme scheme, TypeId t, const void* values,
                          uint32_t n);

/// Encode with automatically chosen scheme.
Result<Block> EncodeBlockAuto(TypeId t, const void* values, uint32_t n);

/// Decode the whole block into `out` (caller provides count*width bytes).
Status DecodeBlock(const Block& block, void* out);

/// Decode `len` values starting at `offset`.
Status DecodeBlockRange(const Block& block, uint32_t offset, uint32_t len,
                        void* out);

/// \name Compressed-execution accessors
/// These expose enough structure for the VM to execute *on* compressed data
/// (paper §III-C "compressed execution"): FOR blocks yield narrow unsigned
/// deltas; RLE blocks yield (value, run) pairs.
/// @{

/// Decode a FOR block's bit-packed deltas (without adding the reference).
/// Only valid for scheme == kFor. `out` receives `count` uint64 deltas.
Status DecodeForDeltas(const Block& block, uint64_t* out);

/// Decode `len` FOR deltas starting at `offset` into uint32 (requires
/// bit_width <= 32). Used by compressed-execution JIT traces, which operate
/// directly on narrow deltas plus the block reference.
Status DecodeForDeltasRange32(const Block& block, uint32_t offset,
                              uint32_t len, uint32_t* out);

/// Access an RLE block's runs: values[i] repeated lengths[i] times.
Status DecodeRleRuns(const Block& block, std::vector<int64_t>* values,
                     std::vector<uint32_t>* lengths);

/// Dictionary of a kDict block, as int64 (integers) or raw doubles.
Status DecodeDictionary(const Block& block, std::vector<int64_t>* dict);
/// Bit-packed codes of a kDict block.
Status DecodeDictCodes(const Block& block, uint32_t* codes);
/// @}

}  // namespace avm
