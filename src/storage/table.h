// Schema and table: named, typed, block-compressed columns.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "storage/column.h"
#include "util/status.h"

namespace avm {

struct Field {
  std::string name;
  TypeId type;
};

class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }

  /// Index of a field by name, -1 if absent.
  int FieldIndex(const std::string& name) const {
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (fields_[i].name == name) return static_cast<int>(i);
    }
    return -1;
  }

 private:
  std::vector<Field> fields_;
};

/// Column-oriented table; all columns have the same row count.
class Table {
 public:
  explicit Table(Schema schema, uint32_t block_size = kDefaultBlockSize)
      : schema_(std::move(schema)) {
    columns_.reserve(schema_.num_fields());
    for (size_t i = 0; i < schema_.num_fields(); ++i) {
      columns_.push_back(
          std::make_unique<Column>(schema_.field(i).type, block_size));
    }
  }

  const Schema& schema() const { return schema_; }
  uint64_t num_rows() const {
    return columns_.empty() ? 0 : columns_[0]->num_rows();
  }
  size_t num_columns() const { return columns_.size(); }

  Column& column(size_t i) { return *columns_[i]; }
  const Column& column(size_t i) const { return *columns_[i]; }

  Result<const Column*> ColumnByName(const std::string& name) const {
    int idx = schema_.FieldIndex(name);
    if (idx < 0) return Status::NotFound("no column named " + name);
    return const_cast<const Column*>(columns_[idx].get());
  }

  size_t EncodedBytes() const {
    size_t total = 0;
    for (const auto& c : columns_) total += c->EncodedBytes();
    return total;
  }

 private:
  Schema schema_;
  std::vector<std::unique_ptr<Column>> columns_;
};

/// Chunk-iterator source over a table: one streaming ColumnChunkCursor per
/// column, so scan morsels decode one compressed super-chunk at a time into
/// caller scratch instead of requiring fully-decoded resident columns
/// (docs/SPILL.md, "Streamed scans").
class TableChunkSource {
 public:
  /// Build cursors over every column of `table` (not owned; must outlive
  /// the source).
  explicit TableChunkSource(const Table* table) {
    cursors_.reserve(table->num_columns());
    for (size_t i = 0; i < table->num_columns(); ++i) {
      cursors_.emplace_back(&table->column(i));
    }
  }

  /// Decode `len` values of column `col` starting at global row `row` into
  /// `out`, reporting the compression scheme the read started in.
  Status ReadChunk(size_t col, uint64_t row, uint32_t len, void* out,
                   Scheme* scheme = nullptr) {
    if (col >= cursors_.size()) {
      return Status::OutOfRange("TableChunkSource: no such column");
    }
    return cursors_[col].ReadAt(row, len, out, scheme);
  }

  /// Streaming cursor for column `col` (e.g. to hand to a scan binding).
  ColumnChunkCursor& cursor(size_t col) { return cursors_[col]; }

  /// Total block decodes across all columns — compressed chunks streamed.
  uint64_t blocks_decoded() const {
    uint64_t n = 0;
    for (const auto& c : cursors_) n += c.blocks_decoded();
    return n;
  }

 private:
  std::vector<ColumnChunkCursor> cursors_;
};

}  // namespace avm
