// storage::SpillFile — on-disk sorted-run storage for out-of-core ORDER BY
// (docs/SPILL.md).
//
// A spill file is a query-private temp file holding the sealed per-morsel
// kPartialOutput runs that no longer fit the query's memory budget. The
// writer appends one run per morsel (each run: the run's rows, column-major,
// raw host-endian values) and Seal() publishes the run directory with the
// temp+rename, checksummed-header discipline of jit::DiskTraceCache:
//
//   [FileHeader][run 0 payload][run 1 payload]...[col types][run directory]
//
// The header is written as a placeholder first and patched at Seal() with
// the directory offset and checksums, then the ".tmp" file is renamed to
// its final name. Readers validate the header magic and directory checksum
// at open/seal and each run's payload checksum before the k-way merge
// streams from it (ValidateChecksums), so torn writes, truncation and
// bit-rot surface as a clean Status instead of wrong rows. The file is
// unlinked on Close()/destruction — spill files never outlive their query.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/types.h"
#include "util/status.h"

namespace avm::storage {

/// Writer/reader of one query's spilled sorted runs; see the file comment
/// for the on-disk layout and integrity rules.
class SpillFile {
 public:
  /// One sealed run: which morsel produced it and how many rows it holds.
  struct RunInfo {
    uint64_t morsel = 0;  ///< producing morsel's schedule index
    uint64_t rows = 0;
    uint64_t offset = 0;    ///< payload offset in the file
    uint64_t checksum = 0;  ///< FNV hash of the run payload
  };

  /// Spill placement knobs; `dir` empty resolves AVM_SPILL_DIR, then
  /// TMPDIR, then /tmp.
  struct Options {
    std::string dir;
  };

  /// Create a new spill file for runs of the given column layout. The file
  /// is created as "<name>.tmp" in the spill directory and renamed at
  /// Seal().
  static Result<std::unique_ptr<SpillFile>> Create(
      std::vector<TypeId> col_types, Options options = {});

  /// Re-open a sealed spill file read-only (validates header + directory;
  /// used by recovery-path tests).
  static Result<std::unique_ptr<SpillFile>> Open(const std::string& path);

  ~SpillFile();
  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;

  /// Append one sealed run: `cols[c]` points at `rows` contiguous values of
  /// column c (already sorted by the caller). Returns the run index.
  /// A failed append (short write, disk full) poisons the file: the caller
  /// must Close() and fail the query.
  Result<uint64_t> AppendRun(uint64_t morsel, uint64_t rows,
                             const std::vector<const uint8_t*>& cols);

  /// Write the run directory, patch the checksummed header, fsync, and
  /// rename "<name>.tmp" to "<name>". No appends after sealing.
  Status Seal();

  /// Stream-verify every run's payload checksum (one sequential pass).
  /// Call after Seal() and before merging — a corrupt or truncated run
  /// fails here instead of producing wrong rows.
  Status ValidateChecksums();

  /// Read `rows` values of column `col` from run `run`, starting at row
  /// `row_begin` within the run, into `out`. Bounds-checked; a short read
  /// (truncated file) is an error.
  Status ReadRunChunk(uint64_t run, size_t col, uint64_t row_begin,
                      uint64_t rows, void* out) const;

  /// Sealed-run metadata.
  uint64_t num_runs() const { return runs_.size(); }
  /// Metadata of run `r` (valid for r < num_runs()).
  const RunInfo& run(uint64_t r) const { return runs_[r]; }
  /// Column layout every run shares.
  const std::vector<TypeId>& col_types() const { return col_types_; }
  /// Total payload bytes appended so far.
  uint64_t bytes_written() const { return bytes_written_; }
  /// Path the sealed file lives at (the ".tmp" path before Seal()).
  const std::string& path() const { return sealed_ ? path_ : tmp_path_; }

  /// Close the descriptor and unlink the file (temp and sealed paths).
  /// Idempotent; also run by the destructor.
  void Close();

  /// Test hook: fail writes after `bytes` total bytes (simulated ENOSPC);
  /// -1 disables. Applies process-wide to subsequently written bytes.
  static void SetWriteLimitForTesting(int64_t bytes);

 private:
  SpillFile() = default;
  Status WriteAll(const void* data, size_t n);

  std::string dir_;
  std::string path_;      ///< final (sealed) path
  std::string tmp_path_;  ///< pre-seal path
  int fd_ = -1;
  bool sealed_ = false;
  bool writable_ = false;
  std::vector<TypeId> col_types_;
  std::vector<RunInfo> runs_;
  uint64_t bytes_written_ = 0;
  uint64_t write_pos_ = 0;
};

}  // namespace avm::storage
