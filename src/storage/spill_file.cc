#include "storage/spill_file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "util/string_util.h"

namespace avm::storage {

namespace {

// On-disk layout, host-endian (spill files are process-local scratch that
// never outlives the query, let alone the host).
constexpr char kMagic[8] = {'A', 'V', 'M', 'S', 'P', 'L', '1', '\0'};
constexpr uint32_t kVersion = 1;

struct FileHeader {
  char magic[8];
  uint32_t version;
  uint32_t num_cols;
  uint64_t num_runs;
  uint64_t dir_offset;
  uint64_t dir_len;
  uint64_t dir_checksum;
  uint64_t header_checksum;  // over every preceding field
};
static_assert(sizeof(FileHeader) == 56, "on-disk header layout");

// Incremental FNV-1a, self-consistent between the write path (AppendRun /
// Seal) and the streaming re-read (ValidateChecksums / Open).
constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t FnvUpdate(uint64_t state, const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < n; ++i) {
    state ^= p[i];
    state *= kFnvPrime;
  }
  return state;
}

uint64_t HeaderChecksum(const FileHeader& h) {
  return FnvUpdate(kFnvOffset, &h, offsetof(FileHeader, header_checksum));
}

// mkdir -p: create every missing component of `path`.
Status MakeDirs(const std::string& path) {
  std::string partial;
  for (size_t i = 0; i <= path.size(); ++i) {
    if (i < path.size() && path[i] != '/') continue;
    partial = path.substr(0, i == path.size() ? i : i + 1);
    if (partial.empty() || partial == "/") continue;
    if (mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::RuntimeError(
          StrFormat("mkdir %s: %s", partial.c_str(), std::strerror(errno)));
    }
  }
  return Status::OK();
}

std::string ResolveSpillDir(const std::string& requested) {
  if (!requested.empty()) return requested;
  const char* env = std::getenv("AVM_SPILL_DIR");
  if (env != nullptr && *env != '\0') return env;
  const char* tmp = std::getenv("TMPDIR");
  if (tmp != nullptr && *tmp != '\0') return tmp;
  return "/tmp";
}

// Simulated-ENOSPC test hook: remaining writable bytes; negative = off.
std::atomic<int64_t> g_write_limit{-1};

Status PreadAll(int fd, void* out, size_t n, uint64_t offset,
                const char* what) {
  auto* p = static_cast<uint8_t*>(out);
  size_t done = 0;
  while (done < n) {
    const ssize_t r = pread(fd, p + done, n - done,
                            static_cast<off_t>(offset + done));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::RuntimeError(StrFormat("spill file read (%s): %s", what,
                                            std::strerror(errno)));
    }
    if (r == 0) {
      return Status::RuntimeError(
          StrFormat("spill file truncated (%s): wanted %zu bytes at offset "
                    "%llu, got %zu",
                    what, n, (unsigned long long)offset, done));
    }
    done += static_cast<size_t>(r);
  }
  return Status::OK();
}

}  // namespace

void SpillFile::SetWriteLimitForTesting(int64_t bytes) {
  g_write_limit.store(bytes, std::memory_order_relaxed);
}

Status SpillFile::WriteAll(const void* data, size_t n) {
  // The fault hook decrements the allowance first, so a capped run fails
  // exactly like a full disk: possibly mid-payload, after a short write.
  size_t allowed = n;
  int64_t limit = g_write_limit.load(std::memory_order_relaxed);
  if (limit >= 0) {
    allowed = std::min<size_t>(n, static_cast<size_t>(limit));
    g_write_limit.store(limit - static_cast<int64_t>(allowed),
                        std::memory_order_relaxed);
  }
  const auto* p = static_cast<const uint8_t*>(data);
  size_t done = 0;
  while (done < allowed) {
    const ssize_t w = pwrite(fd_, p + done, allowed - done,
                             static_cast<off_t>(write_pos_ + done));
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == ENOSPC) {
        return Status::ResourceExhausted(
            StrFormat("spill write: disk full at %s", tmp_path_.c_str()));
      }
      return Status::RuntimeError(StrFormat("spill write %s: %s",
                                            tmp_path_.c_str(),
                                            std::strerror(errno)));
    }
    done += static_cast<size_t>(w);
  }
  write_pos_ += done;
  if (done < n) {
    return Status::ResourceExhausted(StrFormat(
        "spill write: disk full at %s (short write, %zu of %zu bytes)",
        tmp_path_.c_str(), done, n));
  }
  return Status::OK();
}

Result<std::unique_ptr<SpillFile>> SpillFile::Create(
    std::vector<TypeId> col_types, Options options) {
  if (col_types.empty()) {
    return Status::InvalidArgument("SpillFile: no columns");
  }
  auto f = std::unique_ptr<SpillFile>(new SpillFile());
  f->dir_ = ResolveSpillDir(options.dir);
  AVM_RETURN_NOT_OK(MakeDirs(f->dir_));
  static std::atomic<uint64_t> seq{0};
  f->path_ = StrFormat("%s/avm-spill-%d-%llu.avmsp", f->dir_.c_str(),
                       static_cast<int>(getpid()),
                       (unsigned long long)seq.fetch_add(1));
  f->tmp_path_ = f->path_ + ".tmp";
  f->fd_ = open(f->tmp_path_.c_str(), O_RDWR | O_CREAT | O_EXCL, 0644);
  if (f->fd_ < 0) {
    return Status::RuntimeError(StrFormat("open %s: %s", f->tmp_path_.c_str(),
                                          std::strerror(errno)));
  }
  f->writable_ = true;
  f->col_types_ = std::move(col_types);
  // Placeholder header; patched (with checksums) at Seal.
  FileHeader h{};
  f->write_pos_ = 0;
  Status st = f->WriteAll(&h, sizeof h);
  if (!st.ok()) {
    f->Close();
    return st;
  }
  return f;
}

Result<uint64_t> SpillFile::AppendRun(uint64_t morsel, uint64_t rows,
                                      const std::vector<const uint8_t*>& cols) {
  if (!writable_ || sealed_) {
    return Status::InvalidArgument("AppendRun on a sealed spill file");
  }
  if (cols.size() != col_types_.size()) {
    return Status::InvalidArgument(
        StrFormat("AppendRun: %zu columns, spill file has %zu", cols.size(),
                  col_types_.size()));
  }
  RunInfo info;
  info.morsel = morsel;
  info.rows = rows;
  info.offset = write_pos_;
  uint64_t sum = kFnvOffset;
  uint64_t bytes = 0;
  for (size_t c = 0; c < cols.size(); ++c) {
    const size_t n = static_cast<size_t>(rows) * TypeWidth(col_types_[c]);
    sum = FnvUpdate(sum, cols[c], n);
    AVM_RETURN_NOT_OK(WriteAll(cols[c], n));
    bytes += n;
  }
  info.checksum = sum;
  runs_.push_back(info);
  bytes_written_ += bytes;
  return static_cast<uint64_t>(runs_.size() - 1);
}

Status SpillFile::Seal() {
  if (!writable_) return Status::InvalidArgument("Seal on a read-only file");
  if (sealed_) return Status::OK();
  FileHeader h{};
  std::memcpy(h.magic, kMagic, sizeof kMagic);
  h.version = kVersion;
  h.num_cols = static_cast<uint32_t>(col_types_.size());
  h.num_runs = runs_.size();
  h.dir_offset = write_pos_;

  // Directory blob: one type byte per column, then the packed run entries.
  std::vector<uint8_t> dir;
  dir.reserve(col_types_.size() + runs_.size() * sizeof(RunInfo));
  for (TypeId t : col_types_) dir.push_back(static_cast<uint8_t>(t));
  const auto* rbytes = reinterpret_cast<const uint8_t*>(runs_.data());
  dir.insert(dir.end(), rbytes, rbytes + runs_.size() * sizeof(RunInfo));
  h.dir_len = dir.size();
  h.dir_checksum = FnvUpdate(kFnvOffset, dir.data(), dir.size());
  h.header_checksum = HeaderChecksum(h);

  AVM_RETURN_NOT_OK(WriteAll(dir.data(), dir.size()));
  const uint64_t end_pos = write_pos_;
  write_pos_ = 0;
  Status st = WriteAll(&h, sizeof h);
  write_pos_ = end_pos;
  AVM_RETURN_NOT_OK(st);
  if (fsync(fd_) != 0) {
    return Status::RuntimeError(StrFormat("fsync %s: %s", tmp_path_.c_str(),
                                          std::strerror(errno)));
  }
  if (rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    return Status::RuntimeError(StrFormat("rename %s -> %s: %s",
                                          tmp_path_.c_str(), path_.c_str(),
                                          std::strerror(errno)));
  }
  sealed_ = true;
  return Status::OK();
}

Result<std::unique_ptr<SpillFile>> SpillFile::Open(const std::string& path) {
  auto f = std::unique_ptr<SpillFile>(new SpillFile());
  f->path_ = path;
  f->tmp_path_ = path + ".tmp";
  f->fd_ = open(path.c_str(), O_RDONLY);
  if (f->fd_ < 0) {
    return Status::NotFound(
        StrFormat("open %s: %s", path.c_str(), std::strerror(errno)));
  }
  f->sealed_ = true;  // destructor must not leave the file behind
  FileHeader h{};
  AVM_RETURN_NOT_OK(PreadAll(f->fd_, &h, sizeof h, 0, "header"));
  if (std::memcmp(h.magic, kMagic, sizeof kMagic) != 0 ||
      h.version != kVersion) {
    return Status::RuntimeError(
        StrFormat("%s is not a spill file (bad magic/version)", path.c_str()));
  }
  if (h.header_checksum != HeaderChecksum(h)) {
    return Status::RuntimeError(
        StrFormat("%s: corrupt spill header (checksum mismatch)",
                  path.c_str()));
  }
  if (h.dir_len !=
      h.num_cols + h.num_runs * sizeof(RunInfo)) {
    return Status::RuntimeError(
        StrFormat("%s: corrupt spill directory length", path.c_str()));
  }
  std::vector<uint8_t> dir(h.dir_len);
  AVM_RETURN_NOT_OK(
      PreadAll(f->fd_, dir.data(), dir.size(), h.dir_offset, "directory"));
  if (FnvUpdate(kFnvOffset, dir.data(), dir.size()) != h.dir_checksum) {
    return Status::RuntimeError(StrFormat(
        "%s: corrupt spill directory (checksum mismatch)", path.c_str()));
  }
  f->col_types_.resize(h.num_cols);
  for (uint32_t c = 0; c < h.num_cols; ++c) {
    f->col_types_[c] = static_cast<TypeId>(dir[c]);
  }
  f->runs_.resize(h.num_runs);
  std::memcpy(f->runs_.data(), dir.data() + h.num_cols,
              h.num_runs * sizeof(RunInfo));
  return f;
}

Status SpillFile::ValidateChecksums() {
  std::vector<uint8_t> buf(256 * 1024);
  for (size_t r = 0; r < runs_.size(); ++r) {
    const RunInfo& info = runs_[r];
    uint64_t bytes = 0;
    for (TypeId t : col_types_) bytes += info.rows * TypeWidth(t);
    uint64_t sum = kFnvOffset;
    uint64_t off = info.offset;
    uint64_t left = bytes;
    while (left > 0) {
      const size_t n = static_cast<size_t>(std::min<uint64_t>(left,
                                                              buf.size()));
      AVM_RETURN_NOT_OK(PreadAll(fd_, buf.data(), n, off, "run payload"));
      sum = FnvUpdate(sum, buf.data(), n);
      off += n;
      left -= n;
    }
    if (sum != info.checksum) {
      return Status::RuntimeError(StrFormat(
          "spill run %zu corrupt (checksum mismatch) in %s", r,
          path().c_str()));
    }
  }
  return Status::OK();
}

Status SpillFile::ReadRunChunk(uint64_t run, size_t col, uint64_t row_begin,
                               uint64_t rows, void* out) const {
  if (run >= runs_.size() || col >= col_types_.size()) {
    return Status::OutOfRange(
        StrFormat("spill read: run %llu col %zu out of range",
                  (unsigned long long)run, col));
  }
  const RunInfo& info = runs_[run];
  if (row_begin + rows > info.rows) {
    return Status::OutOfRange(StrFormat(
        "spill read: rows [%llu, %llu) past run of %llu rows",
        (unsigned long long)row_begin, (unsigned long long)(row_begin + rows),
        (unsigned long long)info.rows));
  }
  uint64_t off = info.offset;
  for (size_t c = 0; c < col; ++c) off += info.rows * TypeWidth(col_types_[c]);
  const size_t w = TypeWidth(col_types_[col]);
  off += row_begin * w;
  return PreadAll(fd_, out, static_cast<size_t>(rows) * w, off, "run chunk");
}

void SpillFile::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  // Remove both names: whichever exists. Spill files are query scratch —
  // fault paths must not leak temps (tests assert the directory drains).
  if (!tmp_path_.empty()) (void)unlink(tmp_path_.c_str());
  if (!path_.empty() && writable_) (void)unlink(path_.c_str());
  writable_ = false;
}

SpillFile::~SpillFile() { Close(); }

}  // namespace avm::storage
