// Deterministic workload/data generators.
//
// Substitution (see DESIGN.md §1): instead of official TPC-H data we generate
// tables with the same column types, value domains and group cardinalities,
// which is what governs the behaviour of the paper's Q1/Q6-style experiments.
#pragma once

#include <memory>
#include <vector>

#include "storage/table.h"
#include "util/rng.h"

namespace avm {

/// Generic distributions for micro-benchmarks and tests.
class DataGen {
 public:
  explicit DataGen(uint64_t seed = 42) : rng_(seed) {}

  /// Uniform integers in [lo, hi].
  std::vector<int64_t> UniformI64(size_t n, int64_t lo, int64_t hi);
  std::vector<int32_t> UniformI32(size_t n, int32_t lo, int32_t hi);
  std::vector<double> UniformF64(size_t n, double lo, double hi);

  /// Zipf-distributed values over [0, domain).
  std::vector<int64_t> ZipfI64(size_t n, uint64_t domain, double theta);

  /// Sorted uniform integers (for Delta compression).
  std::vector<int64_t> SortedI64(size_t n, int64_t lo, int64_t hi);

  /// Values with average run length `run_len` (for RLE).
  std::vector<int64_t> RunsI64(size_t n, int64_t domain, double run_len);

  /// Bernoulli i64 in {0,1} with P(1) = selectivity; for filter sweeps.
  std::vector<int64_t> BernoulliI64(size_t n, double selectivity);

  Rng& rng() { return rng_; }

 private:
  Rng rng_;
};

/// Scale-factor sized TPC-H-like lineitem. SF=1 would be 6M rows; we default
/// to row counts suitable for in-repo benchmarking.
struct LineitemSpec {
  uint64_t num_rows = 600'000;  // ~SF 0.1
  uint64_t seed = 42;
  uint32_t block_size = kDefaultBlockSize;
  /// When true, columns are compressed per-block with auto schemes;
  /// when false everything is stored Plain.
  bool compress = true;
};

/// Columns (fixed-point cents where TPC-H uses decimals):
///   l_quantity      i64 in [1, 50]
///   l_extendedprice i64 in [90000, 10500000]
///   l_discount      i64 in [0, 10]   (percent)
///   l_tax           i64 in [0, 8]    (percent)
///   l_returnflag    i8  in {0,1,2}   ('A','N','R')
///   l_linestatus    i8  in {0,1}     ('O','F')
///   l_shipdate      i32 days since epoch in [8036, 10561]
///                   (1992-01-02 .. 1998-12-01, as in TPC-H)
std::unique_ptr<Table> MakeLineitem(const LineitemSpec& spec);

/// Orders-like table for join benchmarks:
///   o_orderkey   i64 dense [0, num_rows)
///   o_custkey    i64 in [0, num_rows/10)
///   o_totalprice i64
///   o_orderdate  i32
std::unique_ptr<Table> MakeOrders(uint64_t num_rows, uint64_t seed = 43);

/// Part-like dimension table:
///   p_partkey i64 dense, p_size i32 in [1,50], p_retail i64
std::unique_ptr<Table> MakePart(uint64_t num_rows, uint64_t seed = 44);

}  // namespace avm
