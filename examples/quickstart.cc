// Quickstart: the paper's Figure 2 program, parsed from its textual form,
// type-checked and executed through the ExecEngine facade — first
// interpreted, then (when a host compiler is available) JIT-compiled
// mid-run by the adaptive strategy.
//
//   $ ./quickstart
#include <cstdio>
#include <vector>

#include "dsl/parser.h"
#include "dsl/printer.h"
#include "dsl/typecheck.h"
#include "engine/exec_engine.h"
#include "jit/source_jit.h"

using namespace avm;

constexpr const char* kFigure2 = R"(
# Figure 2 of the paper: read some_data, write 2*x to v, and the positive
# doubled values (condensed) to w.
data some_data : i64
data v : i64 writable
data w : i64 writable
mut i
mut k
i := 0
k := 0
loop
  let input = read i some_data in
  let a = map (\x -> 2*x) input in
  let t = filter (\x -> x>0) a in
  let b = condense t
  write v i a
  write w k b
  i := i + len(a)
  k := k + len(b)
  if i >= 65536 then
    break
)";

int main() {
  // 1. Parse and type-check the DSL program.
  dsl::Program program = dsl::ParseProgram(kFigure2).ValueOrDie();
  dsl::TypeCheck(&program).Abort("type check");
  std::printf("=== program ===\n%s\n", dsl::PrintProgram(program).c_str());

  // 2. Describe the run to the engine: the program plus data bindings.
  const int64_t n = 65536;
  std::vector<int64_t> data(n), v(n), w(n);
  for (int64_t i = 0; i < n; ++i) data[i] = (i % 11) - 5;

  int64_t positives = 0;
  engine::ExecContext ctx(&program);
  ctx.BindInput("some_data",
                interp::DataBinding::Raw(TypeId::kI64, data.data(), n))
      .BindOutput("v", interp::DataBinding::Raw(TypeId::kI64, v.data(), n,
                                                true))
      .BindOutput("w", interp::DataBinding::Raw(TypeId::kI64, w.data(), n,
                                                true))
      .set_inspector([&](const interp::Interpreter& in) {
        positives = in.GetScalar("k").ValueOrDie().AsI64();
      });

  // 3. Run under the adaptive strategy.
  engine::EngineOptions opts;
  opts.strategy = engine::ExecutionStrategy::kAdaptiveJit;
  opts.vm.optimize_after_iterations = 8;
  engine::ExecReport report =
      engine::ExecEngine::Execute(ctx, opts).ValueOrDie();

  std::printf("processed %lld values; %lld positive results in w\n",
              (long long)n, (long long)positives);
  std::printf("v[0..5] = %lld %lld %lld %lld %lld %lld\n", (long long)v[0],
              (long long)v[1], (long long)v[2], (long long)v[3],
              (long long)v[4], (long long)v[5]);

  // 4. What did the engine do?
  std::printf("\n=== engine report ===\n%s\n", report.ToString().c_str());
  std::printf("\n=== Fig. 1 state machine timeline ===\n%s",
              report.state_timeline.empty() ? "(interpreted only)\n"
                                            : report.state_timeline.c_str());
  std::printf("\n=== profile ===\n%s", report.profile.c_str());
  if (!jit::SourceJit::Available()) {
    std::printf("\n(no host compiler found: the VM stayed in vectorized "
                "interpretation)\n");
  }
  return 0;
}
