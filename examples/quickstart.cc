// Quickstart: the Session / QueryBuilder surface.
//
// 1. Describe a relational query with engine::QueryBuilder — filters,
//    projections and aggregates lower to the paper's DSL automatically,
//    with binding roles (input / shared / accumulator) inferred.
// 2. Submit it to a long-lived engine::Session and wait on the returned
//    QueryHandle — several clients can be in flight at once, interleaving
//    their morsels over the session's shared workers.
// 3. The classic ExecContext + parsed-DSL path (the paper's Figure 2
//    program) still runs through the same session via the blocking facade.
//
//   $ ./quickstart
#include <algorithm>
#include <cstdio>
#include <vector>

#include "dsl/parser.h"
#include "dsl/typecheck.h"
#include "engine/query_builder.h"
#include "engine/session.h"
#include "jit/source_jit.h"
#include "storage/datagen.h"

using namespace avm;

int main() {
  // A little "orders" table: amount in cents, a status code 0..3.
  const uint64_t n = 200'000;
  Schema schema({{"amount", TypeId::kI64}, {"status", TypeId::kI64}});
  Table orders(schema);
  {
    DataGen gen(42);
    auto amount = gen.UniformI64(n, 100, 99'999);
    auto status = gen.UniformI64(n, 0, 3);
    orders.column(0)
        .AppendValues(amount.data(), static_cast<uint32_t>(n))
        .Abort("append");
    orders.column(1)
        .AppendValues(status.data(), static_cast<uint32_t>(n))
        .Abort("append");
  }

  // 1. A typed relational query: revenue and order count per status, for
  //    orders of at least $5.
  engine::QueryBuilder qb(orders);
  qb.Filter(dsl::Var("amount") >= dsl::ConstI(500))
      .Aggregate(dsl::Var("status"), /*num_groups=*/4)
      .Sum("revenue", dsl::Var("amount"))
      .Count("orders");
  engine::Query query = qb.Build().ValueOrDie();

  // 2. The engine as a service: one session, many in-flight queries. Here
  //    a second client runs a different aggregate concurrently.
  engine::SessionOptions so;
  so.num_workers = 4;
  engine::Session session(so);
  engine::QueryOptions qo;
  qo.strategy = jit::SourceJit::Available()
                    ? engine::ExecutionStrategy::kAdaptiveJit
                    : engine::ExecutionStrategy::kInterpret;

  engine::QueryBuilder qb2(orders);
  qb2.Filter(dsl::Eq(dsl::Var("status"), dsl::ConstI(2)))
      .Sum("status2_cents", dsl::Var("amount"));
  engine::Query other = qb2.Build().ValueOrDie();

  engine::QueryHandle h1 = session.Submit(query.context(), qo);
  engine::QueryHandle h2 = session.Submit(other.context(), qo);
  engine::ExecReport report = h1.Wait().ValueOrDie();
  h2.Wait().ValueOrDie();

  std::printf("status   orders      revenue($)\n");
  for (size_t g = 0; g < query.num_groups(); ++g) {
    std::printf("%6zu %8lld %15.2f\n", g,
                (long long)query.aggregate("orders")[g],
                query.aggregate("revenue")[g] / 100.0);
  }
  std::printf("client 2: status-2 revenue $%.2f\n\n",
              other.aggregate("status2_cents")[0] / 100.0);

  // Verify against a scalar loop (and that both clients agree).
  {
    std::vector<int64_t> amount(n), status(n);
    orders.column(0).Read(0, n, amount.data()).Abort("read");
    orders.column(1).Read(0, n, status.data()).Abort("read");
    int64_t rev[4] = {0}, cnt[4] = {0}, s2 = 0;
    for (uint64_t i = 0; i < n; ++i) {
      if (amount[i] >= 500) {
        rev[status[i]] += amount[i];
        ++cnt[status[i]];
      }
      if (status[i] == 2) s2 += amount[i];
    }
    for (int g = 0; g < 4; ++g) {
      if (rev[g] != query.aggregate("revenue")[g] ||
          cnt[g] != query.aggregate("orders")[g]) {
        std::printf("!! aggregate mismatch in group %d\n", g);
        return 1;
      }
    }
    if (s2 != other.aggregate("status2_cents")[0]) {
      std::printf("!! client 2 mismatch\n");
      return 1;
    }
  }

  std::printf("=== engine report (client 1) ===\n%s\n\n",
              report.ToString().c_str());

  // 2b. A hash join + ORDER BY with materialized output: join orders
  //     against a customer-tier dimension, keep the cheap orders, and
  //     return the top spenders per tier weight — the build side is
  //     densified at Build() time, each morsel partial-sorts its output
  //     window, and the sorted runs merge at the session barrier.
  {
    const int64_t kCustomers = 1000;
    Schema dim_schema({{"c_key", TypeId::kI64}, {"c_tier", TypeId::kI64}});
    Table customers(dim_schema);
    {
      DataGen gen(7);
      std::vector<int64_t> key(kCustomers), tier(kCustomers);
      for (int64_t i = 0; i < kCustomers; ++i) key[i] = i;
      tier = gen.UniformI64(kCustomers, 1, 3);
      customers.column(0)
          .AppendValues(key.data(), static_cast<uint32_t>(kCustomers))
          .Abort("append");
      customers.column(1)
          .AppendValues(tier.data(), static_cast<uint32_t>(kCustomers))
          .Abort("append");
    }
    // `status` doubles as a customer key into the dimension domain here; a
    // real schema would carry an o_custkey column.
    engine::QueryBuilder qb3(orders);
    qb3.Filter(dsl::Var("amount") < dsl::ConstI(1'000))
        .Join(customers, "status", "c_key", {"c_tier"})
        .Project("weighted", dsl::Var("amount") * dsl::Var("c_tier"))
        .Output("amount")
        .OrderBy("weighted", engine::SortDir::kDescending);
    engine::Query ranked = qb3.Build().ValueOrDie();
    session.Submit(ranked.context(), qo).Wait().ValueOrDie();
    std::printf("=== join + ORDER BY (top 3 of %llu materialized rows) ===\n",
                (unsigned long long)ranked.num_result_rows());
    const auto& weighted = ranked.result_column("weighted");
    const auto& amount = ranked.result_column("amount");
    for (uint64_t i = 0; i < std::min<uint64_t>(3, ranked.num_result_rows());
         ++i) {
      std::printf("  weighted=%6lld amount=$%.2f\n",
                  (long long)weighted.As<int64_t>()[i],
                  amount.As<int64_t>()[i] / 100.0);
    }
    std::printf("\n");
  }

  // 3. The paper's Figure 2 program, parsed from text and run through the
  //    blocking facade (a thin Submit+Wait over the same machinery).
  constexpr const char* kFigure2 = R"(
data some_data : i64
data v : i64 writable
data w : i64 writable
mut i
mut k
i := 0
k := 0
loop
  let input = read i some_data in
  let a = map (\x -> 2*x) input in
  let t = filter (\x -> x>0) a in
  let b = condense t
  write v i a
  write w k b
  i := i + len(a)
  k := k + len(b)
  if i >= 65536 then
    break
)";
  dsl::Program program = dsl::ParseProgram(kFigure2).ValueOrDie();
  dsl::TypeCheck(&program).Abort("type check");
  const int64_t fig_n = 65536;
  std::vector<int64_t> data(fig_n), v(fig_n), w(fig_n);
  for (int64_t i = 0; i < fig_n; ++i) data[i] = (i % 11) - 5;
  int64_t positives = 0;
  engine::ExecContext ctx(&program);
  ctx.BindInput("some_data",
                interp::DataBinding::Raw(TypeId::kI64, data.data(), fig_n))
      .BindOutput("v",
                  interp::DataBinding::Raw(TypeId::kI64, v.data(), fig_n, true))
      .BindOutput("w",
                  interp::DataBinding::Raw(TypeId::kI64, w.data(), fig_n, true))
      .set_inspector([&](const interp::Interpreter& in) {
        positives = in.GetScalar("k").ValueOrDie().AsI64();
      });
  engine::ExecReport fig2 = session.Run(ctx, qo).ValueOrDie();
  std::printf("=== Figure 2 through the same session ===\n");
  std::printf("processed %lld values; %lld positive results in w\n",
              (long long)fig_n, (long long)positives);
  if (!fig2.ran_serial_reason.empty()) {
    std::printf("(ran serial: %s)\n", fig2.ran_serial_reason.c_str());
  }
  if (!jit::SourceJit::Available()) {
    std::printf("(no host compiler found: the VM stayed in vectorized "
                "interpretation)\n");
  }
  return 0;
}
