// Micro-adaptivity demo (§III-C / [24]): a filter over data whose
// selectivity drifts from ~1% to ~99% mid-stream. The per-node
// micro-adaptive chooser re-tests its flavors periodically and switches
// implementation as the workload changes. Each flavor runs through the
// ExecEngine facade under the pure-interpretation strategy.
//
//   $ ./adaptive_filter
#include <cstdio>
#include <vector>

#include "dsl/builder.h"
#include "engine/exec_engine.h"
#include "storage/datagen.h"

using namespace avm;

namespace {

const char* FlavorName(interp::FilterFlavor f) {
  switch (f) {
    case interp::FilterFlavor::kBranchless: return "branchless";
    case interp::FilterFlavor::kBranching: return "branching";
    case interp::FilterFlavor::kFullCompute: return "full-compute";
    case interp::FilterFlavor::kAdaptive: return "adaptive";
  }
  return "?";
}

double RunWith(interp::FilterFlavor flavor, const std::vector<int64_t>& data,
               interp::FilterFlavor* final_choice) {
  const int64_t n = static_cast<int64_t>(data.size());
  std::vector<int64_t> out(data.size());

  // Filter pipelines condense their output, so the row-partitioned form
  // does not apply: the engine runs this context serially.
  engine::ExecContext ctx(
      [](int64_t rows) -> Result<dsl::Program> {
        return dsl::MakeFilterPipeline(
            TypeId::kI64,
            dsl::Lambda({"x"}, dsl::Call(dsl::ScalarOp::kLt,
                                         {dsl::Var("x"), dsl::ConstI(500)})),
            rows);
      },
      n);
  ctx.BindInput("src", interp::DataBinding::Raw(
                           TypeId::kI64,
                           const_cast<int64_t*>(data.data()), data.size()))
      .BindOutput("out", interp::DataBinding::Raw(TypeId::kI64, out.data(),
                                                  out.size(), true));
  if (final_choice != nullptr) {
    ctx.set_inspector([&](const interp::Interpreter& in) {
      // Find the filter node and ask what the chooser settled on.
      dsl::VisitExprs(in.program(), [&](const dsl::ExprPtr& e) {
        if (e->kind == dsl::ExprKind::kSkeleton &&
            e->skeleton == dsl::SkeletonKind::kFilter) {
          *final_choice = in.PreferredFilterFlavor(e->id);
        }
      });
    });
  }

  engine::EngineOptions opts;
  opts.strategy = engine::ExecutionStrategy::kInterpret;
  opts.vm.interp.filter_flavor = flavor;
  engine::ExecReport report =
      engine::ExecEngine::Execute(ctx, opts).ValueOrDie();
  return report.wall_seconds * 1e3;
}

}  // namespace

int main() {
  // Phase 1: ~1% selectivity; phase 2: ~50%; phase 3: ~99%.
  DataGen gen(77);
  std::vector<int64_t> data;
  auto phase1 = gen.UniformI64(2'000'000, 500, 50000);   // almost none < 500
  auto phase2 = gen.UniformI64(2'000'000, 0, 999);       // half < 500
  auto phase3 = gen.UniformI64(2'000'000, 0, 505);       // almost all < 500
  data.insert(data.end(), phase1.begin(), phase1.end());
  data.insert(data.end(), phase2.begin(), phase2.end());
  data.insert(data.end(), phase3.begin(), phase3.end());

  std::printf("filter x < 500 over 6M values with drifting selectivity "
              "(1%% -> 50%% -> 99%%)\n\n");
  for (auto flavor :
       {interp::FilterFlavor::kBranchless, interp::FilterFlavor::kBranching,
        interp::FilterFlavor::kFullCompute,
        interp::FilterFlavor::kAdaptive}) {
    interp::FilterFlavor final_choice = flavor;
    double ms = RunWith(flavor, data, &final_choice);
    std::printf("%-14s %8.2f ms", FlavorName(flavor), ms);
    if (flavor == interp::FilterFlavor::kAdaptive) {
      std::printf("   (settled on '%s' by the end)",
                  FlavorName(final_choice));
    }
    std::printf("\n");
  }
  std::printf(
      "\nThe adaptive flavor re-tests alternatives every few chunks, so it\n"
      "switches implementation when the drift flips which one is fastest.\n");
  return 0;
}
