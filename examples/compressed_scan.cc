// Compressed execution demo (§III-C): a column whose per-block compression
// scheme changes mid-stream. Run through the ExecEngine under the adaptive
// strategy, the VM JIT-compiles a trace specialized for FOR blocks
// (operating on narrow deltas + the block reference), transparently falls
// back to interpretation when a block with a different scheme arrives, and
// installs a second variant for the new situation — the trace cache keeps
// both.
//
//   $ ./compressed_scan
#include <cstdio>
#include <vector>

#include "dsl/builder.h"
#include "engine/exec_engine.h"
#include "jit/source_jit.h"
#include "storage/datagen.h"

using namespace avm;

int main() {
  constexpr uint32_t kBlock = 16 * 1024;
  constexpr uint32_t kBlocks = 64;
  constexpr uint64_t kRows = uint64_t{kBlock} * kBlocks;

  // Blocks 0..31: FOR-friendly narrow values; 32..47 plain wide values;
  // 48..63 FOR again.
  Column prices(TypeId::kI64, kBlock);
  DataGen gen(5);
  for (uint32_t b = 0; b < kBlocks; ++b) {
    if (b < 32 || b >= 48) {
      auto v = gen.UniformI64(kBlock, 100000, 104000);
      prices.AppendBlockWithScheme(Scheme::kFor, v.data(), kBlock)
          .Abort("append");
    } else {
      auto v = gen.UniformI64(kBlock, 0, int64_t{1} << 44);
      prices.AppendBlockWithScheme(Scheme::kPlain, v.data(), kBlock)
          .Abort("append");
    }
  }
  std::printf("column: %u blocks, schemes FOR x32 | PLAIN x16 | FOR x16\n",
              kBlocks);
  std::printf("compression ratio: %.2fx\n\n", prices.CompressionRatio());

  std::vector<int64_t> out(kRows);
  engine::ExecContext ctx(
      [](int64_t rows) -> Result<dsl::Program> {
        return dsl::MakeMapPipeline(
            TypeId::kI64,
            dsl::Lambda({"x"}, dsl::Var("x") * dsl::ConstI(110) /
                                   dsl::ConstI(100)),
            rows);
      },
      kRows);
  ctx.BindInputColumn("src", &prices)
      .BindOutput("out", interp::DataBinding::Raw(TypeId::kI64, out.data(),
                                                  kRows, true));

  engine::EngineOptions opts;
  opts.strategy = engine::ExecutionStrategy::kAdaptiveJit;
  opts.vm.optimize_after_iterations = 4;
  opts.vm.recheck_interval = 8;
  opts.vm.specialize_compression = true;
  engine::ExecReport report =
      engine::ExecEngine::Execute(ctx, opts).ValueOrDie();

  std::printf("=== Fig.1 timeline ===\n%s\n", report.state_timeline.c_str());
  std::printf("traces compiled : %llu (one per compression situation)\n",
              (unsigned long long)report.traces_compiled);
  std::printf("cache reuses    : %llu\n",
              (unsigned long long)report.traces_reused);
  std::printf("compiled runs   : %llu chunks\n",
              (unsigned long long)report.injection_runs);
  std::printf("fallback events : %llu (scheme mismatch -> interpret)\n",
              (unsigned long long)report.injection_fallbacks);
  if (!jit::SourceJit::Available()) {
    std::printf("(no host compiler: everything was interpreted)\n");
  }

  // Verify against a straight decode.
  std::vector<int64_t> raw(kRows);
  prices.Read(0, kRows, raw.data()).Abort("read");
  for (uint64_t i = 0; i < kRows; ++i) {
    if (out[i] != raw[i] * 110 / 100) {
      std::printf("MISMATCH at %llu\n", (unsigned long long)i);
      return 1;
    }
  }
  std::printf("\nresult verified: out[i] == price[i] * 110 / 100 for all "
              "%llu rows\n",
              (unsigned long long)kRows);
  return 0;
}
