// Heterogeneous placement demo (Plan step 3): map fragments submitted
// through the ExecEngine under the kGpuOffload strategy. The engine
// recognizes offloadable map fragments, asks the adaptive placer to choose
// between the CPU and the simulated GPU (DESIGN.md substitution), and
// calibrates the placer's cost model from every observed run.
//
// Two fragments show the tradeoff:
//   light (x*2+x)       — transfer-dominated: PCIe both ways costs more
//                         than the CPU just doing the work; stays on CPU.
//   heavy (8-deep chain) — compute-dominated: device throughput wins once
//                         the fragment carries enough ops per byte.
//
//   $ ./gpu_offload
#include <cstdio>
#include <vector>

#include "dsl/builder.h"
#include "engine/exec_engine.h"
#include "storage/datagen.h"

using namespace avm;

namespace {

engine::ExecContext::ProgramFactory MapFactory(int depth) {
  return [depth](int64_t rows) -> Result<dsl::Program> {
    using namespace dsl;
    ExprPtr body = Var("x");
    for (int d = 0; d < depth; ++d) body = body * ConstI(3) + Var("x");
    return MakeMapPipeline(TypeId::kI64, Lambda({"x"}, std::move(body)),
                           rows);
  };
}

int64_t Reference(int depth, int64_t x) {
  int64_t v = x;
  for (int d = 0; d < depth; ++d) v = v * 3 + x;
  return v;
}

int RunSweep(const char* label, int depth) {
  engine::EngineOptions opts;
  opts.strategy = engine::ExecutionStrategy::kGpuOffload;
  // One engine per fragment shape: its placer calibrates run over run.
  engine::ExecEngine engine(opts);

  std::printf("%s fragment (%d ops/row):\n", label, 2 * depth);
  std::printf("%12s %10s %12s %12s\n", "rows", "device", "wall_ms",
              "gpu_sim_ms");
  DataGen gen(9);
  for (uint32_t n : {64u << 10, 1u << 20, 8u << 20}) {
    auto col = gen.UniformI64(n, -1000, 1000);
    std::vector<int64_t> out(n);
    engine::ExecContext ctx(MapFactory(depth), n);
    ctx.BindInput("src",
                  interp::DataBinding::Raw(TypeId::kI64, col.data(), n))
        .BindOutput("out", interp::DataBinding::Raw(TypeId::kI64, out.data(),
                                                    n, true));
    engine::ExecReport report = engine.Run(ctx).ValueOrDie();
    for (uint32_t i = 0; i < n; i += 4097) {
      if (out[i] != Reference(depth, col[i])) {
        std::printf("!! result mismatch at %u\n", i);
        return 1;
      }
    }
    std::printf("%12u %10s %12.3f %12.3f\n", n, report.device.c_str(),
                report.wall_seconds * 1e3, report.gpu_sim_seconds * 1e3);
  }
  std::printf("\n");
  return 0;
}

}  // namespace

int main() {
  std::printf("strategy=gpu-offload: the engine places each map fragment on\n"
              "the CPU or the simulated GPU via the adaptive cost model\n\n");
  if (RunSweep("light", 1) != 0) return 1;
  if (RunSweep("heavy", 8) != 0) return 1;
  std::printf(
      "Transfer-dominated fragments stay on the CPU; compute-dominated ones\n"
      "offload. The engine feeds every observed run back into the placer,\n"
      "so the crossover self-adjusts to the hardware.\n");
  return 0;
}
