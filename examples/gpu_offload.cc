// Heterogeneous placement demo (Plan step 3): the same map+sum fragment at
// growing sizes; the adaptive placer decides per size between the measured
// CPU and the simulated GPU (DESIGN.md substitution), calibrating its cost
// model from observed runs.
//
//   $ ./gpu_offload
#include <cstdio>
#include <vector>

#include "gpu/gpu_backend.h"
#include "gpu/placement.h"
#include "interp/kernels.h"
#include "storage/datagen.h"
#include "util/timer.h"

using namespace avm;
using gpu::Device;

namespace {

double RunCpu(const std::vector<int64_t>& col) {
  const auto& reg = interp::KernelRegistry::Get();
  static std::vector<int64_t> tmp;
  tmp.resize(col.size());
  const int64_t three = 3;
  auto mul = reg.Binary(dsl::ScalarOp::kMul, TypeId::kI64,
                        interp::OperandMode::kVecScalar, false);
  auto fold = reg.Fold(dsl::ScalarOp::kAdd, TypeId::kI64);
  mul(col.data(), &three, tmp.data(), nullptr,
      static_cast<uint32_t>(col.size()));
  int64_t acc = 0;
  fold(tmp.data(), nullptr, static_cast<uint32_t>(col.size()), &acc);
  return static_cast<double>(acc);
}

}  // namespace

int main() {
  gpu::GpuDeviceParams params;  // discrete-GPU-like profile
  gpu::SimGpuDevice dev(params, &ThreadPool::Global());
  gpu::GpuBackend backend(&dev);
  gpu::AdaptivePlacer placer(params);

  std::printf("fragment: sum(x * 3) over an i64 column "
              "(simulated GPU: %.0f GB/s HBM, %.0f GB/s PCIe, %.0f us "
              "launch)\n\n",
              params.mem_bytes_per_s / 1e9, params.pcie_bytes_per_s / 1e9,
              params.launch_overhead_s * 1e6);
  std::printf("%12s %12s %12s %10s %9s\n", "rows", "cpu_ms", "sim_gpu_ms",
              "placer", "resident");

  ir::PrimProgram prog;
  prog.input_types = {TypeId::kI64};
  ir::PrimInstr mul;
  mul.op = dsl::ScalarOp::kMul;
  mul.in_type = mul.out_type = TypeId::kI64;
  mul.num_args = 2;
  mul.args[0] = ir::PrimArg::Input(0, TypeId::kI64);
  mul.args[1] = ir::PrimArg::ConstI(3, TypeId::kI64);
  mul.out_reg = 0;
  prog.instrs = {mul};
  prog.num_regs = 1;
  prog.result_reg = 0;
  prog.result_type = TypeId::kI64;

  DataGen gen(9);
  for (uint32_t n : {64u << 10, 512u << 10, 4u << 20, 32u << 20}) {
    auto col = gen.UniformI64(n, -1000, 1000);

    // Measure CPU.
    Stopwatch sw;
    double cpu_sum = RunCpu(col);
    double cpu_ms = sw.ElapsedMillis();

    // Simulated GPU (cold: includes PCIe transfer).
    dev.ResetClock();
    auto buf = backend.EnsureResident(col.data(), size_t{n} * 8).ValueOrDie();
    auto mapped = backend.RunMap(prog, {buf}, {TypeId::kI64}, n).ValueOrDie();
    double gpu_sum = backend.RunSumF64(mapped, TypeId::kI64, n).ValueOrDie();
    dev.Free(mapped).Abort("free");
    double gpu_ms = dev.clock_seconds() * 1e3;

    if (cpu_sum != gpu_sum) {
      std::printf("!! result mismatch\n");
      return 1;
    }

    gpu::FragmentProfile profile;
    profile.rows = n;
    profile.bytes_in = size_t{n} * 8;
    profile.bytes_out = 8;
    profile.ops_per_row = 2;
    auto decision = placer.Decide(profile);
    placer.Observe(Device::kCpu, profile, cpu_ms / 1e3);
    placer.Observe(Device::kGpu, profile, gpu_ms / 1e3);
    profile.inputs_resident = true;
    auto resident_decision = placer.Decide(profile);
    profile.inputs_resident = false;

    std::printf("%12u %12.3f %12.3f %10s %9s\n", n, cpu_ms, gpu_ms,
                gpu::DeviceName(decision.device),
                gpu::DeviceName(resident_decision.device));
    backend.Evict(col.data()).Abort("evict");
  }
  std::printf(
      "\nSmall fragments stay on the CPU (launch + PCIe dominate); large\n"
      "ones cross over to the GPU, earlier when the column is already\n"
      "device-resident. The placer calibrates itself from every observed "
      "run.\n");
  return 0;
}
