// TPC-H Q1 analogue under every execution strategy the framework provides
// (the paper's Plan step 1: X100-style vectorized and HyPer-style compiled
// execution inside the same system, plus the adaptive VM).
//
//   $ ./tpch_q1 [num_rows]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "engine/session.h"
#include "jit/source_jit.h"
#include "relational/q1.h"
#include "util/timer.h"

using namespace avm;
using namespace avm::relational;

namespace {

void PrintResult(const char* name, const Q1Result& r, double ms,
                 uint64_t rows) {
  std::printf("%-28s %8.2f ms  %7.1f Mrows/s\n", name, ms,
              rows / ms / 1e3);
  (void)r;
}

template <typename Fn>
Q1Result Timed(const char* name, uint64_t rows, Fn&& fn) {
  Stopwatch sw;
  auto r = fn();
  double ms = sw.ElapsedMillis();
  Q1Result value = std::move(r).ValueOrDie();
  PrintResult(name, value, ms, rows);
  return value;
}

}  // namespace

int main(int argc, char** argv) {
  LineitemSpec spec;
  spec.num_rows = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 600'000;
  std::printf("generating lineitem with %llu rows...\n",
              (unsigned long long)spec.num_rows);
  auto table = MakeLineitem(spec);
  std::printf("compressed to %.1f MiB (%.2fx)\n\n",
              table->EncodedBytes() / 1048576.0,
              static_cast<double>(spec.num_rows) * 42 /
                  table->EncodedBytes());

  const uint64_t n = table->num_rows();
  Q1Result oracle = Timed("scalar reference", n,
                          [&] { return RunQ1Scalar(*table); });
  Q1Result vec = Timed("vectorized (X100-style)", n,
                       [&] { return RunQ1Vectorized(*table); });
  Q1Result compact = Timed("vectorized + compact types", n,
                           [&] { return RunQ1VectorizedCompact(*table); });
  if (jit::SourceJit::Available()) {
    // First run includes the JIT compile; second shows steady state.
    Timed("compiled tuple-at-a-time*", n,
          [&] { return RunQ1CompiledWholeQuery(*table); });
    Q1Result comp = Timed("compiled tuple-at-a-time", n,
                          [&] { return RunQ1CompiledWholeQuery(*table); });
    if (!(comp == oracle)) std::printf("!! compiled result mismatch\n");
  }
  {
    engine::EngineOptions opts;
    opts.strategy = jit::SourceJit::Available()
                        ? engine::ExecutionStrategy::kAdaptiveJit
                        : engine::ExecutionStrategy::kInterpret;
    Stopwatch sw;
    Q1DslRun run = RunQ1Engine(*table, opts).ValueOrDie();
    double ms = sw.ElapsedMillis();
    PrintResult("engine serial (DSL)", run.result, ms, n);
    std::printf("  -> traces compiled: %llu, injected chunk runs: %llu\n",
                (unsigned long long)run.report.traces_compiled,
                (unsigned long long)run.report.injection_runs);
    if (!(run.result == oracle)) {
      std::printf("!! adaptive result mismatch\n");
      return 1;
    }

    // Morsel-driven parallel run: row-range slices, shared trace cache,
    // aggregates merged at the barrier — bit-identical to the serial run.
    opts.num_workers = 4;
    Stopwatch sw4;
    Q1DslRun par = RunQ1Engine(*table, opts).ValueOrDie();
    double ms4 = sw4.ElapsedMillis();
    PrintResult("engine 4 workers (DSL)", par.result, ms4, n);
    std::printf("  -> %zu morsels on %zu workers, speedup %.2fx\n",
                par.report.morsels, par.report.workers, ms / ms4);
    if (!(par.result == oracle)) {
      std::printf("!! parallel result mismatch\n");
      return 1;
    }
  }
  if (!(vec == oracle) || !(compact == oracle)) {
    std::printf("!! vectorized result mismatch\n");
    return 1;
  }

  {
    // Multi-query concurrency: 4 Q1 clients share one session — their
    // morsels interleave fairly over 4 workers and they share one trace
    // cache. Every client must still match the oracle bit-identically.
    engine::SessionOptions so;
    so.num_workers = 4;
    engine::Session session(so);
    engine::QueryOptions qo;
    qo.strategy = jit::SourceJit::Available()
                      ? engine::ExecutionStrategy::kAdaptiveJit
                      : engine::ExecutionStrategy::kInterpret;
    constexpr int kClients = 4;
    std::vector<engine::Query> queries;
    for (int c = 0; c < kClients; ++c) {
      queries.push_back(MakeQ1Query(*table).ValueOrDie());
    }
    Stopwatch sw;
    std::vector<engine::QueryHandle> handles;
    for (engine::Query& q : queries) {
      handles.push_back(session.Submit(q.context(), qo));
    }
    for (engine::QueryHandle& h : handles) h.Wait().ValueOrDie();
    double ms = sw.ElapsedMillis();
    std::printf("session, %d concurrent clients %8.2f ms  %7.1f Mrows/s "
                "aggregate\n",
                kClients, ms, kClients * n / ms / 1e3);
    for (engine::Query& q : queries) {
      if (!(Q1ResultFromQuery(q) == oracle)) {
        std::printf("!! concurrent client result mismatch\n");
        return 1;
      }
    }
  }

  std::printf("\ngroup        count      sum_qty    avg_disc_price\n");
  for (int g = 0; g < 8; ++g) {
    const Q1Group& grp = oracle.groups[g];
    if (grp.count == 0) continue;
    std::printf("rf=%d ls=%d %9lld %12lld %15.2f\n", g / 2, g % 2,
                (long long)grp.count, (long long)grp.sum_qty,
                static_cast<double>(grp.sum_disc_price) / grp.count / 100.0);
  }
  std::printf("\n* first compiled run includes JIT compilation time\n");
  return 0;
}
