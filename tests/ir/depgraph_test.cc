#include "ir/depgraph.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "dsl/builder.h"
#include "dsl/typecheck.h"

namespace avm::ir {
namespace {

using dsl::SkeletonKind;

Result<DepGraph> BuildFig2Graph(dsl::Program* p) {
  *p = dsl::MakeFigure2Program();
  AVM_RETURN_NOT_OK(dsl::TypeCheck(p));
  return DepGraph::Build(*p);
}

int FindNode(const DepGraph& g, SkeletonKind kind) {
  for (const auto& n : g.nodes()) {
    if (n.kind == kind) return static_cast<int>(n.id);
  }
  return -1;
}

TEST(DepGraphTest, Figure2HasExpectedNodes) {
  dsl::Program p;
  auto g = BuildFig2Graph(&p);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  // read, map, filter, condense, write v, write w  (len excluded)
  EXPECT_EQ(g.value().size(), 6u);
  EXPECT_GE(FindNode(g.value(), SkeletonKind::kRead), 0);
  EXPECT_GE(FindNode(g.value(), SkeletonKind::kMap), 0);
  EXPECT_GE(FindNode(g.value(), SkeletonKind::kFilter), 0);
  EXPECT_GE(FindNode(g.value(), SkeletonKind::kCondense), 0);
}

TEST(DepGraphTest, Figure2Edges) {
  dsl::Program p;
  auto gr = BuildFig2Graph(&p);
  ASSERT_TRUE(gr.ok());
  const DepGraph& g = gr.value();
  int read = FindNode(g, SkeletonKind::kRead);
  int map = FindNode(g, SkeletonKind::kMap);
  int filter = FindNode(g, SkeletonKind::kFilter);
  int condense = FindNode(g, SkeletonKind::kCondense);
  // read -> map -> filter -> condense, map -> write v, condense -> write w.
  auto has_edge = [&](int from, int to) {
    for (uint32_t c : g.nodes()[from].consumers) {
      if (c == static_cast<uint32_t>(to)) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_edge(read, map));
  EXPECT_TRUE(has_edge(map, filter));
  EXPECT_TRUE(has_edge(filter, condense));
  // The map value 'a' is consumed by both the filter and a write.
  EXPECT_EQ(g.nodes()[map].consumers.size(), 2u);
}

TEST(DepGraphTest, ExternalReadsAndWrites) {
  dsl::Program p;
  auto gr = BuildFig2Graph(&p);
  ASSERT_TRUE(gr.ok());
  const DepGraph& g = gr.value();
  int read = FindNode(g, SkeletonKind::kRead);
  ASSERT_GE(read, 0);
  ASSERT_EQ(g.nodes()[read].external_reads.size(), 1u);
  EXPECT_EQ(g.nodes()[read].external_reads[0], "some_data");
  int writes = 0;
  for (const auto& n : g.nodes()) {
    if (n.kind == SkeletonKind::kWrite) {
      ++writes;
      ASSERT_EQ(n.external_writes.size(), 1u);
    }
  }
  EXPECT_EQ(writes, 2);
}

TEST(DepGraphTest, TopoOrderRespectsDependencies) {
  dsl::Program p;
  auto gr = BuildFig2Graph(&p);
  ASSERT_TRUE(gr.ok());
  auto order = gr.value().TopoOrder();
  ASSERT_EQ(order.size(), gr.value().size());
  std::vector<uint32_t> pos(order.size());
  for (size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (const auto& n : gr.value().nodes()) {
    for (uint32_t in : n.inputs) {
      EXPECT_LT(pos[in], pos[n.id]);
    }
  }
}

TEST(DepGraphTest, ProducerNames) {
  dsl::Program p;
  auto gr = BuildFig2Graph(&p);
  ASSERT_TRUE(gr.ok());
  int map = FindNode(gr.value(), SkeletonKind::kMap);
  EXPECT_EQ(gr.value().OutputNameOf(map), "a");
  EXPECT_EQ(gr.value().ProducerOf("a"), map);
  EXPECT_EQ(gr.value().ProducerOf("nonexistent"), -1);
}

TEST(DepGraphTest, ToDotRendersAllNodes) {
  dsl::Program p;
  auto gr = BuildFig2Graph(&p);
  ASSERT_TRUE(gr.ok());
  std::string dot = gr.value().ToDot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("map"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Greedy partitioning (Fig. 3)
// ---------------------------------------------------------------------------

TEST(PartitionTest, Figure3TwoFunctionSplit) {
  // With filters excluded (the default heuristic), Fig. 2's graph
  // partitions into {read, map, write v} and singletons left interpreted —
  // matching the paper's "functions do not necessarily cover the whole
  // program". With filters allowed, the filter-side function appears too.
  dsl::Program p;
  auto gr = BuildFig2Graph(&p);
  ASSERT_TRUE(gr.ok());

  PartitionConstraints strict;  // filters not fusable
  auto traces = GreedyPartition(gr.value(), strict);
  ASSERT_FALSE(traces.empty());
  // The top trace must contain the map (hottest) and the read.
  const Trace& top = traces[0];
  int map = FindNode(gr.value(), SkeletonKind::kMap);
  int read = FindNode(gr.value(), SkeletonKind::kRead);
  int filter = FindNode(gr.value(), SkeletonKind::kFilter);
  EXPECT_TRUE(top.Contains(static_cast<uint32_t>(map)));
  EXPECT_TRUE(top.Contains(static_cast<uint32_t>(read)));
  for (const auto& t : traces) {
    EXPECT_FALSE(t.Contains(static_cast<uint32_t>(filter)));
  }

  PartitionConstraints loose;
  loose.allow_filter = true;
  auto traces2 = GreedyPartition(gr.value(), loose);
  bool filter_somewhere = false;
  for (const auto& t : traces2) {
    filter_somewhere |= t.Contains(static_cast<uint32_t>(filter));
  }
  EXPECT_TRUE(filter_somewhere);
}

TEST(PartitionTest, StreamBudgetLimitsGrowth) {
  dsl::Program p;
  auto gr = BuildFig2Graph(&p);
  ASSERT_TRUE(gr.ok());
  PartitionConstraints c;
  c.allow_filter = true;
  c.max_streams = 2;  // extremely tight: almost nothing can merge
  auto traces = GreedyPartition(gr.value(), c);
  for (const auto& t : traces) {
    EXPECT_LE(t.inputs.size() + t.outputs.size(), 2u);
  }
}

TEST(PartitionTest, MaxNodesRespected) {
  dsl::Program p;
  auto gr = BuildFig2Graph(&p);
  ASSERT_TRUE(gr.ok());
  PartitionConstraints c;
  c.allow_filter = true;
  c.max_nodes = 1;
  auto traces = GreedyPartition(gr.value(), c);
  for (const auto& t : traces) EXPECT_EQ(t.node_ids.size(), 1u);
}

TEST(PartitionTest, MinCostFiltersCheapTraces) {
  dsl::Program p;
  auto gr = BuildFig2Graph(&p);
  ASSERT_TRUE(gr.ok());
  PartitionConstraints c;
  c.min_trace_cost = 1e12;
  EXPECT_TRUE(GreedyPartition(gr.value(), c).empty());
}

TEST(PartitionTest, TracesSortedByCost) {
  dsl::Program p;
  auto gr = BuildFig2Graph(&p);
  ASSERT_TRUE(gr.ok());
  auto traces = GreedyPartition(gr.value(), PartitionConstraints{});
  for (size_t i = 1; i < traces.size(); ++i) {
    EXPECT_GE(traces[i - 1].total_cost, traces[i].total_cost);
  }
}

TEST(PartitionTest, ProfiledCostsChangeSeedSelection) {
  dsl::Program p;
  auto gr = BuildFig2Graph(&p);
  ASSERT_TRUE(gr.ok());
  DepGraph g = std::move(gr).value();
  // Make the condense node overwhelmingly hot.
  int condense = FindNode(g, SkeletonKind::kCondense);
  g.nodes()[condense].cost = 1e9;
  PartitionConstraints c;
  c.allow_filter = false;
  auto traces = GreedyPartition(g, c);
  ASSERT_FALSE(traces.empty());
  EXPECT_TRUE(traces[0].Contains(static_cast<uint32_t>(condense)));
}

TEST(PartitionTest, TraceBoundariesNamed) {
  dsl::Program p;
  auto gr = BuildFig2Graph(&p);
  ASSERT_TRUE(gr.ok());
  PartitionConstraints c;
  auto traces = GreedyPartition(gr.value(), c);
  ASSERT_FALSE(traces.empty());
  const Trace& top = traces[0];
  // {read, map, write v} reads some_data, writes v, and exposes 'a' and
  // 'input' to the rest of the program.
  EXPECT_NE(std::find(top.inputs.begin(), top.inputs.end(), "some_data"),
            top.inputs.end());
  EXPECT_NE(std::find(top.outputs.begin(), top.outputs.end(), "a"),
            top.outputs.end());
}

}  // namespace
}  // namespace avm::ir
