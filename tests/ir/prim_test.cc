#include "ir/prim.h"

#include <gtest/gtest.h>

#include "dsl/parser.h"
#include "dsl/typecheck.h"

namespace avm::ir {
namespace {

using dsl::Lambda;
using dsl::Program;
using dsl::Var;

// Parse a tiny program binding one map, type-check it, and return the
// (annotated) lambda of the map.
struct LambdaFixture {
  Program program;
  const dsl::Expr* lambda;
  std::vector<TypeId> input_types;
};

LambdaFixture MakeLambda(const std::string& lambda_src,
                         const std::vector<std::pair<std::string, TypeId>>&
                             inputs) {
  std::string src;
  std::string maps = "map (" + lambda_src + ")";
  for (const auto& [name, t] : inputs) {
    src += "data " + name + " : " + TypeName(t) + "\n";
  }
  src += "mut i\ni := 0\n";
  std::vector<TypeId> types;
  for (const auto& [name, t] : inputs) {
    src += "let v_" + name + " = read i " + name + " in\n";
    maps += " v_" + name;
    types.push_back(t);
  }
  src += "let out = " + maps + "\n";
  auto parsed = dsl::ParseProgram(src);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << src;
  LambdaFixture fx;
  fx.program = std::move(parsed).value();
  EXPECT_TRUE(dsl::TypeCheck(&fx.program).ok());
  const dsl::Stmt& let_out = *fx.program.stmts.back();
  fx.lambda = let_out.expr->args[0].get();
  fx.input_types = types;
  return fx;
}

TEST(NormalizeTest, HypotSplitsIntoFourPrimitives) {
  // The §III-A example: sqrt(a² + b²) -> f1, f2, f3, f4.
  auto fx = MakeLambda(R"(\a b -> sqrt (a*a + b*b))",
                       {{"xa", TypeId::kF64}, {"xb", TypeId::kF64}});
  auto prog = Normalize(*fx.lambda, fx.input_types);
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  EXPECT_EQ(prog.value().NumInstrs(), 4u);
  EXPECT_EQ(prog.value().result_type, TypeId::kF64);
  EXPECT_EQ(prog.value().instrs.back().op, dsl::ScalarOp::kSqrt);
}

TEST(NormalizeTest, CommonSubexpressionEliminated) {
  // (x*x) + (x*x) must compute the square once.
  auto fx = MakeLambda(R"(\x -> x*x + x*x)", {{"d", TypeId::kI64}});
  auto prog = Normalize(*fx.lambda, fx.input_types);
  ASSERT_TRUE(prog.ok());
  EXPECT_EQ(prog.value().NumInstrs(), 2u);  // one mul + one add
}

TEST(NormalizeTest, IdentityLambdaIsInputPassthrough) {
  auto fx = MakeLambda(R"(\x -> x)", {{"d", TypeId::kI32}});
  auto prog = Normalize(*fx.lambda, fx.input_types);
  ASSERT_TRUE(prog.ok());
  EXPECT_EQ(prog.value().NumInstrs(), 0u);
  EXPECT_EQ(prog.value().result_is_input, 0);
}

TEST(NormalizeTest, ConstantBodyMaterializes) {
  auto fx = MakeLambda(R"(\x -> 7)", {{"d", TypeId::kI64}});
  auto prog = Normalize(*fx.lambda, fx.input_types);
  ASSERT_TRUE(prog.ok());
  EXPECT_EQ(prog.value().NumInstrs(), 1u);  // materializing copy
  EXPECT_GE(prog.value().result_reg, 0);
}

TEST(NormalizeTest, ConstCoercedToNarrowInputType) {
  // Comparing i32 column against a literal that fits i32: the comparison
  // runs in i32 (no widening cast instruction).
  auto fx = MakeLambda(R"(\x -> x <= 10510)", {{"d", TypeId::kI32}});
  auto prog = Normalize(*fx.lambda, fx.input_types);
  ASSERT_TRUE(prog.ok());
  ASSERT_EQ(prog.value().NumInstrs(), 1u);
  EXPECT_EQ(prog.value().instrs[0].in_type, TypeId::kI32);
  EXPECT_EQ(prog.value().instrs[0].out_type, TypeId::kBool);
}

TEST(NormalizeTest, WideConstForcesWideCompare) {
  auto fx = MakeLambda(R"(\x -> x <= 5000000000)", {{"d", TypeId::kI32}});
  auto prog = Normalize(*fx.lambda, fx.input_types);
  ASSERT_TRUE(prog.ok());
  // The input must be cast up to i64 first.
  ASSERT_EQ(prog.value().NumInstrs(), 2u);
  EXPECT_EQ(prog.value().instrs[0].op, dsl::ScalarOp::kCast);
  EXPECT_EQ(prog.value().instrs[1].in_type, TypeId::kI64);
}

TEST(NormalizeTest, MixedInputTypesInsertCasts) {
  auto fx = MakeLambda(R"(\a b -> a + b)",
                       {{"x", TypeId::kI32}, {"y", TypeId::kI64}});
  auto prog = Normalize(*fx.lambda, fx.input_types);
  ASSERT_TRUE(prog.ok());
  ASSERT_EQ(prog.value().NumInstrs(), 2u);
  EXPECT_EQ(prog.value().instrs[0].op, dsl::ScalarOp::kCast);
  EXPECT_EQ(prog.value().instrs[1].in_type, TypeId::kI64);
}

TEST(NormalizeTest, CapturesRecordedByName) {
  // `threshold` is a free variable of the lambda, captured from the
  // enclosing scalar environment.
  auto parsed = dsl::ParseProgram(R"(
data d : i64
mut i
mut threshold
i := 0
threshold := 42
let v = read i d in
let out = map (\x -> x > threshold) v
)");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  Program program = std::move(parsed).value();
  ASSERT_TRUE(dsl::TypeCheck(&program).ok());
  const dsl::Expr& lambda = *program.stmts.back()->expr->args[0];
  auto prog = Normalize(lambda, {TypeId::kI64});
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  bool has_capture = false;
  for (const auto& in : prog.value().instrs) {
    for (int i = 0; i < in.num_args; ++i) {
      if (in.args[i].kind == ArgKind::kCapture) {
        has_capture = true;
        EXPECT_EQ(in.args[i].name, "threshold");
      }
    }
  }
  EXPECT_TRUE(has_capture);
}

TEST(NormalizeTest, ToStringListsInstructions) {
  auto fx = MakeLambda(R"(\x -> 2*x + 1)", {{"d", TypeId::kI64}});
  auto prog = Normalize(*fx.lambda, fx.input_types);
  ASSERT_TRUE(prog.ok());
  std::string s = prog.value().ToString();
  EXPECT_NE(s.find("mul_i64"), std::string::npos);
  EXPECT_NE(s.find("add_i64"), std::string::npos);
  EXPECT_NE(s.find("result = r"), std::string::npos);
}

TEST(NormalizeTest, RejectsNonLambda) {
  auto e = dsl::ConstI(5);
  EXPECT_FALSE(Normalize(*e, {}).ok());
}

TEST(NormalizeTest, ArityMismatchRejected) {
  auto fx = MakeLambda(R"(\x -> x)", {{"d", TypeId::kI64}});
  EXPECT_FALSE(Normalize(*fx.lambda, {TypeId::kI64, TypeId::kI64}).ok());
}

TEST(NormalizeTest, CastLambda) {
  auto fx = MakeLambda(R"(\x -> cast_i16 x)", {{"d", TypeId::kI64}});
  auto prog = Normalize(*fx.lambda, fx.input_types);
  ASSERT_TRUE(prog.ok());
  ASSERT_EQ(prog.value().NumInstrs(), 1u);
  EXPECT_EQ(prog.value().instrs[0].out_type, TypeId::kI16);
  EXPECT_EQ(prog.value().result_type, TypeId::kI16);
}

}  // namespace
}  // namespace avm::ir
