#include "gpu/sim_device.h"

#include <gtest/gtest.h>

#include <cstring>

namespace avm::gpu {
namespace {

TEST(SimDeviceTest, AllocFreeTracksCapacity) {
  GpuDeviceParams p;
  p.memory_bytes = 1024;
  SimGpuDevice dev(p);
  auto a = dev.Alloc(512);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(dev.allocated_bytes(), 512u);
  auto b = dev.Alloc(600);
  EXPECT_TRUE(b.status().code() == StatusCode::kResourceExhausted);
  ASSERT_TRUE(dev.Free(a.value()).ok());
  EXPECT_EQ(dev.allocated_bytes(), 0u);
  EXPECT_TRUE(dev.Free(a.value()).IsNotFound());
}

TEST(SimDeviceTest, TransfersMoveDataAndChargeTime) {
  SimGpuDevice dev;
  std::vector<int64_t> host(1000);
  for (int i = 0; i < 1000; ++i) host[i] = i;
  auto buf = dev.Alloc(1000 * sizeof(int64_t));
  ASSERT_TRUE(buf.ok());
  ASSERT_TRUE(
      dev.CopyToDevice(buf.value(), host.data(), 1000 * sizeof(int64_t)).ok());
  double after_up = dev.clock_seconds();
  EXPECT_GT(after_up, 0.0);
  std::vector<int64_t> back(1000, 0);
  ASSERT_TRUE(
      dev.CopyToHost(back.data(), buf.value(), 1000 * sizeof(int64_t)).ok());
  EXPECT_EQ(host, back);
  EXPECT_GT(dev.clock_seconds(), after_up);
  EXPECT_GT(dev.timing().transfer_s, 0.0);
}

TEST(SimDeviceTest, TransferTimeScalesWithBytes) {
  GpuDeviceParams p;
  SimGpuDevice dev(p);
  const double small = dev.PredictTransferSeconds(1 << 10);
  const double large = dev.PredictTransferSeconds(64 << 20);
  EXPECT_GT(large, small * 100);
  // Model: overhead + bytes/bandwidth.
  EXPECT_NEAR(large,
              p.launch_overhead_s + (64.0 * (1 << 20)) / p.pcie_bytes_per_s,
              1e-12);
}

TEST(SimDeviceTest, LaunchExecutesBodyOverFullRange) {
  SimGpuDevice dev(GpuDeviceParams{}, &ThreadPool::Global());
  std::vector<std::atomic<int>> hits(10000);
  ASSERT_TRUE(dev.Launch(10000, 10000, 1.0,
                         [&](uint32_t b, uint32_t e) {
                           for (uint32_t i = b; i < e; ++i) {
                             hits[i].fetch_add(1);
                           }
                         })
                  .ok());
  for (auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(SimDeviceTest, LaunchChargesOverheadEvenForTinyWork) {
  GpuDeviceParams p;
  SimGpuDevice dev(p);
  ASSERT_TRUE(dev.Launch(1, 8, 1.0, [](uint32_t, uint32_t) {}).ok());
  EXPECT_GE(dev.clock_seconds(), p.launch_overhead_s);
}

TEST(SimDeviceTest, ComputeBoundVsMemoryBound) {
  GpuDeviceParams p;
  SimGpuDevice dev(p);
  // Memory bound: huge bytes, trivial ops.
  const double mem = dev.PredictLaunchSeconds(1000, 1 << 30, 0.001);
  EXPECT_NEAR(mem - p.launch_overhead_s,
              static_cast<double>(1 << 30) / p.mem_bytes_per_s, 1e-9);
  // Compute bound: many ops on few bytes.
  const double comp = dev.PredictLaunchSeconds(1'000'000'000, 8, 100.0);
  EXPECT_NEAR(comp - p.launch_overhead_s, 1e9 * 100.0 / p.ops_per_s, 1e-6);
}

TEST(SimDeviceTest, ResetClockZeroes) {
  SimGpuDevice dev;
  ASSERT_TRUE(dev.Launch(10, 80, 1.0, [](uint32_t, uint32_t) {}).ok());
  EXPECT_GT(dev.clock_seconds(), 0.0);
  dev.ResetClock();
  EXPECT_EQ(dev.clock_seconds(), 0.0);
  EXPECT_EQ(dev.timing().Total(), 0.0);
}

TEST(SimDeviceTest, IntegratedProfileCheaperTransfersSlowerCompute) {
  GpuDeviceParams discrete;
  GpuDeviceParams integrated = GpuDeviceParams::Integrated();
  SimGpuDevice d1(discrete), d2(integrated);
  EXPECT_LT(d2.PredictTransferSeconds(1 << 20),
            d1.PredictTransferSeconds(1 << 20));
  EXPECT_GT(d2.PredictLaunchSeconds(1 << 20, 1 << 23, 4.0),
            d1.PredictLaunchSeconds(1 << 20, 1 << 23, 4.0));
}

TEST(SimDeviceTest, OversizeTransferRejected) {
  SimGpuDevice dev;
  auto buf = dev.Alloc(16);
  ASSERT_TRUE(buf.ok());
  char data[32] = {0};
  EXPECT_TRUE(dev.CopyToDevice(buf.value(), data, 32).IsOutOfRange());
}

}  // namespace
}  // namespace avm::gpu
