#include "gpu/gpu_backend.h"

#include <gtest/gtest.h>

#include "dsl/builder.h"
#include "dsl/parser.h"
#include "dsl/typecheck.h"
#include "util/rng.h"

namespace avm::gpu {
namespace {

// Build a normalized PrimProgram from a lambda source string.
ir::PrimProgram MakeProg(const std::string& lambda_src,
                         std::vector<TypeId> types) {
  std::string src = "data d0 : " + std::string(TypeName(types[0])) + "\n";
  std::string maps = "map (" + lambda_src + ") v0";
  src += "mut i\ni := 0\nlet v0 = read i d0 in\n";
  for (size_t k = 1; k < types.size(); ++k) {
    src += "data d" + std::to_string(k) + " : " + TypeName(types[k]) + "\n";
  }
  // Multi-input lambdas need more reads; handle up to 2.
  if (types.size() == 2) {
    src = "data d0 : " + std::string(TypeName(types[0])) + "\n" +
          "data d1 : " + std::string(TypeName(types[1])) + "\n" +
          "mut i\ni := 0\nlet v0 = read i d0 in\nlet v1 = read i d1 in\n";
    maps = "map (" + lambda_src + ") v0 v1";
  }
  src += "let out = " + maps + "\n";
  auto p = dsl::ParseProgram(src);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  dsl::Program prog = std::move(p).value();
  EXPECT_TRUE(dsl::TypeCheck(&prog).ok());
  const dsl::Expr& lambda = *prog.stmts.back()->expr->args[0];
  auto norm = ir::Normalize(lambda, types);
  EXPECT_TRUE(norm.ok()) << norm.status().ToString();
  return std::move(norm).value();
}

TEST(GpuBackendTest, ResidencyCachedByPointer) {
  SimGpuDevice dev;
  GpuBackend backend(&dev);
  std::vector<int64_t> col(1000, 3);
  auto a = backend.EnsureResident(col.data(), 8000);
  ASSERT_TRUE(a.ok());
  double clock_after_first = dev.clock_seconds();
  auto b = backend.EnsureResident(col.data(), 8000);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value(), b.value());
  EXPECT_EQ(dev.clock_seconds(), clock_after_first);  // no second transfer
  ASSERT_TRUE(backend.Evict(col.data()).ok());
  EXPECT_TRUE(backend.Evict(col.data()).IsNotFound());
}

TEST(GpuBackendTest, MapMatchesCpuComputation) {
  SimGpuDevice dev(GpuDeviceParams{}, &ThreadPool::Global());
  GpuBackend backend(&dev);
  const uint32_t n = 50000;
  Rng rng(9);
  std::vector<int64_t> col(n);
  for (auto& x : col) x = rng.NextInRange(-1000, 1000);

  ir::PrimProgram prog = MakeProg(R"(\x -> 3*x + 7)", {TypeId::kI64});
  auto in_buf = backend.EnsureResident(col.data(), n * sizeof(int64_t));
  ASSERT_TRUE(in_buf.ok());
  auto out_buf =
      backend.RunMap(prog, {in_buf.value()}, {TypeId::kI64}, n);
  ASSERT_TRUE(out_buf.ok()) << out_buf.status().ToString();
  std::vector<int64_t> out(n);
  ASSERT_TRUE(
      dev.CopyToHost(out.data(), out_buf.value(), n * sizeof(int64_t)).ok());
  for (uint32_t i = 0; i < n; ++i) ASSERT_EQ(out[i], 3 * col[i] + 7);
}

TEST(GpuBackendTest, TwoInputMap) {
  SimGpuDevice dev(GpuDeviceParams{}, &ThreadPool::Global());
  GpuBackend backend(&dev);
  const uint32_t n = 10000;
  std::vector<double> a(n), b(n);
  for (uint32_t i = 0; i < n; ++i) {
    a[i] = i * 0.5;
    b[i] = i * 0.25;
  }
  ir::PrimProgram prog =
      MakeProg(R"(\x y -> x * y + 1.0)", {TypeId::kF64, TypeId::kF64});
  auto ba = backend.EnsureResident(a.data(), n * 8);
  auto bb = backend.EnsureResident(b.data(), n * 8);
  ASSERT_TRUE(ba.ok() && bb.ok());
  auto out_buf = backend.RunMap(prog, {ba.value(), bb.value()},
                                {TypeId::kF64, TypeId::kF64}, n);
  ASSERT_TRUE(out_buf.ok()) << out_buf.status().ToString();
  std::vector<double> out(n);
  ASSERT_TRUE(dev.CopyToHost(out.data(), out_buf.value(), n * 8).ok());
  for (uint32_t i = 0; i < n; ++i) ASSERT_DOUBLE_EQ(out[i], a[i] * b[i] + 1.0);
}

TEST(GpuBackendTest, SumReduction) {
  SimGpuDevice dev(GpuDeviceParams{}, &ThreadPool::Global());
  GpuBackend backend(&dev);
  const uint32_t n = 100000;
  std::vector<int64_t> col(n);
  double expect = 0;
  for (uint32_t i = 0; i < n; ++i) {
    col[i] = i % 1000;
    expect += col[i];
  }
  auto buf = backend.EnsureResident(col.data(), n * 8);
  ASSERT_TRUE(buf.ok());
  auto sum = backend.RunSumF64(buf.value(), TypeId::kI64, n);
  ASSERT_TRUE(sum.ok());
  EXPECT_DOUBLE_EQ(sum.value(), expect);
}

TEST(GpuBackendTest, FilterCount) {
  SimGpuDevice dev(GpuDeviceParams{}, &ThreadPool::Global());
  GpuBackend backend(&dev);
  const uint32_t n = 64000;
  std::vector<int32_t> col(n);
  uint64_t expect = 0;
  for (uint32_t i = 0; i < n; ++i) {
    col[i] = static_cast<int32_t>(i % 100);
    expect += col[i] < 37 ? 1 : 0;
  }
  auto buf = backend.EnsureResident(col.data(), n * 4);
  ASSERT_TRUE(buf.ok());
  auto count = backend.RunFilterCount(buf.value(), TypeId::kI32, n,
                                      dsl::ScalarOp::kLt, 37);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count.value(), expect);
}

TEST(GpuBackendTest, MapChargesSimulatedTime) {
  SimGpuDevice dev(GpuDeviceParams{}, &ThreadPool::Global());
  GpuBackend backend(&dev);
  const uint32_t n = 1 << 20;
  std::vector<int64_t> col(n, 1);
  auto buf = backend.EnsureResident(col.data(), n * 8);
  ASSERT_TRUE(buf.ok());
  dev.ResetClock();
  ir::PrimProgram prog = MakeProg(R"(\x -> x + 1)", {TypeId::kI64});
  ASSERT_TRUE(backend.RunMap(prog, {buf.value()}, {TypeId::kI64}, n).ok());
  // One kernel: at least launch overhead + memory term.
  EXPECT_GE(dev.clock_seconds(), dev.params().launch_overhead_s);
  EXPECT_GT(dev.timing().compute_s, 0.0);
}

TEST(GpuBackendTest, DeviceOomSurfaces) {
  GpuDeviceParams p;
  p.memory_bytes = 1 << 16;  // 64 KiB device
  SimGpuDevice dev(p);
  GpuBackend backend(&dev);
  std::vector<int64_t> col(100000, 1);
  EXPECT_FALSE(backend.EnsureResident(col.data(), 800000).ok());
}

}  // namespace
}  // namespace avm::gpu
