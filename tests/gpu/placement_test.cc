#include "gpu/placement.h"

#include <gtest/gtest.h>

namespace avm::gpu {
namespace {

FragmentProfile Fragment(uint64_t rows, double ops, bool resident = false) {
  FragmentProfile p;
  p.rows = rows;
  p.bytes_in = rows * 8;
  p.bytes_out = rows * 8;
  p.ops_per_row = ops;
  p.inputs_resident = resident;
  return p;
}

TEST(PlacementTest, TinyFragmentsStayOnCpu) {
  AdaptivePlacer placer(GpuDeviceParams{});
  // 1k rows: launch overhead dominates any GPU gain.
  auto d = placer.Decide(Fragment(1000, 2.0));
  EXPECT_EQ(d.device, Device::kCpu);
  EXPECT_LT(d.est_cpu_s, d.est_gpu_s);
}

TEST(PlacementTest, LargeComputeHeavyFragmentsGoToGpu) {
  AdaptivePlacer placer(GpuDeviceParams{});
  auto d = placer.Decide(Fragment(100'000'000, 50.0, /*resident=*/true));
  EXPECT_EQ(d.device, Device::kGpu);
}

TEST(PlacementTest, CrossoverExistsInSizeSweep) {
  AdaptivePlacer placer(GpuDeviceParams{});
  Device first = placer.Decide(Fragment(1000, 8.0, true)).device;
  Device last = placer.Decide(Fragment(500'000'000, 8.0, true)).device;
  EXPECT_EQ(first, Device::kCpu);
  EXPECT_EQ(last, Device::kGpu);
  // The decision must flip exactly once as size grows.
  int flips = 0;
  Device prev = first;
  for (uint64_t rows = 1000; rows <= 500'000'000; rows *= 4) {
    Device d = placer.Decide(Fragment(rows, 8.0, true)).device;
    if (d != prev) {
      ++flips;
      prev = d;
    }
  }
  EXPECT_EQ(flips, 1);
}

TEST(PlacementTest, ResidencyShiftsCrossoverEarlier) {
  AdaptivePlacer placer(GpuDeviceParams{});
  // Find smallest size where GPU wins, with and without resident inputs.
  auto crossover = [&](bool resident) {
    for (uint64_t rows = 1000; rows <= uint64_t{1} << 34; rows *= 2) {
      if (placer.Decide(Fragment(rows, 8.0, resident)).device ==
          Device::kGpu) {
        return rows;
      }
    }
    return uint64_t{0};
  };
  uint64_t with_resident = crossover(true);
  uint64_t without = crossover(false);
  ASSERT_NE(with_resident, 0u);
  ASSERT_NE(without, 0u);
  EXPECT_LE(with_resident, without);
}

TEST(PlacementTest, CalibrationCorrectsModel) {
  AdaptivePlacer placer(GpuDeviceParams{});
  FragmentProfile p = Fragment(10'000'000, 8.0, true);
  // Pretend the GPU is consistently 10x slower than modeled.
  for (int i = 0; i < 20; ++i) {
    placer.Observe(Device::kGpu, p, placer.EstimateGpuSeconds(p) * 10);
  }
  EXPECT_GT(placer.correction(Device::kGpu), 5.0);
  // A fragment the raw model would place on GPU now goes to CPU.
  auto d = placer.Decide(p);
  EXPECT_GT(d.est_gpu_s, placer.EstimateGpuSeconds(p) * 5);
}

TEST(PlacementTest, DeviceNames) {
  EXPECT_STREQ(DeviceName(Device::kCpu), "cpu");
  EXPECT_STREQ(DeviceName(Device::kGpu), "gpu");
}

}  // namespace
}  // namespace avm::gpu
