#include "dsl/typecheck.h"

#include <gtest/gtest.h>

#include "dsl/builder.h"
#include "dsl/parser.h"

namespace avm::dsl {
namespace {

Program MustParse(const std::string& src) {
  auto p = ParseProgram(src);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return std::move(p).value();
}

TEST(TypeCheckTest, Figure2Passes) {
  Program p = MakeFigure2Program();
  EXPECT_TRUE(TypeCheck(&p).ok());
}

TEST(TypeCheckTest, AnnotatesShapesAndTypes) {
  Program p = MustParse(R"(
data d : i32
mut i
i := 0
loop
  let v = read i d in
  let m = map (\x -> x * 2) v in
  i := i + len(m)
  if i >= 100 then
    break
)");
  ASSERT_TRUE(TypeCheck(&p).ok());
  // `let v` holds an i32 array; `let m` promotes to i64 (int literal is
  // i64 at the type level; the normalizer may still narrow it back when
  // the constant fits — see NormalizeTest.ConstCoercedToNarrowInputType).
  const Stmt& loop = *p.stmts[2];
  EXPECT_EQ(loop.body[0]->expr->shape, Shape::kArray);
  EXPECT_EQ(loop.body[0]->expr->type, TypeId::kI32);
  EXPECT_EQ(loop.body[1]->expr->shape, Shape::kArray);
  EXPECT_EQ(loop.body[1]->expr->type, TypeId::kI64);
  EXPECT_EQ(loop.body[2]->expr->shape, Shape::kScalar);
}

TEST(TypeCheckTest, PromoteTypesRules) {
  EXPECT_EQ(PromoteTypes(TypeId::kI8, TypeId::kI32), TypeId::kI32);
  EXPECT_EQ(PromoteTypes(TypeId::kI64, TypeId::kF64), TypeId::kF64);
  EXPECT_EQ(PromoteTypes(TypeId::kF32, TypeId::kI64), TypeId::kF64);
  EXPECT_EQ(PromoteTypes(TypeId::kF32, TypeId::kI16), TypeId::kF32);
  EXPECT_EQ(PromoteTypes(TypeId::kI16, TypeId::kI16), TypeId::kI16);
}

TEST(TypeCheckTest, ComparisonYieldsBool) {
  Program p = MustParse(R"(
data d : i64
mut i
i := 0
let v = read i d in
let f = filter (\x -> x > 3) v
)");
  ASSERT_TRUE(TypeCheck(&p).ok());
}

TEST(TypeCheckErrorTest, UndefinedVariable) {
  Program p = MustParse("mut i\ni := j + 1\n");
  EXPECT_TRUE(TypeCheck(&p).IsInvalidArgument());
}

TEST(TypeCheckErrorTest, AssignToNonMutable) {
  Program p = MustParse("let x = 3\nx := 4\n");
  EXPECT_FALSE(TypeCheck(&p).ok());
}

TEST(TypeCheckErrorTest, AssignArrayToMutable) {
  Program p = MustParse(R"(
data d : i64
mut i
mut bad
i := 0
let v = read i d in
bad := len(v)
)");
  EXPECT_TRUE(TypeCheck(&p).ok());  // len is scalar: fine
  Program q = MustParse(R"(
data d : i64
mut i
mut bad
i := 0
loop
  break
)");
  EXPECT_TRUE(TypeCheck(&q).ok());
}

TEST(TypeCheckErrorTest, BreakOutsideLoop) {
  Program p = MustParse("break\n");
  EXPECT_FALSE(TypeCheck(&p).ok());
}

TEST(TypeCheckErrorTest, WriteToReadOnlyData) {
  Program p = MustParse(R"(
data src : i64
mut i
i := 0
let v = read i src in
write src i v
)");
  EXPECT_TRUE(TypeCheck(&p).IsTypeError());
}

TEST(TypeCheckErrorTest, ReadFromNonData) {
  Program p = MustParse(R"(
data d : i64
mut i
i := 0
let v = read i d in
let u = read i v
)");
  EXPECT_TRUE(TypeCheck(&p).IsTypeError());
}

TEST(TypeCheckErrorTest, FilterPredicateMustBeBool) {
  Program p = MustParse(R"(
data d : i64
mut i
i := 0
let v = read i d in
let f = filter (\x -> x + 1) v
)");
  EXPECT_TRUE(TypeCheck(&p).IsTypeError());
}

TEST(TypeCheckErrorTest, ScalarOpOnArray) {
  Program p = MustParse(R"(
data d : i64
mut i
i := 0
let v = read i d in
let bad = sqrt v
)");
  EXPECT_TRUE(TypeCheck(&p).IsTypeError());
}

TEST(TypeCheckErrorTest, IfConditionMustBeScalar) {
  Program p = MustParse(R"(
data d : i64
mut i
i := 0
loop
  let v = read i d in
  if v then
    break
)");
  EXPECT_FALSE(TypeCheck(&p).ok());
}

TEST(TypeCheckErrorTest, ModRequiresIntegers) {
  Program p = MustParse("let x = 1.5 % 2.0\n");
  EXPECT_TRUE(TypeCheck(&p).IsTypeError());
}

TEST(TypeCheckErrorTest, AndRequiresBools) {
  Program p = MustParse("let x = 1 and 2\n");
  EXPECT_TRUE(TypeCheck(&p).IsTypeError());
}

TEST(TypeCheckErrorTest, ArityMismatch) {
  Program p = MustParse(R"(
data d : i64
mut i
i := 0
let v = read i d in
let m = map (\x y -> x + y) v
)");
  EXPECT_TRUE(TypeCheck(&p).IsTypeError());
}

TEST(TypeCheckErrorTest, DuplicateDataDecl) {
  Program p;
  p.data = {{"d", TypeId::kI64, false}, {"d", TypeId::kI32, false}};
  EXPECT_FALSE(TypeCheck(&p).ok());
}

TEST(TypeCheckTest, ScatterWithConflictLambda) {
  Program p = MustParse(R"(
data keys : i64
data acc : i64 writable
mut i
i := 0
let k = read i keys in
scatter acc k k (\o n -> o + n)
)");
  Status st = TypeCheck(&p);
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST(TypeCheckTest, GenAndFold) {
  Program p = MustParse(R"(
data out : i64 writable
let g = gen (\j -> j * j) 16 in
let s = fold (\acc x -> acc + x) 0 g in
write out 0 g
)");
  Status st = TypeCheck(&p);
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST(TypeCheckTest, MergeRequiresSameTypes) {
  Program p = MustParse(R"(
data a : i64
data b : i32
mut i
i := 0
let va = read i a in
let vb = read i b in
let m = merge_join va vb
)");
  EXPECT_TRUE(TypeCheck(&p).IsTypeError());
}

TEST(TypeCheckTest, LambdaCapturesOuterScalar) {
  Program p = MustParse(R"(
data d : i64
mut i
mut threshold
i := 0
threshold := 10
let v = read i d in
let f = filter (\x -> x > threshold) v
)");
  Status st = TypeCheck(&p);
  EXPECT_TRUE(st.ok()) << st.ToString();
}

}  // namespace
}  // namespace avm::dsl
