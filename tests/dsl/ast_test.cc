#include "dsl/ast.h"

#include <gtest/gtest.h>

#include "dsl/builder.h"

namespace avm::dsl {
namespace {

TEST(AstTest, ConstBuilders) {
  auto i = ConstI(42);
  EXPECT_EQ(i->kind, ExprKind::kConst);
  EXPECT_EQ(i->const_i, 42);
  EXPECT_FALSE(i->const_is_float);
  auto f = ConstF(2.5);
  EXPECT_TRUE(f->const_is_float);
  EXPECT_DOUBLE_EQ(f->const_f, 2.5);
}

TEST(AstTest, InfixOperatorsBuildCalls) {
  auto e = ConstI(1) + Var("x") * ConstI(3);
  EXPECT_EQ(e->kind, ExprKind::kScalarCall);
  EXPECT_EQ(e->op, ScalarOp::kAdd);
  EXPECT_EQ(e->args[1]->op, ScalarOp::kMul);
}

TEST(AstTest, OpMetadata) {
  EXPECT_EQ(ScalarOpArity(ScalarOp::kSqrt), 1);
  EXPECT_EQ(ScalarOpArity(ScalarOp::kAdd), 2);
  EXPECT_TRUE(ScalarOpIsComparison(ScalarOp::kLe));
  EXPECT_FALSE(ScalarOpIsComparison(ScalarOp::kAdd));
  EXPECT_STREQ(ScalarOpName(ScalarOp::kHash), "hash");
  EXPECT_STREQ(SkeletonName(SkeletonKind::kCondense), "condense");
}

TEST(AstTest, AssignIdsIsDenseAndUnique) {
  Program p = MakeFigure2Program();
  std::set<uint32_t> ids;
  VisitStmts(p, [&](const StmtPtr& s) { ids.insert(s->id); });
  VisitExprs(p, [&](const ExprPtr& e) { ids.insert(e->id); });
  EXPECT_FALSE(ids.contains(0));  // ids start at 1
  // Uniqueness: count nodes == set size.
  size_t count = 0;
  VisitStmts(p, [&](const StmtPtr&) { ++count; });
  VisitExprs(p, [&](const ExprPtr&) { ++count; });
  EXPECT_EQ(ids.size(), count);
}

TEST(AstTest, StructuralEquality) {
  Program a = MakeFigure2Program();
  Program b = MakeFigure2Program();
  EXPECT_TRUE(ProgramEquals(a, b));
  Program c = MakeFigure2Program(/*limit=*/8192);
  EXPECT_FALSE(ProgramEquals(a, c));
}

TEST(AstTest, ExprEqualityDistinguishesOps) {
  auto x = Call(ScalarOp::kAdd, {Var("a"), Var("b")});
  auto y = Call(ScalarOp::kSub, {Var("a"), Var("b")});
  auto x2 = Call(ScalarOp::kAdd, {Var("a"), Var("b")});
  EXPECT_TRUE(ExprEquals(*x, *x2));
  EXPECT_FALSE(ExprEquals(*x, *y));
  EXPECT_FALSE(ExprEquals(*Cast(TypeId::kI16, Var("a")),
                          *Cast(TypeId::kI32, Var("a"))));
}

TEST(AstTest, FindData) {
  Program p = MakeFigure2Program();
  ASSERT_NE(p.FindData("some_data"), nullptr);
  EXPECT_EQ(p.FindData("some_data")->type, TypeId::kI64);
  EXPECT_FALSE(p.FindData("some_data")->writable);
  ASSERT_NE(p.FindData("v"), nullptr);
  EXPECT_TRUE(p.FindData("v")->writable);
  EXPECT_EQ(p.FindData("nope"), nullptr);
}

TEST(AstTest, MergeCarriesKind) {
  auto m = Merge(MergeKind::kUnion, {Var("a"), Var("b")});
  EXPECT_EQ(m->skeleton, SkeletonKind::kMerge);
  EXPECT_EQ(m->merge_kind, MergeKind::kUnion);
}

}  // namespace
}  // namespace avm::dsl
