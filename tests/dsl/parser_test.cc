#include "dsl/parser.h"

#include <gtest/gtest.h>

#include "dsl/builder.h"
#include "dsl/printer.h"
#include "dsl/typecheck.h"

namespace avm::dsl {
namespace {

// The paper's Figure 2, in the surface syntax (plus the data declarations
// the figure implies).
constexpr const char* kFigure2 = R"(
data some_data : i64
data v : i64 writable
data w : i64 writable
mut i
mut k
i := 0
k := 0
loop
  let input = read i some_data in
  let a = map (\x -> 2*x) input in
  let t = filter (\x -> x>0) a in
  let b = condense t
  write v i a
  write w k b
  i := i + len(a)
  k := k + len(b)
  if i >= 4096 then
    break
)";

TEST(ParserTest, Figure2ParsesToBuilderProgram) {
  auto parsed = ParseProgram(kFigure2);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  Program built = MakeFigure2Program(4096);
  EXPECT_TRUE(ProgramEquals(parsed.value(), built))
      << "parsed:\n"
      << PrintProgram(parsed.value()) << "\nbuilt:\n" << PrintProgram(built);
}

TEST(ParserTest, Figure2TypeChecks) {
  auto parsed = ParseProgram(kFigure2);
  ASSERT_TRUE(parsed.ok());
  Program p = std::move(parsed).value();
  EXPECT_TRUE(TypeCheck(&p).ok());
}

TEST(ParserTest, PrintParseRoundTrip) {
  for (Program original :
       {MakeFigure2Program(), MakeHypotPipeline(1000),
        MakeSumPipeline(TypeId::kI64, 512),
        MakeFilterPipeline(TypeId::kI32,
                           Lambda({"x"}, Call(ScalarOp::kLt,
                                              {Var("x"), ConstI(7)})),
                           2048)}) {
    std::string text = PrintProgram(original);
    auto reparsed = ParseProgram(text);
    ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n" << text;
    EXPECT_TRUE(ProgramEquals(original, reparsed.value())) << text;
  }
}

TEST(ParserTest, ExpressionPrecedence) {
  auto e = ParseExpr("1 + 2 * 3");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e.value()->op, ScalarOp::kAdd);
  EXPECT_EQ(e.value()->args[1]->op, ScalarOp::kMul);

  auto cmp = ParseExpr("a + 1 >= b * 2");
  ASSERT_TRUE(cmp.ok());
  EXPECT_EQ(cmp.value()->op, ScalarOp::kGe);
}

TEST(ParserTest, AndOrPrecedence) {
  auto e = ParseExpr("a < 1 or b < 2 and c < 3");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e.value()->op, ScalarOp::kOr);
  EXPECT_EQ(e.value()->args[1]->op, ScalarOp::kAnd);
}

TEST(ParserTest, LambdaMultiParam) {
  auto e = ParseExpr(R"(map (\a b -> sqrt (a*a + b*b)) xs ys)");
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  EXPECT_EQ(e.value()->skeleton, SkeletonKind::kMap);
  EXPECT_EQ(e.value()->args[0]->params.size(), 2u);
  EXPECT_EQ(e.value()->args[0]->body->op, ScalarOp::kSqrt);
}

TEST(ParserTest, CastSyntax) {
  auto e = ParseExpr("cast_i16 x");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e.value()->op, ScalarOp::kCast);
  EXPECT_EQ(e.value()->cast_to, TypeId::kI16);
}

TEST(ParserTest, MergeVariants) {
  auto e = ParseExpr("merge_union a b");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e.value()->merge_kind, MergeKind::kUnion);
  EXPECT_EQ(ParseExpr("merge_join a b").value()->merge_kind, MergeKind::kJoin);
  EXPECT_EQ(ParseExpr("merge_diff a b").value()->merge_kind, MergeKind::kDiff);
}

TEST(ParserTest, ParenthesizedCallSyntax) {
  auto e = ParseExpr("len(a)");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e.value()->skeleton, SkeletonKind::kLen);
  auto f = ParseExpr("min(a, b)");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f.value()->op, ScalarOp::kMin);
}

TEST(ParserTest, NegativeLiterals) {
  auto e = ParseExpr("-5");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e.value()->const_i, -5);
  auto f = ParseExpr("-2.5");
  ASSERT_TRUE(f.ok());
  EXPECT_DOUBLE_EQ(f.value()->const_f, -2.5);
}

TEST(ParserTest, FloatLiterals) {
  auto e = ParseExpr("1.5e3");
  ASSERT_TRUE(e.ok());
  EXPECT_TRUE(e.value()->const_is_float);
  EXPECT_DOUBLE_EQ(e.value()->const_f, 1500.0);
}

TEST(ParserTest, CommentsAndBlankLinesIgnored) {
  auto p = ParseProgram(R"(
# a comment
data d : i32   # trailing comment

mut i

i := 0   # set it
)");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p.value().stmts.size(), 2u);
}

TEST(ParserTest, ElseBranch) {
  auto p = ParseProgram(R"(
mut i
i := 0
loop
  if i >= 10 then
    break
  else
    i := i + 1
)");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  const Stmt& loop = *p.value().stmts[2];
  ASSERT_EQ(loop.body.size(), 1u);
  EXPECT_EQ(loop.body[0]->kind, StmtKind::kIf);
  EXPECT_EQ(loop.body[0]->else_body.size(), 1u);
}

TEST(ParserErrorTest, InconsistentIndentation) {
  auto p = ParseProgram("loop\n    break\n  break\n");
  EXPECT_FALSE(p.ok());
}

TEST(ParserErrorTest, UnknownCharacter) {
  EXPECT_FALSE(ParseProgram("i := 1 @ 2\n").ok());
}

TEST(ParserErrorTest, MissingThen) {
  EXPECT_FALSE(ParseProgram("mut i\nif i > 0\n  break\n").ok());
}

TEST(ParserErrorTest, LambdaWithoutArrow) {
  EXPECT_FALSE(ParseExpr(R"(map (\x 2*x) v)").ok());
}

TEST(ParserErrorTest, BadDataDecl) {
  EXPECT_FALSE(ParseProgram("data x : notatype\n").ok());
  EXPECT_FALSE(ParseProgram("data : i64\n").ok());
}

TEST(ParserErrorTest, ErrorsCarryLineNumbers) {
  auto p = ParseProgram("mut i\ni := @\n");
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.status().message().find("line 2"), std::string::npos);
}

}  // namespace
}  // namespace avm::dsl
