#include "interp/micro_adaptive.h"

#include <gtest/gtest.h>

#include <set>

namespace avm::interp {
namespace {

TEST(MicroAdaptiveTest, WarmupTriesEveryArm) {
  MicroAdaptiveChooser c(3);
  std::set<size_t> tried;
  for (int i = 0; i < 3; ++i) {
    size_t arm = c.Choose();
    tried.insert(arm);
    c.Observe(arm, 1.0);
  }
  EXPECT_EQ(tried.size(), 3u);
}

TEST(MicroAdaptiveTest, ExploitsCheapestArm) {
  MicroAdaptiveChooser c(3, /*explore_every=*/0);
  double costs[3] = {5.0, 1.0, 3.0};
  for (int i = 0; i < 50; ++i) {
    size_t arm = c.Choose();
    c.Observe(arm, costs[arm]);
  }
  EXPECT_EQ(c.Best(), 1u);
  // After warmup, all choices go to arm 1.
  EXPECT_EQ(c.Choose(), 1u);
}

TEST(MicroAdaptiveTest, AdaptsWhenCostsDrift) {
  MicroAdaptiveChooser c(2, /*explore_every=*/8, /*ema_alpha=*/0.5);
  // Phase 1: arm 0 cheap.
  for (int i = 0; i < 64; ++i) {
    size_t arm = c.Choose();
    c.Observe(arm, arm == 0 ? 1.0 : 4.0);
  }
  EXPECT_EQ(c.Best(), 0u);
  // Phase 2: costs flip; periodic exploration must discover it.
  for (int i = 0; i < 256; ++i) {
    size_t arm = c.Choose();
    c.Observe(arm, arm == 0 ? 4.0 : 1.0);
  }
  EXPECT_EQ(c.Best(), 1u);
}

TEST(MicroAdaptiveTest, TracksSampleCounts) {
  MicroAdaptiveChooser c(2);
  c.Observe(0, 2.0);
  c.Observe(0, 4.0);
  EXPECT_EQ(c.SamplesOf(0), 2u);
  EXPECT_EQ(c.SamplesOf(1), 0u);
  // EMA moved toward the later observation.
  EXPECT_GT(c.CostOf(0), 2.0);
  EXPECT_LT(c.CostOf(0), 4.0);
}

TEST(MicroAdaptiveTest, SingleArmDegenerate) {
  MicroAdaptiveChooser c(1);
  EXPECT_EQ(c.Choose(), 0u);
  c.Observe(0, 1.0);
  EXPECT_EQ(c.Choose(), 0u);
  EXPECT_EQ(c.Best(), 0u);
}

}  // namespace
}  // namespace avm::interp
